/**
 * @file
 * Explicit cluster topology: racks of hosts behind per-rack ToR switches,
 * joined by an upper aggregation tier (paper §7, "scaling out").
 *
 * The pre-fabric ClusterConfig described a deployment as a flat
 * `num_hosts` behind one implicit ToR. A Topology makes the shape
 * first-class: how many racks, how many hosts each, and the links that
 * join the tiers. Single-rack topologies reproduce the old deployment
 * exactly (one switch, no tier); multi-rack topologies add one
 * aggregation-tier switch above the ToRs that merges partial aggregates
 * in-network before delivery.
 *
 * Build one with TopologyBuilder:
 *
 *     ClusterConfig cc;
 *     cc.topology = TopologyBuilder()
 *                       .racks(4, 2)            // 4 racks x 2 hosts
 *                       .tier_link(400.0, 1000) // ToR<->tier uplinks
 *                       .build();
 */
#ifndef ASK_ASK_TOPOLOGY_H
#define ASK_ASK_TOPOLOGY_H

#include <cstdint>
#include <vector>

#include "ask/types.h"
#include "common/units.h"
#include "net/fault_model.h"

namespace ask::core {

/** A validated cluster shape (see TopologyBuilder). */
struct Topology
{
    /** Hosts per rack; rack r's ToR is SwitchId{r}. Host indices are
     *  dense in rack order: rack 0 holds hosts [0, rack_hosts[0]), etc. */
    std::vector<std::uint32_t> rack_hosts;

    /** ToR <-> aggregation-tier uplink line rate. */
    double tier_link_gbps = 400.0;
    /** One-way propagation delay of a tier uplink. */
    Nanoseconds tier_link_propagation_ns = 1000;
    /** Fault injection on the tier uplinks (host<->ToR cables keep the
     *  ClusterConfig's `faults` spec). */
    net::FaultSpec tier_faults = net::FaultSpec::reliable();

    std::uint32_t num_racks() const
    {
        return static_cast<std::uint32_t>(rack_hosts.size());
    }

    std::uint32_t num_hosts() const;

    /** Multi-rack deployments run one aggregation-tier switch above the
     *  ToRs; a single rack is exactly the classic one-switch cluster. */
    bool has_tier() const { return num_racks() > 1; }

    /** Switches in the fabric: the ToRs plus the tier switch (if any). */
    std::uint32_t num_switches() const
    {
        return num_racks() + (has_tier() ? 1 : 0);
    }

    /** SwitchId of the aggregation-tier switch (has_tier() only). */
    SwitchId tier_switch() const { return SwitchId{num_racks()}; }

    /** Rack of a host (host indices are dense in rack order). */
    RackId rack_of_host(HostId host) const;

    /** First host index of rack `rack`. */
    std::uint32_t host_lo(RackId rack) const;

    /** Hosts in rack `rack`. */
    std::uint32_t hosts_in(RackId rack) const
    {
        return rack_hosts.at(rack.value());
    }

    /** Throws ask::ConfigError if the shape is inconsistent. */
    void validate() const;
};

/**
 * Fluent builder for a Topology. Rack order is declaration order; host
 * indices are assigned densely rack by rack.
 */
class TopologyBuilder
{
  public:
    /** Append one rack of `hosts` servers. */
    TopologyBuilder& add_rack(std::uint32_t hosts);

    /** Append `count` racks of `hosts_per_rack` servers each. */
    TopologyBuilder& racks(std::uint32_t count, std::uint32_t hosts_per_rack);

    /** Configure the ToR <-> tier uplinks. */
    TopologyBuilder& tier_link(double gbps, Nanoseconds propagation_ns);

    /** Fault injection on the tier uplinks (default: reliable). */
    TopologyBuilder& tier_faults(const net::FaultSpec& faults);

    /** Validate and return the topology. Throws ask::ConfigError when
     *  the shape is inconsistent (no racks, an empty rack). */
    Topology build() const;

  private:
    Topology topo_;
};

}  // namespace ask::core

#endif  // ASK_ASK_TOPOLOGY_H
