#include "ask/types.h"

#include <cmath>
#include <limits>

namespace ask::core {

namespace {

std::uint64_t
apply_op64(ReduceOp op, std::uint64_t acc, std::uint64_t v)
{
    switch (op) {
      case ReduceOp::kAdd:
      case ReduceOp::kCount:
        return acc + v;
      case ReduceOp::kMax:
        return acc > v ? acc : v;
      case ReduceOp::kMin:
        return acc < v ? acc : v;
      case ReduceOp::kFloat:
        // Fixed-point arithmetic is modulo 2^32 end-to-end, exactly as
        // on the switch ALU — keep the host fold in the same ring so
        // partials merged from any mix of paths agree bit-for-bit.
        return static_cast<std::uint32_t>(acc + v);
    }
    return acc;
}

}  // namespace

const char*
reduce_op_name(ReduceOp op)
{
    switch (op) {
      case ReduceOp::kAdd:
        return "sum";
      case ReduceOp::kMax:
        return "max";
      case ReduceOp::kMin:
        return "min";
      case ReduceOp::kCount:
        return "count";
      case ReduceOp::kFloat:
        return "float";
    }
    return "?";
}

bool
parse_reduce_op(const std::string& name, ReduceOp& out)
{
    if (name == "sum" || name == "add") {
        out = ReduceOp::kAdd;
    } else if (name == "max") {
        out = ReduceOp::kMax;
    } else if (name == "min") {
        out = ReduceOp::kMin;
    } else if (name == "count") {
        out = ReduceOp::kCount;
    } else if (name == "float") {
        out = ReduceOp::kFloat;
    } else {
        return false;
    }
    return true;
}

Value
float_encode(double x, std::uint32_t frac_bits)
{
    const double scaled = std::round(std::ldexp(x, static_cast<int>(frac_bits)));
    constexpr double kMin = static_cast<double>(std::numeric_limits<std::int32_t>::min());
    constexpr double kMax = static_cast<double>(std::numeric_limits<std::int32_t>::max());
    std::int32_t q;
    if (std::isnan(scaled) || scaled <= kMin)
        q = std::numeric_limits<std::int32_t>::min();
    else if (scaled >= kMax)
        q = std::numeric_limits<std::int32_t>::max();
    else
        q = static_cast<std::int32_t>(scaled);
    return static_cast<Value>(q);
}

double
float_decode(std::uint64_t v, std::uint32_t frac_bits)
{
    const auto q = static_cast<std::int32_t>(static_cast<std::uint32_t>(v));
    return std::ldexp(static_cast<double>(q), -static_cast<int>(frac_bits));
}

void
accumulate(AggregateMap& acc, const Key& key, std::uint64_t value, ReduceOp op)
{
    auto [it, inserted] = acc.try_emplace(key, value);
    if (!inserted)
        it->second = apply_op64(op, it->second, value);
}

void
aggregate_into(AggregateMap& acc, const KvStream& stream, ReduceOp op)
{
    for (const auto& kv : stream)
        accumulate(acc, kv.key, reduce_lift64(op, kv.value), op);
}

void
merge_stream_into(AggregateMap& acc, const KvStream& stream, ReduceOp op)
{
    for (const auto& kv : stream)
        accumulate(acc, kv.key, kv.value, op);
}

void
merge_into(AggregateMap& acc, const AggregateMap& from, ReduceOp op)
{
    for (const auto& [k, v] : from) {
        auto [it, inserted] = acc.try_emplace(k, v);
        if (!inserted)
            it->second = apply_op64(op, it->second, v);
    }
}

}  // namespace ask::core
