#include "ask/types.h"

namespace ask::core {

namespace {

std::uint64_t
apply_op64(AggOp op, std::uint64_t acc, std::uint64_t v)
{
    switch (op) {
      case AggOp::kAdd:
        return acc + v;
      case AggOp::kMax:
        return acc > v ? acc : v;
      case AggOp::kMin:
        return acc < v ? acc : v;
    }
    return acc;
}

}  // namespace

void
accumulate(AggregateMap& acc, const Key& key, std::uint64_t value, AggOp op)
{
    auto [it, inserted] = acc.try_emplace(key, value);
    if (!inserted)
        it->second = apply_op64(op, it->second, value);
}

void
aggregate_into(AggregateMap& acc, const KvStream& stream, AggOp op)
{
    for (const auto& kv : stream)
        accumulate(acc, kv.key, kv.value, op);
}

void
merge_into(AggregateMap& acc, const AggregateMap& from, AggOp op)
{
    for (const auto& [k, v] : from) {
        auto [it, inserted] = acc.try_emplace(k, v);
        if (!inserted)
            it->second = apply_op64(op, it->second, v);
    }
}

}  // namespace ask::core
