#include "ask/wire.h"

#include <bit>

#include "common/logging.h"

namespace ask::core {

namespace {

constexpr std::uint32_t kHeaderOffset = net::kIpHeaderBytes;
constexpr std::uint32_t kPayloadOffset = kHeaderOffset + kAskHeaderBytes;

void
put_u16(std::vector<std::uint8_t>& b, std::size_t off, std::uint16_t v)
{
    b[off] = static_cast<std::uint8_t>(v);
    b[off + 1] = static_cast<std::uint8_t>(v >> 8);
}

void
put_u32(std::vector<std::uint8_t>& b, std::size_t off, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        b[off + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(v >> (8 * i));
}

void
put_u64(std::vector<std::uint8_t>& b, std::size_t off, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        b[off + static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint16_t
get_u16(const std::vector<std::uint8_t>& b, std::size_t off)
{
    return static_cast<std::uint16_t>(b[off] | (b[off + 1] << 8));
}

std::uint32_t
get_u32(const std::vector<std::uint8_t>& b, std::size_t off)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(b[off + static_cast<std::size_t>(i)])
             << (8 * i);
    return v;
}

std::uint64_t
get_u64(const std::vector<std::uint8_t>& b, std::size_t off)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(b[off + static_cast<std::size_t>(i)])
             << (8 * i);
    return v;
}

}  // namespace

std::vector<std::uint8_t>
make_frame(const AskHeader& hdr, std::uint32_t payload_bytes)
{
    std::vector<std::uint8_t> data(kPayloadOffset + payload_bytes, 0);
    data[kHeaderOffset + 0] = static_cast<std::uint8_t>(
        (static_cast<std::uint8_t>(hdr.op) << 4) |
        (static_cast<std::uint8_t>(hdr.type) & 0x0F));
    data[kHeaderOffset + 1] = hdr.num_slots;
    put_u16(data, kHeaderOffset + 2, hdr.channel_id);
    put_u32(data, kHeaderOffset + 4, hdr.task_id);
    put_u32(data, kHeaderOffset + 8, hdr.seq);
    put_u64(data, kHeaderOffset + 12, hdr.bitmap);
    return data;
}

std::optional<AskHeader>
parse_header(const std::vector<std::uint8_t>& data)
{
    if (data.size() < kPayloadOffset)
        return std::nullopt;
    const std::uint8_t op_type = data[kHeaderOffset + 0];
    const std::uint8_t type = op_type & 0x0F;
    const std::uint8_t op = op_type >> 4;
    if (type < static_cast<std::uint8_t>(PacketType::kData) ||
        type > static_cast<std::uint8_t>(PacketType::kSwapAck))
        return std::nullopt;
    if (op >= kNumReduceOps)
        return std::nullopt;
    AskHeader hdr;
    hdr.type = static_cast<PacketType>(type);
    hdr.op = static_cast<ReduceOp>(op);
    hdr.num_slots = data[kHeaderOffset + 1];
    hdr.channel_id = get_u16(data, kHeaderOffset + 2);
    hdr.task_id = get_u32(data, kHeaderOffset + 4);
    hdr.seq = get_u32(data, kHeaderOffset + 8);
    hdr.bitmap = get_u64(data, kHeaderOffset + 12);
    return hdr;
}

void
rewrite_bitmap(std::vector<std::uint8_t>& data, std::uint64_t bitmap)
{
    ASK_ASSERT(data.size() >= kPayloadOffset, "frame too short");
    put_u64(data, kHeaderOffset + 12, bitmap);
}

void
write_slot(std::vector<std::uint8_t>& data, std::uint32_t i,
           const WireSlot& slot)
{
    std::size_t off = kPayloadOffset + static_cast<std::size_t>(i) * 8;
    ASK_ASSERT(off + 8 <= data.size(), "slot ", i, " beyond payload");
    put_u32(data, off, slot.seg);
    put_u32(data, off + 4, slot.value);
}

WireSlot
read_slot(const std::vector<std::uint8_t>& data, std::uint32_t i)
{
    std::size_t off = kPayloadOffset + static_cast<std::size_t>(i) * 8;
    ASK_ASSERT(off + 8 <= data.size(), "slot ", i, " beyond payload");
    return WireSlot{get_u32(data, off), get_u32(data, off + 4)};
}

namespace {

/** Bits of `bitmap` naming real slots, bounds-checked once against the
 *  payload (same per-slot guarantee read_slot/write_slot give). */
std::uint64_t
occupied_slots(std::uint64_t bitmap, std::uint32_t num_slots,
               std::size_t frame_bytes)
{
    std::uint64_t used =
        bitmap & (num_slots >= 64 ? ~0ULL : ((1ULL << num_slots) - 1));
    if (used != 0) {
        auto hi = static_cast<std::uint32_t>(63 - std::countl_zero(used));
        ASK_ASSERT(kPayloadOffset + (static_cast<std::size_t>(hi) + 1) * 8 <=
                       frame_bytes,
                   "slot ", hi, " beyond payload");
    }
    return used;
}

}  // namespace

void
read_slots(const std::vector<std::uint8_t>& data, std::uint64_t bitmap,
           std::uint32_t num_slots, WireSlot* out)
{
    std::uint64_t rest = occupied_slots(bitmap, num_slots, data.size());
    for (; rest != 0; rest &= rest - 1) {
        auto i = static_cast<std::uint32_t>(std::countr_zero(rest));
        std::size_t off = kPayloadOffset + static_cast<std::size_t>(i) * 8;
        out[i] = WireSlot{get_u32(data, off), get_u32(data, off + 4)};
    }
}

void
write_slots(std::vector<std::uint8_t>& data, std::uint64_t bitmap,
            std::uint32_t num_slots, const WireSlot* slots)
{
    std::uint64_t rest = occupied_slots(bitmap, num_slots, data.size());
    for (; rest != 0; rest &= rest - 1) {
        auto i = static_cast<std::uint32_t>(std::countr_zero(rest));
        std::size_t off = kPayloadOffset + static_cast<std::size_t>(i) * 8;
        put_u32(data, off, slots[i].seg);
        put_u32(data, off + 4, slots[i].value);
    }
}

std::vector<std::uint8_t>
make_long_frame(const AskHeader& hdr, const std::vector<KvTuple>& tuples)
{
    std::size_t payload = 2;
    for (const auto& t : tuples)
        payload += 2 + t.key.size() + 4;

    AskHeader h = hdr;
    h.type = PacketType::kLongData;
    auto data = make_frame(h, static_cast<std::uint32_t>(payload));

    std::size_t off = kPayloadOffset;
    put_u16(data, off, static_cast<std::uint16_t>(tuples.size()));
    off += 2;
    for (const auto& t : tuples) {
        put_u16(data, off, static_cast<std::uint16_t>(t.key.size()));
        off += 2;
        for (char c : t.key)
            data[off++] = static_cast<std::uint8_t>(c);
        put_u32(data, off, t.value);
        off += 4;
    }
    return data;
}

std::vector<KvTuple>
parse_long_tuples(const std::vector<std::uint8_t>& data)
{
    auto tuples = try_parse_long_tuples(data);
    ASK_ASSERT(tuples.has_value(), "malformed LONG_DATA frame");
    return std::move(*tuples);
}

std::optional<std::vector<KvTuple>>
try_parse_long_tuples(const std::vector<std::uint8_t>& data)
{
    if (data.size() < kPayloadOffset + 2)
        return std::nullopt;
    std::size_t off = kPayloadOffset;
    std::uint16_t count = get_u16(data, off);
    off += 2;
    std::vector<KvTuple> tuples;
    tuples.reserve(count);
    for (std::uint16_t i = 0; i < count; ++i) {
        if (off + 2 > data.size())
            return std::nullopt;
        std::uint16_t len = get_u16(data, off);
        off += 2;
        if (off + static_cast<std::size_t>(len) + 4 > data.size())
            return std::nullopt;
        KvTuple t;
        t.key.assign(reinterpret_cast<const char*>(&data[off]), len);
        off += len;
        t.value = get_u32(data, off);
        off += 4;
        tuples.push_back(std::move(t));
    }
    return tuples;
}

net::Packet
make_control_packet(net::NodeId src, net::NodeId dst, const AskHeader& hdr)
{
    net::Packet pkt;
    pkt.src = src;
    pkt.dst = dst;
    pkt.data = make_frame(hdr, 0);
    return pkt;
}

}  // namespace ask::core
