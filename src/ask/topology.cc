#include "ask/topology.h"

#include "common/logging.h"

namespace ask::core {

std::uint32_t
Topology::num_hosts() const
{
    std::uint32_t total = 0;
    for (std::uint32_t h : rack_hosts)
        total += h;
    return total;
}

RackId
Topology::rack_of_host(HostId host) const
{
    std::uint32_t cursor = 0;
    for (std::uint32_t r = 0; r < num_racks(); ++r) {
        cursor += rack_hosts[r];
        if (host.value() < cursor)
            return RackId{r};
    }
    fail_state("host ", host.value(), " beyond the topology's ",
               num_hosts(), " hosts");
}

std::uint32_t
Topology::host_lo(RackId rack) const
{
    ASK_ASSERT(rack.value() < num_racks(), "rack id out of range");
    std::uint32_t lo = 0;
    for (std::uint32_t r = 0; r < rack.value(); ++r)
        lo += rack_hosts[r];
    return lo;
}

void
Topology::validate() const
{
    if (rack_hosts.empty())
        fail_config("topology needs at least one rack");
    for (std::uint32_t r = 0; r < num_racks(); ++r) {
        if (rack_hosts[r] == 0)
            fail_config("rack ", r, " has no hosts");
    }
    if (tier_link_gbps <= 0.0)
        fail_config("tier links need a positive line rate");
}

TopologyBuilder&
TopologyBuilder::add_rack(std::uint32_t hosts)
{
    topo_.rack_hosts.push_back(hosts);
    return *this;
}

TopologyBuilder&
TopologyBuilder::racks(std::uint32_t count, std::uint32_t hosts_per_rack)
{
    for (std::uint32_t r = 0; r < count; ++r)
        topo_.rack_hosts.push_back(hosts_per_rack);
    return *this;
}

TopologyBuilder&
TopologyBuilder::tier_link(double gbps, Nanoseconds propagation_ns)
{
    topo_.tier_link_gbps = gbps;
    topo_.tier_link_propagation_ns = propagation_ns;
    return *this;
}

TopologyBuilder&
TopologyBuilder::tier_faults(const net::FaultSpec& faults)
{
    topo_.tier_faults = faults;
    return *this;
}

Topology
TopologyBuilder::build() const
{
    topo_.validate();
    return topo_;
}

}  // namespace ask::core
