/**
 * @file
 * AskCluster: the top-level facade wiring a complete ASK deployment —
 * simulator, star fabric, PISA switch running the ASK program, switch
 * controller, and one daemon per server. This is the public entry point
 * used by examples, tests, and benchmarks.
 */
#ifndef ASK_ASK_CLUSTER_H
#define ASK_ASK_CLUSTER_H

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "ask/config.h"
#include "ask/controller.h"
#include "ask/daemon.h"
#include "ask/switch_program.h"
#include "net/cost_model.h"
#include "net/network.h"
#include "pisa/pisa_switch.h"
#include "sim/simulator.h"

namespace ask::core {

/** Cluster-level deployment parameters. */
struct ClusterConfig
{
    AskConfig ask;
    net::CostModelSpec cost;

    /** Servers attached to the ToR switch. */
    std::uint32_t num_hosts = 2;
    /** Per-port line rate. */
    double link_gbps = 100.0;
    /** One-way cable propagation delay. */
    Nanoseconds link_propagation_ns = 500;
    /** Fault injection on every host<->switch cable. */
    net::FaultSpec faults = net::FaultSpec::reliable();
    /** Seed for fault streams. */
    std::uint64_t seed = 1;

    /** Management-network latency (controller RPCs). */
    Nanoseconds mgmt_latency_ns = 20 * units::kMicrosecond;
    /** Latency of the receiver->sender task notification (§3.1 step 4). */
    Nanoseconds notify_latency_ns = 50 * units::kMicrosecond;

    /** Pipeline depth; the default fits the 32-AA program. Chained
     *  pipelines are modeled as more stages. */
    std::size_t switch_stages = pisa::kDefaultStagesPerPipeline;
    std::size_t switch_sram_per_stage = pisa::kDefaultStageSramBytes;
};

/** One sender's contribution to a task. */
struct StreamSpec
{
    std::uint32_t host = 0;
    KvStream stream;
};

/** Result of a completed aggregation task. */
struct TaskResult
{
    AggregateMap result;
    TaskReport report;
    bool completed = false;
};

/** A fully wired ASK deployment. */
class AskCluster
{
  public:
    explicit AskCluster(const ClusterConfig& config);
    ~AskCluster();

    AskCluster(const AskCluster&) = delete;
    AskCluster& operator=(const AskCluster&) = delete;

    /**
     * Submit an aggregation task: `receiver_host` runs the receiver,
     * each StreamSpec's host streams its tuples. `on_done` fires at
     * completion (simulated time). Call run() to execute.
     *
     * @param region_len aggregators per AA per copy; 0 = all free.
     */
    void submit_task(TaskId task, std::uint32_t receiver_host,
                     std::vector<StreamSpec> streams,
                     std::uint32_t region_len = 0,
                     TaskDoneFn on_done = nullptr);

    /** Convenience: submit one task, run the simulator to completion,
     *  and return the result. */
    TaskResult run_task(TaskId task, std::uint32_t receiver_host,
                        std::vector<StreamSpec> streams,
                        std::uint32_t region_len = 0);

    /** Drain the event queue. Returns the final simulated time. */
    sim::SimTime run() { return simulator_.run(); }

    sim::Simulator& simulator() { return simulator_; }
    net::Network& network() { return network_; }
    AskDaemon& daemon(std::uint32_t host) { return *daemons_.at(host); }
    std::uint32_t num_hosts() const
    {
        return static_cast<std::uint32_t>(daemons_.size());
    }
    pisa::PisaSwitch& pisa_switch() { return *switch_; }
    AskSwitchProgram& program() { return *program_; }
    AskSwitchController& controller() { return *controller_; }
    const SwitchAggStats& switch_stats() const { return program_->stats(); }
    const ClusterConfig& config() const { return config_; }
    net::NodeId switch_node() const { return switch_->node_id(); }

    /** Aggregate host stats over all daemons. */
    HostStats total_host_stats() const;

  private:
    ClusterConfig config_;
    sim::Simulator simulator_;
    net::Network network_;
    std::unique_ptr<pisa::PisaSwitch> switch_;
    std::unique_ptr<AskSwitchProgram> program_;
    std::unique_ptr<AskSwitchController> controller_;
    std::vector<std::unique_ptr<AskDaemon>> daemons_;
};

}  // namespace ask::core

#endif  // ASK_ASK_CLUSTER_H
