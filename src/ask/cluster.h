/**
 * @file
 * AskCluster: the top-level facade wiring a complete ASK deployment —
 * simulator, network fabric, one or more PISA switches running the ASK
 * program, the (fabric-aware) switch control plane, and one daemon per
 * server. This is the public entry point used by examples, tests, and
 * benchmarks.
 *
 * Topology-first API: a ClusterConfig carries an explicit Topology
 * (racks, hosts per rack, tier links) built with TopologyBuilder. A
 * single-rack topology wires the classic star — one ToR, every daemon
 * attached to it. A multi-rack topology wires a two-tier tree: each
 * rack's ToR runs an AskSwitchProgram provisioned for *its rack's
 * channel shard*, an aggregation-tier switch provisioned for every
 * channel merges the ToR partial aggregates, and a FabricController
 * fans the control plane out across all of them. See
 * docs/ARCHITECTURE.md for the life of a cross-rack DATA packet.
 */
#ifndef ASK_ASK_CLUSTER_H
#define ASK_ASK_CLUSTER_H

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ask/config.h"
#include "ask/controller.h"
#include "ask/daemon.h"
#include "ask/fabric.h"
#include "ask/mgmt.h"
#include "ask/switch_program.h"
#include "ask/topology.h"
#include "ask/wal.h"
#include "net/cost_model.h"
#include "net/network.h"
#include "obs/observability.h"
#include "obs/sampler.h"
#include "pisa/pisa_switch.h"
#include "sim/chaos.h"
#include "sim/simulator.h"

namespace ask::core {

/** Cluster-level deployment parameters. */
struct ClusterConfig
{
    AskConfig ask;
    net::CostModelSpec cost;

    /**
     * The physical layout: racks, hosts per rack, tier links. Build
     * one with TopologyBuilder. When unset, a single-rack topology of
     * `num_hosts` servers is synthesized (the pre-fabric behavior).
     */
    std::optional<Topology> topology;

    /** Servers attached to the ToR switch.
     *  Deprecation note (back-compat shim): only consulted when
     *  `topology` is unset; new callers should describe the layout
     *  with TopologyBuilder instead. */
    std::uint32_t num_hosts = 2;
    /** Per-port line rate (host <-> ToR). */
    double link_gbps = 100.0;
    /** One-way cable propagation delay (host <-> ToR). */
    Nanoseconds link_propagation_ns = 500;
    /** Fault injection on every host<->switch cable. Tier links carry
     *  their own FaultSpec in the Topology. */
    net::FaultSpec faults = net::FaultSpec::reliable();
    /** Seed for fault streams. */
    std::uint64_t seed = 1;

    /** Management-network latency (controller RPCs). */
    Nanoseconds mgmt_latency_ns = 20 * units::kMicrosecond;
    /** Latency of the receiver->sender task notification (§3.1 step 4). */
    Nanoseconds notify_latency_ns = 50 * units::kMicrosecond;

    /** Pipeline depth; the default fits the 32-AA program. Chained
     *  pipelines are modeled as more stages. */
    std::size_t switch_stages = pisa::kDefaultStagesPerPipeline;
    std::size_t switch_sram_per_stage = pisa::kDefaultStageSramBytes;
};

/** One sender's contribution to a task. */
struct StreamSpec
{
    HostId host = HostId{0};
    KvStream stream;
};

/** Result of a completed aggregation task. */
struct TaskResult
{
    AggregateMap result;
    TaskReport report;

    /** The task produced a result (report.status == TaskStatus::kOk). */
    bool ok() const { return report.ok(); }
};

/** A fully wired ASK deployment. */
class AskCluster
{
  public:
    explicit AskCluster(const ClusterConfig& config);

    /**
     * External-simulator mode: wire the whole deployment onto a
     * simulator the caller owns — in practice a sim::ParallelEngine
     * island, so several clusters can run island-parallel under the
     * engine's deterministic merge (see docs/CONCURRENCY.md). The
     * cluster registers every event (packets, chaos, management RPCs)
     * on `external`, which must outlive the cluster; run() drains it
     * as usual, or the engine drives it together with its siblings.
     */
    AskCluster(const ClusterConfig& config, sim::Simulator& external);

    ~AskCluster();

    AskCluster(const AskCluster&) = delete;
    AskCluster& operator=(const AskCluster&) = delete;

    /**
     * Submit an aggregation task: `receiver_host` runs the receiver,
     * each StreamSpec's host streams its tuples. `on_done` fires at
     * completion (simulated time). Call run() to execute. Per-task
     * knobs (region length, liveness timeout, swap policy, tracing)
     * travel in `options`: `{.region_len = 32}`.
     *
     * In a multi-switch fabric, shadow-copy swaps are forced to
     * SwapPolicy::kDisabled: a swap epoch would have to flip atomically
     * across every switch on the task's paths, which the tier protocol
     * does not attempt (finalize drains both copies instead).
     */
    void submit_task(TaskId task, HostId receiver_host,
                     std::vector<StreamSpec> streams,
                     const TaskOptions& options = {},
                     TaskDoneFn on_done = nullptr);

    /** Convenience: submit one task, run the simulator to completion,
     *  and return the result. */
    TaskResult run_task(TaskId task, HostId receiver_host,
                        std::vector<StreamSpec> streams,
                        const TaskOptions& options = {});

    /** Drain the event queue. Returns the final simulated time. */
    sim::SimTime run() { return simulator_.run(); }

    sim::Simulator& simulator() { return simulator_; }
    net::Network& network() { return network_; }
    AskDaemon& daemon(HostId host) { return *daemons_.at(host.value()); }
    std::uint32_t num_hosts() const
    {
        return static_cast<std::uint32_t>(daemons_.size());
    }

    // ---- topology ---------------------------------------------------------

    /** The deployed layout (synthesized single-rack when the config
     *  carried none). */
    const Topology& topology() const { return topo_; }
    std::uint32_t num_racks() const { return topo_.num_racks(); }
    /** Switches in the fabric: one ToR per rack, plus the aggregation
     *  tier when there is more than one rack. */
    std::uint32_t num_switches() const
    {
        return static_cast<std::uint32_t>(switches_.size());
    }
    RackId rack_of(HostId host) const { return topo_.rack_of_host(host); }

    // ---- per-switch accessors ---------------------------------------------

    pisa::PisaSwitch& pisa_switch(SwitchId s)
    {
        return *switches_.at(s.value());
    }
    AskSwitchProgram& program(SwitchId s) { return *programs_.at(s.value()); }
    const SwitchAggStats& switch_stats(SwitchId s) const
    {
        return programs_.at(s.value())->stats();
    }
    net::NodeId switch_node(SwitchId s) const
    {
        return switches_.at(s.value())->node_id();
    }

    /** The control plane: a plain AskSwitchController for one rack, a
     *  FabricController (fan-out) for several. */
    AskSwitchController& controller() { return *controller_; }

    // ---- deprecated single-switch shims ------------------------------------
    // Deprecation note (back-compat shims): these pre-fabric accessors
    // resolve to switch 0 — rack 0's ToR. They are exact on a
    // single-rack cluster and partial views on a fabric; new code
    // should pass a SwitchId.
    pisa::PisaSwitch& pisa_switch() { return pisa_switch(SwitchId{0}); }
    AskSwitchProgram& program() { return program(SwitchId{0}); }
    const SwitchAggStats& switch_stats() const
    {
        return switch_stats(SwitchId{0});
    }
    net::NodeId switch_node() const { return switch_node(SwitchId{0}); }

    const ClusterConfig& config() const { return config_; }

    /** Aggregate host stats over all daemons. */
    HostStats total_host_stats() const;

    /** Aggregate switch stats over the whole fabric. */
    SwitchAggStats total_switch_stats() const;

    /** The shared management plane (control network + controller RPCs). */
    MgmtPlane& mgmt() { return *mgmt_; }

    // ---- observability ----------------------------------------------------

    /** The cluster-wide metrics registry. Every component's counters
     *  are exposed here at construction time. */
    obs::MetricsRegistry& metrics() { return obs_.registry; }

    /** The cluster-wide packet tracer. Disabled by default; enable
     *  globally (`tracer().set_enabled(true)`) or per task
     *  (TaskOptions::trace). */
    obs::PacketTracer& tracer() { return obs_.tracer; }

    /** The whole bundle, for hand-wired daemons. */
    obs::Observability& observability() { return obs_; }

    /** Point-in-time copy of every metric (counters summed over their
     *  sources). Snapshots merge associatively across clusters. */
    obs::MetricsSnapshot metrics_snapshot() const
    {
        return obs_.registry.snapshot();
    }

    /**
     * Start periodic time-series sampling (simulated time): goodput,
     * per-channel core occupancy, switch aggregation ratio, and
     * cwnd/RTO means, recorded into the registry every `interval_ns`.
     * Call once, before run().
     */
    void enable_sampling(Nanoseconds interval_ns);

    /**
     * Arm a chaos plan: every episode kind is wired to the matching
     * recovery machinery — link overrides on the fabric, register wipe
     * plus region-reinstall/fence/replay on switch reboot (the subject
     * selects which switch of the fabric reboots), outage and delay
     * windows on the management plane, and the data-plane blackhole on
     * every switch program. May be called once per cluster.
     */
    void arm_chaos(const sim::ChaosPlan& plan);

    /** Fault-injection/recovery counters over every component. */
    ChaosStats chaos_stats() const;

    /** The cluster's stable storage: every host process (daemons and
     *  the per-switch controller journals) writes to a WAL here before
     *  acting, and crash recovery replays it. */
    WalStore& wal_store() { return wal_store_; }

    /** The armed fault scheduler (null until arm_chaos). */
    sim::FaultScheduler* fault_scheduler() { return fault_scheduler_.get(); }

    // ---- host-crash recovery (also callable directly from tests) ---------

    /** Crash host `host`'s daemon process (its WAL survives). */
    void crash_host(HostId host);
    /** Restart a crashed daemon: WAL replay, deferred-work drain, and —
     *  when the host was mid-send for an active task — a cluster-wide
     *  replay reset. */
    void restart_host(HostId host);
    /** Crash the controller process (allocation journals lost; the
     *  management endpoint goes down with it). */
    void crash_controller();
    /** Restart the controller: journal rebuild from every per-switch
     *  WAL, then the management endpoint returns. */
    void restart_controller();

  private:
    /** The real constructor both public overloads delegate to:
     *  `external == nullptr` means own the simulator. */
    AskCluster(const ClusterConfig& config, sim::Simulator* external);

    /** Tasks currently in flight, for reboot recovery. */
    struct ActiveTask
    {
        std::uint32_t receiver_host = 0;
        std::vector<std::uint32_t> sender_hosts;
    };

    void on_switch_reboot_start(const sim::ChaosEvent& e);
    void on_switch_reboot_end(const sim::ChaosEvent& e);

    /** Which switch a chaos event's subject lands on. */
    SwitchId subject_switch(const sim::ChaosEvent& e) const
    {
        return SwitchId{e.subject % num_switches()};
    }

    /** Any switch of the fabric currently offline (mgmt gating). */
    bool any_switch_offline() const;

    /** The ToR serving `host`. */
    pisa::PisaSwitch& tor_of(std::uint32_t host)
    {
        return *switches_[topo_.rack_of_host(HostId{host}).value()];
    }

    /** Run `fn` now, or queue it until `host` restarts if it is
     *  crashed (recovery work aimed at a dead process must wait for —
     *  and compose with — its WAL rebuild). */
    void run_on_host(std::uint32_t host, std::function<void()> fn);

    /** Deliver (and drop from the registry) a task's completion,
     *  stamping the per-switch shard map onto the report. */
    void finish_task(TaskId task, AggregateMap result, TaskReport report);

    /** Fail an active task whose durable state is unrecoverable. */
    void abort_active_task(TaskId task, TaskStatus status,
                           const std::string& detail);

    /** Discard every active task's partial aggregate on every switch
     *  (before a from-scratch replay that would double-count them). */
    void clear_active_regions();

    /**
     * A sender crashed mid-stream: its in-flight accounting is gone, so
     * exactness is re-established from scratch — wipe every active
     * task's switch regions, fence all live channels, reset every
     * receiver, and replay all archived streams after a drain window.
     */
    void global_replay_reset();

    ClusterConfig config_;
    Topology topo_;
    /** Declared before every component: the registry holds pointers to
     *  their live counters, so it must construct first (and destruct
     *  last). */
    obs::Observability obs_;
    /** Stable storage. Declared before the components that journal into
     *  it and survives their crashes by construction. */
    WalStore wal_store_;
    /** Owns the event queue in the classic mode; null when the cluster
     *  was constructed onto an external (engine-island) simulator. */
    std::unique_ptr<sim::Simulator> owned_simulator_;
    /** The simulator every component schedules on — *owned_simulator_
     *  or the caller's. All code below talks to this reference. */
    sim::Simulator& simulator_;
    net::Network network_;
    /** One per SwitchId: ToRs 0..R-1, then the tier switch (if any). */
    std::vector<std::unique_ptr<pisa::PisaSwitch>> switches_;
    std::vector<std::unique_ptr<AskSwitchProgram>> programs_;
    std::unique_ptr<AskSwitchController> controller_;
    std::unique_ptr<MgmtPlane> mgmt_;
    std::vector<std::unique_ptr<AskDaemon>> daemons_;
    std::unique_ptr<sim::FaultScheduler> fault_scheduler_;
    std::unordered_map<TaskId, ActiveTask> active_tasks_;
    /** Bumped per reboot recovery: a replay scheduled by recovery N is
     *  void once recovery N+1 has re-fenced the channels (its frames
     *  would land on top of recovery N+1's own replay). */
    std::uint64_t recovery_epoch_ = 0;
    /** The real per-task completion callbacks. A receiver crash
     *  destroys the daemon-held std::function; recovery re-points the
     *  rebuilt task at this registry, so the application still hears
     *  the outcome. */
    std::unordered_map<TaskId, TaskDoneFn> done_registry_;
    /** Recovery work aimed at a crashed host, drained at its restart
     *  (after the WAL rebuild it must compose with). */
    std::unordered_map<std::uint32_t, std::vector<std::function<void()>>>
        pending_on_restart_;
    bool controller_down_ = false;
    ChaosStats chaos_stats_;
    std::unique_ptr<obs::Sampler> sampler_;
};

}  // namespace ask::core

#endif  // ASK_ASK_CLUSTER_H
