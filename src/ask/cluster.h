/**
 * @file
 * AskCluster: the top-level facade wiring a complete ASK deployment —
 * simulator, star fabric, PISA switch running the ASK program, switch
 * controller, and one daemon per server. This is the public entry point
 * used by examples, tests, and benchmarks.
 */
#ifndef ASK_ASK_CLUSTER_H
#define ASK_ASK_CLUSTER_H

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ask/config.h"
#include "ask/controller.h"
#include "ask/daemon.h"
#include "ask/mgmt.h"
#include "ask/switch_program.h"
#include "ask/wal.h"
#include "net/cost_model.h"
#include "net/network.h"
#include "obs/observability.h"
#include "obs/sampler.h"
#include "pisa/pisa_switch.h"
#include "sim/chaos.h"
#include "sim/simulator.h"

namespace ask::core {

/** Cluster-level deployment parameters. */
struct ClusterConfig
{
    AskConfig ask;
    net::CostModelSpec cost;

    /** Servers attached to the ToR switch. */
    std::uint32_t num_hosts = 2;
    /** Per-port line rate. */
    double link_gbps = 100.0;
    /** One-way cable propagation delay. */
    Nanoseconds link_propagation_ns = 500;
    /** Fault injection on every host<->switch cable. */
    net::FaultSpec faults = net::FaultSpec::reliable();
    /** Seed for fault streams. */
    std::uint64_t seed = 1;

    /** Management-network latency (controller RPCs). */
    Nanoseconds mgmt_latency_ns = 20 * units::kMicrosecond;
    /** Latency of the receiver->sender task notification (§3.1 step 4). */
    Nanoseconds notify_latency_ns = 50 * units::kMicrosecond;

    /** Pipeline depth; the default fits the 32-AA program. Chained
     *  pipelines are modeled as more stages. */
    std::size_t switch_stages = pisa::kDefaultStagesPerPipeline;
    std::size_t switch_sram_per_stage = pisa::kDefaultStageSramBytes;
};

/** One sender's contribution to a task. */
struct StreamSpec
{
    std::uint32_t host = 0;
    KvStream stream;
};

/** Result of a completed aggregation task. */
struct TaskResult
{
    AggregateMap result;
    TaskReport report;

    /** The task produced a result (report.status == TaskStatus::kOk). */
    bool ok() const { return report.ok(); }
};

/** A fully wired ASK deployment. */
class AskCluster
{
  public:
    explicit AskCluster(const ClusterConfig& config);
    ~AskCluster();

    AskCluster(const AskCluster&) = delete;
    AskCluster& operator=(const AskCluster&) = delete;

    /**
     * Submit an aggregation task: `receiver_host` runs the receiver,
     * each StreamSpec's host streams its tuples. `on_done` fires at
     * completion (simulated time). Call run() to execute. Per-task
     * knobs (region length, liveness timeout, swap policy, tracing)
     * travel in `options`: `{.region_len = 32}`.
     */
    void submit_task(TaskId task, std::uint32_t receiver_host,
                     std::vector<StreamSpec> streams,
                     const TaskOptions& options = {},
                     TaskDoneFn on_done = nullptr);

    /** Convenience: submit one task, run the simulator to completion,
     *  and return the result. */
    TaskResult run_task(TaskId task, std::uint32_t receiver_host,
                        std::vector<StreamSpec> streams,
                        const TaskOptions& options = {});

    /** Drain the event queue. Returns the final simulated time. */
    sim::SimTime run() { return simulator_.run(); }

    sim::Simulator& simulator() { return simulator_; }
    net::Network& network() { return network_; }
    AskDaemon& daemon(std::uint32_t host) { return *daemons_.at(host); }
    std::uint32_t num_hosts() const
    {
        return static_cast<std::uint32_t>(daemons_.size());
    }
    pisa::PisaSwitch& pisa_switch() { return *switch_; }
    AskSwitchProgram& program() { return *program_; }
    AskSwitchController& controller() { return *controller_; }
    const SwitchAggStats& switch_stats() const { return program_->stats(); }
    const ClusterConfig& config() const { return config_; }
    net::NodeId switch_node() const { return switch_->node_id(); }

    /** Aggregate host stats over all daemons. */
    HostStats total_host_stats() const;

    /** The shared management plane (control network + controller RPCs). */
    MgmtPlane& mgmt() { return *mgmt_; }

    // ---- observability ----------------------------------------------------

    /** The cluster-wide metrics registry. Every component's counters
     *  are exposed here at construction time. */
    obs::MetricsRegistry& metrics() { return obs_.registry; }

    /** The cluster-wide packet tracer. Disabled by default; enable
     *  globally (`tracer().set_enabled(true)`) or per task
     *  (TaskOptions::trace). */
    obs::PacketTracer& tracer() { return obs_.tracer; }

    /** The whole bundle, for hand-wired daemons. */
    obs::Observability& observability() { return obs_; }

    /** Point-in-time copy of every metric (counters summed over their
     *  sources). Snapshots merge associatively across clusters. */
    obs::MetricsSnapshot metrics_snapshot() const
    {
        return obs_.registry.snapshot();
    }

    /**
     * Start periodic time-series sampling (simulated time): goodput,
     * per-channel core occupancy, switch aggregation ratio, and
     * cwnd/RTO means, recorded into the registry every `interval_ns`.
     * Call once, before run().
     */
    void enable_sampling(Nanoseconds interval_ns);

    /**
     * Arm a chaos plan: every episode kind is wired to the matching
     * recovery machinery — link overrides on the fabric, register wipe
     * plus region-reinstall/fence/replay on switch reboot, outage and
     * delay windows on the management plane, and the data-plane
     * blackhole on the switch program. May be called once per cluster.
     */
    void arm_chaos(const sim::ChaosPlan& plan);

    /** Fault-injection/recovery counters over every component. */
    ChaosStats chaos_stats() const;

    /** The cluster's stable storage: every host process (daemons and
     *  the controller) journals to a WAL here before acting, and crash
     *  recovery replays it. */
    WalStore& wal_store() { return wal_store_; }

    /** The armed fault scheduler (null until arm_chaos). */
    sim::FaultScheduler* fault_scheduler() { return fault_scheduler_.get(); }

    // ---- host-crash recovery (also callable directly from tests) ---------

    /** Crash host `host`'s daemon process (its WAL survives). */
    void crash_host(std::uint32_t host);
    /** Restart a crashed daemon: WAL replay, deferred-work drain, and —
     *  when the host was mid-send for an active task — a cluster-wide
     *  replay reset. */
    void restart_host(std::uint32_t host);
    /** Crash the controller process (allocation journal lost; the
     *  management endpoint goes down with it). */
    void crash_controller();
    /** Restart the controller: journal rebuild from its WAL, then the
     *  management endpoint returns. */
    void restart_controller();

  private:
    /** Tasks currently in flight, for reboot recovery. */
    struct ActiveTask
    {
        std::uint32_t receiver_host = 0;
        std::vector<std::uint32_t> sender_hosts;
    };

    void on_switch_reboot_start(const sim::ChaosEvent& e);
    void on_switch_reboot_end(const sim::ChaosEvent& e);

    /** Run `fn` now, or queue it until `host` restarts if it is
     *  crashed (recovery work aimed at a dead process must wait for —
     *  and compose with — its WAL rebuild). */
    void run_on_host(std::uint32_t host, std::function<void()> fn);

    /** Deliver (and drop from the registry) a task's completion. */
    void finish_task(TaskId task, AggregateMap result, TaskReport report);

    /** Fail an active task whose durable state is unrecoverable. */
    void abort_active_task(TaskId task, TaskStatus status,
                           const std::string& detail);

    /**
     * A sender crashed mid-stream: its in-flight accounting is gone, so
     * exactness is re-established from scratch — wipe every active
     * task's switch region, fence all live channels, reset every
     * receiver, and replay all archived streams after a drain window.
     */
    void global_replay_reset();

    ClusterConfig config_;
    /** Declared before every component: the registry holds pointers to
     *  their live counters, so it must construct first (and destruct
     *  last). */
    obs::Observability obs_;
    /** Stable storage. Declared before the components that journal into
     *  it and survives their crashes by construction. */
    WalStore wal_store_;
    sim::Simulator simulator_;
    net::Network network_;
    std::unique_ptr<pisa::PisaSwitch> switch_;
    std::unique_ptr<AskSwitchProgram> program_;
    std::unique_ptr<AskSwitchController> controller_;
    std::unique_ptr<MgmtPlane> mgmt_;
    std::vector<std::unique_ptr<AskDaemon>> daemons_;
    std::unique_ptr<sim::FaultScheduler> fault_scheduler_;
    std::unordered_map<TaskId, ActiveTask> active_tasks_;
    /** Bumped per reboot recovery: a replay scheduled by recovery N is
     *  void once recovery N+1 has re-fenced the channels (its frames
     *  would land on top of recovery N+1's own replay). */
    std::uint64_t recovery_epoch_ = 0;
    /** The real per-task completion callbacks. A receiver crash
     *  destroys the daemon-held std::function; recovery re-points the
     *  rebuilt task at this registry, so the application still hears
     *  the outcome. */
    std::unordered_map<TaskId, TaskDoneFn> done_registry_;
    /** Recovery work aimed at a crashed host, drained at its restart
     *  (after the WAL rebuild it must compose with). */
    std::unordered_map<std::uint32_t, std::vector<std::function<void()>>>
        pending_on_restart_;
    bool controller_down_ = false;
    ChaosStats chaos_stats_;
    std::unique_ptr<obs::Sampler> sampler_;
};

}  // namespace ask::core

#endif  // ASK_ASK_CLUSTER_H
