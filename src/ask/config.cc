#include "ask/config.h"

#include "common/logging.h"

namespace ask::core {

void
AskConfig::validate() const
{
    if (num_aas == 0 || num_aas > 64)
        fail_config("num_aas must be 1..64 (bitmap is 64 bits wide): ", num_aas);
    if (part_bits != 16 && part_bits != 32)
        fail_config("part_bits must be 16 or 32: ", part_bits);
    if (medium_segments < 1)
        fail_config("medium_segments must be >= 1");
    if (medium_aas() > num_aas)
        fail_config("medium groups (", medium_aas(), " AAs) exceed num_aas (",
              num_aas, ")");
    if (medium_groups > 0 && short_aas() == 0)
        fail_config("no AAs left for short keys");
    if (shadow_copies && aggregators_per_aa % 2 != 0)
        fail_config("aggregators_per_aa must be even with shadow copies");
    if (aggregators_per_aa == 0)
        fail_config("aggregators_per_aa must be positive");
    if (window == 0 || (window & (window - 1)) != 0)
        fail_config("window must be a positive power of two: ", window);
    if (channels_per_host == 0)
        fail_config("channels_per_host must be positive");
    if (max_hosts == 0)
        fail_config("max_hosts must be positive");
    if (max_fin_tries == 0)
        fail_config("max_fin_tries must be positive");
    if (mgmt_max_tries == 0)
        fail_config("mgmt_max_tries must be positive");
    if (mgmt_backoff_base_ns <= 0 || mgmt_backoff_cap_ns < mgmt_backoff_base_ns)
        fail_config("management backoff must satisfy 0 < base <= cap");
    if (recovery_drain_ns < 0 || sender_liveness_timeout_ns < 0)
        fail_config("robustness timeouts must be non-negative");
    if (static_cast<std::uint8_t>(op) >= kNumReduceOps)
        fail_config("unknown reduce op id: ", static_cast<unsigned>(op));
    if (op == ReduceOp::kFloat && part_bits != 32)
        fail_config("kFloat fixed-point reduction requires 32-bit vParts "
                    "(part_bits == 32), got ", part_bits);
    if (float_frac_bits == 0 || float_frac_bits > 31)
        fail_config("float_frac_bits must be 1..31: ", float_frac_bits);
}

}  // namespace ask::core
