/**
 * @file
 * Fundamental types of the ASK service.
 */
#ifndef ASK_ASK_TYPES_H
#define ASK_ASK_TYPES_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace ask::core {

/**
 * An application key: a non-empty byte string containing no NUL bytes.
 *
 * The NUL restriction comes from the data plane: aggregator kParts use an
 * all-zero segment to mean "blank", and key padding uses NUL bytes
 * (paper §3.2.3 pads keys to the aggregator width). Numeric keys should
 * be encoded with ask::u64_key().
 */
using Key = std::string;

/** A 32-bit value, matching the switch register vPart width. Sums wrap
 *  modulo 2^32 exactly as they would on the Tofino ALU. */
using Value = std::uint32_t;

/** One key-value tuple of a stream. */
struct KvTuple
{
    Key key;
    Value value = 0;

    bool
    operator==(const KvTuple& o) const
    {
        return key == o.key && value == o.value;
    }
};

/** A key-value stream: the unit applications hand to ASK (paper Eq. 1). */
using KvStream = std::vector<KvTuple>;

/** Aggregation result: key -> accumulated value (host accumulates in 64
 *  bits; the on-switch portion wraps at 32 bits per register semantics). */
using AggregateMap = std::unordered_map<Key, std::uint64_t>;

/** Identifies an aggregation task cluster-wide. */
using TaskId = std::uint32_t;

/** Cluster-wide data-channel id: host * channels_per_host + local index. */
using ChannelId = std::uint16_t;

/** Per-channel packet sequence number. */
using Seq = std::uint32_t;

/** Aggregation operator supported by the switch ALU. */
enum class AggOp : std::uint8_t
{
    kAdd = 0,
    kMax = 1,
    kMin = 2,
};

/** Apply an AggOp to two 32-bit operands (the switch ALU semantics). */
inline Value
apply_op(AggOp op, Value acc, Value v)
{
    switch (op) {
      case AggOp::kAdd:
        return static_cast<Value>(acc + v);  // wraps mod 2^32
      case AggOp::kMax:
        return acc > v ? acc : v;
      case AggOp::kMin:
        return acc < v ? acc : v;
    }
    return acc;
}

/** Accumulate one observation into a 64-bit host-side aggregate map. */
void accumulate(AggregateMap& acc, const Key& key, std::uint64_t value,
                AggOp op);

/** Reference aggregation of whole streams on the host (ground truth for
 *  tests; also the receiver-side merge primitive). */
void aggregate_into(AggregateMap& acc, const KvStream& stream, AggOp op);

/** Merge `from` into `acc` with the given operator. */
void merge_into(AggregateMap& acc, const AggregateMap& from, AggOp op);

}  // namespace ask::core

#endif  // ASK_ASK_TYPES_H
