/**
 * @file
 * Fundamental types of the ASK service.
 */
#ifndef ASK_ASK_TYPES_H
#define ASK_ASK_TYPES_H

#include <compare>
#include <cstdint>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

namespace ask::core {

namespace detail {

/**
 * A strongly typed index: wraps a dense std::uint32_t so that host,
 * switch, and rack indices are distinct types the compiler keeps apart —
 * `daemon(HostId)` cannot be called with a SwitchId, and a RackId cannot
 * silently flow into a host-indexed array.
 *
 * Deprecation note (back-compat shim): construction from a raw
 * std::uint32_t is *implicit* so the pre-fabric API surface
 * (`submit_task(1, 0, ...)`, `StreamSpec{.host = 2}`) keeps compiling
 * unchanged. New code should spell the type (`HostId{2}`); the implicit
 * conversion is scheduled to become explicit once in-tree callers have
 * migrated. The reverse direction (id -> integer) is explicit via
 * value(), so two different id types never cross-assign.
 */
template <class Tag>
class StrongId
{
  public:
    constexpr StrongId() = default;
    constexpr StrongId(std::uint32_t raw) : raw_(raw) {}  // NOLINT(implicit)

    /** The underlying dense index (explicit escape hatch). */
    constexpr std::uint32_t value() const { return raw_; }
    constexpr explicit operator std::uint32_t() const { return raw_; }

    constexpr auto operator<=>(const StrongId&) const = default;

    friend std::ostream&
    operator<<(std::ostream& os, StrongId id)
    {
        return os << id.raw_;
    }

  private:
    std::uint32_t raw_ = 0;
};

}  // namespace detail

/** A server (daemon) index, dense in [0, num_hosts). */
using HostId = detail::StrongId<struct HostIdTag>;
/** A switch index: ToRs are [0, num_racks), the aggregation-tier switch
 *  (multi-rack fabrics only) follows them. */
using SwitchId = detail::StrongId<struct SwitchIdTag>;
/** A rack index, dense in [0, num_racks). */
using RackId = detail::StrongId<struct RackIdTag>;

/**
 * An application key: a non-empty byte string containing no NUL bytes.
 *
 * The NUL restriction comes from the data plane: aggregator kParts use an
 * all-zero segment to mean "blank", and key padding uses NUL bytes
 * (paper §3.2.3 pads keys to the aggregator width). Numeric keys should
 * be encoded with ask::u64_key().
 */
using Key = std::string;

/** A 32-bit value, matching the switch register vPart width. Sums wrap
 *  modulo 2^32 exactly as they would on the Tofino ALU. */
using Value = std::uint32_t;

/** One key-value tuple of a stream. */
struct KvTuple
{
    Key key;
    Value value = 0;

    bool
    operator==(const KvTuple& o) const
    {
        return key == o.key && value == o.value;
    }
};

/** A key-value stream: the unit applications hand to ASK (paper Eq. 1). */
using KvStream = std::vector<KvTuple>;

/** Aggregation result: key -> accumulated value (host accumulates in 64
 *  bits; the on-switch portion wraps at 32 bits per register semantics). */
using AggregateMap = std::unordered_map<Key, std::uint64_t>;

/** Identifies an aggregation task cluster-wide. */
using TaskId = std::uint32_t;

/** Cluster-wide data-channel id: host * channels_per_host + local index. */
using ChannelId = std::uint16_t;

/** Per-channel packet sequence number. */
using Seq = std::uint32_t;

/**
 * Reduction operator bound to a task's aggregation domain.
 *
 * The enum splits into a *lift* (applied once when a raw tuple enters
 * the domain — see reduce_lift()) and a binary *combine* (apply_op()):
 *
 *  - kAdd:   lift = identity, combine = 32-bit wrapping add.
 *  - kMax:   lift = identity, combine = unsigned max (idempotent).
 *  - kMin:   lift = identity, combine = unsigned min (idempotent).
 *  - kCount: lift = v |-> 1,  combine = add — partial counts from
 *            different shards add, so the switch ALU stays a sum.
 *  - kFloat: fixed-point gradients. Values are Q-format two's
 *            complement (AskConfig::float_frac_bits fractional bits,
 *            see float_encode()); combine is the same wrapping 32-bit
 *            add, which handles negatives for free. Requires 32-bit
 *            vParts (part_bits == 32).
 *
 * The numeric ids are wire format (carried in the frame type byte) and
 * WAL format: existing values must never be renumbered.
 */
enum class ReduceOp : std::uint8_t
{
    kAdd = 0,
    kMax = 1,
    kMin = 2,
    kCount = 3,
    kFloat = 4,
};

/** One past the largest valid ReduceOp id (wire validation bound). */
inline constexpr std::uint8_t kNumReduceOps = 5;

/** Deprecated alias: the operator predates per-task binding, when it
 *  was a single cluster-wide "aggregation op". */
using AggOp = ReduceOp;

/** Short lower-case name ("sum", "max", "min", "count", "float"). */
const char* reduce_op_name(ReduceOp op);

/** Parse a name as printed by reduce_op_name() ("add" also accepted
 *  for kAdd). Returns false on unknown names. */
bool parse_reduce_op(const std::string& name, ReduceOp& out);

/** True when re-applying an already-merged contribution cannot change
 *  the aggregate (min/max). Non-idempotent ops lean on the seen-window
 *  for exactly-once; idempotent ops would survive replay regardless. */
constexpr bool
reduce_op_idempotent(ReduceOp op)
{
    return op == ReduceOp::kMax || op == ReduceOp::kMin;
}

/** Identity element of the *combine*: folding it in leaves any
 *  aggregate unchanged. (Empty windows fold to no entry at all; the
 *  identity exists so property tests can state that law.) */
constexpr Value
reduce_identity(ReduceOp op)
{
    return op == ReduceOp::kMin ? ~static_cast<Value>(0)
                                : static_cast<Value>(0);
}

/** Lift a raw tuple value into the aggregation domain. Applied exactly
 *  once per tuple, at the point it first enters a fold (sender
 *  packetization feeds the switch raw; the receiver lifts on decode).
 *  Count maps every observation to 1; all other ops are identity. */
constexpr Value
reduce_lift(ReduceOp op, Value v)
{
    return op == ReduceOp::kCount ? static_cast<Value>(1) : v;
}

/** 64-bit lift for host-side folds. */
constexpr std::uint64_t
reduce_lift64(ReduceOp op, std::uint64_t v)
{
    return op == ReduceOp::kCount ? static_cast<std::uint64_t>(1) : v;
}

/** Apply a ReduceOp *combine* to two 32-bit operands (the switch ALU
 *  semantics). Operands must already be lifted. */
inline Value
apply_op(ReduceOp op, Value acc, Value v)
{
    switch (op) {
      case ReduceOp::kAdd:
      case ReduceOp::kCount:
      case ReduceOp::kFloat:
        return static_cast<Value>(acc + v);  // wraps mod 2^32
      case ReduceOp::kMax:
        return acc > v ? acc : v;
      case ReduceOp::kMin:
        return acc < v ? acc : v;
    }
    return acc;
}

// ---- fixed-point float encoding (kFloat) ---------------------------------

/** Encode a real number as Q-format two's complement with `frac_bits`
 *  fractional bits (round to nearest, saturating at the int32 range).
 *  The switch's wrapping 32-bit add then sums encodings exactly. */
Value float_encode(double x, std::uint32_t frac_bits);

/** Decode a Q-format word back to a real number (sign-extending). A
 *  64-bit host aggregate decodes through its low 32 bits — kFloat
 *  arithmetic is defined modulo 2^32 end-to-end, like the switch. */
double float_decode(std::uint64_t v, std::uint32_t frac_bits);

// ---- host-side folds -----------------------------------------------------

/** Combine one already-lifted observation into a 64-bit host-side
 *  aggregate map (first observation of a key is stored as-is). */
void accumulate(AggregateMap& acc, const Key& key, std::uint64_t value,
                ReduceOp op);

/** Fold a *raw* stream on the host: lifts every tuple, then combines.
 *  This is the reference aggregation (ground truth for tests) and the
 *  receiver-side fold for tuples arriving straight from senders. */
void aggregate_into(AggregateMap& acc, const KvStream& stream, ReduceOp op);

/** Fold a stream of *partials* (switch fetches, tier drains): combines
 *  without lifting — a count partial is already a count, not a raw
 *  observation. For every op except kCount this matches
 *  aggregate_into(); splitting the two keeps lift exactly-once. */
void merge_stream_into(AggregateMap& acc, const KvStream& stream,
                       ReduceOp op);

/** Merge the partials in `from` into `acc` (combine only, no lift). */
void merge_into(AggregateMap& acc, const AggregateMap& from, ReduceOp op);

}  // namespace ask::core

namespace ask {
// The id types are part of the service's top-level vocabulary.
using core::HostId;
using core::RackId;
using core::SwitchId;
}  // namespace ask

#endif  // ASK_ASK_TYPES_H
