/**
 * @file
 * Fundamental types of the ASK service.
 */
#ifndef ASK_ASK_TYPES_H
#define ASK_ASK_TYPES_H

#include <compare>
#include <cstdint>
#include <ostream>
#include <string>
#include <unordered_map>
#include <vector>

namespace ask::core {

namespace detail {

/**
 * A strongly typed index: wraps a dense std::uint32_t so that host,
 * switch, and rack indices are distinct types the compiler keeps apart —
 * `daemon(HostId)` cannot be called with a SwitchId, and a RackId cannot
 * silently flow into a host-indexed array.
 *
 * Deprecation note (back-compat shim): construction from a raw
 * std::uint32_t is *implicit* so the pre-fabric API surface
 * (`submit_task(1, 0, ...)`, `StreamSpec{.host = 2}`) keeps compiling
 * unchanged. New code should spell the type (`HostId{2}`); the implicit
 * conversion is scheduled to become explicit once in-tree callers have
 * migrated. The reverse direction (id -> integer) is explicit via
 * value(), so two different id types never cross-assign.
 */
template <class Tag>
class StrongId
{
  public:
    constexpr StrongId() = default;
    constexpr StrongId(std::uint32_t raw) : raw_(raw) {}  // NOLINT(implicit)

    /** The underlying dense index (explicit escape hatch). */
    constexpr std::uint32_t value() const { return raw_; }
    constexpr explicit operator std::uint32_t() const { return raw_; }

    constexpr auto operator<=>(const StrongId&) const = default;

    friend std::ostream&
    operator<<(std::ostream& os, StrongId id)
    {
        return os << id.raw_;
    }

  private:
    std::uint32_t raw_ = 0;
};

}  // namespace detail

/** A server (daemon) index, dense in [0, num_hosts). */
using HostId = detail::StrongId<struct HostIdTag>;
/** A switch index: ToRs are [0, num_racks), the aggregation-tier switch
 *  (multi-rack fabrics only) follows them. */
using SwitchId = detail::StrongId<struct SwitchIdTag>;
/** A rack index, dense in [0, num_racks). */
using RackId = detail::StrongId<struct RackIdTag>;

/**
 * An application key: a non-empty byte string containing no NUL bytes.
 *
 * The NUL restriction comes from the data plane: aggregator kParts use an
 * all-zero segment to mean "blank", and key padding uses NUL bytes
 * (paper §3.2.3 pads keys to the aggregator width). Numeric keys should
 * be encoded with ask::u64_key().
 */
using Key = std::string;

/** A 32-bit value, matching the switch register vPart width. Sums wrap
 *  modulo 2^32 exactly as they would on the Tofino ALU. */
using Value = std::uint32_t;

/** One key-value tuple of a stream. */
struct KvTuple
{
    Key key;
    Value value = 0;

    bool
    operator==(const KvTuple& o) const
    {
        return key == o.key && value == o.value;
    }
};

/** A key-value stream: the unit applications hand to ASK (paper Eq. 1). */
using KvStream = std::vector<KvTuple>;

/** Aggregation result: key -> accumulated value (host accumulates in 64
 *  bits; the on-switch portion wraps at 32 bits per register semantics). */
using AggregateMap = std::unordered_map<Key, std::uint64_t>;

/** Identifies an aggregation task cluster-wide. */
using TaskId = std::uint32_t;

/** Cluster-wide data-channel id: host * channels_per_host + local index. */
using ChannelId = std::uint16_t;

/** Per-channel packet sequence number. */
using Seq = std::uint32_t;

/** Aggregation operator supported by the switch ALU. */
enum class AggOp : std::uint8_t
{
    kAdd = 0,
    kMax = 1,
    kMin = 2,
};

/** Apply an AggOp to two 32-bit operands (the switch ALU semantics). */
inline Value
apply_op(AggOp op, Value acc, Value v)
{
    switch (op) {
      case AggOp::kAdd:
        return static_cast<Value>(acc + v);  // wraps mod 2^32
      case AggOp::kMax:
        return acc > v ? acc : v;
      case AggOp::kMin:
        return acc < v ? acc : v;
    }
    return acc;
}

/** Accumulate one observation into a 64-bit host-side aggregate map. */
void accumulate(AggregateMap& acc, const Key& key, std::uint64_t value,
                AggOp op);

/** Reference aggregation of whole streams on the host (ground truth for
 *  tests; also the receiver-side merge primitive). */
void aggregate_into(AggregateMap& acc, const KvStream& stream, AggOp op);

/** Merge `from` into `acc` with the given operator. */
void merge_into(AggregateMap& acc, const AggregateMap& from, AggOp op);

}  // namespace ask::core

namespace ask {
// The id types are part of the service's top-level vocabulary.
using core::HostId;
using core::RackId;
using core::SwitchId;
}  // namespace ask

#endif  // ASK_ASK_TYPES_H
