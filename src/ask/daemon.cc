#include "ask/daemon.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace ask::core {

const char*
task_status_name(TaskStatus status)
{
    switch (status) {
      case TaskStatus::kOk:
        return "ok";
      case TaskStatus::kRegionExhausted:
        return "region_exhausted";
      case TaskStatus::kSenderTimeout:
        return "sender_timeout";
      case TaskStatus::kMgmtUnreachable:
        return "mgmt_unreachable";
      case TaskStatus::kSendBudgetExhausted:
        return "send_budget_exhausted";
      case TaskStatus::kHostCrashed:
        return "host_crashed";
    }
    return "?";
}

namespace {

/**
 * Sender channels checkpoint their sequence cursor every K allocations:
 * kSeqCheckpoint(upto = next_seq + K) promises "no seq >= upto is in
 * use until the next checkpoint", so a restart resuming at the highest
 * journaled `upto` can never reuse a pre-crash sequence number.
 */
constexpr Seq kSeqCheckpointInterval = 64;

}  // namespace

// ---------------------------------------------------------------------------
// DataChannel
// ---------------------------------------------------------------------------

DataChannel::DataChannel(AskDaemon& daemon, std::uint32_t local_index)
    : daemon_(daemon), local_index_(local_index)
{
}

ChannelId
DataChannel::global_id() const
{
    return static_cast<ChannelId>(
        daemon_.host_index().value() * daemon_.config().channels_per_host +
        local_index_);
}

sim::SimTime
DataChannel::charge(Nanoseconds cost)
{
    sim::SimTime now = daemon_.simulator().now();
    core_busy_ = std::max(core_busy_, now) + cost;
    busy_ns_ += static_cast<std::uint64_t>(cost);
    return core_busy_;
}

sim::SimTime
DataChannel::charge_background(Nanoseconds cost)
{
    // Background work also starts no earlier than the I/O lane is free
    // of already-queued work, approximating one core interleaving both.
    sim::SimTime now = daemon_.simulator().now();
    background_busy_ =
        std::max({background_busy_, core_busy_, now}) + cost;
    busy_ns_ += static_cast<std::uint64_t>(cost);
    return background_busy_;
}

void
DataChannel::submit_send(TaskId task, net::NodeId receiver, KvStream stream,
                         ReduceOp op, std::function<void()> on_complete,
                         bool replay)
{
    SendJob job;
    job.task = task;
    job.receiver = receiver;
    job.builder = std::make_unique<PacketBuilder>(daemon_.key_space());
    job.builder->enqueue(stream);
    job.on_complete = std::move(on_complete);
    job.op = op;
    job.replay = replay;
    daemon_.stats().tuples_sent += stream.size();
    ASK_TRACE(daemon_.tracer_, daemon_.simulator().now(), task, global_id(),
              0, obs::TraceStage::kSubmit, stream.size(),
              replay ? obs::kTraceFlagReplay : std::uint8_t{0});
    jobs_.push_back(std::move(job));
    pump();
}

void
DataChannel::schedule_pump(sim::SimTime at)
{
    if (pump_pending_)
        return;
    pump_pending_ = true;
    daemon_.simulator().schedule_at(at, [this] {
        pump_pending_ = false;
        pump();
    });
}

void
DataChannel::pump()
{
    sim::Simulator& simulator = daemon_.simulator();
    const AskConfig& cfg = daemon_.config();

    while (!jobs_.empty() && !fin_outstanding_) {
        SendJob& job = jobs_.front();

        // Channel-bind fence (fabric only). A tier switch never sees the
        // sequence numbers of intra-rack tasks, so its seen-window slots
        // for this channel can hold residue from two generations back —
        // the self-cleaning parity scheme assumes a gap-free stream.
        // The channel is quiescent here (the previous job fully ACKed
        // and FINed before this one reached the front), so fencing every
        // provisioning switch at next_seq is a clean window restart.
        // Single-switch deployments skip this: the lone switch observes
        // every sequence number and needs no fence.
        if (!job.fenced) {
            job.fenced = true;
            if (daemon_.controller_.num_switches() > 1)
                daemon_.controller_.fence_channel(global_id(), next_seq_);
        }

        if (job.builder->empty()) {
            // All frames ACKed and none pending: close the task on this
            // channel with a (reliable) FIN.
            if (in_flight_.empty()) {
                send_fin(job);
            }
            return;
        }

        // Window check: at most min(cwnd, W) packets outstanding,
        // spanning < W sequence numbers.
        Seq base = in_flight_.empty() ? next_seq_ : in_flight_.begin()->first;
        std::uint32_t window = std::min(cwnd_, cfg.window);
        if (next_seq_ >= base + window || in_flight_.size() >= window)
            return;

        // Core pacing: one packet per tx_cost of CPU.
        if (core_busy_ > simulator.now()) {
            schedule_pump(core_busy_);
            return;
        }

        // Build the next frame: DATA first, then LONG_DATA batches. A
        // degraded daemon routes everything — short and medium keys
        // included — through the bypass path in LONG framing.
        std::vector<std::uint8_t> frame;
        PacketType type;
        if (daemon_.degraded()) {
            auto batch = job.builder->next_bypass_batch(cfg.long_payload_bytes);
            ASK_ASSERT(batch.has_value(), "builder non-empty but no frames");
            AskHeader hdr;
            hdr.type = PacketType::kLongData;
            hdr.op = job.op;
            hdr.channel_id = global_id();
            hdr.task_id = job.task;
            hdr.seq = next_seq_;
            frame = make_long_frame(hdr, *batch);
            type = PacketType::kLongData;
            ++daemon_.stats().long_packets_sent;
        } else if (job.builder->next_data_into(built_scratch_)) {
            AskHeader hdr;
            hdr.type = PacketType::kData;
            hdr.op = job.op;
            hdr.num_slots = static_cast<std::uint8_t>(cfg.num_aas);
            hdr.channel_id = global_id();
            hdr.task_id = job.task;
            hdr.seq = next_seq_;
            hdr.bitmap = built_scratch_.bitmap;
            frame = make_frame(hdr, cfg.payload_bytes());
            write_slots(frame, built_scratch_.bitmap, cfg.num_aas,
                        built_scratch_.slots.data());
            type = PacketType::kData;
            ++daemon_.stats().data_packets_sent;
        } else {
            auto batch = job.builder->next_long_batch(cfg.long_payload_bytes);
            ASK_ASSERT(batch.has_value(), "builder non-empty but no frames");
            AskHeader hdr;
            hdr.type = PacketType::kLongData;
            hdr.op = job.op;
            hdr.channel_id = global_id();
            hdr.task_id = job.task;
            hdr.seq = next_seq_;
            frame = make_long_frame(hdr, *batch);
            type = PacketType::kLongData;
            ++daemon_.stats().long_packets_sent;
        }

        // Durability: promise the next K sequence numbers to the WAL
        // before using the first of them. On the checkpoint boundary the
        // append precedes the allocation below, so the journaled resume
        // point always covers every seq this process could have used.
        if (daemon_.wal_ != nullptr &&
            next_seq_ % kSeqCheckpointInterval == 0) {
            WalRecord r;
            r.kind = WalRecordKind::kSeqCheckpoint;
            r.channel = local_index_;
            r.seq = next_seq_ + kSeqCheckpointInterval;
            daemon_.wal_->append(r);
        }

        Seq seq = next_seq_++;
        ASK_TRACE(daemon_.tracer_, simulator.now(), job.task, global_id(),
                  seq, obs::TraceStage::kPacketize, 0,
                  job.replay ? obs::kTraceFlagReplay : std::uint8_t{0});
        auto [it, inserted] =
            in_flight_.emplace(seq, InFlight{std::move(frame), job.receiver,
                                             sim::kInvalidEvent, 0, 0, type});
        ASK_ASSERT(inserted, "duplicate in-flight seq");
        (void)it;
        transmit(seq, /*is_retransmit=*/false);
    }
}

void
DataChannel::transmit(Seq seq, bool is_retransmit)
{
    auto it = in_flight_.find(seq);
    ASK_ASSERT(it != in_flight_.end(), "transmit of unknown seq ", seq);
    InFlight& entry = it->second;

    // Retransmission budget: a frame this persistent marks the path as
    // broken, not congested. For DATA the remedy is the bypass path;
    // for a bypass/LONG frame there is no further fallback.
    const AskConfig& budget_cfg = daemon_.config();
    if (budget_cfg.max_data_tries > 0 &&
        entry.tries >= budget_cfg.max_data_tries) {
        if (entry.type == PacketType::kData) {
            daemon_.enter_degraded_mode(
                strf("DATA seq %u on channel %u exhausted %u transmissions",
                     seq, global_id(), entry.tries));
        } else {
            ++daemon_.chaos_.send_failures;
            fail_front_job(TaskStatus::kSendBudgetExhausted,
                           strf("bypass seq %u on channel %u exhausted %u "
                                "transmissions",
                                seq, global_id(), entry.tries));
        }
        return;
    }

    if (is_retransmit) {
        ++daemon_.stats().retransmissions;
        cwnd_ = std::max(cwnd_ / 2, 8u);  // multiplicative decrease
    }
    ++entry.tries;
    ASK_TRACE(daemon_.tracer_, daemon_.simulator().now(),
              jobs_.empty() ? 0 : jobs_.front().task, global_id(), seq,
              obs::TraceStage::kTx, entry.tries,
              is_retransmit ? obs::kTraceFlagRetransmit : std::uint8_t{0});

    sim::SimTime ready =
        charge(daemon_.cost_model().tx_cost_ns(entry.frame.size()));

    net::Packet pkt;
    pkt.src = daemon_.node_id();
    pkt.dst = entry.receiver;
    pkt.data = entry.frame;  // keep a copy for retransmission

    net::Network& network = daemon_.network();
    net::NodeId self = daemon_.node_id();
    net::NodeId hop = daemon_.switch_node();
    daemon_.simulator().schedule_at(
        ready, [&network, self, hop, p = std::move(pkt)]() mutable {
            network.send(self, hop, std::move(p));
        });
    entry.sent_at = ready;

    // Adaptive timeout plus exponential backoff on retransmissions: a
    // congested receiver delays ACKs past the base timeout, and
    // hammering it with more copies only makes it worse.
    std::uint32_t shift = std::min(entry.tries - 1, 5u);
    arm_timer(seq, ready + (rto() << shift));
}

Nanoseconds
DataChannel::rto() const
{
    if (!have_rtt_)
        return daemon_.config().retransmit_timeout_ns;
    auto est = static_cast<Nanoseconds>(srtt_ns_ + 4.0 * rttvar_ns_);
    return std::clamp(est, daemon_.config().retransmit_timeout_ns,
                      100 * daemon_.config().retransmit_timeout_ns);
}

void
DataChannel::observe_rtt(Nanoseconds sample)
{
    if (daemon_.rtt_hist_ != nullptr && sample >= 0)
        daemon_.rtt_hist_->observe(static_cast<std::uint64_t>(sample));
    double s = static_cast<double>(sample);
    if (!have_rtt_) {
        srtt_ns_ = s;
        rttvar_ns_ = s / 2.0;
        have_rtt_ = true;
        return;
    }
    rttvar_ns_ = 0.75 * rttvar_ns_ + 0.25 * std::abs(s - srtt_ns_);
    srtt_ns_ = 0.875 * srtt_ns_ + 0.125 * s;
}

void
DataChannel::arm_timer(Seq seq, sim::SimTime at)
{
    auto it = in_flight_.find(seq);
    ASK_ASSERT(it != in_flight_.end(), "timer for unknown seq");
    it->second.timer = daemon_.simulator().schedule_at(at, [this, seq] {
        auto jt = in_flight_.find(seq);
        if (jt == in_flight_.end())
            return;  // ACKed in the meantime
        jt->second.timer = sim::kInvalidEvent;
        transmit(seq, /*is_retransmit=*/true);
    });
}

void
DataChannel::on_ack(Seq seq)
{
    auto it = in_flight_.find(seq);
    if (it == in_flight_.end())
        return;  // duplicate ACK (e.g. for a retransmitted packet)
    if (it->second.timer != sim::kInvalidEvent)
        daemon_.simulator().cancel(it->second.timer);
    // Karn's rule: only un-retransmitted packets give clean RTT samples.
    if (it->second.tries == 1)
        observe_rtt(daemon_.simulator().now() - it->second.sent_at);
    ASK_TRACE(daemon_.tracer_, daemon_.simulator().now(),
              jobs_.empty() ? 0 : jobs_.front().task, global_id(), seq,
              obs::TraceStage::kSenderAcked, it->second.tries);
    in_flight_.erase(it);
    cwnd_ = std::min(cwnd_ + 1, daemon_.config().window);
    // ACK processing occupies the core briefly (burst-amortized).
    charge(daemon_.cost_model().ctrl_cost_ns());
    pump();
}

void
DataChannel::send_fin(const SendJob& job)
{
    fin_outstanding_ = true;
    ++fin_tries_;
    if (fin_tries_ > daemon_.config().max_fin_tries) {
        // The receiver is unreachable for good: fail the job through the
        // task-failure handler instead of aborting the whole process.
        ++daemon_.chaos_.fin_giveups;
        fail_front_job(TaskStatus::kSendBudgetExhausted,
                       strf("FIN for task %u undeliverable after %u attempts",
                            job.task, fin_tries_ - 1));
        return;
    }

    AskHeader hdr;
    hdr.type = PacketType::kFin;
    hdr.channel_id = global_id();
    hdr.task_id = job.task;

    sim::SimTime ready = charge(daemon_.cost_model().tx_cost_ns(
        net::kIpHeaderBytes + kAskHeaderBytes));
    net::Packet pkt = make_control_packet(daemon_.node_id(), job.receiver, hdr);

    net::Network& network = daemon_.network();
    net::NodeId self = daemon_.node_id();
    net::NodeId hop = daemon_.switch_node();
    daemon_.simulator().schedule_at(
        ready, [&network, self, hop, p = std::move(pkt)]() mutable {
            network.send(self, hop, std::move(p));
        });

    // FINs can be lost like anything else; retransmit until FIN_ACK.
    fin_timer_ = daemon_.simulator().schedule_at(
        ready + 4 * daemon_.config().retransmit_timeout_ns, [this] {
            fin_timer_ = sim::kInvalidEvent;
            if (fin_outstanding_) {
                fin_outstanding_ = false;
                ASK_ASSERT(!jobs_.empty(), "FIN timer with no job");
                send_fin(jobs_.front());
            }
        });
}

void
DataChannel::on_fin_ack(TaskId task)
{
    if (!fin_outstanding_ || jobs_.empty() || jobs_.front().task != task)
        return;  // stale or duplicate FIN_ACK
    fin_outstanding_ = false;
    fin_tries_ = 0;
    if (fin_timer_ != sim::kInvalidEvent) {
        daemon_.simulator().cancel(fin_timer_);
        fin_timer_ = sim::kInvalidEvent;
    }
    finish_front_job();
}

void
DataChannel::finish_front_job()
{
    ASK_ASSERT(!jobs_.empty(), "no job to finish");
    auto on_complete = std::move(jobs_.front().on_complete);
    jobs_.pop_front();
    if (on_complete)
        on_complete();
    pump();
}

void
DataChannel::fail_front_job(TaskStatus status, const std::string& reason)
{
    ASK_ASSERT(!jobs_.empty(), "no job to fail");
    for (auto& [seq, entry] : in_flight_) {
        if (entry.timer != sim::kInvalidEvent)
            daemon_.simulator().cancel(entry.timer);
    }
    in_flight_.clear();
    if (fin_timer_ != sim::kInvalidEvent) {
        daemon_.simulator().cancel(fin_timer_);
        fin_timer_ = sim::kInvalidEvent;
    }
    fin_outstanding_ = false;
    fin_tries_ = 0;

    TaskId task = jobs_.front().task;
    // on_complete is deliberately NOT invoked: the stream was not
    // delivered. The failure handler is the channel of record.
    jobs_.pop_front();
    daemon_.notify_task_failure(task, status, reason);
    pump();
}

void
DataChannel::abort_task(TaskId task)
{
    if (!jobs_.empty() && jobs_.front().task == task) {
        // In-flight frames always belong to the front job.
        for (auto& [seq, entry] : in_flight_) {
            if (entry.timer != sim::kInvalidEvent)
                daemon_.simulator().cancel(entry.timer);
            ASK_TRACE(daemon_.tracer_, daemon_.simulator().now(), task,
                      global_id(), seq, obs::TraceStage::kAbort,
                      entry.tries);
        }
        in_flight_.clear();
        if (fin_timer_ != sim::kInvalidEvent) {
            daemon_.simulator().cancel(fin_timer_);
            fin_timer_ = sim::kInvalidEvent;
        }
        fin_outstanding_ = false;
        fin_tries_ = 0;
    }
    std::erase_if(jobs_, [task](const SendJob& j) { return j.task == task; });
}

void
DataChannel::convert_in_flight_to_bypass()
{
    for (auto& [seq, entry] : in_flight_) {
        if (entry.type != PacketType::kData)
            continue;  // LONG frames keep retransmitting as they are
        if (entry.timer != sim::kInvalidEvent) {
            daemon_.simulator().cancel(entry.timer);
            entry.timer = sim::kInvalidEvent;
        }
        // Probe the switch's receive-window and PktState registers: only
        // the tuples the switch did NOT consume may be re-sent, or
        // register contents fetched at finalize would double-count them.
        ++daemon_.chaos_.probe_rpcs;
        Seq s = seq;
        daemon_.mgmt_.call(
            [this, s] {
                // Sequence numbers are never reused, so presence in
                // in_flight_ proves the frame (and its job) still stand.
                if (in_flight_.find(s) == in_flight_.end())
                    return;
                finish_conversion(
                    s, daemon_.controller_.probe_packet(global_id(), s));
            },
            [this, s] {
                if (in_flight_.find(s) == in_flight_.end())
                    return;
                ++daemon_.chaos_.send_failures;
                fail_front_job(
                    TaskStatus::kMgmtUnreachable,
                    "management probe unreachable during bypass conversion");
            });
    }
    pump();
}

void
DataChannel::finish_conversion(Seq seq, AskSwitchProgram::ProbeResult probe)
{
    auto it = in_flight_.find(seq);
    ASK_ASSERT(it != in_flight_.end(), "conversion of unknown seq ", seq);
    InFlight& entry = it->second;
    auto hdr = parse_header(entry.frame);
    ASK_ASSERT(hdr && hdr->type == PacketType::kData,
               "conversion of a non-DATA frame");

    std::uint64_t unconsumed =
        probe.observed ? (hdr->bitmap & probe.remaining) : hdr->bitmap;
    if (unconsumed == 0) {
        // Fully aggregated switch-side; only the ACK was lost. The
        // tuples sit in the registers and arrive with the final fetch.
        in_flight_.erase(it);
        pump();
        return;
    }

    // Re-issue under the ORIGINAL sequence number: the receiver window
    // dedups DATA and LONG_DATA uniformly per (channel, seq), so if the
    // forwarded original did reach the receiver, this copy is ignored.
    KvStream tuples = daemon_.tuples_from_data_frame(entry.frame, unconsumed);
    AskHeader lh;
    lh.type = PacketType::kLongData;
    lh.op = hdr->op;
    lh.channel_id = hdr->channel_id;
    lh.task_id = hdr->task_id;
    lh.seq = seq;
    entry.frame = make_long_frame(lh, tuples);
    entry.type = PacketType::kLongData;
    // A fresh frame on a different path: its retransmission budget —
    // consumed by the dead switch path — starts over.
    entry.tries = 0;
    ++daemon_.chaos_.bypass_conversions;
    ASK_TRACE(daemon_.tracer_, daemon_.simulator().now(), hdr->task_id,
              global_id(), seq, obs::TraceStage::kBypassConvert, unconsumed,
              obs::kTraceFlagBypass);
    transmit(seq, /*is_retransmit=*/false);
}

void
DataChannel::reset_after_crash(Seq resume)
{
    for (auto& [seq, entry] : in_flight_) {
        if (entry.timer != sim::kInvalidEvent)
            daemon_.simulator().cancel(entry.timer);
    }
    in_flight_.clear();
    jobs_.clear();
    if (fin_timer_ != sim::kInvalidEvent) {
        daemon_.simulator().cancel(fin_timer_);
        fin_timer_ = sim::kInvalidEvent;
    }
    fin_outstanding_ = false;
    fin_tries_ = 0;
    cwnd_ = 16;
    srtt_ns_ = 0.0;
    rttvar_ns_ = 0.0;
    have_rtt_ = false;
    // A pre-crash pump event may still be queued; it finds jobs_ empty
    // and does nothing. core_busy_/background_busy_ are left alone:
    // charge() takes max(now, busy), so stale values are harmless.
    next_seq_ = resume;
}

// ---------------------------------------------------------------------------
// AskDaemon
// ---------------------------------------------------------------------------

AskDaemon::AskDaemon(const AskConfig& config, const net::CostModel& cost_model,
                     net::Network& network, HostId host_index,
                     net::NodeId switch_node, AskSwitchController& controller,
                     MgmtPlane& mgmt, obs::Observability* obs)
    : config_(config),
      key_space_(config),
      cost_model_(cost_model),
      network_(network),
      host_index_(host_index),
      switch_node_(switch_node),
      controller_(controller),
      mgmt_(mgmt)
{
    ASK_ASSERT(host_index.value() < config_.max_hosts,
               "host index exceeds configured max_hosts");
    if (obs != nullptr) {
        tracer_ = &obs->tracer;
        rtt_hist_ = &obs->registry.histogram("host.rtt_ns");
    }
    for (std::uint32_t i = 0; i < config_.channels_per_host; ++i)
        channels_.push_back(std::make_unique<DataChannel>(*this, i));
}

std::string
AskDaemon::name() const
{
    return strf("ask-daemon-%u", host_index_.value());
}

DataChannel&
AskDaemon::channel_for_task(TaskId task)
{
    // Salt the hash with the host identity: daemons balance their own
    // channel pools independently, so one task does not land on the
    // same local channel index cluster-wide (which would funnel all of
    // the task's flows into a single receiver-side RSS lane).
    std::uint64_t h = mix64(task ^ mix64(host_index_.value() + 1));
    return *channels_[h % channels_.size()];
}

void
AskDaemon::start_receive(TaskId task, std::uint32_t expected_senders,
                         const TaskOptions& options, TaskDoneFn on_done,
                         std::function<void()> on_ready)
{
    // Steps 1-3 of §3.1: register the task, then request a switch memory
    // region over the management network. Both failure modes — region
    // exhaustion and an unreachable management plane — surface to the
    // application as a failed TaskReport, never as a silent hang.
    if (rx_tasks_.count(task) != 0)
        fail_state("task ", task, " already receiving on host ", host_index_);
    if (tracer_ != nullptr && options.trace)
        tracer_->trace_task(task);
    auto done = std::make_shared<TaskDoneFn>(std::move(on_done));
    sim::SimTime requested_at = simulator().now();
    auto fail = [this, done, requested_at](TaskStatus status,
                                           std::string detail) {
        warn(name(), ": task setup failed: ", detail);
        TaskReport report;
        report.start_time = requested_at;
        report.finish_time = simulator().now();
        report.status = status;
        report.detail = std::move(detail);
        if (*done)
            (*done)(AggregateMap{}, std::move(report));
    };
    mgmt_.call(
        [this, task, expected_senders, options, done, fail,
         on_ready = std::move(on_ready)]() mutable {
            if (crashed_) {
                // The host died between requesting the region and the
                // RPC completing; the restarted process has no record
                // of this task and must not half-start it.
                fail(TaskStatus::kHostCrashed,
                     "host crashed during task setup");
                return;
            }
            std::uint32_t len = options.region_len > 0
                                    ? options.region_len
                                    : controller_.free_aggregators();
            ReduceOp rop = options.op.value_or(config_.op);
            auto region = controller_.allocate(task, len, rop);
            if (!region) {
                ++chaos_.alloc_failures;
                fail(TaskStatus::kRegionExhausted,
                     strf("switch memory exhausted: %u aggregators/AA "
                          "requested, %u free",
                          len, controller_.free_aggregators()));
                return;
            }
            ReceiveTask rx;
            rx.id = task;
            rx.op = rop;
            rx.expected_senders = expected_senders;
            rx.on_done = std::move(*done);
            rx.report.start_time = simulator().now();
            rx.last_activity = simulator().now();
            rx.swaps_disabled =
                options.swap_policy == TaskOptions::SwapPolicy::kDisabled;
            rx.liveness_timeout_ns =
                options.sender_liveness_timeout_ns < 0
                    ? config_.sender_liveness_timeout_ns
                    : options.sender_liveness_timeout_ns;
            if (wal_ != nullptr) {
                WalRecord r;
                r.kind = WalRecordKind::kRxTaskStart;
                r.task = task;
                r.arg0 = expected_senders;
                r.arg1 = rx.swaps_disabled ? 1 : 0;
                r.kvs.emplace_back(
                    "liveness_ns",
                    static_cast<std::uint64_t>(rx.liveness_timeout_ns));
                r.kvs.emplace_back(
                    "start_time",
                    static_cast<std::uint64_t>(rx.report.start_time));
                r.kvs.emplace_back("op", static_cast<std::uint64_t>(rx.op));
                wal_->append(r);
            }
            auto [it, inserted] = rx_tasks_.emplace(task, std::move(rx));
            ASK_ASSERT(inserted, "task ", task, " already receiving here");
            if (it->second.liveness_timeout_ns > 0)
                arm_liveness(task);
            if (on_ready)
                on_ready();
        },
        [fail]() mutable {
            fail(TaskStatus::kMgmtUnreachable,
                 "management network unreachable during task setup");
        });
}

void
AskDaemon::submit_send(TaskId task, net::NodeId receiver, KvStream stream,
                       std::function<void()> on_complete,
                       std::optional<ReduceOp> op)
{
    // Lift every observation into the reduction monoid exactly once,
    // here at the source. For kCount the value becomes 1; every site
    // downstream — switch merge, receiver fold, WAL replay — then
    // combines already-lifted partials and must never lift again.
    ReduceOp rop = op.value_or(config_.op);
    for (auto& t : stream)
        t.value = reduce_lift(rop, t.value);
    // Archive the stream for replay: a switch reboot wipes the partial
    // aggregate, and exactness then requires re-sending from the source.
    if (wal_ != nullptr) {
        WalRecord r;
        r.kind = WalRecordKind::kSendSubmit;
        r.task = task;
        r.arg0 = static_cast<std::uint32_t>(receiver);
        r.arg1 = static_cast<std::uint32_t>(rop);
        r.kvs.reserve(stream.size());
        for (const auto& t : stream)
            r.kvs.emplace_back(t.key, static_cast<std::uint64_t>(t.value));
        wal_->append(r);
    }
    sent_archive_[task].push_back(
        ArchivedSend{receiver, stream, rop, on_complete});
    channel_for_task(task).submit_send(task, receiver, std::move(stream), rop,
                                       std::move(on_complete));
}

void
AskDaemon::abort_send(TaskId task)
{
    for (auto& ch : channels_)
        ch->abort_task(task);
}

std::uint32_t
AskDaemon::replay_task(TaskId task)
{
    for (auto& ch : channels_)
        ch->abort_task(task);
    auto it = sent_archive_.find(task);
    if (it == sent_archive_.end())
        return 0;
    std::uint32_t n = 0;
    for (const auto& a : it->second) {
        // Straight to the channel: replay must not re-archive (and the
        // archived stream is already lifted — no second lift).
        channel_for_task(task).submit_send(task, a.receiver, a.stream, a.op,
                                           a.on_complete, /*replay=*/true);
        ++n;
    }
    chaos_.streams_replayed += n;
    ASK_TRACE(tracer_, simulator().now(), task, 0, 0,
              obs::TraceStage::kReplay, n, obs::kTraceFlagReplay);
    return n;
}

void
AskDaemon::forget_task(TaskId task)
{
    auto it = sent_archive_.find(task);
    if (it == sent_archive_.end())
        return;
    if (wal_ != nullptr) {
        WalRecord r;
        r.kind = WalRecordKind::kSendForget;
        r.task = task;
        wal_->append(r);
    }
    sent_archive_.erase(it);
}

void
AskDaemon::notify_task_failure(TaskId task, TaskStatus status,
                               const std::string& reason)
{
    warn(name(), ": send job for task ", task, " failed (",
         task_status_name(status), "): ", reason);
    if (on_task_failure_)
        on_task_failure_(task, status, reason);
}

void
AskDaemon::enter_degraded_mode(const std::string& reason)
{
    if (degraded_)
        return;
    degraded_ = true;
    ++chaos_.degraded_entries;
    warn(name(), ": degrading to host-side aggregation: ", reason);
    for (auto& ch : channels_)
        ch->convert_in_flight_to_bypass();
}

KvStream
AskDaemon::tuples_from_data_frame(const std::vector<std::uint8_t>& frame,
                                  std::uint64_t mask) const
{
    KvStream out;
    for (std::uint32_t i = 0; i < config_.short_aas(); ++i) {
        if (!(mask & (1ULL << i)))
            continue;
        WireSlot slot = read_slot(frame, i);
        out.push_back(KvTuple{
            KeySpace::unpad(key_space_.decode_segment(slot.seg)), slot.value});
    }
    for (std::uint32_t g = 0; g < config_.medium_groups; ++g) {
        std::uint32_t mb = config_.medium_base(g);
        if (!(mask & (1ULL << mb)))
            continue;
        std::string padded;
        Value value = 0;
        for (std::uint32_t j = 0; j < config_.medium_segments; ++j) {
            WireSlot slot = read_slot(frame, mb + j);
            padded += key_space_.decode_segment(slot.seg);
            if (j + 1 == config_.medium_segments)
                value = slot.value;
        }
        out.push_back(KvTuple{KeySpace::unpad(padded), value});
    }
    return out;
}

void
AskDaemon::receive(net::Packet pkt)
{
    if (crashed_) {
        // The NIC is up but nobody is home: every frame — DATA, ACKs,
        // FINs, SwapAcks — vanishes until the process restarts. Senders
        // see pure loss and keep retransmitting.
        ++chaos_.crash_dropped;
        return;
    }
    auto hdr = parse_header(pkt.data);
    if (!hdr) {
        warn(name(), ": dropping non-ASK packet");
        return;
    }
    switch (hdr->type) {
      case PacketType::kAck:
      case PacketType::kFinAck:
        dispatch_to_sender_channel(*hdr, pkt);
        return;
      case PacketType::kData:
        handle_data(std::move(pkt), *hdr);
        return;
      case PacketType::kLongData:
        handle_long_data(std::move(pkt), *hdr);
        return;
      case PacketType::kFin:
        handle_fin(pkt, *hdr);
        return;
      case PacketType::kSwapAck:
        handle_swap_ack(*hdr);
        return;
      default:
        warn(name(), ": unexpected packet type ",
             static_cast<int>(static_cast<std::uint8_t>(hdr->type)));
        return;
    }
}

void
AskDaemon::dispatch_to_sender_channel(const AskHeader& hdr,
                                      const net::Packet& pkt)
{
    (void)pkt;
    std::uint32_t owner = hdr.channel_id / config_.channels_per_host;
    if (owner != host_index_) {
        warn(name(), ": ACK for channel ", hdr.channel_id,
             " owned by host ", owner);
        return;
    }
    DataChannel& ch = *channels_[hdr.channel_id % config_.channels_per_host];
    if (hdr.type == PacketType::kAck)
        ch.on_ack(hdr.seq);
    else
        ch.on_fin_ack(hdr.task_id);
}

HostReceiveWindow&
AskDaemon::window_for(ReceiveTask& task, ChannelId channel)
{
    auto it = task.windows.find(channel);
    if (it == task.windows.end()) {
        it = task.windows.emplace(channel, HostReceiveWindow(config_.window))
                 .first;
    }
    return it->second;
}

void
AskDaemon::send_ack_to(net::NodeId sender, const AskHeader& data_hdr)
{
    AskHeader ack;
    ack.type = data_hdr.type == PacketType::kFin ? PacketType::kFinAck
                                                 : PacketType::kAck;
    ack.channel_id = data_hdr.channel_id;
    ack.task_id = data_hdr.task_id;
    ack.seq = data_hdr.seq;

    net::Packet pkt = make_control_packet(node_id(), sender, ack);
    net::Network& network = network_;
    net::NodeId self = node_id();
    net::NodeId hop = switch_node_;
    network.send(self, hop, std::move(pkt));
}

void
AskDaemon::handle_data(net::Packet&& pkt, const AskHeader& hdr)
{
    auto it = rx_tasks_.find(hdr.task_id);
    if (it == rx_tasks_.end())
        return;  // roaming duplicate of a completed task
    ReceiveTask& task = it->second;
    if (simulator().now() < task.restarting_until) {
        // Recovery drain: pre-crash traffic must not reach the reset
        // aggregate — the replay re-delivers every tuple. No ACK, and
        // the sender's in-flight state was already aborted.
        ++chaos_.drain_dropped;
        ASK_TRACE(tracer_, simulator().now(), hdr.task_id, hdr.channel_id,
                  hdr.seq, obs::TraceStage::kDrainDrop);
        return;
    }
    task.last_activity = simulator().now();
    // RSS: the NIC spreads incoming *flows* (sender channels) across the
    // daemon's cores, so one task's receive load uses every channel.
    DataChannel& ch = *channels_[hdr.channel_id % channels_.size()];

    // Charge packet reception; the aggregation work is charged once the
    // packet is deduplicated (in process_data). The generation capture
    // keeps a packet charged before a crash-reset from landing in the
    // task's next life.
    sim::SimTime done = ch.charge(cost_model_.rx_cost_ns(pkt.data.size()));
    std::uint64_t gen = task.generation;
    simulator().schedule_at(done,
                            [this, task_id = hdr.task_id, hdr, gen,
                             p = std::move(pkt), &ch]() mutable {
                                auto jt = rx_tasks_.find(task_id);
                                if (jt == rx_tasks_.end())
                                    return;
                                if (jt->second.generation != gen) {
                                    ++chaos_.drain_dropped;
                                    ASK_TRACE(tracer_, simulator().now(),
                                              task_id, hdr.channel_id,
                                              hdr.seq,
                                              obs::TraceStage::kDrainDrop);
                                    return;
                                }
                                process_data(jt->second, p, hdr, ch);
                            });
}

void
AskDaemon::process_data(ReceiveTask& task, const net::Packet& pkt,
                        const AskHeader& hdr, DataChannel& ch)
{
    ++stats_.packets_received;
    // A frame whose op id contradicts the task is a misconfigured sender
    // (or corrupted header): drop it before the seen window so it neither
    // consumes a sequence number nor earns an ACK. This also covers the
    // LONG_DATA bypass path, which never crosses the switch's op check.
    if (hdr.op != task.op) {
        ++stats_.op_mismatch_dropped;
        return;
    }
    SeenOutcome outcome = window_for(task, hdr.channel_id).observe(hdr.seq);
    if (outcome == SeenOutcome::kStale)
        return;  // pre-window duplicate: the original was ACKed long ago

    // ACK as soon as the packet is deduplicated — before the aggregation
    // work — so ACK latency tracks packet reception, not the aggregation
    // backlog (otherwise bursts trigger spurious retransmission storms).
    // ACKs go out in DPDK bursts, so their cost is amortized.
    ch.charge(cost_model_.ctrl_cost_ns());
    send_ack_to(pkt.src, hdr);

    if (outcome == SeenOutcome::kFresh) {
        // Decode first, then journal, then mutate: the WAL record for a
        // consumed packet must carry exactly the tuples the aggregate
        // absorbs, and must be durable before the absorption.
        KvStream decoded;
        if (hdr.type == PacketType::kData) {
            for (std::uint32_t i = 0; i < config_.short_aas(); ++i) {
                if (!(hdr.bitmap & (1ULL << i)))
                    continue;
                WireSlot slot = read_slot(pkt.data, i);
                decoded.push_back(KvTuple{
                    KeySpace::unpad(key_space_.decode_segment(slot.seg)),
                    slot.value});
            }
            for (std::uint32_t g = 0; g < config_.medium_groups; ++g) {
                std::uint32_t mb = config_.medium_base(g);
                if (!(hdr.bitmap & (1ULL << mb)))
                    continue;
                std::string padded;
                Value value = 0;
                for (std::uint32_t j = 0; j < config_.medium_segments; ++j) {
                    ASK_ASSERT(hdr.bitmap & (1ULL << (mb + j)),
                               "medium group bitmap must be all-or-nothing");
                    WireSlot slot = read_slot(pkt.data, mb + j);
                    padded += key_space_.decode_segment(slot.seg);
                    if (j + 1 == config_.medium_segments)
                        value = slot.value;
                }
                decoded.push_back(KvTuple{KeySpace::unpad(padded), value});
            }
        } else {  // kLongData
            decoded = parse_long_tuples(pkt.data);
        }
        if (wal_ != nullptr) {
            WalRecord r;
            r.kind = WalRecordKind::kRxData;
            r.task = task.id;
            r.channel = hdr.channel_id;
            r.seq = hdr.seq;
            r.kvs.reserve(decoded.size());
            for (const auto& t : decoded)
                r.kvs.emplace_back(t.key,
                                   static_cast<std::uint64_t>(t.value));
            wal_->append(r);
        }
        std::uint64_t tuples = decoded.size();
        // Combine-only: the sender lifted every value at submit_send.
        for (const auto& t : decoded)
            accumulate(task.local, t.key, t.value, task.op);
        stats_.tuples_aggregated_locally += tuples;
        task.report.tuples_aggregated_locally += tuples;
        ASK_TRACE(tracer_, simulator().now(), task.id, hdr.channel_id,
                  hdr.seq, obs::TraceStage::kHostAggregate, tuples);
        // Deferred aggregation is farmed out over the daemon's thread
        // pool round-robin, not pinned to the flow's RSS lane.
        channels_[bg_round_robin_++ % channels_.size()]->charge_background(
            cost_model_.host_aggregate_ns(tuples));
        ++task.report.packets_received;
        ++task.packets_since_swap;
    } else {
        ++stats_.duplicates_received;
        ASK_TRACE(tracer_, simulator().now(), task.id, hdr.channel_id,
                  hdr.seq, obs::TraceStage::kHostDuplicate);
    }

    maybe_start_swap(task, ch);
}

void
AskDaemon::handle_long_data(net::Packet&& pkt, const AskHeader& hdr)
{
    handle_data(std::move(pkt), hdr);
}

void
AskDaemon::handle_fin(const net::Packet& pkt, const AskHeader& hdr)
{
    auto it = rx_tasks_.find(hdr.task_id);
    if (it == rx_tasks_.end()) {
        // Retransmitted FIN after completion: re-ACK so the sender stops.
        send_ack_to(pkt.src, hdr);
        return;
    }
    ReceiveTask& task = it->second;
    if (simulator().now() < task.restarting_until) {
        // A FIN racing the crash must not complete the fin set: the
        // replay will re-send the stream and a fresh FIN after it.
        ++chaos_.drain_dropped;
        return;
    }
    task.last_activity = simulator().now();
    if (wal_ != nullptr && task.fins.count(hdr.channel_id) == 0) {
        WalRecord r;
        r.kind = WalRecordKind::kRxFin;
        r.task = task.id;
        r.channel = hdr.channel_id;
        wal_->append(r);
    }
    task.fins.insert(hdr.channel_id);
    DataChannel& ch = channel_for_task(hdr.task_id);
    ch.charge(cost_model_.rx_cost_ns(pkt.data.size()) +
              cost_model_.ctrl_cost_ns());
    send_ack_to(pkt.src, hdr);
    maybe_finalize(task);
}

void
AskDaemon::maybe_start_swap(ReceiveTask& task, DataChannel& ch)
{
    (void)ch;
    if (!config_.shadow_copies || config_.swap_threshold_packets == 0)
        return;
    if (task.swap_in_flight || task.finalizing || task.swaps_disabled)
        return;
    if (task.packets_since_swap < config_.swap_threshold_packets)
        return;
    task.swap_in_flight = true;
    task.swap_target = task.committed_epoch + 1;
    task.swap_tries = 0;
    ++stats_.swap_requests;
    send_swap(task.id);
}

void
AskDaemon::send_swap(TaskId task_id)
{
    auto it = rx_tasks_.find(task_id);
    if (it == rx_tasks_.end() || !it->second.swap_in_flight)
        return;
    ReceiveTask& task = it->second;

    if (config_.max_swap_tries > 0 &&
        task.swap_tries >= config_.max_swap_tries) {
        // The swap path is dead (e.g. a blackholed program eats SWAPs).
        // Stop swapping for good: hot-key prioritization is lost but the
        // result stays exact — the finalize fetch drains both copies.
        ++chaos_.swap_giveups;
        warn(name(), ": disabling shadow-copy swaps for task ", task_id,
             " after ", task.swap_tries, " attempts");
        task.swaps_disabled = true;
        task.swap_in_flight = false;
        if (task.finalize_pending)
            maybe_finalize(task);
        return;
    }
    ++task.swap_tries;

    AskHeader hdr;
    hdr.type = PacketType::kSwap;
    hdr.task_id = task_id;
    hdr.seq = task.swap_target;  // SWAP reuses seq as the epoch
    // dst = self: the switch spoofs the SwapAck source from pkt.dst.
    net::Packet pkt = make_control_packet(node_id(), node_id(), hdr);
    network_.send(node_id(), switch_node_, std::move(pkt));

    task.swap_timer = simulator().schedule_after(
        4 * config_.retransmit_timeout_ns, [this, task_id] {
            auto jt = rx_tasks_.find(task_id);
            if (jt != rx_tasks_.end() && jt->second.swap_in_flight) {
                jt->second.swap_timer = sim::kInvalidEvent;
                send_swap(task_id);
            }
        });
}

void
AskDaemon::handle_swap_ack(const AskHeader& hdr)
{
    auto it = rx_tasks_.find(hdr.task_id);
    if (it == rx_tasks_.end())
        return;
    ReceiveTask& task = it->second;
    if (!task.swap_in_flight || hdr.seq != task.swap_target)
        return;  // duplicate or stale SwapAck
    if (task.swap_timer != sim::kInvalidEvent) {
        simulator().cancel(task.swap_timer);
        task.swap_timer = sim::kInvalidEvent;
    }
    task.swap_tries = 0;
    complete_swap(task);
}

sim::SimTime
AskDaemon::charge_control(Nanoseconds cost)
{
    control_busy_ = std::max(control_busy_, simulator().now()) + cost;
    return control_busy_;
}

void
AskDaemon::complete_swap(ReceiveTask& task)
{
    // The switch now directs traffic at copy (target & 1); drain the
    // other copy: fetch over the management plane, merge locally, clear.
    // Fetches run on the control thread so the data path keeps ACKing.
    std::uint32_t old_copy = 1 - (task.swap_target & 1);
    std::uint64_t entries = controller_.fetch_scan_entries(task.id);
    Nanoseconds scan_cost = static_cast<Nanoseconds>(
        static_cast<double>(entries) * 2.0);  // slow-path read per entry
    sim::SimTime done = charge_control(scan_cost);
    std::uint64_t gen = task.generation;

    simulator().schedule_at(done, [this, task_id = task.id, old_copy, gen] {
        mgmt_.call(
            [this, task_id, old_copy, gen] {
                auto it = rx_tasks_.find(task_id);
                if (it == rx_tasks_.end())
                    return;
                ReceiveTask& t = it->second;
                // A crash-reset between SwapAck and fetch invalidates
                // the swap: the registers it would drain are gone.
                if (t.generation != gen || !t.swap_in_flight)
                    return;
                KvStream fetched =
                    controller_.fetch(task_id, old_copy, /*clear=*/true);
                // Journal the drained registers with the commit: the
                // fetch cleared them, so these tuples now exist only in
                // this process (and, after this append, in the WAL).
                if (wal_ != nullptr) {
                    WalRecord r;
                    r.kind = WalRecordKind::kRxSwapCommit;
                    r.task = task_id;
                    r.seq = t.swap_target;
                    r.kvs.reserve(fetched.size());
                    for (const auto& f : fetched)
                        r.kvs.emplace_back(
                            f.key, static_cast<std::uint64_t>(f.value));
                    wal_->append(r);
                }
                stats_.fetch_tuples += fetched.size();
                t.report.tuples_fetched_from_switch += fetched.size();
                // Switch registers hold lifted partials: combine only.
                merge_stream_into(t.local, fetched, t.op);
                t.committed_epoch = t.swap_target;
                t.packets_since_swap = 0;
                t.swap_in_flight = false;
                ++t.report.swaps;
                if (t.finalize_pending)
                    maybe_finalize(t);
            },
            [this, task_id, gen] {
                auto it = rx_tasks_.find(task_id);
                if (it == rx_tasks_.end())
                    return;
                ReceiveTask& t = it->second;
                if (t.generation != gen)
                    return;
                ++chaos_.swap_giveups;
                t.swaps_disabled = true;
                t.swap_in_flight = false;
                if (t.finalize_pending)
                    maybe_finalize(t);
            });
    });
}

void
AskDaemon::maybe_finalize(ReceiveTask& task)
{
    if (task.fins.size() < task.expected_senders)
        return;
    if (task.swap_in_flight) {
        task.finalize_pending = true;
        return;
    }
    if (task.finalizing)
        return;
    finalize(task);
}

void
AskDaemon::finalize(ReceiveTask& task)
{
    task.finalizing = true;
    std::uint64_t entries = controller_.fetch_scan_entries(task.id);
    std::uint32_t copies = config_.shadow_copies ? 2 : 1;
    Nanoseconds scan_cost = static_cast<Nanoseconds>(
        static_cast<double>(entries) * 2.0 * copies);
    sim::SimTime done = charge_control(scan_cost);
    // The result is complete only once the deferred aggregation backlog
    // of every channel has drained.
    for (const auto& ch : channels_)
        done = std::max(done, ch->background_busy_until());
    std::uint64_t gen = task.generation;

    simulator().schedule_at(done, [this, task_id = task.id, gen] {
        mgmt_.call(
            [this, task_id, gen] {
                auto it = rx_tasks_.find(task_id);
                if (it == rx_tasks_.end())
                    return;  // failed (e.g. liveness) while queued
                ReceiveTask& t = it->second;
                // A crash-reset re-opened the task: the FIN set was
                // cleared and the replay will re-trigger finalize.
                if (t.generation != gen)
                    return;

                for (std::uint32_t copy = 0;
                     copy < (config_.shadow_copies ? 2u : 1u); ++copy) {
                    KvStream fetched =
                        controller_.fetch(task_id, copy, /*clear=*/true);
                    stats_.fetch_tuples += fetched.size();
                    t.report.tuples_fetched_from_switch += fetched.size();
                    // Switch registers hold lifted partials: combine only.
                    merge_stream_into(t.local, fetched, t.op);
                }
                try {
                    controller_.release(task_id);
                } catch (const StateError& e) {
                    // A crash already released (or never re-journaled)
                    // the region; the result is complete either way.
                    warn(name(), ": finalize release: ", e.what());
                }

                if (t.liveness_timer != sim::kInvalidEvent) {
                    simulator().cancel(t.liveness_timer);
                    t.liveness_timer = sim::kInvalidEvent;
                }
                t.report.finish_time = simulator().now();
                ASK_TRACE(tracer_, simulator().now(), task_id, 0, 0,
                          obs::TraceStage::kFinalize,
                          t.report.packets_received);
                if (wal_ != nullptr) {
                    WalRecord r;
                    r.kind = WalRecordKind::kRxTaskDone;
                    r.task = task_id;
                    r.arg0 = static_cast<std::uint32_t>(TaskStatus::kOk);
                    wal_->append(r);
                }
                TaskDoneFn on_done = std::move(t.on_done);
                AggregateMap result = std::move(t.local);
                TaskReport report = std::move(t.report);
                rx_tasks_.erase(it);
                if (on_done)
                    on_done(std::move(result), std::move(report));
            },
            [this, task_id, gen] {
                auto it = rx_tasks_.find(task_id);
                if (it == rx_tasks_.end() || it->second.generation != gen)
                    return;
                // Without the final register fetch the result cannot be
                // exact; surface the failure instead of guessing.
                fail_receive_task(
                    task_id, TaskStatus::kMgmtUnreachable,
                    "management plane unreachable during finalize");
            });
    });
}

void
AskDaemon::arm_liveness(TaskId task_id)
{
    auto it = rx_tasks_.find(task_id);
    if (it == rx_tasks_.end())
        return;
    ReceiveTask& t = it->second;
    sim::SimTime deadline = t.last_activity + t.liveness_timeout_ns;
    t.liveness_timer = simulator().schedule_at(deadline, [this, task_id] {
        auto jt = rx_tasks_.find(task_id);
        if (jt == rx_tasks_.end())
            return;
        ReceiveTask& t = jt->second;
        t.liveness_timer = sim::kInvalidEvent;
        if (t.finalizing)
            return;  // the result fetch is already under way
        sim::SimTime deadline = t.last_activity + t.liveness_timeout_ns;
        if (simulator().now() < deadline) {
            arm_liveness(task_id);  // activity since: re-arm lazily
            return;
        }
        ++chaos_.sender_timeouts;
        fail_receive_task(
            task_id, TaskStatus::kSenderTimeout,
            strf("sender liveness timeout: heard FINs from %zu of %u senders",
                 t.fins.size(), t.expected_senders));
    });
}

void
AskDaemon::fail_receive_task(TaskId task_id, TaskStatus status,
                             std::string detail)
{
    auto it = rx_tasks_.find(task_id);
    if (it == rx_tasks_.end())
        return;
    ReceiveTask& t = it->second;
    warn(name(), ": receive task ", task_id, " failed (",
         task_status_name(status), "): ", detail);
    if (t.swap_timer != sim::kInvalidEvent)
        simulator().cancel(t.swap_timer);
    if (t.liveness_timer != sim::kInvalidEvent)
        simulator().cancel(t.liveness_timer);
    t.report.finish_time = simulator().now();
    t.report.status = status;
    t.report.detail = std::move(detail);
    if (wal_ != nullptr) {
        WalRecord r;
        r.kind = WalRecordKind::kRxTaskDone;
        r.task = task_id;
        r.arg0 = static_cast<std::uint32_t>(status);
        wal_->append(r);
    }
    TaskDoneFn on_done = std::move(t.on_done);
    TaskReport report = std::move(t.report);
    rx_tasks_.erase(it);
    // Best-effort region release; under a permanent management outage
    // the region is abandoned (the journal still records it). A crash
    // racing the RPC may have released it already: swallow the typed
    // complaint, the region is gone either way.
    mgmt_.call([this, task_id] {
        try {
            controller_.release(task_id);
        } catch (const StateError& e) {
            warn(name(), ": release after failure: ", e.what());
        }
    });
    if (on_done)
        on_done(AggregateMap{}, std::move(report));
}

void
AskDaemon::prepare_replay(TaskId task_id, sim::SimTime drain_until)
{
    auto it = rx_tasks_.find(task_id);
    if (it == rx_tasks_.end())
        return;
    ReceiveTask& t = it->second;
    if (wal_ != nullptr) {
        WalRecord r;
        r.kind = WalRecordKind::kRxReset;
        r.task = task_id;
        r.kvs.emplace_back("drain_until",
                           static_cast<std::uint64_t>(drain_until));
        wal_->append(r);
    }
    ++t.generation;  // scheduled fetch/finalize callbacks are now void
    t.local.clear();
    t.fins.clear();
    t.report.tuples_aggregated_locally = 0;
    t.report.tuples_fetched_from_switch = 0;
    t.packets_since_swap = 0;
    // The register wipe rewound swap_epoch to 0; mirror it host-side.
    t.committed_epoch = 0;
    t.swap_in_flight = false;
    t.swap_target = 0;
    t.swap_tries = 0;
    t.swaps_disabled = false;
    if (t.swap_timer != sim::kInvalidEvent) {
        simulator().cancel(t.swap_timer);
        t.swap_timer = sim::kInvalidEvent;
    }
    t.finalize_pending = false;
    t.finalizing = false;
    t.restarting_until = drain_until;
    // Give the replay breathing room before the liveness clock resumes.
    t.last_activity = drain_until;
    // t.windows is deliberately KEPT: HostReceiveWindow tolerates gaps,
    // and replayed sequence numbers continue past the crash point — a
    // fresh window would mis-classify them relative to pre-crash seqs.
    ++chaos_.tasks_reset;
}

void
AskDaemon::crash()
{
    ASK_ASSERT(!crashed_, "crash of an already-crashed host");
    crashed_ = true;
    degraded_ = false;
    for (auto& ch : channels_)
        ch->reset_after_crash(0);
    for (auto& [id, t] : rx_tasks_) {
        if (t.swap_timer != sim::kInvalidEvent)
            simulator().cancel(t.swap_timer);
        if (t.liveness_timer != sim::kInvalidEvent)
            simulator().cancel(t.liveness_timer);
    }
    rx_tasks_.clear();
    sent_archive_.clear();
    warn(name(), ": host crashed");
}

std::uint32_t
AskDaemon::recover_from_wal(
    const std::function<TaskDoneFn(TaskId)>& make_done)
{
    ASK_ASSERT(wal_ != nullptr, "daemon recovery without a WAL");
    ASK_ASSERT(crashed_, "recovery of a live daemon");
    // Throwing replay: a corrupt log surfaces as StateError and the
    // cluster fails the host's tasks instead of rebuilding bad state.
    std::vector<WalRecord> records = wal_->replay();
    WalDaemonState state = rebuild_daemon_state(records, config_.op);
    crashed_ = false;

    // Channels resume at their journaled checkpoints (>= every seq the
    // dead process used) and the switch is fenced there, stale-dropping
    // any pre-crash frame still wandering the fabric.
    for (std::uint32_t i = 0; i < channels_.size(); ++i) {
        auto rt = state.resume_seq.find(i);
        Seq resume = rt == state.resume_seq.end() ? 0 : rt->second;
        channels_[i]->reset_after_crash(resume);
        if (resume > 0)
            controller_.fence_channel(channels_[i]->global_id(), resume);
    }

    // Replay archives. The original on_complete callbacks died with the
    // process; cluster-level replay re-drives delivery, and completion
    // is observed at the receiver (FIN set), not the sender.
    for (auto& [task, send] : state.sends) {
        sent_archive_[task].push_back(
            ArchivedSend{static_cast<net::NodeId>(send.receiver),
                         std::move(send.stream), send.op, nullptr});
    }

    // Receive tasks: partial aggregate, FIN set, seen windows (replayed
    // observation by observation, so post-restart retransmissions stay
    // duplicates), swap epoch, and the completion callback re-supplied
    // by the cluster.
    std::uint32_t rebuilt = 0;
    sim::SimTime now = simulator().now();
    for (auto& [task_id, ws] : state.rx_tasks) {
        ReceiveTask rx;
        rx.id = task_id;
        rx.op = ws.op;
        rx.expected_senders = ws.expected_senders;
        rx.swaps_disabled = ws.swaps_disabled;
        rx.local = std::move(ws.local);
        for (std::uint32_t f : ws.fins)
            rx.fins.insert(static_cast<ChannelId>(f));
        rx.on_done = make_done ? make_done(task_id) : nullptr;
        rx.report.start_time = static_cast<sim::SimTime>(ws.start_time);
        rx.report.tuples_aggregated_locally = ws.tuples_aggregated_locally;
        rx.report.tuples_fetched_from_switch =
            ws.tuples_fetched_from_switch;
        rx.report.packets_received = ws.packets_received;
        rx.report.swaps = ws.swaps;
        rx.committed_epoch = ws.committed_epoch;
        // Strictly above anything the dead process handed out: its
        // scheduled swap/finalize callbacks are void on arrival.
        rx.generation = ws.generation;
        rx.liveness_timeout_ns =
            static_cast<Nanoseconds>(ws.liveness_ns);
        rx.restarting_until = std::max(
            now, static_cast<sim::SimTime>(ws.restart_drain_until));
        rx.last_activity = rx.restarting_until;
        for (const auto& [chan, seq] : ws.observed)
            window_for(rx, static_cast<ChannelId>(chan)).observe(seq);

        auto [it, inserted] = rx_tasks_.emplace(task_id, std::move(rx));
        ASK_ASSERT(inserted, "recovered task ", task_id, " twice");
        ReceiveTask& t = it->second;

        // Reconcile an interrupted swap: if the switch's epoch ran
        // ahead of the journaled commit, the SWAP was applied but the
        // retired copy never drained — finish the drain now.
        if (controller_.program().find_task(task_id) != nullptr) {
            std::uint32_t switch_epoch = controller_.current_epoch(task_id);
            if (switch_epoch > t.committed_epoch) {
                t.swap_in_flight = true;
                t.swap_target = switch_epoch;
                t.swap_tries = 0;
                complete_swap(t);
            }
        }

        if (t.liveness_timeout_ns > 0)
            arm_liveness(task_id);
        // The crash may have interrupted the window between the last
        // FIN and the finalize fetch; re-drive it.
        maybe_finalize(t);
        ++rebuilt;
    }

    // Fencing marker: the NEXT recovery's generations must exceed the
    // ones this one just handed out.
    WalRecord marker;
    marker.kind = WalRecordKind::kHostRecovered;
    wal_->append(marker);
    warn(name(), ": recovered from WAL: ", rebuilt, " receive task(s), ",
         state.sends.size(), " archived send(s)");
    return rebuilt;
}

}  // namespace ask::core
