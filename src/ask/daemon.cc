#include "ask/daemon.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace ask::core {

// ---------------------------------------------------------------------------
// DataChannel
// ---------------------------------------------------------------------------

DataChannel::DataChannel(AskDaemon& daemon, std::uint32_t local_index)
    : daemon_(daemon), local_index_(local_index)
{
}

ChannelId
DataChannel::global_id() const
{
    return static_cast<ChannelId>(
        daemon_.host_index() * daemon_.config().channels_per_host +
        local_index_);
}

sim::SimTime
DataChannel::charge(Nanoseconds cost)
{
    sim::SimTime now = daemon_.simulator().now();
    core_busy_ = std::max(core_busy_, now) + cost;
    busy_ns_ += static_cast<std::uint64_t>(cost);
    return core_busy_;
}

sim::SimTime
DataChannel::charge_background(Nanoseconds cost)
{
    // Background work also starts no earlier than the I/O lane is free
    // of already-queued work, approximating one core interleaving both.
    sim::SimTime now = daemon_.simulator().now();
    background_busy_ =
        std::max({background_busy_, core_busy_, now}) + cost;
    busy_ns_ += static_cast<std::uint64_t>(cost);
    return background_busy_;
}

void
DataChannel::submit_send(TaskId task, net::NodeId receiver, KvStream stream,
                         std::function<void()> on_complete)
{
    SendJob job;
    job.task = task;
    job.receiver = receiver;
    job.builder = std::make_unique<PacketBuilder>(daemon_.key_space());
    job.builder->enqueue(stream);
    job.on_complete = std::move(on_complete);
    daemon_.stats().tuples_sent += stream.size();
    jobs_.push_back(std::move(job));
    pump();
}

void
DataChannel::schedule_pump(sim::SimTime at)
{
    if (pump_pending_)
        return;
    pump_pending_ = true;
    daemon_.simulator().schedule_at(at, [this] {
        pump_pending_ = false;
        pump();
    });
}

void
DataChannel::pump()
{
    sim::Simulator& simulator = daemon_.simulator();
    const AskConfig& cfg = daemon_.config();

    while (!jobs_.empty() && !fin_outstanding_) {
        SendJob& job = jobs_.front();

        if (job.builder->empty()) {
            // All frames ACKed and none pending: close the task on this
            // channel with a (reliable) FIN.
            if (in_flight_.empty()) {
                send_fin(job);
            }
            return;
        }

        // Window check: at most min(cwnd, W) packets outstanding,
        // spanning < W sequence numbers.
        Seq base = in_flight_.empty() ? next_seq_ : in_flight_.begin()->first;
        std::uint32_t window = std::min(cwnd_, cfg.window);
        if (next_seq_ >= base + window || in_flight_.size() >= window)
            return;

        // Core pacing: one packet per tx_cost of CPU.
        if (core_busy_ > simulator.now()) {
            schedule_pump(core_busy_);
            return;
        }

        // Build the next frame: DATA first, then LONG_DATA batches.
        std::vector<std::uint8_t> frame;
        if (auto built = job.builder->next_data()) {
            AskHeader hdr;
            hdr.type = PacketType::kData;
            hdr.num_slots = static_cast<std::uint8_t>(cfg.num_aas);
            hdr.channel_id = global_id();
            hdr.task_id = job.task;
            hdr.seq = next_seq_;
            hdr.bitmap = built->bitmap;
            frame = make_frame(hdr, cfg.payload_bytes());
            for (std::uint32_t i = 0; i < cfg.num_aas; ++i) {
                if (built->bitmap & (1ULL << i))
                    write_slot(frame, i, built->slots[i]);
            }
            ++daemon_.stats().data_packets_sent;
        } else {
            auto batch = job.builder->next_long_batch(cfg.long_payload_bytes);
            ASK_ASSERT(batch.has_value(), "builder non-empty but no frames");
            AskHeader hdr;
            hdr.type = PacketType::kLongData;
            hdr.channel_id = global_id();
            hdr.task_id = job.task;
            hdr.seq = next_seq_;
            frame = make_long_frame(hdr, *batch);
            ++daemon_.stats().long_packets_sent;
        }

        Seq seq = next_seq_++;
        auto [it, inserted] =
            in_flight_.emplace(seq, InFlight{std::move(frame), job.receiver,
                                             sim::kInvalidEvent});
        ASK_ASSERT(inserted, "duplicate in-flight seq");
        (void)it;
        transmit(seq, /*is_retransmit=*/false);
    }
}

void
DataChannel::transmit(Seq seq, bool is_retransmit)
{
    auto it = in_flight_.find(seq);
    ASK_ASSERT(it != in_flight_.end(), "transmit of unknown seq ", seq);
    InFlight& entry = it->second;

    if (is_retransmit) {
        ++daemon_.stats().retransmissions;
        cwnd_ = std::max(cwnd_ / 2, 8u);  // multiplicative decrease
    }
    ++entry.tries;

    sim::SimTime ready =
        charge(daemon_.cost_model().tx_cost_ns(entry.frame.size()));

    net::Packet pkt;
    pkt.src = daemon_.node_id();
    pkt.dst = entry.receiver;
    pkt.data = entry.frame;  // keep a copy for retransmission

    net::Network& network = daemon_.network();
    net::NodeId self = daemon_.node_id();
    net::NodeId hop = daemon_.switch_node();
    daemon_.simulator().schedule_at(
        ready, [&network, self, hop, p = std::move(pkt)]() mutable {
            network.send(self, hop, std::move(p));
        });
    entry.sent_at = ready;

    // Adaptive timeout plus exponential backoff on retransmissions: a
    // congested receiver delays ACKs past the base timeout, and
    // hammering it with more copies only makes it worse.
    std::uint32_t shift = std::min(entry.tries - 1, 5u);
    arm_timer(seq, ready + (rto() << shift));
}

Nanoseconds
DataChannel::rto() const
{
    if (!have_rtt_)
        return daemon_.config().retransmit_timeout_ns;
    auto est = static_cast<Nanoseconds>(srtt_ns_ + 4.0 * rttvar_ns_);
    return std::clamp(est, daemon_.config().retransmit_timeout_ns,
                      100 * daemon_.config().retransmit_timeout_ns);
}

void
DataChannel::observe_rtt(Nanoseconds sample)
{
    double s = static_cast<double>(sample);
    if (!have_rtt_) {
        srtt_ns_ = s;
        rttvar_ns_ = s / 2.0;
        have_rtt_ = true;
        return;
    }
    rttvar_ns_ = 0.75 * rttvar_ns_ + 0.25 * std::abs(s - srtt_ns_);
    srtt_ns_ = 0.875 * srtt_ns_ + 0.125 * s;
}

void
DataChannel::arm_timer(Seq seq, sim::SimTime at)
{
    auto it = in_flight_.find(seq);
    ASK_ASSERT(it != in_flight_.end(), "timer for unknown seq");
    it->second.timer = daemon_.simulator().schedule_at(at, [this, seq] {
        auto jt = in_flight_.find(seq);
        if (jt == in_flight_.end())
            return;  // ACKed in the meantime
        jt->second.timer = sim::kInvalidEvent;
        transmit(seq, /*is_retransmit=*/true);
    });
}

void
DataChannel::on_ack(Seq seq)
{
    auto it = in_flight_.find(seq);
    if (it == in_flight_.end())
        return;  // duplicate ACK (e.g. for a retransmitted packet)
    if (it->second.timer != sim::kInvalidEvent)
        daemon_.simulator().cancel(it->second.timer);
    // Karn's rule: only un-retransmitted packets give clean RTT samples.
    if (it->second.tries == 1)
        observe_rtt(daemon_.simulator().now() - it->second.sent_at);
    in_flight_.erase(it);
    cwnd_ = std::min(cwnd_ + 1, daemon_.config().window);
    // ACK processing occupies the core briefly (burst-amortized).
    charge(daemon_.cost_model().ctrl_cost_ns());
    pump();
}

void
DataChannel::send_fin(const SendJob& job)
{
    fin_outstanding_ = true;
    ++fin_tries_;
    if (fin_tries_ > 1000)
        fatal("channel ", global_id(), " cannot deliver FIN for task ",
              job.task, " after 1000 attempts");

    AskHeader hdr;
    hdr.type = PacketType::kFin;
    hdr.channel_id = global_id();
    hdr.task_id = job.task;

    sim::SimTime ready = charge(daemon_.cost_model().tx_cost_ns(
        net::kIpHeaderBytes + kAskHeaderBytes));
    net::Packet pkt = make_control_packet(daemon_.node_id(), job.receiver, hdr);

    net::Network& network = daemon_.network();
    net::NodeId self = daemon_.node_id();
    net::NodeId hop = daemon_.switch_node();
    daemon_.simulator().schedule_at(
        ready, [&network, self, hop, p = std::move(pkt)]() mutable {
            network.send(self, hop, std::move(p));
        });

    // FINs can be lost like anything else; retransmit until FIN_ACK.
    fin_timer_ = daemon_.simulator().schedule_at(
        ready + 4 * daemon_.config().retransmit_timeout_ns, [this] {
            fin_timer_ = sim::kInvalidEvent;
            if (fin_outstanding_) {
                fin_outstanding_ = false;
                ASK_ASSERT(!jobs_.empty(), "FIN timer with no job");
                send_fin(jobs_.front());
            }
        });
}

void
DataChannel::on_fin_ack(TaskId task)
{
    if (!fin_outstanding_ || jobs_.empty() || jobs_.front().task != task)
        return;  // stale or duplicate FIN_ACK
    fin_outstanding_ = false;
    fin_tries_ = 0;
    if (fin_timer_ != sim::kInvalidEvent) {
        daemon_.simulator().cancel(fin_timer_);
        fin_timer_ = sim::kInvalidEvent;
    }
    finish_front_job();
}

void
DataChannel::finish_front_job()
{
    ASK_ASSERT(!jobs_.empty(), "no job to finish");
    auto on_complete = std::move(jobs_.front().on_complete);
    jobs_.pop_front();
    if (on_complete)
        on_complete();
    pump();
}

// ---------------------------------------------------------------------------
// AskDaemon
// ---------------------------------------------------------------------------

AskDaemon::AskDaemon(const AskConfig& config, const net::CostModel& cost_model,
                     net::Network& network, std::uint32_t host_index,
                     net::NodeId switch_node, AskSwitchController& controller,
                     Nanoseconds mgmt_latency_ns)
    : config_(config),
      key_space_(config),
      cost_model_(cost_model),
      network_(network),
      host_index_(host_index),
      switch_node_(switch_node),
      controller_(controller),
      mgmt_latency_ns_(mgmt_latency_ns)
{
    ASK_ASSERT(host_index < config_.max_hosts,
               "host index exceeds configured max_hosts");
    for (std::uint32_t i = 0; i < config_.channels_per_host; ++i)
        channels_.push_back(std::make_unique<DataChannel>(*this, i));
}

std::string
AskDaemon::name() const
{
    return strf("ask-daemon-%u", host_index_);
}

DataChannel&
AskDaemon::channel_for_task(TaskId task)
{
    // Salt the hash with the host identity: daemons balance their own
    // channel pools independently, so one task does not land on the
    // same local channel index cluster-wide (which would funnel all of
    // the task's flows into a single receiver-side RSS lane).
    std::uint64_t h = mix64(task ^ mix64(host_index_ + 1));
    return *channels_[h % channels_.size()];
}

void
AskDaemon::start_receive(TaskId task, std::uint32_t expected_senders,
                         std::uint32_t region_len, TaskDoneFn on_done,
                         std::function<void()> on_ready)
{
    // Steps 1-3 of §3.1: register the task, then request a switch memory
    // region over the management network.
    simulator().schedule_after(mgmt_latency_ns_, [this, task,
                                                  expected_senders,
                                                  region_len,
                                                  on_done = std::move(on_done),
                                                  on_ready =
                                                      std::move(on_ready)] {
        std::uint32_t len =
            region_len > 0 ? region_len : controller_.free_aggregators();
        auto region = controller_.allocate(task, len);
        if (!region) {
            fatal("switch memory exhausted allocating ", len,
                  " aggregators/AA for task ", task);
        }
        ReceiveTask rx;
        rx.id = task;
        rx.expected_senders = expected_senders;
        rx.on_done = std::move(on_done);
        rx.report.start_time = simulator().now();
        auto [it, inserted] = rx_tasks_.emplace(task, std::move(rx));
        (void)it;
        ASK_ASSERT(inserted, "task ", task, " already receiving here");
        if (on_ready)
            on_ready();
    });
}

void
AskDaemon::submit_send(TaskId task, net::NodeId receiver, KvStream stream,
                       std::function<void()> on_complete)
{
    channel_for_task(task).submit_send(task, receiver, std::move(stream),
                                       std::move(on_complete));
}

void
AskDaemon::receive(net::Packet pkt)
{
    auto hdr = parse_header(pkt.data);
    if (!hdr) {
        warn(name(), ": dropping non-ASK packet");
        return;
    }
    switch (hdr->type) {
      case PacketType::kAck:
      case PacketType::kFinAck:
        dispatch_to_sender_channel(*hdr, pkt);
        return;
      case PacketType::kData:
        handle_data(std::move(pkt), *hdr);
        return;
      case PacketType::kLongData:
        handle_long_data(std::move(pkt), *hdr);
        return;
      case PacketType::kFin:
        handle_fin(pkt, *hdr);
        return;
      case PacketType::kSwapAck:
        handle_swap_ack(*hdr);
        return;
      default:
        warn(name(), ": unexpected packet type ",
             static_cast<int>(static_cast<std::uint8_t>(hdr->type)));
        return;
    }
}

void
AskDaemon::dispatch_to_sender_channel(const AskHeader& hdr,
                                      const net::Packet& pkt)
{
    (void)pkt;
    std::uint32_t owner = hdr.channel_id / config_.channels_per_host;
    if (owner != host_index_) {
        warn(name(), ": ACK for channel ", hdr.channel_id,
             " owned by host ", owner);
        return;
    }
    DataChannel& ch = *channels_[hdr.channel_id % config_.channels_per_host];
    if (hdr.type == PacketType::kAck)
        ch.on_ack(hdr.seq);
    else
        ch.on_fin_ack(hdr.task_id);
}

HostReceiveWindow&
AskDaemon::window_for(ReceiveTask& task, ChannelId channel)
{
    auto it = task.windows.find(channel);
    if (it == task.windows.end()) {
        it = task.windows.emplace(channel, HostReceiveWindow(config_.window))
                 .first;
    }
    return it->second;
}

void
AskDaemon::send_ack_to(net::NodeId sender, const AskHeader& data_hdr)
{
    AskHeader ack;
    ack.type = data_hdr.type == PacketType::kFin ? PacketType::kFinAck
                                                 : PacketType::kAck;
    ack.channel_id = data_hdr.channel_id;
    ack.task_id = data_hdr.task_id;
    ack.seq = data_hdr.seq;

    net::Packet pkt = make_control_packet(node_id(), sender, ack);
    net::Network& network = network_;
    net::NodeId self = node_id();
    net::NodeId hop = switch_node_;
    network.send(self, hop, std::move(pkt));
}

void
AskDaemon::handle_data(net::Packet&& pkt, const AskHeader& hdr)
{
    auto it = rx_tasks_.find(hdr.task_id);
    if (it == rx_tasks_.end())
        return;  // roaming duplicate of a completed task
    ReceiveTask& task = it->second;
    // RSS: the NIC spreads incoming *flows* (sender channels) across the
    // daemon's cores, so one task's receive load uses every channel.
    DataChannel& ch = *channels_[hdr.channel_id % channels_.size()];

    // Charge packet reception; the aggregation work is charged once the
    // packet is deduplicated (in process_data).
    sim::SimTime done = ch.charge(cost_model_.rx_cost_ns(pkt.data.size()));
    simulator().schedule_at(done,
                            [this, task_id = hdr.task_id, hdr,
                             p = std::move(pkt), &ch]() mutable {
                                auto jt = rx_tasks_.find(task_id);
                                if (jt == rx_tasks_.end())
                                    return;
                                process_data(jt->second, p, hdr, ch);
                            });
}

void
AskDaemon::process_data(ReceiveTask& task, const net::Packet& pkt,
                        const AskHeader& hdr, DataChannel& ch)
{
    ++stats_.packets_received;
    SeenOutcome outcome = window_for(task, hdr.channel_id).observe(hdr.seq);
    if (outcome == SeenOutcome::kStale)
        return;  // pre-window duplicate: the original was ACKed long ago

    // ACK as soon as the packet is deduplicated — before the aggregation
    // work — so ACK latency tracks packet reception, not the aggregation
    // backlog (otherwise bursts trigger spurious retransmission storms).
    // ACKs go out in DPDK bursts, so their cost is amortized.
    ch.charge(cost_model_.ctrl_cost_ns());
    send_ack_to(pkt.src, hdr);

    if (outcome == SeenOutcome::kFresh) {
        std::uint64_t tuples = 0;
        if (hdr.type == PacketType::kData) {
            // Aggregate the tuples the switch left in the packet.
            for (std::uint32_t i = 0; i < config_.short_aas(); ++i) {
                if (!(hdr.bitmap & (1ULL << i)))
                    continue;
                WireSlot slot = read_slot(pkt.data, i);
                Key key = KeySpace::unpad(key_space_.decode_segment(slot.seg));
                accumulate(task.local, key, slot.value, config_.op);
                ++tuples;
            }
            for (std::uint32_t g = 0; g < config_.medium_groups; ++g) {
                std::uint32_t mb = config_.medium_base(g);
                if (!(hdr.bitmap & (1ULL << mb)))
                    continue;
                std::string padded;
                Value value = 0;
                for (std::uint32_t j = 0; j < config_.medium_segments; ++j) {
                    ASK_ASSERT(hdr.bitmap & (1ULL << (mb + j)),
                               "medium group bitmap must be all-or-nothing");
                    WireSlot slot = read_slot(pkt.data, mb + j);
                    padded += key_space_.decode_segment(slot.seg);
                    if (j + 1 == config_.medium_segments)
                        value = slot.value;
                }
                accumulate(task.local, KeySpace::unpad(padded), value,
                           config_.op);
                ++tuples;
            }
        } else {  // kLongData
            for (const auto& t : parse_long_tuples(pkt.data)) {
                accumulate(task.local, t.key, t.value, config_.op);
                ++tuples;
            }
        }
        stats_.tuples_aggregated_locally += tuples;
        task.report.tuples_aggregated_locally += tuples;
        // Deferred aggregation is farmed out over the daemon's thread
        // pool round-robin, not pinned to the flow's RSS lane.
        channels_[bg_round_robin_++ % channels_.size()]->charge_background(
            cost_model_.host_aggregate_ns(tuples));
        ++task.report.packets_received;
        ++task.packets_since_swap;
    } else {
        ++stats_.duplicates_received;
    }

    maybe_start_swap(task, ch);
}

void
AskDaemon::handle_long_data(net::Packet&& pkt, const AskHeader& hdr)
{
    handle_data(std::move(pkt), hdr);
}

void
AskDaemon::handle_fin(const net::Packet& pkt, const AskHeader& hdr)
{
    auto it = rx_tasks_.find(hdr.task_id);
    if (it == rx_tasks_.end()) {
        // Retransmitted FIN after completion: re-ACK so the sender stops.
        send_ack_to(pkt.src, hdr);
        return;
    }
    ReceiveTask& task = it->second;
    task.fins.insert(hdr.channel_id);
    DataChannel& ch = channel_for_task(hdr.task_id);
    ch.charge(cost_model_.rx_cost_ns(pkt.data.size()) +
              cost_model_.ctrl_cost_ns());
    send_ack_to(pkt.src, hdr);
    maybe_finalize(task);
}

void
AskDaemon::maybe_start_swap(ReceiveTask& task, DataChannel& ch)
{
    (void)ch;
    if (!config_.shadow_copies || config_.swap_threshold_packets == 0)
        return;
    if (task.swap_in_flight || task.finalizing)
        return;
    if (task.packets_since_swap < config_.swap_threshold_packets)
        return;
    task.swap_in_flight = true;
    task.swap_target = task.committed_epoch + 1;
    ++stats_.swap_requests;
    send_swap(task.id);
}

void
AskDaemon::send_swap(TaskId task_id)
{
    auto it = rx_tasks_.find(task_id);
    if (it == rx_tasks_.end() || !it->second.swap_in_flight)
        return;
    ReceiveTask& task = it->second;

    AskHeader hdr;
    hdr.type = PacketType::kSwap;
    hdr.task_id = task_id;
    hdr.seq = task.swap_target;  // SWAP reuses seq as the epoch
    // dst = self: the switch spoofs the SwapAck source from pkt.dst.
    net::Packet pkt = make_control_packet(node_id(), node_id(), hdr);
    network_.send(node_id(), switch_node_, std::move(pkt));

    task.swap_timer = simulator().schedule_after(
        4 * config_.retransmit_timeout_ns, [this, task_id] {
            auto jt = rx_tasks_.find(task_id);
            if (jt != rx_tasks_.end() && jt->second.swap_in_flight) {
                jt->second.swap_timer = sim::kInvalidEvent;
                send_swap(task_id);
            }
        });
}

void
AskDaemon::handle_swap_ack(const AskHeader& hdr)
{
    auto it = rx_tasks_.find(hdr.task_id);
    if (it == rx_tasks_.end())
        return;
    ReceiveTask& task = it->second;
    if (!task.swap_in_flight || hdr.seq != task.swap_target)
        return;  // duplicate or stale SwapAck
    if (task.swap_timer != sim::kInvalidEvent) {
        simulator().cancel(task.swap_timer);
        task.swap_timer = sim::kInvalidEvent;
    }
    complete_swap(task);
}

sim::SimTime
AskDaemon::charge_control(Nanoseconds cost)
{
    control_busy_ = std::max(control_busy_, simulator().now()) + cost;
    return control_busy_;
}

void
AskDaemon::complete_swap(ReceiveTask& task)
{
    // The switch now directs traffic at copy (target & 1); drain the
    // other copy: fetch over the management plane, merge locally, clear.
    // Fetches run on the control thread so the data path keeps ACKing.
    std::uint32_t old_copy = 1 - (task.swap_target & 1);
    std::uint64_t entries = controller_.fetch_scan_entries(task.id);
    Nanoseconds scan_cost = static_cast<Nanoseconds>(
        static_cast<double>(entries) * 2.0);  // slow-path read per entry
    sim::SimTime done = charge_control(mgmt_latency_ns_ + scan_cost);

    simulator().schedule_at(done, [this, task_id = task.id, old_copy] {
        auto it = rx_tasks_.find(task_id);
        if (it == rx_tasks_.end())
            return;
        ReceiveTask& t = it->second;
        KvStream fetched = controller_.fetch(task_id, old_copy, /*clear=*/true);
        stats_.fetch_tuples += fetched.size();
        t.report.tuples_fetched_from_switch += fetched.size();
        aggregate_into(t.local, fetched, config_.op);
        t.committed_epoch = t.swap_target;
        t.packets_since_swap = 0;
        t.swap_in_flight = false;
        ++t.report.swaps;
        if (t.finalize_pending)
            maybe_finalize(t);
    });
}

void
AskDaemon::maybe_finalize(ReceiveTask& task)
{
    if (task.fins.size() < task.expected_senders)
        return;
    if (task.swap_in_flight) {
        task.finalize_pending = true;
        return;
    }
    if (task.finalizing)
        return;
    finalize(task);
}

void
AskDaemon::finalize(ReceiveTask& task)
{
    task.finalizing = true;
    std::uint64_t entries = controller_.fetch_scan_entries(task.id);
    std::uint32_t copies = config_.shadow_copies ? 2 : 1;
    Nanoseconds scan_cost = static_cast<Nanoseconds>(
        static_cast<double>(entries) * 2.0 * copies);
    sim::SimTime done = charge_control(mgmt_latency_ns_ + scan_cost);
    // The result is complete only once the deferred aggregation backlog
    // of every channel has drained.
    for (const auto& ch : channels_)
        done = std::max(done, ch->background_busy_until());

    simulator().schedule_at(done, [this, task_id = task.id] {
        auto it = rx_tasks_.find(task_id);
        ASK_ASSERT(it != rx_tasks_.end(), "finalizing vanished task");
        ReceiveTask& t = it->second;

        for (std::uint32_t copy = 0;
             copy < (config_.shadow_copies ? 2u : 1u); ++copy) {
            KvStream fetched = controller_.fetch(task_id, copy, /*clear=*/true);
            stats_.fetch_tuples += fetched.size();
            t.report.tuples_fetched_from_switch += fetched.size();
            aggregate_into(t.local, fetched, config_.op);
        }
        controller_.release(task_id);

        t.report.finish_time = simulator().now();
        TaskDoneFn on_done = std::move(t.on_done);
        AggregateMap result = std::move(t.local);
        TaskReport report = t.report;
        rx_tasks_.erase(it);
        if (on_done)
            on_done(std::move(result), report);
    });
}

}  // namespace ask::core
