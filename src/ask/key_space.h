/**
 * @file
 * Key classification, key-space partition, and segment encoding
 * (paper §3.2.2 and §3.2.3).
 *
 * The whole key space splits into short keys (fit one aggregator kPart),
 * medium keys (fit one coalesced group of m adjacent AAs), and long keys
 * (bypass the switch). Short and medium subspaces are further partitioned
 * by a sender-side hash so that a key always lands in the same payload
 * slot and hence the same AA — avoiding the single-key-multiple-spot
 * problem.
 */
#ifndef ASK_ASK_KEY_SPACE_H
#define ASK_ASK_KEY_SPACE_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ask/config.h"
#include "ask/types.h"
#include "common/hash.h"
#include "common/logging.h"

namespace ask::core {

/** Where a key is processed. */
enum class KeyClass : std::uint8_t
{
    kShort,   ///< <= n bits: one aggregator in a short AA
    kMedium,  ///< (n, n*m] bits: one coalesced medium group
    kLong,    ///< > n*m bits: bypasses the switch entirely
};

/**
 * Pure functions mapping keys to classes, slots, and wire segments.
 * Sender, switch, and receiver all consult the same KeySpace, which is
 * fully determined by the AskConfig.
 */
class KeySpace
{
  public:
    explicit KeySpace(const AskConfig& config);

    /** Classify a key by its length. Throws StateError on invalid keys
     *  (empty or containing NUL bytes) — the caller decides whether a
     *  bad key fails the task or the process. */
    KeyClass classify(const Key& key) const;

    /** Subspace (== AA index == payload slot) of a *short* key. */
    std::uint32_t short_slot(const Key& key) const;

    /** Medium group index g of a *medium* key; the key occupies payload
     *  slots [medium_base(g), medium_base(g) + m). */
    std::uint32_t medium_group(const Key& key) const;

    /**
     * Wire segments of a key: the key NUL-padded to the class width and
     * cut into n-bit chunks (1 chunk for short keys, m for medium).
     * Each segment is returned as a little-endian integer of seg_bytes().
     */
    std::vector<std::uint32_t> segments(const Key& key) const;

    /** Padded wire form of the key (the bytes the switch hashes). */
    std::string padded(const Key& key) const;

    /** Recover the application key from its padded wire form. */
    static Key unpad(std::string_view padded);

    /** Encode one segment from padded bytes [offset, offset+seg_bytes). */
    std::uint32_t encode_segment(std::string_view padded_key,
                                 std::uint32_t seg_index) const;

    /** Decode a segment integer back into seg_bytes() raw bytes. */
    std::string decode_segment(std::uint32_t seg) const;

    /**
     * Decode a segment integer into `out` (which must hold seg_bytes()):
     * the allocation-free form of decode_segment() for the data-plane
     * hot path, byte-identical to it.
     */
    void decode_segment_into(std::uint32_t seg, char* out) const;

    /**
     * Wire segment `seg_index` taken directly from the unpadded key:
     * equivalent to encode_segment(padded(key), seg_index) without
     * materializing the padded string.
     */
    std::uint32_t encode_key_segment(std::string_view key,
                                     std::uint32_t seg_index) const;

    /** Aggregator index (within one shadow copy of size `copy_len`) that
     *  the switch addresses this key to. `padded_key` is the wire form. */
    std::uint32_t aggregator_index(std::string_view padded_key,
                                   std::uint32_t copy_len) const;

    /**
     * Aggregator index of a *short* key given its wire segment: hashes
     * the decoded bytes from a stack buffer, so it returns exactly
     * aggregator_index(decode_segment(seg), copy_len) without the
     * per-tuple string allocation.
     */
    std::uint32_t short_aggregator_index(std::uint32_t seg,
                                         std::uint32_t copy_len) const;

    const AskConfig& config() const { return config_; }

  private:
    void check_key(const Key& key) const;

    AskConfig config_;
    /** mix64(hash_seeds::kAggregatorAddress), hoisted out of the
     *  per-tuple addressing hash. */
    std::uint64_t agg_seed_mixed_;
};

// ---- hot-path members, inline: one call per tuple each ------------------

inline void
KeySpace::decode_segment_into(std::uint32_t seg, char* out) const
{
    for (std::uint32_t i = 0; i < config_.seg_bytes(); ++i)
        out[i] = static_cast<char>((seg >> (8 * i)) & 0xff);
}

inline std::uint32_t
KeySpace::encode_key_segment(std::string_view key,
                             std::uint32_t seg_index) const
{
    // The padded wire form is the key followed by NUL fill, so bytes at
    // or past key.size() contribute zero.
    std::uint32_t nb = config_.seg_bytes();
    std::size_t off = static_cast<std::size_t>(seg_index) * nb;
    std::uint32_t v = 0;
    for (std::uint32_t i = 0; i < nb; ++i) {
        if (off + i < key.size()) {
            v |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(key[off + i]))
                 << (8 * i);
        }
    }
    return v;
}

inline std::uint32_t
KeySpace::aggregator_index(std::string_view padded_key,
                           std::uint32_t copy_len) const
{
    ASK_ASSERT(copy_len > 0, "empty aggregator region");
    // The "unified" index of §3.2.3: the entire (padded) key is hashed,
    // so every segment of a medium key lands at the same index in each AA
    // of its group. Uses the addressing seed, independent from the
    // partition seed (see common/hash.h). Regions are powers of two in
    // every stock allocation, where the reduction is a mask — identical
    // to % but without a 64-bit divide per tuple.
    std::uint64_t h = hash64_premixed(padded_key, agg_seed_mixed_);
    if ((copy_len & (copy_len - 1)) == 0)
        return static_cast<std::uint32_t>(h & (copy_len - 1));
    return static_cast<std::uint32_t>(h % copy_len);
}

inline std::uint32_t
KeySpace::short_aggregator_index(std::uint32_t seg,
                                 std::uint32_t copy_len) const
{
    char buf[sizeof(seg)];
    decode_segment_into(seg, buf);
    return aggregator_index(std::string_view(buf, config_.seg_bytes()),
                            copy_len);
}

}  // namespace ask::core

#endif  // ASK_ASK_KEY_SPACE_H
