/**
 * @file
 * Key classification, key-space partition, and segment encoding
 * (paper §3.2.2 and §3.2.3).
 *
 * The whole key space splits into short keys (fit one aggregator kPart),
 * medium keys (fit one coalesced group of m adjacent AAs), and long keys
 * (bypass the switch). Short and medium subspaces are further partitioned
 * by a sender-side hash so that a key always lands in the same payload
 * slot and hence the same AA — avoiding the single-key-multiple-spot
 * problem.
 */
#ifndef ASK_ASK_KEY_SPACE_H
#define ASK_ASK_KEY_SPACE_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ask/config.h"
#include "ask/types.h"

namespace ask::core {

/** Where a key is processed. */
enum class KeyClass : std::uint8_t
{
    kShort,   ///< <= n bits: one aggregator in a short AA
    kMedium,  ///< (n, n*m] bits: one coalesced medium group
    kLong,    ///< > n*m bits: bypasses the switch entirely
};

/**
 * Pure functions mapping keys to classes, slots, and wire segments.
 * Sender, switch, and receiver all consult the same KeySpace, which is
 * fully determined by the AskConfig.
 */
class KeySpace
{
  public:
    explicit KeySpace(const AskConfig& config);

    /** Classify a key by its length. fatal()s on invalid keys (empty or
     *  containing NUL bytes). */
    KeyClass classify(const Key& key) const;

    /** Subspace (== AA index == payload slot) of a *short* key. */
    std::uint32_t short_slot(const Key& key) const;

    /** Medium group index g of a *medium* key; the key occupies payload
     *  slots [medium_base(g), medium_base(g) + m). */
    std::uint32_t medium_group(const Key& key) const;

    /**
     * Wire segments of a key: the key NUL-padded to the class width and
     * cut into n-bit chunks (1 chunk for short keys, m for medium).
     * Each segment is returned as a little-endian integer of seg_bytes().
     */
    std::vector<std::uint32_t> segments(const Key& key) const;

    /** Padded wire form of the key (the bytes the switch hashes). */
    std::string padded(const Key& key) const;

    /** Recover the application key from its padded wire form. */
    static Key unpad(std::string_view padded);

    /** Encode one segment from padded bytes [offset, offset+seg_bytes). */
    std::uint32_t encode_segment(std::string_view padded_key,
                                 std::uint32_t seg_index) const;

    /** Decode a segment integer back into seg_bytes() raw bytes. */
    std::string decode_segment(std::uint32_t seg) const;

    /** Aggregator index (within one shadow copy of size `copy_len`) that
     *  the switch addresses this key to. `padded_key` is the wire form. */
    std::uint32_t aggregator_index(std::string_view padded_key,
                                   std::uint32_t copy_len) const;

    const AskConfig& config() const { return config_; }

  private:
    void check_key(const Key& key) const;

    AskConfig config_;
};

}  // namespace ask::core

#endif  // ASK_ASK_KEY_SPACE_H
