#include "ask/mgmt.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace ask::core {

void
MgmtPlane::call(std::function<void()> op, std::function<void()> on_give_up)
{
    attempt(0, std::move(op), std::move(on_give_up));
}

void
MgmtPlane::attempt(std::uint32_t tries_so_far, std::function<void()> op,
                   std::function<void()> on_give_up)
{
    ++chaos_.mgmt_rpcs;
    std::uint32_t tries = tries_so_far + 1;
    simulator_.schedule_after(
        latency(), [this, tries, op = std::move(op),
                    on_give_up = std::move(on_give_up)]() mutable {
            if (!down_) {
                op();
                return;
            }
            // The reply window fell inside an outage: this attempt is a
            // timeout. Retry with capped exponential backoff.
            ++chaos_.mgmt_retries;
            if (tries >= policy_.max_tries) {
                ++chaos_.mgmt_giveups;
                warn("mgmt RPC abandoned after ", tries, " attempts");
                if (on_give_up)
                    on_give_up();
                return;
            }
            std::uint32_t shift = std::min(tries - 1, 20u);
            Nanoseconds backoff =
                std::min(policy_.backoff_base_ns << shift,
                         policy_.backoff_cap_ns);
            simulator_.schedule_after(
                backoff, [this, tries, op = std::move(op),
                          on_give_up = std::move(on_give_up)]() mutable {
                    attempt(tries, std::move(op), std::move(on_give_up));
                });
        });
}

}  // namespace ask::core
