#include "ask/metrics.h"

#include "obs/metrics.h"

namespace ask::core {

const char*
stats_owner_name(StatsOwner owner)
{
    switch (owner) {
      case StatsOwner::kCluster:
        return "cluster";
      case StatsOwner::kMgmt:
        return "mgmt";
      case StatsOwner::kDaemon:
        return "daemon";
    }
    return "?";
}

void
register_switch_agg_stats(obs::MetricsRegistry& registry,
                          const SwitchAggStats& stats,
                          const std::string& prefix)
{
#define ASK_X(field, doc) \
    registry.expose(prefix + #field, &stats.field, "switch");
    ASK_SWITCH_AGG_STATS_FIELDS(ASK_X)
#undef ASK_X
}

void
register_host_stats(obs::MetricsRegistry& registry, const HostStats& stats,
                    const std::string& prefix)
{
#define ASK_X(field, doc) \
    registry.expose(prefix + #field, &stats.field, "host");
    ASK_HOST_STATS_FIELDS(ASK_X)
#undef ASK_X
}

void
register_chaos_stats(obs::MetricsRegistry& registry, const ChaosStats& stats,
                     StatsOwner owner, const std::string& prefix)
{
#define ASK_X(field, field_owner, doc)                      \
    if (owner == StatsOwner::field_owner) {                 \
        registry.expose(prefix + #field, &stats.field,      \
                        stats_owner_name(owner));           \
    }
    ASK_CHAOS_STATS_FIELDS(ASK_X)
#undef ASK_X
}

}  // namespace ask::core
