/**
 * @file
 * The management plane: the modeled control network between host
 * daemons and the switch controller (paper §3.1's control channel plus
 * switch gRPC).
 *
 * The data plane already models loss and delay per cable; management
 * traffic previously was a bare fixed latency. Chaos injection needs
 * more: control-plane *outage* and *delay* windows are a failure domain
 * of their own (a rebooting switch CPU takes its gRPC endpoint down
 * with it). MgmtPlane centralizes that: every controller RPC flows
 * through call(), which models the round-trip latency, fails attempts
 * that land inside an outage window, and retries with capped
 * exponential backoff until the RPC succeeds or its budget is spent.
 */
#ifndef ASK_ASK_MGMT_H
#define ASK_ASK_MGMT_H

#include <cstdint>
#include <functional>

#include "ask/metrics.h"
#include "common/units.h"
#include "sim/simulator.h"

namespace ask::core {

/** Retry policy for management RPCs (from AskConfig). */
struct MgmtRetryPolicy
{
    std::uint32_t max_tries = 10;
    Nanoseconds backoff_base_ns = 50 * units::kMicrosecond;
    Nanoseconds backoff_cap_ns = 2 * units::kMillisecond;
};

/** The shared management network + controller RPC endpoint. */
class MgmtPlane
{
  public:
    MgmtPlane(sim::Simulator& simulator, Nanoseconds base_latency_ns,
              MgmtRetryPolicy policy = {})
        : simulator_(simulator),
          base_latency_ns_(base_latency_ns),
          policy_(policy)
    {
    }

    MgmtPlane(const MgmtPlane&) = delete;
    MgmtPlane& operator=(const MgmtPlane&) = delete;

    /** Chaos injection: while down, every RPC attempt times out. */
    void set_outage(bool down) { down_ = down; }
    bool down() const { return down_; }

    /** Chaos injection: extra per-RPC latency (congested mgmt fabric). */
    void set_extra_delay(Nanoseconds extra) { extra_delay_ns_ = extra; }

    /** Round-trip latency of one successful RPC right now. */
    Nanoseconds latency() const { return base_latency_ns_ + extra_delay_ns_; }

    /**
     * Issue one RPC. After the round-trip latency, `op` runs — unless
     * the plane is in an outage window when the reply would arrive, in
     * which case the attempt counts as timed out and is retried after a
     * capped exponential backoff. After max_tries failed attempts,
     * `on_give_up` (if provided) runs instead and the RPC is abandoned.
     */
    void call(std::function<void()> op,
              std::function<void()> on_give_up = nullptr);

    const ChaosStats& chaos_stats() const { return chaos_; }

  private:
    void attempt(std::uint32_t tries_so_far, std::function<void()> op,
                 std::function<void()> on_give_up);

    sim::Simulator& simulator_;
    Nanoseconds base_latency_ns_;
    MgmtRetryPolicy policy_;
    bool down_ = false;
    Nanoseconds extra_delay_ns_ = 0;
    ChaosStats chaos_;
};

}  // namespace ask::core

#endif  // ASK_ASK_MGMT_H
