/**
 * @file
 * Counters collected across the ASK data plane and hosts. These drive
 * the paper's Table 1 and several figures.
 */
#ifndef ASK_ASK_METRICS_H
#define ASK_ASK_METRICS_H

#include <cstdint>

namespace ask::core {

/** Switch-side aggregation counters. */
struct SwitchAggStats
{
    std::uint64_t data_packets = 0;       ///< DATA packets entering the pipeline
    std::uint64_t tuples_in = 0;          ///< valid tuples in arriving DATA
    std::uint64_t tuples_aggregated = 0;  ///< tuples consumed by aggregators
    std::uint64_t tuples_collided = 0;    ///< tuples that failed (collision)
    std::uint64_t packets_acked = 0;      ///< fully aggregated -> switch ACK
    std::uint64_t packets_forwarded = 0;  ///< partial/failed -> to receiver
    std::uint64_t duplicates = 0;         ///< retransmissions deduplicated
    std::uint64_t stale_dropped = 0;      ///< out-of-window packets dropped
    std::uint64_t long_packets = 0;       ///< LONG_DATA forwarded
    std::uint64_t swaps = 0;              ///< shadow-copy swaps applied
    std::uint64_t unknown_task = 0;       ///< DATA for unknown task regions
    std::uint64_t blackholed = 0;         ///< DATA/SWAP eaten by a sick program
};

/**
 * Fault-injection and recovery counters. Every component that observes
 * a chaos event or performs a recovery action owns a slice of these
 * (daemons, the management plane, the cluster coordinator);
 * AskCluster::chaos_stats() merges the slices.
 */
struct ChaosStats
{
    // ---- faults observed --------------------------------------------------
    std::uint64_t link_blackouts = 0;    ///< cable blackout windows opened
    std::uint64_t burst_loss_windows = 0;
    std::uint64_t switch_reboots = 0;
    std::uint64_t mgmt_outages = 0;
    std::uint64_t mgmt_delay_windows = 0;
    std::uint64_t data_blackholes = 0;

    // ---- recovery actions -------------------------------------------------
    std::uint64_t regions_reinstalled = 0;  ///< task regions re-pushed post-reboot
    std::uint64_t channels_fenced = 0;      ///< max_seq/seen fences written
    std::uint64_t tasks_reset = 0;          ///< receiver tasks reset for replay
    std::uint64_t streams_replayed = 0;     ///< sender streams re-submitted
    std::uint64_t drain_dropped = 0;        ///< packets dropped by drain guards
    std::uint64_t degraded_entries = 0;     ///< daemons entering host-only mode
    std::uint64_t bypass_conversions = 0;   ///< in-flight DATA rerouted to bypass
    std::uint64_t probe_rpcs = 0;           ///< PktState probes during conversion
    std::uint64_t swap_giveups = 0;         ///< tasks that stopped swapping
    std::uint64_t fin_giveups = 0;          ///< send jobs failed at FIN budget
    std::uint64_t send_failures = 0;        ///< send jobs failed at data budget
    std::uint64_t sender_timeouts = 0;      ///< rx tasks failed by liveness timeout
    std::uint64_t alloc_failures = 0;       ///< region allocation rejections
    std::uint64_t mgmt_rpcs = 0;            ///< management RPC attempts
    std::uint64_t mgmt_retries = 0;         ///< attempts that hit an outage
    std::uint64_t mgmt_giveups = 0;         ///< RPCs abandoned after max tries

    ChaosStats&
    merge(const ChaosStats& o)
    {
        link_blackouts += o.link_blackouts;
        burst_loss_windows += o.burst_loss_windows;
        switch_reboots += o.switch_reboots;
        mgmt_outages += o.mgmt_outages;
        mgmt_delay_windows += o.mgmt_delay_windows;
        data_blackholes += o.data_blackholes;
        regions_reinstalled += o.regions_reinstalled;
        channels_fenced += o.channels_fenced;
        tasks_reset += o.tasks_reset;
        streams_replayed += o.streams_replayed;
        drain_dropped += o.drain_dropped;
        degraded_entries += o.degraded_entries;
        bypass_conversions += o.bypass_conversions;
        probe_rpcs += o.probe_rpcs;
        swap_giveups += o.swap_giveups;
        fin_giveups += o.fin_giveups;
        send_failures += o.send_failures;
        sender_timeouts += o.sender_timeouts;
        alloc_failures += o.alloc_failures;
        mgmt_rpcs += o.mgmt_rpcs;
        mgmt_retries += o.mgmt_retries;
        mgmt_giveups += o.mgmt_giveups;
        return *this;
    }
};

/** Host-side per-cluster counters. */
struct HostStats
{
    std::uint64_t data_packets_sent = 0;
    std::uint64_t long_packets_sent = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t tuples_sent = 0;
    std::uint64_t tuples_aggregated_locally = 0;  ///< at the receiver host
    std::uint64_t packets_received = 0;           ///< at the receiver host
    std::uint64_t duplicates_received = 0;
    std::uint64_t fetch_tuples = 0;   ///< tuples fetched from switch regions
    std::uint64_t swap_requests = 0;  ///< shadow-copy swaps initiated
};

}  // namespace ask::core

#endif  // ASK_ASK_METRICS_H
