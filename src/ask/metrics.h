/**
 * @file
 * Counters collected across the ASK data plane and hosts. These drive
 * the paper's Table 1 and several figures.
 */
#ifndef ASK_ASK_METRICS_H
#define ASK_ASK_METRICS_H

#include <cstdint>

namespace ask::core {

/** Switch-side aggregation counters. */
struct SwitchAggStats
{
    std::uint64_t data_packets = 0;       ///< DATA packets entering the pipeline
    std::uint64_t tuples_in = 0;          ///< valid tuples in arriving DATA
    std::uint64_t tuples_aggregated = 0;  ///< tuples consumed by aggregators
    std::uint64_t tuples_collided = 0;    ///< tuples that failed (collision)
    std::uint64_t packets_acked = 0;      ///< fully aggregated -> switch ACK
    std::uint64_t packets_forwarded = 0;  ///< partial/failed -> to receiver
    std::uint64_t duplicates = 0;         ///< retransmissions deduplicated
    std::uint64_t stale_dropped = 0;      ///< out-of-window packets dropped
    std::uint64_t long_packets = 0;       ///< LONG_DATA forwarded
    std::uint64_t swaps = 0;              ///< shadow-copy swaps applied
    std::uint64_t unknown_task = 0;       ///< DATA for unknown task regions
};

/** Host-side per-cluster counters. */
struct HostStats
{
    std::uint64_t data_packets_sent = 0;
    std::uint64_t long_packets_sent = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t tuples_sent = 0;
    std::uint64_t tuples_aggregated_locally = 0;  ///< at the receiver host
    std::uint64_t packets_received = 0;           ///< at the receiver host
    std::uint64_t duplicates_received = 0;
    std::uint64_t fetch_tuples = 0;   ///< tuples fetched from switch regions
    std::uint64_t swap_requests = 0;  ///< shadow-copy swaps initiated
};

}  // namespace ask::core

#endif  // ASK_ASK_METRICS_H
