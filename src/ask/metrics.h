/**
 * @file
 * Counters collected across the ASK data plane and hosts. These drive
 * the paper's Table 1 and several figures.
 *
 * The field lists are X-macros: each list expands once into the struct
 * definition, once into merge(), and once into the registration helper
 * that exposes every field to an obs::MetricsRegistry — so a counter
 * added to the list is automatically merged, snapshotted, and named.
 *
 * ChaosStats is special: every component that observes a chaos event
 * or performs a recovery action owns a *disjoint slice* of the struct
 * (the cluster coordinator, the management plane, the daemons). The
 * owner of each field is declared right here in the list, and
 * register_chaos_stats() registers only the caller's slice, so
 * MetricsRegistry::assert_disjoint_owners() can verify structurally
 * that no counter is double-counted.
 */
#ifndef ASK_ASK_METRICS_H
#define ASK_ASK_METRICS_H

#include <cstdint>
#include <string>

namespace ask::obs {
class MetricsRegistry;
}  // namespace ask::obs

namespace ask::core {

// ---------------------------------------------------------------------------
// Field lists
// ---------------------------------------------------------------------------

/** Switch-side aggregation counters: X(field, doc). */
#define ASK_SWITCH_AGG_STATS_FIELDS(X)                                      \
    X(data_packets, "DATA packets entering the pipeline")                   \
    X(tuples_in, "valid tuples in arriving DATA")                           \
    X(tuples_aggregated, "tuples consumed by aggregators")                  \
    X(tuples_collided, "tuples that failed (collision)")                    \
    X(packets_acked, "fully aggregated -> switch ACK")                      \
    X(packets_forwarded, "partial/failed -> to receiver")                   \
    X(residual_forwarded, "fully aggregated -> empty residual upstream")    \
    X(duplicates, "retransmissions deduplicated")                           \
    X(stale_dropped, "out-of-window packets dropped")                       \
    X(op_mismatch, "DATA whose op id contradicts the bound region")         \
    X(long_packets, "LONG_DATA forwarded")                                  \
    X(swaps, "shadow-copy swaps applied")                                   \
    X(unknown_task, "DATA for unknown task regions")                        \
    X(blackholed, "DATA/SWAP eaten by a sick program")

/**
 * Fault-injection and recovery counters: X(field, owner, doc).
 * `owner` is the StatsOwner member whose component increments the
 * field; AskCluster::chaos_stats() merges the slices.
 */
#define ASK_CHAOS_STATS_FIELDS(X)                                           \
    /* ---- faults observed ---- */                                         \
    X(link_blackouts, kCluster, "cable blackout windows opened")            \
    X(burst_loss_windows, kCluster, "burst-loss windows opened")            \
    X(switch_reboots, kCluster, "switch reboot episodes")                   \
    X(mgmt_outages, kCluster, "management-plane outage windows")            \
    X(mgmt_delay_windows, kCluster, "management-plane delay windows")       \
    X(data_blackholes, kCluster, "sick-program blackhole windows")          \
    X(host_crashes, kCluster, "host daemon crash episodes")                 \
    X(controller_crashes, kCluster, "controller crash episodes")            \
    X(unhandled_events, kCluster, "chaos episodes fired with no handler")   \
    /* ---- recovery actions ---- */                                        \
    X(regions_reinstalled, kCluster, "task regions re-pushed post-reboot")  \
    X(channels_fenced, kCluster, "max_seq/seen fences written")             \
    X(host_recoveries, kCluster, "daemon WAL recoveries completed")         \
    X(controller_recoveries, kCluster, "controller WAL recoveries")         \
    X(wal_appends, kCluster, "write-ahead log records appended")            \
    X(wal_rejected, kCluster, "WAL replays rejected (corrupt log)")         \
    X(crash_aborted_tasks, kCluster, "tasks failed by unrecoverable crash") \
    X(tasks_reset, kDaemon, "receiver tasks reset for replay")              \
    X(streams_replayed, kDaemon, "sender streams re-submitted")             \
    X(drain_dropped, kDaemon, "packets dropped by drain guards")            \
    X(crash_dropped, kDaemon, "packets dropped at a crashed host")          \
    X(degraded_entries, kDaemon, "daemons entering host-only mode")         \
    X(bypass_conversions, kDaemon, "in-flight DATA rerouted to bypass")     \
    X(probe_rpcs, kDaemon, "PktState probes during conversion")             \
    X(swap_giveups, kDaemon, "tasks that stopped swapping")                 \
    X(fin_giveups, kDaemon, "send jobs failed at FIN budget")               \
    X(send_failures, kDaemon, "send jobs failed at data budget")            \
    X(sender_timeouts, kDaemon, "rx tasks failed by liveness timeout")      \
    X(alloc_failures, kDaemon, "region allocation rejections")              \
    X(mgmt_rpcs, kMgmt, "management RPC attempts")                          \
    X(mgmt_retries, kMgmt, "attempts that hit an outage")                   \
    X(mgmt_giveups, kMgmt, "RPCs abandoned after max tries")

/** Host-side per-cluster counters: X(field, doc). */
#define ASK_HOST_STATS_FIELDS(X)                                            \
    X(data_packets_sent, "DATA packets sent")                               \
    X(long_packets_sent, "LONG_DATA (bypass) packets sent")                 \
    X(retransmissions, "timer-driven retransmissions")                      \
    X(tuples_sent, "tuples packetized and sent")                            \
    X(tuples_aggregated_locally, "tuples aggregated at the receiver host")  \
    X(packets_received, "packets arriving at the receiver host")            \
    X(duplicates_received, "duplicate packets at the receiver host")        \
    X(op_mismatch_dropped, "DATA whose op id contradicts the rx task")      \
    X(fetch_tuples, "tuples fetched from switch regions")                   \
    X(swap_requests, "shadow-copy swaps initiated")

// ---------------------------------------------------------------------------
// Structs generated from the lists
// ---------------------------------------------------------------------------

#define ASK_STATS_DECLARE_FIELD_2(field, doc) std::uint64_t field = 0;
#define ASK_STATS_DECLARE_FIELD_3(field, owner, doc) std::uint64_t field = 0;
#define ASK_STATS_MERGE_FIELD_2(field, doc) field += o.field;
#define ASK_STATS_MERGE_FIELD_3(field, owner, doc) field += o.field;

/** Switch-side aggregation counters. */
struct SwitchAggStats
{
    ASK_SWITCH_AGG_STATS_FIELDS(ASK_STATS_DECLARE_FIELD_2)

    SwitchAggStats&
    merge(const SwitchAggStats& o)
    {
        ASK_SWITCH_AGG_STATS_FIELDS(ASK_STATS_MERGE_FIELD_2)
        return *this;
    }
};

/** Fault-injection and recovery counters (see the field list above). */
struct ChaosStats
{
    ASK_CHAOS_STATS_FIELDS(ASK_STATS_DECLARE_FIELD_3)

    ChaosStats&
    merge(const ChaosStats& o)
    {
        ASK_CHAOS_STATS_FIELDS(ASK_STATS_MERGE_FIELD_3)
        return *this;
    }
};

/** Host-side per-cluster counters. */
struct HostStats
{
    ASK_HOST_STATS_FIELDS(ASK_STATS_DECLARE_FIELD_2)

    HostStats&
    merge(const HostStats& o)
    {
        ASK_HOST_STATS_FIELDS(ASK_STATS_MERGE_FIELD_2)
        return *this;
    }
};

#undef ASK_STATS_DECLARE_FIELD_2
#undef ASK_STATS_DECLARE_FIELD_3
#undef ASK_STATS_MERGE_FIELD_2
#undef ASK_STATS_MERGE_FIELD_3

// ---------------------------------------------------------------------------
// Registry integration
// ---------------------------------------------------------------------------

/** The component kinds that own ChaosStats slices. */
enum class StatsOwner : std::uint8_t
{
    kCluster,  ///< AskCluster fault-arming / reboot recovery
    kMgmt,     ///< MgmtPlane RPC bookkeeping
    kDaemon,   ///< AskDaemon send/receive recovery paths
};

const char* stats_owner_name(StatsOwner owner);

/** Expose every SwitchAggStats field as `<prefix><field>` (owner
 *  "switch"). `stats` must outlive the registry's snapshots. */
void register_switch_agg_stats(obs::MetricsRegistry& registry,
                               const SwitchAggStats& stats,
                               const std::string& prefix = "switch.");

/** Expose every HostStats field as `<prefix><field>` (owner "host"). */
void register_host_stats(obs::MetricsRegistry& registry,
                         const HostStats& stats,
                         const std::string& prefix = "host.");

/**
 * Expose only the fields of `stats` owned by `owner` — each caller
 * registers exactly its slice, so the registry can assert that the
 * slices are disjoint and nothing is double-counted.
 */
void register_chaos_stats(obs::MetricsRegistry& registry,
                          const ChaosStats& stats, StatsOwner owner,
                          const std::string& prefix = "chaos.");

}  // namespace ask::core

#endif  // ASK_ASK_METRICS_H
