/**
 * @file
 * The ASK data-plane program (paper §3.2-§3.4), written against the PISA
 * substrate so every hardware restriction is enforced at runtime.
 *
 * Register-array placement (default 32-AA configuration):
 *
 *   stage 0 : max_seq     (per channel, 32b)       - stale-packet boundary
 *   stage 1 : seen        (per channel, W or 2x W bits) + swap_epoch
 *             (per task slot, 32b; copy indicator = epoch parity)
 *   stage 2+: aa_0..aa_{N-1}, four per stage, 2n-bit registers holding
 *             kPart|vPart, both shadow copies in one array
 *   last    : pkt_state   (per channel x window, N-bit bitmaps)
 *
 * Dependencies flow strictly forward: max_seq gates seen, seen gates the
 * aggregator accesses, and the final bitmap feeds pkt_state — so the
 * program is expressible on a real Tofino pipeline.
 *
 * In the non-compact variant, `seen` is two one-bit arrays (even/odd
 * sequence segments); Eq. (6)'s record and Eq. (7)'s clear-ahead then
 * touch different arrays, keeping the single-access-per-array rule.
 */
#ifndef ASK_ASK_SWITCH_PROGRAM_H
#define ASK_ASK_SWITCH_PROGRAM_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ask/config.h"
#include "ask/key_space.h"
#include "ask/metrics.h"
#include "ask/seen_window.h"
#include "ask/types.h"
#include "ask/wire.h"
#include "obs/trace.h"
#include "pisa/pisa_switch.h"
#include "pisa/verify/access_plan.h"
#include "pisa/verify/oracle.h"

namespace ask::core {

/** The switch-memory slice serving one aggregation task. */
struct TaskRegion
{
    /** First aggregator index (within each shadow copy) of the slice. */
    std::uint32_t base = 0;
    /** Aggregators per AA per copy available to the task. */
    std::uint32_t len = 0;
    /** Index into the swap_epoch register array. */
    std::uint32_t epoch_slot = 0;
    /** Reduction operator bound to the task: the ALU function every
     *  aggregator merge of this region uses, and the op id DATA frames
     *  of the task must carry (mismatches are dropped). Must be
     *  declared by the program's AccessPlan or install_task() throws. */
    ReduceOp op = ReduceOp::kAdd;
};

/** The ASK switch program. */
class AskSwitchProgram : public pisa::SwitchProgram
{
  public:
    /**
     * Statically verifies the program's AccessPlan against `sw`'s
     * pipeline budgets, then declares the register arrays the plan
     * names and installs itself. Throws ask::ConfigError — *before*
     * touching the pipeline — if the plan is not PISA-legal (stage
     * count, arrays per stage, SRAM, access discipline on any path):
     * illegal programs never install.
     *
     * With the environment variable ASK_VERIFY_ACCESSES set (to
     * anything but "0"), the runtime cross-check is armed at install
     * (see enable_access_verification()).
     */
    AskSwitchProgram(const AskConfig& config, pisa::PisaSwitch& sw);

    /**
     * Fabric variant: provision reliability state (max_seq, seen,
     * pkt_state) for the channel range [lo, hi) only — a rack's ToR
     * carries state for its own hosts' channels, not the whole
     * cluster's, which is what keeps per-switch state bounded by rack
     * size as racks are added (paper §7). Channels outside the range
     * are not local: their DATA/LONG_DATA traffic is plain-forwarded
     * toward the receiver. The single-switch constructor above is
     * exactly [0, max_channels()).
     */
    AskSwitchProgram(const AskConfig& config, pisa::PisaSwitch& sw,
                     ChannelId lo, ChannelId hi);

    ~AskSwitchProgram() override;

    /**
     * The declarative access plan for `config`: every register array
     * (name, stage, shape) plus the guarded branch structure of every
     * packet-kind pass. This is the exact layout the constructor
     * declares, the object the verifier proves PISA-legality over, and
     * the oracle the runtime cross-check replays — one source of truth.
     */
    static pisa::verify::AccessPlan make_access_plan(const AskConfig& config);

    /** Same plan with the channel-indexed reliability arrays sized for
     *  `num_channels` provisioned channels (fabric ToRs). */
    static pisa::verify::AccessPlan make_access_plan(const AskConfig& config,
                                                     std::uint32_t
                                                         num_channels);

    /**
     * Arm the runtime cross-check: every subsequent data-plane access
     * is replayed against this program's AccessPlan, and an access the
     * static proof never predicted panics. Idempotent.
     */
    void enable_access_verification();

    /** The armed cross-check oracle; nullptr when not armed. */
    const pisa::verify::AccessOracle* access_oracle() const
    {
        return oracle_.get();
    }

    /** The verified plan this program was installed from. */
    const pisa::verify::AccessPlan& access_plan() const { return plan_; }

    // ---- control plane (used by AskSwitchController) --------------------

    /** Bind a task to a region. */
    void install_task(TaskId task, const TaskRegion& region);

    /** Unbind a task (the region itself is managed by the controller). */
    void remove_task(TaskId task);

    /** Region of a task; nullptr when unknown. */
    const TaskRegion* find_task(TaskId task) const;

    /** Current swap epoch of a task (copy indicator = parity). */
    std::uint32_t current_epoch(TaskId task) const;

    /** Reset a task's swap epoch to 0 (on region release). */
    void reset_epoch(TaskId task);

    /**
     * Multi-rack deployments (paper §7): restrict the aggregation (and
     * all reliability state) to this ToR's local data channels
     * [lo, hi). Traffic from other racks is forwarded untouched, so
     * per-switch state stays bounded by the rack's own hosts. Default:
     * every channel is local (single-rack deployment).
     */
    void set_local_channels(ChannelId lo, ChannelId hi);

    /** Does this switch hold reliability state for `channel`? */
    bool provisions(ChannelId channel) const
    {
        return channel >= prov_lo_ && channel < prov_hi_;
    }

    /** The provisioned channel range [lo, hi). */
    ChannelId provisioned_lo() const { return prov_lo_; }
    ChannelId provisioned_hi() const { return prov_hi_; }

    /**
     * Tree role. A leaf (rack ToR) switch must NOT consume a fully
     * aggregated DATA packet: the seen-window scheme is self-cleaning
     * (the arrival of seq s clears the slot that seq s+W will use), so
     * every switch that holds window state for a channel has to observe
     * every sequence number at least once before it is ACKed. A leaf
     * that absorbed a whole packet therefore forwards an empty-bitmap
     * residual upstream instead of ACKing; only the tree root (the tier
     * switch, or the lone switch of a single-rack deployment) may
     * impersonate the receiver and consume. Default: root.
     */
    void set_tree_leaf(bool leaf) { tree_leaf_ = leaf; }
    bool tree_leaf() const { return tree_leaf_; }

    /** Bits of channel-indexed reliability state (max_seq + seen +
     *  pkt_state) this program declares — the per-switch state the
     *  fabric bounds by rack size (fig13b's scalability metric). */
    std::uint64_t reliability_state_bits() const;

    /**
     * Slow-path read of one shadow copy of a task's region, decoding
     * aggregators back into key-value tuples; optionally clears the copy.
     * @param copy 0 or 1; with shadow copies disabled, pass 0.
     */
    KvStream read_region(TaskId task, std::uint32_t copy, bool clear);

    // ---- failure recovery (chaos injection) ------------------------------

    /**
     * The switch CPU came back after a reboot: the program image
     * survives (it is reloaded from flash) but every task binding lived
     * in the control plane's DRAM-backed table and is gone, as is all
     * register state (the pipeline wipe is modeled separately by
     * pisa::Pipeline::wipe_registers()). The controller re-installs
     * regions from its journal afterwards.
     */
    void on_reboot();

    /**
     * Re-synchronize a channel's reliability state after a register
     * wipe, given the sender's next unused sequence number. Writes
     * max_seq = next_seq + W - 1 so every pre-crash in-flight packet
     * (seq < next_seq) is stale-dropped, and repairs the compact-seen
     * parity for the upcoming window [next_seq, next_seq + W): a wiped
     * bit reads 0, which the odd-segment clr_bitc check would
     * misinterpret as "already observed" and falsely ACK a fresh packet
     * against a zeroed pkt_state — losing its tuples.
     */
    void fence_channel(ChannelId channel, Seq next_seq);

    /** Control-plane view of one in-flight packet's aggregation state. */
    struct ProbeResult
    {
        /** Whether the data plane processed (channel, seq). */
        bool observed = false;
        /** pkt_state bitmap: slots NOT consumed by aggregators. Only
         *  meaningful when observed. */
        std::uint64_t remaining = 0;
    };

    /**
     * Automaton-extraction hook: control-plane read of one channel's
     * live receive-window registers as a SeenSnapshot — the same shape
     * the semantic model checker (src/pisa/model/) explores, so the
     * fuzzer's reachability probe can evaluate the model's proved
     * invariants directly on switch state. For the plain design the
     * snapshot concatenates seen_even (slots [0, W)) and seen_odd
     * (slots [W, 2W)), matching SeenSnapshot's ring indexing.
     */
    SeenSnapshot extract_seen(ChannelId channel) const;

    /**
     * Read-only control-plane probe of one (channel, seq): did the
     * switch see the packet, and which of its slots still need host
     * delivery? Used when a daemon degrades to the bypass path and must
     * decide, per abandoned in-flight DATA packet, which tuples the
     * switch already consumed. A sequence outside the live window
     * probes as not-observed (the daemon resends via bypass; see the
     * degraded-mode notes in DESIGN.md).
     */
    ProbeResult probe_packet(ChannelId channel, Seq seq) const;

    /**
     * Chaos injection: a "sick" program that eats every DATA/SWAP
     * packet (counted in stats().blackholed) while still forwarding
     * LONG_DATA and control traffic — the shape of a miscompiled or
     * misconfigured aggregation table. Blackholed LONG_DATA skips the
     * receive-window check: safe because daemons that degrade stop
     * sending DATA on their channels for good (sticky), so the skipped
     * seen updates are never consulted again.
     */
    void set_data_blackhole(bool on) { data_blackhole_ = on; }
    bool data_blackhole() const { return data_blackhole_; }

    /** Aggregators the read_region scan touches (for cost accounting). */
    std::uint64_t region_scan_entries(TaskId task) const;

    /** Record per-packet lifecycle spans into `tracer` (null = off). */
    void set_tracer(obs::PacketTracer* tracer) { tracer_ = tracer; }

    // ---- data plane ------------------------------------------------------

    void process(net::Packet pkt, pisa::Emitter& emit) override;
    std::string name() const override { return "ask-aggregation"; }

    const SwitchAggStats& stats() const { return stats_; }
    const KeySpace& key_space() const { return key_space_; }
    const AskConfig& config() const { return config_; }

  private:
    /** Outcome of the reliability stage for one DATA/LONG_DATA packet. */
    struct WindowVerdict
    {
        bool stale = false;
        bool observed = false;
    };

    WindowVerdict check_window(ChannelId channel, Seq seq);
    std::uint32_t read_indicator(const TaskRegion& region);
    void process_data(net::Packet&& pkt, const AskHeader& hdr,
                      pisa::Emitter& emit);
    void process_swap(const net::Packet& pkt, const AskHeader& hdr,
                      pisa::Emitter& emit);

    /** Aggregate the short-key tuple in slot `i`; true on success. */
    bool aggregate_short(const TaskRegion& region, std::uint32_t indicator,
                         std::uint32_t slot_index, const WireSlot& slot);

    /** Aggregate the medium-key group `g` from `slots` (an array of all
     *  num_aas decoded payload slots); true on success. */
    bool aggregate_medium(const TaskRegion& region, std::uint32_t indicator,
                          std::uint32_t group, const WireSlot* slots);

    std::uint64_t aa_index(const TaskRegion& region, std::uint32_t indicator,
                           std::string_view padded_key) const;

    AskConfig config_;
    KeySpace key_space_;
    sim::Simulator* simulator_ = nullptr;  ///< trace timestamps
    pisa::Pipeline* pipeline_ = nullptr;   ///< hosts the arrays + oracle hook
    pisa::PisaSwitch* switch_ = nullptr;   ///< FIB lookups (tree-leaf role)
    pisa::verify::AccessPlan plan_;
    std::unique_ptr<pisa::verify::AccessOracle> oracle_;

    // Register arrays (owned by the pipeline's stages).
    pisa::RegisterArray* max_seq_ = nullptr;
    pisa::RegisterArray* seen_ = nullptr;       ///< compact variant
    pisa::RegisterArray* seen_even_ = nullptr;  ///< plain variant
    pisa::RegisterArray* seen_odd_ = nullptr;   ///< plain variant
    pisa::RegisterArray* swap_epoch_ = nullptr;
    std::vector<pisa::RegisterArray*> aas_;
    pisa::RegisterArray* pkt_state_ = nullptr;

    // Hot-path scratch, sized once at install so a DATA pass performs no
    // allocation: the decoded payload slots of the packet in flight, the
    // reassembled medium key, and the derived bitmap masks. The batched
    // pass still issues exactly one rmw per array (the PISA discipline
    // and the access oracle watch it) — batching only amortizes the
    // host-side decode/dispatch around those accesses.
    std::vector<WireSlot> slot_scratch_;
    std::string medium_key_scratch_;
    std::uint64_t short_mask_ = 0;
    std::vector<std::uint64_t> medium_masks_;

    std::unordered_map<TaskId, TaskRegion> tasks_;
    /** Last find_task hit: a DATA stream revisits one task for packets
     *  on end, so the map lookup is paid once per task switch, not once
     *  per packet. Element pointers survive rehashing (std::unordered_map
     *  guarantees it); the cache is dropped on install/remove/reboot. */
    mutable TaskId cached_task_ = 0;
    mutable const TaskRegion* cached_region_ = nullptr;
    /** Index of a provisioned channel into the channel-indexed arrays. */
    std::size_t chan_index(ChannelId channel) const
    {
        return static_cast<std::size_t>(channel) - prov_lo_;
    }

    SwitchAggStats stats_;
    /** Provisioned channel range (reliability-state coverage). */
    ChannelId prov_lo_ = 0;
    ChannelId prov_hi_ = 0;
    ChannelId local_lo_ = 0;
    ChannelId local_hi_ = 0;  ///< 0,0 = every provisioned channel is local
    bool data_blackhole_ = false;
    bool tree_leaf_ = false;  ///< leaf ToR: forward residuals, never consume
    obs::PacketTracer* tracer_ = nullptr;  ///< borrowed, may be null
};

}  // namespace ask::core

#endif  // ASK_ASK_SWITCH_PROGRAM_H
