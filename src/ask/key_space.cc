#include "ask/key_space.h"

#include "common/hash.h"
#include "common/logging.h"

namespace ask::core {

KeySpace::KeySpace(const AskConfig& config)
    : config_(config), agg_seed_mixed_(mix64(hash_seeds::kAggregatorAddress))
{
    config_.validate();
}

void
KeySpace::check_key(const Key& key) const
{
    if (key.empty())
        fail_state("ASK keys must be non-empty");
    if (key.find('\0') != std::string::npos)
        fail_state("ASK keys must not contain NUL bytes (see ask/types.h)");
}

KeyClass
KeySpace::classify(const Key& key) const
{
    check_key(key);
    if (key.size() <= config_.seg_bytes())
        return KeyClass::kShort;
    if (config_.medium_groups > 0 && key.size() <= config_.max_medium_key_bytes())
        return KeyClass::kMedium;
    return KeyClass::kLong;
}

std::uint32_t
KeySpace::short_slot(const Key& key) const
{
    ASK_ASSERT(classify(key) == KeyClass::kShort, "not a short key");
    return static_cast<std::uint32_t>(
        hash64(key, hash_seeds::kKeyPartition) % config_.short_aas());
}

std::uint32_t
KeySpace::medium_group(const Key& key) const
{
    ASK_ASSERT(classify(key) == KeyClass::kMedium, "not a medium key");
    return static_cast<std::uint32_t>(
        hash64(key, hash_seeds::kKeyPartition) % config_.medium_groups);
}

std::string
KeySpace::padded(const Key& key) const
{
    KeyClass cls = classify(key);
    ASK_ASSERT(cls != KeyClass::kLong, "long keys have no padded wire form");
    std::size_t width = cls == KeyClass::kShort
                            ? config_.seg_bytes()
                            : config_.max_medium_key_bytes();
    std::string out = key;
    out.resize(width, '\0');
    return out;
}

Key
KeySpace::unpad(std::string_view padded)
{
    std::size_t end = padded.size();
    while (end > 0 && padded[end - 1] == '\0')
        --end;
    return Key(padded.substr(0, end));
}

std::uint32_t
KeySpace::encode_segment(std::string_view padded_key,
                         std::uint32_t seg_index) const
{
    std::uint32_t nb = config_.seg_bytes();
    std::size_t off = static_cast<std::size_t>(seg_index) * nb;
    ASK_ASSERT(off + nb <= padded_key.size(), "segment out of range");
    std::uint32_t v = 0;
    for (std::uint32_t i = 0; i < nb; ++i) {
        v |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(padded_key[off + i]))
             << (8 * i);
    }
    return v;
}

std::string
KeySpace::decode_segment(std::uint32_t seg) const
{
    std::string out(config_.seg_bytes(), '\0');
    decode_segment_into(seg, out.data());
    return out;
}


std::vector<std::uint32_t>
KeySpace::segments(const Key& key) const
{
    std::string p = padded(key);
    std::uint32_t count =
        static_cast<std::uint32_t>(p.size() / config_.seg_bytes());
    std::vector<std::uint32_t> segs(count);
    for (std::uint32_t i = 0; i < count; ++i)
        segs[i] = encode_segment(p, i);
    return segs;
}


}  // namespace ask::core
