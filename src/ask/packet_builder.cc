#include "ask/packet_builder.h"

#include "common/logging.h"

namespace ask::core {

PacketBuilder::PacketBuilder(const KeySpace& key_space)
    : key_space_(key_space),
      config_(key_space.config()),
      short_queues_(config_.short_aas()),
      medium_queues_(config_.medium_groups)
{
}

void
PacketBuilder::enqueue(const KvTuple& tuple)
{
    switch (key_space_.classify(tuple.key)) {
      case KeyClass::kShort:
        short_queues_[key_space_.short_slot(tuple.key)].push_back(tuple);
        ++queued_data_;
        ++short_enqueued_;
        return;
      case KeyClass::kMedium:
        medium_queues_[key_space_.medium_group(tuple.key)].push_back(tuple);
        ++queued_data_;
        ++medium_enqueued_;
        return;
      case KeyClass::kLong:
        long_queue_.push_back(tuple);
        ++long_enqueued_;
        return;
    }
}

void
PacketBuilder::enqueue(const KvStream& stream)
{
    for (const auto& t : stream)
        enqueue(t);
}

std::optional<BuiltData>
PacketBuilder::next_data()
{
    BuiltData out;
    if (!next_data_into(out))
        return std::nullopt;
    return out;
}

bool
PacketBuilder::next_data_into(BuiltData& out)
{
    if (!has_data())
        return false;

    out.slots.assign(config_.num_aas, WireSlot{});
    out.bitmap = 0;
    out.valid_tuples = 0;

    for (std::uint32_t i = 0; i < config_.short_aas(); ++i) {
        auto& q = short_queues_[i];
        if (q.empty())
            continue;
        const KvTuple& t = q.front();
        // encode_key_segment reads the key bytes directly: identical to
        // encode_segment(padded(key), 0) without the padded copy.
        out.slots[i] =
            WireSlot{key_space_.encode_key_segment(t.key, 0), t.value};
        out.bitmap |= 1ULL << i;
        ++out.valid_tuples;
        q.pop_front();
        --queued_data_;
    }

    for (std::uint32_t g = 0; g < config_.medium_groups; ++g) {
        auto& q = medium_queues_[g];
        if (q.empty())
            continue;
        const KvTuple& t = q.front();
        std::uint32_t mb = config_.medium_base(g);
        for (std::uint32_t j = 0; j < config_.medium_segments; ++j) {
            Value v = (j + 1 == config_.medium_segments) ? t.value : 0;
            out.slots[mb + j] =
                WireSlot{key_space_.encode_key_segment(t.key, j), v};
            out.bitmap |= 1ULL << (mb + j);
        }
        ++out.valid_tuples;
        q.pop_front();
        --queued_data_;
    }

    ASK_ASSERT(out.bitmap != 0, "built an empty DATA packet");
    return true;
}

std::optional<std::vector<KvTuple>>
PacketBuilder::next_long_batch(std::uint32_t max_payload_bytes)
{
    if (long_queue_.empty())
        return std::nullopt;

    std::vector<KvTuple> batch;
    std::uint32_t bytes = 2;  // tuple-count field
    while (!long_queue_.empty()) {
        const KvTuple& t = long_queue_.front();
        std::uint32_t need = 2 + static_cast<std::uint32_t>(t.key.size()) + 4;
        if (!batch.empty() && bytes + need > max_payload_bytes)
            break;
        bytes += need;
        batch.push_back(t);
        long_queue_.pop_front();
    }
    return batch;
}

std::optional<std::vector<KvTuple>>
PacketBuilder::next_bypass_batch(std::uint32_t max_payload_bytes)
{
    if (empty())
        return std::nullopt;

    std::vector<KvTuple> batch;
    std::uint32_t bytes = 2;  // tuple-count field
    auto take = [&](std::deque<KvTuple>& q, bool counts_as_data) {
        while (!q.empty()) {
            const KvTuple& t = q.front();
            std::uint32_t need =
                2 + static_cast<std::uint32_t>(t.key.size()) + 4;
            if (!batch.empty() && bytes + need > max_payload_bytes)
                return false;
            bytes += need;
            batch.push_back(t);
            q.pop_front();
            if (counts_as_data)
                --queued_data_;
        }
        return true;
    };

    if (take(long_queue_, false)) {
        for (auto& q : short_queues_)
            if (!take(q, true))
                break;
        for (auto& q : medium_queues_)
            if (!take(q, true))
                break;
    }
    return batch;
}

}  // namespace ask::core
