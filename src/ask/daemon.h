/**
 * @file
 * The ASK host daemon (paper §3.1): a per-server service process that
 * exchanges key-value data with applications and speaks the ASK protocol
 * with the switch and peer daemons.
 *
 * Each daemon owns `channels_per_host` data channels. A data channel
 * models one DPDK thread pinned to a core: it packetizes streams, runs
 * the sliding-window sender (§3.3 "Host Sender"), processes incoming
 * forwarded packets as the receiver endpoint (§3.3 "Host Receiver"),
 * initiates shadow-copy swaps (§3.4), and performs the result fetch at
 * task teardown. All CPU work is charged to the channel's core clock, so
 * per-core packet rates and backpressure emerge naturally.
 *
 * Management traffic (task setup with the switch controller and peer
 * daemons) flows over a modeled management network with configurable
 * latency — in the paper this is the control channel plus switch gRPC.
 */
#ifndef ASK_ASK_DAEMON_H
#define ASK_ASK_DAEMON_H

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "ask/config.h"
#include "ask/controller.h"
#include "ask/key_space.h"
#include "ask/metrics.h"
#include "ask/mgmt.h"
#include "ask/packet_builder.h"
#include "ask/seen_window.h"
#include "ask/types.h"
#include "ask/wal.h"
#include "ask/wire.h"
#include "net/cost_model.h"
#include "net/network.h"
#include "obs/observability.h"
#include "sim/simulator.h"

namespace ask::core {

class AskDaemon;

/**
 * How an aggregation task ended. Every failure mode the stack can
 * surface has its own value — callers branch on the status instead of
 * string-matching on an error message.
 */
enum class TaskStatus : std::uint8_t
{
    kOk = 0,
    /** The switch could not host the region (memory/epoch-slot
     *  exhaustion at allocation time). */
    kRegionExhausted,
    /** The receiver stopped hearing from senders before every FIN
     *  arrived (sender-liveness timeout). */
    kSenderTimeout,
    /** A management-plane RPC the task cannot proceed without was
     *  abandoned after its retry budget (setup, finalize fetch, or a
     *  PktState probe during bypass conversion). */
    kMgmtUnreachable,
    /** A sender-side frame (bypass DATA or FIN) exhausted its
     *  transmission budget; the stream was not delivered. */
    kSendBudgetExhausted,
    /** The host (or controller) crashed and the task could not be
     *  rebuilt from the write-ahead log — the WAL was corrupt, or the
     *  task raced setup so no journaled state existed to recover. */
    kHostCrashed,
};

const char* task_status_name(TaskStatus status);

/**
 * Per-task knobs for AskCluster::submit_task / run_task and
 * AskDaemon::start_receive. Aggregate-initializable:
 * `{.region_len = 32, .trace = true}`.
 */
struct TaskOptions
{
    /** Aggregators per AA per shadow copy; 0 = all free aggregators. */
    std::uint32_t region_len = 0;
    /** Sender-liveness timeout; < 0 = use the config default, 0 =
     *  disabled, > 0 = override in nanoseconds. */
    Nanoseconds sender_liveness_timeout_ns = -1;
    /** Shadow-copy swap policy for this task. */
    enum class SwapPolicy : std::uint8_t
    {
        kAuto,      ///< swap per the config thresholds (default)
        kDisabled,  ///< never swap; finalize drains both copies
    };
    SwapPolicy swap_policy = SwapPolicy::kAuto;
    /** Opt this task into packet-lifecycle tracing. */
    bool trace = false;
    /** Reduction operator for this task; nullopt = AskConfig::op. The
     *  resolved op must be declared by every switch program's access
     *  plan (kFloat needs part_bits == 32) or submission throws
     *  ask::ConfigError. */
    std::optional<ReduceOp> op = std::nullopt;
};

/**
 * One switch's share of a task's in-network work: which channel shard
 * it owns, how many tuples the slow path drained from its region, and
 * a completion-time snapshot of its aggregation counters. Callers that
 * used to reach through AskCluster::program() for per-switch numbers
 * read these slices off the TaskReport instead.
 */
struct SwitchShardInfo
{
    SwitchId switch_id = SwitchId{0};
    /** True for the aggregation-tier switch (provisions every channel);
     *  false for a ToR (provisions its rack's shard). */
    bool is_tier = false;
    /** Owning rack (meaningless when is_tier). */
    RackId rack = RackId{0};
    /** Channel shard this switch provisions reliability state for. */
    ChannelId channel_lo = 0;
    ChannelId channel_hi = 0;
    /** Tuples the control plane fetched from this switch's region for
     *  this task (finalize and swap-commit drains). */
    std::uint64_t tuples_fetched = 0;
    /** The switch's cumulative aggregation counters at completion. */
    SwitchAggStats stats;
};

/** Completion report for one aggregation task at its receiver. */
struct TaskReport
{
    sim::SimTime start_time = 0;
    sim::SimTime finish_time = 0;
    std::uint64_t tuples_aggregated_locally = 0;
    std::uint64_t tuples_fetched_from_switch = 0;
    std::uint64_t packets_received = 0;
    std::uint64_t swaps = 0;
    /** How the task ended. Anything but kOk means the task did NOT
     *  produce a result; `detail` carries the human-readable
     *  specifics (counts, ids) for logs. */
    TaskStatus status = TaskStatus::kOk;
    std::string detail;
    /** Per-switch shard map, indexed by SwitchId, filled in by the
     *  cluster at delivery (empty for hand-wired daemons). */
    std::vector<SwitchShardInfo> shards;

    bool ok() const { return status == TaskStatus::kOk; }
};

/** Callback invoked when a receive task completes. */
using TaskDoneFn = std::function<void(AggregateMap, TaskReport)>;

/**
 * One data channel: a duplex host endpoint bound to one core.
 */
class DataChannel
{
  public:
    DataChannel(AskDaemon& daemon, std::uint32_t local_index);

    /** Cluster-wide channel id. */
    ChannelId global_id() const;

    /** Next unused sequence number (the fence boundary at recovery). */
    Seq next_seq() const { return next_seq_; }

    /**
     * Automaton-extraction hook: the sequence numbers currently unACKed
     * (sorted ascending). The semantic model checker proves every
     * in-flight seq strictly below the channel cursor on all reachable
     * states; the fuzzer's reachability probe re-checks the relation on
     * live daemons through this accessor.
     */
    std::vector<Seq>
    in_flight_seqs() const
    {
        std::vector<Seq> seqs;
        seqs.reserve(in_flight_.size());
        for (const auto& [seq, entry] : in_flight_)
            seqs.push_back(seq);
        return seqs;
    }

    /** Enqueue a sending task (FIFO within the channel). `op` is the
     *  task's resolved reduction operator (stamped into every frame);
     *  `replay` marks post-crash re-submissions for the packet
     *  tracer. */
    void submit_send(TaskId task, net::NodeId receiver, KvStream stream,
                     ReduceOp op, std::function<void()> on_complete,
                     bool replay = false);

    // ---- packet handlers (called by the daemon's dispatcher) ------------
    void on_ack(Seq seq);
    void on_fin_ack(TaskId task);

    /** Charge `cost` to this channel's core; returns the completion
     *  time. Used for latency-critical packet I/O (TX, RX, ACKs). */
    sim::SimTime charge(Nanoseconds cost);

    /**
     * Charge deferred work (hash-map aggregation of forwarded tuples).
     * The DPDK fast path ACKs from the rx burst and queues tuples for
     * processing between bursts, so this work consumes the core's
     * capacity without sitting in front of later packets' ACKs. Task
     * completion still waits for it (see AskDaemon::finalize).
     */
    sim::SimTime charge_background(Nanoseconds cost);

    sim::SimTime core_busy_until() const { return core_busy_; }
    sim::SimTime background_busy_until() const { return background_busy_; }
    std::uint64_t busy_ns() const { return busy_ns_; }

    /** Current congestion window (for the occupancy/cwnd samplers). */
    std::uint32_t cwnd() const { return cwnd_; }
    /** Current adaptive retransmission timeout. */
    Nanoseconds rto() const;

  private:
    friend class AskDaemon;

    struct SendJob
    {
        TaskId task = 0;
        net::NodeId receiver = 0;
        std::unique_ptr<PacketBuilder> builder;
        std::function<void()> on_complete;
        ReduceOp op = ReduceOp::kAdd;  ///< stamped into every frame
        bool replay = false;  ///< post-crash re-submission (trace flag)
        bool fenced = false;  ///< channel-bind fence issued (fabric only)
    };

    struct InFlight
    {
        std::vector<std::uint8_t> frame;
        net::NodeId receiver = 0;
        sim::EventId timer = sim::kInvalidEvent;
        std::uint32_t tries = 0;  ///< transmissions so far (for backoff)
        sim::SimTime sent_at = 0;  ///< last transmission time (RTT sample)
        PacketType type = PacketType::kData;
    };

    void pump();
    void schedule_pump(sim::SimTime at);
    void transmit(Seq seq, bool is_retransmit);
    void arm_timer(Seq seq, sim::SimTime after);
    void send_fin(const SendJob& job);
    void finish_front_job();

    /** Fail the front send job: drop its in-flight state, notify the
     *  daemon's task-failure handler, and move on to the next job. */
    void fail_front_job(TaskStatus status, const std::string& reason);

    /**
     * Replay support: forget every job and in-flight frame of `task`
     * (timers cancelled, no callbacks). The channel's sequence space
     * keeps advancing, so a subsequent fence admits only replayed
     * traffic.
     */
    void abort_task(TaskId task);

    /**
     * Degraded-mode entry: every in-flight DATA frame is probed over
     * the management plane and re-issued — under its original sequence
     * number, so end-to-end dedup still holds — as a bypass LONG_DATA
     * frame carrying exactly the tuples the switch did not consume.
     */
    void convert_in_flight_to_bypass();
    void finish_conversion(Seq seq, AskSwitchProgram::ProbeResult probe);

    /**
     * Crash-recovery reset: cancel every timer, drop jobs/in-flight
     * state, restore the congestion/RTT estimators to their initial
     * values, and resume the sequence space at `resume` — the highest
     * journaled checkpoint, which is >= every sequence the channel used
     * before the crash, so a fence at `resume` stale-drops all of them.
     */
    void reset_after_crash(Seq resume);

    AskDaemon& daemon_;
    std::uint32_t local_index_;

    sim::SimTime core_busy_ = 0;
    sim::SimTime background_busy_ = 0;
    std::uint64_t busy_ns_ = 0;

    std::deque<SendJob> jobs_;
    /** Per-channel DATA-build scratch: pump() drains whole streams
     *  through it, so packetization allocates nothing per packet. */
    BuiltData built_scratch_;
    Seq next_seq_ = 0;
    std::map<Seq, InFlight> in_flight_;
    /** Congestion window (paper §7: a congestion-control window runs
     *  beneath the reliability window W). AIMD: +1 per ACK, halved on
     *  timeout, never above W. Prevents full-window bursts from
     *  overrunning receiver cores. */
    std::uint32_t cwnd_ = 16;
    /** Adaptive retransmission timeout (Jacobson/Karn), floored at the
     *  paper's fine-grained 100 us: receiver-bound flows see RTTs well
     *  above the base RTT, and a fixed timeout would retransmit every
     *  packet of such flows. */
    double srtt_ns_ = 0.0;
    double rttvar_ns_ = 0.0;
    bool have_rtt_ = false;
    void observe_rtt(Nanoseconds sample);

    bool fin_outstanding_ = false;
    sim::EventId fin_timer_ = sim::kInvalidEvent;
    std::uint32_t fin_tries_ = 0;

    bool pump_pending_ = false;
};

/** The per-host daemon. */
class AskDaemon : public net::Node
{
  public:
    /**
     * @param host_index   dense index of this server (0..max_hosts-1).
     *                     Strongly typed; a raw std::uint32_t still
     *                     converts implicitly (see the HostId shim).
     * @param switch_node  node id of this host's ToR switch on the fabric.
     * @param controller   the switch control plane (the fabric controller
     *                     in a multi-rack deployment).
     * @param mgmt         the management network all controller RPCs use.
     * @param obs          optional observability bundle (metrics + trace);
     *                     must outlive the daemon when given.
     */
    AskDaemon(const AskConfig& config, const net::CostModel& cost_model,
              net::Network& network, HostId host_index,
              net::NodeId switch_node, AskSwitchController& controller,
              MgmtPlane& mgmt, obs::Observability* obs = nullptr);

    // ---- application-facing API ------------------------------------------

    /**
     * Start an aggregation task with this host as the receiver:
     * allocates the switch region (over the management network) and
     * invokes `on_ready` once senders may stream. When the switch
     * cannot host the region (memory/epoch-slot exhaustion) or the
     * management plane stays unreachable, `on_done` fires with a failed
     * TaskReport instead — the application always learns the outcome.
     */
    void start_receive(TaskId task, std::uint32_t expected_senders,
                       const TaskOptions& options, TaskDoneFn on_done,
                       std::function<void()> on_ready);

    /** Submit a key-value stream for `task` toward `receiver`. The
     *  stream is archived until forget_task() so it can be replayed
     *  after a switch failure. `op` is the task's reduction operator
     *  (nullopt = the config default); kCount streams are lifted
     *  (value -> 1) here, once, before anything downstream folds them. */
    void submit_send(TaskId task, net::NodeId receiver, KvStream stream,
                     std::function<void()> on_complete = nullptr,
                     std::optional<ReduceOp> op = std::nullopt);

    /** The packet tracer of the observability bundle (null without). */
    obs::PacketTracer* tracer() { return tracer_; }

    /** Sender-side send jobs that fail permanently (FIN or bypass
     *  retransmission budget exhausted) are reported here with the
     *  status and a human-readable detail string. */
    void set_task_failure_handler(
        std::function<void(TaskId, TaskStatus, const std::string&)> handler)
    {
        on_task_failure_ = std::move(handler);
    }

    // ---- failure recovery (driven by AskCluster's chaos handlers) --------

    /**
     * Sticky switch from switch-side to host-side aggregation: the
     * switch data path is persistently unresponsive (retransmission
     * budget exhausted), so every future frame — and every abandoned
     * in-flight DATA frame, after a PktState probe — travels the
     * long-key bypass path and is aggregated at the receiver. Slower,
     * still exact.
     */
    void enter_degraded_mode(const std::string& reason);
    bool degraded() const { return degraded_; }

    /**
     * Receiver-side reset of a task whose switch state was wiped:
     * clears the partial aggregate, FIN set, and swap state (register
     * contents are gone, so senders replay from scratch), and drops
     * this task's traffic until `drain_until` so pre-crash packets
     * still in the fabric cannot be double-counted. Receive windows are
     * kept — they are gap-tolerant, and replayed sequence numbers
     * continue past the crash point.
     */
    void prepare_replay(TaskId task, sim::SimTime drain_until);

    /**
     * Silence the sender side of `task` immediately: drop its jobs and
     * in-flight frames on every channel. Called at switch-recovery time
     * BEFORE the channels are fenced — a frame sent after the fence
     * boundary was read would be accepted by the switch and then
     * double-counted by the replay.
     */
    void abort_send(TaskId task);

    /** Re-submit every archived stream of `task` (aborting any live
     *  jobs first). @return streams re-submitted. */
    std::uint32_t replay_task(TaskId task);

    /** Drop the replay archive of a completed task. */
    void forget_task(TaskId task);

    /** Fail a receive task: fires on_done with a failed report and
     *  releases the switch region best-effort. */
    void fail_receive_task(TaskId task, TaskStatus status,
                           std::string detail);

    // ---- host durability (write-ahead log + crash recovery) ---------------

    /**
     * Attach this daemon's write-ahead log. Once set, every externally
     * visible state change — task starts, journaled submits, observed
     * DATA, FINs, swap commits, resets, completions, and sequence
     * checkpoints — is appended *before* the in-memory state mutates,
     * so crash() + recover_from_wal() rebuilds the daemon exactly.
     */
    void set_wal(Wal* wal) { wal_ = wal; }

    /**
     * Crash the host process: every channel, receive task, archive, and
     * timer vanishes; packets arriving while crashed are dropped (the
     * NIC stays attached, the daemon does not). The WAL — owned by the
     * cluster's WalStore, i.e. the host's disk — survives.
     */
    void crash();
    bool crashed() const { return crashed_; }

    /**
     * Restart after crash(): replay the WAL (throws StateError on a
     * digest/framing corruption) and rebuild receive tasks, partial
     * aggregates, receive windows, send archives, and per-channel
     * sequence cursors. Each rebuilt receive task needs its completion
     * callback back — the std::function died with the process — so the
     * cluster supplies `make_done`. Channels are re-fenced at their
     * journaled checkpoints and interrupted swaps are reconciled
     * against the switch's current epoch.
     * @return the number of receive tasks rebuilt.
     */
    std::uint32_t recover_from_wal(
        const std::function<TaskDoneFn(TaskId)>& make_done);

    /** Does this host hold a replay archive for `task`? (Used by the
     *  cluster to decide whether a crashed host was a sender.) */
    bool has_send_archive(TaskId task) const
    {
        return sent_archive_.count(task) != 0;
    }

    // ---- net::Node ---------------------------------------------------------
    void receive(net::Packet pkt) override;
    std::string name() const override;

    // ---- introspection ----------------------------------------------------
    const AskConfig& config() const { return config_; }
    const KeySpace& key_space() const { return key_space_; }
    const net::CostModel& cost_model() const { return cost_model_; }
    net::Network& network() { return network_; }
    sim::Simulator& simulator() { return network_.simulator(); }
    net::NodeId switch_node() const { return switch_node_; }
    HostId host_index() const { return host_index_; }
    const HostStats& stats() const { return stats_; }
    HostStats& stats() { return stats_; }
    const ChaosStats& chaos_stats() const { return chaos_; }
    MgmtPlane& mgmt() { return mgmt_; }
    AskSwitchController& controller() { return controller_; }
    DataChannel& channel(std::uint32_t i) { return *channels_.at(i); }
    std::uint32_t num_channels() const
    {
        return static_cast<std::uint32_t>(channels_.size());
    }

    /** Channel serving a task (hash-based load balancing, §3.1). */
    DataChannel& channel_for_task(TaskId task);

  private:
    friend class DataChannel;

    struct ReceiveTask
    {
        TaskId id = 0;
        /** Resolved reduction operator: the fold every local aggregate
         *  and fetched partial of this task goes through, and the op id
         *  arriving frames must carry. */
        ReduceOp op = ReduceOp::kAdd;
        std::uint32_t expected_senders = 0;
        std::set<ChannelId> fins;
        AggregateMap local;
        std::unordered_map<ChannelId, HostReceiveWindow> windows;
        TaskDoneFn on_done;
        TaskReport report;

        std::uint64_t packets_since_swap = 0;
        std::uint32_t committed_epoch = 0;
        bool swap_in_flight = false;
        std::uint32_t swap_target = 0;
        std::uint32_t swap_tries = 0;
        bool swaps_disabled = false;
        sim::EventId swap_timer = sim::kInvalidEvent;
        bool finalize_pending = false;
        bool finalizing = false;

        /** Bumped by prepare_replay/failure: scheduled fetch/finalize
         *  callbacks from the previous life must not touch the task. */
        std::uint64_t generation = 0;
        /** Recovery drain guard: drop this task's traffic until then. */
        sim::SimTime restarting_until = 0;
        /** Last DATA/FIN arrival (sender-liveness timeout). */
        sim::SimTime last_activity = 0;
        sim::EventId liveness_timer = sim::kInvalidEvent;
        /** Effective liveness timeout (TaskOptions override resolved
         *  against the config default); 0 = disabled. */
        Nanoseconds liveness_timeout_ns = 0;
    };

    /** Charge work to the control-channel thread (fetches, setup). */
    sim::SimTime charge_control(Nanoseconds cost);

    void dispatch_to_sender_channel(const AskHeader& hdr,
                                    const net::Packet& pkt);
    void handle_data(net::Packet&& pkt, const AskHeader& hdr);
    void handle_long_data(net::Packet&& pkt, const AskHeader& hdr);
    void handle_fin(const net::Packet& pkt, const AskHeader& hdr);
    void handle_swap_ack(const AskHeader& hdr);

    void process_data(ReceiveTask& task, const net::Packet& pkt,
                      const AskHeader& hdr, DataChannel& ch);
    void send_ack_to(net::NodeId sender, const AskHeader& data_hdr);
    void maybe_start_swap(ReceiveTask& task, DataChannel& ch);
    void send_swap(TaskId task_id);
    void complete_swap(ReceiveTask& task);
    void maybe_finalize(ReceiveTask& task);
    void finalize(ReceiveTask& task);
    void arm_liveness(TaskId task_id);
    void notify_task_failure(TaskId task, TaskStatus status,
                             const std::string& reason);

    /** Decode the tuples of a DATA frame whose slot bit is in `mask`
     *  (degraded-mode conversion to bypass frames). */
    KvStream tuples_from_data_frame(const std::vector<std::uint8_t>& frame,
                                    std::uint64_t mask) const;

    HostReceiveWindow& window_for(ReceiveTask& task, ChannelId channel);

    /** One archived submit_send (kept until forget_task for replay). */
    struct ArchivedSend
    {
        net::NodeId receiver = 0;
        KvStream stream;  ///< already lifted (kCount values are 1)
        ReduceOp op = ReduceOp::kAdd;
        std::function<void()> on_complete;
    };

    AskConfig config_;
    KeySpace key_space_;
    net::CostModel cost_model_;
    net::Network& network_;
    HostId host_index_;
    net::NodeId switch_node_;
    AskSwitchController& controller_;
    MgmtPlane& mgmt_;

    std::vector<std::unique_ptr<DataChannel>> channels_;
    std::unordered_map<TaskId, ReceiveTask> rx_tasks_;
    std::unordered_map<TaskId, std::vector<ArchivedSend>> sent_archive_;
    std::function<void(TaskId, TaskStatus, const std::string&)>
        on_task_failure_;
    bool degraded_ = false;
    /** Host write-ahead log (null = durability disabled). */
    Wal* wal_ = nullptr;
    /** Crashed and not yet restarted: all traffic is dropped. */
    bool crashed_ = false;
    /** Borrowed observability hooks (may be null). The RTT histogram is
     *  shared across daemons: one `host.rtt_ns` per cluster. */
    obs::PacketTracer* tracer_ = nullptr;
    obs::LogHistogram* rtt_hist_ = nullptr;
    HostStats stats_;
    ChaosStats chaos_;
    /** Busy-until of the control-channel thread (region fetches run
     *  here so they never stall the data path; §4: "one thread as the
     *  control channel"). */
    sim::SimTime control_busy_ = 0;
    /** Round-robin cursor for deferred-aggregation work. */
    std::uint64_t bg_round_robin_ = 0;
};

}  // namespace ask::core

#endif  // ASK_ASK_DAEMON_H
