#include "ask/controller.h"

#include "common/logging.h"

namespace ask::core {

AskSwitchController::AskSwitchController(AskSwitchProgram& program)
    : program_(program),
      capacity_(program.config().copy_size()),
      epoch_slot_used_(program.config().max_tasks, false)
{
}

std::optional<TaskRegion>
AskSwitchController::allocate(TaskId task, std::uint32_t len, ReduceOp op)
{
    if (len == 0 || len > capacity_)
        return std::nullopt;

    // First-fit over the gaps between allocated slices.
    std::uint32_t cursor = 0;
    std::uint32_t base = capacity_;  // sentinel: not found
    for (const auto& [alloc_base, info] : allocated_) {
        if (alloc_base - cursor >= len) {
            base = cursor;
            break;
        }
        cursor = alloc_base + info.first.len;
    }
    if (base == capacity_) {
        if (capacity_ - cursor >= len)
            base = cursor;
        else
            return std::nullopt;
    }

    std::uint32_t epoch_slot = 0;
    while (epoch_slot < epoch_slot_used_.size() && epoch_slot_used_[epoch_slot])
        ++epoch_slot;
    if (epoch_slot == epoch_slot_used_.size())
        return std::nullopt;

    TaskRegion region;
    region.base = base;
    region.len = len;
    region.epoch_slot = epoch_slot;
    region.op = op;

    // Reject an undeclared operator BEFORE journaling or mutating: the
    // install below would throw the same ConfigError, but only after
    // the WAL and journal already recorded a region that never existed.
    if (program_.access_plan().find_reduce_op(
            static_cast<std::uint8_t>(op)) == nullptr) {
        fail_config("task ", task, " requests reduce op '",
                    reduce_op_name(op), "' (id ",
                    static_cast<unsigned>(op),
                    "), which this switch program's access plan does not "
                    "declare");
    }

    // Journal before acting: if we crash after this append, recovery
    // rebuilds the allocation and re-installs it on the data plane.
    if (wal_ != nullptr) {
        WalRecord r;
        r.kind = WalRecordKind::kAlloc;
        r.task = task;
        r.arg0 = base;
        r.arg1 = len;
        r.arg2 = epoch_slot;
        r.kvs.emplace_back("op", static_cast<std::uint64_t>(op));
        wal_->append(r);
    }
    epoch_slot_used_[epoch_slot] = true;
    allocated_[base] = {region, task};
    fetched_.erase(task);  // a reused task id starts a fresh tally
    program_.install_task(task, region);
    return region;
}

void
AskSwitchController::release(TaskId task)
{
    auto it = allocated_.begin();
    while (it != allocated_.end() && it->second.second != task)
        ++it;
    if (it == allocated_.end())
        fail_state("release of unknown task ", task);
    if (wal_ != nullptr) {
        WalRecord r;
        r.kind = WalRecordKind::kRelease;
        r.task = task;
        r.arg0 = it->first;
        wal_->append(r);
    }
    epoch_slot_used_[it->second.first.epoch_slot] = false;
    // Clear the aggregators and reset the swap epoch so a future task
    // reusing this slice starts blank on copy 0 with epoch 0.
    program_.reset_epoch(task);
    program_.read_region(task, 0, /*clear=*/true);
    if (program_.config().shadow_copies)
        program_.read_region(task, 1, /*clear=*/true);
    allocated_.erase(it);
    program_.remove_task(task);
}

void
AskSwitchController::crash()
{
    allocated_.clear();
    epoch_slot_used_.assign(epoch_slot_used_.size(), false);
    fetched_.clear();
}

std::uint32_t
AskSwitchController::recover_from_wal()
{
    ASK_ASSERT(wal_ != nullptr, "controller recovery without a WAL");
    // Throwing replay: a digest mismatch surfaces as StateError and the
    // cluster aborts the affected tasks instead of trusting the log.
    std::vector<WalRecord> records = wal_->replay();
    allocated_.clear();
    epoch_slot_used_.assign(epoch_slot_used_.size(), false);
    for (const WalRecord& r : records) {
        if (r.kind == WalRecordKind::kAlloc) {
            TaskRegion region;
            region.base = r.arg0;
            region.len = r.arg1;
            region.epoch_slot = r.arg2;
            // Pre-op journals carry no "op" kv; those regions were kAdd.
            for (const auto& [key, value] : r.kvs)
                if (key == "op")
                    region.op = static_cast<ReduceOp>(value);
            allocated_[region.base] = {region, r.task};
            epoch_slot_used_[region.epoch_slot] = true;
        } else if (r.kind == WalRecordKind::kRelease) {
            auto it = allocated_.find(r.arg0);
            if (it != allocated_.end() && it->second.second == r.task) {
                epoch_slot_used_[it->second.first.epoch_slot] = false;
                allocated_.erase(it);
            }
        }
    }
    // The data plane survives a controller crash, but a switch reboot
    // may have raced the outage; restore any missing install.
    reinstall_after_reboot();
    return static_cast<std::uint32_t>(allocated_.size());
}

std::uint32_t
AskSwitchController::reinstall_after_reboot()
{
    std::uint32_t count = 0;
    for (const auto& [base, info] : allocated_) {
        if (program_.find_task(info.second) == nullptr) {
            program_.install_task(info.second, info.first);
            ++count;
        }
    }
    return count;
}

void
AskSwitchController::fence_channel(ChannelId channel, Seq next_seq)
{
    program_.fence_channel(channel, next_seq);
}

AskSwitchProgram::ProbeResult
AskSwitchController::probe_packet(ChannelId channel, Seq seq) const
{
    return program_.probe_packet(channel, seq);
}

KvStream
AskSwitchController::fetch(TaskId task, std::uint32_t copy, bool clear)
{
    KvStream out = program_.read_region(task, copy, clear);
    fetched_[task] += out.size();
    return out;
}

std::vector<std::uint64_t>
AskSwitchController::fetched_tally(TaskId task) const
{
    auto it = fetched_.find(task);
    return {it == fetched_.end() ? 0 : it->second};
}

std::uint64_t
AskSwitchController::fetch_scan_entries(TaskId task) const
{
    return program_.region_scan_entries(task);
}

std::uint32_t
AskSwitchController::current_epoch(TaskId task) const
{
    return program_.current_epoch(task);
}

std::uint32_t
AskSwitchController::free_aggregators() const
{
    std::uint32_t used = 0;
    for (const auto& [base, info] : allocated_)
        used += info.first.len;
    return capacity_ - used;
}

}  // namespace ask::core
