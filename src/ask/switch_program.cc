#include "ask/switch_program.h"

#include <bit>
#include <cstdlib>
#include <string_view>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "pisa/verify/verifier.h"

namespace ask::core {

namespace {

/** Pack kPart (key segment) and vPart (value) into one register word. */
std::uint64_t
pack_agg(std::uint32_t part_bits, std::uint32_t seg, Value value)
{
    return (static_cast<std::uint64_t>(seg) << part_bits) | value;
}

std::uint32_t
kpart(std::uint32_t part_bits, std::uint64_t word)
{
    return static_cast<std::uint32_t>(word >> part_bits);
}

Value
vpart(std::uint32_t part_bits, std::uint64_t word)
{
    return static_cast<Value>(word & ((1ULL << part_bits) - 1));
}

}  // namespace

pisa::verify::AccessPlan
AskSwitchProgram::make_access_plan(const AskConfig& config)
{
    return make_access_plan(config, config.max_channels());
}

pisa::verify::AccessPlan
AskSwitchProgram::make_access_plan(const AskConfig& config,
                                   std::uint32_t num_channels)
{
    namespace v = pisa::verify;
    using v::AccessKind;

    std::size_t channels = num_channels;
    std::size_t w = config.window;
    std::size_t aa_stages = (config.num_aas + 3) / 4;
    std::size_t last_stage = 2 + aa_stages;

    v::AccessPlan plan;
    plan.program = "ask-aggregation";

    // ---- declarations: the layout the constructor installs ------------

    plan.arrays.push_back({"max_seq", 0, channels, 32});
    if (config.compact_seen) {
        plan.arrays.push_back({"seen", 1, channels * w, 1});
    } else {
        plan.arrays.push_back({"seen_even", 1, channels * w, 1});
        plan.arrays.push_back({"seen_odd", 1, channels * w, 1});
    }
    plan.arrays.push_back({"swap_epoch", 1, config.max_tasks, 32});
    for (std::uint32_t i = 0; i < config.num_aas; ++i) {
        plan.arrays.push_back({"aa_" + std::to_string(i), 2 + i / 4,
                               config.aggregators_per_aa,
                               config.part_bits * 2});
    }
    plan.arrays.push_back(
        {"pkt_state", last_stage, channels * w, config.num_aas});

    // Reduction operators the aggregator ALUs compile in. The integer
    // menu (add / unsigned max / unsigned min, plus count == add over
    // lifted ones) fits any PISA stateful ALU; the fixed-point float
    // mode reuses the wrapping add and therefore needs the full 32-bit
    // vPart (two's-complement Q-format, see float_encode()).
    auto declare_op = [&](ReduceOp op) {
        plan.reduce_ops.push_back({static_cast<std::uint8_t>(op),
                                   reduce_op_name(op), config.part_bits});
    };
    declare_op(ReduceOp::kAdd);
    declare_op(ReduceOp::kMax);
    declare_op(ReduceOp::kMin);
    declare_op(ReduceOp::kCount);
    if (config.part_bits == 32)
        declare_op(ReduceOp::kFloat);

    // ---- shared fragments ---------------------------------------------

    // Receive window (stage 1), branched on the sequence segment parity
    // (a header-only predicate). The compact variant flips one bit's
    // meaning per segment; the plain variant records in one array and
    // clears one window ahead in the other, in parity order.
    auto seen_steps = [&]() -> v::Step {
        if (config.compact_seen) {
            return v::branch(
                {"segment parity (seq/W)", {}},
                {{"even-segment", {{v::access("seen", AccessKind::kRmw)}}},
                 {"odd-segment", {{v::access("seen", AccessKind::kRmw)}}}});
        }
        return v::branch(
            {"segment parity (seq/W)", {}},
            {{"even-segment",
              {{v::access("seen_even", AccessKind::kRmw),
                v::access("seen_odd", AccessKind::kRmw)}}},
             {"odd-segment",
              {{v::access("seen_odd", AccessKind::kRmw),
                v::access("seen_even", AccessKind::kRmw)}}}});
    };

    std::vector<std::string> seen_deps =
        config.compact_seen
            ? std::vector<std::string>{"seen"}
            : std::vector<std::string>{"seen_even", "seen_odd"};

    // The aggregator arrays: each access is predicated on its slot bit
    // in the packet's bitmap (header-only), so any subset may run —
    // always in ascending array (= non-decreasing stage) order.
    auto aa_steps = [&]() -> std::vector<v::Step> {
        std::vector<v::Step> steps;
        steps.reserve(config.num_aas);
        for (std::uint32_t i = 0; i < config.num_aas; ++i) {
            steps.push_back(v::guarded_access(
                "aa_" + std::to_string(i), AccessKind::kRmw,
                {"bitmap slot " + std::to_string(i), {}}));
        }
        return steps;
    };

    // First-appearance aggregation: with shadow copies the epoch parity
    // (read at stage 1) selects the copy the AAs index into; without
    // them the AAs run unconditionally on the single copy.
    v::Seq first_arm;
    if (config.shadow_copies) {
        first_arm.steps.push_back(
            v::branch({"epoch parity copy selection", {"swap_epoch"}},
                      {{"copy-0", {aa_steps()}}, {"copy-1", {aa_steps()}}}));
    } else {
        first_arm.steps = aa_steps();
    }

    // Task-bound arm: the copy indicator is read before the seen verdict
    // can gate it (both live on stage 1), so the plan models it as a
    // header-predicated skippable read — a sound over-approximation of
    // "read only on first appearance".
    v::Seq task_arm;
    if (config.shadow_copies) {
        task_arm.steps.push_back(v::guarded_access(
            "swap_epoch", AccessKind::kRead, {"copy indicator needed", {}}));
    }
    task_arm.steps.push_back(
        v::branch({"first appearance (per seen)", seen_deps},
                  {{"duplicate", {}}, {"first-appearance", first_arm}}));

    // Fresh arm of the DATA pass: record the window, maybe aggregate,
    // then store (first appearance) or restore (retransmission) the
    // per-packet aggregation state — the operation, not the access, is
    // selected by the seen verdict.
    v::Seq fresh_arm;
    fresh_arm.steps.push_back(seen_steps());
    fresh_arm.steps.push_back(
        v::branch({"aggregation table: task known", {}},
                  {{"unknown-task", {}}, {"task-bound", task_arm}}));
    fresh_arm.steps.push_back(
        v::access("pkt_state", AccessKind::kRmw, seen_deps));

    // ---- passes ---------------------------------------------------------

    v::PassPlan data;
    data.name = "data";
    data.body.steps.push_back(v::access("max_seq", AccessKind::kRmw));
    data.body.steps.push_back(
        v::branch({"stale (seq + W <= max_seq)", {"max_seq"}},
                  {{"stale-drop", {}}, {"fresh", fresh_arm}}));
    plan.passes.push_back(std::move(data));

    v::PassPlan long_data;
    long_data.name = "long_data";
    long_data.body.steps.push_back(v::access("max_seq", AccessKind::kRmw));
    long_data.body.steps.push_back(
        v::branch({"stale (seq + W <= max_seq)", {"max_seq"}},
                  {{"stale-drop", {}}, {"fresh", {{seen_steps()}}}}));
    plan.passes.push_back(std::move(long_data));

    v::PassPlan swap;
    swap.name = "swap";
    swap.body.steps.push_back(v::branch(
        {"aggregation table: task known", {}},
        {{"unknown-task", {}},
         {"task-bound", {{v::access("swap_epoch", AccessKind::kRmw)}}}}));
    plan.passes.push_back(std::move(swap));

    v::PassPlan forward;
    forward.name = "forward";  // control / non-ASK traffic: no state
    plan.passes.push_back(std::move(forward));

    return plan;
}

AskSwitchProgram::AskSwitchProgram(const AskConfig& config,
                                   pisa::PisaSwitch& sw)
    : AskSwitchProgram(config, sw, 0,
                       static_cast<ChannelId>(config.max_channels()))
{
}

AskSwitchProgram::AskSwitchProgram(const AskConfig& config,
                                   pisa::PisaSwitch& sw, ChannelId lo,
                                   ChannelId hi)
    : config_(config),
      key_space_(config),
      simulator_(&sw.simulator()),
      pipeline_(&sw.pipeline()),
      switch_(&sw),
      prov_lo_(lo),
      prov_hi_(hi)
{
    config_.validate();
    ASK_ASSERT(lo < hi, "empty provisioned channel range");
    ASK_ASSERT(hi <= config_.max_channels(),
               "provisioned channels exceed the switch's maximum");

    slot_scratch_.resize(config_.num_aas);
    medium_key_scratch_.resize(config_.max_medium_key_bytes());
    short_mask_ = config_.short_aas() >= 64
                      ? ~0ULL
                      : ((1ULL << config_.short_aas()) - 1);
    medium_masks_.reserve(config_.medium_groups);
    for (std::uint32_t g = 0; g < config_.medium_groups; ++g) {
        std::uint64_t mask = 0;
        for (std::uint32_t j = 0; j < config_.medium_segments; ++j)
            mask |= 1ULL << (config_.medium_base(g) + j);
        medium_masks_.push_back(mask);
    }

    plan_ = make_access_plan(
        config_, static_cast<std::uint32_t>(prov_hi_ - prov_lo_));

    // Prove the plan PISA-legal before touching the pipeline: an illegal
    // program never installs (and never partially declares arrays).
    pisa::verify::PipelineBudget budget;
    budget.num_stages = pipeline_->num_stages();
    budget.sram_per_stage = pipeline_->stage(0)->sram_budget_bytes();
    budget.max_arrays_per_stage = pisa::kMaxRegisterArraysPerStage;
    pisa::verify::VerifyResult proof = pisa::verify::verify(plan_, budget);
    if (!proof.ok()) {
        fail_config("ASK program rejected by the static PISA verifier: ",
                    proof.describe());
    }

    // Declare exactly what the verified plan names: the plan is the
    // single source of truth for placement, so the static proof and the
    // installed layout cannot diverge.
    aas_.reserve(config_.num_aas);
    for (const auto& d : plan_.arrays) {
        pisa::RegisterArray* arr =
            pipeline_->stage(d.stage)->add_register_array(d.name, d.entries,
                                                          d.width_bits);
        if (d.name == "max_seq")
            max_seq_ = arr;
        else if (d.name == "seen")
            seen_ = arr;
        else if (d.name == "seen_even")
            seen_even_ = arr;
        else if (d.name == "seen_odd")
            seen_odd_ = arr;
        else if (d.name == "swap_epoch")
            swap_epoch_ = arr;
        else if (d.name == "pkt_state")
            pkt_state_ = arr;
        else
            aas_.push_back(arr);  // declared in ascending aa_i order
    }

    sw.install(this);

    const char* env = std::getenv("ASK_VERIFY_ACCESSES");
    if (env != nullptr && std::string_view(env) != "" &&
        std::string_view(env) != "0") {
        enable_access_verification();
    }
}

AskSwitchProgram::~AskSwitchProgram()
{
    if (oracle_ != nullptr && pipeline_ != nullptr &&
        pipeline_->access_oracle() == oracle_.get()) {
        pipeline_->set_access_oracle(nullptr);
    }
}

void
AskSwitchProgram::enable_access_verification()
{
    if (oracle_ != nullptr)
        return;
    oracle_ = std::make_unique<pisa::verify::AccessOracle>(plan_);
    pipeline_->set_access_oracle(oracle_.get());
}

void
AskSwitchProgram::install_task(TaskId task, const TaskRegion& region)
{
    ASK_ASSERT(region.len > 0, "empty task region");
    ASK_ASSERT(region.base + region.len <= config_.copy_size(),
               "task region exceeds a shadow copy");
    ASK_ASSERT(region.epoch_slot < config_.max_tasks, "bad epoch slot");
    if (plan_.find_reduce_op(static_cast<std::uint8_t>(region.op)) == nullptr) {
        fail_config("task ", task, " binds reduce op '",
                    reduce_op_name(region.op),
                    "' (id ", static_cast<unsigned>(region.op),
                    "), which this program's access plan does not declare");
    }
    auto [it, inserted] = tasks_.emplace(task, region);
    (void)it;
    ASK_ASSERT(inserted, "task ", task, " already installed");
    cached_region_ = nullptr;
}

void
AskSwitchProgram::remove_task(TaskId task)
{
    tasks_.erase(task);
    cached_region_ = nullptr;
}

const TaskRegion*
AskSwitchProgram::find_task(TaskId task) const
{
    if (cached_region_ != nullptr && task == cached_task_)
        return cached_region_;
    auto it = tasks_.find(task);
    if (it == tasks_.end())
        return nullptr;
    cached_task_ = task;
    cached_region_ = &it->second;
    return cached_region_;
}

std::uint32_t
AskSwitchProgram::current_epoch(TaskId task) const
{
    const TaskRegion* r = find_task(task);
    ASK_ASSERT(r != nullptr, "epoch of unknown task ", task);
    return static_cast<std::uint32_t>(swap_epoch_->cp_read(r->epoch_slot));
}

void
AskSwitchProgram::set_local_channels(ChannelId lo, ChannelId hi)
{
    ASK_ASSERT(lo < hi, "empty local channel range");
    ASK_ASSERT(lo >= prov_lo_ && hi <= prov_hi_,
               "local channels outside the provisioned range");
    local_lo_ = lo;
    local_hi_ = hi;
}

std::uint64_t
AskSwitchProgram::reliability_state_bits() const
{
    std::uint64_t bits = 0;
    for (const auto& d : plan_.arrays) {
        if (d.name == "max_seq" || d.name == "seen" ||
            d.name == "seen_even" || d.name == "seen_odd" ||
            d.name == "pkt_state") {
            bits += static_cast<std::uint64_t>(d.entries) * d.width_bits;
        }
    }
    return bits;
}

void
AskSwitchProgram::reset_epoch(TaskId task)
{
    const TaskRegion* r = find_task(task);
    ASK_ASSERT(r != nullptr, "reset_epoch of unknown task ", task);
    swap_epoch_->cp_write(r->epoch_slot, 0);
}

std::uint64_t
AskSwitchProgram::region_scan_entries(TaskId task) const
{
    const TaskRegion* r = find_task(task);
    ASK_ASSERT(r != nullptr, "scan of unknown task ", task);
    return static_cast<std::uint64_t>(r->len) * config_.num_aas;
}

KvStream
AskSwitchProgram::read_region(TaskId task, std::uint32_t copy, bool clear)
{
    const TaskRegion* r = find_task(task);
    ASK_ASSERT(r != nullptr, "read_region of unknown task ", task);
    ASK_ASSERT(copy == 0 || (config_.shadow_copies && copy == 1),
               "invalid shadow copy index");

    std::uint32_t off = copy * config_.copy_size();
    KvStream out;

    // Short-key AAs: one aggregator holds one whole tuple.
    for (std::uint32_t i = 0; i < config_.short_aas(); ++i) {
        for (std::uint32_t idx = r->base; idx < r->base + r->len; ++idx) {
            std::uint64_t word = aas_[i]->cp_read(off + idx);
            std::uint32_t k = kpart(config_.part_bits, word);
            if (k != 0) {
                out.push_back(KvTuple{
                    KeySpace::unpad(key_space_.decode_segment(k)),
                    vpart(config_.part_bits, word)});
            }
            if (clear)
                aas_[i]->cp_write(off + idx, 0);
        }
    }

    // Medium-key groups: m adjacent AAs share one key at a unified index.
    for (std::uint32_t g = 0; g < config_.medium_groups; ++g) {
        std::uint32_t mb = config_.medium_base(g);
        for (std::uint32_t idx = r->base; idx < r->base + r->len; ++idx) {
            std::uint64_t first = aas_[mb]->cp_read(off + idx);
            if (kpart(config_.part_bits, first) != 0) {
                std::string padded;
                Value value = 0;
                for (std::uint32_t j = 0; j < config_.medium_segments; ++j) {
                    std::uint64_t word = aas_[mb + j]->cp_read(off + idx);
                    padded += key_space_.decode_segment(
                        kpart(config_.part_bits, word));
                    if (j + 1 == config_.medium_segments)
                        value = vpart(config_.part_bits, word);
                }
                out.push_back(KvTuple{KeySpace::unpad(padded), value});
            }
            if (clear) {
                for (std::uint32_t j = 0; j < config_.medium_segments; ++j)
                    aas_[mb + j]->cp_write(off + idx, 0);
            }
        }
    }
    return out;
}

void
AskSwitchProgram::on_reboot()
{
    tasks_.clear();
    cached_region_ = nullptr;
}

void
AskSwitchProgram::fence_channel(ChannelId channel, Seq next_seq)
{
    ASK_ASSERT(provisions(channel), "channel not provisioned on this switch");
    std::uint32_t w = config_.window;
    max_seq_->cp_write(chan_index(channel),
                       static_cast<std::uint64_t>(next_seq) + w - 1);

    std::size_t base = chan_index(channel) * w;
    if (config_.compact_seen) {
        // A fresh packet in an even segment expects bit==0 (set_bit),
        // in an odd segment bit==1 (clr_bitc). Pre-set the parity for
        // the one window the fence admits.
        for (std::uint64_t seq = next_seq;
             seq < static_cast<std::uint64_t>(next_seq) + w; ++seq) {
            std::uint64_t q = seq / w;
            seen_->cp_write(base + seq % w, q % 2 == 1 ? 1 : 0);
        }
    } else {
        seen_even_->cp_clear(base, w);
        seen_odd_->cp_clear(base, w);
    }
    pkt_state_->cp_clear(base, w);
}

SeenSnapshot
AskSwitchProgram::extract_seen(ChannelId channel) const
{
    ASK_ASSERT(provisions(channel), "channel not provisioned on this switch");
    std::uint32_t w = config_.window;
    std::size_t base = chan_index(channel) * w;

    SeenSnapshot snap;
    snap.compact = config_.compact_seen;
    snap.window = w;
    snap.max_seq = static_cast<Seq>(max_seq_->cp_read(chan_index(channel)));
    // The registers have no "never observed" flag: a freshly installed
    // channel reads all-zero, which satisfies every snapshot invariant,
    // so the snapshot is reported as live unconditionally.
    snap.any = true;
    if (config_.compact_seen) {
        snap.bits.resize(w);
        for (std::uint32_t i = 0; i < w; ++i)
            snap.bits[i] =
                static_cast<std::uint8_t>(seen_->cp_read(base + i));
    } else {
        snap.bits.resize(2 * static_cast<std::size_t>(w));
        for (std::uint32_t i = 0; i < w; ++i) {
            snap.bits[i] =
                static_cast<std::uint8_t>(seen_even_->cp_read(base + i));
            snap.bits[w + i] =
                static_cast<std::uint8_t>(seen_odd_->cp_read(base + i));
        }
    }
    return snap;
}

AskSwitchProgram::ProbeResult
AskSwitchProgram::probe_packet(ChannelId channel, Seq seq) const
{
    ASK_ASSERT(provisions(channel), "channel not provisioned on this switch");
    std::uint32_t w = config_.window;
    ProbeResult out;

    std::uint64_t max = max_seq_->cp_read(chan_index(channel));
    if (static_cast<std::uint64_t>(seq) + w <= max)
        return out;  // outside the live window: report not-observed

    std::size_t idx = chan_index(channel) * w + seq % w;
    if (config_.compact_seen) {
        std::uint64_t bit = seen_->cp_read(idx);
        out.observed = (seq / w) % 2 == 0 ? bit != 0 : bit == 0;
    } else {
        bool even = (seq / w) % 2 == 0;
        out.observed = (even ? seen_even_ : seen_odd_)->cp_read(idx) != 0;
    }
    if (out.observed)
        out.remaining = pkt_state_->cp_read(idx);
    return out;
}

AskSwitchProgram::WindowVerdict
AskSwitchProgram::check_window(ChannelId channel, Seq seq)
{
    ASK_ASSERT(provisions(channel), "channel not provisioned on this switch");
    std::uint32_t w = config_.window;
    WindowVerdict verdict;

    // Stage 0: max_seq = max(max_seq, seq); stale if seq <= max_seq - W.
    std::uint64_t max_after =
        max_seq_->rmw(chan_index(channel), [&](std::uint64_t& v) {
            if (seq > v)
                v = seq;
        });
    if (static_cast<std::uint64_t>(seq) + w <= max_after) {
        verdict.stale = true;
        return verdict;
    }

    // Stage 1: the receive window.
    std::uint32_t r = seq % w;
    std::size_t idx = chan_index(channel) * w + r;
    if (config_.compact_seen) {
        // Branch-light fused set_bit/clr_bitc: an even segment returns
        // the previous bit and sets it, an odd segment returns the
        // complement and clears it — both collapse to one XOR against
        // the segment parity and an unconditional store.
        std::uint64_t parity = (seq / w) & 1;
        seen_->rmw(idx, [&](std::uint64_t& b) {
            verdict.observed = (b ^ parity) != 0;
            b = parity ^ 1;
        });
    } else {
        // Reference design: 2W bits as two arrays; record in one segment
        // array, clear the slot one window ahead in the other.
        bool even = (seq / w) % 2 == 0;
        pisa::RegisterArray* rec = even ? seen_even_ : seen_odd_;
        pisa::RegisterArray* clr = even ? seen_odd_ : seen_even_;
        rec->rmw(idx, [&](std::uint64_t& b) {
            verdict.observed = b != 0;
            b = 1;
        });
        clr->rmw(idx, [&](std::uint64_t& b) { b = 0; });
    }
    return verdict;
}

std::uint32_t
AskSwitchProgram::read_indicator(const TaskRegion& region)
{
    if (!config_.shadow_copies)
        return 0;
    std::uint64_t epoch = swap_epoch_->rmw(region.epoch_slot,
                                           [](std::uint64_t&) {});
    return static_cast<std::uint32_t>(epoch & 1);
}

std::uint64_t
AskSwitchProgram::aa_index(const TaskRegion& region, std::uint32_t indicator,
                           std::string_view padded_key) const
{
    return static_cast<std::uint64_t>(indicator) * config_.copy_size() +
           region.base + key_space_.aggregator_index(padded_key, region.len);
}

bool
AskSwitchProgram::aggregate_short(const TaskRegion& region,
                                  std::uint32_t indicator,
                                  std::uint32_t slot_index,
                                  const WireSlot& slot)
{
    std::uint64_t idx =
        static_cast<std::uint64_t>(indicator) * config_.copy_size() +
        region.base +
        key_space_.short_aggregator_index(slot.seg, region.len);
    bool success = false;
    aas_[slot_index]->rmw(idx, [&](std::uint64_t& word) {
        std::uint32_t k = kpart(config_.part_bits, word);
        if (k == 0) {
            word = pack_agg(config_.part_bits, slot.seg, slot.value);
            success = true;
        } else if (k == slot.seg) {
            Value acc = vpart(config_.part_bits, word);
            word = pack_agg(config_.part_bits, slot.seg,
                            apply_op(region.op, acc, slot.value));
            success = true;
        }
    });
    return success;
}

bool
AskSwitchProgram::aggregate_medium(const TaskRegion& region,
                                   std::uint32_t indicator,
                                   std::uint32_t group,
                                   const WireSlot* slots)
{
    std::uint32_t m = config_.medium_segments;
    std::uint32_t mb = config_.medium_base(group);

    // The unified index: hash of the whole padded key (paper §3.2.3),
    // reassembled into the preallocated scratch.
    std::uint32_t nb = config_.seg_bytes();
    for (std::uint32_t j = 0; j < m; ++j) {
        key_space_.decode_segment_into(
            slots[mb + j].seg,
            medium_key_scratch_.data() + static_cast<std::size_t>(j) * nb);
    }
    std::uint64_t idx = aa_index(
        region, indicator,
        std::string_view(medium_key_scratch_.data(),
                         static_cast<std::size_t>(m) * nb));

    bool installing = false;
    for (std::uint32_t j = 0; j < m; ++j) {
        bool ok = false;
        const WireSlot& slot = slots[mb + j];
        Value write_val = (j + 1 == m) ? slot.value : 0;
        aas_[mb + j]->rmw(idx, [&](std::uint64_t& word) {
            std::uint32_t k = kpart(config_.part_bits, word);
            if (k == 0) {
                // Blank. The group invariant (all segments at one index
                // are installed atomically, in order) means the remaining
                // segments are blank too.
                ASK_ASSERT(j == 0 || installing,
                           "medium group invariant violated: blank segment ",
                           j, " after a matching segment");
                installing = true;
                word = pack_agg(config_.part_bits, slot.seg, write_val);
                ok = true;
            } else if (k == slot.seg && !installing) {
                if (j + 1 == m) {
                    Value acc = vpart(config_.part_bits, word);
                    word = pack_agg(config_.part_bits, slot.seg,
                                    apply_op(region.op, acc, slot.value));
                }
                ok = true;
            } else if (installing) {
                panic("medium group invariant violated: occupied segment ",
                      j, " while installing");
            }
        });
        if (!ok)
            return false;  // collision; no earlier segment was modified
    }
    return true;
}

void
AskSwitchProgram::process_data(net::Packet&& pkt, const AskHeader& hdr,
                               pisa::Emitter& emit)
{
    ++stats_.data_packets;

    // Op binding check (a match-table lookup, before any register is
    // touched): a frame whose op id contradicts the installed region
    // would merge with the wrong ALU function, so it is dropped whole —
    // it must not consume a sequence number or flip seen parity either.
    const TaskRegion* region = find_task(hdr.task_id);
    if (region != nullptr && hdr.op != region->op) {
        ++stats_.op_mismatch;
        return;
    }

    WindowVerdict verdict = check_window(hdr.channel_id, hdr.seq);
    if (verdict.stale) {
        ++stats_.stale_dropped;
        ASK_TRACE(tracer_, simulator_->now(), hdr.task_id, hdr.channel_id,
                  hdr.seq, obs::TraceStage::kSwitchStale);
        return;
    }

    std::uint64_t new_bitmap = hdr.bitmap;

    if (!verdict.observed) {
        // Count logical tuples: one per short slot bit plus one per
        // medium group (a medium tuple occupies m bitmap bits).
        stats_.tuples_in += std::popcount(hdr.bitmap & short_mask_);
        for (std::uint32_t g = 0; g < config_.medium_groups; ++g) {
            if (hdr.bitmap & (1ULL << config_.medium_base(g)))
                ++stats_.tuples_in;
        }
        if (region != nullptr) {
            std::uint32_t indicator = read_indicator(*region);

            // Batched pass: decode every occupied payload slot into the
            // preallocated scratch once, then dispatch set bits — the
            // register accesses themselves are unchanged (one rmw per
            // AA, ascending order), so the PISA pass discipline and the
            // access oracle see the exact per-tuple access pattern.
            read_slots(pkt.data, hdr.bitmap, config_.num_aas,
                       slot_scratch_.data());

            // Short-key slots (iterate set bits only).
            for (std::uint64_t rest = hdr.bitmap & short_mask_; rest != 0;
                 rest &= rest - 1) {
                auto i = static_cast<std::uint32_t>(std::countr_zero(rest));
                if (aggregate_short(*region, indicator, i,
                                    slot_scratch_[i])) {
                    new_bitmap &= ~(1ULL << i);
                    ++stats_.tuples_aggregated;
                } else {
                    ++stats_.tuples_collided;
                }
            }

            // Medium-key groups (all-or-nothing per group).
            for (std::uint32_t g = 0; g < config_.medium_groups; ++g) {
                std::uint64_t group_mask = medium_masks_[g];
                std::uint64_t present = hdr.bitmap & group_mask;
                if (present == 0)
                    continue;
                ASK_ASSERT(present == group_mask,
                           "medium group bitmap must be all-or-nothing");
                if (aggregate_medium(*region, indicator, g,
                                     slot_scratch_.data())) {
                    new_bitmap &= ~group_mask;
                    ++stats_.tuples_aggregated;
                } else {
                    ++stats_.tuples_collided;
                }
            }
        } else {
            ++stats_.unknown_task;
        }
    } else {
        ++stats_.duplicates;
    }

    // Final stage: pkt_state — record the aggregation outcome on first
    // appearance (Eq. 9); restore it on retransmissions (Eq. 10).
    std::size_t ps_idx =
        chan_index(hdr.channel_id) * config_.window +
        hdr.seq % config_.window;
    pkt_state_->rmw(ps_idx, [&](std::uint64_t& state) {
        if (!verdict.observed)
            state = new_bitmap;
        else
            new_bitmap = state;
    });

    // A leaf ToR may consume a fully aggregated packet only when the
    // receiver is directly attached (no window-holding switch further
    // along the route) — one FIB lookup, which the egress pipeline does
    // anyway. Cross-rack residuals must stay alive to the tree root.
    bool may_consume =
        !tree_leaf_ || switch_->next_hop(pkt.dst) == pkt.dst;
    if (new_bitmap == 0 && may_consume) {
        // Fully aggregated at the last aggregating hop: consume the
        // packet and ACK the sender with the same sequence number (the
        // switch impersonates the receiver endpoint).
        ++stats_.packets_acked;
        ASK_TRACE(tracer_, simulator_->now(), hdr.task_id, hdr.channel_id,
                  hdr.seq, obs::TraceStage::kSwitchAck);
        AskHeader ack;
        ack.type = PacketType::kAck;
        ack.channel_id = hdr.channel_id;
        ack.task_id = hdr.task_id;
        ack.seq = hdr.seq;
        emit.emit(pkt.src, make_control_packet(pkt.dst, pkt.src, ack));
    } else {
        // Partially aggregated — or a leaf ToR that absorbed everything:
        // keep the packet alive toward the tree root so every window-
        // holding switch on the path observes this sequence number
        // (empty residuals die at the root, which ACKs on their behalf).
        if (new_bitmap == 0)
            ++stats_.residual_forwarded;
        else
            ++stats_.packets_forwarded;
        ASK_TRACE(tracer_, simulator_->now(), hdr.task_id, hdr.channel_id,
                  hdr.seq, obs::TraceStage::kSwitchForward, new_bitmap);
        rewrite_bitmap(pkt.data, new_bitmap);
        net::NodeId dst = pkt.dst;
        emit.emit(dst, std::move(pkt));
    }
}

void
AskSwitchProgram::process_swap(const net::Packet& pkt, const AskHeader& hdr,
                               pisa::Emitter& emit)
{
    const TaskRegion* region = find_task(hdr.task_id);
    if (region == nullptr) {
        ++stats_.unknown_task;
        return;
    }
    std::uint32_t requested = hdr.seq;  // SWAP reuses seq as the epoch
    bool applied = false;
    swap_epoch_->rmw(region->epoch_slot, [&](std::uint64_t& epoch) {
        if (requested > epoch) {
            epoch = requested;
            applied = true;
        }
    });
    if (applied)
        ++stats_.swaps;

    AskHeader ack;
    ack.type = PacketType::kSwapAck;
    ack.task_id = hdr.task_id;
    ack.channel_id = hdr.channel_id;
    ack.seq = requested;
    emit.emit(pkt.src, make_control_packet(pkt.dst, pkt.src, ack));
}

void
AskSwitchProgram::process(net::Packet pkt, pisa::Emitter& emit)
{
    auto hdr = parse_header(pkt.data);
    if (!hdr) {
        // Not ASK traffic: plain L3 forwarding.
        net::NodeId dst = pkt.dst;
        emit.emit(dst, std::move(pkt));
        return;
    }

    if (data_blackhole_) {
        if (hdr->type == PacketType::kData || hdr->type == PacketType::kSwap) {
            ++stats_.blackholed;
            ASK_TRACE(tracer_, simulator_->now(), hdr->task_id,
                      hdr->channel_id, hdr->seq,
                      obs::TraceStage::kSwitchBlackhole);
            return;
        }
        if (hdr->type == PacketType::kLongData) {
            ++stats_.long_packets;
            net::NodeId dst = pkt.dst;
            emit.emit(dst, std::move(pkt));
            return;
        }
    }

    // Multi-rack fabric (§7): data-plane state only covers this switch's
    // provisioned channels (a ToR's own rack; everything for the tier
    // switch); other racks' traffic is plain-forwarded toward the
    // receiver host (aggregation happens at the tier, or at the host).
    bool local = local_hi_ == 0 ? provisions(hdr->channel_id)
                                : (hdr->channel_id >= local_lo_ &&
                                   hdr->channel_id < local_hi_);
    if (!local && (hdr->type == PacketType::kData ||
                   hdr->type == PacketType::kLongData)) {
        net::NodeId dst = pkt.dst;
        emit.emit(dst, std::move(pkt));
        return;
    }

    switch (hdr->type) {
      case PacketType::kData:
        process_data(std::move(pkt), *hdr, emit);
        return;
      case PacketType::kLongData: {
        // Long keys bypass aggregation but still occupy channel sequence
        // numbers, so they must be recorded in the receive window to keep
        // the compact-seen segment parity consistent.
        ++stats_.long_packets;
        WindowVerdict verdict = check_window(hdr->channel_id, hdr->seq);
        if (verdict.stale) {
            ++stats_.stale_dropped;
            ASK_TRACE(tracer_, simulator_->now(), hdr->task_id,
                      hdr->channel_id, hdr->seq,
                      obs::TraceStage::kSwitchStale);
            return;
        }
        if (verdict.observed)
            ++stats_.duplicates;
        ASK_TRACE(tracer_, simulator_->now(), hdr->task_id, hdr->channel_id,
                  hdr->seq, obs::TraceStage::kSwitchForward, 0,
                  obs::kTraceFlagBypass);
        net::NodeId dst = pkt.dst;
        emit.emit(dst, std::move(pkt));
        return;
      }
      case PacketType::kSwap:
        process_swap(pkt, *hdr, emit);
        return;
      case PacketType::kAck:
      case PacketType::kFin:
      case PacketType::kFinAck:
      case PacketType::kSwapAck: {
        // Control traffic between hosts: forward.
        net::NodeId dst = pkt.dst;
        emit.emit(dst, std::move(pkt));
        return;
      }
    }
    panic("unknown ASK packet type ",
          static_cast<int>(static_cast<std::uint8_t>(hdr->type)));
}

}  // namespace ask::core
