#include "ask/switch_program.h"

#include <bit>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"

namespace ask::core {

namespace {

/** Pack kPart (key segment) and vPart (value) into one register word. */
std::uint64_t
pack_agg(std::uint32_t part_bits, std::uint32_t seg, Value value)
{
    return (static_cast<std::uint64_t>(seg) << part_bits) | value;
}

std::uint32_t
kpart(std::uint32_t part_bits, std::uint64_t word)
{
    return static_cast<std::uint32_t>(word >> part_bits);
}

Value
vpart(std::uint32_t part_bits, std::uint64_t word)
{
    return static_cast<Value>(word & ((1ULL << part_bits) - 1));
}

}  // namespace

AskSwitchProgram::AskSwitchProgram(const AskConfig& config,
                                   pisa::PisaSwitch& sw)
    : config_(config), key_space_(config), simulator_(&sw.simulator())
{
    config_.validate();
    pisa::Pipeline& pipe = sw.pipeline();

    std::size_t aa_stages = (config_.num_aas + 3) / 4;
    std::size_t needed = 2 + aa_stages + 1;
    if (pipe.num_stages() < needed) {
        fatal("pipeline has ", pipe.num_stages(), " stages but the ASK ",
              "program needs ", needed,
              " (chain pipelines or reduce num_aas)");
    }

    std::uint32_t channels = config_.max_channels();
    std::uint32_t w = config_.window;

    // Stage 0: stale-packet boundary.
    max_seq_ = pipe.stage(0)->add_register_array("max_seq", channels, 32);

    // Stage 1: receive window + copy indicator.
    if (config_.compact_seen) {
        seen_ = pipe.stage(1)->add_register_array(
            "seen", static_cast<std::size_t>(channels) * w, 1);
    } else {
        // Two arrays so Eq. (6)'s record and Eq. (7)'s clear-ahead touch
        // different register arrays within the single pass.
        seen_even_ = pipe.stage(1)->add_register_array(
            "seen_even", static_cast<std::size_t>(channels) * w, 1);
        seen_odd_ = pipe.stage(1)->add_register_array(
            "seen_odd", static_cast<std::size_t>(channels) * w, 1);
    }
    swap_epoch_ =
        pipe.stage(1)->add_register_array("swap_epoch", config_.max_tasks, 32);

    // Stages 2..: the aggregator arrays, four per stage. Medium-key
    // groups land on consecutive AAs, i.e. physically adjacent stages.
    aas_.reserve(config_.num_aas);
    for (std::uint32_t i = 0; i < config_.num_aas; ++i) {
        pisa::Stage* st = pipe.stage(2 + i / 4);
        aas_.push_back(st->add_register_array(
            "aa_" + std::to_string(i), config_.aggregators_per_aa,
            config_.part_bits * 2));
    }

    // Final stage: per-packet aggregation-state bitmaps.
    pkt_state_ = pipe.stage(2 + aa_stages)
                     ->add_register_array(
                         "pkt_state", static_cast<std::size_t>(channels) * w,
                         config_.num_aas);

    sw.install(this);
}

void
AskSwitchProgram::install_task(TaskId task, const TaskRegion& region)
{
    ASK_ASSERT(region.len > 0, "empty task region");
    ASK_ASSERT(region.base + region.len <= config_.copy_size(),
               "task region exceeds a shadow copy");
    ASK_ASSERT(region.epoch_slot < config_.max_tasks, "bad epoch slot");
    auto [it, inserted] = tasks_.emplace(task, region);
    (void)it;
    ASK_ASSERT(inserted, "task ", task, " already installed");
}

void
AskSwitchProgram::remove_task(TaskId task)
{
    tasks_.erase(task);
}

const TaskRegion*
AskSwitchProgram::find_task(TaskId task) const
{
    auto it = tasks_.find(task);
    return it == tasks_.end() ? nullptr : &it->second;
}

std::uint32_t
AskSwitchProgram::current_epoch(TaskId task) const
{
    const TaskRegion* r = find_task(task);
    ASK_ASSERT(r != nullptr, "epoch of unknown task ", task);
    return static_cast<std::uint32_t>(swap_epoch_->cp_read(r->epoch_slot));
}

void
AskSwitchProgram::set_local_channels(ChannelId lo, ChannelId hi)
{
    ASK_ASSERT(lo < hi, "empty local channel range");
    local_lo_ = lo;
    local_hi_ = hi;
}

void
AskSwitchProgram::reset_epoch(TaskId task)
{
    const TaskRegion* r = find_task(task);
    ASK_ASSERT(r != nullptr, "reset_epoch of unknown task ", task);
    swap_epoch_->cp_write(r->epoch_slot, 0);
}

std::uint64_t
AskSwitchProgram::region_scan_entries(TaskId task) const
{
    const TaskRegion* r = find_task(task);
    ASK_ASSERT(r != nullptr, "scan of unknown task ", task);
    return static_cast<std::uint64_t>(r->len) * config_.num_aas;
}

KvStream
AskSwitchProgram::read_region(TaskId task, std::uint32_t copy, bool clear)
{
    const TaskRegion* r = find_task(task);
    ASK_ASSERT(r != nullptr, "read_region of unknown task ", task);
    ASK_ASSERT(copy == 0 || (config_.shadow_copies && copy == 1),
               "invalid shadow copy index");

    std::uint32_t off = copy * config_.copy_size();
    KvStream out;

    // Short-key AAs: one aggregator holds one whole tuple.
    for (std::uint32_t i = 0; i < config_.short_aas(); ++i) {
        for (std::uint32_t idx = r->base; idx < r->base + r->len; ++idx) {
            std::uint64_t word = aas_[i]->cp_read(off + idx);
            std::uint32_t k = kpart(config_.part_bits, word);
            if (k != 0) {
                out.push_back(KvTuple{
                    KeySpace::unpad(key_space_.decode_segment(k)),
                    vpart(config_.part_bits, word)});
            }
            if (clear)
                aas_[i]->cp_write(off + idx, 0);
        }
    }

    // Medium-key groups: m adjacent AAs share one key at a unified index.
    for (std::uint32_t g = 0; g < config_.medium_groups; ++g) {
        std::uint32_t mb = config_.medium_base(g);
        for (std::uint32_t idx = r->base; idx < r->base + r->len; ++idx) {
            std::uint64_t first = aas_[mb]->cp_read(off + idx);
            if (kpart(config_.part_bits, first) != 0) {
                std::string padded;
                Value value = 0;
                for (std::uint32_t j = 0; j < config_.medium_segments; ++j) {
                    std::uint64_t word = aas_[mb + j]->cp_read(off + idx);
                    padded += key_space_.decode_segment(
                        kpart(config_.part_bits, word));
                    if (j + 1 == config_.medium_segments)
                        value = vpart(config_.part_bits, word);
                }
                out.push_back(KvTuple{KeySpace::unpad(padded), value});
            }
            if (clear) {
                for (std::uint32_t j = 0; j < config_.medium_segments; ++j)
                    aas_[mb + j]->cp_write(off + idx, 0);
            }
        }
    }
    return out;
}

void
AskSwitchProgram::on_reboot()
{
    tasks_.clear();
}

void
AskSwitchProgram::fence_channel(ChannelId channel, Seq next_seq)
{
    ASK_ASSERT(channel < config_.max_channels(), "channel id out of range");
    std::uint32_t w = config_.window;
    max_seq_->cp_write(channel, static_cast<std::uint64_t>(next_seq) + w - 1);

    std::size_t base = static_cast<std::size_t>(channel) * w;
    if (config_.compact_seen) {
        // A fresh packet in an even segment expects bit==0 (set_bit),
        // in an odd segment bit==1 (clr_bitc). Pre-set the parity for
        // the one window the fence admits.
        for (std::uint64_t seq = next_seq;
             seq < static_cast<std::uint64_t>(next_seq) + w; ++seq) {
            std::uint64_t q = seq / w;
            seen_->cp_write(base + seq % w, q % 2 == 1 ? 1 : 0);
        }
    } else {
        seen_even_->cp_clear(base, w);
        seen_odd_->cp_clear(base, w);
    }
    pkt_state_->cp_clear(base, w);
}

AskSwitchProgram::ProbeResult
AskSwitchProgram::probe_packet(ChannelId channel, Seq seq) const
{
    ASK_ASSERT(channel < config_.max_channels(), "channel id out of range");
    std::uint32_t w = config_.window;
    ProbeResult out;

    std::uint64_t max = max_seq_->cp_read(channel);
    if (static_cast<std::uint64_t>(seq) + w <= max)
        return out;  // outside the live window: report not-observed

    std::size_t idx = static_cast<std::size_t>(channel) * w + seq % w;
    if (config_.compact_seen) {
        std::uint64_t bit = seen_->cp_read(idx);
        out.observed = (seq / w) % 2 == 0 ? bit != 0 : bit == 0;
    } else {
        bool even = (seq / w) % 2 == 0;
        out.observed = (even ? seen_even_ : seen_odd_)->cp_read(idx) != 0;
    }
    if (out.observed)
        out.remaining = pkt_state_->cp_read(idx);
    return out;
}

AskSwitchProgram::WindowVerdict
AskSwitchProgram::check_window(ChannelId channel, Seq seq)
{
    ASK_ASSERT(channel < config_.max_channels(), "channel id out of range");
    std::uint32_t w = config_.window;
    WindowVerdict verdict;

    // Stage 0: max_seq = max(max_seq, seq); stale if seq <= max_seq - W.
    std::uint64_t max_after = max_seq_->rmw(channel, [&](std::uint64_t& v) {
        if (seq > v)
            v = seq;
    });
    if (static_cast<std::uint64_t>(seq) + w <= max_after) {
        verdict.stale = true;
        return verdict;
    }

    // Stage 1: the receive window.
    std::uint32_t r = seq % w;
    std::size_t idx = static_cast<std::size_t>(channel) * w + r;
    if (config_.compact_seen) {
        std::uint32_t q = seq / w;
        if (q % 2 == 0) {
            // set_bit: return previous value, leave the bit set.
            seen_->rmw(idx, [&](std::uint64_t& b) {
                verdict.observed = b != 0;
                b = 1;
            });
        } else {
            // clr_bitc: return complement of previous value, clear it.
            seen_->rmw(idx, [&](std::uint64_t& b) {
                verdict.observed = b == 0;
                b = 0;
            });
        }
    } else {
        // Reference design: 2W bits as two arrays; record in one segment
        // array, clear the slot one window ahead in the other.
        bool even = (seq / w) % 2 == 0;
        pisa::RegisterArray* rec = even ? seen_even_ : seen_odd_;
        pisa::RegisterArray* clr = even ? seen_odd_ : seen_even_;
        rec->rmw(idx, [&](std::uint64_t& b) {
            verdict.observed = b != 0;
            b = 1;
        });
        clr->rmw(idx, [&](std::uint64_t& b) { b = 0; });
    }
    return verdict;
}

std::uint32_t
AskSwitchProgram::read_indicator(const TaskRegion& region)
{
    if (!config_.shadow_copies)
        return 0;
    std::uint64_t epoch = swap_epoch_->rmw(region.epoch_slot,
                                           [](std::uint64_t&) {});
    return static_cast<std::uint32_t>(epoch & 1);
}

std::uint64_t
AskSwitchProgram::aa_index(const TaskRegion& region, std::uint32_t indicator,
                           std::string_view padded_key) const
{
    return static_cast<std::uint64_t>(indicator) * config_.copy_size() +
           region.base + key_space_.aggregator_index(padded_key, region.len);
}

bool
AskSwitchProgram::aggregate_short(const TaskRegion& region,
                                  std::uint32_t indicator,
                                  std::uint32_t slot_index,
                                  const WireSlot& slot)
{
    std::string padded = key_space_.decode_segment(slot.seg);
    std::uint64_t idx = aa_index(region, indicator, padded);
    bool success = false;
    aas_[slot_index]->rmw(idx, [&](std::uint64_t& word) {
        std::uint32_t k = kpart(config_.part_bits, word);
        if (k == 0) {
            word = pack_agg(config_.part_bits, slot.seg, slot.value);
            success = true;
        } else if (k == slot.seg) {
            Value acc = vpart(config_.part_bits, word);
            word = pack_agg(config_.part_bits, slot.seg,
                            apply_op(config_.op, acc, slot.value));
            success = true;
        }
    });
    return success;
}

bool
AskSwitchProgram::aggregate_medium(const TaskRegion& region,
                                   std::uint32_t indicator,
                                   std::uint32_t group,
                                   const std::vector<WireSlot>& slots)
{
    std::uint32_t m = config_.medium_segments;
    ASK_ASSERT(slots.size() == m, "medium group slot count mismatch");

    // The unified index: hash of the whole padded key (paper §3.2.3).
    std::string padded;
    for (const auto& s : slots)
        padded += key_space_.decode_segment(s.seg);
    std::uint64_t idx = aa_index(region, indicator, padded);

    std::uint32_t mb = config_.medium_base(group);
    bool installing = false;
    for (std::uint32_t j = 0; j < m; ++j) {
        bool ok = false;
        Value write_val = (j + 1 == m) ? slots[j].value : 0;
        aas_[mb + j]->rmw(idx, [&](std::uint64_t& word) {
            std::uint32_t k = kpart(config_.part_bits, word);
            if (k == 0) {
                // Blank. The group invariant (all segments at one index
                // are installed atomically, in order) means the remaining
                // segments are blank too.
                ASK_ASSERT(j == 0 || installing,
                           "medium group invariant violated: blank segment ",
                           j, " after a matching segment");
                installing = true;
                word = pack_agg(config_.part_bits, slots[j].seg, write_val);
                ok = true;
            } else if (k == slots[j].seg && !installing) {
                if (j + 1 == m) {
                    Value acc = vpart(config_.part_bits, word);
                    word = pack_agg(config_.part_bits, slots[j].seg,
                                    apply_op(config_.op, acc, slots[j].value));
                }
                ok = true;
            } else if (installing) {
                panic("medium group invariant violated: occupied segment ",
                      j, " while installing");
            }
        });
        if (!ok)
            return false;  // collision; no earlier segment was modified
    }
    return true;
}

void
AskSwitchProgram::process_data(net::Packet&& pkt, const AskHeader& hdr,
                               pisa::Emitter& emit)
{
    ++stats_.data_packets;
    WindowVerdict verdict = check_window(hdr.channel_id, hdr.seq);
    if (verdict.stale) {
        ++stats_.stale_dropped;
        ASK_TRACE(tracer_, simulator_->now(), hdr.task_id, hdr.channel_id,
                  hdr.seq, obs::TraceStage::kSwitchStale);
        return;
    }

    const TaskRegion* region = find_task(hdr.task_id);
    std::uint64_t new_bitmap = hdr.bitmap;

    if (!verdict.observed) {
        // Count logical tuples: one per short slot bit plus one per
        // medium group (a medium tuple occupies m bitmap bits).
        std::uint64_t short_mask =
            config_.short_aas() >= 64 ? ~0ULL
                                      : ((1ULL << config_.short_aas()) - 1);
        stats_.tuples_in += std::popcount(hdr.bitmap & short_mask);
        for (std::uint32_t g = 0; g < config_.medium_groups; ++g) {
            if (hdr.bitmap & (1ULL << config_.medium_base(g)))
                ++stats_.tuples_in;
        }
        if (region != nullptr) {
            std::uint32_t indicator = read_indicator(*region);

            // Short-key slots.
            for (std::uint32_t i = 0; i < config_.short_aas(); ++i) {
                if (!(hdr.bitmap & (1ULL << i)))
                    continue;
                WireSlot slot = read_slot(pkt.data, i);
                if (aggregate_short(*region, indicator, i, slot)) {
                    new_bitmap &= ~(1ULL << i);
                    ++stats_.tuples_aggregated;
                } else {
                    ++stats_.tuples_collided;
                }
            }

            // Medium-key groups (all-or-nothing per group).
            for (std::uint32_t g = 0; g < config_.medium_groups; ++g) {
                std::uint32_t mb = config_.medium_base(g);
                std::uint64_t group_mask = 0;
                for (std::uint32_t j = 0; j < config_.medium_segments; ++j)
                    group_mask |= 1ULL << (mb + j);
                std::uint64_t present = hdr.bitmap & group_mask;
                if (present == 0)
                    continue;
                ASK_ASSERT(present == group_mask,
                           "medium group bitmap must be all-or-nothing");
                std::vector<WireSlot> slots;
                slots.reserve(config_.medium_segments);
                for (std::uint32_t j = 0; j < config_.medium_segments; ++j)
                    slots.push_back(read_slot(pkt.data, mb + j));
                if (aggregate_medium(*region, indicator, g, slots)) {
                    new_bitmap &= ~group_mask;
                    ++stats_.tuples_aggregated;
                } else {
                    ++stats_.tuples_collided;
                }
            }
        } else {
            ++stats_.unknown_task;
        }
    } else {
        ++stats_.duplicates;
    }

    // Final stage: pkt_state — record the aggregation outcome on first
    // appearance (Eq. 9); restore it on retransmissions (Eq. 10).
    std::size_t ps_idx = static_cast<std::size_t>(hdr.channel_id) *
                             config_.window +
                         hdr.seq % config_.window;
    pkt_state_->rmw(ps_idx, [&](std::uint64_t& state) {
        if (!verdict.observed)
            state = new_bitmap;
        else
            new_bitmap = state;
    });

    if (new_bitmap == 0) {
        // Fully aggregated: consume the packet and ACK the sender with
        // the same sequence number (the switch impersonates the
        // receiver endpoint).
        ++stats_.packets_acked;
        ASK_TRACE(tracer_, simulator_->now(), hdr.task_id, hdr.channel_id,
                  hdr.seq, obs::TraceStage::kSwitchAck);
        AskHeader ack;
        ack.type = PacketType::kAck;
        ack.channel_id = hdr.channel_id;
        ack.task_id = hdr.task_id;
        ack.seq = hdr.seq;
        emit.emit(pkt.src, make_control_packet(pkt.dst, pkt.src, ack));
    } else {
        ++stats_.packets_forwarded;
        ASK_TRACE(tracer_, simulator_->now(), hdr.task_id, hdr.channel_id,
                  hdr.seq, obs::TraceStage::kSwitchForward, new_bitmap);
        rewrite_bitmap(pkt.data, new_bitmap);
        net::NodeId dst = pkt.dst;
        emit.emit(dst, std::move(pkt));
    }
}

void
AskSwitchProgram::process_swap(const net::Packet& pkt, const AskHeader& hdr,
                               pisa::Emitter& emit)
{
    const TaskRegion* region = find_task(hdr.task_id);
    if (region == nullptr) {
        ++stats_.unknown_task;
        return;
    }
    std::uint32_t requested = hdr.seq;  // SWAP reuses seq as the epoch
    bool applied = false;
    swap_epoch_->rmw(region->epoch_slot, [&](std::uint64_t& epoch) {
        if (requested > epoch) {
            epoch = requested;
            applied = true;
        }
    });
    if (applied)
        ++stats_.swaps;

    AskHeader ack;
    ack.type = PacketType::kSwapAck;
    ack.task_id = hdr.task_id;
    ack.channel_id = hdr.channel_id;
    ack.seq = requested;
    emit.emit(pkt.src, make_control_packet(pkt.dst, pkt.src, ack));
}

void
AskSwitchProgram::process(net::Packet pkt, pisa::Emitter& emit)
{
    auto hdr = parse_header(pkt.data);
    if (!hdr) {
        // Not ASK traffic: plain L3 forwarding.
        net::NodeId dst = pkt.dst;
        emit.emit(dst, std::move(pkt));
        return;
    }

    if (data_blackhole_) {
        if (hdr->type == PacketType::kData || hdr->type == PacketType::kSwap) {
            ++stats_.blackholed;
            ASK_TRACE(tracer_, simulator_->now(), hdr->task_id,
                      hdr->channel_id, hdr->seq,
                      obs::TraceStage::kSwitchBlackhole);
            return;
        }
        if (hdr->type == PacketType::kLongData) {
            ++stats_.long_packets;
            net::NodeId dst = pkt.dst;
            emit.emit(dst, std::move(pkt));
            return;
        }
    }

    // Multi-rack bypass (§7): data-plane state only covers this rack's
    // own channels; cross-rack traffic is plain-forwarded toward the
    // receiver host (aggregation happens there, or on its own ToR).
    bool local = local_hi_ == 0 || (hdr->channel_id >= local_lo_ &&
                                    hdr->channel_id < local_hi_);
    if (!local && (hdr->type == PacketType::kData ||
                   hdr->type == PacketType::kLongData)) {
        net::NodeId dst = pkt.dst;
        emit.emit(dst, std::move(pkt));
        return;
    }

    switch (hdr->type) {
      case PacketType::kData:
        process_data(std::move(pkt), *hdr, emit);
        return;
      case PacketType::kLongData: {
        // Long keys bypass aggregation but still occupy channel sequence
        // numbers, so they must be recorded in the receive window to keep
        // the compact-seen segment parity consistent.
        ++stats_.long_packets;
        WindowVerdict verdict = check_window(hdr->channel_id, hdr->seq);
        if (verdict.stale) {
            ++stats_.stale_dropped;
            ASK_TRACE(tracer_, simulator_->now(), hdr->task_id,
                      hdr->channel_id, hdr->seq,
                      obs::TraceStage::kSwitchStale);
            return;
        }
        if (verdict.observed)
            ++stats_.duplicates;
        ASK_TRACE(tracer_, simulator_->now(), hdr->task_id, hdr->channel_id,
                  hdr->seq, obs::TraceStage::kSwitchForward, 0,
                  obs::kTraceFlagBypass);
        net::NodeId dst = pkt.dst;
        emit.emit(dst, std::move(pkt));
        return;
      }
      case PacketType::kSwap:
        process_swap(pkt, *hdr, emit);
        return;
      case PacketType::kAck:
      case PacketType::kFin:
      case PacketType::kFinAck:
      case PacketType::kSwapAck: {
        // Control traffic between hosts: forward.
        net::NodeId dst = pkt.dst;
        emit.emit(dst, std::move(pkt));
        return;
      }
    }
    panic("unknown ASK packet type ",
          static_cast<int>(static_cast<std::uint8_t>(hdr->type)));
}

}  // namespace ask::core
