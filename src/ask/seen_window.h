/**
 * @file
 * Receive-window data structures of the reliability mechanism (§3.3).
 *
 * Two behaviorally-equivalent switch-side designs are provided:
 *
 *  - PlainSeen: the reference design. A 2W-bit circular array `seen`;
 *    each packet records its bit (Eq. 6) and clears the bit one window
 *    ahead for a future packet (Eq. 7).
 *  - CompactSeen: the memory-compact design. W bits; packet sequences
 *    are split into alternating even/odd segments of size W, and a single
 *    atomic set_bit / clr_bitc instruction per packet performs record,
 *    lookup, and future-initialization at once (Eq. 8, cases 1-4).
 *
 * Both also track max_seq to reject stale packets from before the
 * current window (the corner case of §3.3). A property test
 * (tests/ask/seen_window_test.cc) verifies the two designs agree on
 * every sequence-arrival pattern a correct sender can produce.
 *
 * HostReceiveWindow is the receiver-host dedup structure. It cannot use
 * the parity trick: packets fully aggregated at the switch never reach
 * the receiver, so the receiver observes a *subset* of sequence numbers
 * and a toggling scheme would desynchronize. Host DRAM is plentiful, so
 * it stores the last sequence seen per ring slot instead.
 */
#ifndef ASK_ASK_SEEN_WINDOW_H
#define ASK_ASK_SEEN_WINDOW_H

#include <cstdint>
#include <vector>

#include "ask/types.h"

namespace ask::core {

/** Outcome of observing one packet arrival. */
enum class SeenOutcome : std::uint8_t
{
    kFresh,      ///< first appearance: process the packet
    kDuplicate,  ///< retransmission: deduplicate
    kStale,      ///< older than the window: drop entirely
};

/**
 * Control-plane snapshot of one receive window: the automaton-extraction
 * hook the semantic model checker (src/pisa/model/) reads. The same
 * struct serves two roles — it is the canonical window encoding during
 * state-space exploration, and the fuzzer's reachability probe builds
 * one from live registers (AskSwitchProgram::extract_seen) to check the
 * observed state against the model's proved invariants.
 *
 * The plain layout covers both in-tree plain implementations: PlainSeen's
 * 2W-bit ring (slot = s mod 2W) and the switch's split seen_even/seen_odd
 * arrays are index-isomorphic, since s mod 2W = (⌊s/W⌋ mod 2)·W + s mod W
 * — the even array is slots [0, W), the odd array slots [W, 2W).
 */
struct SeenSnapshot
{
    bool compact = false;        ///< W-bit parity design vs 2W-bit plain
    std::uint32_t window = 0;    ///< W
    std::vector<std::uint8_t> bits;  ///< W (compact) or 2W (plain) bits
    Seq max_seq = 0;
    bool any = false;            ///< false only before the first observe

    /** Slot that records sequence `s` (Eq. 6 / Eq. 8). */
    std::size_t
    record_slot(Seq s) const
    {
        return compact ? s % window : s % (2 * window);
    }

    /** Slot the plain design clears one window ahead of `s` (Eq. 7).
     *  Only meaningful when !compact. */
    std::size_t
    ahead_slot(Seq s) const
    {
        return (record_slot(s) + window) % (2 * window);
    }
};

/** The reference 2W-bit receive window. */
class PlainSeen
{
  public:
    explicit PlainSeen(std::uint32_t window);

    /** Record the arrival of sequence `s` and classify it. */
    SeenOutcome observe(Seq s);

    /** Chaos model: lose all register state (a switch reboot). */
    void wipe();

    /**
     * Recovery model of AskSwitchProgram::fence_channel: given the
     * sender's next unused sequence number, re-arm the window so every
     * pre-crash sequence (< next_seq) is stale-dropped and the upcoming
     * window [next_seq, next_seq + W) reads as unseen.
     */
    void repair(Seq next_seq);

    std::uint32_t window() const { return window_; }
    /** Bits of state this design needs (for the ablation bench). */
    std::size_t state_bits() const { return bits_.size(); }

    /** Automaton-extraction hook for the model checker / probes. */
    SeenSnapshot snapshot() const;
    /** Inverse of snapshot(): control-plane state injection (used by
     *  the model checker's mutation harness to reconstruct defective
     *  fence outcomes). The snapshot's shape must match this window. */
    void restore(const SeenSnapshot& snap);

  private:
    std::uint32_t window_;
    /** One modeled 1-bit register per entry; byte-backed so observe()
     *  is a plain load/store (no vector<bool> bit masking). */
    std::vector<std::uint8_t> bits_;
    Seq max_seq_ = 0;
    bool any_ = false;
};

/** The memory-compact W-bit receive window. */
class CompactSeen
{
  public:
    explicit CompactSeen(std::uint32_t window);

    /** Record the arrival of sequence `s` and classify it. */
    SeenOutcome observe(Seq s);

    /** Chaos model: lose all register state (a switch reboot). */
    void wipe();

    /**
     * Recovery model of AskSwitchProgram::fence_channel for the compact
     * design: fence max_seq at next_seq + W - 1 and pre-set the parity
     * of the one admitted window — a wiped bit reads 0, which an odd
     * segment's clr_bitc would misread as "already observed".
     */
    void repair(Seq next_seq);

    std::uint32_t window() const { return window_; }
    std::size_t state_bits() const { return bits_.size(); }

    /** Automaton-extraction hook for the model checker / probes. */
    SeenSnapshot snapshot() const;
    /** Inverse of snapshot(): control-plane state injection (see
     *  PlainSeen::restore). */
    void restore(const SeenSnapshot& snap);

  private:
    std::uint32_t window_;
    /** Byte-backed 1-bit registers (see PlainSeen::bits_). */
    std::vector<std::uint8_t> bits_;
    Seq max_seq_ = 0;
    bool any_ = false;
};

/**
 * Receiver-host dedup window: a ring of the last sequence number seen at
 * each slot, robust to sequence gaps (see file comment).
 */
class HostReceiveWindow
{
  public:
    explicit HostReceiveWindow(std::uint32_t window);

    /** Record the arrival of sequence `s` and classify it. */
    SeenOutcome observe(Seq s);

  private:
    std::uint32_t window_;
    std::vector<std::uint64_t> last_seq_plus1_;
    Seq max_seq_ = 0;
    bool any_ = false;
};

}  // namespace ask::core

#endif  // ASK_ASK_SEEN_WINDOW_H
