#include "ask/seen_window.h"

#include <algorithm>

#include "common/logging.h"

namespace ask::core {

namespace {

/** True when `s` falls before the window (max_seq - W, max_seq]. */
bool
is_stale(Seq s, Seq max_seq, std::uint32_t window)
{
    return static_cast<std::uint64_t>(s) + window <=
           static_cast<std::uint64_t>(max_seq);
}

}  // namespace

PlainSeen::PlainSeen(std::uint32_t window)
    : window_(window), bits_(2 * static_cast<std::size_t>(window), 0)
{
    ASK_ASSERT(window > 0, "window must be positive");
}

SeenOutcome
PlainSeen::observe(Seq s)
{
    if (!any_ || s > max_seq_) {
        max_seq_ = s;
        any_ = true;
    }
    if (is_stale(s, max_seq_, window_))
        return SeenOutcome::kStale;

    std::size_t idx = s % (2 * window_);
    std::uint8_t observed = bits_[idx];
    bits_[idx] = 1;                              // Eq. (6): record appearance
    bits_[(idx + window_) % (2 * window_)] = 0;  // Eq. (7): clear ahead
    return observed != 0 ? SeenOutcome::kDuplicate : SeenOutcome::kFresh;
}

void
PlainSeen::wipe()
{
    std::fill(bits_.begin(), bits_.end(), 0);
    max_seq_ = 0;
    any_ = false;
}

void
PlainSeen::repair(Seq next_seq)
{
    // The fence: every pre-crash sequence (< next_seq) must classify
    // stale, and the whole admitted window [next_seq, next_seq + W)
    // must read unseen. For the plain design wiped bits already mean
    // "unseen", so only the boundary needs restoring.
    std::fill(bits_.begin(), bits_.end(), 0);
    max_seq_ = next_seq + window_ - 1;
    any_ = true;
}

SeenSnapshot
PlainSeen::snapshot() const
{
    SeenSnapshot snap;
    snap.compact = false;
    snap.window = window_;
    snap.bits = bits_;
    snap.max_seq = max_seq_;
    snap.any = any_;
    return snap;
}

void
PlainSeen::restore(const SeenSnapshot& snap)
{
    ASK_ASSERT(!snap.compact && snap.window == window_ &&
                   snap.bits.size() == bits_.size(),
               "snapshot shape does not match this window");
    bits_ = snap.bits;
    max_seq_ = snap.max_seq;
    any_ = snap.any;
}

CompactSeen::CompactSeen(std::uint32_t window)
    : window_(window), bits_(window, 0)
{
    ASK_ASSERT(window > 0, "window must be positive");
}

SeenOutcome
CompactSeen::observe(Seq s)
{
    if (!any_ || s > max_seq_) {
        max_seq_ = s;
        any_ = true;
    }
    if (is_stale(s, max_seq_, window_))
        return SeenOutcome::kStale;

    // Fused set_bit/clr_bitc, branch-light: an even segment (parity 0)
    // returns the previous bit and sets it — the set bit doubles as the
    // pre-cleared state ("1 == unseen") for the following odd segment
    // (cases 1-2 of §3.3). An odd segment (parity 1) returns the
    // complement and clears it — the cleared bit pre-initializes the
    // next even segment (cases 3-4). Both reduce to one XOR against the
    // segment parity and an unconditional store of its complement.
    std::uint8_t parity = (s / window_) & 1;
    std::uint8_t& bit = bits_[s % window_];
    std::uint8_t observed = bit ^ parity;
    bit = parity ^ 1;
    return observed != 0 ? SeenOutcome::kDuplicate : SeenOutcome::kFresh;
}

void
CompactSeen::wipe()
{
    std::fill(bits_.begin(), bits_.end(), 0);
    max_seq_ = 0;
    any_ = false;
}

void
CompactSeen::repair(Seq next_seq)
{
    // Mirror of AskSwitchProgram::fence_channel: a fresh packet in an
    // even segment expects bit == 0 (set_bit), in an odd segment
    // bit == 1 (clr_bitc), so the parity of the one admitted window
    // must be pre-set — a wiped 0 in an odd segment would be misread
    // as "already observed" and falsely dedup a fresh packet.
    for (std::uint64_t seq = next_seq;
         seq < static_cast<std::uint64_t>(next_seq) + window_; ++seq) {
        std::uint32_t q = static_cast<std::uint32_t>(seq / window_);
        bits_[seq % window_] = q % 2 == 1 ? 1 : 0;
    }
    max_seq_ = next_seq + window_ - 1;
    any_ = true;
}

SeenSnapshot
CompactSeen::snapshot() const
{
    SeenSnapshot snap;
    snap.compact = true;
    snap.window = window_;
    snap.bits = bits_;
    snap.max_seq = max_seq_;
    snap.any = any_;
    return snap;
}

void
CompactSeen::restore(const SeenSnapshot& snap)
{
    ASK_ASSERT(snap.compact && snap.window == window_ &&
                   snap.bits.size() == bits_.size(),
               "snapshot shape does not match this window");
    bits_ = snap.bits;
    max_seq_ = snap.max_seq;
    any_ = snap.any;
}

HostReceiveWindow::HostReceiveWindow(std::uint32_t window)
    : window_(window),
      last_seq_plus1_(2 * static_cast<std::size_t>(window), 0)
{
    ASK_ASSERT(window > 0, "window must be positive");
}

SeenOutcome
HostReceiveWindow::observe(Seq s)
{
    if (!any_ || s > max_seq_) {
        max_seq_ = s;
        any_ = true;
    }
    if (is_stale(s, max_seq_, window_))
        return SeenOutcome::kStale;

    std::uint64_t& slot = last_seq_plus1_[s % last_seq_plus1_.size()];
    if (slot == static_cast<std::uint64_t>(s) + 1)
        return SeenOutcome::kDuplicate;
    slot = static_cast<std::uint64_t>(s) + 1;
    return SeenOutcome::kFresh;
}

}  // namespace ask::core
