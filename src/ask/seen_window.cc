#include "ask/seen_window.h"

#include <algorithm>

#include "common/logging.h"

namespace ask::core {

namespace {

/** True when `s` falls before the window (max_seq - W, max_seq]. */
bool
is_stale(Seq s, Seq max_seq, std::uint32_t window)
{
    return static_cast<std::uint64_t>(s) + window <=
           static_cast<std::uint64_t>(max_seq);
}

}  // namespace

PlainSeen::PlainSeen(std::uint32_t window)
    : window_(window), bits_(2 * static_cast<std::size_t>(window), false)
{
    ASK_ASSERT(window > 0, "window must be positive");
}

SeenOutcome
PlainSeen::observe(Seq s)
{
    if (!any_ || s > max_seq_) {
        max_seq_ = s;
        any_ = true;
    }
    if (is_stale(s, max_seq_, window_))
        return SeenOutcome::kStale;

    std::size_t idx = s % (2 * window_);
    bool observed = bits_[idx];
    bits_[idx] = true;                          // Eq. (6): record appearance
    bits_[(idx + window_) % (2 * window_)] = false;  // Eq. (7): clear ahead
    return observed ? SeenOutcome::kDuplicate : SeenOutcome::kFresh;
}

void
PlainSeen::wipe()
{
    std::fill(bits_.begin(), bits_.end(), false);
    max_seq_ = 0;
    any_ = false;
}

void
PlainSeen::repair(Seq next_seq)
{
    // The fence: every pre-crash sequence (< next_seq) must classify
    // stale, and the whole admitted window [next_seq, next_seq + W)
    // must read unseen. For the plain design wiped bits already mean
    // "unseen", so only the boundary needs restoring.
    std::fill(bits_.begin(), bits_.end(), false);
    max_seq_ = next_seq + window_ - 1;
    any_ = true;
}

CompactSeen::CompactSeen(std::uint32_t window)
    : window_(window), bits_(window, false)
{
    ASK_ASSERT(window > 0, "window must be positive");
}

SeenOutcome
CompactSeen::observe(Seq s)
{
    if (!any_ || s > max_seq_) {
        max_seq_ = s;
        any_ = true;
    }
    if (is_stale(s, max_seq_, window_))
        return SeenOutcome::kStale;

    std::uint32_t q = s / window_;  // segment number
    std::uint32_t r = s % window_;  // offset within the segment
    bool observed;
    if (q % 2 == 0) {
        // Even segment: set_bit(b) — returns the previous value, sets the
        // bit. A set bit doubles as the pre-cleared state ("1 == unseen")
        // for the following odd segment (cases 1-2 of §3.3).
        observed = bits_[r];
        bits_[r] = true;
    } else {
        // Odd segment: clr_bitc(b) — returns the complement of the
        // previous value, clears the bit; the cleared bit is the
        // pre-initialized state for the next even segment (cases 3-4).
        observed = !bits_[r];
        bits_[r] = false;
    }
    return observed ? SeenOutcome::kDuplicate : SeenOutcome::kFresh;
}

void
CompactSeen::wipe()
{
    std::fill(bits_.begin(), bits_.end(), false);
    max_seq_ = 0;
    any_ = false;
}

void
CompactSeen::repair(Seq next_seq)
{
    // Mirror of AskSwitchProgram::fence_channel: a fresh packet in an
    // even segment expects bit == 0 (set_bit), in an odd segment
    // bit == 1 (clr_bitc), so the parity of the one admitted window
    // must be pre-set — a wiped 0 in an odd segment would be misread
    // as "already observed" and falsely dedup a fresh packet.
    for (std::uint64_t seq = next_seq;
         seq < static_cast<std::uint64_t>(next_seq) + window_; ++seq) {
        std::uint32_t q = static_cast<std::uint32_t>(seq / window_);
        bits_[seq % window_] = q % 2 == 1;
    }
    max_seq_ = next_seq + window_ - 1;
    any_ = true;
}

HostReceiveWindow::HostReceiveWindow(std::uint32_t window)
    : window_(window),
      last_seq_plus1_(2 * static_cast<std::size_t>(window), 0)
{
    ASK_ASSERT(window > 0, "window must be positive");
}

SeenOutcome
HostReceiveWindow::observe(Seq s)
{
    if (!any_ || s > max_seq_) {
        max_seq_ = s;
        any_ = true;
    }
    if (is_stale(s, max_seq_, window_))
        return SeenOutcome::kStale;

    std::uint64_t& slot = last_seq_plus1_[s % last_seq_plus1_.size()];
    if (slot == static_cast<std::uint64_t>(s) + 1)
        return SeenOutcome::kDuplicate;
    slot = static_cast<std::uint64_t>(s) + 1;
    return SeenOutcome::kFresh;
}

}  // namespace ask::core
