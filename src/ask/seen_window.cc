#include "ask/seen_window.h"

#include "common/logging.h"

namespace ask::core {

namespace {

/** True when `s` falls before the window (max_seq - W, max_seq]. */
bool
is_stale(Seq s, Seq max_seq, std::uint32_t window)
{
    return static_cast<std::uint64_t>(s) + window <=
           static_cast<std::uint64_t>(max_seq);
}

}  // namespace

PlainSeen::PlainSeen(std::uint32_t window)
    : window_(window), bits_(2 * static_cast<std::size_t>(window), false)
{
    ASK_ASSERT(window > 0, "window must be positive");
}

SeenOutcome
PlainSeen::observe(Seq s)
{
    if (!any_ || s > max_seq_) {
        max_seq_ = s;
        any_ = true;
    }
    if (is_stale(s, max_seq_, window_))
        return SeenOutcome::kStale;

    std::size_t idx = s % (2 * window_);
    bool observed = bits_[idx];
    bits_[idx] = true;                          // Eq. (6): record appearance
    bits_[(idx + window_) % (2 * window_)] = false;  // Eq. (7): clear ahead
    return observed ? SeenOutcome::kDuplicate : SeenOutcome::kFresh;
}

CompactSeen::CompactSeen(std::uint32_t window)
    : window_(window), bits_(window, false)
{
    ASK_ASSERT(window > 0, "window must be positive");
}

SeenOutcome
CompactSeen::observe(Seq s)
{
    if (!any_ || s > max_seq_) {
        max_seq_ = s;
        any_ = true;
    }
    if (is_stale(s, max_seq_, window_))
        return SeenOutcome::kStale;

    std::uint32_t q = s / window_;  // segment number
    std::uint32_t r = s % window_;  // offset within the segment
    bool observed;
    if (q % 2 == 0) {
        // Even segment: set_bit(b) — returns the previous value, sets the
        // bit. A set bit doubles as the pre-cleared state ("1 == unseen")
        // for the following odd segment (cases 1-2 of §3.3).
        observed = bits_[r];
        bits_[r] = true;
    } else {
        // Odd segment: clr_bitc(b) — returns the complement of the
        // previous value, clears the bit; the cleared bit is the
        // pre-initialized state for the next even segment (cases 3-4).
        observed = !bits_[r];
        bits_[r] = false;
    }
    return observed ? SeenOutcome::kDuplicate : SeenOutcome::kFresh;
}

HostReceiveWindow::HostReceiveWindow(std::uint32_t window)
    : window_(window),
      last_seq_plus1_(2 * static_cast<std::size_t>(window), 0)
{
    ASK_ASSERT(window > 0, "window must be positive");
}

SeenOutcome
HostReceiveWindow::observe(Seq s)
{
    if (!any_ || s > max_seq_) {
        max_seq_ = s;
        any_ = true;
    }
    if (is_stale(s, max_seq_, window_))
        return SeenOutcome::kStale;

    std::uint64_t& slot = last_seq_plus1_[s % last_seq_plus1_.size()];
    if (slot == static_cast<std::uint64_t>(s) + 1)
        return SeenOutcome::kDuplicate;
    slot = static_cast<std::uint64_t>(s) + 1;
    return SeenOutcome::kFresh;
}

}  // namespace ask::core
