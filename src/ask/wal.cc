#include "ask/wal.h"

#include <algorithm>
#include <cstdlib>
#include <string_view>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"

namespace ask::core {

namespace {

/** Frame header: payload length + folded payload-hash check word. */
constexpr std::size_t kFrameHeader = 8;

void
put_u32(std::string& out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void
put_u64(std::string& out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

/** Bounds-checked little-endian reader over a payload slice. */
class Reader
{
  public:
    explicit Reader(std::string_view bytes) : bytes_(bytes) {}

    bool
    u8(std::uint8_t& v)
    {
        if (off_ + 1 > bytes_.size())
            return false;
        v = static_cast<std::uint8_t>(bytes_[off_++]);
        return true;
    }

    bool
    u32(std::uint32_t& v)
    {
        if (off_ + 4 > bytes_.size())
            return false;
        v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(bytes_[off_ + i]))
                 << (8 * i);
        off_ += 4;
        return true;
    }

    bool
    u64(std::uint64_t& v)
    {
        if (off_ + 8 > bytes_.size())
            return false;
        v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(bytes_[off_ + i]))
                 << (8 * i);
        off_ += 8;
        return true;
    }

    bool
    str(std::string& v, std::size_t n)
    {
        if (off_ + n > bytes_.size())
            return false;
        v.assign(bytes_.substr(off_, n));
        off_ += n;
        return true;
    }

    bool done() const { return off_ == bytes_.size(); }

  private:
    std::string_view bytes_;
    std::size_t off_ = 0;
};

std::string
encode_record(const WalRecord& r)
{
    std::string payload;
    payload.push_back(static_cast<char>(r.kind));
    put_u32(payload, r.task);
    put_u32(payload, r.channel);
    put_u32(payload, r.seq);
    put_u32(payload, r.arg0);
    put_u32(payload, r.arg1);
    put_u32(payload, r.arg2);
    put_u32(payload, static_cast<std::uint32_t>(r.kvs.size()));
    for (const auto& [key, value] : r.kvs) {
        put_u32(payload, static_cast<std::uint32_t>(key.size()));
        payload.append(key);
        put_u64(payload, value);
    }
    return payload;
}

bool
decode_record(std::string_view payload, WalRecord& out)
{
    Reader rd(payload);
    std::uint8_t kind = 0;
    std::uint32_t nkvs = 0;
    if (!rd.u8(kind) || !rd.u32(out.task) || !rd.u32(out.channel) ||
        !rd.u32(out.seq) || !rd.u32(out.arg0) || !rd.u32(out.arg1) ||
        !rd.u32(out.arg2) || !rd.u32(nkvs)) {
        return false;
    }
    if (kind < static_cast<std::uint8_t>(WalRecordKind::kAlloc) ||
        kind > static_cast<std::uint8_t>(WalRecordKind::kHostRecovered)) {
        return false;
    }
    out.kind = static_cast<WalRecordKind>(kind);
    out.kvs.clear();
    out.kvs.reserve(nkvs);
    for (std::uint32_t i = 0; i < nkvs; ++i) {
        std::uint32_t klen = 0;
        std::string key;
        std::uint64_t value = 0;
        if (!rd.u32(klen) || !rd.str(key, klen) || !rd.u64(value))
            return false;
        out.kvs.emplace_back(std::move(key), value);
    }
    return rd.done();
}

/** A named scalar in a record's kvs (0 when absent). */
std::uint64_t
kv_scalar(const WalRecord& r, std::string_view name)
{
    for (const auto& [key, value] : r.kvs)
        if (key == name)
            return value;
    return 0;
}

/** Like kv_scalar, but distinguishes "absent" from an explicit 0 —
 *  needed for fields (like the ReduceOp id, where 0 == kAdd) whose
 *  absence means "pre-upgrade log, use the caller's default". */
std::uint64_t
kv_scalar_or(const WalRecord& r, std::string_view name,
             std::uint64_t fallback)
{
    for (const auto& [key, value] : r.kvs)
        if (key == name)
            return value;
    return fallback;
}

}  // namespace

const char*
wal_record_kind_name(WalRecordKind kind)
{
    switch (kind) {
      case WalRecordKind::kAlloc:
        return "alloc";
      case WalRecordKind::kRelease:
        return "release";
      case WalRecordKind::kSendSubmit:
        return "send-submit";
      case WalRecordKind::kSendForget:
        return "send-forget";
      case WalRecordKind::kSeqCheckpoint:
        return "seq-checkpoint";
      case WalRecordKind::kRxTaskStart:
        return "rx-task-start";
      case WalRecordKind::kRxData:
        return "rx-data";
      case WalRecordKind::kRxFin:
        return "rx-fin";
      case WalRecordKind::kRxSwapCommit:
        return "rx-swap-commit";
      case WalRecordKind::kRxReset:
        return "rx-reset";
      case WalRecordKind::kRxTaskDone:
        return "rx-task-done";
      case WalRecordKind::kHostRecovered:
        return "host-recovered";
    }
    return "unknown";
}

Wal::Wal(std::string name) : name_(std::move(name))
{
    const char* p = std::getenv("ASK_WAL_PARANOID");
    paranoid_ = p != nullptr && *p != '\0' && *p != '0';
}

void
Wal::append(const WalRecord& record)
{
    std::string payload = encode_record(record);
    std::uint64_t h = fnv1a64(payload);
    put_u32(bytes_, static_cast<std::uint32_t>(payload.size()));
    put_u32(bytes_, static_cast<std::uint32_t>(mix64(h)));
    bytes_.append(payload);
    record_hashes_.push_back(h);
    digest_ = mix64(digest_ ^ h);
    if (append_counter_ != nullptr)
        ++*append_counter_;
    if (paranoid_)
        ASK_ASSERT(verify(), "WAL ", name_, " failed paranoid verify after ",
                   wal_record_kind_name(record.kind));
}

std::vector<WalRecord>
Wal::replay(WalReplayStatus* status) const
{
    WalReplayStatus local;
    WalReplayStatus& st = status != nullptr ? *status : local;
    st = WalReplayStatus{};
    std::vector<WalRecord> records;

    std::size_t off = 0;
    auto corrupt_at = [&](const char* what) {
        st.corrupt = true;
        if (status == nullptr)
            fail_state("WAL ", name_, ": corrupt record at byte ", off, " (",
                       what, ")");
    };

    while (off < bytes_.size()) {
        if (off + kFrameHeader > bytes_.size()) {
            st.torn_tail = true;  // crash mid-header
            break;
        }
        Reader hdr(std::string_view(bytes_).substr(off, kFrameHeader));
        std::uint32_t len = 0;
        std::uint32_t check = 0;
        hdr.u32(len);
        hdr.u32(check);
        if (off + kFrameHeader + len > bytes_.size()) {
            st.torn_tail = true;  // crash mid-payload
            break;
        }
        std::string_view payload =
            std::string_view(bytes_).substr(off + kFrameHeader, len);
        std::uint64_t h = fnv1a64(payload);
        std::size_t index = records.size();
        if (static_cast<std::uint32_t>(mix64(h)) != check ||
            index >= record_hashes_.size() || h != record_hashes_[index]) {
            corrupt_at("log-segment hash mismatch");
            break;
        }
        WalRecord r;
        if (!decode_record(payload, r)) {
            corrupt_at("malformed payload");
            break;
        }
        records.push_back(std::move(r));
        off += kFrameHeader + len;
        st.valid_bytes = off;
    }

    st.records = records.size();
    // A truncation that happens to land on a frame boundary still shows
    // up: the verified records are a proper prefix of the segment list.
    if (!st.corrupt && st.records < record_hashes_.size())
        st.torn_tail = true;
    return records;
}

bool
Wal::verify() const
{
    WalReplayStatus st;
    std::vector<WalRecord> records = replay(&st);
    if (st.corrupt || st.torn_tail || st.records != record_hashes_.size())
        return false;
    std::uint64_t root = 0;
    for (const WalRecord& r : records)
        root = mix64(root ^ fnv1a64(encode_record(r)));
    return root == digest_;
}

void
Wal::clear()
{
    bytes_.clear();
    record_hashes_.clear();
    digest_ = 0;
}

obs::Json
Wal::describe() const
{
    obs::Json d = obs::Json::object();
    d.set("name", name_);
    d.set("records", static_cast<std::uint64_t>(record_hashes_.size()));
    d.set("size_bytes", static_cast<std::uint64_t>(bytes_.size()));
    d.set("digest", std::to_string(digest_));
    WalReplayStatus st;
    std::vector<WalRecord> records = replay(&st);
    d.set("torn_tail", st.torn_tail);
    d.set("corrupt", st.corrupt);
    obs::Json list = obs::Json::array();
    for (const WalRecord& r : records) {
        obs::Json rj = obs::Json::object();
        rj.set("kind", wal_record_kind_name(r.kind));
        rj.set("task", r.task);
        rj.set("channel", r.channel);
        rj.set("seq", r.seq);
        rj.set("arg0", r.arg0);
        rj.set("arg1", r.arg1);
        rj.set("arg2", r.arg2);
        rj.set("kvs", static_cast<std::uint64_t>(r.kvs.size()));
        list.push_back(std::move(rj));
    }
    d.set("log", std::move(list));
    return d;
}

void
Wal::truncate_tail(std::size_t n)
{
    bytes_.resize(bytes_.size() - std::min(n, bytes_.size()));
}

void
Wal::flip_byte(std::size_t offset)
{
    ASK_ASSERT(offset < bytes_.size(), "flip_byte past WAL end");
    bytes_[offset] = static_cast<char>(bytes_[offset] ^ 0x40);
}

Wal&
WalStore::wal(const std::string& name)
{
    auto it = wals_.find(name);
    if (it == wals_.end())
        it = wals_.emplace(name, Wal(name)).first;
    return it->second;
}

Wal&
WalStore::host_wal(std::uint32_t host)
{
    return wal("host" + std::to_string(host));
}

Wal&
WalStore::controller_wal()
{
    return wal("controller");
}

obs::Json
WalStore::describe() const
{
    obs::Json d = obs::Json::object();
    for (const auto& [name, w] : wals_)
        d.set(name, w.describe());
    return d;
}

WalDaemonState
rebuild_daemon_state(const std::vector<WalRecord>& records,
                     ReduceOp default_op)
{
    WalDaemonState state;
    std::map<TaskId, std::uint32_t> resets;

    for (const WalRecord& r : records) {
        switch (r.kind) {
          case WalRecordKind::kRxTaskStart: {
            WalRxTaskState& t = state.rx_tasks[r.task];
            t = WalRxTaskState{};
            t.expected_senders = r.arg0;
            t.swaps_disabled = r.arg1 != 0;
            t.op = static_cast<ReduceOp>(kv_scalar_or(
                r, "op", static_cast<std::uint64_t>(default_op)));
            t.liveness_ns = kv_scalar(r, "liveness_ns");
            t.start_time = kv_scalar(r, "start_time");
            resets[r.task] = 0;
            break;
          }
          case WalRecordKind::kRxData: {
            auto it = state.rx_tasks.find(r.task);
            if (it == state.rx_tasks.end())
                break;
            WalRxTaskState& t = it->second;
            t.observed.emplace_back(r.channel, r.seq);
            // Combine-only: journaled tuples were lifted at the sender.
            for (const auto& [key, value] : r.kvs) {
                accumulate(t.local, key, value, t.op);
                ++t.tuples_aggregated_locally;
            }
            ++t.packets_received;
            break;
          }
          case WalRecordKind::kRxFin: {
            auto it = state.rx_tasks.find(r.task);
            if (it != state.rx_tasks.end())
                it->second.fins.insert(r.channel);
            break;
          }
          case WalRecordKind::kRxSwapCommit: {
            auto it = state.rx_tasks.find(r.task);
            if (it == state.rx_tasks.end())
                break;
            WalRxTaskState& t = it->second;
            // Fetched registers are lifted partials: combine only.
            for (const auto& [key, value] : r.kvs) {
                accumulate(t.local, key, value, t.op);
                ++t.tuples_fetched_from_switch;
            }
            t.committed_epoch = r.seq;
            ++t.swaps;
            break;
          }
          case WalRecordKind::kRxReset: {
            auto it = state.rx_tasks.find(r.task);
            if (it == state.rx_tasks.end())
                break;
            WalRxTaskState& t = it->second;
            // A reset wipes the partial aggregate and progress counters
            // for a full replay but keeps the observed seqs: the seen
            // windows survive a reboot-replay on the live daemon too.
            t.local.clear();
            t.fins.clear();
            t.committed_epoch = 0;
            t.tuples_aggregated_locally = 0;
            t.tuples_fetched_from_switch = 0;
            t.packets_received = 0;
            t.swaps = 0;
            t.restart_drain_until = kv_scalar(r, "drain_until");
            ++resets[r.task];
            break;
          }
          case WalRecordKind::kRxTaskDone:
            state.rx_tasks.erase(r.task);
            resets.erase(r.task);
            break;
          case WalRecordKind::kSendSubmit: {
            // A task may receive several submits from one host; the
            // rebuilt cursor is their concatenation (aggregation is
            // insensitive to the packetization boundary).
            WalSendState& s = state.sends[r.task];
            s.receiver = r.arg0;
            s.op = static_cast<ReduceOp>(r.arg1);
            s.stream.reserve(s.stream.size() + r.kvs.size());
            for (const auto& [key, value] : r.kvs)
                s.stream.push_back({key, static_cast<Value>(value)});
            break;
          }
          case WalRecordKind::kSendForget:
            state.sends.erase(r.task);
            break;
          case WalRecordKind::kSeqCheckpoint: {
            Seq& cur = state.resume_seq[r.channel];
            cur = std::max(cur, r.seq);
            break;
          }
          case WalRecordKind::kHostRecovered:
            ++state.recoveries;
            break;
          case WalRecordKind::kAlloc:
          case WalRecordKind::kRelease:
            break;  // controller journal records; not daemon state
        }
    }

    // Fence stale callbacks: any generation the pre-crash process could
    // have handed out is at most 1 (start) + resets + recoveries-so-far,
    // so the rebuilt generation overshoots it by construction.
    for (auto& [task, t] : state.rx_tasks)
        t.generation = 2 + resets[task] + state.recoveries;
    return state;
}

}  // namespace ask::core
