/**
 * @file
 * Configuration of the ASK service and the derived data-plane layout.
 */
#ifndef ASK_ASK_CONFIG_H
#define ASK_ASK_CONFIG_H

#include <cstdint>

#include "ask/types.h"
#include "common/units.h"

namespace ask::core {

/**
 * All ASK tunables. Defaults follow the paper's implementation (§4):
 * 32 AAs of 32768 aggregators per pipeline, 64-bit aggregators
 * (32-bit kPart + 32-bit vPart), window W = 256, 4 data channels per
 * host, medium-key groups with m = 2 segments and k = 8 groups, shadow
 * copies enabled.
 */
struct AskConfig
{
    // ---- Switch memory layout -------------------------------------------
    /** Number of aggregator arrays == tuple slots per packet. */
    std::uint32_t num_aas = 32;
    /** Registers per AA, including both shadow copies when enabled. */
    std::uint32_t aggregators_per_aa = 32768;
    /** kPart/vPart width in bits (an aggregator is 2n bits wide). */
    std::uint32_t part_bits = 32;
    /** Enable the hot-key-agnostic shadow-copy mechanism (§3.4). */
    bool shadow_copies = true;

    // ---- Variable-length keys (§3.2.3) ----------------------------------
    /** Segments per medium-key group (m): a group of m physically
     *  adjacent AAs stores one medium key. */
    std::uint32_t medium_segments = 2;
    /** Number of medium-key groups (k). k*m AAs are dedicated to medium
     *  keys; the remaining num_aas - k*m serve short keys. */
    std::uint32_t medium_groups = 8;

    // ---- Reliability (§3.3) ---------------------------------------------
    /** Maximum sliding-window size per data channel, in packets. */
    std::uint32_t window = 256;
    /** Retransmission timeout (paper: 100 us fine-grained timeout). */
    Nanoseconds retransmit_timeout_ns = 100 * units::kMicrosecond;
    /** Use the memory-compact W-bit `seen` (true) or the reference
     *  2W-bit variant (false); behaviorally equivalent (§3.3). */
    bool compact_seen = true;

    // ---- Hosts -----------------------------------------------------------
    /** Data channels per host daemon (paper default: 4). */
    std::uint32_t channels_per_host = 4;
    /** Maximum hosts the switch provisions reliability state for. */
    std::uint32_t max_hosts = 64;
    /** Maximum concurrent aggregation tasks (swap-epoch slots). */
    std::uint32_t max_tasks = 64;

    // ---- Hot-key prioritization (§3.4) ------------------------------------
    /** Receiver swaps shadow copies after this many received packets;
     *  0 disables periodic swapping (copies still split if enabled). */
    std::uint64_t swap_threshold_packets = 4096;

    /** Max LONG_DATA payload bytes per packet (long keys bypass the
     *  switch, so they are not bound to the slot layout). */
    std::uint32_t long_payload_bytes = 1024;

    // ---- Failure handling and degraded mode -------------------------------
    /** FIN (re)transmissions before the sender gives up on a task and
     *  reports it failed instead of retrying forever. */
    std::uint32_t max_fin_tries = 1000;
    /**
     * Retransmission budget per data packet. A DATA packet exhausting it
     * means the switch aggregation path is persistently unresponsive:
     * the daemon degrades to host-side aggregation, re-routing every
     * remaining tuple through the long-key bypass path (slower, still
     * exact). A bypass packet exhausting it means even plain forwarding
     * is dead, and the send job fails. 0 disables the budget.
     */
    std::uint32_t max_data_tries = 25;
    /** SWAP retransmissions before the receiver stops shadow-copy
     *  swapping for the task (results stay exact: the final fetch drains
     *  both copies). */
    std::uint32_t max_swap_tries = 12;
    /**
     * Receiver-side sender-liveness timeout: a receive task that has not
     * heard from its senders for this long fails with an error instead
     * of waiting forever for FINs that will never come. 0 disables.
     */
    Nanoseconds sender_liveness_timeout_ns = 0;
    /**
     * Quiet period after a switch-reboot recovery during which the
     * receiver drops traffic of restarting tasks: packets forwarded
     * before the crash must drain from the fabric before the replay
     * starts, or they would be double-counted.
     */
    Nanoseconds recovery_drain_ns = 400 * units::kMicrosecond;
    /** Management RPC attempts before giving up (outage windows). */
    std::uint32_t mgmt_max_tries = 10;
    /** First management-RPC retry backoff; doubles per retry. */
    Nanoseconds mgmt_backoff_base_ns = 50 * units::kMicrosecond;
    /** Upper bound on the management-RPC retry backoff. */
    Nanoseconds mgmt_backoff_cap_ns = 2 * units::kMillisecond;

    // ---- Semantics ---------------------------------------------------------
    /** Default reduction operator; a task may override it per-task via
     *  TaskOptions::op. kFloat requires part_bits == 32. */
    ReduceOp op = ReduceOp::kAdd;
    /** Fractional bits of the kFloat fixed-point encoding (Q-format
     *  two's complement, see float_encode()). Must be 1..31. */
    std::uint32_t float_frac_bits = 16;

    // ---- Derived quantities ------------------------------------------------
    /** Bytes of one payload slot: key segment + value. */
    std::uint32_t slot_bytes() const { return part_bits / 8 * 2; }
    /** Key-segment bytes (n bits). */
    std::uint32_t seg_bytes() const { return part_bits / 8; }
    /** Fixed data payload size of a DATA packet. */
    std::uint32_t payload_bytes() const { return num_aas * slot_bytes(); }
    /** AAs dedicated to medium keys. */
    std::uint32_t medium_aas() const { return medium_segments * medium_groups; }
    /** AAs serving short keys. */
    std::uint32_t short_aas() const { return num_aas - medium_aas(); }
    /** First AA index of medium group g. */
    std::uint32_t medium_base(std::uint32_t g) const
    {
        return short_aas() + g * medium_segments;
    }
    /** Aggregators per shadow copy within one AA. */
    std::uint32_t copy_size() const
    {
        return shadow_copies ? aggregators_per_aa / 2 : aggregators_per_aa;
    }
    /** Longest key (bytes) a medium group can host (n*m). */
    std::uint32_t max_medium_key_bytes() const
    {
        return seg_bytes() * medium_segments;
    }
    /** Total data-channel slots the switch provisions. */
    std::uint32_t max_channels() const { return max_hosts * channels_per_host; }

    /** Throws ask::ConfigError if the configuration is inconsistent. */
    void validate() const;
};

}  // namespace ask::core

#endif  // ASK_ASK_CONFIG_H
