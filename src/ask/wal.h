/**
 * @file
 * Host-side write-ahead logging for crash durability.
 *
 * The paper's reliability story covers packet loss (seq windows +
 * retransmission) and switch-memory loss (reboot recovery + replay),
 * but a crashed *host* was fatal: partial aggregates, per-channel seq
 * fences, and the controller's allocation journal lived only in
 * memory. This file adds the missing layer — a deterministic,
 * simulated-time write-ahead log each host process appends to *before*
 * acting, so a restart can rebuild exactly the state the log claims.
 *
 * Records are framed `[u32 len][u32 check][payload]` (little-endian)
 * over an in-memory byte image, mirroring an appended file. Integrity
 * is merkle-style: every record payload is hashed (fnv1a64) into a
 * log-segment hash list, and the root digest folds those hashes in
 * order. Replay distinguishes the two corruption classes a real log
 * sees:
 *
 *  - a *torn tail* — the crash landed mid-append, so the byte image is
 *    a proper prefix of what the segment list describes. Tolerated:
 *    the parsed records verify element-wise against a prefix of the
 *    hash list, and recovery proceeds from the last durable record.
 *  - a *corrupt record* — bytes inside a framed record changed. The
 *    payload hash no longer matches its log segment; replay reports
 *    (or throws) a typed StateError and recovery aborts the host's
 *    tasks rather than rebuilding silently-wrong state.
 *
 * rebuild_daemon_state() is the pure fold from a record sequence to
 * the daemon-visible state (partial aggregates, fin sets, observed
 * seqs, replay cursors, seq checkpoints). Keeping it pure makes the
 * recovery-idempotence property directly testable: folding the same
 * log twice must produce operator==-identical state.
 */
#ifndef ASK_ASK_WAL_H
#define ASK_ASK_WAL_H

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "ask/types.h"
#include "obs/json.h"

namespace ask::core {

/** What one WAL record describes. Values are part of the on-log
 *  encoding; append only. */
enum class WalRecordKind : std::uint8_t
{
    /** Controller: region allocated. task; arg0 = base, arg1 = len,
     *  arg2 = 1 if the task claimed the epoch slot. */
    kAlloc = 1,
    /** Controller: region released (task completed or aborted). */
    kRelease = 2,
    /** Sender: stream accepted for transmission. task; arg0 = receiver
     *  host, arg1 = ReduceOp id; kvs = the stream, already lifted
     *  (replay cursor source — a replay must not lift again). */
    kSendSubmit = 3,
    /** Sender: archived stream dropped (receiver finished the task). */
    kSendForget = 4,
    /** Sender: all seqs below `seq` on `channel` are or may be in
     *  use; a restarted channel must resume at `seq`. */
    kSeqCheckpoint = 5,
    /** Receiver: task accepted. arg0 = expected senders, arg1 = 1 if
     *  swaps disabled; kvs carry liveness_ns / start_time / op (the
     *  ReduceOp id; absent in pre-op logs, meaning kAdd). */
    kRxTaskStart = 6,
    /** Receiver: fresh DATA packet consumed. channel + seq locate the
     *  seen-window slot; kvs = the decoded tuples it contributed. */
    kRxData = 7,
    /** Receiver: FIN consumed from `channel`. */
    kRxFin = 8,
    /** Receiver: shadow-copy swap committed. seq = new epoch; kvs =
     *  the aggregates fetched and merged from the retired copy. */
    kRxSwapCommit = 9,
    /** Receiver: task state reset for a post-reboot replay. kvs carry
     *  the drain deadline. Observed seqs intentionally survive. */
    kRxReset = 10,
    /** Receiver: task finished (delivered or failed). arg0 = the
     *  TaskStatus delivered to the tenant. */
    kRxTaskDone = 11,
    /** Host completed a crash recovery (generation fencing marker). */
    kHostRecovered = 12,
};

/** Human-readable record-kind name (logs, WAL inspection). */
const char* wal_record_kind_name(WalRecordKind kind);

/** One WAL record. Fixed scalar fields cover the common cases; kvs is
 *  the variable-length payload (tuples, fetched aggregates, named
 *  scalars) — a (key, u64 value) list like everything else in ASK. */
struct WalRecord
{
    WalRecordKind kind = WalRecordKind::kAlloc;
    TaskId task = 0;
    std::uint32_t channel = 0;
    Seq seq = 0;
    std::uint32_t arg0 = 0;
    std::uint32_t arg1 = 0;
    std::uint32_t arg2 = 0;
    std::vector<std::pair<std::string, std::uint64_t>> kvs;

    bool operator==(const WalRecord&) const = default;
};

/** Outcome of a replay() pass over the byte image. */
struct WalReplayStatus
{
    /** Records successfully parsed and hash-verified. */
    std::size_t records = 0;
    /** The image ends mid-record (crash during append). Tolerated. */
    bool torn_tail = false;
    /** A framed record's bytes do not match its log-segment hash, or a
     *  frame is malformed. Recovery must not trust this log. */
    bool corrupt = false;
    /** Bytes covered by verified records. */
    std::size_t valid_bytes = 0;
};

/**
 * One host's write-ahead log: an append-only byte image plus the
 * log-segment hash list and root digest appended in lock-step.
 *
 * The byte image models the durable medium; the hash list and digest
 * model the (tiny) separately-durable integrity metadata a real
 * deployment would replicate out-of-band. Fault-injection helpers
 * mutate only the byte image, exactly like media corruption.
 */
class Wal
{
  public:
    explicit Wal(std::string name);

    const std::string& name() const { return name_; }

    /** Append one record: frame + payload into the byte image, payload
     *  hash onto the segment list, hash folded into the root digest. */
    void append(const WalRecord& record);

    /** Records appended (== log segments). */
    std::size_t records() const { return record_hashes_.size(); }

    /** Root digest: ordered fold of the segment hashes. */
    std::uint64_t digest() const { return digest_; }

    /** The per-record log-segment hashes, in append order. */
    const std::vector<std::uint64_t>&
    segment_hashes() const
    {
        return record_hashes_;
    }

    /**
     * Parse and hash-verify the byte image against the segment list.
     * A torn tail yields the verified prefix with status->torn_tail
     * set. Corruption either sets status->corrupt (when `status` is
     * non-null; the verified prefix before the damage is returned) or
     * throws StateError (when `status` is null).
     */
    std::vector<WalRecord> replay(WalReplayStatus* status = nullptr) const;

    /** Full integrity check: replay cleanly covers every segment and
     *  the recomputed root matches digest(). */
    bool verify() const;

    /** Drop everything (a released journal; not a crash). */
    void clear();

    /** Structured inspection document (operations runbook: dump a
     *  host's WAL to see what recovery will rebuild). */
    obs::Json describe() const;

    /** Size of the byte image. */
    std::size_t size_bytes() const { return bytes_.size(); }

    /** Route append counting into an external stats counter. */
    void set_append_counter(std::uint64_t* counter)
    {
        append_counter_ = counter;
    }

    // ---- fault injection (tests) -------------------------------------------
    /** Drop the last `n` bytes of the image: a torn tail. */
    void truncate_tail(std::size_t n);
    /** Flip one byte of the image: media corruption. */
    void flip_byte(std::size_t offset);

  private:
    std::string name_;
    std::string bytes_;
    std::vector<std::uint64_t> record_hashes_;
    std::uint64_t digest_ = 0;
    std::uint64_t* append_counter_ = nullptr;
    /** ASK_WAL_PARANOID=1: re-verify the whole log on every append. */
    bool paranoid_ = false;
};

/**
 * The cluster's stable storage: one named Wal per host process
 * ("controller", "host0", ...). Owned by the cluster, *not* by the
 * components — a crash wipes a component's memory but never its WAL.
 */
class WalStore
{
  public:
    /** Get or create the log named `name`. References stay valid for
     *  the store's lifetime. */
    Wal& wal(const std::string& name);

    /** The log for host daemon `host`. */
    Wal& host_wal(std::uint32_t host);

    /** The controller's allocation journal log. */
    Wal& controller_wal();

    obs::Json describe() const;

  private:
    std::map<std::string, Wal> wals_;
};

// ---- pure state rebuild ----------------------------------------------------

/** Rebuilt receiver-task state (one live ReceiveTask's durable core). */
struct WalRxTaskState
{
    std::uint32_t expected_senders = 0;
    bool swaps_disabled = false;
    /** The task's reduction operator; folds below combine with it. */
    ReduceOp op = ReduceOp::kAdd;
    /** Bit-cast of the task's liveness timeout (ns, -1 = disabled). */
    std::uint64_t liveness_ns = static_cast<std::uint64_t>(-1);
    std::uint64_t start_time = 0;
    /** Generation strictly above any the pre-crash process handed out
     *  (fences stale in-flight callbacks). */
    std::uint32_t generation = 2;
    /** Last kRxReset drain deadline (0 = none since start/reset). */
    std::uint64_t restart_drain_until = 0;
    AggregateMap local;
    std::set<std::uint32_t> fins;
    /** (channel global id, seq) of every fresh packet consumed, in
     *  order — replayed into the seen windows so duplicates stay
     *  duplicates after recovery. Survives kRxReset by design. */
    std::vector<std::pair<std::uint32_t, Seq>> observed;
    std::uint32_t committed_epoch = 0;
    std::uint64_t tuples_aggregated_locally = 0;
    std::uint64_t tuples_fetched_from_switch = 0;
    std::uint64_t packets_received = 0;
    std::uint32_t swaps = 0;

    bool operator==(const WalRxTaskState&) const = default;
};

/** Rebuilt archived-send state (replay cursor for one task). */
struct WalSendState
{
    std::uint32_t receiver = 0;
    /** Operator the stream was submitted under (stamped into frames). */
    ReduceOp op = ReduceOp::kAdd;
    /** Already lifted at submit_send; replay re-sends verbatim. */
    KvStream stream;

    bool operator==(const WalSendState&) const = default;
};

/** Everything a daemon restart rebuilds from its WAL. */
struct WalDaemonState
{
    /** Live (not yet done) receive tasks. */
    std::map<TaskId, WalRxTaskState> rx_tasks;
    /** Live archived sends (submit without forget). */
    std::map<TaskId, WalSendState> sends;
    /** Per-local-channel resume seq (max checkpoint). */
    std::map<std::uint32_t, Seq> resume_seq;
    /** Completed recoveries recorded in the log. */
    std::uint32_t recoveries = 0;

    bool operator==(const WalDaemonState&) const = default;
};

/**
 * Fold a daemon WAL's records into the state a restart installs. Pure:
 * same records + same default op => operator==-identical state (the
 * recovery idempotence proof rides on this). `default_op` applies to
 * records from pre-op logs that carry no explicit operator; every fold
 * is combine-only — journaled tuples were lifted before they were
 * journaled.
 */
WalDaemonState rebuild_daemon_state(const std::vector<WalRecord>& records,
                                    ReduceOp default_op);

}  // namespace ask::core

#endif  // ASK_ASK_WAL_H
