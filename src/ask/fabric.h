/**
 * @file
 * The fabric-aware control plane for multi-rack deployments.
 *
 * A FabricController presents the exact AskSwitchController interface
 * the daemons speak, but manages one sub-controller — with its own
 * region journal and write-ahead log — per switch in the fabric (every
 * ToR plus the aggregation-tier switch). Each control-plane operation
 * fans out:
 *
 *   - allocate/release install (uninstall) the task's region on every
 *     switch, all-or-nothing: a task aggregates wherever its packets
 *     travel, so every switch on any path needs the region.
 *   - fetch concatenates the per-switch region drains — the software
 *     tier-merge of the partial aggregates; the receiver's
 *     merge_stream_into() folds keys split across switches under the
 *     task's bound ReduceOp (not an assumed `+`).
 *   - fence_channel reaches every switch provisioning the channel (the
 *     owning ToR and the tier), so a recovery fence is fabric-wide.
 *   - probe_packet merges verdicts: a slot consumed on ANY switch of
 *     the packet's path is consumed.
 *   - reinstall_after_reboot is idempotent per switch, so one rebooted
 *     ToR re-installs only its own lost bindings.
 *
 * Per-switch WALs (see controller_wal_name) keep each switch's region
 * journal independently recoverable — a fabric controller crash replays
 * every journal and reconciles each data plane separately.
 */
#ifndef ASK_ASK_FABRIC_H
#define ASK_ASK_FABRIC_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ask/controller.h"
#include "ask/switch_program.h"
#include "ask/types.h"
#include "ask/wal.h"

namespace ask::core {

/**
 * Name of the WAL journaling switch `s`'s regions. Switch 0 keeps the
 * classic "controller" name so single-switch tooling (and recovery
 * probes) keep working; the rest are "controller.s<N>".
 */
std::string controller_wal_name(SwitchId s);

/** The multi-switch control plane (see file header). */
class FabricController : public AskSwitchController
{
  public:
    /**
     * @param programs one program per switch, indexed by SwitchId
     *                 (ToRs first, the tier switch last). Must outlive
     *                 the controller; at least one entry.
     */
    explicit FabricController(std::vector<AskSwitchProgram*> programs);

    /** Attach one WAL per switch from `store`, named per
     *  controller_wal_name(). `append_counter` (optional) receives
     *  every journal append across the fabric. */
    void attach_wals(WalStore& store, std::uint64_t* append_counter);

    /** The per-switch sub-controller (tests, recovery probes). */
    AskSwitchController& sub(SwitchId s) { return *subs_.at(s.value()); }

    // ---- AskSwitchController ----------------------------------------------

    std::optional<TaskRegion> allocate(
        TaskId task, std::uint32_t len,
        ReduceOp op = ReduceOp::kAdd) override;
    void release(TaskId task) override;
    void crash() override;
    std::uint32_t recover_from_wal() override;
    KvStream fetch(TaskId task, std::uint32_t copy, bool clear) override;
    std::uint64_t fetch_scan_entries(TaskId task) const override;
    std::uint32_t current_epoch(TaskId task) const override;
    std::uint32_t free_aggregators() const override;
    std::uint32_t reinstall_after_reboot() override;
    void fence_channel(ChannelId channel, Seq next_seq) override;
    AskSwitchProgram::ProbeResult probe_packet(ChannelId channel,
                                               Seq seq) const override;
    std::uint32_t num_switches() const override
    {
        return static_cast<std::uint32_t>(subs_.size());
    }
    std::vector<std::uint64_t> fetched_tally(TaskId task) const override;

  private:
    std::vector<AskSwitchProgram*> programs_;
    std::vector<std::unique_ptr<AskSwitchController>> subs_;
};

}  // namespace ask::core

#endif  // ASK_ASK_FABRIC_H
