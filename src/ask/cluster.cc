#include "ask/cluster.h"

#include <utility>

#include "common/logging.h"
#include "common/string_util.h"

namespace ask::core {

AskCluster::AskCluster(const ClusterConfig& config)
    : config_(config), network_(simulator_)
{
    config_.ask.validate();
    ASK_ASSERT(config_.num_hosts >= 1, "cluster needs at least one host");
    ASK_ASSERT(config_.num_hosts <= config_.ask.max_hosts,
               "more hosts than the switch provisions state for");

    switch_ = std::make_unique<pisa::PisaSwitch>(
        network_, config_.switch_stages, config_.switch_sram_per_stage);
    network_.attach(switch_.get());

    program_ = std::make_unique<AskSwitchProgram>(config_.ask, *switch_);
    program_->set_tracer(&obs_.tracer);
    controller_ = std::make_unique<AskSwitchController>(*program_);
    controller_->set_wal(&wal_store_.controller_wal());
    wal_store_.controller_wal().set_append_counter(&chaos_stats_.wal_appends);

    MgmtRetryPolicy mgmt_policy;
    mgmt_policy.max_tries = config_.ask.mgmt_max_tries;
    mgmt_policy.backoff_base_ns = config_.ask.mgmt_backoff_base_ns;
    mgmt_policy.backoff_cap_ns = config_.ask.mgmt_backoff_cap_ns;
    mgmt_ = std::make_unique<MgmtPlane>(simulator_, config_.mgmt_latency_ns,
                                        mgmt_policy);

    net::CostModel cost_model(config_.cost);
    for (std::uint32_t h = 0; h < config_.num_hosts; ++h) {
        daemons_.push_back(std::make_unique<AskDaemon>(
            config_.ask, cost_model, network_, h, switch_->node_id(),
            *controller_, *mgmt_, &obs_));
        network_.attach(daemons_.back().get());
        network_.connect(daemons_.back()->node_id(), switch_->node_id(),
                         config_.link_gbps, config_.link_propagation_ns,
                         config_.faults, config_.seed + h);
        Wal& wal = wal_store_.host_wal(h);
        wal.set_append_counter(&chaos_stats_.wal_appends);
        daemons_.back()->set_wal(&wal);
    }

    // Wire every component's counters into the registry. The chaos
    // counters are sliced by owner — cluster, management plane, daemons
    // each register exactly the fields they increment — and the
    // disjointness of those slices is asserted, not assumed.
    network_.register_metrics(obs_.registry);
    switch_->register_metrics(obs_.registry);
    register_switch_agg_stats(obs_.registry, program_->stats());
    register_chaos_stats(obs_.registry, chaos_stats_, StatsOwner::kCluster);
    register_chaos_stats(obs_.registry, mgmt_->chaos_stats(),
                         StatsOwner::kMgmt);
    for (const auto& d : daemons_) {
        register_host_stats(obs_.registry, d->stats());
        register_chaos_stats(obs_.registry, d->chaos_stats(),
                             StatsOwner::kDaemon);
    }
    obs_.registry.assert_disjoint_owners("chaos.");
}

AskCluster::~AskCluster() = default;

void
AskCluster::submit_task(TaskId task, std::uint32_t receiver_host,
                        std::vector<StreamSpec> streams,
                        const TaskOptions& options, TaskDoneFn on_done)
{
    ASK_ASSERT(receiver_host < daemons_.size(), "bad receiver host");
    for (const auto& s : streams)
        ASK_ASSERT(s.host < daemons_.size(), "bad sender host");

    AskDaemon& receiver = *daemons_[receiver_host];
    net::NodeId receiver_node = receiver.node_id();
    auto n_senders = static_cast<std::uint32_t>(streams.size());

    // Register the task for chaos recovery: a switch reboot needs to
    // know which hosts hold replayable archives for which tasks.
    ActiveTask active;
    active.receiver_host = receiver_host;
    for (const auto& s : streams)
        active.sender_hosts.push_back(s.host);
    active_tasks_[task] = std::move(active);

    // The real completion callback lives in the cluster's registry, not
    // in the daemon: a receiver crash destroys the daemon's copy, and
    // recovery re-points the rebuilt task here via finish_task.
    done_registry_[task] = [this, task, on_done = std::move(on_done)](
                               AggregateMap result, TaskReport report) {
        auto it = active_tasks_.find(task);
        if (it != active_tasks_.end()) {
            for (std::uint32_t h : it->second.sender_hosts) {
                run_on_host(h,
                            [this, h, task] { daemons_[h]->forget_task(task); });
            }
            active_tasks_.erase(it);
        }
        if (on_done)
            on_done(std::move(result), std::move(report));
    };
    auto thin_done = [this, task](AggregateMap result, TaskReport report) {
        finish_task(task, std::move(result), std::move(report));
    };

    // §3.1 workflow: the receiver registers the task and obtains a switch
    // region; once ready, sender daemons are notified over the control
    // channel and begin streaming.
    receiver.start_receive(
        task, n_senders, options, std::move(thin_done),
        /*on_ready=*/[this, task, receiver_node,
                      streams = std::move(streams)]() mutable {
            simulator_.schedule_after(
                config_.notify_latency_ns,
                [this, task, receiver_node,
                 streams = std::move(streams)]() mutable {
                    for (auto& s : streams) {
                        // A sender notified while crashed accepts the
                        // stream when it restarts.
                        run_on_host(
                            s.host,
                            [this, host = s.host, task, receiver_node,
                             stream = std::move(s.stream)]() mutable {
                                daemons_[host]->submit_send(
                                    task, receiver_node, std::move(stream));
                            });
                    }
                });
        });
}

TaskResult
AskCluster::run_task(TaskId task, std::uint32_t receiver_host,
                     std::vector<StreamSpec> streams,
                     const TaskOptions& options)
{
    TaskResult out;
    bool completed = false;
    submit_task(task, receiver_host, std::move(streams), options,
                [&out, &completed](AggregateMap result, TaskReport report) {
                    out.result = std::move(result);
                    out.report = report;
                    completed = true;
                });
    run();
    ASK_ASSERT(completed, "task ", task, " did not complete");
    return out;
}

void
AskCluster::arm_chaos(const sim::ChaosPlan& plan)
{
    ASK_ASSERT(fault_scheduler_ == nullptr, "chaos already armed");
    fault_scheduler_ = std::make_unique<sim::FaultScheduler>(simulator_);
    net::NodeId sw = switch_->node_id();

    auto host_node = [this](std::uint32_t host) {
        return daemons_[host % daemons_.size()]->node_id();
    };

    fault_scheduler_->set_handler(
        sim::ChaosKind::kLinkBlackout,
        [this, sw, host_node](const sim::ChaosEvent& e) {
            ++chaos_stats_.link_blackouts;
            network_.set_cable_override(host_node(e.subject), sw,
                                        net::FaultSpec::blackout());
        },
        [this, sw, host_node](const sim::ChaosEvent& e) {
            network_.clear_cable_override(host_node(e.subject), sw);
        });

    fault_scheduler_->set_handler(
        sim::ChaosKind::kBurstLoss,
        [this, sw, host_node](const sim::ChaosEvent& e) {
            ++chaos_stats_.burst_loss_windows;
            net::FaultSpec burst = config_.faults;
            burst.loss_prob = e.intensity;
            network_.set_cable_override(host_node(e.subject), sw, burst);
        },
        [this, sw, host_node](const sim::ChaosEvent& e) {
            network_.clear_cable_override(host_node(e.subject), sw);
        });

    fault_scheduler_->set_handler(
        sim::ChaosKind::kSwitchReboot,
        [this](const sim::ChaosEvent& e) { on_switch_reboot_start(e); },
        [this](const sim::ChaosEvent& e) { on_switch_reboot_end(e); });

    fault_scheduler_->set_handler(
        sim::ChaosKind::kMgmtOutage,
        [this](const sim::ChaosEvent&) {
            ++chaos_stats_.mgmt_outages;
            mgmt_->set_outage(true);
        },
        [this](const sim::ChaosEvent&) {
            // The window may overlap a controller crash or a switch
            // reboot; the endpoint only comes back when nothing else
            // keeps it dark.
            mgmt_->set_outage(controller_down_ || switch_->offline());
        });

    fault_scheduler_->set_handler(
        sim::ChaosKind::kMgmtDelay,
        [this](const sim::ChaosEvent& e) {
            ++chaos_stats_.mgmt_delay_windows;
            mgmt_->set_extra_delay(static_cast<Nanoseconds>(e.intensity));
        },
        [this](const sim::ChaosEvent&) { mgmt_->set_extra_delay(0); });

    fault_scheduler_->set_handler(
        sim::ChaosKind::kDataBlackhole,
        [this](const sim::ChaosEvent&) {
            ++chaos_stats_.data_blackholes;
            program_->set_data_blackhole(true);
        },
        [this](const sim::ChaosEvent&) {
            program_->set_data_blackhole(false);
        });

    auto subject_host = [this](const sim::ChaosEvent& e) {
        return e.subject % static_cast<std::uint32_t>(daemons_.size());
    };
    fault_scheduler_->set_handler(
        sim::ChaosKind::kHostCrash,
        [this, subject_host](const sim::ChaosEvent& e) {
            if (e.subject == sim::kControllerSubject)
                crash_controller();
            else
                crash_host(subject_host(e));
        },
        [this, subject_host](const sim::ChaosEvent& e) {
            if (e.subject == sim::kControllerSubject)
                restart_controller();
            else
                restart_host(subject_host(e));
        });
    fault_scheduler_->set_handler(
        sim::ChaosKind::kHostRestart,
        [this, subject_host](const sim::ChaosEvent& e) {
            if (e.subject == sim::kControllerSubject)
                restart_controller();
            else
                restart_host(subject_host(e));
        });

    fault_scheduler_->set_unhandled_hook(
        [this](const sim::ChaosEvent&) { ++chaos_stats_.unhandled_events; });

    fault_scheduler_->arm(plan);
}

void
AskCluster::on_switch_reboot_start(const sim::ChaosEvent& e)
{
    (void)e;
    ++chaos_stats_.switch_reboots;
    // The crash destroys everything at once: the data plane stops
    // (offline drops all traffic), the register SRAM is volatile, the
    // control-plane task table lived in switch DRAM, and the switch CPU
    // takes the management endpoint down with it.
    switch_->set_offline(true);
    switch_->pipeline().wipe_registers();
    program_->on_reboot();
    mgmt_->set_outage(true);
}

void
AskCluster::on_switch_reboot_end(const sim::ChaosEvent& e)
{
    (void)e;
    switch_->set_offline(false);

    // Recovery, in dependency order. (1) The controller re-installs
    // every journaled region — allocation truth lives host-side.
    chaos_stats_.regions_reinstalled += controller_->reinstall_after_reboot();

    // (2) Silence the senders of every active task BEFORE fencing:
    // the fence boundary is each channel's next_seq, and nothing may be
    // transmitted between reading it and the replay.
    for (const auto& [task, info] : active_tasks_) {
        for (std::uint32_t h : info.sender_hosts)
            daemons_[h]->abort_send(task);
    }

    // (3) Fence every data channel: stale-drop pre-crash sequences and
    // repair the compact-seen parity the wipe destroyed. Crashed hosts
    // are skipped — their channels re-fence at the WAL checkpoint when
    // they restart.
    for (const auto& d : daemons_) {
        if (d->crashed())
            continue;
        for (std::uint32_t c = 0; c < d->num_channels(); ++c) {
            DataChannel& ch = d->channel(c);
            controller_->fence_channel(ch.global_id(), ch.next_seq());
            ++chaos_stats_.channels_fenced;
        }
    }

    // (4) Reset the receiver state of every active task and let the
    // fabric drain, (5) then replay the archived streams. The epoch
    // voids replays scheduled by an earlier recovery that this reboot
    // interrupted — they would stream on top of this epoch's replay.
    // Work aimed at a crashed host waits for its restart (and composes
    // with the WAL rebuild there): a rebuilt receiver whose registers
    // this reboot wiped MUST still be reset, or the replay would land
    // on top of its journaled partial aggregate.
    std::uint64_t epoch = ++recovery_epoch_;
    sim::SimTime drain_until =
        simulator_.now() + config_.ask.recovery_drain_ns;
    for (const auto& [task, info] : active_tasks_) {
        run_on_host(info.receiver_host,
                    [this, task, host = info.receiver_host, drain_until] {
                        daemons_[host]->prepare_replay(task, drain_until);
                    });
        for (std::uint32_t h : info.sender_hosts) {
            simulator_.schedule_at(drain_until, [this, task, h, epoch] {
                if (recovery_epoch_ != epoch || active_tasks_.count(task) == 0)
                    return;
                run_on_host(h, [this, task, h, epoch] {
                    if (recovery_epoch_ == epoch &&
                        active_tasks_.count(task) != 0)
                        daemons_[h]->replay_task(task);
                });
            });
        }
    }

    // (6) The switch CPU is back: management RPCs flow again — unless
    // the controller process is itself down, in which case the endpoint
    // stays dark until it restarts.
    mgmt_->set_outage(controller_down_);
}

void
AskCluster::run_on_host(std::uint32_t host, std::function<void()> fn)
{
    if (daemons_.at(host)->crashed())
        pending_on_restart_[host].push_back(std::move(fn));
    else
        fn();
}

void
AskCluster::finish_task(TaskId task, AggregateMap result, TaskReport report)
{
    auto it = done_registry_.find(task);
    if (it == done_registry_.end())
        return;  // already delivered (e.g. aborted during recovery)
    TaskDoneFn done = std::move(it->second);
    done_registry_.erase(it);
    if (done)
        done(std::move(result), std::move(report));
}

void
AskCluster::abort_active_task(TaskId task, TaskStatus status,
                              const std::string& detail)
{
    auto it = active_tasks_.find(task);
    if (it == active_tasks_.end())
        return;
    ++chaos_stats_.crash_aborted_tasks;
    AskDaemon& receiver = *daemons_[it->second.receiver_host];
    if (!receiver.crashed())
        receiver.fail_receive_task(task, status, detail);
    // fail_receive_task no-ops when the receiver holds no task state
    // (crashed, or the task never rebuilt); deliver from the registry.
    if (done_registry_.count(task) != 0) {
        TaskReport report;
        report.finish_time = simulator_.now();
        report.status = status;
        report.detail = detail;
        finish_task(task, AggregateMap{}, std::move(report));
    }
}

void
AskCluster::crash_host(std::uint32_t host)
{
    AskDaemon& d = *daemons_.at(host);
    if (d.crashed())
        return;  // overlapping episodes: already down
    ++chaos_stats_.host_crashes;
    d.crash();
}

void
AskCluster::restart_host(std::uint32_t host)
{
    AskDaemon& d = *daemons_.at(host);
    if (!d.crashed())
        return;
    auto make_done = [this](TaskId task) -> TaskDoneFn {
        return [this, task](AggregateMap result, TaskReport report) {
            finish_task(task, std::move(result), std::move(report));
        };
    };
    try {
        d.recover_from_wal(make_done);
        ++chaos_stats_.host_recoveries;
    } catch (const StateError& e) {
        ++chaos_stats_.wal_rejected;
        warn("cluster: host ", host, " WAL rejected (", e.what(),
             "); restarting the process with empty state");
        wal_store_.host_wal(host).clear();
        d.recover_from_wal(make_done);
        // Durable state evaporated with the log: every active task this
        // host served cannot complete exactly. Fail them over guessing.
        std::vector<TaskId> doomed;
        for (const auto& [task, info] : active_tasks_) {
            bool involved = info.receiver_host == host;
            for (std::uint32_t h : info.sender_hosts)
                involved = involved || h == host;
            if (involved)
                doomed.push_back(task);
        }
        for (TaskId task : doomed)
            abort_active_task(task, TaskStatus::kHostCrashed,
                              strf("host %u write-ahead log corrupt", host));
        pending_on_restart_.erase(host);
        return;
    }
    // Deferred recovery work that fired while the host was down (e.g. a
    // switch reboot's receiver reset) composes with the rebuilt state.
    auto pit = pending_on_restart_.find(host);
    if (pit != pending_on_restart_.end()) {
        std::vector<std::function<void()>> fns = std::move(pit->second);
        pending_on_restart_.erase(pit);
        for (auto& fn : fns)
            fn();
    }
    // Mid-send crash: the dead process's in-flight accounting is gone,
    // so which of its tuples the switch registers absorbed is
    // unknowable. Re-establish exactness from the source archives.
    for (const auto& [task, info] : active_tasks_) {
        if (d.has_send_archive(task)) {
            global_replay_reset();
            break;
        }
    }
}

void
AskCluster::crash_controller()
{
    if (controller_down_)
        return;
    controller_down_ = true;
    ++chaos_stats_.controller_crashes;
    // The controller process hosts the management endpoint: RPCs fail
    // (and retry) until it restarts.
    controller_->crash();
    mgmt_->set_outage(true);
}

void
AskCluster::restart_controller()
{
    if (!controller_down_)
        return;
    controller_down_ = false;
    try {
        controller_->recover_from_wal();
        ++chaos_stats_.controller_recoveries;
    } catch (const StateError& e) {
        ++chaos_stats_.wal_rejected;
        warn("cluster: controller WAL rejected (", e.what(),
             "); aborting every active task");
        wal_store_.controller_wal().clear();
        std::vector<TaskId> doomed;
        for (const auto& [task, info] : active_tasks_)
            doomed.push_back(task);
        for (TaskId task : doomed)
            abort_active_task(task, TaskStatus::kHostCrashed,
                              "controller write-ahead log corrupt");
    }
    // The endpoint returns — unless the switch is itself mid-reboot.
    mgmt_->set_outage(switch_->offline());
}

void
AskCluster::global_replay_reset()
{
    if (active_tasks_.empty())
        return;
    std::uint64_t epoch = ++recovery_epoch_;

    // (1) Silence every live sender of every active task.
    for (const auto& [task, info] : active_tasks_) {
        for (std::uint32_t h : info.sender_hosts) {
            if (!daemons_[h]->crashed())
                daemons_[h]->abort_send(task);
        }
    }

    // (2) Discard every active task's partial switch state. A crashed
    // sender's in-flight accounting died with it, so which of its
    // frames the registers absorbed is unknowable; the archives
    // re-establish the aggregate from the source.
    for (const auto& [task, info] : active_tasks_) {
        if (program_->find_task(task) == nullptr)
            continue;
        program_->reset_epoch(task);
        program_->read_region(task, 0, /*clear=*/true);
        if (config_.ask.shadow_copies)
            program_->read_region(task, 1, /*clear=*/true);
    }

    // (3) Fence every live channel so pre-reset frames stale-drop.
    for (const auto& d : daemons_) {
        if (d->crashed())
            continue;
        for (std::uint32_t c = 0; c < d->num_channels(); ++c) {
            DataChannel& ch = d->channel(c);
            controller_->fence_channel(ch.global_id(), ch.next_seq());
            ++chaos_stats_.channels_fenced;
        }
    }

    // (4) Reset receivers, drain the fabric, replay the archives — the
    // same choreography as a switch reboot, crash-aware via run_on_host.
    sim::SimTime drain_until =
        simulator_.now() + config_.ask.recovery_drain_ns;
    for (const auto& [task, info] : active_tasks_) {
        run_on_host(info.receiver_host,
                    [this, task, host = info.receiver_host, drain_until] {
                        daemons_[host]->prepare_replay(task, drain_until);
                    });
        for (std::uint32_t h : info.sender_hosts) {
            simulator_.schedule_at(drain_until, [this, task, h, epoch] {
                if (recovery_epoch_ != epoch || active_tasks_.count(task) == 0)
                    return;
                run_on_host(h, [this, task, h, epoch] {
                    if (recovery_epoch_ == epoch &&
                        active_tasks_.count(task) != 0)
                        daemons_[h]->replay_task(task);
                });
            });
        }
    }
}

ChaosStats
AskCluster::chaos_stats() const
{
    ChaosStats total = chaos_stats_;
    total.merge(mgmt_->chaos_stats());
    for (const auto& d : daemons_)
        total.merge(d->chaos_stats());
    return total;
}

HostStats
AskCluster::total_host_stats() const
{
    HostStats total;
    for (const auto& d : daemons_)
        total.merge(d->stats());
    return total;
}

void
AskCluster::enable_sampling(Nanoseconds interval_ns)
{
    ASK_ASSERT(sampler_ == nullptr, "sampling already enabled");
    sampler_ =
        std::make_unique<obs::Sampler>(simulator_, obs_.registry, interval_ns);

    // Goodput over the last period, from the fabric's cumulative byte
    // counter. Rate probes carry their own previous-sample state.
    sampler_->add_probe(
        "goodput_gbps",
        [this, prev_bytes = std::uint64_t{0},
         prev_t = simulator_.now()](sim::SimTime t) mutable {
            std::uint64_t bytes = network_.stats().bytes_sent;
            double gbps =
                t > prev_t ? 8.0 * static_cast<double>(bytes - prev_bytes) /
                                 static_cast<double>(t - prev_t)
                           : 0.0;
            prev_bytes = bytes;
            prev_t = t;
            return gbps;
        });

    // Per-channel core occupancy: busy-ns accumulated over the period.
    for (std::uint32_t h = 0; h < num_hosts(); ++h) {
        for (std::uint32_t c = 0; c < daemons_[h]->num_channels(); ++c) {
            DataChannel* ch = &daemons_[h]->channel(c);
            sampler_->add_probe(
                strf("occupancy.h%u.c%u", h, c),
                [ch, prev_busy = std::uint64_t{0},
                 prev_t = simulator_.now()](sim::SimTime t) mutable {
                    std::uint64_t busy = ch->busy_ns();
                    double frac =
                        t > prev_t
                            ? static_cast<double>(busy - prev_busy) /
                                  static_cast<double>(t - prev_t)
                            : 0.0;
                    prev_busy = busy;
                    prev_t = t;
                    return frac;
                });
        }
    }

    // Switch aggregation ratio over the last period: of the tuples that
    // entered the pipeline, how many were consumed in-network.
    sampler_->add_probe(
        "switch.agg_ratio",
        [this, prev_in = std::uint64_t{0},
         prev_agg = std::uint64_t{0}](sim::SimTime) mutable {
            const SwitchAggStats& st = program_->stats();
            std::uint64_t din = st.tuples_in - prev_in;
            std::uint64_t dagg = st.tuples_aggregated - prev_agg;
            prev_in = st.tuples_in;
            prev_agg = st.tuples_aggregated;
            return din > 0 ? static_cast<double>(dagg) /
                                 static_cast<double>(din)
                           : 0.0;
        });

    // Sender congestion state, averaged over every channel.
    sampler_->add_probe("cwnd.mean", [this](sim::SimTime) {
        double sum = 0.0;
        std::uint32_t n = 0;
        for (const auto& d : daemons_) {
            for (std::uint32_t c = 0; c < d->num_channels(); ++c, ++n)
                sum += static_cast<double>(d->channel(c).cwnd());
        }
        return n > 0 ? sum / n : 0.0;
    });
    sampler_->add_probe("rto.mean_ns", [this](sim::SimTime) {
        double sum = 0.0;
        std::uint32_t n = 0;
        for (const auto& d : daemons_) {
            for (std::uint32_t c = 0; c < d->num_channels(); ++c, ++n)
                sum += static_cast<double>(d->channel(c).rto());
        }
        return n > 0 ? sum / n : 0.0;
    });
}

}  // namespace ask::core
