#include "ask/cluster.h"

#include <utility>

#include "common/logging.h"
#include "common/string_util.h"

namespace ask::core {

namespace {

/** The deployed layout: the config's explicit Topology, or a
 *  single-rack layout synthesized from the deprecated num_hosts. */
Topology
resolve_topology(const ClusterConfig& config)
{
    if (config.topology.has_value()) {
        Topology topo = *config.topology;
        topo.validate();
        return topo;
    }
    return TopologyBuilder().add_rack(config.num_hosts).build();
}

/** Metric prefix for switch `s` of `topo`: rack 0's ToR keeps the
 *  pre-fabric names, the rest are suffixed per switch. */
std::string
switch_prefix(const Topology& topo, std::uint32_t s, const char* base)
{
    if (s == 0)
        return strf("%s.", base);
    if (topo.has_tier() && s == topo.num_racks())
        return strf("%s.tier.", base);
    return strf("%s.s%u.", base, s);
}

}  // namespace

AskCluster::AskCluster(const ClusterConfig& config)
    : AskCluster(config, nullptr)
{
}

AskCluster::AskCluster(const ClusterConfig& config, sim::Simulator& external)
    : AskCluster(config, &external)
{
}

AskCluster::AskCluster(const ClusterConfig& config, sim::Simulator* external)
    : config_(config), topo_(resolve_topology(config)),
      owned_simulator_(external ? nullptr
                                : std::make_unique<sim::Simulator>()),
      simulator_(external ? *external : *owned_simulator_),
      network_(simulator_)
{
    config_.ask.validate();
    ASK_ASSERT(topo_.num_hosts() <= config_.ask.max_hosts,
               "more hosts than the switch provisions state for");

    const bool fabric = topo_.has_tier();
    const std::uint32_t cph = config_.ask.channels_per_host;

    // Switches attach first (ToRs in rack order, then the aggregation
    // tier), daemons after — node ids, and therefore every packet
    // schedule, depend on this order.
    for (std::uint32_t s = 0; s < topo_.num_switches(); ++s) {
        switches_.push_back(std::make_unique<pisa::PisaSwitch>(
            network_, config_.switch_stages, config_.switch_sram_per_stage));
        network_.attach(switches_.back().get());
    }

    if (!fabric) {
        // Classic star: one program provisioning the full channel space.
        programs_.push_back(
            std::make_unique<AskSwitchProgram>(config_.ask, *switches_[0]));
    } else {
        // Each ToR provisions exactly its rack's channel shard — the
        // per-switch register state this buys is bounded by the rack
        // size, not the cluster size (fig13b measures this).
        for (std::uint32_t r = 0; r < topo_.num_racks(); ++r) {
            auto lo = static_cast<ChannelId>(topo_.host_lo(RackId{r}) * cph);
            auto hi = static_cast<ChannelId>(
                lo + topo_.hosts_in(RackId{r}) * cph);
            programs_.push_back(std::make_unique<AskSwitchProgram>(
                config_.ask, *switches_[r], lo, hi));
            // Leaf role: a ToR must keep cross-rack packets alive to the
            // tier (which holds window state for every channel) even
            // when it absorbed every tuple — see set_tree_leaf().
            programs_.back()->set_tree_leaf(true);
        }
        // The tier merges everything, so it provisions every channel
        // any deployed host can use.
        programs_.push_back(std::make_unique<AskSwitchProgram>(
            config_.ask, *switches_[topo_.num_racks()], 0,
            static_cast<ChannelId>(topo_.num_hosts() * cph)));
    }
    for (auto& p : programs_)
        p->set_tracer(&obs_.tracer);

    if (!fabric) {
        controller_ = std::make_unique<AskSwitchController>(*programs_[0]);
        controller_->set_wal(&wal_store_.controller_wal());
        wal_store_.controller_wal().set_append_counter(
            &chaos_stats_.wal_appends);
    } else {
        std::vector<AskSwitchProgram*> progs;
        for (auto& p : programs_)
            progs.push_back(p.get());
        auto fab = std::make_unique<FabricController>(std::move(progs));
        fab->attach_wals(wal_store_, &chaos_stats_.wal_appends);
        controller_ = std::move(fab);
    }

    MgmtRetryPolicy mgmt_policy;
    mgmt_policy.max_tries = config_.ask.mgmt_max_tries;
    mgmt_policy.backoff_base_ns = config_.ask.mgmt_backoff_base_ns;
    mgmt_policy.backoff_cap_ns = config_.ask.mgmt_backoff_cap_ns;
    mgmt_ = std::make_unique<MgmtPlane>(simulator_, config_.mgmt_latency_ns,
                                        mgmt_policy);

    net::CostModel cost_model(config_.cost);
    for (std::uint32_t h = 0; h < topo_.num_hosts(); ++h) {
        pisa::PisaSwitch& tor = tor_of(h);
        daemons_.push_back(std::make_unique<AskDaemon>(
            config_.ask, cost_model, network_, HostId{h}, tor.node_id(),
            *controller_, *mgmt_, &obs_));
        network_.attach(daemons_.back().get());
        network_.connect(daemons_.back()->node_id(), tor.node_id(),
                         config_.link_gbps, config_.link_propagation_ns,
                         config_.faults, config_.seed + h);
        Wal& wal = wal_store_.host_wal(h);
        wal.set_append_counter(&chaos_stats_.wal_appends);
        daemons_.back()->set_wal(&wal);
    }

    if (fabric) {
        // Tier uplinks, then the FIBs. ToRs forward remote-host
        // destinations up; the tier forwards each host down its rack.
        net::NodeId tier_node = switches_[topo_.num_racks()]->node_id();
        for (std::uint32_t r = 0; r < topo_.num_racks(); ++r) {
            network_.connect(switches_[r]->node_id(), tier_node,
                             topo_.tier_link_gbps,
                             topo_.tier_link_propagation_ns,
                             topo_.tier_faults,
                             config_.seed + topo_.num_hosts() + r);
        }
        for (std::uint32_t h = 0; h < topo_.num_hosts(); ++h) {
            net::NodeId host_node = daemons_[h]->node_id();
            std::uint32_t hr = topo_.rack_of_host(HostId{h}).value();
            switches_[topo_.num_racks()]->set_route(
                host_node, switches_[hr]->node_id());
            for (std::uint32_t r = 0; r < topo_.num_racks(); ++r) {
                if (r != hr)
                    switches_[r]->set_route(host_node, tier_node);
            }
        }
    }

    // Wire every component's counters into the registry. The chaos
    // counters are sliced by owner — cluster, management plane, daemons
    // each register exactly the fields they increment — and the
    // disjointness of those slices is asserted, not assumed. Per-switch
    // counters get per-switch prefixes (rack 0's ToR keeps the
    // pre-fabric names).
    network_.register_metrics(obs_.registry);
    for (std::uint32_t s = 0; s < num_switches(); ++s) {
        switches_[s]->register_metrics(obs_.registry,
                                       switch_prefix(topo_, s, "pisa"));
        register_switch_agg_stats(obs_.registry, programs_[s]->stats(),
                                  switch_prefix(topo_, s, "switch"));
    }
    register_chaos_stats(obs_.registry, chaos_stats_, StatsOwner::kCluster);
    register_chaos_stats(obs_.registry, mgmt_->chaos_stats(),
                         StatsOwner::kMgmt);
    for (const auto& d : daemons_) {
        register_host_stats(obs_.registry, d->stats());
        register_chaos_stats(obs_.registry, d->chaos_stats(),
                             StatsOwner::kDaemon);
    }
    obs_.registry.assert_disjoint_owners("chaos.");
}

AskCluster::~AskCluster() = default;

bool
AskCluster::any_switch_offline() const
{
    for (const auto& s : switches_) {
        if (s->offline())
            return true;
    }
    return false;
}

void
AskCluster::submit_task(TaskId task, HostId receiver_host,
                        std::vector<StreamSpec> streams,
                        const TaskOptions& options, TaskDoneFn on_done)
{
    ASK_ASSERT(receiver_host.value() < daemons_.size(), "bad receiver host");
    for (const auto& s : streams)
        ASK_ASSERT(s.host.value() < daemons_.size(), "bad sender host");

    TaskOptions opts = options;
    if (num_switches() > 1) {
        // No fabric-atomic epoch flip exists, so shadow-copy swaps are
        // off in multi-switch mode; finalize drains both copies.
        opts.swap_policy = TaskOptions::SwapPolicy::kDisabled;
    }

    // Resolve the reduction operator once, synchronously, and validate
    // it against every switch program's access plan before any async
    // setup: a tenant asking for an op the pipeline cannot host gets a
    // ConfigError here, not a half-started task failing later.
    ReduceOp rop = opts.op.value_or(config_.ask.op);
    opts.op = rop;
    for (const auto& p : programs_) {
        if (p->access_plan().find_reduce_op(static_cast<std::uint8_t>(rop)) ==
            nullptr) {
            fail_config("task ", task, " requests reduce op '",
                        reduce_op_name(rop),
                        "', which the switch access plan does not declare "
                        "(kFloat needs part_bits == 32)");
        }
    }

    AskDaemon& receiver = *daemons_[receiver_host.value()];
    net::NodeId receiver_node = receiver.node_id();
    auto n_senders = static_cast<std::uint32_t>(streams.size());

    // Register the task for chaos recovery: a switch reboot needs to
    // know which hosts hold replayable archives for which tasks.
    ActiveTask active;
    active.receiver_host = receiver_host.value();
    for (const auto& s : streams)
        active.sender_hosts.push_back(s.host.value());
    active_tasks_[task] = std::move(active);

    // The real completion callback lives in the cluster's registry, not
    // in the daemon: a receiver crash destroys the daemon's copy, and
    // recovery re-points the rebuilt task here via finish_task.
    done_registry_[task] = [this, task, on_done = std::move(on_done)](
                               AggregateMap result, TaskReport report) {
        auto it = active_tasks_.find(task);
        if (it != active_tasks_.end()) {
            for (std::uint32_t h : it->second.sender_hosts) {
                run_on_host(h,
                            [this, h, task] { daemons_[h]->forget_task(task); });
            }
            active_tasks_.erase(it);
        }
        if (on_done)
            on_done(std::move(result), std::move(report));
    };
    auto thin_done = [this, task](AggregateMap result, TaskReport report) {
        finish_task(task, std::move(result), std::move(report));
    };

    // §3.1 workflow: the receiver registers the task and obtains a switch
    // region; once ready, sender daemons are notified over the control
    // channel and begin streaming.
    receiver.start_receive(
        task, n_senders, opts, std::move(thin_done),
        /*on_ready=*/[this, task, receiver_node, rop,
                      streams = std::move(streams)]() mutable {
            simulator_.schedule_after(
                config_.notify_latency_ns,
                [this, task, receiver_node, rop,
                 streams = std::move(streams)]() mutable {
                    for (auto& s : streams) {
                        // A sender notified while crashed accepts the
                        // stream when it restarts.
                        run_on_host(
                            s.host.value(),
                            [this, host = s.host.value(), task, receiver_node,
                             stream = std::move(s.stream), rop]() mutable {
                                daemons_[host]->submit_send(
                                    task, receiver_node, std::move(stream),
                                    nullptr, rop);
                            });
                    }
                });
        });
}

TaskResult
AskCluster::run_task(TaskId task, HostId receiver_host,
                     std::vector<StreamSpec> streams,
                     const TaskOptions& options)
{
    TaskResult out;
    bool completed = false;
    submit_task(task, receiver_host, std::move(streams), options,
                [&out, &completed](AggregateMap result, TaskReport report) {
                    out.result = std::move(result);
                    out.report = report;
                    completed = true;
                });
    run();
    ASK_ASSERT(completed, "task ", task, " did not complete");
    return out;
}

void
AskCluster::arm_chaos(const sim::ChaosPlan& plan)
{
    ASK_ASSERT(fault_scheduler_ == nullptr, "chaos already armed");
    fault_scheduler_ = std::make_unique<sim::FaultScheduler>(simulator_);

    auto subject_host = [this](const sim::ChaosEvent& e) {
        return e.subject % static_cast<std::uint32_t>(daemons_.size());
    };
    auto host_node = [this, subject_host](const sim::ChaosEvent& e) {
        return daemons_[subject_host(e)]->node_id();
    };
    // Link chaos hits the subject host's access cable — the one to its
    // own ToR.
    auto tor_node = [this, subject_host](const sim::ChaosEvent& e) {
        return tor_of(subject_host(e)).node_id();
    };

    fault_scheduler_->set_handler(
        sim::ChaosKind::kLinkBlackout,
        [this, host_node, tor_node](const sim::ChaosEvent& e) {
            ++chaos_stats_.link_blackouts;
            network_.set_cable_override(host_node(e), tor_node(e),
                                        net::FaultSpec::blackout());
        },
        [this, host_node, tor_node](const sim::ChaosEvent& e) {
            network_.clear_cable_override(host_node(e), tor_node(e));
        });

    fault_scheduler_->set_handler(
        sim::ChaosKind::kBurstLoss,
        [this, host_node, tor_node](const sim::ChaosEvent& e) {
            ++chaos_stats_.burst_loss_windows;
            net::FaultSpec burst = config_.faults;
            burst.loss_prob = e.intensity;
            network_.set_cable_override(host_node(e), tor_node(e), burst);
        },
        [this, host_node, tor_node](const sim::ChaosEvent& e) {
            network_.clear_cable_override(host_node(e), tor_node(e));
        });

    fault_scheduler_->set_handler(
        sim::ChaosKind::kSwitchReboot,
        [this](const sim::ChaosEvent& e) { on_switch_reboot_start(e); },
        [this](const sim::ChaosEvent& e) { on_switch_reboot_end(e); });

    fault_scheduler_->set_handler(
        sim::ChaosKind::kMgmtOutage,
        [this](const sim::ChaosEvent&) {
            ++chaos_stats_.mgmt_outages;
            mgmt_->set_outage(true);
        },
        [this](const sim::ChaosEvent&) {
            // The window may overlap a controller crash or a switch
            // reboot; the endpoint only comes back when nothing else
            // keeps it dark.
            mgmt_->set_outage(controller_down_ || any_switch_offline());
        });

    fault_scheduler_->set_handler(
        sim::ChaosKind::kMgmtDelay,
        [this](const sim::ChaosEvent& e) {
            ++chaos_stats_.mgmt_delay_windows;
            mgmt_->set_extra_delay(static_cast<Nanoseconds>(e.intensity));
        },
        [this](const sim::ChaosEvent&) { mgmt_->set_extra_delay(0); });

    fault_scheduler_->set_handler(
        sim::ChaosKind::kDataBlackhole,
        [this](const sim::ChaosEvent&) {
            ++chaos_stats_.data_blackholes;
            for (auto& p : programs_)
                p->set_data_blackhole(true);
        },
        [this](const sim::ChaosEvent&) {
            for (auto& p : programs_)
                p->set_data_blackhole(false);
        });

    fault_scheduler_->set_handler(
        sim::ChaosKind::kHostCrash,
        [this, subject_host](const sim::ChaosEvent& e) {
            if (e.subject == sim::kControllerSubject)
                crash_controller();
            else
                crash_host(HostId{subject_host(e)});
        },
        [this, subject_host](const sim::ChaosEvent& e) {
            if (e.subject == sim::kControllerSubject)
                restart_controller();
            else
                restart_host(HostId{subject_host(e)});
        });
    fault_scheduler_->set_handler(
        sim::ChaosKind::kHostRestart,
        [this, subject_host](const sim::ChaosEvent& e) {
            if (e.subject == sim::kControllerSubject)
                restart_controller();
            else
                restart_host(HostId{subject_host(e)});
        });

    fault_scheduler_->set_unhandled_hook(
        [this](const sim::ChaosEvent&) { ++chaos_stats_.unhandled_events; });

    fault_scheduler_->arm(plan);
}

void
AskCluster::on_switch_reboot_start(const sim::ChaosEvent& e)
{
    SwitchId s = subject_switch(e);
    ++chaos_stats_.switch_reboots;
    // The crash destroys everything at once: the data plane stops
    // (offline drops all traffic), the register SRAM is volatile, the
    // control-plane task table lived in switch DRAM, and the switch CPU
    // takes the management endpoint down with it.
    pisa::PisaSwitch& sw = *switches_[s.value()];
    sw.set_offline(true);
    sw.pipeline().wipe_registers();
    programs_[s.value()]->on_reboot();
    mgmt_->set_outage(true);
}

void
AskCluster::on_switch_reboot_end(const sim::ChaosEvent& e)
{
    SwitchId s = subject_switch(e);
    switches_[s.value()]->set_offline(false);

    // Recovery, in dependency order. (1) The controller re-installs
    // every journaled region — allocation truth lives host-side. The
    // fabric fan-out is idempotent per switch: only the rebooted data
    // plane is missing bindings.
    chaos_stats_.regions_reinstalled += controller_->reinstall_after_reboot();

    // (2) Silence the senders of every active task BEFORE fencing:
    // the fence boundary is each channel's next_seq, and nothing may be
    // transmitted between reading it and the replay.
    for (const auto& [task, info] : active_tasks_) {
        for (std::uint32_t h : info.sender_hosts)
            daemons_[h]->abort_send(task);
    }

    // (2b) Fabric only: the reboot wiped ONE switch's registers, but the
    // replay streams every task from scratch — partial aggregates still
    // sitting on the surviving switches would be double-counted. Clear
    // them all. (A single-switch reboot needs no clear: the wipe was it.)
    if (num_switches() > 1)
        clear_active_regions();

    // (3) Fence every data channel: stale-drop pre-crash sequences and
    // repair the compact-seen parity the wipe destroyed. The fabric
    // fences each channel on every switch provisioning it. Crashed
    // hosts are skipped — their channels re-fence at the WAL checkpoint
    // when they restart.
    for (const auto& d : daemons_) {
        if (d->crashed())
            continue;
        for (std::uint32_t c = 0; c < d->num_channels(); ++c) {
            DataChannel& ch = d->channel(c);
            controller_->fence_channel(ch.global_id(), ch.next_seq());
            ++chaos_stats_.channels_fenced;
        }
    }

    // (4) Reset the receiver state of every active task and let the
    // fabric drain, (5) then replay the archived streams. The epoch
    // voids replays scheduled by an earlier recovery that this reboot
    // interrupted — they would stream on top of this epoch's replay.
    // Work aimed at a crashed host waits for its restart (and composes
    // with the WAL rebuild there): a rebuilt receiver whose registers
    // this reboot wiped MUST still be reset, or the replay would land
    // on top of its journaled partial aggregate.
    std::uint64_t epoch = ++recovery_epoch_;
    sim::SimTime drain_until =
        simulator_.now() + config_.ask.recovery_drain_ns;
    for (const auto& [task, info] : active_tasks_) {
        run_on_host(info.receiver_host,
                    [this, task, host = info.receiver_host, drain_until] {
                        daemons_[host]->prepare_replay(task, drain_until);
                    });
        for (std::uint32_t h : info.sender_hosts) {
            simulator_.schedule_at(drain_until, [this, task, h, epoch] {
                if (recovery_epoch_ != epoch || active_tasks_.count(task) == 0)
                    return;
                run_on_host(h, [this, task, h, epoch] {
                    if (recovery_epoch_ == epoch &&
                        active_tasks_.count(task) != 0)
                        daemons_[h]->replay_task(task);
                });
            });
        }
    }

    // (6) The switch CPU is back: management RPCs flow again — unless
    // the controller process is itself down (or another switch of the
    // fabric is still mid-reboot), in which case the endpoint stays
    // dark until everything is up.
    mgmt_->set_outage(controller_down_ || any_switch_offline());
}

void
AskCluster::run_on_host(std::uint32_t host, std::function<void()> fn)
{
    if (daemons_.at(host)->crashed())
        pending_on_restart_[host].push_back(std::move(fn));
    else
        fn();
}

void
AskCluster::finish_task(TaskId task, AggregateMap result, TaskReport report)
{
    auto it = done_registry_.find(task);
    if (it == done_registry_.end())
        return;  // already delivered (e.g. aborted during recovery)
    TaskDoneFn done = std::move(it->second);
    done_registry_.erase(it);
    // Stamp the per-switch shard map: which switch owned which channel
    // shard, and how much of the result came out of each region.
    std::vector<std::uint64_t> tally = controller_->fetched_tally(task);
    report.shards.clear();
    for (std::uint32_t s = 0; s < num_switches(); ++s) {
        SwitchShardInfo info;
        info.switch_id = SwitchId{s};
        info.is_tier = topo_.has_tier() && s == topo_.num_racks();
        info.rack = RackId{info.is_tier ? 0 : s};
        info.channel_lo = programs_[s]->provisioned_lo();
        info.channel_hi = programs_[s]->provisioned_hi();
        info.tuples_fetched = s < tally.size() ? tally[s] : 0;
        info.stats = programs_[s]->stats();
        report.shards.push_back(std::move(info));
    }
    if (done)
        done(std::move(result), std::move(report));
}

void
AskCluster::abort_active_task(TaskId task, TaskStatus status,
                              const std::string& detail)
{
    auto it = active_tasks_.find(task);
    if (it == active_tasks_.end())
        return;
    ++chaos_stats_.crash_aborted_tasks;
    AskDaemon& receiver = *daemons_[it->second.receiver_host];
    if (!receiver.crashed())
        receiver.fail_receive_task(task, status, detail);
    // fail_receive_task no-ops when the receiver holds no task state
    // (crashed, or the task never rebuilt); deliver from the registry.
    if (done_registry_.count(task) != 0) {
        TaskReport report;
        report.finish_time = simulator_.now();
        report.status = status;
        report.detail = detail;
        finish_task(task, AggregateMap{}, std::move(report));
    }
}

void
AskCluster::crash_host(HostId host)
{
    AskDaemon& d = *daemons_.at(host.value());
    if (d.crashed())
        return;  // overlapping episodes: already down
    ++chaos_stats_.host_crashes;
    d.crash();
}

void
AskCluster::restart_host(HostId host)
{
    std::uint32_t h_idx = host.value();
    AskDaemon& d = *daemons_.at(h_idx);
    if (!d.crashed())
        return;
    auto make_done = [this](TaskId task) -> TaskDoneFn {
        return [this, task](AggregateMap result, TaskReport report) {
            finish_task(task, std::move(result), std::move(report));
        };
    };
    try {
        d.recover_from_wal(make_done);
        ++chaos_stats_.host_recoveries;
    } catch (const StateError& e) {
        ++chaos_stats_.wal_rejected;
        warn("cluster: host ", h_idx, " WAL rejected (", e.what(),
             "); restarting the process with empty state");
        wal_store_.host_wal(h_idx).clear();
        d.recover_from_wal(make_done);
        // Durable state evaporated with the log: every active task this
        // host served cannot complete exactly. Fail them over guessing.
        std::vector<TaskId> doomed;
        for (const auto& [task, info] : active_tasks_) {
            bool involved = info.receiver_host == h_idx;
            for (std::uint32_t h : info.sender_hosts)
                involved = involved || h == h_idx;
            if (involved)
                doomed.push_back(task);
        }
        for (TaskId task : doomed)
            abort_active_task(task, TaskStatus::kHostCrashed,
                              strf("host %u write-ahead log corrupt", h_idx));
        pending_on_restart_.erase(h_idx);
        return;
    }
    // Deferred recovery work that fired while the host was down (e.g. a
    // switch reboot's receiver reset) composes with the rebuilt state.
    auto pit = pending_on_restart_.find(h_idx);
    if (pit != pending_on_restart_.end()) {
        std::vector<std::function<void()>> fns = std::move(pit->second);
        pending_on_restart_.erase(pit);
        for (auto& fn : fns)
            fn();
    }
    // Mid-send crash: the dead process's in-flight accounting is gone,
    // so which of its tuples the switch registers absorbed is
    // unknowable. Re-establish exactness from the source archives.
    for (const auto& [task, info] : active_tasks_) {
        if (d.has_send_archive(task)) {
            global_replay_reset();
            break;
        }
    }
}

void
AskCluster::crash_controller()
{
    if (controller_down_)
        return;
    controller_down_ = true;
    ++chaos_stats_.controller_crashes;
    // The controller process hosts the management endpoint: RPCs fail
    // (and retry) until it restarts.
    controller_->crash();
    mgmt_->set_outage(true);
}

void
AskCluster::restart_controller()
{
    if (!controller_down_)
        return;
    controller_down_ = false;
    try {
        controller_->recover_from_wal();
        ++chaos_stats_.controller_recoveries;
    } catch (const StateError& e) {
        ++chaos_stats_.wal_rejected;
        warn("cluster: controller WAL rejected (", e.what(),
             "); aborting every active task");
        // One corrupt journal poisons the whole fan-out: clear every
        // per-switch log and drop any partially-rebuilt journals so
        // every sub-controller restarts consistently empty.
        for (std::uint32_t s = 0; s < num_switches(); ++s)
            wal_store_.wal(controller_wal_name(SwitchId{s})).clear();
        controller_->crash();
        std::vector<TaskId> doomed;
        for (const auto& [task, info] : active_tasks_)
            doomed.push_back(task);
        for (TaskId task : doomed)
            abort_active_task(task, TaskStatus::kHostCrashed,
                              "controller write-ahead log corrupt");
    }
    // The endpoint returns — unless a switch is itself mid-reboot.
    mgmt_->set_outage(any_switch_offline());
}

void
AskCluster::clear_active_regions()
{
    for (const auto& [task, info] : active_tasks_) {
        for (auto& p : programs_) {
            if (p->find_task(task) == nullptr)
                continue;
            p->reset_epoch(task);
            p->read_region(task, 0, /*clear=*/true);
            if (config_.ask.shadow_copies)
                p->read_region(task, 1, /*clear=*/true);
        }
    }
}

void
AskCluster::global_replay_reset()
{
    if (active_tasks_.empty())
        return;
    std::uint64_t epoch = ++recovery_epoch_;

    // (1) Silence every live sender of every active task.
    for (const auto& [task, info] : active_tasks_) {
        for (std::uint32_t h : info.sender_hosts) {
            if (!daemons_[h]->crashed())
                daemons_[h]->abort_send(task);
        }
    }

    // (2) Discard every active task's partial switch state — on every
    // switch of the fabric. A crashed sender's in-flight accounting
    // died with it, so which of its frames the registers absorbed is
    // unknowable; the archives re-establish the aggregate from source.
    clear_active_regions();

    // (3) Fence every live channel so pre-reset frames stale-drop.
    for (const auto& d : daemons_) {
        if (d->crashed())
            continue;
        for (std::uint32_t c = 0; c < d->num_channels(); ++c) {
            DataChannel& ch = d->channel(c);
            controller_->fence_channel(ch.global_id(), ch.next_seq());
            ++chaos_stats_.channels_fenced;
        }
    }

    // (4) Reset receivers, drain the fabric, replay the archives — the
    // same choreography as a switch reboot, crash-aware via run_on_host.
    sim::SimTime drain_until =
        simulator_.now() + config_.ask.recovery_drain_ns;
    for (const auto& [task, info] : active_tasks_) {
        run_on_host(info.receiver_host,
                    [this, task, host = info.receiver_host, drain_until] {
                        daemons_[host]->prepare_replay(task, drain_until);
                    });
        for (std::uint32_t h : info.sender_hosts) {
            simulator_.schedule_at(drain_until, [this, task, h, epoch] {
                if (recovery_epoch_ != epoch || active_tasks_.count(task) == 0)
                    return;
                run_on_host(h, [this, task, h, epoch] {
                    if (recovery_epoch_ == epoch &&
                        active_tasks_.count(task) != 0)
                        daemons_[h]->replay_task(task);
                });
            });
        }
    }
}

ChaosStats
AskCluster::chaos_stats() const
{
    ChaosStats total = chaos_stats_;
    total.merge(mgmt_->chaos_stats());
    for (const auto& d : daemons_)
        total.merge(d->chaos_stats());
    return total;
}

HostStats
AskCluster::total_host_stats() const
{
    HostStats total;
    for (const auto& d : daemons_)
        total.merge(d->stats());
    return total;
}

SwitchAggStats
AskCluster::total_switch_stats() const
{
    SwitchAggStats total;
    for (const auto& p : programs_)
        total.merge(p->stats());
    return total;
}

void
AskCluster::enable_sampling(Nanoseconds interval_ns)
{
    ASK_ASSERT(sampler_ == nullptr, "sampling already enabled");
    sampler_ =
        std::make_unique<obs::Sampler>(simulator_, obs_.registry, interval_ns);

    // Goodput over the last period, from the fabric's cumulative byte
    // counter. Rate probes carry their own previous-sample state.
    sampler_->add_probe(
        "goodput_gbps",
        [this, prev_bytes = std::uint64_t{0},
         prev_t = simulator_.now()](sim::SimTime t) mutable {
            std::uint64_t bytes = network_.stats().bytes_sent;
            double gbps =
                t > prev_t ? 8.0 * static_cast<double>(bytes - prev_bytes) /
                                 static_cast<double>(t - prev_t)
                           : 0.0;
            prev_bytes = bytes;
            prev_t = t;
            return gbps;
        });

    // Per-channel core occupancy: busy-ns accumulated over the period.
    for (std::uint32_t h = 0; h < num_hosts(); ++h) {
        for (std::uint32_t c = 0; c < daemons_[h]->num_channels(); ++c) {
            DataChannel* ch = &daemons_[h]->channel(c);
            sampler_->add_probe(
                strf("occupancy.h%u.c%u", h, c),
                [ch, prev_busy = std::uint64_t{0},
                 prev_t = simulator_.now()](sim::SimTime t) mutable {
                    std::uint64_t busy = ch->busy_ns();
                    double frac =
                        t > prev_t
                            ? static_cast<double>(busy - prev_busy) /
                                  static_cast<double>(t - prev_t)
                            : 0.0;
                    prev_busy = busy;
                    prev_t = t;
                    return frac;
                });
        }
    }

    // Switch aggregation ratio over the last period: of the tuples that
    // entered any pipeline of the fabric, how many were consumed
    // in-network.
    sampler_->add_probe(
        "switch.agg_ratio",
        [this, prev_in = std::uint64_t{0},
         prev_agg = std::uint64_t{0}](sim::SimTime) mutable {
            std::uint64_t in = 0;
            std::uint64_t agg = 0;
            for (const auto& p : programs_) {
                in += p->stats().tuples_in;
                agg += p->stats().tuples_aggregated;
            }
            std::uint64_t din = in - prev_in;
            std::uint64_t dagg = agg - prev_agg;
            prev_in = in;
            prev_agg = agg;
            return din > 0 ? static_cast<double>(dagg) /
                                 static_cast<double>(din)
                           : 0.0;
        });

    // Sender congestion state, averaged over every channel.
    sampler_->add_probe("cwnd.mean", [this](sim::SimTime) {
        double sum = 0.0;
        std::uint32_t n = 0;
        for (const auto& d : daemons_) {
            for (std::uint32_t c = 0; c < d->num_channels(); ++c, ++n)
                sum += static_cast<double>(d->channel(c).cwnd());
        }
        return n > 0 ? sum / n : 0.0;
    });
    sampler_->add_probe("rto.mean_ns", [this](sim::SimTime) {
        double sum = 0.0;
        std::uint32_t n = 0;
        for (const auto& d : daemons_) {
            for (std::uint32_t c = 0; c < d->num_channels(); ++c, ++n)
                sum += static_cast<double>(d->channel(c).rto());
        }
        return n > 0 ? sum / n : 0.0;
    });
}

}  // namespace ask::core
