#include "ask/cluster.h"

#include <utility>

#include "common/logging.h"

namespace ask::core {

AskCluster::AskCluster(const ClusterConfig& config)
    : config_(config), network_(simulator_)
{
    config_.ask.validate();
    ASK_ASSERT(config_.num_hosts >= 1, "cluster needs at least one host");
    ASK_ASSERT(config_.num_hosts <= config_.ask.max_hosts,
               "more hosts than the switch provisions state for");

    switch_ = std::make_unique<pisa::PisaSwitch>(
        network_, config_.switch_stages, config_.switch_sram_per_stage);
    network_.attach(switch_.get());

    program_ = std::make_unique<AskSwitchProgram>(config_.ask, *switch_);
    controller_ = std::make_unique<AskSwitchController>(*program_);

    net::CostModel cost_model(config_.cost);
    for (std::uint32_t h = 0; h < config_.num_hosts; ++h) {
        daemons_.push_back(std::make_unique<AskDaemon>(
            config_.ask, cost_model, network_, h, switch_->node_id(),
            *controller_, config_.mgmt_latency_ns));
        network_.attach(daemons_.back().get());
        network_.connect(daemons_.back()->node_id(), switch_->node_id(),
                         config_.link_gbps, config_.link_propagation_ns,
                         config_.faults, config_.seed + h);
    }
}

AskCluster::~AskCluster() = default;

void
AskCluster::submit_task(TaskId task, std::uint32_t receiver_host,
                        std::vector<StreamSpec> streams,
                        std::uint32_t region_len, TaskDoneFn on_done)
{
    ASK_ASSERT(receiver_host < daemons_.size(), "bad receiver host");
    for (const auto& s : streams)
        ASK_ASSERT(s.host < daemons_.size(), "bad sender host");

    AskDaemon& receiver = *daemons_[receiver_host];
    net::NodeId receiver_node = receiver.node_id();
    auto n_senders = static_cast<std::uint32_t>(streams.size());

    // §3.1 workflow: the receiver registers the task and obtains a switch
    // region; once ready, sender daemons are notified over the control
    // channel and begin streaming.
    receiver.start_receive(
        task, n_senders, region_len, std::move(on_done),
        /*on_ready=*/[this, task, receiver_node,
                      streams = std::move(streams)]() mutable {
            simulator_.schedule_after(
                config_.notify_latency_ns,
                [this, task, receiver_node,
                 streams = std::move(streams)]() mutable {
                    for (auto& s : streams) {
                        daemons_[s.host]->submit_send(task, receiver_node,
                                                      std::move(s.stream));
                    }
                });
        });
}

TaskResult
AskCluster::run_task(TaskId task, std::uint32_t receiver_host,
                     std::vector<StreamSpec> streams,
                     std::uint32_t region_len)
{
    TaskResult out;
    submit_task(task, receiver_host, std::move(streams), region_len,
                [&out](AggregateMap result, TaskReport report) {
                    out.result = std::move(result);
                    out.report = report;
                    out.completed = true;
                });
    run();
    ASK_ASSERT(out.completed, "task ", task, " did not complete");
    return out;
}

HostStats
AskCluster::total_host_stats() const
{
    HostStats total;
    for (const auto& d : daemons_) {
        const HostStats& s = d->stats();
        total.data_packets_sent += s.data_packets_sent;
        total.long_packets_sent += s.long_packets_sent;
        total.retransmissions += s.retransmissions;
        total.tuples_sent += s.tuples_sent;
        total.tuples_aggregated_locally += s.tuples_aggregated_locally;
        total.packets_received += s.packets_received;
        total.duplicates_received += s.duplicates_received;
        total.fetch_tuples += s.fetch_tuples;
        total.swap_requests += s.swap_requests;
    }
    return total;
}

}  // namespace ask::core
