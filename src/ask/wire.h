/**
 * @file
 * The ASK wire protocol: header and payload codecs.
 *
 * Packet layout inside net::Packet::data:
 *
 *   [20-byte IP header (modeled)] [20-byte ASK header] [payload]
 *
 * ASK header fields (little-endian):
 *   u8  op_type     low 4 bits: packet type (PacketType);
 *                   high 4 bits: ReduceOp id of the task's channel.
 *                   Pre-op frames carried a bare type byte, so their
 *                   high nibble is 0 == kAdd (the old only op).
 *   u8  num_slots   DATA: number of payload slots (== num_aas)
 *   u16 channel_id  cluster-wide data-channel id
 *   u32 task_id     aggregation task
 *   u32 seq         channel sequence number (SWAP: the swap epoch)
 *   u64 bitmap      DATA: slot-occupancy bitmap (bit i == slot i valid)
 *
 * A DATA payload is a fixed array of 8-byte slots (4-byte key segment +
 * 4-byte value), one per aggregator array; blank slots are transmitted
 * (the hardware parses a fixed layout), which is why packing efficiency
 * (Fig. 8b) matters. LONG_DATA payloads carry explicit length-prefixed
 * tuples and bypass switch aggregation.
 */
#ifndef ASK_ASK_WIRE_H
#define ASK_ASK_WIRE_H

#include <cstdint>
#include <optional>
#include <vector>

#include "ask/types.h"
#include "net/packet.h"

namespace ask::core {

/** Serialized size of the ASK header (paper's 20-byte INA header). */
constexpr std::uint32_t kAskHeaderBytes = 20;

/** ASK packet types. */
enum class PacketType : std::uint8_t
{
    kData = 1,      ///< vectorized key-value tuples (switch aggregates)
    kLongData = 2,  ///< long-key tuples (switch forwards, marks seen)
    kAck = 3,       ///< per-seq acknowledgment (from switch or receiver)
    kFin = 4,       ///< sender-channel end-of-task marker
    kFinAck = 5,    ///< receiver's acknowledgment of a FIN
    kSwap = 6,      ///< shadow-copy swap request (seq = epoch)
    kSwapAck = 7,   ///< switch's acknowledgment of a swap (seq = epoch)
};

/** Parsed ASK header. */
struct AskHeader
{
    PacketType type = PacketType::kData;
    /** Reduction operator of the originating channel; validated against
     *  the installed region by the switch and against the task by the
     *  receiver, so a mismatched sender cannot corrupt an aggregate. */
    ReduceOp op = ReduceOp::kAdd;
    std::uint8_t num_slots = 0;
    ChannelId channel_id = 0;
    TaskId task_id = 0;
    Seq seq = 0;
    std::uint64_t bitmap = 0;
};

/** One DATA payload slot: a key segment and a value. */
struct WireSlot
{
    std::uint32_t seg = 0;
    Value value = 0;
};

/** Serialize a header (plus the modeled IP header) into a fresh buffer
 *  with room for `payload_bytes` of payload. */
std::vector<std::uint8_t> make_frame(const AskHeader& hdr,
                                     std::uint32_t payload_bytes);

/** Parse the ASK header; std::nullopt if the buffer is too short, the
 *  type nibble is not a known PacketType, or the op nibble is not a
 *  known ReduceOp (unknown op ids must be rejected, never folded). */
std::optional<AskHeader> parse_header(const std::vector<std::uint8_t>& data);

/** Rewrite the bitmap field of an already-serialized frame in place. */
void rewrite_bitmap(std::vector<std::uint8_t>& data, std::uint64_t bitmap);

/** Write slot `i` of a DATA frame. */
void write_slot(std::vector<std::uint8_t>& data, std::uint32_t i,
                const WireSlot& slot);

/** Read slot `i` of a DATA frame. */
WireSlot read_slot(const std::vector<std::uint8_t>& data, std::uint32_t i);

/**
 * Batch-read every slot named by `bitmap` into `out` (an array of at
 * least `num_slots` entries; slots whose bit is clear are left
 * untouched). One bounds check and one pass over the payload instead of
 * a per-slot call — the receive-side counterpart of write_slots().
 */
void read_slots(const std::vector<std::uint8_t>& data, std::uint64_t bitmap,
                std::uint32_t num_slots, WireSlot* out);

/** Batch-write every slot named by `bitmap` from `slots` into a DATA
 *  frame in one pass (the send-side counterpart of read_slots()). */
void write_slots(std::vector<std::uint8_t>& data, std::uint64_t bitmap,
                 std::uint32_t num_slots, const WireSlot* slots);

/** Serialize LONG_DATA tuples after the header of `data`. */
std::vector<std::uint8_t> make_long_frame(const AskHeader& hdr,
                                          const std::vector<KvTuple>& tuples);

/** Parse the tuples of a LONG_DATA frame. panic()s on a malformed
 *  frame: internal paths only hand it frames this codec built. */
std::vector<KvTuple> parse_long_tuples(const std::vector<std::uint8_t>& data);

/**
 * Bounds-checked LONG_DATA parse for untrusted buffers: std::nullopt on
 * any truncation or length-field corruption instead of aborting, and
 * never reads past data.size(). The fuzz tests feed this mangled
 * frames; the data path keeps the asserting parse_long_tuples.
 */
std::optional<std::vector<KvTuple>>
try_parse_long_tuples(const std::vector<std::uint8_t>& data);

/** Build a control-style packet (ACK/FIN/FIN_ACK/SWAP/SWAP_ACK): header
 *  only, no payload. */
net::Packet make_control_packet(net::NodeId src, net::NodeId dst,
                                const AskHeader& hdr);

}  // namespace ask::core

#endif  // ASK_ASK_WIRE_H
