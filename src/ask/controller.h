/**
 * @file
 * The switch control plane: allocates switch-memory regions to
 * aggregation tasks (workflow steps 3 and 12 of paper §3.1) and provides
 * the slow-path fetch/reset used at task teardown and shadow-copy swaps.
 */
#ifndef ASK_ASK_CONTROLLER_H
#define ASK_ASK_CONTROLLER_H

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ask/switch_program.h"
#include "ask/types.h"
#include "ask/wal.h"

namespace ask::core {

/**
 * Manages the aggregator index space [0, copy_size) shared by all AAs:
 * every task receives one contiguous slice visible in all AAs (and both
 * shadow copies). First-fit allocation with coalescing free.
 *
 * The control-plane entry points are virtual: a multi-rack fabric swaps
 * in a FabricController (ask/fabric.h) that fans each operation out to
 * one per-switch sub-controller, while daemons keep talking to the one
 * `AskSwitchController&` they were wired with.
 */
class AskSwitchController
{
  public:
    explicit AskSwitchController(AskSwitchProgram& program);

    virtual ~AskSwitchController() = default;

    /**
     * Allocate `len` aggregators per AA per copy for a task, bind the
     * region to reduction operator `op`, and install it on the data
     * plane. Throws ask::ConfigError when the switch program's access
     * plan does not declare `op` (e.g. kFloat on a narrow-word build).
     * @return the region, or std::nullopt when memory or epoch slots are
     *         exhausted.
     */
    virtual std::optional<TaskRegion> allocate(TaskId task,
                                               std::uint32_t len,
                                               ReduceOp op = ReduceOp::kAdd);

    /** Release a task's region and uninstall it. Throws StateError for
     *  a task with no journaled region (e.g. a double release across a
     *  crash) — callers on the runtime path catch and move on. */
    virtual void release(TaskId task);

    /**
     * Attach the controller's write-ahead log. Once set, every
     * allocation and release is journaled to the WAL *before* the
     * in-memory journal or the data plane changes, so a crashed
     * controller can rebuild its allocation state exactly.
     */
    void set_wal(Wal* wal) { wal_ = wal; }

    /**
     * Crash: lose the in-memory allocation journal and epoch-slot map
     * (the WAL, owned by the cluster's WalStore, survives).
     */
    virtual void crash();

    /**
     * Rebuild the allocation journal from the WAL (alloc/release record
     * fold), then re-install any journaled region the data plane no
     * longer carries (covers a switch reboot overlapping the crash).
     * Throws StateError when the WAL fails its digest check.
     * @return the number of regions rebuilt into the journal.
     */
    virtual std::uint32_t recover_from_wal();

    /**
     * Slow-path read of one shadow copy of the task's region (optionally
     * clearing it), decoding the aggregators into tuples. A fabric
     * fetch concatenates every switch's slice — the software tier-merge;
     * the receiver's aggregate_into() folds duplicates keyed across
     * switches into one value.
     */
    virtual KvStream fetch(TaskId task, std::uint32_t copy, bool clear);

    /** Aggregator entries a fetch of this task scans (cost accounting). */
    virtual std::uint64_t fetch_scan_entries(TaskId task) const;

    /** Current swap epoch of the task. */
    virtual std::uint32_t current_epoch(TaskId task) const;

    /** Free aggregators per AA per copy remaining (a fabric reports the
     *  minimum over its switches). */
    virtual std::uint32_t free_aggregators() const;

    /**
     * Failure recovery: the switch CPU rebooted and lost its task table
     * (and all register state). Re-install every journaled region on the
     * data plane. The controller's journal — not switch memory — is the
     * source of truth for allocations, which is what makes this safe.
     * @return the number of regions re-installed.
     */
    virtual std::uint32_t reinstall_after_reboot();

    /** Recovery passthrough: see AskSwitchProgram::fence_channel. A
     *  fabric fences the channel on every switch provisioning it. */
    virtual void fence_channel(ChannelId channel, Seq next_seq);

    /** Degraded-mode passthrough: see AskSwitchProgram::probe_packet.
     *  A fabric merges the per-switch verdicts: a slot consumed on any
     *  switch of the path is consumed. */
    virtual AskSwitchProgram::ProbeResult probe_packet(ChannelId channel,
                                                       Seq seq) const;

    /** Switches this control plane manages (1 for the classic ToR). */
    virtual std::uint32_t num_switches() const { return 1; }

    /**
     * Tuples fetched from each switch for `task` (slow-path drains:
     * finalize and swap commits), indexed by SwitchId. Survives
     * release() so completion reports can attribute the result to its
     * owning switches; reset when the task id is re-allocated.
     */
    virtual std::vector<std::uint64_t> fetched_tally(TaskId task) const;

    AskSwitchProgram& program() { return program_; }

  private:
    AskSwitchProgram& program_;
    std::uint32_t capacity_;
    /**
     * Allocation journal, base -> (region, task). Holds the full region
     * (not just the length) so a post-reboot reinstall can restore the
     * exact epoch-slot bindings the senders' traffic still references.
     */
    std::map<std::uint32_t, std::pair<TaskRegion, TaskId>> allocated_;
    std::vector<bool> epoch_slot_used_;
    /** Tuples drained per task (see fetched_tally). */
    std::unordered_map<TaskId, std::uint64_t> fetched_;
    Wal* wal_ = nullptr;
};

}  // namespace ask::core

#endif  // ASK_ASK_CONTROLLER_H
