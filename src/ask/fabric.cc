#include "ask/fabric.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace ask::core {

std::string
controller_wal_name(SwitchId s)
{
    if (s.value() == 0)
        return "controller";
    return "controller.s" + std::to_string(s.value());
}

FabricController::FabricController(std::vector<AskSwitchProgram*> programs)
    : AskSwitchController(*programs.at(0)), programs_(std::move(programs))
{
    subs_.reserve(programs_.size());
    for (AskSwitchProgram* p : programs_) {
        ASK_ASSERT(p != nullptr, "fabric controller over a null program");
        subs_.push_back(std::make_unique<AskSwitchController>(*p));
    }
}

void
FabricController::attach_wals(WalStore& store, std::uint64_t* append_counter)
{
    for (std::size_t s = 0; s < subs_.size(); ++s) {
        Wal& wal = store.wal(
            controller_wal_name(SwitchId{static_cast<std::uint32_t>(s)}));
        wal.set_append_counter(append_counter);
        subs_[s]->set_wal(&wal);
    }
}

std::optional<TaskRegion>
FabricController::allocate(TaskId task, std::uint32_t len, ReduceOp op)
{
    // All-or-nothing: a task aggregates on every switch its packets
    // cross, so a region that fits only some switches is useless.
    // Sub-controllers see identical allocate/release sequences, so
    // first-fit lands every task at the same base fabric-wide — but the
    // rollback below keeps correctness independent of that symmetry.
    std::optional<TaskRegion> first;
    std::size_t done = 0;
    for (; done < subs_.size(); ++done) {
        std::optional<TaskRegion> r = subs_[done]->allocate(task, len, op);
        if (!r.has_value())
            break;
        if (done == 0)
            first = r;
        else
            ASK_ASSERT(r->base == first->base && r->len == first->len &&
                           r->epoch_slot == first->epoch_slot &&
                           r->op == first->op,
                       "fabric switches diverged on task ", task,
                       "'s region placement");
    }
    if (done == subs_.size())
        return first;
    for (std::size_t s = 0; s < done; ++s)
        subs_[s]->release(task);
    return std::nullopt;
}

void
FabricController::release(TaskId task)
{
    // Attempt every switch even if one throws (a double release across
    // a crash must not strand regions on the remaining switches), then
    // surface the first failure.
    std::optional<StateError> deferred;
    for (auto& sub : subs_) {
        try {
            sub->release(task);
        } catch (const StateError& e) {
            if (!deferred.has_value())
                deferred = e;
        }
    }
    if (deferred.has_value())
        throw *deferred;
}

void
FabricController::crash()
{
    for (auto& sub : subs_)
        sub->crash();
}

std::uint32_t
FabricController::recover_from_wal()
{
    // Each switch's journal replays independently; a digest mismatch on
    // any of them throws and the cluster aborts the affected tasks.
    std::uint32_t regions = 0;
    for (auto& sub : subs_)
        regions += sub->recover_from_wal();
    return regions;
}

KvStream
FabricController::fetch(TaskId task, std::uint32_t copy, bool clear)
{
    // Concatenate the per-switch slices: the software tier-merge. The
    // caller folds keys split across switches with merge_stream_into()
    // under the region's bound ReduceOp — a concatenation is op-agnostic,
    // so min/max regions tier-merge just as correctly as sums.
    KvStream out;
    for (auto& sub : subs_) {
        KvStream part = sub->fetch(task, copy, clear);
        out.insert(out.end(), part.begin(), part.end());
    }
    return out;
}

std::uint64_t
FabricController::fetch_scan_entries(TaskId task) const
{
    std::uint64_t entries = 0;
    for (const auto& sub : subs_)
        entries += sub->fetch_scan_entries(task);
    return entries;
}

std::uint32_t
FabricController::current_epoch(TaskId task) const
{
    // Epochs advance in lock-step (and swaps are disabled in fabric
    // mode); any switch's answer is the fabric's.
    return subs_.front()->current_epoch(task);
}

std::uint32_t
FabricController::free_aggregators() const
{
    std::uint32_t free = subs_.front()->free_aggregators();
    for (const auto& sub : subs_)
        free = std::min(free, sub->free_aggregators());
    return free;
}

std::uint32_t
FabricController::reinstall_after_reboot()
{
    // Idempotent per switch: only a switch whose data plane lost a
    // journaled binding (i.e. the one that rebooted) re-installs.
    std::uint32_t count = 0;
    for (auto& sub : subs_)
        count += sub->reinstall_after_reboot();
    return count;
}

void
FabricController::fence_channel(ChannelId channel, Seq next_seq)
{
    // Fence everywhere the channel has reliability state: its owning
    // ToR and the aggregation tier.
    for (std::size_t s = 0; s < subs_.size(); ++s)
        if (programs_[s]->provisions(channel))
            subs_[s]->fence_channel(channel, next_seq);
}

AskSwitchProgram::ProbeResult
FabricController::probe_packet(ChannelId channel, Seq seq) const
{
    // Merge the per-switch verdicts. A slot any switch consumed was
    // aggregated (the consumer ACKs or forwards on the packet's
    // behalf), so `remaining` is the intersection over the switches
    // that observed the packet; `observed` is the union.
    AskSwitchProgram::ProbeResult merged;
    for (std::size_t s = 0; s < subs_.size(); ++s) {
        if (!programs_[s]->provisions(channel))
            continue;
        AskSwitchProgram::ProbeResult r = subs_[s]->probe_packet(channel, seq);
        if (!r.observed)
            continue;
        merged.remaining = merged.observed ? (merged.remaining & r.remaining)
                                           : r.remaining;
        merged.observed = true;
    }
    return merged;
}

std::vector<std::uint64_t>
FabricController::fetched_tally(TaskId task) const
{
    std::vector<std::uint64_t> tally;
    tally.reserve(subs_.size());
    for (const auto& sub : subs_)
        tally.push_back(sub->fetched_tally(task).at(0));
    return tally;
}

}  // namespace ask::core
