/**
 * @file
 * Sender-side packet construction (paper §3.2.2).
 *
 * Tuples are bucketed into per-slot FIFO queues by the key-space
 * partition: short keys into their subspace's slot queue, medium keys
 * into their group's queue, long keys into a bypass queue. Each DATA
 * packet takes the head of every queue, so a key always occupies the
 * same slot (and hence the same AA) in every packet; skewed datasets
 * leave slots blank, which is exactly the packing-efficiency effect
 * Figure 8(b) measures.
 */
#ifndef ASK_ASK_PACKET_BUILDER_H
#define ASK_ASK_PACKET_BUILDER_H

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "ask/config.h"
#include "ask/key_space.h"
#include "ask/types.h"
#include "ask/wire.h"

namespace ask::core {

/** One DATA packet's worth of slots, before framing. */
struct BuiltData
{
    /** All num_aas slots; blanks are zero-filled (they are transmitted). */
    std::vector<WireSlot> slots;
    /** Slot-occupancy bitmap. */
    std::uint64_t bitmap = 0;
    /** Distinct tuples carried (a medium tuple counts once). */
    std::uint32_t valid_tuples = 0;
};

/** Builds the outgoing packet sequence for one task's stream. */
class PacketBuilder
{
  public:
    explicit PacketBuilder(const KeySpace& key_space);

    /** Add one tuple to its queue. */
    void enqueue(const KvTuple& tuple);

    /** Add a whole stream. */
    void enqueue(const KvStream& stream);

    /** True while any DATA-eligible (short/medium) tuples remain. */
    bool has_data() const { return queued_data_ > 0; }

    /** True while long-key tuples remain. */
    bool has_long() const { return !long_queue_.empty(); }

    bool empty() const { return !has_data() && !has_long(); }

    /**
     * Build the next DATA packet: pops at most one tuple per slot queue.
     * std::nullopt when no short/medium tuples remain.
     */
    std::optional<BuiltData> next_data();

    /**
     * Scratch-reusing form of next_data() for the send hot path: fills
     * `out` (reusing its slot vector's capacity, so a caller draining a
     * stream into the same BuiltData allocates nothing per packet) and
     * returns true, or returns false when no short/medium tuples remain.
     * Produces bit-identical packets to next_data().
     */
    bool next_data_into(BuiltData& out);

    /**
     * Pop the next batch of long-key tuples whose serialized size fits
     * `max_payload_bytes`. std::nullopt when none remain.
     */
    std::optional<std::vector<KvTuple>> next_long_batch(
        std::uint32_t max_payload_bytes);

    /**
     * Degraded mode: pop the next batch of tuples of ANY class for the
     * host-only bypass path — the long queue first, then the
     * short/medium slot queues. Same wire format and size accounting as
     * next_long_batch. std::nullopt when the builder is empty.
     */
    std::optional<std::vector<KvTuple>> next_bypass_batch(
        std::uint32_t max_payload_bytes);

    /**
     * Degraded mode: route a tuple through the bypass queue regardless
     * of its key class (used when abandoned in-flight DATA is converted
     * to host-side aggregation).
     */
    void enqueue_bypass(const KvTuple& tuple) { long_queue_.push_back(tuple); }

    /** Tuples enqueued so far, by class. */
    std::uint64_t short_enqueued() const { return short_enqueued_; }
    std::uint64_t medium_enqueued() const { return medium_enqueued_; }
    std::uint64_t long_enqueued() const { return long_enqueued_; }

  private:
    const KeySpace& key_space_;
    const AskConfig& config_;

    /** One queue per short slot. */
    std::vector<std::deque<KvTuple>> short_queues_;
    /** One queue per medium group. */
    std::vector<std::deque<KvTuple>> medium_queues_;
    std::deque<KvTuple> long_queue_;
    std::uint64_t queued_data_ = 0;

    std::uint64_t short_enqueued_ = 0;
    std::uint64_t medium_enqueued_ = 0;
    std::uint64_t long_enqueued_ = 0;
};

}  // namespace ask::core

#endif  // ASK_ASK_PACKET_BUILDER_H
