#include "pisa/stage.h"

#include "common/logging.h"

namespace ask::pisa {

Stage::Stage(Pipeline* pipeline, std::size_t index,
             std::size_t sram_budget_bytes)
    : pipeline_(pipeline), index_(index), sram_budget_(sram_budget_bytes)
{
}

std::size_t
Stage::sram_used_bytes() const
{
    std::size_t used = 0;
    for (const auto& a : arrays_)
        used += a->sram_bytes();
    return used;
}

RegisterArray*
Stage::add_register_array(std::string name, std::size_t num_entries,
                          std::uint32_t width_bits)
{
    if (arrays_.size() >= kMaxRegisterArraysPerStage) {
        fail_config("stage ", index_, " already hosts ",
                    kMaxRegisterArraysPerStage,
                    " register arrays; cannot place '", name, "'");
    }
    auto arr =
        std::make_unique<RegisterArray>(std::move(name), num_entries, width_bits);
    if (sram_used_bytes() + arr->sram_bytes() > sram_budget_) {
        fail_config("stage ", index_, " SRAM exhausted placing '", arr->name(),
                    "': used ", sram_used_bytes(), " + ", arr->sram_bytes(),
                    " > budget ", sram_budget_);
    }
    arr->stage_ = this;
    arrays_.push_back(std::move(arr));
    return arrays_.back().get();
}

}  // namespace ask::pisa
