/**
 * @file
 * A stateful register array on a PISA match-action stage.
 *
 * This models the Tofino hardware restriction the whole ASK switch design
 * is shaped by (paper §2.2.1): during one packet's pass through the
 * pipeline, each register array may be accessed *once*, and that access is
 * a read-modify-write of a *single* index (one stateful-ALU operation).
 * The model enforces the restriction at runtime — a program that touches
 * an array twice in one pass, or walks back to an earlier stage, panics —
 * so passing the test suite proves the ASK program is PISA-legal on the
 * packets it ran. The static verifier (`pisa/verify/`) complements this
 * with an install-time proof over *every* path, and with
 * ASK_VERIFY_ACCESSES armed each dynamic access is additionally
 * cross-checked against that proof's access plan.
 */
#ifndef ASK_PISA_REGISTER_ARRAY_H
#define ASK_PISA_REGISTER_ARRAY_H

#include <cstdint>
#include <string>
#include <vector>

namespace ask::pisa {

class Stage;

/**
 * An array of fixed-width registers living in one stage's SRAM.
 *
 * Data-plane access goes through rmw(); control-plane (slow path) access
 * through cp_read()/cp_write(), which are not subject to the per-pass
 * discipline (the real switch CPU accesses SRAM out of band).
 */
class RegisterArray
{
  public:
    /**
     * @param name       unique name within the pipeline (for lookups).
     * @param num_entries number of registers.
     * @param width_bits  register width; 1..64.
     */
    RegisterArray(std::string name, std::size_t num_entries,
                  std::uint32_t width_bits);

    /**
     * Data-plane read-modify-write of one register during the current
     * pass. `fn` receives the register value by reference and may update
     * it. Enforces: at most one rmw per pass, monotonically increasing
     * stage order within the pass, index in range, and the written value
     * fitting the register width.
     *
     * @return the value left in the register after `fn` runs.
     */
    template <typename Fn>
    std::uint64_t
    rmw(std::size_t index, Fn&& fn)
    {
        check_access(index);
        std::uint64_t& slot = values_[index];
        fn(slot);
        check_width(slot);
        return slot;
    }

    /** Control-plane read (no pass discipline). */
    std::uint64_t cp_read(std::size_t index) const;

    /** Control-plane write (no pass discipline). */
    void cp_write(std::size_t index, std::uint64_t value);

    /** Control-plane bulk reset of a contiguous region to zero. */
    void cp_clear(std::size_t first, std::size_t count);

    const std::string& name() const { return name_; }
    std::size_t size() const { return values_.size(); }
    std::uint32_t width_bits() const { return width_bits_; }

    /** SRAM footprint in bytes (width rounded up to whole bytes). */
    std::size_t sram_bytes() const;

    /** Number of data-plane accesses ever made (for utilization stats). */
    std::uint64_t access_count() const { return access_count_; }

  private:
    friend class Stage;
    friend class Pipeline;

    /** Defined inline at the bottom of pipeline.h (it dereferences the
     *  owning stage and pipeline, which are incomplete here). */
    void check_access(std::size_t index);

    void
    check_width(std::uint64_t value) const
    {
        if (value > max_value_) [[unlikely]]
            width_overflow(value);
    }

    [[noreturn]] void width_overflow(std::uint64_t value) const;

    std::string name_;
    std::uint32_t width_bits_;
    std::uint64_t max_value_;
    std::vector<std::uint64_t> values_;

    Stage* stage_ = nullptr;        ///< set when added to a stage
    std::uint64_t pass_epoch_ = 0;  ///< last pass this array was accessed in
    std::uint64_t access_count_ = 0;
};

}  // namespace ask::pisa

#endif  // ASK_PISA_REGISTER_ARRAY_H
