#include "pisa/register_array.h"

#include <algorithm>

#include "common/logging.h"
#include "pisa/pipeline.h"
#include "pisa/stage.h"

namespace ask::pisa {

RegisterArray::RegisterArray(std::string name, std::size_t num_entries,
                             std::uint32_t width_bits)
    : name_(std::move(name)),
      width_bits_(width_bits),
      values_(num_entries, 0)
{
    if (width_bits < 1 || width_bits > 64)
        fail_config("register width must be 1..64 bits: ", name_);
    if (num_entries == 0)
        fail_config("empty register array: ", name_);
    max_value_ = width_bits == 64 ? ~0ULL : ((1ULL << width_bits) - 1);
}

void
RegisterArray::width_overflow(std::uint64_t value) const
{
    panic("value 0x", std::hex, value, " overflows ", std::dec,
          width_bits_, "-bit register in '", name_, "'");
}

std::uint64_t
RegisterArray::cp_read(std::size_t index) const
{
    ASK_ASSERT(index < values_.size(), "cp_read out of range in '", name_, "'");
    return values_[index];
}

void
RegisterArray::cp_write(std::size_t index, std::uint64_t value)
{
    ASK_ASSERT(index < values_.size(), "cp_write out of range in '", name_, "'");
    check_width(value);
    values_[index] = value;
}

void
RegisterArray::cp_clear(std::size_t first, std::size_t count)
{
    ASK_ASSERT(first + count <= values_.size(),
               "cp_clear region out of range in '", name_, "'");
    std::fill(values_.begin() + static_cast<std::ptrdiff_t>(first),
              values_.begin() + static_cast<std::ptrdiff_t>(first + count), 0);
}

std::size_t
RegisterArray::sram_bytes() const
{
    // Entries are bit-packed in SRAM (a 1-bit array of W entries costs
    // W bits, matching the paper's 256 + 256x32 bit = 1056 B per-channel
    // accounting).
    return (values_.size() * width_bits_ + 7) / 8;
}

}  // namespace ask::pisa
