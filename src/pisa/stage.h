/**
 * @file
 * One match-action stage of a PISA pipeline.
 *
 * Stages have isolated, scarce SRAM (Tofino3: 1280 KiB per stage) and can
 * host at most four register arrays (paper §3.2.1). Both limits are
 * enforced when a switch program declares its state.
 */
#ifndef ASK_PISA_STAGE_H
#define ASK_PISA_STAGE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pisa/register_array.h"

namespace ask::pisa {

class Pipeline;

/** Default per-stage SRAM budget (Tofino3). */
constexpr std::size_t kDefaultStageSramBytes = 1280 * 1024;

/** Hardware limit on register arrays per stage. */
constexpr std::size_t kMaxRegisterArraysPerStage = 4;

/** A match-action stage: a slice of SRAM hosting register arrays. */
class Stage
{
  public:
    Stage(Pipeline* pipeline, std::size_t index, std::size_t sram_budget_bytes);

    Stage(const Stage&) = delete;
    Stage& operator=(const Stage&) = delete;

    /**
     * Declare a register array on this stage.
     * Throws ask::ConfigError if the stage is out of array slots or
     * SRAM: these are install-time configuration errors a user can hit
     * by over-provisioning, and they must leave the process alive (the
     * verifier sweep compares rejects against the static proof).
     * @return the array, owned by the stage.
     */
    RegisterArray* add_register_array(std::string name,
                                      std::size_t num_entries,
                                      std::uint32_t width_bits);

    std::size_t index() const { return index_; }
    Pipeline* pipeline() const { return pipeline_; }

    std::size_t sram_budget_bytes() const { return sram_budget_; }
    std::size_t sram_used_bytes() const;
    std::size_t array_count() const { return arrays_.size(); }
    RegisterArray* array(std::size_t i) const { return arrays_.at(i).get(); }

  private:
    Pipeline* pipeline_;
    std::size_t index_;
    std::size_t sram_budget_;
    std::vector<std::unique_ptr<RegisterArray>> arrays_;
};

}  // namespace ask::pisa

#endif  // ASK_PISA_STAGE_H
