#include "pisa/pipeline.h"

#include "common/logging.h"
#include "pisa/verify/oracle.h"

namespace ask::pisa {

Pipeline::Pipeline(std::size_t num_stages, std::size_t sram_per_stage)
{
    if (num_stages == 0)
        fail_config("pipeline needs at least one stage");
    stages_.reserve(num_stages);
    for (std::size_t i = 0; i < num_stages; ++i)
        stages_.push_back(std::make_unique<Stage>(this, i, sram_per_stage));
}

void
Pipeline::begin_pass()
{
    ++pass_epoch_;
    pass_stage_cursor_ = 0;
    if (oracle_ != nullptr)
        oracle_->begin_pass();
}

void
Pipeline::set_access_oracle(verify::AccessOracle* oracle)
{
    oracle_ = oracle;
}

void
Pipeline::check_predicted_armed(const std::string& array_name)
{
    std::string diag;
    if (!oracle_->on_access(array_name, &diag))
        panic("ASK_VERIFY_ACCESSES: ", diag);
}

void
Pipeline::touch_stage_backwards(std::size_t stage_index) const
{
    panic("pipeline pass went backwards: stage ", stage_index,
          " touched after stage ", pass_stage_cursor_);
}

void
Pipeline::wipe_registers()
{
    for (const auto& st : stages_) {
        for (std::size_t i = 0; i < st->array_count(); ++i) {
            RegisterArray* arr = st->array(i);
            arr->cp_clear(0, arr->size());
        }
    }
}

RegisterArray*
Pipeline::find_array(const std::string& name) const
{
    for (const auto& st : stages_) {
        for (std::size_t i = 0; i < st->array_count(); ++i) {
            if (st->array(i)->name() == name)
                return st->array(i);
        }
    }
    return nullptr;
}

std::size_t
Pipeline::sram_used_bytes() const
{
    std::size_t used = 0;
    for (const auto& st : stages_)
        used += st->sram_used_bytes();
    return used;
}

std::size_t
Pipeline::sram_budget_bytes() const
{
    std::size_t budget = 0;
    for (const auto& st : stages_)
        budget += st->sram_budget_bytes();
    return budget;
}

}  // namespace ask::pisa
