/**
 * @file
 * The programmable switch: a network node that runs a SwitchProgram over
 * a PISA pipeline for every traversing packet.
 */
#ifndef ASK_PISA_PISA_SWITCH_H
#define ASK_PISA_PISA_SWITCH_H

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "net/network.h"
#include "net/packet.h"
#include "pisa/pipeline.h"

namespace ask::obs {
class MetricsRegistry;
}  // namespace ask::obs

namespace ask::pisa {

/**
 * Output interface handed to a SwitchProgram for each packet: the program
 * can emit packets toward neighbors (forward, reflect an ACK, mirror) or
 * emit nothing (drop/consume).
 */
class Emitter
{
  public:
    virtual ~Emitter() = default;

    /** Send `pkt` out of the port facing `next_hop`. */
    virtual void emit(net::NodeId next_hop, net::Packet pkt) = 0;
};

/**
 * A data-plane program: parses the packet, manipulates register arrays
 * (under the pass discipline), and emits output packets.
 */
class SwitchProgram
{
  public:
    virtual ~SwitchProgram() = default;

    /**
     * Process one packet within the already-opened pipeline pass.
     * The packet is consumed; outputs go through `emit`.
     */
    virtual void process(net::Packet pkt, Emitter& emit) = 0;

    virtual std::string name() const = 0;
};

/** Switch-level counters. */
struct SwitchStats
{
    std::uint64_t packets_in = 0;
    std::uint64_t packets_out = 0;
    std::uint64_t passes = 0;
    std::uint64_t dropped_offline = 0;  ///< arrived while the switch was down
};

/**
 * The switch node. Owns the pipeline; the program is installed after
 * construction (it declares its register arrays against the pipeline).
 *
 * PISA pipelines run at line rate, so no queueing is modeled inside the
 * switch; each packet is charged a fixed pipeline latency.
 */
class PisaSwitch : public net::Node
{
  public:
    /**
     * @param network fabric the switch is attached to.
     * @param num_stages stages in the (possibly chained) pipeline.
     * @param sram_per_stage per-stage SRAM budget.
     * @param pipeline_latency_ns ingress-to-egress latency per pass.
     */
    PisaSwitch(net::Network& network,
               std::size_t num_stages = kDefaultStagesPerPipeline,
               std::size_t sram_per_stage = kDefaultStageSramBytes,
               Nanoseconds pipeline_latency_ns = 400);

    /** Install the data-plane program (must outlive the switch's use). */
    void install(SwitchProgram* program);

    /**
     * L3 routing: emit packets for `dst` out of the port facing
     * `next_hop` (multi-switch topologies; without an entry, `dst` is
     * assumed adjacent). Control-plane programmed, like any FIB.
     */
    void set_route(net::NodeId dst, net::NodeId next_hop);

    /** Resolve the egress neighbor for a destination. */
    net::NodeId next_hop(net::NodeId dst) const;

    /**
     * Power state (chaos injection): while offline, every arriving
     * packet is dropped — a crashed or rebooting switch. Register state
     * is wiped separately via Pipeline::wipe_registers(); a real reboot
     * does both.
     */
    void set_offline(bool offline) { offline_ = offline; }
    bool offline() const { return offline_; }

    /** The pipeline, for programs declaring state and for the control
     *  plane (slow-path reads/resets). */
    Pipeline& pipeline() { return pipeline_; }

    /** The simulation clock (programs stamp trace spans with it). */
    sim::Simulator& simulator() { return network_.simulator(); }

    // net::Node
    void receive(net::Packet pkt) override;
    std::string name() const override { return "pisa-switch"; }

    const SwitchStats& stats() const { return stats_; }
    Nanoseconds pipeline_latency_ns() const { return pipeline_latency_ns_; }

    /** Expose the switch counters under `prefix` (owner "pisa"). */
    void register_metrics(obs::MetricsRegistry& registry,
                          const std::string& prefix = "pisa.") const;

  private:
    class PortEmitter;

    net::Network& network_;
    Pipeline pipeline_;
    SwitchProgram* program_ = nullptr;
    bool offline_ = false;
    Nanoseconds pipeline_latency_ns_;
    SwitchStats stats_;
    std::unordered_map<net::NodeId, net::NodeId> routes_;
};

}  // namespace ask::pisa

#endif  // ASK_PISA_PISA_SWITCH_H
