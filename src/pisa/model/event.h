/**
 * @file
 * Core vocabulary of the semantic model checker (src/pisa/model/).
 *
 * The checker explores small protocol automata extracted from the real
 * ASK components. Every automaton shares one event alphabet — the
 * fault/interleaving actions of the reliability mechanism (§3.3) and
 * its recovery choreography — and one mutation catalogue: single
 * protocol defects the mutation harness seeds to prove the checker can
 * actually see the bugs it claims to rule out.
 */
#ifndef ASK_PISA_MODEL_EVENT_H
#define ASK_PISA_MODEL_EVENT_H

#include <cstdint>
#include <string>
#include <vector>

namespace ask::pisa::model {

/** One scheduler/fault action. `arg` selects the object it acts on
 *  (a network-packet index or a payload index), 0 when unused. */
enum class EventKind : std::uint8_t
{
    kSend,            ///< sender emits the next unsent payload
    kDeliver,         ///< network delivers packet `arg`
    kDrop,            ///< network loses packet `arg`
    kDuplicate,       ///< network duplicates packet `arg`
    kRetransmit,      ///< sender retransmits payload `arg` (same seq)
    kInjectMismatch,  ///< a frame with a foreign ReduceOp id appears
    kSwap,            ///< control plane swaps the shadow copies
    kFin,             ///< all ACKed: FIN + fetch of both copies
    kSwitchReboot,    ///< reboot + reinstall + fence + full replay
    kHostCrash,       ///< sender host crash + WAL replay + re-fence
};

const char* event_kind_name(EventKind kind);

struct Event
{
    EventKind kind = EventKind::kSend;
    std::uint8_t arg = 0;

    bool
    operator==(const Event& o) const
    {
        return kind == o.kind && arg == o.arg;
    }
};

/** A schedule: the events applied from the initial state, in order. */
using Trace = std::vector<Event>;

/**
 * The seeded protocol defects of the mutation harness. Each mutant is a
 * single localized change to one automaton's transition function; the
 * acceptance gate is that exploration finds a counterexample trace for
 * every one (and none for kNone).
 */
enum class Mutation : std::uint8_t
{
    kNone = 0,
    // ---- channel automaton ----------------------------------------------
    kSkipCompactRepair,    ///< fence writes max_seq but not the parity bits
    kSkipFence,            ///< recovery wipes windows but never re-fences
    kFenceOffByOne,        ///< fence re-arms at next_seq - 1
    kDoubleLiftCount,      ///< fetched partials are lifted again (kCount)
    kObserveBeforeOpCheck, ///< op-mismatched frames touch the window first
    kDuplicateConsumes,    ///< duplicate verdict still merges the payload
    kStaleConsumes,        ///< stale verdict still merges the payload
    kAckWithoutConsume,    ///< fresh frame ACKed but never aggregated
    kSkipWalCheckpoint,    ///< sender never journals its seq promise
    kReplayOnlyUnacked,    ///< post-crash replay skips ACKed payloads
    kSwapDrainLoses,       ///< SWAP clears the retired copy without merging
    kMismatchConsumes,     ///< op check ignored: foreign frames aggregate
    // ---- routing automaton ----------------------------------------------
    kTorConsumesResidual,  ///< leaf ToR consumes instead of forwarding
    kLeafSkipsObserve,     ///< leaf ToR forwards without window observe
};

const char* mutation_name(Mutation m);

/** True for mutations of the fabric-routing automaton. */
inline bool
mutation_is_routing(Mutation m)
{
    return m == Mutation::kTorConsumesResidual ||
           m == Mutation::kLeafSkipsObserve;
}

/** Every mutation the harness seeds, in catalogue order. */
std::vector<Mutation> all_mutations();

/**
 * Canonical little-endian byte encoding used for state hashing: two
 * states are the same vertex of the explored graph iff their encodings
 * are byte-equal.
 */
class ByteWriter
{
  public:
    void
    u8(std::uint8_t v)
    {
        out_.push_back(static_cast<char>(v));
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }

    void
    bytes(const std::vector<std::uint8_t>& v)
    {
        u32(static_cast<std::uint32_t>(v.size()));
        for (std::uint8_t b : v)
            u8(b);
    }

    std::string
    take()
    {
        return std::move(out_);
    }

  private:
    std::string out_;
};

}  // namespace ask::pisa::model

#endif  // ASK_PISA_MODEL_EVENT_H
