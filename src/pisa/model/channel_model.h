/**
 * @file
 * The end-to-end channel automaton: one sender channel, one switch
 * (both receive-window designs in lockstep), one receiver, one task.
 *
 * The automaton is extracted from the real components, not re-modeled:
 * the switch window state IS a core::PlainSeen plus a core::CompactSeen
 * (the production classes), advanced through their public observe /
 * wipe / repair API exactly as AskSwitchProgram drives its registers;
 * value flow uses core::reduce_lift / apply_op (the production
 * algebra); and the recovery events replay AskCluster's choreography
 * verbatim (abort senders -> clear regions -> fence at the cursor ->
 * reset the receiver partial -> replay the full archive with new
 * sequence numbers; see cluster.cc global_replay_reset).
 *
 * What is abstracted: payload slots stand in for whole key-value
 * frames (exactly-once per frame implies exactly-once per tuple — the
 * switch consumes frames atomically), the WAL checkpoint interval is 1
 * (every send renews the promise; the real K=64 only coarsens the same
 * append-before-allocate rule), FIN+fetch and the recovery choreography
 * are atomic events (the real control plane serializes them), and
 * timers are scheduler nondeterminism (retransmit is always enabled
 * within budget).
 *
 * Checked on every reachable state:
 *  - parity-equivalence : plain and compact verdicts agree per observe
 *  - exactly-once       : each payload merged at most once, anywhere
 *  - cursor-dominance   : every in-flight DATA seq < sender next_seq
 *  - window-bound       : switch max_seq <= next_seq + W - 1
 *  - wal-promise        : next_seq <= journaled resume point
 *  - clear-ahead        : plain slot one window ahead of max_seq clear
 * and on every completed (FIN) state:
 *  - completion / lift-once : each payload merged exactly once and the
 *    receiver aggregate equals the reference fold (catches double or
 *    missing lifts for kCount).
 */
#ifndef ASK_PISA_MODEL_CHANNEL_MODEL_H
#define ASK_PISA_MODEL_CHANNEL_MODEL_H

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ask/seen_window.h"
#include "ask/types.h"
#include "pisa/model/event.h"
#include "pisa/model/explorer.h"

namespace ask::pisa::model {

/** Exploration bounds of the channel automaton. */
struct ChannelBounds
{
    std::uint32_t payloads = 2;        ///< distinct logical contributions
    std::uint32_t window = 2;          ///< W of both seen-window designs
    std::uint32_t net_capacity = 3;    ///< packets concurrently in flight
    std::uint32_t max_retransmits = 1; ///< per payload per incarnation
    std::uint32_t max_duplicates = 1;  ///< network duplications, whole run
    std::uint32_t max_mismatches = 1;  ///< op-mismatched frame injections
    std::uint32_t max_reboots = 1;     ///< switch reboot+reinstall events
    std::uint32_t max_crashes = 1;     ///< sender host crash+replay events
    std::uint32_t max_swaps = 1;       ///< shadow-copy SWAPs
    core::ReduceOp op = core::ReduceOp::kAdd;
};

class ChannelModel
{
  public:
    /** Packet kinds on the modeled wire. */
    static constexpr std::uint8_t kData = 0;
    static constexpr std::uint8_t kAck = 1;
    static constexpr std::uint8_t kMismatch = 2;  ///< foreign-op DATA

    struct Packet
    {
        std::uint8_t kind = kData;
        std::uint8_t payload = 0;
        core::Seq seq = 0;

        bool
        operator<(const Packet& o) const
        {
            if (kind != o.kind)
                return kind < o.kind;
            if (payload != o.payload)
                return payload < o.payload;
            return seq < o.seq;
        }
    };

    struct PayloadState
    {
        core::Seq seq = 0;  ///< current binding (valid when sent)
        bool sent = false;
        bool acked = false;
        std::uint8_t tries = 0;  ///< retransmissions this incarnation
    };

    struct State
    {
        // Sender (daemon DataChannel).
        core::Seq next_seq = 0;
        core::Seq wal_promise = 0;  ///< journaled resume point (K = 1)
        std::vector<PayloadState> payloads;
        // Network: an unordered bounded bag, kept canonically sorted.
        std::vector<Packet> net;
        // Switch: the two real window designs in lockstep, the swap
        // epoch, and per-copy aggregation state.
        core::PlainSeen plain{1};
        core::CompactSeen compact{1};
        std::uint8_t epoch = 0;
        std::array<core::Value, 2> copy_value{0, 0};
        std::array<std::vector<std::uint8_t>, 2> copy_counts;
        // Receiver host.
        core::Value host_value = 0;
        std::vector<std::uint8_t> host_counts;
        bool fin_done = false;
        // Budgets spent.
        std::uint8_t reboots = 0, crashes = 0, swaps = 0, dups = 0,
                     mismatches = 0;
        // Apply-time violation (e.g. verdict divergence), picked up by
        // check(); 0 = none.
        std::uint8_t violation_code = 0;
        core::Seq violation_seq = 0;
    };

    ChannelModel(const ChannelBounds& bounds, Mutation mutation);

    State initial() const;
    std::vector<Event> enabled(const State& s) const;
    State apply(const State& s, Event ev) const;
    std::optional<PropertyViolation> check(const State& s) const;
    std::string encode(const State& s) const;
    std::string describe_event(const State& s, Event ev) const;

    /** Raw value of payload `p` (distinct, nonzero, op-independent). */
    static core::Value payload_value(std::uint8_t p);

    const ChannelBounds& bounds() const { return bounds_; }

  private:
    void deliver_data(State& s, const Packet& pkt) const;
    void deliver_ack(State& s, const Packet& pkt) const;
    /** Drain one shadow copy into the host aggregate (SWAP / FIN). */
    void fetch_copy(State& s, std::uint32_t copy) const;
    /** The shared recovery choreography of reboot and host crash. */
    void recover(State& s, core::Seq resume, bool wipe_windows) const;
    core::Value expected_final() const;

    ChannelBounds bounds_;
    Mutation mutation_;
};

}  // namespace ask::pisa::model

#endif  // ASK_PISA_MODEL_CHANNEL_MODEL_H
