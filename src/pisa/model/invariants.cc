#include "pisa/model/invariants.h"

#include "common/string_util.h"

namespace ask::pisa::model {

std::optional<std::string>
check_seen_snapshot(const core::SeenSnapshot& snap)
{
    if (snap.window == 0)
        return "window must be positive";
    std::size_t expected =
        snap.compact ? snap.window : 2 * static_cast<std::size_t>(snap.window);
    if (snap.bits.size() != expected)
        return strf("snapshot has %zu bits, expected %zu", snap.bits.size(),
                    expected);
    for (std::size_t i = 0; i < snap.bits.size(); ++i)
        if (snap.bits[i] > 1)
            return strf("bit %zu reads %u, registers are 1-bit", i,
                        static_cast<unsigned>(snap.bits[i]));
    if (!snap.compact && snap.any &&
        snap.bits[snap.ahead_slot(snap.max_seq)] != 0)
        return strf("clear-ahead violated: slot %zu (one window ahead of "
                    "max_seq %u) is set",
                    snap.ahead_slot(snap.max_seq), snap.max_seq);
    return std::nullopt;
}

std::optional<std::string>
check_channel_relation(const ChannelRelation& r)
{
    if (r.window == 0)
        return "window must be positive";
    std::uint64_t bound =
        static_cast<std::uint64_t>(r.daemon_next_seq) + r.window - 1;
    if (r.switch_max_seq > bound)
        return strf("switch max_seq %llu exceeds sender bound next_seq %u "
                    "+ W - 1 = %llu",
                    static_cast<unsigned long long>(r.switch_max_seq),
                    r.daemon_next_seq,
                    static_cast<unsigned long long>(bound));
    if (r.wal_resume.has_value() &&
        static_cast<std::uint64_t>(r.daemon_next_seq) > *r.wal_resume)
        return strf("WAL promise violated: cursor %u ran past the journaled "
                    "resume point %llu",
                    r.daemon_next_seq,
                    static_cast<unsigned long long>(*r.wal_resume));
    return std::nullopt;
}

}  // namespace ask::pisa::model
