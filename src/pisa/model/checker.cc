#include "pisa/model/checker.h"

#include <algorithm>

#include "common/string_util.h"
#include "pisa/model/channel_model.h"
#include "pisa/model/routing_model.h"

namespace ask::pisa::model {

namespace {

ExploreOptions
explore_options(const ModelCheckOptions& opt)
{
    ExploreOptions eo;
    eo.max_states = opt.max_states;
    eo.max_depth = opt.max_depth;
    eo.shrink_attempts = opt.shrink_attempts;
    return eo;
}

ModelRunReport
run_channel(const ModelCheckOptions& opt, core::ReduceOp op,
            Mutation mutation)
{
    ChannelBounds bounds;
    bounds.payloads = opt.payloads;
    bounds.window = opt.window;
    bounds.op = op;

    ModelRunReport run;
    run.automaton = "channel";
    run.config = strf("op=%s payloads=%u window=%u", core::reduce_op_name(op),
                      opt.payloads, opt.window);
    run.mutation = mutation;
    run.expect_violation = mutation != Mutation::kNone;

    ChannelModel model(bounds, mutation);
    ExploreResult result = explore(model, explore_options(opt));
    run.states = result.states;
    run.transitions = result.transitions;
    run.depth = result.depth;
    run.truncated = result.truncated;
    run.counterexample = std::move(result.counterexample);
    return run;
}

ModelRunReport
run_routing(const ModelCheckOptions& opt, std::uint32_t racks,
            Mutation mutation)
{
    RoutingBounds bounds;
    bounds.racks = racks;
    bounds.seqs = opt.seqs;
    bounds.window = opt.window;

    ModelRunReport run;
    run.automaton = "routing";
    run.config = strf("racks=%u seqs=%u window=%u", racks, opt.seqs,
                      opt.window);
    run.mutation = mutation;
    run.expect_violation = mutation != Mutation::kNone;

    RoutingModel model(bounds, mutation);
    ExploreResult result = explore(model, explore_options(opt));
    run.states = result.states;
    run.transitions = result.transitions;
    run.depth = result.depth;
    run.truncated = result.truncated;
    run.counterexample = std::move(result.counterexample);
    return run;
}

obs::Json
counterexample_json(const Counterexample& cex)
{
    obs::Json j = obs::Json::object();
    j.set("property", cex.violation.property);
    j.set("message", cex.violation.message);
    j.set("events", static_cast<std::uint64_t>(cex.trace.size()));
    obs::Json trace = obs::Json::array();
    for (const std::string& line : cex.rendered)
        trace.push_back(line);
    j.set("trace", std::move(trace));
    obs::Json shrink = obs::Json::object();
    shrink.set("attempts", cex.shrink_attempts);
    shrink.set("accepted", cex.shrink_accepted);
    j.set("shrink", std::move(shrink));
    return j;
}

}  // namespace

bool
ModelReport::ok() const
{
    return std::all_of(runs.begin(), runs.end(),
                       [](const ModelRunReport& r) { return r.ok(); });
}

obs::Json
ModelReport::to_json() const
{
    obs::Json j = obs::Json::object();
    j.set("schema", kSchema);

    obs::Json opt = obs::Json::object();
    opt.set("payloads", options.payloads);
    opt.set("window", options.window);
    opt.set("racks", options.racks);
    opt.set("seqs", options.seqs);
    opt.set("max_states", static_cast<std::uint64_t>(options.max_states));
    opt.set("max_depth", static_cast<std::uint64_t>(options.max_depth));
    opt.set("shrink_attempts", options.shrink_attempts);
    opt.set("mutants", options.mutants);
    j.set("options", std::move(opt));

    std::size_t mutant_runs = 0, mutants_caught = 0;
    obs::Json runs_json = obs::Json::array();
    for (const ModelRunReport& run : runs) {
        if (run.mutation != Mutation::kNone) {
            ++mutant_runs;
            if (run.counterexample.has_value())
                ++mutants_caught;
        }
        obs::Json r = obs::Json::object();
        r.set("automaton", run.automaton);
        r.set("config", run.config);
        r.set("mutation", mutation_name(run.mutation));
        r.set("expect_violation", run.expect_violation);
        r.set("ok", run.ok());
        r.set("states", static_cast<std::uint64_t>(run.states));
        r.set("transitions", static_cast<std::uint64_t>(run.transitions));
        r.set("depth", static_cast<std::uint64_t>(run.depth));
        r.set("truncated", run.truncated);
        if (run.counterexample.has_value())
            r.set("counterexample", counterexample_json(*run.counterexample));
        else
            r.set("counterexample", nullptr);
        runs_json.push_back(std::move(r));
    }

    obs::Json summary = obs::Json::object();
    summary.set("runs", static_cast<std::uint64_t>(runs.size()));
    summary.set("mutants", static_cast<std::uint64_t>(mutant_runs));
    summary.set("mutants_caught", static_cast<std::uint64_t>(mutants_caught));
    summary.set("ok", ok());
    j.set("summary", std::move(summary));
    j.set("runs", std::move(runs_json));
    return j;
}

ModelReport
run_model_check(const ModelCheckOptions& options)
{
    ModelReport report;
    report.options = options;

    // Clean verification: the three algebra shapes (plain merge, lifted
    // merge, idempotent merge) over the channel automaton...
    for (core::ReduceOp op : {core::ReduceOp::kAdd, core::ReduceOp::kCount,
                              core::ReduceOp::kMax})
        report.runs.push_back(run_channel(options, op, Mutation::kNone));
    // ...and every fabric size over the routing automaton.
    for (std::uint32_t racks = 1; racks <= options.racks; ++racks)
        report.runs.push_back(run_routing(options, racks, Mutation::kNone));

    if (!options.mutants)
        return report;

    // The mutation harness. Each defect is explored under the config
    // designed to expose it: kDoubleLiftCount needs the lifted algebra
    // (under kAdd a re-lift is the identity), the routing defects need
    // a fabric with a tier switch.
    for (Mutation m : all_mutations()) {
        if (mutation_is_routing(m)) {
            report.runs.push_back(run_routing(options, 2, m));
        } else {
            core::ReduceOp op = m == Mutation::kDoubleLiftCount
                                    ? core::ReduceOp::kCount
                                    : core::ReduceOp::kAdd;
            report.runs.push_back(run_channel(options, op, m));
        }
    }
    return report;
}

}  // namespace ask::pisa::model
