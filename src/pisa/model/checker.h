/**
 * @file
 * The model-check driver: clean verification plus mutation harness.
 *
 * One call to run_model_check() performs the full static verification
 * campaign over both protocol automata:
 *
 *  - clean channel exploration for ops add, count, max (the three
 *    distinct algebra shapes: plain merge, lifted merge, idempotent
 *    merge) — each must complete with NO counterexample;
 *  - clean routing exploration for every fabric of 1..racks racks —
 *    likewise no counterexample;
 *  - the mutation harness: every seeded protocol defect from
 *    all_mutations() is explored under the configuration designed to
 *    expose it, and each MUST yield a counterexample trace (a mutant
 *    the checker cannot see would mean the properties are too weak).
 *
 * The report serializes under the byte-stable `ask-model/v1` schema:
 * exploration is deterministic (see explorer.h), key order is fixed by
 * obs::Json insertion order, and no clock, RNG, or host identity is
 * consulted — two runs with equal options produce byte-equal JSON.
 */
#ifndef ASK_PISA_MODEL_CHECKER_H
#define ASK_PISA_MODEL_CHECKER_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/json.h"
#include "pisa/model/event.h"
#include "pisa/model/explorer.h"

namespace ask::pisa::model {

/** Campaign configuration (bounds of every exploration). */
struct ModelCheckOptions
{
    std::uint32_t payloads = 2;  ///< channel automaton payload slots
    std::uint32_t window = 2;    ///< seen-window W of both automata
    std::uint32_t racks = 2;     ///< routing fabrics explored: 1..racks
    std::uint32_t seqs = 2;      ///< routing seqs per channel
    std::size_t max_states = 2'000'000;
    std::size_t max_depth = 128;
    std::uint32_t shrink_attempts = 128;
    bool mutants = true;         ///< run the mutation harness
};

/** One exploration (one automaton, one config, one mutation). */
struct ModelRunReport
{
    std::string automaton;  ///< "channel" | "routing"
    std::string config;     ///< bound summary, e.g. "op=add payloads=3 ..."
    Mutation mutation = Mutation::kNone;
    bool expect_violation = false;
    std::size_t states = 0;
    std::size_t transitions = 0;
    std::size_t depth = 0;
    bool truncated = false;
    std::optional<Counterexample> counterexample;

    /** Clean runs must verify; mutants must produce a counterexample. */
    bool
    ok() const
    {
        return counterexample.has_value() == expect_violation;
    }
};

/** The whole campaign. */
struct ModelReport
{
    static constexpr const char* kSchema = "ask-model/v1";

    ModelCheckOptions options;
    std::vector<ModelRunReport> runs;

    bool ok() const;
    /** Byte-stable report document (schema `ask-model/v1`). */
    obs::Json to_json() const;
};

/** Run the full campaign (see file comment). */
ModelReport run_model_check(const ModelCheckOptions& options = {});

}  // namespace ask::pisa::model

#endif  // ASK_PISA_MODEL_CHECKER_H
