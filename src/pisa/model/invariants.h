/**
 * @file
 * Reachable-state invariants of the ASK protocol automata.
 *
 * These predicates play a double role:
 *
 *  - during model checking they are asserted on every state the
 *    explorer reaches, so a clean verification run *proves* them over
 *    the bounded state space;
 *  - the fuzzer's reachability probe (testing/differential.cc)
 *    evaluates the very same predicates on states extracted from live
 *    components (AskSwitchProgram::extract_seen,
 *    DataChannel::next_seq/in_flight_seqs, the WAL resume fold), so a
 *    dynamically observed state outside the model's reachable set
 *    fails the scenario.
 *
 * Soundness notes (why each predicate holds on every reachable state):
 *
 *  - plain clear-ahead: the slot one window ahead of max_seq is clear.
 *    Recording into that slot would require observing a sequence
 *    t <= max_seq with t ≡ max_seq + W (mod 2W); the only candidate in
 *    the non-stale range (max_seq - W, max_seq] is max_seq - W itself,
 *    which is exactly the stale boundary and is dropped before the
 *    bits are touched. Wipes and fences zero the slot outright.
 *  - compact bits admit no per-bit predicate: a W-bit snapshot cannot
 *    distinguish "observed" from "parity-repaired" without knowing the
 *    observed-vs-fenced frontier, so the compact design is constrained
 *    through the cross-component relations instead.
 *  - max_seq <= next_seq + W - 1: observes record sequences the sender
 *    already allocated (< next_seq, and the cursor is monotone), and
 *    fences write exactly next_seq + W - 1.
 *  - next_seq <= wal_resume: the sender journals kSeqCheckpoint
 *    (upto = next_seq + K) *before* allocating the first of those
 *    sequence numbers, and crash recovery resets the cursor to the
 *    highest journaled upto.
 */
#ifndef ASK_PISA_MODEL_INVARIANTS_H
#define ASK_PISA_MODEL_INVARIANTS_H

#include <cstdint>
#include <optional>
#include <string>

#include "ask/seen_window.h"
#include "ask/types.h"

namespace ask::pisa::model {

/**
 * Structural + clear-ahead invariants of one receive-window snapshot.
 * Returns a description of the first violated predicate, or nullopt.
 */
std::optional<std::string> check_seen_snapshot(
    const core::SeenSnapshot& snap);

/** Cross-component view of one channel: switch window registers vs the
 *  sender cursor vs the journaled WAL resume point. */
struct ChannelRelation
{
    std::uint64_t switch_max_seq = 0;
    core::Seq daemon_next_seq = 0;
    /** Highest journaled kSeqCheckpoint `upto`; nullopt when the
     *  channel never checkpointed (no WAL, or nothing sent). */
    std::optional<std::uint64_t> wal_resume;
    std::uint32_t window = 0;
};

/** The cross-component relations (see file comment). */
std::optional<std::string> check_channel_relation(const ChannelRelation& r);

}  // namespace ask::pisa::model

#endif  // ASK_PISA_MODEL_INVARIANTS_H
