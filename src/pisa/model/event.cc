#include "pisa/model/event.h"

namespace ask::pisa::model {

const char*
event_kind_name(EventKind kind)
{
    switch (kind) {
      case EventKind::kSend: return "send";
      case EventKind::kDeliver: return "deliver";
      case EventKind::kDrop: return "drop";
      case EventKind::kDuplicate: return "duplicate";
      case EventKind::kRetransmit: return "retransmit";
      case EventKind::kInjectMismatch: return "inject-mismatch";
      case EventKind::kSwap: return "swap";
      case EventKind::kFin: return "fin";
      case EventKind::kSwitchReboot: return "switch-reboot";
      case EventKind::kHostCrash: return "host-crash";
    }
    return "?";
}

const char*
mutation_name(Mutation m)
{
    switch (m) {
      case Mutation::kNone: return "none";
      case Mutation::kSkipCompactRepair: return "skip-compact-repair";
      case Mutation::kSkipFence: return "skip-fence";
      case Mutation::kFenceOffByOne: return "fence-off-by-one";
      case Mutation::kDoubleLiftCount: return "double-lift-count";
      case Mutation::kObserveBeforeOpCheck: return "observe-before-op-check";
      case Mutation::kDuplicateConsumes: return "duplicate-consumes";
      case Mutation::kStaleConsumes: return "stale-consumes";
      case Mutation::kAckWithoutConsume: return "ack-without-consume";
      case Mutation::kSkipWalCheckpoint: return "skip-wal-checkpoint";
      case Mutation::kReplayOnlyUnacked: return "replay-only-unacked";
      case Mutation::kSwapDrainLoses: return "swap-drain-loses";
      case Mutation::kMismatchConsumes: return "mismatch-consumes";
      case Mutation::kTorConsumesResidual: return "tor-consumes-residual";
      case Mutation::kLeafSkipsObserve: return "leaf-skips-observe";
    }
    return "?";
}

std::vector<Mutation>
all_mutations()
{
    return {
        Mutation::kSkipCompactRepair,
        Mutation::kSkipFence,
        Mutation::kFenceOffByOne,
        Mutation::kDoubleLiftCount,
        Mutation::kObserveBeforeOpCheck,
        Mutation::kDuplicateConsumes,
        Mutation::kStaleConsumes,
        Mutation::kAckWithoutConsume,
        Mutation::kSkipWalCheckpoint,
        Mutation::kReplayOnlyUnacked,
        Mutation::kSwapDrainLoses,
        Mutation::kMismatchConsumes,
        Mutation::kTorConsumesResidual,
        Mutation::kLeafSkipsObserve,
    };
}

}  // namespace ask::pisa::model
