#include "pisa/model/routing_model.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "pisa/model/invariants.h"

namespace ask::pisa::model {

RoutingModel::RoutingModel(const RoutingBounds& bounds, Mutation mutation)
    : bounds_(bounds),
      mutation_(mutation),
      topology_(core::TopologyBuilder().racks(bounds.racks, 1).build()),
      receiver_(HostId{bounds.racks - 1})
{
    ASK_ASSERT(bounds.racks >= 1 && bounds.racks <= 8,
               "rack bound out of range");
    ASK_ASSERT(bounds.seqs >= 1 && bounds.seqs <= 16,
               "seq bound out of range");
    ASK_ASSERT(mutation == Mutation::kNone || mutation_is_routing(mutation),
               "channel mutations belong to ChannelModel");
}

bool
RoutingModel::crosses_tier(std::uint8_t ch) const
{
    if (!topology_.has_tier())
        return false;
    return topology_.rack_of_host(HostId{ch}) !=
           topology_.rack_of_host(receiver_);
}

RoutingModel::State
RoutingModel::initial() const
{
    std::size_t channels = num_channels();
    std::size_t slots = channels * bounds_.seqs;
    State s;
    s.next_send.assign(channels, 0);
    s.consumed.assign(slots, 0);
    s.fresh_tor.assign(slots, 0);
    s.fresh_tier.assign(slots, 0);
    s.retx.assign(slots, 0);
    s.tor_seen.assign(channels, core::PlainSeen(bounds_.window));
    s.tier_seen.assign(channels, core::PlainSeen(bounds_.window));
    return s;
}

std::vector<Event>
RoutingModel::enabled(const State& s) const
{
    std::vector<Event> out;
    bool room = s.net.size() < bounds_.net_capacity;

    for (std::uint8_t ch = 0; ch < num_channels(); ++ch)
        if (s.next_send[ch] < bounds_.seqs && room)
            out.push_back({EventKind::kSend, ch});

    for (std::uint8_t ch = 0; ch < num_channels(); ++ch)
        for (std::uint8_t seq = 0; seq < s.next_send[ch]; ++seq) {
            std::size_t sl = slot(ch, seq);
            if (s.consumed[sl] == 0 && s.retx[sl] < bounds_.max_retransmits &&
                room)
                out.push_back(
                    {EventKind::kRetransmit, static_cast<std::uint8_t>(sl)});
        }

    for (std::uint8_t i = 0; i < s.net.size(); ++i) {
        out.push_back({EventKind::kDeliver, i});
        out.push_back({EventKind::kDrop, i});
        if (s.dups < bounds_.max_duplicates && room)
            out.push_back({EventKind::kDuplicate, i});
    }
    return out;
}

RoutingModel::State
RoutingModel::apply(const State& prev, Event ev) const
{
    State s = prev;
    switch (ev.kind) {
      case EventKind::kSend: {
        std::uint8_t ch = ev.arg;
        s.net.push_back(Packet{ch, s.next_send[ch], kAtTor});
        ++s.next_send[ch];
        break;
      }
      case EventKind::kRetransmit: {
        std::uint8_t ch = static_cast<std::uint8_t>(ev.arg / bounds_.seqs);
        std::uint8_t seq = static_cast<std::uint8_t>(ev.arg % bounds_.seqs);
        ++s.retx[ev.arg];
        s.net.push_back(Packet{ch, seq, kAtTor});
        break;
      }
      case EventKind::kDeliver: {
        Packet pkt = s.net[ev.arg];
        s.net.erase(s.net.begin() + ev.arg);
        bool cross = crosses_tier(pkt.channel);
        bool at_tier = pkt.at == kAtTier;
        bool last = at_tier || !cross;
        std::size_t sl = slot(pkt.channel, pkt.seq);

        if (mutation_ == Mutation::kLeafSkipsObserve && !last) {
            // The defect: the leaf forwards without touching its
            // window, breaking the self-cleaning chain.
            s.net.push_back(Packet{pkt.channel, pkt.seq, kAtTier});
            break;
        }

        core::PlainSeen& win = at_tier ? s.tier_seen[pkt.channel]
                                       : s.tor_seen[pkt.channel];
        core::SeenOutcome verdict = win.observe(pkt.seq);
        if (verdict == core::SeenOutcome::kFresh) {
            ++(at_tier ? s.fresh_tier : s.fresh_tor)[sl];
            if (last) {
                ++s.consumed[sl];
            } else if (mutation_ == Mutation::kTorConsumesResidual) {
                // The defect: the leaf absorbs a fully aggregated
                // packet and impersonates the receiver, so the tier
                // never observes this sequence number.
                ++s.consumed[sl];
            } else {
                s.net.push_back(Packet{pkt.channel, pkt.seq, kAtTier});
            }
        } else if (verdict == core::SeenOutcome::kDuplicate && !last) {
            // A duplicate's residual is still forwarded upstream: the
            // root must be the one to (re-)ACK it.
            s.net.push_back(Packet{pkt.channel, pkt.seq, kAtTier});
        }
        // Stale packets are dropped outright.
        break;
      }
      case EventKind::kDrop:
        s.net.erase(s.net.begin() + ev.arg);
        break;
      case EventKind::kDuplicate:
        s.net.push_back(s.net[ev.arg]);
        ++s.dups;
        break;
      default:
        ASK_ASSERT(false, "event not part of the routing alphabet");
    }
    std::sort(s.net.begin(), s.net.end());
    return s;
}

std::optional<PropertyViolation>
RoutingModel::check(const State& s) const
{
    for (std::uint8_t ch = 0; ch < num_channels(); ++ch)
        for (std::uint8_t seq = 0; seq < bounds_.seqs; ++seq) {
            std::size_t sl = slot(ch, seq);
            if (s.consumed[sl] > 1)
                return PropertyViolation{
                    "routing-soundness",
                    strf("channel %u seq %u consumed %u times",
                         static_cast<unsigned>(ch),
                         static_cast<unsigned>(seq), s.consumed[sl])};
            if (s.fresh_tor[sl] > 1 || s.fresh_tier[sl] > 1)
                return PropertyViolation{
                    "routing-soundness",
                    strf("channel %u seq %u observed fresh more than once "
                         "at one switch",
                         static_cast<unsigned>(ch),
                         static_cast<unsigned>(seq))};
        }

    // Coverage is judged on completed runs: everything sent and
    // consumed, nothing left in flight.
    bool done = s.net.empty();
    for (std::uint8_t ch = 0; ch < num_channels() && done; ++ch) {
        if (s.next_send[ch] < bounds_.seqs)
            done = false;
        for (std::uint8_t seq = 0; seq < bounds_.seqs && done; ++seq)
            if (s.consumed[slot(ch, seq)] == 0)
                done = false;
    }
    if (done) {
        for (std::uint8_t ch = 0; ch < num_channels(); ++ch)
            for (std::uint8_t seq = 0; seq < bounds_.seqs; ++seq) {
                std::size_t sl = slot(ch, seq);
                if (s.fresh_tor[sl] != 1)
                    return PropertyViolation{
                        "routing-coverage",
                        strf("ToR of rack %u never observed channel %u "
                             "seq %u fresh",
                             static_cast<unsigned>(ch),
                             static_cast<unsigned>(ch),
                             static_cast<unsigned>(seq))};
                if (crosses_tier(ch) && s.fresh_tier[sl] != 1)
                    return PropertyViolation{
                        "routing-coverage",
                        strf("tier switch never observed channel %u seq %u "
                             "fresh",
                             static_cast<unsigned>(ch),
                             static_cast<unsigned>(seq))};
            }
    }
    return std::nullopt;
}

std::string
RoutingModel::encode(const State& s) const
{
    ByteWriter w;
    w.bytes(s.next_send);
    w.bytes(s.consumed);
    w.bytes(s.fresh_tor);
    w.bytes(s.fresh_tier);
    w.bytes(s.retx);
    for (const core::PlainSeen& win : s.tor_seen) {
        core::SeenSnapshot snap = win.snapshot();
        w.bytes(snap.bits);
        w.u32(snap.max_seq);
        w.u8(snap.any ? 1 : 0);
    }
    for (const core::PlainSeen& win : s.tier_seen) {
        core::SeenSnapshot snap = win.snapshot();
        w.bytes(snap.bits);
        w.u32(snap.max_seq);
        w.u8(snap.any ? 1 : 0);
    }
    w.u8(static_cast<std::uint8_t>(s.net.size()));
    for (const Packet& pkt : s.net) {
        w.u8(pkt.channel);
        w.u8(pkt.seq);
        w.u8(pkt.at);
    }
    w.u8(s.dups);
    return w.take();
}

std::string
RoutingModel::describe_event(const State& s, Event ev) const
{
    switch (ev.kind) {
      case EventKind::kSend:
        return strf("send(ch%u seq%u)", static_cast<unsigned>(ev.arg),
                    static_cast<unsigned>(s.next_send[ev.arg]));
      case EventKind::kRetransmit:
        return strf("retransmit(ch%u seq%u)",
                    static_cast<unsigned>(ev.arg / bounds_.seqs),
                    static_cast<unsigned>(ev.arg % bounds_.seqs));
      case EventKind::kDeliver:
      case EventKind::kDrop:
      case EventKind::kDuplicate: {
        const Packet& pkt = s.net[ev.arg];
        return strf("%s(ch%u seq%u at %s)", event_kind_name(ev.kind),
                    static_cast<unsigned>(pkt.channel),
                    static_cast<unsigned>(pkt.seq),
                    pkt.at == kAtTier ? "tier" : "tor");
      }
      default:
        return "?";
    }
}

}  // namespace ask::pisa::model
