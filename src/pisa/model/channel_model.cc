#include "pisa/model/channel_model.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "pisa/model/invariants.h"

namespace ask::pisa::model {

namespace {

/** Apply-time violation codes (State::violation_code). */
constexpr std::uint8_t kVerdictDivergence = 1;

const char*
packet_kind_name(std::uint8_t kind)
{
    switch (kind) {
      case ChannelModel::kData:
        return "data";
      case ChannelModel::kAck:
        return "ack";
      case ChannelModel::kMismatch:
        return "mismatch";
    }
    return "?";
}

/** The foreign operator an op-mismatched frame was lifted under:
 *  chosen so its lift visibly differs from the task's own. */
core::ReduceOp
foreign_op(core::ReduceOp op)
{
    return op == core::ReduceOp::kCount ? core::ReduceOp::kAdd
                                        : core::ReduceOp::kCount;
}

}  // namespace

ChannelModel::ChannelModel(const ChannelBounds& bounds, Mutation mutation)
    : bounds_(bounds), mutation_(mutation)
{
    ASK_ASSERT(bounds.payloads > 0 && bounds.payloads <= 8,
               "payload bound out of range");
    ASK_ASSERT(bounds.window > 0, "window must be positive");
    ASK_ASSERT(!mutation_is_routing(mutation),
               "routing mutations belong to RoutingModel");
}

core::Value
ChannelModel::payload_value(std::uint8_t p)
{
    // Distinct small primes: any double merge, missing merge, or
    // spurious lift changes the sum, the count, and (for the largest)
    // the max.
    static constexpr core::Value kValues[] = {2, 3, 5, 7, 11, 13, 17, 19};
    return kValues[p % 8];
}

ChannelModel::State
ChannelModel::initial() const
{
    State s;
    s.payloads.resize(bounds_.payloads);
    s.plain = core::PlainSeen(bounds_.window);
    s.compact = core::CompactSeen(bounds_.window);
    s.copy_value = {core::reduce_identity(bounds_.op),
                    core::reduce_identity(bounds_.op)};
    s.copy_counts[0].assign(bounds_.payloads, 0);
    s.copy_counts[1].assign(bounds_.payloads, 0);
    s.host_value = core::reduce_identity(bounds_.op);
    s.host_counts.assign(bounds_.payloads, 0);
    return s;
}

std::vector<Event>
ChannelModel::enabled(const State& s) const
{
    std::vector<Event> out;
    if (s.violation_code != 0)
        return out;  // stop at the first defect: the trace ends here

    bool room = s.net.size() < bounds_.net_capacity;

    if (!s.fin_done) {
        // kSend: the next unsent payload, within the sliding window.
        core::Seq base = s.next_seq;
        std::uint32_t outstanding = 0;
        bool has_unsent = false;
        bool all_acked = true;
        for (const PayloadState& p : s.payloads) {
            if (p.sent && !p.acked) {
                ++outstanding;
                base = std::min(base, p.seq);
            }
            if (!p.sent)
                has_unsent = true;
            if (!p.sent || !p.acked)
                all_acked = false;
        }
        if (has_unsent && room && outstanding < bounds_.window &&
            s.next_seq < base + bounds_.window)
            out.push_back({EventKind::kSend, 0});

        for (std::uint8_t p = 0; p < s.payloads.size(); ++p) {
            const PayloadState& ps = s.payloads[p];
            if (ps.sent && !ps.acked && ps.tries < bounds_.max_retransmits &&
                room)
                out.push_back({EventKind::kRetransmit, p});
        }

        if (s.mismatches < bounds_.max_mismatches && room) {
            for (const PayloadState& p : s.payloads)
                if (p.sent && !p.acked) {
                    out.push_back({EventKind::kInjectMismatch, 0});
                    break;
                }
        }

        if (s.swaps < bounds_.max_swaps)
            out.push_back({EventKind::kSwap, 0});
        if (all_acked)
            out.push_back({EventKind::kFin, 0});
        if (s.reboots < bounds_.max_reboots)
            out.push_back({EventKind::kSwitchReboot, 0});
        if (s.crashes < bounds_.max_crashes)
            out.push_back({EventKind::kHostCrash, 0});
    }

    for (std::uint8_t i = 0; i < s.net.size(); ++i) {
        out.push_back({EventKind::kDeliver, i});
        out.push_back({EventKind::kDrop, i});
        if (s.dups < bounds_.max_duplicates && room)
            out.push_back({EventKind::kDuplicate, i});
    }
    return out;
}

void
ChannelModel::deliver_data(State& s, const Packet& pkt) const
{
    bool mismatch = pkt.kind == kMismatch;
    // The real pipeline validates the frame's op id against the
    // installed region BEFORE the window stage: a mismatched frame
    // must never perturb reliability state.
    if (mismatch && mutation_ != Mutation::kObserveBeforeOpCheck &&
        mutation_ != Mutation::kMismatchConsumes)
        return;

    core::SeenOutcome plain_verdict = s.plain.observe(pkt.seq);
    core::SeenOutcome compact_verdict = s.compact.observe(pkt.seq);
    if (plain_verdict != compact_verdict) {
        s.violation_code = kVerdictDivergence;
        s.violation_seq = pkt.seq;
        return;
    }
    if (mismatch && mutation_ == Mutation::kObserveBeforeOpCheck)
        return;  // the defect: window touched, then the op check drops

    bool consume = plain_verdict == core::SeenOutcome::kFresh;
    if (mutation_ == Mutation::kAckWithoutConsume)
        consume = false;
    if (mutation_ == Mutation::kDuplicateConsumes &&
        plain_verdict == core::SeenOutcome::kDuplicate)
        consume = true;
    if (mutation_ == Mutation::kStaleConsumes &&
        plain_verdict == core::SeenOutcome::kStale)
        consume = true;

    if (consume) {
        core::Value raw = payload_value(pkt.payload);
        core::Value lifted = mismatch
                                 ? core::reduce_lift(foreign_op(bounds_.op),
                                                     raw)
                                 : core::reduce_lift(bounds_.op, raw);
        std::uint32_t copy = s.epoch & 1;
        s.copy_value[copy] =
            core::apply_op(bounds_.op, s.copy_value[copy], lifted);
        ++s.copy_counts[copy][pkt.payload];
    }
    if (plain_verdict != core::SeenOutcome::kStale)
        s.net.push_back(Packet{kAck, pkt.payload, pkt.seq});
}

void
ChannelModel::deliver_ack(State& s, const Packet& pkt) const
{
    for (PayloadState& p : s.payloads)
        if (p.sent && !p.acked && p.seq == pkt.seq)
            p.acked = true;
}

void
ChannelModel::fetch_copy(State& s, std::uint32_t copy) const
{
    if (mutation_ == Mutation::kSwapDrainLoses) {
        // The defect: the drain discards the fetched partials.
        s.copy_value[copy] = core::reduce_identity(bounds_.op);
        std::fill(s.copy_counts[copy].begin(), s.copy_counts[copy].end(), 0);
        return;
    }
    core::Value partial = s.copy_value[copy];
    if (mutation_ == Mutation::kDoubleLiftCount)
        partial = core::reduce_lift(bounds_.op, partial);  // lifted again
    s.host_value = core::apply_op(bounds_.op, s.host_value, partial);
    for (std::size_t p = 0; p < s.host_counts.size(); ++p)
        s.host_counts[p] = static_cast<std::uint8_t>(
            s.host_counts[p] + s.copy_counts[copy][p]);
    s.copy_value[copy] = core::reduce_identity(bounds_.op);
    std::fill(s.copy_counts[copy].begin(), s.copy_counts[copy].end(), 0);
}

void
ChannelModel::recover(State& s, core::Seq resume, bool wipe_windows) const
{
    // AskCluster's choreography: silence the senders, clear every
    // active region, fence each channel, reset the receiver partial,
    // then replay the full archive with fresh sequence numbers.
    if (wipe_windows) {
        s.plain.wipe();
        s.compact.wipe();
    }
    s.copy_value = {core::reduce_identity(bounds_.op),
                    core::reduce_identity(bounds_.op)};
    std::fill(s.copy_counts[0].begin(), s.copy_counts[0].end(), 0);
    std::fill(s.copy_counts[1].begin(), s.copy_counts[1].end(), 0);
    s.epoch = 0;
    s.host_value = core::reduce_identity(bounds_.op);
    std::fill(s.host_counts.begin(), s.host_counts.end(), 0);

    for (PayloadState& p : s.payloads) {
        if (mutation_ == Mutation::kReplayOnlyUnacked && p.acked)
            continue;  // the defect: ACKed payloads are never re-sent
        p = PayloadState{};
    }

    core::Seq fence_at = resume;
    if (mutation_ == Mutation::kFenceOffByOne && fence_at > 0)
        --fence_at;
    if (mutation_ == Mutation::kSkipFence)
        return;
    s.plain.repair(fence_at);
    if (mutation_ == Mutation::kSkipCompactRepair) {
        // The defect: fence_channel writes max_seq but skips the
        // parity pre-set loop, leaving whatever bits are in the array.
        core::SeenSnapshot snap = s.compact.snapshot();
        snap.max_seq = fence_at + bounds_.window - 1;
        snap.any = true;
        s.compact.restore(snap);
    } else {
        s.compact.repair(fence_at);
    }
}

ChannelModel::State
ChannelModel::apply(const State& prev, Event ev) const
{
    State s = prev;
    switch (ev.kind) {
      case EventKind::kSend: {
        for (std::uint8_t p = 0; p < s.payloads.size(); ++p) {
            PayloadState& ps = s.payloads[p];
            if (ps.sent)
                continue;
            // Durability: the promise is journaled before the
            // allocation it covers (checkpoint interval 1).
            if (mutation_ != Mutation::kSkipWalCheckpoint)
                s.wal_promise = std::max(s.wal_promise, s.next_seq + 1);
            ps.seq = s.next_seq++;
            ps.sent = true;
            ps.acked = false;
            ps.tries = 0;
            s.net.push_back(Packet{kData, p, ps.seq});
            break;
        }
        break;
      }
      case EventKind::kRetransmit: {
        PayloadState& ps = s.payloads[ev.arg];
        ++ps.tries;
        s.net.push_back(Packet{kData, ev.arg, ps.seq});
        break;
      }
      case EventKind::kInjectMismatch: {
        for (std::uint8_t p = 0; p < s.payloads.size(); ++p) {
            const PayloadState& ps = s.payloads[p];
            if (ps.sent && !ps.acked) {
                s.net.push_back(Packet{kMismatch, p, ps.seq});
                ++s.mismatches;
                break;
            }
        }
        break;
      }
      case EventKind::kDeliver: {
        Packet pkt = s.net[ev.arg];
        s.net.erase(s.net.begin() + ev.arg);
        if (pkt.kind == kAck)
            deliver_ack(s, pkt);
        else
            deliver_data(s, pkt);
        break;
      }
      case EventKind::kDrop:
        s.net.erase(s.net.begin() + ev.arg);
        break;
      case EventKind::kDuplicate:
        s.net.push_back(s.net[ev.arg]);
        ++s.dups;
        break;
      case EventKind::kSwap: {
        std::uint32_t retired = s.epoch & 1;
        s.epoch ^= 1;
        ++s.swaps;
        fetch_copy(s, retired);
        break;
      }
      case EventKind::kFin:
        fetch_copy(s, s.epoch & 1);
        fetch_copy(s, (s.epoch & 1) ^ 1);
        s.fin_done = true;
        break;
      case EventKind::kSwitchReboot:
        ++s.reboots;
        recover(s, s.next_seq, /*wipe_windows=*/true);
        break;
      case EventKind::kHostCrash: {
        ++s.crashes;
        // The crashed sender restarts from the WAL: the cursor is
        // reset to the journaled promise and every channel re-fenced
        // there (registers survive — the switch did not reboot).
        core::Seq resume = s.wal_promise;
        s.next_seq = resume;
        recover(s, resume, /*wipe_windows=*/false);
        break;
      }
    }
    std::sort(s.net.begin(), s.net.end());
    return s;
}

std::optional<PropertyViolation>
ChannelModel::check(const State& s) const
{
    if (s.violation_code == kVerdictDivergence)
        return PropertyViolation{
            "parity-equivalence",
            strf("plain and compact windows disagree on seq %u",
                 s.violation_seq)};

    for (std::size_t p = 0; p < s.payloads.size(); ++p) {
        std::uint32_t total = s.copy_counts[0][p] + s.copy_counts[1][p] +
                              s.host_counts[p];
        if (total > 1)
            return PropertyViolation{
                "exactly-once",
                strf("payload %zu merged %u times", p, total)};
    }

    for (const Packet& pkt : s.net)
        if (pkt.kind != kAck && pkt.seq >= s.next_seq)
            return PropertyViolation{
                "cursor-dominance",
                strf("in-flight %s seq %u >= sender cursor %u",
                     packet_kind_name(pkt.kind), pkt.seq, s.next_seq)};

    core::SeenSnapshot plain_snap = s.plain.snapshot();
    core::SeenSnapshot compact_snap = s.compact.snapshot();
    if (auto msg = check_seen_snapshot(plain_snap))
        return PropertyViolation{"clear-ahead", *msg};
    if (auto msg = check_seen_snapshot(compact_snap))
        return PropertyViolation{"window-shape", *msg};

    ChannelRelation rel;
    rel.switch_max_seq = std::max<std::uint64_t>(
        plain_snap.any ? plain_snap.max_seq : 0,
        compact_snap.any ? compact_snap.max_seq : 0);
    rel.daemon_next_seq = s.next_seq;
    rel.wal_resume = s.wal_promise;
    rel.window = bounds_.window;
    if (auto msg = check_channel_relation(rel))
        return PropertyViolation{
            s.next_seq > s.wal_promise ? "wal-promise" : "window-bound",
            *msg};

    if (s.fin_done) {
        for (std::size_t p = 0; p < s.payloads.size(); ++p) {
            std::uint32_t total = s.copy_counts[0][p] + s.copy_counts[1][p] +
                                  s.host_counts[p];
            if (total != 1)
                return PropertyViolation{
                    "completion",
                    strf("task finished but payload %zu was merged %u "
                         "times",
                         p, total)};
        }
        if (s.host_value != expected_final())
            return PropertyViolation{
                bounds_.op == core::ReduceOp::kCount ? "lift-once"
                                                     : "completion",
                strf("final aggregate %u != reference fold %u",
                     s.host_value, expected_final())};
    }
    return std::nullopt;
}

core::Value
ChannelModel::expected_final() const
{
    core::Value acc = core::reduce_identity(bounds_.op);
    for (std::uint8_t p = 0; p < bounds_.payloads; ++p)
        acc = core::apply_op(bounds_.op, acc,
                             core::reduce_lift(bounds_.op,
                                               payload_value(p)));
    return acc;
}

std::string
ChannelModel::encode(const State& s) const
{
    ByteWriter w;
    w.u32(s.next_seq);
    w.u32(s.wal_promise);
    for (const PayloadState& p : s.payloads) {
        w.u32(p.seq);
        w.u8(static_cast<std::uint8_t>((p.sent ? 1 : 0) |
                                       (p.acked ? 2 : 0)));
        w.u8(p.tries);
    }
    w.u8(static_cast<std::uint8_t>(s.net.size()));
    for (const Packet& pkt : s.net) {
        w.u8(pkt.kind);
        w.u8(pkt.payload);
        w.u32(pkt.seq);
    }
    w.u8(s.epoch);
    w.u32(s.copy_value[0]);
    w.u32(s.copy_value[1]);
    w.bytes(s.copy_counts[0]);
    w.bytes(s.copy_counts[1]);
    w.u32(s.host_value);
    w.bytes(s.host_counts);
    w.u8(s.fin_done ? 1 : 0);
    w.u8(s.reboots);
    w.u8(s.crashes);
    w.u8(s.swaps);
    w.u8(s.dups);
    w.u8(s.mismatches);
    w.u8(s.violation_code);
    w.u32(s.violation_seq);
    core::SeenSnapshot plain_snap = s.plain.snapshot();
    w.bytes(plain_snap.bits);
    w.u32(plain_snap.max_seq);
    w.u8(plain_snap.any ? 1 : 0);
    core::SeenSnapshot compact_snap = s.compact.snapshot();
    w.bytes(compact_snap.bits);
    w.u32(compact_snap.max_seq);
    w.u8(compact_snap.any ? 1 : 0);
    return w.take();
}

std::string
ChannelModel::describe_event(const State& s, Event ev) const
{
    switch (ev.kind) {
      case EventKind::kSend:
        for (std::size_t p = 0; p < s.payloads.size(); ++p)
            if (!s.payloads[p].sent)
                return strf("send(p%zu seq%u)", p, s.next_seq);
        return "send(?)";
      case EventKind::kDeliver:
      case EventKind::kDrop:
      case EventKind::kDuplicate: {
        const Packet& pkt = s.net[ev.arg];
        return strf("%s(%s p%u seq%u)", event_kind_name(ev.kind),
                    packet_kind_name(pkt.kind),
                    static_cast<unsigned>(pkt.payload), pkt.seq);
      }
      case EventKind::kRetransmit:
        return strf("retransmit(p%u seq%u)",
                    static_cast<unsigned>(ev.arg),
                    s.payloads[ev.arg].seq);
      case EventKind::kInjectMismatch:
        for (std::size_t p = 0; p < s.payloads.size(); ++p)
            if (s.payloads[p].sent && !s.payloads[p].acked)
                return strf("inject-mismatch(p%zu seq%u)", p,
                            s.payloads[p].seq);
        return "inject-mismatch(?)";
      case EventKind::kSwap:
        return strf("swap(epoch %u -> %u)",
                    static_cast<unsigned>(s.epoch),
                    static_cast<unsigned>(s.epoch ^ 1));
      case EventKind::kFin:
        return "fin";
      case EventKind::kSwitchReboot:
        return strf("switch-reboot(fence at %u)", s.next_seq);
      case EventKind::kHostCrash:
        return strf("host-crash(resume %u)", s.wal_promise);
    }
    return "?";
}

}  // namespace ask::pisa::model
