/**
 * @file
 * The fabric-routing automaton: residual forwarding over a real
 * core::Topology.
 *
 * The seen-window scheme is self-cleaning — the arrival of seq s
 * clears the slot seq s+W will use — so every switch that holds window
 * state for a channel must observe every sequence number of that
 * channel exactly once before it is consumed. The fabric guarantees
 * this by role: leaf ToRs observe and forward (an empty-bitmap
 * residual when the packet was fully absorbed), and only the tree root
 * (the tier switch, or the lone ToR of a single-rack fabric, or the
 * receiver's own ToR for rack-local channels that never transit the
 * tier) consumes and ACKs.
 *
 * This model builds the window-holder set of each channel from a real
 * Topology (one host per rack, the receiver in the last rack; channel
 * h belongs to host h) and checks, under delivery/drop/duplicate/
 * retransmit interleavings with a real PlainSeen per (holder, channel):
 *
 *  - routing-soundness (safety): each (channel, seq) observes fresh at
 *    most once per holder and is consumed at most once overall;
 *  - routing-coverage (on completed runs): every window-holding switch
 *    observed every sequence number exactly once, and every sequence
 *    was consumed exactly once at the channel's root.
 *
 * Retransmission is modeled with oracle ACKs (enabled while the seq is
 * unconsumed and in budget); the omitted behaviors — retransmits of
 * already-consumed seqs — only add duplicate deliveries, which the
 * kDuplicate event already covers at the last hop.
 */
#ifndef ASK_PISA_MODEL_ROUTING_MODEL_H
#define ASK_PISA_MODEL_ROUTING_MODEL_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ask/seen_window.h"
#include "ask/topology.h"
#include "ask/types.h"
#include "pisa/model/event.h"
#include "pisa/model/explorer.h"

namespace ask::pisa::model {

/** Exploration bounds of the routing automaton. */
struct RoutingBounds
{
    std::uint32_t racks = 2;           ///< topology: racks x 1 host
    std::uint32_t seqs = 2;            ///< sequence numbers per channel
    std::uint32_t window = 2;          ///< W of the holder windows
    std::uint32_t net_capacity = 4;
    std::uint32_t max_retransmits = 1; ///< per (channel, seq)
    std::uint32_t max_duplicates = 1;  ///< whole run
};

class RoutingModel
{
  public:
    /** Hop positions on a channel's path. */
    static constexpr std::uint8_t kAtTor = 0;   ///< at the owning ToR
    static constexpr std::uint8_t kAtTier = 1;  ///< at the tier switch

    struct Packet
    {
        std::uint8_t channel = 0;
        std::uint8_t seq = 0;
        std::uint8_t at = kAtTor;

        bool
        operator<(const Packet& o) const
        {
            if (channel != o.channel)
                return channel < o.channel;
            if (seq != o.seq)
                return seq < o.seq;
            return at < o.at;
        }
    };

    struct State
    {
        std::vector<std::uint8_t> next_send;    ///< per channel
        std::vector<std::uint8_t> consumed;     ///< per (channel, seq)
        std::vector<std::uint8_t> fresh_tor;    ///< per (channel, seq)
        std::vector<std::uint8_t> fresh_tier;   ///< per (channel, seq)
        std::vector<std::uint8_t> retx;         ///< per (channel, seq)
        std::vector<core::PlainSeen> tor_seen;  ///< per channel, owning ToR
        std::vector<core::PlainSeen> tier_seen; ///< per channel, tier
        std::vector<Packet> net;
        std::uint8_t dups = 0;
    };

    RoutingModel(const RoutingBounds& bounds, Mutation mutation);

    State initial() const;
    std::vector<Event> enabled(const State& s) const;
    State apply(const State& s, Event ev) const;
    std::optional<PropertyViolation> check(const State& s) const;
    std::string encode(const State& s) const;
    std::string describe_event(const State& s, Event ev) const;

    const core::Topology& topology() const { return topology_; }
    std::uint32_t num_channels() const { return bounds_.racks; }
    /** Does channel `ch`'s stream transit the tier switch? */
    bool crosses_tier(std::uint8_t ch) const;

  private:
    std::size_t
    slot(std::uint8_t ch, std::uint8_t seq) const
    {
        return static_cast<std::size_t>(ch) * bounds_.seqs + seq;
    }

    RoutingBounds bounds_;
    Mutation mutation_;
    core::Topology topology_;
    HostId receiver_;
};

}  // namespace ask::pisa::model

#endif  // ASK_PISA_MODEL_ROUTING_MODEL_H
