/**
 * @file
 * Bounded explicit-state exploration over a protocol automaton.
 *
 * A Model supplies:
 *
 *   struct State;                                  // copyable
 *   State initial() const;
 *   std::vector<Event> enabled(const State&) const;
 *   State apply(const State&, Event) const;        // total on enabled events
 *   std::optional<PropertyViolation> check(const State&) const;
 *   std::string encode(const State&) const;        // canonical bytes
 *   std::string describe_event(const State&, Event) const;
 *
 * explore() runs level-synchronous BFS with exact state hashing (two
 * states are merged iff their canonical encodings are byte-equal), so
 * the first counterexample found is of minimal event count. Only the
 * current and next BFS levels keep full states in memory; the visited
 * set stores encodings plus a parent/event table for trace
 * reconstruction.
 *
 * Counterexamples then pass through the same greedy-deletion shrink
 * discipline as fuzz scenarios (testing/shrink.h): repeatedly drop one
 * event, keep the candidate only when replay still violates, stop at a
 * fixpoint or budget. BFS minimality means deletions rarely apply; the
 * pass matters for depth-truncated searches and keeps the reported
 * trace 1-minimal regardless of how it was found.
 *
 * Exploration is fully deterministic: BFS order is the (deterministic)
 * insertion order, nothing iterates the hash map, and no clock or RNG
 * is consulted — the same model and bounds always produce the same
 * result, byte for byte.
 */
#ifndef ASK_PISA_MODEL_EXPLORER_H
#define ASK_PISA_MODEL_EXPLORER_H

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "pisa/model/event.h"

namespace ask::pisa::model {

/** One violated property: a stable identifier plus human diagnosis. */
struct PropertyViolation
{
    std::string property;  ///< e.g. "exactly-once", "parity-equivalence"
    std::string message;
};

struct ExploreOptions
{
    std::size_t max_states = 2'000'000;
    std::size_t max_depth = 128;
    std::uint32_t shrink_attempts = 128;
};

/** A found counterexample: the violated property and a minimal trace. */
struct Counterexample
{
    PropertyViolation violation;
    Trace trace;
    /** Human rendering of each trace event (from describe_event). */
    std::vector<std::string> rendered;
    std::uint32_t shrink_attempts = 0;
    std::uint32_t shrink_accepted = 0;
};

struct ExploreResult
{
    std::size_t states = 0;       ///< distinct states visited
    std::size_t transitions = 0;  ///< edges expanded
    std::size_t depth = 0;        ///< deepest completed BFS level
    bool truncated = false;       ///< hit max_states or max_depth
    std::optional<Counterexample> counterexample;
};

/**
 * Replay `trace` from the initial state. Returns the first violation
 * found (possibly before the trace ends), or nullopt when the trace
 * either completes cleanly or requests an event that is not enabled
 * (an invalid shrink candidate). `executed`/`rendered`, when non-null,
 * receive the prefix actually applied up to the violation.
 */
template <class Model>
std::optional<PropertyViolation>
run_trace(const Model& model, const Trace& trace, Trace* executed = nullptr,
          std::vector<std::string>* rendered = nullptr)
{
    typename Model::State state = model.initial();
    if (auto v = model.check(state))
        return v;
    for (const Event& ev : trace) {
        bool enabled = false;
        for (const Event& candidate : model.enabled(state))
            if (candidate == ev) {
                enabled = true;
                break;
            }
        if (!enabled)
            return std::nullopt;
        if (rendered != nullptr)
            rendered->push_back(model.describe_event(state, ev));
        if (executed != nullptr)
            executed->push_back(ev);
        state = model.apply(state, ev);
        if (auto v = model.check(state))
            return v;
    }
    return std::nullopt;
}

/** Greedy one-event-deletion shrink (see file comment). */
template <class Model>
Trace
shrink_trace(const Model& model, Trace trace, std::uint32_t budget,
             std::uint32_t& attempts, std::uint32_t& accepted)
{
    bool progress = true;
    while (progress && attempts < budget) {
        progress = false;
        for (std::size_t i = 0; i < trace.size() && attempts < budget; ++i) {
            Trace candidate;
            candidate.reserve(trace.size() - 1);
            for (std::size_t j = 0; j < trace.size(); ++j)
                if (j != i)
                    candidate.push_back(trace[j]);
            ++attempts;
            Trace executed;
            if (run_trace(model, candidate, &executed)) {
                // Keep only the prefix up to the violation: strictly
                // smaller, so the loop terminates.
                trace = std::move(executed);
                ++accepted;
                progress = true;
                break;
            }
        }
    }
    return trace;
}

template <class Model>
ExploreResult
explore(const Model& model, const ExploreOptions& opt = {})
{
    using State = typename Model::State;
    struct Node
    {
        std::int32_t parent;
        Event via;
    };

    ExploreResult result;
    std::vector<Node> nodes;
    std::unordered_map<std::string, std::int32_t> visited;
    // (node index, state) pairs of the current BFS level.
    std::vector<std::pair<std::int32_t, State>> frontier;

    auto finish_with = [&](std::int32_t node, PropertyViolation violation) {
        Trace trace;
        for (std::int32_t i = node; nodes[i].parent >= 0;
             i = nodes[i].parent)
            trace.push_back(nodes[i].via);
        for (std::size_t lo = 0, hi = trace.size(); lo + 1 < hi; ++lo, --hi)
            std::swap(trace[lo], trace[hi - 1]);

        Counterexample cex;
        cex.trace = shrink_trace(model, std::move(trace),
                                 opt.shrink_attempts, cex.shrink_attempts,
                                 cex.shrink_accepted);
        Trace executed;
        if (auto v = run_trace(model, cex.trace, &executed, &cex.rendered)) {
            cex.violation = *v;
            cex.trace = std::move(executed);
        } else {
            // Shrinking is validity-checked, so the final trace must
            // still violate; keep the original diagnosis if not.
            cex.violation = std::move(violation);
        }
        result.counterexample = std::move(cex);
    };

    // Returns true when exploration must stop (violation found).
    auto admit = [&](State&& state, std::int32_t parent, Event via,
                     std::vector<std::pair<std::int32_t, State>>& next)
        -> bool {
        auto [it, fresh] = visited.emplace(
            model.encode(state), static_cast<std::int32_t>(nodes.size()));
        if (!fresh)
            return false;
        nodes.push_back(Node{parent, via});
        ++result.states;
        if (auto v = model.check(state)) {
            finish_with(it->second, std::move(*v));
            return true;
        }
        next.emplace_back(it->second, std::move(state));
        return false;
    };

    if (admit(model.initial(), -1, Event{}, frontier))
        return result;

    while (!frontier.empty()) {
        if (result.depth >= opt.max_depth) {
            result.truncated = true;
            return result;
        }
        std::vector<std::pair<std::int32_t, State>> next;
        for (const auto& [index, state] : frontier) {
            for (const Event& ev : model.enabled(state)) {
                ++result.transitions;
                if (admit(model.apply(state, ev), index, ev, next))
                    return result;
                if (result.states >= opt.max_states) {
                    result.truncated = true;
                    return result;
                }
            }
        }
        frontier = std::move(next);
        ++result.depth;
    }
    return result;
}

}  // namespace ask::pisa::model

#endif  // ASK_PISA_MODEL_EXPLORER_H
