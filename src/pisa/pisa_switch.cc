#include "pisa/pisa_switch.h"

#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"

namespace ask::pisa {

/** Emitter that sends program outputs out of the switch after the
 *  pipeline latency. */
class PisaSwitch::PortEmitter : public Emitter
{
  public:
    PortEmitter(PisaSwitch& sw) : sw_(sw) {}

    void
    emit(net::NodeId next_hop, net::Packet pkt) override
    {
        ++sw_.stats_.packets_out;
        // Resolve multi-switch routes: the program names the final port
        // target; the FIB may redirect it toward another switch.
        net::NodeId hop = sw_.next_hop(next_hop);
        // Egress after the pipeline latency: hand the packet to the
        // outgoing link at that time.
        net::NodeId self = sw_.node_id();
        net::Network& network = sw_.network_;
        Nanoseconds latency = sw_.pipeline_latency_ns_;
        network.simulator().schedule_after(
            latency, [&network, self, hop, p = std::move(pkt)]() mutable {
                network.send(self, hop, std::move(p));
            });
    }

  private:
    PisaSwitch& sw_;
};

PisaSwitch::PisaSwitch(net::Network& network, std::size_t num_stages,
                       std::size_t sram_per_stage,
                       Nanoseconds pipeline_latency_ns)
    : network_(network),
      pipeline_(num_stages, sram_per_stage),
      pipeline_latency_ns_(pipeline_latency_ns)
{
}

void
PisaSwitch::set_route(net::NodeId dst, net::NodeId next)
{
    routes_[dst] = next;
}

net::NodeId
PisaSwitch::next_hop(net::NodeId dst) const
{
    auto it = routes_.find(dst);
    return it == routes_.end() ? dst : it->second;
}

void
PisaSwitch::install(SwitchProgram* program)
{
    ASK_ASSERT(program != nullptr, "cannot install a null program");
    program_ = program;
}

void
PisaSwitch::register_metrics(obs::MetricsRegistry& registry,
                             const std::string& prefix) const
{
    registry.expose(prefix + "packets_in", &stats_.packets_in, "pisa");
    registry.expose(prefix + "packets_out", &stats_.packets_out, "pisa");
    registry.expose(prefix + "passes", &stats_.passes, "pisa");
    registry.expose(prefix + "dropped_offline", &stats_.dropped_offline,
                    "pisa");
}

void
PisaSwitch::receive(net::Packet pkt)
{
    ASK_ASSERT(program_ != nullptr, "switch received a packet with no program");
    if (offline_) {
        ++stats_.dropped_offline;
        return;
    }
    ++stats_.packets_in;
    ++stats_.passes;
    pipeline_.begin_pass();
    PortEmitter emitter(*this);
    program_->process(std::move(pkt), emitter);
}

}  // namespace ask::pisa
