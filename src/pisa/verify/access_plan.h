/**
 * @file
 * AccessPlan: a declarative IR describing every register-array access a
 * switch program can make during one pipeline pass.
 *
 * A plan has two halves:
 *
 *  - **Array declarations**: per named array, its stage placement,
 *    entry count, and register width — everything the install step
 *    needs to lay the program out, and everything the verifier needs
 *    to prove the layout fits a pipeline's budgets.
 *
 *  - **Pass plans**: per packet-kind entry point (DATA, LONG_DATA,
 *    SWAP, plain forwarding), a tree of guarded accesses and
 *    if/else branches describing the control-flow structure the
 *    program walks within one pass — stale-vs-fresh sequence checks,
 *    even/odd seen segments, epoch-parity shadow-copy selection.
 *
 * The IR is deliberately tiny: a pass body is a sequence of steps, a
 * step is either a single register access or a branch whose arms are
 * again sequences. Guards carry a display label plus the names of the
 * register arrays whose pass results feed the predicate (header-only
 * predicates have no dependencies). An access with a non-empty guard
 * is *predicated*: it may be skipped at runtime (the stateful ALU is
 * reserved but disabled), which is exactly how the dynamic
 * cross-check (`AccessOracle`) treats it.
 *
 * The verifier (`verifier.h`) walks every root-to-leaf path of every
 * pass and proves PISA-legality statically; the oracle (`oracle.h`)
 * replays dynamic accesses against the same paths.
 */
#ifndef ASK_PISA_VERIFY_ACCESS_PLAN_H
#define ASK_PISA_VERIFY_ACCESS_PLAN_H

#include <cstdint>
#include <string>
#include <vector>

namespace ask::pisa::verify {

/** What the single per-pass stateful-ALU operation does to the array. */
enum class AccessKind : std::uint8_t
{
    kRead,  ///< read-only (value consumed, register unchanged)
    kRmw,   ///< read-modify-write
    kWrite, ///< write-only (previous value ignored)
};

/** Short display name ("read" / "RMW" / "write"). */
const char* access_kind_name(AccessKind kind);

/**
 * Declaration of one reduction operator the program's stateful ALUs
 * implement. PISA ALUs support a small fixed menu of update functions
 * (add, signed/unsigned min/max, bitwise ops); a plan lists the ones
 * the program compiles in so install-time binding can reject any op
 * the hardware pass was not built for — an undeclared op would
 * silently aggregate with the wrong function.
 */
struct ReduceOpDecl
{
    /** Wire/config id of the operator (ask::core::ReduceOp value). */
    std::uint8_t id = 0;
    /** Display name ("sum", "max", ...). */
    std::string name;
    /** Operand width the ALU folds at; 1..32 bits (vPart width). */
    std::uint32_t value_bits = 0;
};

/** Declaration of one register array: placement and shape. */
struct ArrayDecl
{
    std::string name;
    /** Stage index the array is placed on. */
    std::size_t stage = 0;
    /** Number of registers. */
    std::size_t entries = 0;
    /** Register width; 1..64 bits. */
    std::uint32_t width_bits = 0;

    /** SRAM footprint in bytes (entries are bit-packed, matching
     *  RegisterArray::sram_bytes()). */
    std::size_t sram_bytes() const;
};

/**
 * A predicate attached to an access or branch: a human-readable label
 * plus the register arrays whose current-pass results feed the
 * predicate. Header-only predicates (packet fields, match-table
 * lookups) list no dependencies.
 */
struct Guard
{
    std::string label;
    std::vector<std::string> deps;
};

struct Arm;

/**
 * One step of a pass body: either a single register access or a
 * branch over guard arms. (A tagged struct rather than std::variant so
 * the recursive Step/Arm/Seq shape needs no indirection.)
 */
struct Step
{
    enum class Kind : std::uint8_t { kAccess, kBranch };

    Kind kind = Kind::kAccess;

    // -- kAccess fields ----------------------------------------------------
    std::string array;
    AccessKind access = AccessKind::kRmw;
    /** Predication: a non-empty label means the ALU may be disabled for
     *  this pass (the access is skippable at runtime). `guard.deps`
     *  must name arrays of strictly earlier stages. */
    Guard guard;
    /** Data dependencies of a *mandatory* access: arrays whose pass
     *  results select the operation performed (not whether it runs).
     *  Same forward-only stage rule as guard deps. */
    std::vector<std::string> data_deps;

    // -- kBranch fields ----------------------------------------------------
    std::vector<Arm> arms;
};

/** An ordered sequence of steps (a pass body or a branch arm). */
struct Seq
{
    std::vector<Step> steps;
};

/** One arm of a branch. */
struct Arm
{
    std::string label;
    Seq body;
};

/** The access structure of one packet-kind entry point. */
struct PassPlan
{
    std::string name;
    Seq body;
};

/** The full plan: declarations plus every pass's access structure. */
struct AccessPlan
{
    /** Program name (diagnostics). */
    std::string program;
    std::vector<ArrayDecl> arrays;
    std::vector<PassPlan> passes;
    /** Reduction operators the aggregation pass implements. */
    std::vector<ReduceOpDecl> reduce_ops;

    /** Declaration lookup; nullptr when absent. */
    const ArrayDecl* find_array(const std::string& name) const;

    /** Reduce-op lookup by id; nullptr when the op is undeclared. */
    const ReduceOpDecl* find_reduce_op(std::uint8_t id) const;
};

// ---- construction helpers ------------------------------------------------

/** An unconditional access. */
Step access(std::string array, AccessKind kind);

/** An unconditional access whose operation consumes `data_deps`. */
Step access(std::string array, AccessKind kind,
            std::vector<std::string> data_deps);

/** A predicated (skippable) access. */
Step guarded_access(std::string array, AccessKind kind, Guard guard);

/** A branch over `arms`, predicated on `guard`. */
Step branch(Guard guard, std::vector<Arm> arms);

}  // namespace ask::pisa::verify

#endif  // ASK_PISA_VERIFY_ACCESS_PLAN_H
