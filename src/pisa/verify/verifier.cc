#include "pisa/verify/verifier.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <utility>

namespace ask::pisa::verify {

namespace {

/** Hard cap on enumerated paths: plans are tiny control-flow trees;
 *  anything past this is a malformed (or adversarial) plan. */
constexpr std::size_t kMaxPaths = 4096;

/** One access along an enumerated path, with the guards of every
 *  enclosing branch (whose deps constrain it). */
struct RichEntry
{
    const Step* step = nullptr;
    std::vector<const Guard*> enclosing;
};

/** A fully materialized root-to-leaf path. */
struct RichPath
{
    std::string pass;
    std::vector<std::string> arms;
    std::vector<RichEntry> entries;
    /** Branch decision points: the guard and how many accesses
     *  preceded it (its deps must be produced by those). */
    struct BranchPoint
    {
        const Guard* guard = nullptr;
        std::size_t entry_index = 0;
    };
    std::vector<BranchPoint> branches;

    std::string
    trace() const
    {
        std::string t = pass;
        for (std::size_t i = 0; i < arms.size(); ++i)
            t += (i == 0 ? ": " : " -> ") + arms[i];
        return t;
    }
};

using PathSink = std::function<void(RichPath&)>;

/** DFS over a Seq in continuation-passing style: `done` receives the
 *  path state once every step (and the caller's remaining steps) ran. */
void
walk_seq(const Seq& seq, std::size_t i, RichPath& cur,
         const std::vector<const Guard*>& scope, std::size_t& paths,
         const PathSink& done)
{
    if (paths > kMaxPaths)
        return;  // pruned; reported as a violation by the caller
    if (i == seq.steps.size()) {
        done(cur);
        return;
    }
    const Step& step = seq.steps[i];
    if (step.kind == Step::Kind::kAccess) {
        cur.entries.push_back({&step, scope});
        walk_seq(seq, i + 1, cur, scope, paths, done);
        cur.entries.pop_back();
        return;
    }
    for (const Arm& arm : step.arms) {
        cur.arms.push_back(arm.label);
        cur.branches.push_back({&step.guard, cur.entries.size()});
        std::vector<const Guard*> inner = scope;
        inner.push_back(&step.guard);
        walk_seq(arm.body, 0, cur, inner, paths,
                 [&](RichPath& p) { walk_seq(seq, i + 1, p, scope, paths, done); });
        cur.branches.pop_back();
        cur.arms.pop_back();
    }
}

void
enumerate_rich(const AccessPlan& plan, std::size_t& paths,
               const PathSink& sink)
{
    for (const auto& pass : plan.passes) {
        RichPath cur;
        cur.pass = pass.name;
        walk_seq(pass.body, 0, cur, {}, paths, [&](RichPath& p) {
            ++paths;
            if (paths <= kMaxPaths)
                sink(p);
        });
    }
}

/** Collects violations, deduplicating identical (rule, message) pairs
 *  that different paths reach (the first path trace wins). */
class Reporter
{
  public:
    explicit Reporter(VerifyResult& out) : out_(out) {}

    void
    add(std::string rule, std::string message, std::string path = "")
    {
        std::string key = rule + '\0' + message;
        if (!seen_.insert(std::move(key)).second)
            return;
        out_.violations.push_back(
            {std::move(rule), std::move(message), std::move(path)});
    }

  private:
    VerifyResult& out_;
    std::set<std::string> seen_;
};

void
check_structure(const AccessPlan& plan, const PipelineBudget& budget,
                Reporter& report)
{
    std::set<std::string> names;
    std::map<std::size_t, std::size_t> arrays_per_stage;
    std::map<std::size_t, std::size_t> sram_per_stage;

    for (const auto& d : plan.arrays) {
        if (!names.insert(d.name).second)
            report.add("declaration",
                       "array '" + d.name + "' declared twice");
        if (d.entries == 0)
            report.add("declaration", "array '" + d.name + "' is empty");
        if (d.width_bits < 1 || d.width_bits > 64)
            report.add("declaration",
                       "array '" + d.name + "' width must be 1..64 bits: " +
                           std::to_string(d.width_bits));
        if (d.stage >= budget.num_stages) {
            report.add("stage-count",
                       "array '" + d.name + "' placed on stage " +
                           std::to_string(d.stage) +
                           " but the pipeline has only " +
                           std::to_string(budget.num_stages) +
                           " stages (chain pipelines or shrink the program)");
            continue;  // budgets of a nonexistent stage are meaningless
        }
        ++arrays_per_stage[d.stage];
        sram_per_stage[d.stage] += d.sram_bytes();
    }
    for (const auto& [stage, count] : arrays_per_stage) {
        if (count > budget.max_arrays_per_stage)
            report.add("stage-arrays",
                       "stage " + std::to_string(stage) + " hosts " +
                           std::to_string(count) + " register arrays (max " +
                           std::to_string(budget.max_arrays_per_stage) + ")");
    }
    for (const auto& [stage, bytes] : sram_per_stage) {
        if (bytes > budget.sram_per_stage)
            report.add("sram", "stage " + std::to_string(stage) +
                                   " SRAM exhausted: arrays need " +
                                   std::to_string(bytes) + " bytes > budget " +
                                   std::to_string(budget.sram_per_stage));
    }

    std::set<unsigned> op_ids;
    std::set<std::string> op_names;
    for (const auto& op : plan.reduce_ops) {
        if (!op_ids.insert(op.id).second)
            report.add("reduce-op", "reduce op id " + std::to_string(op.id) +
                                        " declared twice");
        if (op.name.empty())
            report.add("reduce-op", "reduce op id " + std::to_string(op.id) +
                                        " has no name");
        else if (!op_names.insert(op.name).second)
            report.add("reduce-op",
                       "reduce op '" + op.name + "' declared twice");
        if (op.value_bits < 1 || op.value_bits > 32)
            report.add("reduce-op",
                       "reduce op '" + op.name +
                           "' operand width must be 1..32 bits: " +
                           std::to_string(op.value_bits));
    }
}

void
check_path(const AccessPlan& plan, const RichPath& path, Reporter& report,
           std::set<std::string>& used)
{
    std::string trace = path.trace();
    std::map<std::string, std::size_t> accessed_stage;  // array -> stage
    std::size_t max_stage = 0;
    std::string max_array;

    auto check_dep = [&](const RichEntry& entry, const ArrayDecl& decl,
                         const std::string& dep, const char* what) {
        const ArrayDecl* dd = plan.find_array(dep);
        if (dd == nullptr) {
            report.add("forward-dependency",
                       "'" + decl.name + "' " + what + " on undeclared array '" +
                           dep + "'",
                       trace);
            return;
        }
        if (accessed_stage.find(dep) == accessed_stage.end()) {
            report.add("forward-dependency",
                       "'" + decl.name + "' " + what + " on '" + dep +
                           "', which is not accessed earlier on this path",
                       trace);
            return;
        }
        if (dd->stage >= decl.stage) {
            report.add(
                "forward-dependency",
                "stage " + std::to_string(decl.stage) + " '" + decl.name +
                    "' " + what + " on '" + dep + "' (stage " +
                    std::to_string(dd->stage) +
                    "): an array may only feed guards of later stages",
                trace);
        }
        (void)entry;
    };

    std::size_t branch_cursor = 0;
    for (std::size_t idx = 0; idx < path.entries.size(); ++idx) {
        const RichEntry& entry = path.entries[idx];

        // Branch predicates decided before this access: their deps must
        // already have been produced on this path.
        while (branch_cursor < path.branches.size() &&
               path.branches[branch_cursor].entry_index <= idx) {
            const auto& bp = path.branches[branch_cursor];
            if (bp.entry_index == idx) {
                for (const auto& dep : bp.guard->deps) {
                    bool earlier = accessed_stage.count(dep) != 0;
                    if (!earlier)
                        report.add("forward-dependency",
                                   "branch '" + bp.guard->label +
                                       "' depends on '" + dep +
                                       "', which is not accessed earlier "
                                       "on this path",
                                   trace);
                }
            }
            ++branch_cursor;
        }

        used.insert(entry.step->array);
        const ArrayDecl* decl = plan.find_array(entry.step->array);
        if (decl == nullptr) {
            report.add("coverage",
                       "access to undeclared array '" + entry.step->array + "'",
                       trace);
            continue;
        }

        auto [it, first] = accessed_stage.emplace(decl->name, decl->stage);
        (void)it;
        if (!first) {
            report.add("single-access",
                       "stage " + std::to_string(decl->stage) + " '" +
                           decl->name + "' " +
                           access_kind_name(entry.step->access) +
                           " reached twice via " + trace,
                       trace);
            continue;
        }

        if (decl->stage < max_stage) {
            report.add("backward-stage",
                       "stage " + std::to_string(decl->stage) + " '" +
                           decl->name + "' accessed after stage " +
                           std::to_string(max_stage) + " '" + max_array + "'",
                       trace);
        } else {
            max_stage = decl->stage;
            max_array = decl->name;
        }

        for (const auto& dep : entry.step->guard.deps)
            check_dep(entry, *decl, dep, "guard depends");
        for (const auto& dep : entry.step->data_deps)
            check_dep(entry, *decl, dep, "operation depends");
        for (const Guard* g : entry.enclosing)
            for (const auto& dep : g->deps)
                check_dep(entry, *decl, dep,
                          ("branch '" + g->label + "' depends").c_str());
    }

    // Trailing branch points (arms with no subsequent access): every
    // access of the path precedes them, so the final map is the check.
    for (; branch_cursor < path.branches.size(); ++branch_cursor) {
        for (const auto& dep : path.branches[branch_cursor].guard->deps) {
            if (accessed_stage.count(dep) == 0)
                report.add("forward-dependency",
                           "branch '" +
                               path.branches[branch_cursor].guard->label +
                               "' depends on '" + dep +
                               "', which is not accessed earlier on this path",
                           trace);
        }
    }
}

}  // namespace

std::string
VerifyResult::describe() const
{
    std::ostringstream oss;
    oss << (ok() ? "PISA-legal" : "NOT PISA-legal") << " (" << paths_checked
        << " paths checked";
    if (!ok())
        oss << ", " << violations.size() << " violations";
    oss << ")";
    for (const auto& v : violations) {
        oss << "\n  [" << v.rule << "] " << v.message;
        if (!v.path.empty() && v.message.find(v.path) == std::string::npos)
            oss << " (via " << v.path << ")";
    }
    return oss.str();
}

VerifyResult
verify(const AccessPlan& plan, const PipelineBudget& budget)
{
    VerifyResult out;
    Reporter report(out);

    if (budget.num_stages == 0) {
        report.add("stage-count", "pipeline has no stages");
        return out;
    }
    check_structure(plan, budget, report);

    std::set<std::string> used;
    std::size_t paths = 0;
    enumerate_rich(plan, paths,
                   [&](RichPath& p) { check_path(plan, p, report, used); });
    if (paths > kMaxPaths) {
        report.add("declaration",
                   "plan enumerates more than " + std::to_string(kMaxPaths) +
                       " paths; branch structure is malformed");
        out.paths_checked = kMaxPaths;
    } else {
        out.paths_checked = paths;
    }

    for (const auto& d : plan.arrays) {
        if (used.count(d.name) == 0)
            report.add("coverage", "declared array '" + d.name +
                                       "' is never accessed by any pass");
    }
    return out;
}

std::vector<PathListing>
enumerate_paths(const AccessPlan& plan)
{
    std::vector<PathListing> out;
    std::size_t paths = 0;
    enumerate_rich(plan, paths, [&](RichPath& p) {
        PathListing listing;
        listing.trace = p.trace();
        for (const auto& e : p.entries) {
            const ArrayDecl* decl = plan.find_array(e.step->array);
            listing.accesses.push_back({e.step->array,
                                        decl != nullptr ? decl->stage : 0,
                                        e.step->access,
                                        !e.step->guard.label.empty()});
        }
        out.push_back(std::move(listing));
    });
    return out;
}

}  // namespace ask::pisa::verify
