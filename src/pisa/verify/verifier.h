/**
 * @file
 * The static PISA-legality verifier.
 *
 * Given an AccessPlan and a pipeline's declared budgets, the verifier
 * enumerates every root-to-leaf path through every pass plan and
 * proves, for each path:
 *
 *  - **single access**: no register array is accessed more than once
 *    (one stateful-ALU operation per array per pass, paper §2.2.1);
 *  - **forward stages**: accesses proceed in non-decreasing stage
 *    order (a packet traverses the pipeline once, front to back);
 *  - **forward dependencies**: an array may only feed guards (and the
 *    data dependencies of mandatory accesses) of *strictly later*
 *    stages, and must have been accessed earlier on the same path —
 *    the stateful ALU's result is available to downstream stages
 *    only, mirroring the P4 compiler's dependency analysis.
 *
 * Structurally, independent of paths:
 *
 *  - every declared array fits its stage (stage index in range, at
 *    most `max_arrays_per_stage` arrays per stage, per-stage SRAM);
 *  - **coverage**: every accessed array is declared and every
 *    declared array is reachable by some path (no dead state).
 *
 * Verification failures carry a path trace naming the branch arms
 * that reach the violation, e.g.
 * `stage 2 'aa_3' RMW reached twice via data: fresh -> task -> first`.
 */
#ifndef ASK_PISA_VERIFY_VERIFIER_H
#define ASK_PISA_VERIFY_VERIFIER_H

#include <cstdint>
#include <string>
#include <vector>

#include "pisa/verify/access_plan.h"

namespace ask::pisa::verify {

/** The budgets a plan is verified against. */
struct PipelineBudget
{
    std::size_t num_stages = 0;
    std::size_t sram_per_stage = 0;
    std::size_t max_arrays_per_stage = 4;
};

/** One statically proven violation. */
struct Violation
{
    /** Rule identifier: "single-access", "backward-stage",
     *  "forward-dependency", "stage-count", "stage-arrays", "sram",
     *  "coverage", "declaration", "reduce-op". */
    std::string rule;
    std::string message;
    /** Branch-arm trace of the offending path ("" for structural
     *  violations), e.g. "data: fresh -> even-segment -> task". */
    std::string path;
};

/** Everything a verification run proved (or failed to). */
struct VerifyResult
{
    std::vector<Violation> violations;
    /** Root-to-leaf paths enumerated across all passes. */
    std::size_t paths_checked = 0;

    bool ok() const { return violations.empty(); }

    /** Multi-line human-readable rendering of every violation. */
    std::string describe() const;
};

/** Statically verify `plan` against `budget`. */
VerifyResult verify(const AccessPlan& plan, const PipelineBudget& budget);

/**
 * One fully enumerated path: the branch-arm trace and the ordered
 * accesses along it. Exposed for the report CLI and the dynamic
 * oracle, which replay the same enumeration the verifier proves over.
 */
struct PathListing
{
    /** "pass: arm -> arm -> ..." (just "pass" when branch-free). */
    std::string trace;
    /** Accesses in path order. */
    struct Entry
    {
        std::string array;
        std::size_t stage = 0;
        AccessKind kind = AccessKind::kRmw;
        /** Predicated (skippable at runtime). */
        bool optional = false;
    };
    std::vector<Entry> accesses;
};

/**
 * Enumerate every path of every pass. Requires a plan whose arrays
 * are all declared (run verify() first); undeclared arrays get stage 0.
 */
std::vector<PathListing> enumerate_paths(const AccessPlan& plan);

}  // namespace ask::pisa::verify

#endif  // ASK_PISA_VERIFY_VERIFIER_H
