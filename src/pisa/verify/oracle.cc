#include "pisa/verify/oracle.h"

#include <sstream>

namespace ask::pisa::verify {

AccessOracle::AccessOracle(const AccessPlan& plan)
    : paths_(enumerate_paths(plan))
{
}

void
AccessOracle::begin_pass()
{
    ++passes_;
    pass_log_.clear();
    states_.clear();
    states_.reserve(paths_.size());
    for (std::size_t p = 0; p < paths_.size(); ++p)
        states_.emplace_back(p, 0);
}

bool
AccessOracle::on_access(const std::string& array, std::string* diag)
{
    ++accesses_;
    pass_log_.push_back(array);

    std::vector<std::pair<std::size_t, std::size_t>> next;
    for (const auto& [p, pos] : states_) {
        const auto& accesses = paths_[p].accesses;
        // Advance over predicated accesses whose ALU was disabled this
        // pass; a mandatory access that does not match kills the path.
        for (std::size_t i = pos; i < accesses.size(); ++i) {
            if (accesses[i].array == array) {
                next.emplace_back(p, i + 1);
                break;
            }
            if (!accesses[i].optional)
                break;
        }
    }
    states_ = std::move(next);
    if (!states_.empty())
        return true;

    if (diag != nullptr) {
        std::ostringstream oss;
        oss << "access to '" << array
            << "' was not predicted by the access plan; pass so far:";
        for (const auto& a : pass_log_)
            oss << " " << a;
        oss << " (no plan path admits this sequence)";
        *diag = oss.str();
    }
    return false;
}

}  // namespace ask::pisa::verify
