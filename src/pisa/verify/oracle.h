/**
 * @file
 * AccessOracle: the runtime half of the static verifier.
 *
 * Built from a (verified) AccessPlan, the oracle replays every
 * dynamic register-array access of a pipeline pass against the plan's
 * enumerated paths. It is an NFA over path positions: a pass starts
 * with every path's start state alive; each access advances the
 * states that can consume it (skipping predicated accesses whose ALUs
 * were disabled this pass); a pass whose access lands in no surviving
 * state was *not predicted by the plan* — the program executed an
 * access the static proof never saw, and the caller panics.
 *
 * Enabled via `Pipeline::set_access_oracle()` — the
 * `ASK_VERIFY_ACCESSES` cross-check mode — and by the fuzzer's
 * differential campaigns, which arm it unconditionally.
 */
#ifndef ASK_PISA_VERIFY_ORACLE_H
#define ASK_PISA_VERIFY_ORACLE_H

#include <cstdint>
#include <string>
#include <vector>

#include "pisa/verify/access_plan.h"
#include "pisa/verify/verifier.h"

namespace ask::pisa::verify {

/** Replays dynamic accesses against an AccessPlan's paths. */
class AccessOracle
{
  public:
    /** `plan` must have passed verify(); the oracle enumerates its
     *  paths once, up front. */
    explicit AccessOracle(const AccessPlan& plan);

    /** Start a new pass: every path is alive again. */
    void begin_pass();

    /**
     * Record one data-plane access. Returns true when at least one
     * plan path predicts it; on false, `diag` (if non-null) receives
     * the accesses observed this pass and the paths that died.
     */
    bool on_access(const std::string& array, std::string* diag);

    /** Passes started (for cross-checking against switch counters). */
    std::uint64_t passes() const { return passes_; }

    /** Accesses checked across all passes. */
    std::uint64_t accesses() const { return accesses_; }

  private:
    std::vector<PathListing> paths_;
    /** Alive NFA states: (path index, next access position). */
    std::vector<std::pair<std::size_t, std::size_t>> states_;
    /** Accesses observed in the current pass (diagnostics). */
    std::vector<std::string> pass_log_;
    std::uint64_t passes_ = 0;
    std::uint64_t accesses_ = 0;
};

}  // namespace ask::pisa::verify

#endif  // ASK_PISA_VERIFY_ORACLE_H
