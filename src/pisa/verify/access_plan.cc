#include "pisa/verify/access_plan.h"

#include <utility>

namespace ask::pisa::verify {

const char*
access_kind_name(AccessKind kind)
{
    switch (kind) {
      case AccessKind::kRead: return "read";
      case AccessKind::kRmw: return "RMW";
      case AccessKind::kWrite: return "write";
    }
    return "?";
}

std::size_t
ArrayDecl::sram_bytes() const
{
    return (entries * width_bits + 7) / 8;
}

const ArrayDecl*
AccessPlan::find_array(const std::string& name) const
{
    for (const auto& d : arrays)
        if (d.name == name)
            return &d;
    return nullptr;
}

const ReduceOpDecl*
AccessPlan::find_reduce_op(std::uint8_t id) const
{
    for (const auto& op : reduce_ops)
        if (op.id == id)
            return &op;
    return nullptr;
}

Step
access(std::string array, AccessKind kind)
{
    Step s;
    s.kind = Step::Kind::kAccess;
    s.array = std::move(array);
    s.access = kind;
    return s;
}

Step
access(std::string array, AccessKind kind, std::vector<std::string> data_deps)
{
    Step s = access(std::move(array), kind);
    s.data_deps = std::move(data_deps);
    return s;
}

Step
guarded_access(std::string array, AccessKind kind, Guard guard)
{
    Step s = access(std::move(array), kind);
    s.guard = std::move(guard);
    return s;
}

Step
branch(Guard guard, std::vector<Arm> arms)
{
    Step s;
    s.kind = Step::Kind::kBranch;
    s.guard = std::move(guard);
    s.arms = std::move(arms);
    return s;
}

}  // namespace ask::pisa::verify
