/**
 * @file
 * A PISA pipeline: an ordered sequence of match-action stages.
 *
 * A packet traverses the stages sequentially exactly once per pass
 * (paper §2.2.1). The pipeline tracks the pass discipline: begin_pass()
 * opens a pass, and register accesses must proceed in non-decreasing
 * stage order within it.
 */
#ifndef ASK_PISA_PIPELINE_H
#define ASK_PISA_PIPELINE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "pisa/stage.h"

namespace ask::pisa {

namespace verify {
class AccessOracle;
}  // namespace verify

/** Default number of match-action stages per pipeline (Tofino3: 16). */
constexpr std::size_t kDefaultStagesPerPipeline = 16;

/** An ordered sequence of stages with a per-pass access discipline. */
class Pipeline
{
  public:
    /**
     * @param num_stages stage count (chained pipelines are modeled as one
     *        longer pipeline; see DESIGN.md).
     * @param sram_per_stage SRAM budget per stage in bytes.
     */
    explicit Pipeline(std::size_t num_stages = kDefaultStagesPerPipeline,
                      std::size_t sram_per_stage = kDefaultStageSramBytes);

    Pipeline(const Pipeline&) = delete;
    Pipeline& operator=(const Pipeline&) = delete;

    /** Open a new pass: resets the per-pass access state. */
    void begin_pass();

    /** Current pass number (increments on begin_pass). */
    std::uint64_t pass_epoch() const { return pass_epoch_; }

    /** Called by RegisterArray::rmw to enforce stage ordering. Inline:
     *  one call per stateful access on the data-plane hot path. */
    void
    touch_stage(std::size_t stage_index)
    {
        // A packet flows forward through the stages; a program accessing
        // a stage earlier than one it already used would require a second
        // pass on real hardware.
        if (stage_index < pass_stage_cursor_) [[unlikely]]
            touch_stage_backwards(stage_index);
        pass_stage_cursor_ = stage_index;
    }

    /**
     * Arm the ASK_VERIFY_ACCESSES runtime cross-check: every data-plane
     * access of every subsequent pass is replayed against `oracle`'s
     * access plan, and an access the static proof never predicted
     * panics with the pass's access log. `oracle` is borrowed (owned by
     * the installed program); nullptr disarms.
     */
    void set_access_oracle(verify::AccessOracle* oracle);
    verify::AccessOracle* access_oracle() const { return oracle_; }

    /** Called by RegisterArray::rmw: cross-check one access against
     *  the armed oracle (no-op when disarmed — the common case, so only
     *  the null test sits on the hot path). */
    void
    check_predicted(const std::string& array_name)
    {
        if (oracle_ != nullptr) [[unlikely]]
            check_predicted_armed(array_name);
    }

    std::size_t num_stages() const { return stages_.size(); }
    Stage* stage(std::size_t i) { return stages_.at(i).get(); }

    /** Look up an array by name across all stages; nullptr if absent. */
    RegisterArray* find_array(const std::string& name) const;

    /**
     * Zero every register of every array (chaos injection: the SRAM
     * state a switch reboot destroys). Array declarations survive — a
     * rebooted switch reloads its program image; only the stateful
     * register contents are volatile.
     */
    void wipe_registers();

    /** Total SRAM used across stages. */
    std::size_t sram_used_bytes() const;

    /** Total SRAM budget across stages. */
    std::size_t sram_budget_bytes() const;

  private:
    [[noreturn]] void touch_stage_backwards(std::size_t stage_index) const;
    void check_predicted_armed(const std::string& array_name);

    std::vector<std::unique_ptr<Stage>> stages_;
    std::uint64_t pass_epoch_ = 0;
    std::size_t pass_stage_cursor_ = 0;
    verify::AccessOracle* oracle_ = nullptr;  ///< borrowed, may be null
};

// RegisterArray::check_access guards every data-plane rmw, so it must
// inline into the switch program's per-packet loop — but it walks
// array -> stage -> pipeline, so its body needs the two classes above and
// lives here rather than in register_array.h.
inline void
RegisterArray::check_access(std::size_t index)
{
    ASK_ASSERT(stage_ != nullptr,
               "register array '", name_, "' not placed on a stage");
    ASK_ASSERT(index < values_.size(),
               "index ", index, " out of range in '", name_, "'");
    Pipeline* pipe = stage_->pipeline();
    std::uint64_t epoch = pipe->pass_epoch();
    // PISA: one stateful-ALU access per register array per packet pass.
    if (pass_epoch_ == epoch) [[unlikely]] {
        panic("register array '", name_,
              "' accessed twice in one pipeline pass");
    }
    pipe->touch_stage(stage_->index());
    pipe->check_predicted(name_);
    pass_epoch_ = epoch;
    ++access_count_;
}

}  // namespace ask::pisa

#endif  // ASK_PISA_PIPELINE_H
