#include "baselines/noaggr.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace ask::baselines {

void
ForwardProgram::process(net::Packet pkt, pisa::Emitter& emit)
{
    net::NodeId dst = pkt.dst;
    emit.emit(dst, std::move(pkt));
}

namespace {

constexpr std::uint32_t kTupleBytes = 8;
constexpr std::uint32_t kHeadersBytes = net::kIpHeaderBytes + 20;

/** Receiving host: per-core processing of arriving bulk packets. */
class BulkReceiver : public net::Node
{
  public:
    BulkReceiver(sim::Simulator& simulator, const net::CostModel& cost,
                 const BulkSpec& spec, std::uint64_t total_tuples)
        : simulator_(simulator),
          cost_(cost),
          spec_(spec),
          total_tuples_(total_tuples),
          core_busy_(spec.receiver_channels, 0)
    {
    }

    void
    receive(net::Packet pkt) override
    {
        std::uint64_t tuples = (pkt.data.size() - kHeadersBytes) / kTupleBytes;
        Nanoseconds work = cost_.rx_cost_ns(pkt.data.size());
        if (spec_.receiver_aggregates)
            work += cost_.host_aggregate_ns(tuples);
        // RSS spreads a flow's packets across the receive cores.
        std::size_t ch = rx_count_++ % core_busy_.size();
        core_busy_[ch] = std::max(core_busy_[ch], simulator_.now()) + work;
        simulator_.schedule_at(core_busy_[ch], [this, tuples] {
            processed_ += tuples;
            if (processed_ >= total_tuples_)
                finish_time_ = simulator_.now();
        });
    }

    std::string name() const override { return "bulk-receiver"; }
    sim::SimTime finish_time() const { return finish_time_; }

  private:
    sim::Simulator& simulator_;
    net::CostModel cost_;
    BulkSpec spec_;
    std::uint64_t total_tuples_;
    std::uint64_t processed_ = 0;
    std::uint64_t rx_count_ = 0;
    std::vector<sim::SimTime> core_busy_;
    sim::SimTime finish_time_ = 0;
};

/** Sending host: channels push MTU packets paced by per-core TX cost. */
class BulkSender : public net::Node
{
  public:
    BulkSender(net::Network& network, const net::CostModel& cost,
               const BulkSpec& spec, net::NodeId switch_node,
               net::NodeId receiver)
        : network_(network),
          cost_(cost),
          spec_(spec),
          switch_node_(switch_node),
          receiver_(receiver)
    {
    }

    void
    start()
    {
        std::uint64_t per_channel =
            (spec_.tuples_per_sender + spec_.sender_channels - 1) /
            spec_.sender_channels;
        std::uint64_t assigned = 0;
        for (std::uint32_t c = 0; c < spec_.sender_channels; ++c) {
            std::uint64_t quota =
                std::min<std::uint64_t>(per_channel,
                                        spec_.tuples_per_sender - assigned);
            assigned += quota;
            if (quota > 0)
                send_loop(quota, 0);
        }
    }

    void receive(net::Packet) override {}
    std::string name() const override { return "bulk-sender"; }
    std::uint64_t packets_sent() const { return packets_sent_; }

  private:
    void
    send_loop(std::uint64_t remaining_tuples, sim::SimTime core_free)
    {
        if (remaining_tuples == 0)
            return;
        std::uint32_t tuples_per_pkt = spec_.payload_bytes / kTupleBytes;
        std::uint64_t tuples = std::min<std::uint64_t>(remaining_tuples,
                                                       tuples_per_pkt);
        net::Packet pkt;
        pkt.src = node_id();
        pkt.dst = receiver_;
        pkt.data.resize(kHeadersBytes + tuples * kTupleBytes);

        sim::SimTime start =
            std::max(core_free, network_.simulator().now());
        sim::SimTime ready = start + cost_.tx_cost_ns(pkt.data.size());
        ++packets_sent_;
        network_.simulator().schedule_at(
            ready, [this, remaining_tuples, tuples, ready,
                    p = std::move(pkt)]() mutable {
                network_.send(node_id(), switch_node_, std::move(p));
                send_loop(remaining_tuples - tuples, ready);
            });
    }

    net::Network& network_;
    net::CostModel cost_;
    BulkSpec spec_;
    net::NodeId switch_node_;
    net::NodeId receiver_;
    std::uint64_t packets_sent_ = 0;
};

}  // namespace

BulkResult
run_noaggr(const BulkSpec& spec)
{
    ASK_ASSERT(spec.num_senders > 0 && spec.tuples_per_sender > 0,
               "empty bulk transfer");
    sim::Simulator simulator;
    net::Network network(simulator);
    pisa::PisaSwitch sw(network, 4, pisa::kDefaultStageSramBytes);
    network.attach(&sw);
    ForwardProgram forward;
    sw.install(&forward);

    net::CostModel cost(spec.cost);
    std::uint64_t total = spec.tuples_per_sender * spec.num_senders;

    BulkReceiver receiver(simulator, cost, spec, total);
    network.attach(&receiver);
    network.connect(receiver.node_id(), sw.node_id(), spec.link_gbps,
                    spec.link_propagation_ns);

    std::vector<std::unique_ptr<BulkSender>> senders;
    for (std::uint32_t s = 0; s < spec.num_senders; ++s) {
        senders.push_back(std::make_unique<BulkSender>(
            network, cost, spec, sw.node_id(), receiver.node_id()));
        network.attach(senders.back().get());
        network.connect(senders.back()->node_id(), sw.node_id(),
                        spec.link_gbps, spec.link_propagation_ns);
    }
    for (auto& s : senders)
        s->start();

    simulator.run();

    BulkResult out;
    out.elapsed_ns = receiver.finish_time();
    ASK_ASSERT(out.elapsed_ns > 0, "bulk transfer never completed");
    for (auto& s : senders)
        out.packets += s->packets_sent();
    out.wire_bytes =
        network.link_bytes(sw.node_id(), receiver.node_id());
    double tuple_bytes = static_cast<double>(total) * kTupleBytes;
    out.goodput_gbps = units::gbps(tuple_bytes, out.elapsed_ns);
    out.throughput_gbps =
        units::gbps(static_cast<double>(out.wire_bytes), out.elapsed_ns);
    out.per_sender_goodput_gbps = out.goodput_gbps / spec.num_senders;
    return out;
}

}  // namespace ask::baselines
