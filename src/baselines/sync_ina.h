/**
 * @file
 * Synchronous value-stream INA baselines (paper §2.1.3, §5.6): a
 * SwitchML-like design (static slot allocation, small packets) and an
 * ATP-like design (dynamic hash allocation with fallback to a parameter
 * server on collision). Both run as real switch programs on the PISA
 * substrate with worker nodes driving a gradient allreduce; Figure 12
 * uses the measured per-element communication time.
 */
#ifndef ASK_BASELINES_SYNC_INA_H
#define ASK_BASELINES_SYNC_INA_H

#include <cstdint>

#include "common/units.h"
#include "net/cost_model.h"

namespace ask::baselines {

/** Which synchronous INA design to run. */
enum class SyncVariant : std::uint8_t
{
    kSwitchMl,  ///< static slot = chunk % slots; no fallback needed
    kAtp,       ///< dynamic slot = hash(chunk) % slots; PS fallback
};

const char* sync_variant_name(SyncVariant v);

/** Parameters of one allreduce run. */
struct SyncInaSpec
{
    SyncVariant variant = SyncVariant::kSwitchMl;
    std::uint32_t workers = 4;
    /** Gradient elements (4-byte values) per worker. */
    std::uint64_t grad_elements = 1 << 16;
    /** Values per packet: SwitchML-like uses small packets (16), the
     *  ATP-like design larger ones (64). */
    std::uint32_t values_per_packet = 16;
    /** Switch aggregator slots (chunks resident at once). */
    std::uint32_t slots = 256;

    double link_gbps = 100.0;
    Nanoseconds link_propagation_ns = 500;
    net::CostModelSpec cost;
    /** ATP backstop: a chunk unresolved for this long is retransmitted
     *  with a force-to-PS flag (recovers stuck partial aggregations). */
    Nanoseconds retransmit_timeout_ns = 200 * units::kMicrosecond;
    /** Extra propagation delay per worker index (straggler model):
     *  worker w's cable adds w * worker_skew_ns. Skewed arrivals keep
     *  aggregator slots occupied longer, exposing collision handling. */
    Nanoseconds worker_skew_ns = 0;
};

/** Outcome of an allreduce. */
struct SyncInaResult
{
    Nanoseconds allreduce_ns = 0;
    /** All workers received the correct sums for every chunk. */
    bool correct = false;
    std::uint64_t chunks = 0;
    /** Chunks aggregated at the parameter server (ATP fallback). */
    std::uint64_t ps_fallback_chunks = 0;
    /** Per-worker gradient goodput (values only) in Gbps. */
    double per_worker_goodput_gbps = 0.0;
};

/** Run one synchronous allreduce on the discrete-event simulator. */
SyncInaResult run_sync_allreduce(const SyncInaSpec& spec);

}  // namespace ask::baselines

#endif  // ASK_BASELINES_SYNC_INA_H
