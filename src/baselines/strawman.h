/**
 * @file
 * The strawman in-network key-value aggregation of paper §2.2.2: one
 * key-value tuple per packet, reliable network assumed, and every key
 * fitting switch memory. Rather than a separate implementation, the
 * strawman is the ASK service configured down to a single slot per
 * packet with ample aggregators — which keeps it on the production code
 * path while matching the strawman's three assumptions.
 */
#ifndef ASK_BASELINES_STRAWMAN_H
#define ASK_BASELINES_STRAWMAN_H

#include "ask/cluster.h"

namespace ask::baselines {

/**
 * ASK cluster configuration realizing the strawman: num_aas = 1 (one
 * 4-byte key + 4-byte value per packet), no medium groups, no shadow
 * copies, and an aggregator pool sized to hold `expected_distinct_keys`
 * without eviction.
 */
core::ClusterConfig strawman_cluster(std::uint32_t hosts,
                                     std::uint32_t channels_per_host,
                                     std::uint32_t expected_distinct_keys);

}  // namespace ask::baselines

#endif  // ASK_BASELINES_STRAWMAN_H
