#include "baselines/spark_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace ask::baselines {

const char*
spark_variant_name(SparkVariant v)
{
    switch (v) {
      case SparkVariant::kVanilla:
        return "Spark";
      case SparkVariant::kShm:
        return "SparkSHM";
      case SparkVariant::kRdma:
        return "SparkRDMA";
    }
    return "?";
}

double
spark_mapper_ns_per_tuple(SparkVariant v)
{
    // generate/tokenize ~30 ns + combine (sort-merge in the JVM) ~64 ns
    // + shuffle write. Calibrated so the Fig. 11 mapper TCTs at 1.5e8
    // tuples/mapper land on the paper's 15.89-17.67 s band, with the
    // variant ordering SHM < RDMA < vanilla.
    constexpr double kGenerate = 30.0;
    constexpr double kCombine = 64.0;
    switch (v) {
      case SparkVariant::kVanilla:
        return kGenerate + kCombine + 24.0;  // disk shuffle write
      case SparkVariant::kShm:
        return kGenerate + kCombine + 12.0;  // shared-memory write
      case SparkVariant::kRdma:
        return kGenerate + kCombine + 18.0;  // RDMA-staged write
    }
    return 0.0;
}

double
spark_reducer_ns_per_tuple(SparkVariant v)
{
    constexpr double kMerge = 80.0;  // hash-map upsert in the JVM
    switch (v) {
      case SparkVariant::kVanilla:
        return kMerge + 40.0;  // disk shuffle read
      case SparkVariant::kShm:
        return kMerge + 10.0;
      case SparkVariant::kRdma:
        return kMerge + 15.0;
    }
    return 0.0;
}

SparkJobResult
run_spark_job(const SparkJobSpec& spec)
{
    ASK_ASSERT(spec.machines > 0 && spec.mappers_per_machine > 0 &&
                   spec.reducers_per_machine > 0,
               "degenerate Spark job");
    SparkJobResult out;

    // Map phase: tasks run in waves when they exceed the core count.
    double mapper_waves =
        std::ceil(static_cast<double>(spec.mappers_per_machine) /
                  spec.cores_per_machine);
    out.mapper_tct_s = static_cast<double>(spec.tuples_per_mapper) *
                       spark_mapper_ns_per_tuple(spec.variant) * 1e-9;

    // Shuffle volume after the mapper-side combine: each mapper emits at
    // most its distinct-key count.
    std::uint64_t total_mappers =
        static_cast<std::uint64_t>(spec.machines) * spec.mappers_per_machine;
    std::uint64_t shuffled =
        total_mappers * std::min(spec.distinct_keys_per_mapper,
                                 spec.tuples_per_mapper);
    std::uint64_t total_reducers =
        static_cast<std::uint64_t>(spec.machines) * spec.reducers_per_machine;
    std::uint64_t per_reducer = shuffled / total_reducers;

    double reducer_waves =
        std::ceil(static_cast<double>(spec.reducers_per_machine) /
                  spec.cores_per_machine);
    out.reducer_tct_s = static_cast<double>(per_reducer) *
                        spark_reducer_ns_per_tuple(spec.variant) * 1e-9;

    // Phases are serialized (reduce waits on the shuffle barrier); a
    // small fixed scheduling overhead covers task dispatch.
    constexpr double kSchedulingOverheadS = 0.4;
    out.jct_s = mapper_waves * out.mapper_tct_s +
                reducer_waves * out.reducer_tct_s + kSchedulingOverheadS;
    return out;
}

}  // namespace ask::baselines
