#include "baselines/preaggr.h"

#include "common/logging.h"

namespace ask::baselines {

PreAggrResult
run_preaggr(const PreAggrSpec& spec)
{
    ASK_ASSERT(spec.tuples > 0 && spec.threads > 0, "empty PreAggr job");
    net::CostModel cost(spec.cost);

    PreAggrResult out;
    out.combine_s = units::to_seconds(
        cost.preaggr_combine_ns(spec.tuples, spec.threads));

    // The combined volume is tiny (paper: 51.2 GB -> 256 MB), so the
    // transfer is line-rate bound and negligible next to the combine.
    double combined_bytes = static_cast<double>(spec.distinct_keys) * 8.0;
    out.transfer_s = combined_bytes * 8.0 / (spec.link_gbps * 1e9);

    out.reduce_s = units::to_seconds(cost.host_aggregate_ns(
                       spec.distinct_keys)) /
                   spec.threads;

    out.jct_s = out.combine_s + out.transfer_s + out.reduce_s;
    out.cpu_fraction = static_cast<double>(spec.threads) /
                       cost.spec().cores_per_host;
    return out;
}

}  // namespace ask::baselines
