#include "baselines/sync_ina.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"
#include "net/network.h"
#include "pisa/pisa_switch.h"
#include "sim/simulator.h"

namespace ask::baselines {

const char*
sync_variant_name(SyncVariant v)
{
    return v == SyncVariant::kSwitchMl ? "SwitchML-like" : "ATP-like";
}

namespace {

constexpr std::uint32_t kHeadersBytes = net::kIpHeaderBytes + 20;
constexpr std::uint8_t kGrad = 1;
constexpr std::uint8_t kResult = 2;

/** Gradient value of worker w, chunk c, lane i (deterministic). */
std::uint32_t
grad_value(std::uint32_t w, std::uint64_t c, std::uint32_t i)
{
    return (w + 1) * 1000u +
           static_cast<std::uint32_t>((c * 31 + i) % 997);
}

struct SyncFrame
{
    std::uint8_t type = kGrad;
    /** Set on timeout retransmissions: bypass the switch aggregator and
     *  deliver to the PS (ATP's backstop against stuck partials). */
    std::uint8_t force_ps = 0;
    std::uint32_t chunk = 0;
    std::uint16_t worker = 0;
    std::vector<std::uint32_t> values;
};

net::Packet
make_sync_packet(net::NodeId src, net::NodeId dst, const SyncFrame& f)
{
    net::Packet pkt;
    pkt.src = src;
    pkt.dst = dst;
    pkt.data.resize(kHeadersBytes + 10 + f.values.size() * 4, 0);
    std::size_t off = kHeadersBytes;
    pkt.data[off++] = f.type;
    pkt.data[off++] = f.force_ps;
    for (int i = 0; i < 4; ++i)
        pkt.data[off++] = static_cast<std::uint8_t>(f.chunk >> (8 * i));
    pkt.data[off++] = static_cast<std::uint8_t>(f.worker);
    pkt.data[off++] = static_cast<std::uint8_t>(f.worker >> 8);
    pkt.data[off++] = static_cast<std::uint8_t>(f.values.size());
    pkt.data[off++] = static_cast<std::uint8_t>(f.values.size() >> 8);
    for (std::uint32_t v : f.values) {
        for (int i = 0; i < 4; ++i)
            pkt.data[off++] = static_cast<std::uint8_t>(v >> (8 * i));
    }
    return pkt;
}

SyncFrame
parse_sync_packet(const net::Packet& pkt)
{
    SyncFrame f;
    std::size_t off = kHeadersBytes;
    ASK_ASSERT(pkt.data.size() >= off + 10, "short sync frame");
    f.type = pkt.data[off++];
    f.force_ps = pkt.data[off++];
    f.chunk = 0;
    for (int i = 0; i < 4; ++i)
        f.chunk |= static_cast<std::uint32_t>(pkt.data[off++]) << (8 * i);
    f.worker = static_cast<std::uint16_t>(pkt.data[off] |
                                          (pkt.data[off + 1] << 8));
    off += 2;
    std::uint16_t count = static_cast<std::uint16_t>(
        pkt.data[off] | (pkt.data[off + 1] << 8));
    off += 2;
    f.values.resize(count);
    for (auto& v : f.values) {
        v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(pkt.data[off++]) << (8 * i);
    }
    return f;
}

/**
 * The synchronous-aggregation switch program. Register layout:
 *   stage 0: owner (ATP only; chunk+1 per slot, 0 = free)
 *   stage 1: cnt   (arrivals per slot; resets to 0 on completion)
 *   stage 2+: packed value arrays, two 32-bit lanes per 64-bit register
 */
class SyncInaProgram : public pisa::SwitchProgram
{
  public:
    SyncInaProgram(const SyncInaSpec& spec, pisa::PisaSwitch& sw)
        : spec_(spec)
    {
        pisa::Pipeline& pipe = sw.pipeline();
        std::uint32_t packed = (spec_.values_per_packet + 1) / 2;
        std::size_t needed = 2 + (packed + 3) / 4;
        if (pipe.num_stages() < needed) {
            fail_config("sync INA program needs ", needed,
                        " stages, pipeline has ", pipe.num_stages());
        }
        if (spec_.variant == SyncVariant::kAtp) {
            owner_ = pipe.stage(0)->add_register_array("owner", spec_.slots,
                                                       64);
        }
        cnt_ = pipe.stage(1)->add_register_array("cnt", spec_.slots, 32);
        for (std::uint32_t j = 0; j < packed; ++j) {
            vals_.push_back(pipe.stage(2 + j / 4)
                                ->add_register_array(
                                    "val_" + std::to_string(j), spec_.slots,
                                    64));
        }
        sw.install(this);
    }

    void
    set_group(std::vector<net::NodeId> workers, net::NodeId ps)
    {
        workers_ = std::move(workers);
        ps_ = ps;
    }

    void
    process(net::Packet pkt, pisa::Emitter& emit) override
    {
        SyncFrame f = parse_sync_packet(pkt);
        if (f.type == kResult) {
            // PS-produced results: plain forwarding to the worker.
            net::NodeId dst = pkt.dst;
            emit.emit(dst, std::move(pkt));
            return;
        }

        if (f.force_ps) {
            // Timeout retransmission: unconditionally deliver to the PS.
            ++fallback_packets_;
            emit.emit(ps_, std::move(pkt));
            return;
        }

        std::size_t slot;
        if (spec_.variant == SyncVariant::kSwitchMl) {
            // Static allocation: the sync protocol guarantees chunk c and
            // c + slots are never concurrently in flight.
            slot = f.chunk % spec_.slots;
        } else {
            slot = mix64(f.chunk) % spec_.slots;
            bool mine = false;
            owner_->rmw(slot, [&](std::uint64_t& o) {
                if (o == 0) {
                    o = static_cast<std::uint64_t>(f.chunk) + 1;
                    mine = true;
                } else if (o == static_cast<std::uint64_t>(f.chunk) + 1) {
                    mine = true;
                }
            });
            if (!mine) {
                // Collision: this chunk's aggregation falls back to the
                // parameter server (ATP best-effort semantics).
                ++fallback_packets_;
                emit.emit(ps_, std::move(pkt));
                return;
            }
        }

        bool first = false;
        bool complete = false;
        cnt_->rmw(slot, [&](std::uint64_t& c) {
            first = c == 0;
            std::uint64_t next = c + 1;
            complete = next == spec_.workers;
            c = complete ? 0 : next;  // completion frees the slot
        });

        std::vector<std::uint32_t> out(f.values.size(), 0);
        for (std::uint32_t j = 0; j < vals_.size(); ++j) {
            std::uint32_t lane0 = 2 * j;
            std::uint32_t v0 = lane0 < f.values.size() ? f.values[lane0] : 0;
            std::uint32_t v1 =
                lane0 + 1 < f.values.size() ? f.values[lane0 + 1] : 0;
            vals_[j]->rmw(slot, [&](std::uint64_t& word) {
                std::uint32_t a =
                    first ? v0
                          : static_cast<std::uint32_t>(word & 0xffffffffULL) + v0;
                std::uint32_t b =
                    first ? v1 : static_cast<std::uint32_t>(word >> 32) + v1;
                word = (static_cast<std::uint64_t>(b) << 32) | a;
                if (complete) {
                    if (lane0 < out.size())
                        out[lane0] = a;
                    if (lane0 + 1 < out.size())
                        out[lane0 + 1] = b;
                }
            });
        }

        if (complete) {
            if (owner_ != nullptr) {
                // Models ATP's aggregator release (a recirculated pass on
                // real hardware).
                owner_->cp_write(slot, 0);
            }
            SyncFrame result;
            result.type = kResult;
            result.chunk = f.chunk;
            result.values = std::move(out);
            for (net::NodeId w : workers_)
                emit.emit(w, make_sync_packet(pkt.dst, w, result));
        }
        // Non-final gradient packets are consumed by the switch.
    }

    std::string name() const override { return "sync-ina"; }
    std::uint64_t fallback_packets() const { return fallback_packets_; }

  private:
    SyncInaSpec spec_;
    pisa::RegisterArray* owner_ = nullptr;
    pisa::RegisterArray* cnt_ = nullptr;
    std::vector<pisa::RegisterArray*> vals_;
    std::vector<net::NodeId> workers_;
    net::NodeId ps_ = 0;
    std::uint64_t fallback_packets_ = 0;
};

/** ATP's parameter server: aggregates fallback chunks in host memory. */
class PsNode : public net::Node
{
  public:
    PsNode(net::Network& network, const net::CostModel& cost,
           const SyncInaSpec& spec, net::NodeId switch_node)
        : network_(network), cost_(cost), spec_(spec), switch_node_(switch_node)
    {
    }

    void
    set_workers(std::vector<net::NodeId> workers)
    {
        workers_ = std::move(workers);
    }

    void
    receive(net::Packet pkt) override
    {
        SyncFrame f = parse_sync_packet(pkt);
        ASK_ASSERT(f.type == kGrad, "PS expects gradient packets");
        Nanoseconds work = cost_.rx_cost_ns(pkt.data.size()) +
                           cost_.host_aggregate_ns(f.values.size());
        core_busy_ = std::max(core_busy_, network_.simulator().now()) + work;

        auto& entry = chunks_[f.chunk];
        std::uint64_t bit = 1ULL << f.worker;
        if (entry.bitmap & bit)
            return;  // duplicate (timeout retransmission): deduplicate
        entry.bitmap |= bit;
        if (entry.values.empty())
            entry.values.assign(f.values.size(), 0);
        for (std::size_t i = 0; i < f.values.size(); ++i)
            entry.values[i] += f.values[i];
        if (++entry.count == spec_.workers) {
            ++fallback_chunks_;
            SyncFrame result;
            result.type = kResult;
            result.chunk = f.chunk;
            result.values = std::move(entry.values);
            chunks_.erase(f.chunk);
            net::NodeId self = node_id();
            for (net::NodeId w : workers_) {
                core_busy_ += cost_.tx_cost_ns(kHeadersBytes + 9 +
                                               result.values.size() * 4);
                net::Packet out = make_sync_packet(self, w, result);
                network_.simulator().schedule_at(
                    core_busy_,
                    [this, p = std::move(out)]() mutable {
                        network_.send(node_id(), switch_node_, std::move(p));
                    });
            }
        }
    }

    std::string name() const override { return "atp-ps"; }
    std::uint64_t fallback_chunks() const { return fallback_chunks_; }

  private:
    struct Pending
    {
        std::uint32_t count = 0;
        std::uint64_t bitmap = 0;  ///< workers covered (dedup)
        std::vector<std::uint32_t> values;
    };

    net::Network& network_;
    net::CostModel cost_;
    SyncInaSpec spec_;
    net::NodeId switch_node_;
    std::vector<net::NodeId> workers_;
    std::unordered_map<std::uint32_t, Pending> chunks_;
    sim::SimTime core_busy_ = 0;
    std::uint64_t fallback_chunks_ = 0;
};

/** One training worker: streams gradient chunks, validates results. */
class WorkerNode : public net::Node
{
  public:
    static constexpr std::uint32_t kChannels = 4;

    WorkerNode(net::Network& network, const net::CostModel& cost,
               const SyncInaSpec& spec, std::uint16_t index,
               net::NodeId switch_node, std::uint64_t chunks)
        : network_(network),
          cost_(cost),
          spec_(spec),
          index_(index),
          switch_node_(switch_node),
          chunks_(chunks),
          core_busy_(kChannels, 0),
          done_(chunks, false)
    {
    }

    void
    start()
    {
        std::uint64_t burst = std::min<std::uint64_t>(spec_.slots, chunks_);
        for (std::uint64_t c = 0; c < burst; ++c)
            pending_.push_back({c, false});
        for (std::uint32_t ch = 0; ch < kChannels; ++ch)
            drain(ch);
    }

    void
    receive(net::Packet pkt) override
    {
        SyncFrame f = parse_sync_packet(pkt);
        ASK_ASSERT(f.type == kResult, "worker expects result packets");
        std::uint32_t ch = f.chunk % kChannels;
        core_busy_[ch] = std::max(core_busy_[ch], network_.simulator().now()) +
                         cost_.rx_cost_ns(pkt.data.size());

        if (done_.at(f.chunk))
            return;  // duplicate result (possible via PS + switch races)
        done_[f.chunk] = true;
        ++done_count_;

        // Validate the sums.
        for (std::uint32_t i = 0; i < f.values.size(); ++i) {
            std::uint32_t expect = 0;
            for (std::uint32_t w = 0; w < spec_.workers; ++w)
                expect += grad_value(w, f.chunk, i);
            if (f.values[i] != expect)
                correct_ = false;
        }
        if (done_count_ == chunks_)
            finish_time_ = network_.simulator().now();

        std::uint64_t next = f.chunk + spec_.slots;
        if (next < chunks_) {
            pending_.push_back({next, false});
            drain(ch);
        }
    }

    std::string name() const override { return "worker"; }
    bool correct() const { return correct_ && done_count_ == chunks_; }
    sim::SimTime finish_time() const { return finish_time_; }

  private:
    void
    drain(std::uint32_t ch)
    {
        if (pending_.empty())
            return;
        auto [chunk, force_ps] = pending_.front();
        pending_.pop_front();
        if (done_.at(chunk)) {
            drain(ch);  // resolved while queued (stale retransmission)
            return;
        }

        SyncFrame f;
        f.type = kGrad;
        f.force_ps = force_ps ? 1 : 0;
        f.chunk = static_cast<std::uint32_t>(chunk);
        f.worker = index_;
        f.values.resize(spec_.values_per_packet);
        for (std::uint32_t i = 0; i < spec_.values_per_packet; ++i)
            f.values[i] = grad_value(index_, chunk, i);
        net::Packet pkt = make_sync_packet(node_id(), node_id(), f);

        sim::SimTime start =
            std::max(core_busy_[ch], network_.simulator().now());
        core_busy_[ch] = start + cost_.tx_cost_ns(pkt.data.size());
        network_.simulator().schedule_at(
            core_busy_[ch], [this, ch, p = std::move(pkt)]() mutable {
                network_.send(node_id(), switch_node_, std::move(p));
                drain(ch);
            });

        // ATP backstop: dynamic allocation can strand a chunk split
        // between the switch and the PS; after a timeout, resend with
        // the force-to-PS flag (the PS deduplicates by worker).
        if (spec_.variant == SyncVariant::kAtp) {
            network_.simulator().schedule_after(
                spec_.retransmit_timeout_ns, [this, chunk, ch] {
                    if (!done_.at(chunk)) {
                        pending_.push_back({chunk, true});
                        drain(ch);
                    }
                });
        }
    }

    net::Network& network_;
    net::CostModel cost_;
    SyncInaSpec spec_;
    std::uint16_t index_;
    net::NodeId switch_node_;
    std::uint64_t chunks_;
    std::vector<sim::SimTime> core_busy_;
    std::deque<std::pair<std::uint64_t, bool>> pending_;
    std::vector<bool> done_;
    std::uint64_t done_count_ = 0;
    bool correct_ = true;
    sim::SimTime finish_time_ = 0;
};

}  // namespace

SyncInaResult
run_sync_allreduce(const SyncInaSpec& spec)
{
    ASK_ASSERT(spec.workers >= 1, "need at least one worker");
    ASK_ASSERT(spec.values_per_packet >= 1 && spec.values_per_packet <= 64,
               "values_per_packet must be 1..64");

    sim::Simulator simulator;
    net::Network network(simulator);
    pisa::PisaSwitch sw(network);
    network.attach(&sw);
    SyncInaProgram program(spec, sw);

    net::CostModel cost(spec.cost);
    std::uint64_t chunks =
        (spec.grad_elements + spec.values_per_packet - 1) /
        spec.values_per_packet;

    PsNode ps(network, cost, spec, sw.node_id());
    network.attach(&ps);
    network.connect(ps.node_id(), sw.node_id(), spec.link_gbps,
                    spec.link_propagation_ns);

    std::vector<std::unique_ptr<WorkerNode>> workers;
    std::vector<net::NodeId> worker_ids;
    for (std::uint32_t w = 0; w < spec.workers; ++w) {
        workers.push_back(std::make_unique<WorkerNode>(
            network, cost, spec, static_cast<std::uint16_t>(w), sw.node_id(),
            chunks));
        network.attach(workers.back().get());
        network.connect(workers.back()->node_id(), sw.node_id(),
                        spec.link_gbps,
                        spec.link_propagation_ns + w * spec.worker_skew_ns);
        worker_ids.push_back(workers.back()->node_id());
    }
    program.set_group(worker_ids, ps.node_id());
    ps.set_workers(worker_ids);

    for (auto& w : workers)
        w->start();
    simulator.run();

    SyncInaResult out;
    out.chunks = chunks;
    out.ps_fallback_chunks = ps.fallback_chunks();
    out.correct = true;
    for (auto& w : workers) {
        out.correct = out.correct && w->correct();
        out.allreduce_ns = std::max(out.allreduce_ns, w->finish_time());
    }
    double grad_bytes = static_cast<double>(chunks) *
                        spec.values_per_packet * 4.0;
    out.per_worker_goodput_gbps = units::gbps(grad_bytes, out.allreduce_ns);
    return out;
}

}  // namespace ask::baselines
