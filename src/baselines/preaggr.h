/**
 * @file
 * The PreAggr baseline (paper §5.1): host-only aggregation where each
 * sender first combines its stream locally (sort by key, merge equal
 * neighbors), ships the combined result, and the receiver merges.
 * Fig. 7 compares ASK's JCT and CPU use against this baseline.
 */
#ifndef ASK_BASELINES_PREAGGR_H
#define ASK_BASELINES_PREAGGR_H

#include <cstdint>

#include "common/units.h"
#include "net/cost_model.h"

namespace ask::baselines {

/** Parameters of one PreAggr job. */
struct PreAggrSpec
{
    /** Raw key-value tuples at the sender. */
    std::uint64_t tuples = 0;
    /** Distinct keys (combined output size). */
    std::uint64_t distinct_keys = 0;
    /** Mapper==reducer thread count on each host. */
    std::uint32_t threads = 8;
    double link_gbps = 100.0;
    net::CostModelSpec cost;
};

/** Phase breakdown of the job. */
struct PreAggrResult
{
    double combine_s = 0.0;   ///< sender-side sort-merge
    double transfer_s = 0.0;  ///< shipping the combined tuples
    double reduce_s = 0.0;    ///< receiver-side final merge
    double jct_s = 0.0;
    /** Fraction of the sender's cores busy during the combine. */
    double cpu_fraction = 0.0;
};

/** Evaluate the PreAggr cost model. */
PreAggrResult run_preaggr(const PreAggrSpec& spec);

}  // namespace ask::baselines

#endif  // ASK_BASELINES_PREAGGR_H
