#include "baselines/strawman.h"

#include <bit>

namespace ask::baselines {

core::ClusterConfig
strawman_cluster(std::uint32_t hosts, std::uint32_t channels_per_host,
                 std::uint32_t expected_distinct_keys)
{
    core::ClusterConfig cc;
    cc.num_hosts = hosts;
    cc.ask.num_aas = 1;
    cc.ask.medium_groups = 0;
    cc.ask.shadow_copies = false;
    cc.ask.swap_threshold_packets = 0;
    // Assumption (3): all keys fit. Provision 4x the distinct keys so
    // hash collisions are rare (load factor 0.25).
    cc.ask.aggregators_per_aa = std::bit_ceil(expected_distinct_keys * 4);
    cc.ask.channels_per_host = channels_per_host;
    cc.ask.max_hosts = hosts;
    // Assumption (3) again: switch memory is not a constraint for the
    // strawman, so grow the modeled SRAM budget if the pool needs it.
    std::size_t aa_bytes = static_cast<std::size_t>(cc.ask.aggregators_per_aa) * 8;
    cc.switch_sram_per_stage =
        std::max(cc.switch_sram_per_stage, aa_bytes + (1u << 20));
    return cc;
}

}  // namespace ask::baselines
