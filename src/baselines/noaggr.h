/**
 * @file
 * The NoAggr baseline (paper §5.1): pure DPDK transmission of key-value
 * tuples in MTU-sized packets through the switch (plain forwarding, no
 * in-network aggregation), with all aggregation at the receiving host.
 * Used by Fig. 3 (vanilla transfer ceiling), Fig. 13(a) overhead and
 * Fig. 13(b) scalability comparisons.
 */
#ifndef ASK_BASELINES_NOAGGR_H
#define ASK_BASELINES_NOAGGR_H

#include <cstdint>

#include "common/units.h"
#include "net/cost_model.h"
#include "pisa/pisa_switch.h"

namespace ask::baselines {

/** A switch program that only forwards packets toward pkt.dst. */
class ForwardProgram : public pisa::SwitchProgram
{
  public:
    void process(net::Packet pkt, pisa::Emitter& emit) override;
    std::string name() const override { return "l3-forward"; }
};

/** Parameters of one bulk key-value transfer. */
struct BulkSpec
{
    std::uint32_t num_senders = 1;
    /** DPDK cores (channels) per sending host. */
    std::uint32_t sender_channels = 4;
    /** DPDK cores at the receiving host. */
    std::uint32_t receiver_channels = 4;
    /** 8-byte key-value tuples each sender ships. */
    std::uint64_t tuples_per_sender = 1000000;
    /** Tuple payload bytes per packet (1460 = MTU-filling). */
    std::uint32_t payload_bytes = 1460;
    /** Charge the receiver the per-tuple hash-map aggregation cost.
     *  Off by default: the paper's NoAggr is pure network transmission
     *  (Fig. 13); enable it for host-aggregation JCT comparisons. */
    bool receiver_aggregates = false;

    double link_gbps = 100.0;
    Nanoseconds link_propagation_ns = 500;
    net::CostModelSpec cost;
};

/** Measured outcome of a bulk transfer. */
struct BulkResult
{
    Nanoseconds elapsed_ns = 0;
    /** Application tuple bytes delivered / elapsed. */
    double goodput_gbps = 0.0;
    /** Wire bytes (payload + headers + framing) / elapsed. */
    double throughput_gbps = 0.0;
    /** Per-sender average goodput (Fig. 13b's metric). */
    double per_sender_goodput_gbps = 0.0;
    std::uint64_t packets = 0;
    std::uint64_t wire_bytes = 0;
};

/** Run a NoAggr transfer on the discrete-event simulator. */
BulkResult run_noaggr(const BulkSpec& spec);

}  // namespace ask::baselines

#endif  // ASK_BASELINES_NOAGGR_H
