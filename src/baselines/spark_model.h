/**
 * @file
 * Cost models of the Spark-family baselines (paper §5.1): vanilla Spark,
 * SparkSHM (intermediate data in shared memory) and SparkRDMA (network
 * I/O over RDMA). Spark's JVM aggregation path cannot be rebuilt
 * natively; these models are calibrated against the paper's own
 * measurements (Figures 3, 10, 11) — see EXPERIMENTS.md for the
 * derivation of every constant.
 */
#ifndef ASK_BASELINES_SPARK_MODEL_H
#define ASK_BASELINES_SPARK_MODEL_H

#include <cstdint>
#include <string>

namespace ask::baselines {

/** Which Spark deployment is modeled. */
enum class SparkVariant : std::uint8_t
{
    kVanilla,  ///< stock Spark: shuffle via local disk
    kShm,      ///< intermediate data on shared memory (no disk I/O)
    kRdma,     ///< SparkRDMA: network I/O acceleration
};

const char* spark_variant_name(SparkVariant v);

/** One WordCount-style job (Figures 10 and 11). */
struct SparkJobSpec
{
    std::uint32_t machines = 3;
    std::uint32_t mappers_per_machine = 32;
    std::uint32_t reducers_per_machine = 32;
    std::uint64_t tuples_per_mapper = 150000000;
    std::uint64_t distinct_keys_per_mapper = 1u << 18;
    std::uint32_t cores_per_machine = 56;
    SparkVariant variant = SparkVariant::kVanilla;
};

/** Phase breakdown (the paper's TCT/JCT metrics). */
struct SparkJobResult
{
    double mapper_tct_s = 0.0;   ///< mean map-task completion time
    double reducer_tct_s = 0.0;  ///< mean reduce-task completion time
    double jct_s = 0.0;
};

/** Evaluate the Spark job model. */
SparkJobResult run_spark_job(const SparkJobSpec& spec);

/** Per-tuple mapper-side cost (generate + combine + shuffle write). */
double spark_mapper_ns_per_tuple(SparkVariant v);

/** Per-tuple reducer-side cost (shuffle read + final merge). */
double spark_reducer_ns_per_tuple(SparkVariant v);

}  // namespace ask::baselines

#endif  // ASK_BASELINES_SPARK_MODEL_H
