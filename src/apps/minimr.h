/**
 * @file
 * A mini MapReduce (WordCount-style) engine with pluggable aggregation
 * backends — the stand-in for HiBench SparkBench in Figures 7, 10, 11.
 *
 * Spark-family backends evaluate the calibrated cost models in
 * baselines/spark_model.h. The ASK backend runs the aggregation phase
 * for real on the discrete-event simulator (packets, switch program,
 * reliability, fetch) at a configurable volume scale: simulating 1/S of
 * the tuples and multiplying the aggregation time by S, which is
 * accurate while the phase is throughput-bound (see EXPERIMENTS.md).
 */
#ifndef ASK_APPS_MINIMR_H
#define ASK_APPS_MINIMR_H

#include <cstdint>

#include "baselines/spark_model.h"
#include "net/cost_model.h"

namespace ask::apps {

/** Aggregation backend of the job. */
enum class MrBackend : std::uint8_t
{
    kSpark,      ///< vanilla Spark (disk shuffle)
    kSparkShm,   ///< Spark with shared-memory intermediate data
    kSparkRdma,  ///< Spark with RDMA network I/O
    kAsk,        ///< Spark-with-ASK: aggregation as an ASK service
};

const char* mr_backend_name(MrBackend b);

/** One WordCount job. */
struct MrJobSpec
{
    MrBackend backend = MrBackend::kSpark;
    std::uint32_t machines = 3;
    std::uint32_t mappers_per_machine = 32;
    std::uint32_t reducers_per_machine = 32;
    std::uint64_t tuples_per_mapper = 150000000;
    std::uint64_t distinct_keys_per_mapper = 1u << 18;
    std::uint32_t cores_per_machine = 56;

    /** ASK backend: data channels per host. */
    std::uint32_t ask_channels = 4;
    /** ASK backend: simulate 1/sim_scale of the volume (>= 1). */
    std::uint64_t sim_scale = 100;
    std::uint64_t seed = 1;
    net::CostModelSpec cost;
};

/** Job outcome (the paper's JCT/TCT metrics). */
struct MrJobResult
{
    double jct_s = 0.0;
    double mapper_tct_s = 0.0;
    double reducer_tct_s = 0.0;
    /** Host CPU busy fraction during the aggregation phase. */
    double cpu_fraction = 0.0;
    /** ASK backend only: tuple/packet absorption at the switch. */
    double switch_tuple_ratio = 0.0;
    double switch_ack_ratio = 0.0;
};

/** Run one job. */
MrJobResult run_mr_job(const MrJobSpec& spec);

}  // namespace ask::apps

#endif  // ASK_APPS_MINIMR_H
