#include "apps/trainsim.h"

#include <algorithm>
#include <cmath>

#include "ask/cluster.h"
#include "baselines/sync_ina.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"
#include "workload/generators.h"

namespace ask::apps {

const char*
train_backend_name(TrainBackend b)
{
    switch (b) {
      case TrainBackend::kAsk:
        return "ASK";
      case TrainBackend::kAtp:
        return "ATP";
      case TrainBackend::kSwitchMl:
        return "SwitchML";
    }
    return "?";
}

namespace {

/** One ASK value-stream push of `elements` gradient elements; returns
 *  the simulated elapsed time including setup and teardown.
 *
 *  BytePS shards the parameter server across all workers: every host is
 *  both a worker and the PS for 1/N of the gradient, so the forwarded
 *  (not-switch-absorbed) traffic spreads over every host's link and
 *  cores rather than converging on one PS. Each shard is one ASK task.
 */
Nanoseconds
ask_push_elapsed(const TrainSpec& spec, std::uint64_t elements)
{
    core::ClusterConfig cc;
    cc.num_hosts = spec.workers;
    cc.ask.max_hosts = cc.num_hosts;
    cc.link_gbps = spec.link_gbps;
    // Value streams arrive in lockstep; periodic shadow swaps drain the
    // aggregators so the (index-)key working set keeps fitting.
    cc.ask.swap_threshold_packets = 512;
    // Gradient indices are short keys: use every AA for them, and chain
    // two switch pipelines for 64-tuple packets and twice the aggregator
    // pool (§5.7: training deployments chain pipelines for goodput).
    cc.ask.medium_groups = 0;
    cc.ask.num_aas = 64;
    cc.switch_stages = 34;

    core::AskCluster cluster(cc);
    std::uint64_t shard = elements / spec.workers;
    std::uint32_t region = cc.ask.copy_size() / spec.workers;
    std::vector<bool> done(spec.workers, false);
    for (std::uint32_t s = 0; s < spec.workers; ++s) {
        std::vector<core::StreamSpec> streams;
        for (std::uint32_t w = 0; w < spec.workers; ++w) {
            streams.push_back(
                {w, workload::value_stream(shard, 0, 7 + w, s * shard)});
        }
        cluster.submit_task(s + 1, s, std::move(streams),
                            {.region_len = region, .op = spec.reduce_op},
                            [&done, s](core::AggregateMap,
                                       core::TaskReport) { done[s] = true; });
    }
    sim::SimTime elapsed = cluster.run();
    for (std::uint32_t s = 0; s < spec.workers; ++s)
        ASK_ASSERT(done[s], "ASK gradient shard ", s, " did not complete");
    return elapsed;
}

/** ASK value-stream push goodput, measured *marginally* (two probe
 *  sizes) so fixed setup/teardown costs cancel out — the full gradient
 *  amortizes them over far more data than a probe can. */
double
measure_ask_push_goodput(const TrainSpec& spec)
{
    std::uint64_t n1 = spec.probe_elements / 2;
    std::uint64_t n2 = spec.probe_elements;
    Nanoseconds t1 = ask_push_elapsed(spec, n1);
    Nanoseconds t2 = ask_push_elapsed(spec, n2);
    ASK_ASSERT(t2 > t1, "probe elapsed not monotone");
    double marginal_bytes = static_cast<double>(n2 - n1) * 4.0;
    return units::gbps(marginal_bytes, t2 - t1);
}

double
measure_sync_goodput(const TrainSpec& spec)
{
    baselines::SyncInaSpec s;
    s.variant = spec.backend == TrainBackend::kAtp
                    ? baselines::SyncVariant::kAtp
                    : baselines::SyncVariant::kSwitchMl;
    s.workers = spec.workers;
    s.grad_elements = spec.probe_elements;
    // SwitchML's hallmark small packets vs ATP's larger ones (§5.6:
    // "SwitchML's small packet size cannot fully utilize the network").
    s.values_per_packet =
        spec.backend == TrainBackend::kSwitchMl ? 16 : 64;
    s.slots = 512;
    s.link_gbps = spec.link_gbps;
    baselines::SyncInaResult r = baselines::run_sync_allreduce(s);
    ASK_ASSERT(r.correct, "sync allreduce produced wrong sums");
    return r.per_worker_goodput_gbps;
}

}  // namespace

double
measure_gradient_goodput_gbps(const TrainSpec& spec)
{
    if (spec.backend == TrainBackend::kAsk)
        return measure_ask_push_goodput(spec);
    return measure_sync_goodput(spec);
}

FloatAccuracy
measure_float_gradient_accuracy(const TrainSpec& spec,
                                std::uint64_t elements)
{
    core::ClusterConfig cc;
    cc.num_hosts = spec.workers;
    cc.ask.max_hosts = cc.num_hosts;
    cc.link_gbps = spec.link_gbps;

    const std::uint32_t frac = cc.ask.float_frac_bits;
    core::AskCluster cluster(cc);

    // Build every worker's encoded gradient shard, and alongside it the
    // two references: the exact double-precision sum per key, and the
    // quantized ideal — the wrapping 32-bit sum of the same encodings,
    // i.e. what a perfect fixed-point aggregator must produce.
    std::vector<double> exact(elements, 0.0);
    std::vector<std::uint32_t> ideal(elements, 0);
    std::vector<core::StreamSpec> streams;
    Rng rng = seeded_rng("float_gradient", spec.workers);
    for (std::uint32_t w = 0; w < spec.workers; ++w) {
        core::KvStream s;
        s.reserve(elements);
        for (std::uint64_t i = 0; i < elements; ++i) {
            double g = (rng.next_double() - 0.5) * 0.2;  // gradient-scale
            core::Value q = core::float_encode(g, frac);
            exact[i] += g;
            ideal[i] += q;
            s.push_back({u64_key(i), q});
        }
        streams.push_back({w, std::move(s)});
    }

    core::TaskOptions opts;
    opts.op = core::ReduceOp::kFloat;
    core::TaskResult r = cluster.run_task(1, 0, streams, opts);
    ASK_ASSERT(r.ok(), "float-gradient aggregation failed: ",
               r.report.detail);

    FloatAccuracy out;
    out.elements = elements;
    out.frac_bits = frac;
    out.matches_quantized_ideal = true;
    double total_err = 0.0;
    for (std::uint64_t i = 0; i < elements; ++i) {
        auto it = r.result.find(u64_key(i));
        ASK_ASSERT(it != r.result.end(), "gradient key ", i, " missing");
        // kFloat arithmetic is defined modulo 2^32 end-to-end; the
        // 64-bit host aggregate decodes through its low word.
        auto word = static_cast<std::uint32_t>(it->second);
        if (word != ideal[i])
            out.matches_quantized_ideal = false;
        double err = std::abs(core::float_decode(word, frac) - exact[i]);
        out.max_abs_error = std::max(out.max_abs_error, err);
        total_err += err;
    }
    if (elements > 0)
        out.mean_abs_error = total_err / static_cast<double>(elements);
    // Each addend rounds to the grid once (half an ulp); the adds
    // themselves are exact in the ring.
    out.error_bound =
        spec.workers * std::ldexp(0.5, -static_cast<int>(frac));
    return out;
}

TrainResult
run_training(const TrainSpec& spec)
{
    TrainResult out;
    out.goodput_gbps = measure_gradient_goodput_gbps(spec);
    out.compute_s = units::to_seconds(spec.model.compute_ns);

    double grad_bits = static_cast<double>(spec.model.gradient_bytes()) * 8.0;
    double push_s = grad_bits / (out.goodput_gbps * 1e9);
    if (spec.backend == TrainBackend::kAsk) {
        // The sync-INA probes measure the full allreduce loop; the ASK
        // probe measures the push only — add the parameter pull, a
        // line-rate sharded broadcast.
        out.comm_s = push_s + grad_bits / (0.9 * spec.link_gbps * 1e9);
    } else {
        out.comm_s = push_s;
    }

    // BytePS-style compute/communication overlap.
    double step_s = std::max(out.compute_s, out.comm_s) +
                    spec.non_overlap * std::min(out.compute_s, out.comm_s);
    out.images_per_second =
        static_cast<double>(spec.workers) * spec.model.batch_size / step_s;
    return out;
}

}  // namespace ask::apps
