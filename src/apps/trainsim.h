/**
 * @file
 * Distributed-training throughput model (paper §5.6, Figure 12): a
 * BytePS-style parameter-server loop where the gradient-aggregation
 * backend is ASK (value-stream mode), ATP-like, or SwitchML-like.
 *
 * Per-step communication time comes from *measured* gradient goodput:
 * the sync-INA backends run a real allreduce on the simulator, and the
 * ASK backend pushes a real value stream through the ASK service; the
 * measured goodput is then applied to the model's full gradient size.
 * Compute and communication overlap as in BytePS (priority scheduling),
 * modeled as max(compute, comm) plus a small non-overlappable residue.
 */
#ifndef ASK_APPS_TRAINSIM_H
#define ASK_APPS_TRAINSIM_H

#include <cstdint>

#include "ask/types.h"
#include "workload/models.h"

namespace ask::apps {

/** Gradient synchronization backend. */
enum class TrainBackend : std::uint8_t
{
    kAsk,
    kAtp,
    kSwitchMl,
};

const char* train_backend_name(TrainBackend b);

/** One training configuration. */
struct TrainSpec
{
    workload::ModelSpec model;
    std::uint32_t workers = 8;
    TrainBackend backend = TrainBackend::kAsk;
    double link_gbps = 100.0;
    /** Fraction of the smaller phase that cannot be overlapped. */
    double non_overlap = 0.12;
    /** Gradient elements simulated to measure goodput (scaled). */
    std::uint64_t probe_elements = 1 << 20;
    /** Reduction operator the ASK push tasks bind (kFloat = fixed-point
     *  gradient mode; the sync-INA baselines always sum). */
    core::ReduceOp reduce_op = core::ReduceOp::kAdd;
};

/** Per-configuration outcome. */
struct TrainResult
{
    double images_per_second = 0.0;
    double compute_s = 0.0;
    double comm_s = 0.0;
    /** Measured gradient goodput of the backend (values only). */
    double goodput_gbps = 0.0;
};

/** Evaluate one configuration (runs the backend probe on the DES). */
TrainResult run_training(const TrainSpec& spec);

/**
 * Measure a backend's gradient goodput (Gbps of gradient values per
 * worker) with a probe allreduce/push of `probe_elements` elements.
 * Results are deterministic for equal specs.
 */
double measure_gradient_goodput_gbps(const TrainSpec& spec);

/** Accuracy of the fixed-point (ReduceOp::kFloat) gradient path. */
struct FloatAccuracy
{
    /** Gradient elements aggregated (distinct keys). */
    std::uint64_t elements = 0;
    /** Q-format fractional bits the values were encoded with. */
    std::uint32_t frac_bits = 0;
    /** Largest |decoded ASK sum - exact double sum| over all keys. */
    double max_abs_error = 0.0;
    /** Mean of the same absolute errors. */
    double mean_abs_error = 0.0;
    /** Worst-case representable bound: workers * half-ulp of the
     *  encoding (each addend rounds once; the adds are exact). */
    double error_bound = 0.0;
    /** The in-network result is bit-identical to a host-side
     *  fixed-point fold — the network added no error beyond
     *  quantization. */
    bool matches_quantized_ideal = false;
};

/**
 * Aggregate `elements` synthetic float gradients per worker through the
 * ASK service under ReduceOp::kFloat and compare the decoded sums with
 * (a) the exact double-precision sums and (b) the quantized ideal (a
 * host fixed-point fold of the same encodings). Deterministic.
 */
FloatAccuracy measure_float_gradient_accuracy(const TrainSpec& spec,
                                              std::uint64_t elements);

}  // namespace ask::apps

#endif  // ASK_APPS_TRAINSIM_H
