/**
 * @file
 * Distributed-training throughput model (paper §5.6, Figure 12): a
 * BytePS-style parameter-server loop where the gradient-aggregation
 * backend is ASK (value-stream mode), ATP-like, or SwitchML-like.
 *
 * Per-step communication time comes from *measured* gradient goodput:
 * the sync-INA backends run a real allreduce on the simulator, and the
 * ASK backend pushes a real value stream through the ASK service; the
 * measured goodput is then applied to the model's full gradient size.
 * Compute and communication overlap as in BytePS (priority scheduling),
 * modeled as max(compute, comm) plus a small non-overlappable residue.
 */
#ifndef ASK_APPS_TRAINSIM_H
#define ASK_APPS_TRAINSIM_H

#include <cstdint>

#include "workload/models.h"

namespace ask::apps {

/** Gradient synchronization backend. */
enum class TrainBackend : std::uint8_t
{
    kAsk,
    kAtp,
    kSwitchMl,
};

const char* train_backend_name(TrainBackend b);

/** One training configuration. */
struct TrainSpec
{
    workload::ModelSpec model;
    std::uint32_t workers = 8;
    TrainBackend backend = TrainBackend::kAsk;
    double link_gbps = 100.0;
    /** Fraction of the smaller phase that cannot be overlapped. */
    double non_overlap = 0.12;
    /** Gradient elements simulated to measure goodput (scaled). */
    std::uint64_t probe_elements = 1 << 20;
};

/** Per-configuration outcome. */
struct TrainResult
{
    double images_per_second = 0.0;
    double compute_s = 0.0;
    double comm_s = 0.0;
    /** Measured gradient goodput of the backend (values only). */
    double goodput_gbps = 0.0;
};

/** Evaluate one configuration (runs the backend probe on the DES). */
TrainResult run_training(const TrainSpec& spec);

/**
 * Measure a backend's gradient goodput (Gbps of gradient values per
 * worker) with a probe allreduce/push of `probe_elements` elements.
 * Results are deterministic for equal specs.
 */
double measure_gradient_goodput_gbps(const TrainSpec& spec);

}  // namespace ask::apps

#endif  // ASK_APPS_TRAINSIM_H
