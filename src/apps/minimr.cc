#include "apps/minimr.h"

#include <algorithm>
#include <vector>

#include "ask/cluster.h"
#include "common/hash.h"
#include "common/logging.h"
#include "workload/generators.h"

namespace ask::apps {

const char*
mr_backend_name(MrBackend b)
{
    switch (b) {
      case MrBackend::kSpark:
        return "Spark";
      case MrBackend::kSparkShm:
        return "SparkSHM";
      case MrBackend::kSparkRdma:
        return "SparkRDMA";
      case MrBackend::kAsk:
        return "ASK";
    }
    return "?";
}

namespace {

/** ASK mappers only write tuples into the daemon's shared memory. */
constexpr double kAskMapperNsPerTuple = 11.0;

MrJobResult
run_spark_backend(const MrJobSpec& spec)
{
    baselines::SparkJobSpec s;
    s.machines = spec.machines;
    s.mappers_per_machine = spec.mappers_per_machine;
    s.reducers_per_machine = spec.reducers_per_machine;
    s.tuples_per_mapper = spec.tuples_per_mapper;
    s.distinct_keys_per_mapper = spec.distinct_keys_per_mapper;
    s.cores_per_machine = spec.cores_per_machine;
    s.variant = spec.backend == MrBackend::kSpark
                    ? baselines::SparkVariant::kVanilla
                    : (spec.backend == MrBackend::kSparkShm
                           ? baselines::SparkVariant::kShm
                           : baselines::SparkVariant::kRdma);
    baselines::SparkJobResult r = baselines::run_spark_job(s);

    MrJobResult out;
    out.jct_s = r.jct_s;
    out.mapper_tct_s = r.mapper_tct_s;
    out.reducer_tct_s = r.reducer_tct_s;
    // All mapper/reducer slots compute simultaneously.
    out.cpu_fraction =
        std::min(1.0, static_cast<double>(spec.mappers_per_machine) /
                          spec.cores_per_machine);
    return out;
}

MrJobResult
run_ask_backend(const MrJobSpec& spec)
{
    ASK_ASSERT(spec.sim_scale >= 1, "sim_scale must be >= 1");

    // --- Map phase: mappers only hand tuples to the local ASK daemon.
    MrJobResult out;
    out.mapper_tct_s = static_cast<double>(spec.tuples_per_mapper) *
                       kAskMapperNsPerTuple * 1e-9;

    // --- Aggregation phase on the simulator (scaled volume).
    core::ClusterConfig cc;
    cc.num_hosts = spec.machines;
    cc.ask.channels_per_host = spec.ask_channels;
    cc.ask.max_hosts = spec.machines;
    cc.cost = spec.cost;
    // Numeric shuffle keys fit one aggregator segment: configure the
    // slot layout all-short so every AA serves the workload (the paper
    // dedicates AAs to medium keys only for variable-length corpora).
    cc.ask.medium_groups = 0;

    core::AskCluster cluster(cc);

    // The shuffle's reduce partitions become ASK aggregation tasks —
    // several per machine so every host's send jobs spread over its data
    // channels (hash load balancing, §3.1). Every machine streams its
    // share of every partition.
    // Enough tasks that hash load balancing spreads them evenly over the
    // data channels (the paper's jobs have 96 reduce partitions).
    std::uint32_t tasks_per_machine =
        std::min(spec.reducers_per_machine, 2 * spec.ask_channels);
    std::uint32_t num_tasks = spec.machines * tasks_per_machine;
    std::uint64_t tuples_per_machine =
        spec.mappers_per_machine * spec.tuples_per_mapper / spec.sim_scale;
    std::uint64_t per_stream = std::max<std::uint64_t>(
        1, tuples_per_machine / num_tasks);
    std::uint64_t distinct = std::max<std::uint64_t>(
        2048, spec.distinct_keys_per_mapper / spec.sim_scale /
                  tasks_per_machine);
    std::uint32_t region_len =
        std::max(1u, cc.ask.copy_size() / num_tasks);

    // Task ids picked so every machine's hash-based channel balancing
    // is even (a scheduler would spread 96 reduce partitions similarly;
    // with the scaled-down task count, an unlucky hash would otherwise
    // leave whole cores idle).
    std::vector<std::uint32_t> task_ids;
    {
        std::vector<std::vector<std::uint32_t>> load(
            spec.machines,
            std::vector<std::uint32_t>(spec.ask_channels, 0));
        std::uint32_t cap =
            (num_tasks + spec.ask_channels - 1) / spec.ask_channels;
        for (std::uint32_t candidate = 1;
             task_ids.size() < num_tasks && candidate < 10000000;
             ++candidate) {
            bool ok = true;
            for (std::uint32_t h = 0; h < spec.machines && ok; ++h) {
                std::uint32_t ch = static_cast<std::uint32_t>(
                    mix64(candidate ^ mix64(h + 1)) % spec.ask_channels);
                ok = load[h][ch] < cap;
            }
            if (!ok)
                continue;
            for (std::uint32_t h = 0; h < spec.machines; ++h) {
                std::uint32_t ch = static_cast<std::uint32_t>(
                    mix64(candidate ^ mix64(h + 1)) % spec.ask_channels);
                ++load[h][ch];
            }
            task_ids.push_back(candidate);
        }
        ASK_ASSERT(task_ids.size() == num_tasks,
                   "could not balance shuffle task ids");
    }

    std::vector<bool> done(num_tasks, false);
    for (std::uint32_t t = 0; t < num_tasks; ++t) {
        std::uint32_t receiver = t % spec.machines;
        std::vector<core::StreamSpec> streams;
        for (std::uint32_t h = 0; h < spec.machines; ++h) {
            // Per-task id offsets isolate key spaces while keeping the
            // encoded keys short (one aggregator segment).
            workload::UniformGenerator gen(distinct,
                                           spec.seed * 131 + t * 17 + h, "",
                                           static_cast<std::uint64_t>(t) *
                                               (distinct + 1));
            streams.push_back({h, gen.generate(per_stream)});
        }
        cluster.submit_task(task_ids[t], receiver, std::move(streams),
                            {.region_len = region_len},
                            [&done, t](core::AggregateMap,
                                       core::TaskReport) { done[t] = true; });
    }
    sim::SimTime elapsed = cluster.run();
    for (std::uint32_t t = 0; t < num_tasks; ++t)
        ASK_ASSERT(done[t], "aggregation task ", t, " incomplete");

    // Only the throughput-bound streaming portion scales with volume;
    // task setup and the final region fetch are fixed costs that must
    // not be multiplied by sim_scale.
    Nanoseconds fixed =
        2 * cc.mgmt_latency_ns + cc.notify_latency_ns +
        static_cast<Nanoseconds>(static_cast<double>(region_len) *
                                 cc.ask.num_aas * 2.0 * 2.0);
    double stream_ns =
        std::max(0.0, static_cast<double>(elapsed - fixed));
    double agg_s = (stream_ns * static_cast<double>(spec.sim_scale) +
                    static_cast<double>(fixed)) *
                   1e-9;

    // Mapping and streaming are pipelined: the job ends when the slower
    // of the two phases ends, plus the final fetch already included in
    // the simulated elapsed time.
    out.jct_s = std::max(out.mapper_tct_s, agg_s);
    out.reducer_tct_s = agg_s;
    out.cpu_fraction = static_cast<double>(spec.ask_channels) /
                       spec.cores_per_machine;

    const core::SwitchAggStats& sw = cluster.switch_stats();
    if (sw.tuples_in > 0) {
        out.switch_tuple_ratio =
            static_cast<double>(sw.tuples_aggregated) /
            static_cast<double>(sw.tuples_in);
    }
    if (sw.data_packets > 0) {
        out.switch_ack_ratio = static_cast<double>(sw.packets_acked) /
                               static_cast<double>(sw.packets_acked +
                                                   sw.packets_forwarded);
    }
    return out;
}

}  // namespace

MrJobResult
run_mr_job(const MrJobSpec& spec)
{
    if (spec.backend == MrBackend::kAsk)
        return run_ask_backend(spec);
    return run_spark_backend(spec);
}

}  // namespace ask::apps
