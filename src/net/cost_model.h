/**
 * @file
 * Host-side CPU cost model.
 *
 * The paper's testbed measures wall-clock behavior of DPDK packet I/O,
 * hash-map aggregation, and Spark tasks on 56-core Xeon servers. We
 * reproduce those *shapes* with an explicit per-operation cost model whose
 * constants are calibrated against the numbers the paper itself reports
 * (see EXPERIMENTS.md for the derivations):
 *
 *  - Packet TX cost: a fixed DPDK descriptor cost plus a per-PCIe-TLP
 *    cost. NICs inline small packets into the descriptor ring in ~60-byte
 *    chunks; above an inline threshold they switch to gather-DMA. The
 *    60-byte quantization reproduces Figure 8(a)'s goodput glitches at
 *    18 and 26 tuples/packet (TLP-count steps at 8x+40 crossing multiples
 *    of 60 land on x = 3, 11, 18, 26).
 *  - Per-tuple host aggregation: ~80 ns hash-map upsert (used by the ASK
 *    receiver and the NoAggr baseline).
 *  - PreAggr sort-merge combine: 131 ns/tuple with a linear contention
 *    factor, calibrated from the paper's 111.20 s @ 8 threads and
 *    33.22 s @ 32 threads over 6.4e9 tuples (Figure 7).
 *  - Spark per-tuple aggregation-path cost: calibrated from Figure 3
 *    (29 M AKV/s @ 16 cores, 42.6 M AKV/s peak @ 56 cores, 5x strawman
 *    gain @ 16 cores, 155x ASK gain at matched 4-core budget).
 */
#ifndef ASK_NET_COST_MODEL_H
#define ASK_NET_COST_MODEL_H

#include <cstdint>

#include "common/units.h"

namespace ask::net {

/** Tunable cost-model constants; defaults are the calibrated values. */
struct CostModelSpec
{
    /** Fixed per-packet TX cost (descriptor + doorbell amortized). */
    double tx_base_ns = 35.0;
    /** Per-TLP cost for inlined small-packet TX. */
    double tx_per_tlp_ns = 9.0;
    /** Effective inline TLP stride in bytes (reproduces Fig 8a glitches). */
    std::uint32_t tlp_stride_bytes = 60;
    /** Packets larger than this use gather-DMA instead of inlining. */
    std::uint32_t inline_threshold_bytes = 512;
    /** Per-byte cost beyond the inline threshold (gather-DMA is cheap). */
    double tx_dma_per_byte_ns = 0.02;

    /** Fixed per-packet RX cost. */
    double rx_base_ns = 30.0;
    /** Per-byte RX cost (LLC write allocation). */
    double rx_per_byte_ns = 0.02;

    /** Amortized cost of a header-only control packet (ACK/FIN) in a
     *  DPDK burst: tx_burst/rx_burst of 32+ 40-byte frames costs far
     *  less per packet than an isolated descriptor round trip. */
    double small_ctrl_ns = 15.0;

    /** Hash-map upsert cost per key-value tuple on the host. */
    double host_aggregate_ns_per_tuple = 80.0;

    /** PreAggr sort-merge combine per tuple (single thread). */
    double preaggr_ns_per_tuple = 131.0;
    /** Linear memory-contention factor for multi-threaded PreAggr:
     *  time(t) = (N * preaggr_ns / t) * (1 + contention * (t - 1)). */
    double preaggr_contention = 0.00864;

    /** Cores available on one server (Xeon Gold 5120T x2 in the paper). */
    std::uint32_t cores_per_host = 56;
};

/**
 * Evaluates the cost model. Stateless; all methods are pure functions of
 * the spec.
 */
class CostModel
{
  public:
    explicit CostModel(CostModelSpec spec = CostModelSpec{}) : spec_(spec) {}

    /** CPU time for one core to hand `data_bytes` of packet to the NIC. */
    Nanoseconds tx_cost_ns(std::uint64_t data_bytes) const;

    /** CPU time for one core to receive a `data_bytes` packet. */
    Nanoseconds rx_cost_ns(std::uint64_t data_bytes) const;

    /** CPU time to send or receive one burst-batched control packet. */
    Nanoseconds ctrl_cost_ns() const;

    /** CPU time to aggregate `tuples` key-value tuples into a hash map. */
    Nanoseconds host_aggregate_ns(std::uint64_t tuples) const;

    /** Wall-clock time for PreAggr's combine of `tuples` across `threads`
     *  threads (includes the contention factor). */
    Nanoseconds preaggr_combine_ns(std::uint64_t tuples,
                                   std::uint32_t threads) const;

    /** Number of PCIe TLPs an inlined TX of `data_bytes` occupies. */
    std::uint32_t tlp_count(std::uint64_t data_bytes) const;

    const CostModelSpec& spec() const { return spec_; }

  private:
    CostModelSpec spec_;
};

/**
 * Vanilla-Spark aggregation throughput (aggregated key-value tuples per
 * second) as a function of worker cores.
 *
 * Spark's aggregation path (JVM, serialization, shuffle spill) cannot be
 * rebuilt natively; instead this is a calibration curve anchored at the
 * paper's own Figure 3 measurements with linear interpolation between
 * anchors and a plateau after the 56-core peak.
 */
double spark_akvs(std::uint32_t cores);

}  // namespace ask::net

#endif  // ASK_NET_COST_MODEL_H
