#include "net/cost_model.h"

#include <algorithm>
#include <array>

#include "common/logging.h"

namespace ask::net {

std::uint32_t
CostModel::tlp_count(std::uint64_t data_bytes) const
{
    std::uint64_t inlined = std::min<std::uint64_t>(
        data_bytes, spec_.inline_threshold_bytes);
    return static_cast<std::uint32_t>(
        (inlined + spec_.tlp_stride_bytes - 1) / spec_.tlp_stride_bytes);
}

Nanoseconds
CostModel::tx_cost_ns(std::uint64_t data_bytes) const
{
    double ns = spec_.tx_base_ns +
                spec_.tx_per_tlp_ns * static_cast<double>(tlp_count(data_bytes));
    if (data_bytes > spec_.inline_threshold_bytes) {
        ns += spec_.tx_dma_per_byte_ns *
              static_cast<double>(data_bytes - spec_.inline_threshold_bytes);
    }
    return static_cast<Nanoseconds>(ns + 0.5);
}

Nanoseconds
CostModel::rx_cost_ns(std::uint64_t data_bytes) const
{
    return static_cast<Nanoseconds>(
        spec_.rx_base_ns + spec_.rx_per_byte_ns * static_cast<double>(data_bytes) +
        0.5);
}

Nanoseconds
CostModel::ctrl_cost_ns() const
{
    return static_cast<Nanoseconds>(spec_.small_ctrl_ns + 0.5);
}

Nanoseconds
CostModel::host_aggregate_ns(std::uint64_t tuples) const
{
    return static_cast<Nanoseconds>(
        spec_.host_aggregate_ns_per_tuple * static_cast<double>(tuples) + 0.5);
}

Nanoseconds
CostModel::preaggr_combine_ns(std::uint64_t tuples, std::uint32_t threads) const
{
    ASK_ASSERT(threads > 0, "preaggr needs at least one thread");
    double per_thread = spec_.preaggr_ns_per_tuple *
                        static_cast<double>(tuples) /
                        static_cast<double>(threads);
    double contention =
        1.0 + spec_.preaggr_contention * static_cast<double>(threads - 1);
    return static_cast<Nanoseconds>(per_thread * contention + 0.5);
}

double
spark_akvs(std::uint32_t cores)
{
    // Calibration anchors (cores, aggregated tuples per second) derived
    // from the paper's Figure 3 ratios:
    //   strawman @ line rate = 145 M AKV/s (one 8-byte tuple per 86-byte
    //   wire packet at 100 Gbps); strawman/Spark = 5x at 16 cores
    //   -> Spark(16) = 29 M; peak at 56 cores = strawman/3.4 -> 42.6 M;
    //   ASK(4 data channels)/Spark(4 cores) = 155x with ASK at
    //   1.2 G AKV/s -> Spark(4) = 7.74 M.
    struct Anchor { double cores, akvs; };
    static constexpr std::array<Anchor, 6> anchors{{
        {1.0, 2.0e6},
        {4.0, 7.74e6},
        {8.0, 1.55e7},
        {16.0, 2.9e7},
        {32.0, 3.8e7},
        {56.0, 4.26e7},
    }};

    double c = static_cast<double>(std::max<std::uint32_t>(cores, 1));
    if (c >= anchors.back().cores)
        return anchors.back().akvs;
    for (std::size_t i = 1; i < anchors.size(); ++i) {
        if (c <= anchors[i].cores) {
            const Anchor& lo = anchors[i - 1];
            const Anchor& hi = anchors[i];
            double t = (c - lo.cores) / (hi.cores - lo.cores);
            return lo.akvs + t * (hi.akvs - lo.akvs);
        }
    }
    return anchors.back().akvs;
}

}  // namespace ask::net
