/**
 * @file
 * Network fault injection: loss, duplication, and reordering.
 *
 * Data centers lose and retransmit packets (paper §2.3, §3.3); ASK's
 * reliability mechanism exists exactly because of that. The FaultModel
 * decides, per transmission, how many copies of a packet arrive and how
 * much extra delay each copy suffers. A seeded Rng makes every fault
 * pattern reproducible.
 */
#ifndef ASK_NET_FAULT_MODEL_H
#define ASK_NET_FAULT_MODEL_H

#include <cstdint>
#include <optional>
#include <vector>

#include "common/random.h"
#include "common/units.h"

namespace ask::net {

/** Per-link fault probabilities and delay inflation. */
struct FaultSpec
{
    /** Probability a transmission is silently dropped. */
    double loss_prob = 0.0;
    /** Probability a transmission is delivered twice. */
    double dup_prob = 0.0;
    /** Probability a delivery gets extra delay (causing reordering). */
    double reorder_prob = 0.0;
    /** Mean of the exponential extra delay applied to reordered copies. */
    Nanoseconds reorder_delay_ns = 20 * units::kMicrosecond;

    /** A perfectly reliable network. */
    static FaultSpec reliable() { return FaultSpec{}; }

    /** A lossy profile exercising every reliability path. */
    static FaultSpec
    lossy(double loss, double dup = 0.01, double reorder = 0.05)
    {
        FaultSpec s;
        s.loss_prob = loss;
        s.dup_prob = dup;
        s.reorder_prob = reorder;
        return s;
    }

    /** A dead wire: every transmission disappears. */
    static FaultSpec
    blackout()
    {
        FaultSpec s;
        s.loss_prob = 1.0;
        return s;
    }
};

/**
 * Draws fault outcomes for packet deliveries.
 */
class FaultModel
{
  public:
    FaultModel(FaultSpec spec, std::uint64_t seed);

    /**
     * Decide the fate of one transmission.
     * @return extra delays, one entry per delivered copy (possibly empty
     *         when the packet is lost; two entries when duplicated).
     */
    std::vector<Nanoseconds> deliveries();

    /** The steady-state fault profile the model was built with. */
    const FaultSpec& spec() const { return spec_; }

    /**
     * Chaos-episode override: while set, `deliveries()` draws from this
     * spec instead of the steady-state one (a blackout or burst-loss
     * window). Episodes restore the base spec when they end; stacked
     * windows are not modeled — the latest override wins and clearing
     * always returns to the base spec.
     */
    void set_override(const FaultSpec& spec) { override_ = spec; }
    void clear_override() { override_.reset(); }
    bool overridden() const { return override_.has_value(); }

    /** The spec currently governing deliveries. */
    const FaultSpec& active_spec() const
    {
        return override_ ? *override_ : spec_;
    }

    std::uint64_t dropped() const { return dropped_; }
    std::uint64_t duplicated() const { return duplicated_; }
    std::uint64_t delayed() const { return delayed_; }
    /** Transmissions decided while an override window was active. */
    std::uint64_t overridden_transmissions() const { return overridden_tx_; }

  private:
    Nanoseconds extra_delay();

    FaultSpec spec_;
    std::optional<FaultSpec> override_;
    Rng rng_;
    std::uint64_t dropped_ = 0;
    std::uint64_t duplicated_ = 0;
    std::uint64_t delayed_ = 0;
    std::uint64_t overridden_tx_ = 0;
};

}  // namespace ask::net

#endif  // ASK_NET_FAULT_MODEL_H
