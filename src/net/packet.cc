#include "net/packet.h"

// Packet is a plain aggregate; this translation unit exists to anchor the
// library and keep a place for future out-of-line helpers.
