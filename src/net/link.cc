#include "net/link.h"

#include <algorithm>

#include "common/logging.h"

namespace ask::net {

Link::Link(double rate_gbps, Nanoseconds propagation_ns)
    : rate_gbps_(rate_gbps), propagation_ns_(propagation_ns)
{
    ASK_ASSERT(rate_gbps > 0.0, "link rate must be positive");
    ASK_ASSERT(propagation_ns >= 0, "negative propagation delay");
}

sim::SimTime
Link::transmit(sim::SimTime now, std::uint64_t wire_bytes)
{
    sim::SimTime start = std::max(now, busy_until_);
    sim::SimTime tx_done = start + units::serialize_ns(wire_bytes, rate_gbps_);
    busy_until_ = tx_done;
    bytes_carried_ += wire_bytes;
    return tx_done + propagation_ns_;
}

}  // namespace ask::net
