#include "net/network.h"

#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"

namespace ask::net {

Network::Network(sim::Simulator& simulator) : simulator_(simulator) {}

NodeId
Network::attach(Node* node)
{
    ASK_ASSERT(node != nullptr, "cannot attach a null node");
    NodeId id = static_cast<NodeId>(nodes_.size());
    node->node_id_ = id;
    nodes_.push_back(node);
    return id;
}

void
Network::connect(NodeId a, NodeId b, double rate_gbps,
                 Nanoseconds propagation_ns, const FaultSpec& faults,
                 std::uint64_t fault_seed)
{
    ASK_ASSERT(a < nodes_.size() && b < nodes_.size() && a != b,
               "connect requires two distinct attached nodes");
    auto make_edge = [&](NodeId from, NodeId to, std::uint64_t seed) {
        Edge e;
        e.link = std::make_unique<Link>(rate_gbps, propagation_ns);
        e.faults = std::make_unique<FaultModel>(faults, seed);
        edges_[{from, to}] = std::move(e);
    };
    make_edge(a, b, fault_seed * 2 + 1);
    make_edge(b, a, fault_seed * 2 + 2);
}

Network::Edge&
Network::edge(NodeId from, NodeId to)
{
    auto it = edges_.find({from, to});
    ASK_ASSERT(it != edges_.end(), "no link from node ", from, " to ", to);
    return it->second;
}

const Network::Edge&
Network::edge(NodeId from, NodeId to) const
{
    auto it = edges_.find({from, to});
    ASK_ASSERT(it != edges_.end(), "no link from node ", from, " to ", to);
    return it->second;
}

void
Network::send(NodeId from, NodeId to, Packet pkt)
{
    Edge& e = edge(from, to);
    if (pkt.uid == 0)
        pkt.uid = next_uid_++;

    ++stats_.packets_sent;
    stats_.bytes_sent += pkt.wire_bytes();

    // The wire is occupied whether or not the packet survives; loss is
    // modeled at the receiving end of the hop.
    sim::SimTime arrival = e.link->transmit(simulator_.now(), pkt.wire_bytes());

    std::vector<Nanoseconds> copies = e.faults->deliveries();
    if (copies.empty()) {
        ++stats_.packets_dropped;
        return;
    }
    Node* sink = nodes_.at(to);
    for (std::size_t i = 0; i < copies.size(); ++i) {
        Packet copy;
        if (i + 1 < copies.size())
            copy = pkt;  // duplicate: keep the original for later copies
        else
            copy = std::move(pkt);
        ++stats_.packets_delivered;
        simulator_.schedule_at(
            arrival + copies[i],
            [sink, p = std::move(copy)]() mutable { sink->receive(std::move(p)); });
    }
}

sim::SimTime
Network::tx_free_at(NodeId from, NodeId to) const
{
    return edge(from, to).link->busy_until();
}

FaultModel&
Network::fault_model(NodeId from, NodeId to)
{
    return *edge(from, to).faults;
}

void
Network::set_cable_override(NodeId a, NodeId b, const FaultSpec& spec)
{
    edge(a, b).faults->set_override(spec);
    edge(b, a).faults->set_override(spec);
}

void
Network::clear_cable_override(NodeId a, NodeId b)
{
    edge(a, b).faults->clear_override();
    edge(b, a).faults->clear_override();
}

std::uint64_t
Network::link_bytes(NodeId from, NodeId to) const
{
    return edge(from, to).link->bytes_carried();
}

Node*
Network::node(NodeId id) const
{
    ASK_ASSERT(id < nodes_.size(), "unknown node id ", id);
    return nodes_[id];
}

void
Network::register_metrics(obs::MetricsRegistry& registry,
                          const std::string& prefix) const
{
    registry.expose(prefix + "packets_sent", &stats_.packets_sent, "net");
    registry.expose(prefix + "packets_delivered", &stats_.packets_delivered,
                    "net");
    registry.expose(prefix + "packets_dropped", &stats_.packets_dropped,
                    "net");
    registry.expose(prefix + "bytes_sent", &stats_.bytes_sent, "net");
}

}  // namespace ask::net
