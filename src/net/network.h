/**
 * @file
 * The network fabric: nodes wired together by faulty links.
 *
 * The ASK deployment (paper §5.1) is a star: N servers, each attached to
 * one port of a ToR programmable switch by a 100 Gbps cable. This class
 * supports arbitrary adjacency but is used as a star throughout.
 */
#ifndef ASK_NET_NETWORK_H
#define ASK_NET_NETWORK_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/fault_model.h"
#include "net/link.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace ask::obs {
class MetricsRegistry;
}  // namespace ask::obs

namespace ask::net {

/** Anything that can be attached to the network and receive packets. */
class Node
{
  public:
    virtual ~Node() = default;

    /** Deliver one packet; called by the Network at arrival time. */
    virtual void receive(Packet pkt) = 0;

    /** Human-readable name for logs. */
    virtual std::string name() const = 0;

    NodeId node_id() const { return node_id_; }

  private:
    friend class Network;
    NodeId node_id_ = 0;
};

/** Counters the fabric keeps per simulation. */
struct NetworkStats
{
    std::uint64_t packets_sent = 0;
    std::uint64_t packets_delivered = 0;
    std::uint64_t packets_dropped = 0;
    std::uint64_t bytes_sent = 0;
};

/**
 * Owns links and fault models and moves packets between nodes through
 * the simulator.
 */
class Network
{
  public:
    explicit Network(sim::Simulator& simulator);

    /** Attach a node; assigns and returns its NodeId. Nodes are borrowed,
     *  not owned: they must outlive the Network. */
    NodeId attach(Node* node);

    /**
     * Create a bidirectional cable between two attached nodes.
     * Both directions share the rate/delay/fault parameters but have
     * independent wires and fault streams.
     */
    void connect(NodeId a, NodeId b, double rate_gbps,
                 Nanoseconds propagation_ns,
                 const FaultSpec& faults = FaultSpec::reliable(),
                 std::uint64_t fault_seed = 1);

    /**
     * Transmit a packet from `from` to the adjacent node `to`.
     * `pkt.src`/`pkt.dst` describe end-to-end addressing and are not
     * interpreted here; delivery is hop-by-hop.
     */
    void send(NodeId from, NodeId to, Packet pkt);

    /** Earliest time the (from -> to) wire is free; for sender pacing. */
    sim::SimTime tx_free_at(NodeId from, NodeId to) const;

    /** The fault model of the directed (from -> to) wire. Chaos
     *  episodes use this to install/clear FaultSpec overrides. */
    FaultModel& fault_model(NodeId from, NodeId to);

    /** Override both directions of the (a <-> b) cable (blackout or
     *  burst-loss window); `clear_cable_override` restores both. */
    void set_cable_override(NodeId a, NodeId b, const FaultSpec& spec);
    void clear_cable_override(NodeId a, NodeId b);

    /** Total wire bytes carried on the directed (from -> to) link. */
    std::uint64_t link_bytes(NodeId from, NodeId to) const;

    Node* node(NodeId id) const;
    const NetworkStats& stats() const { return stats_; }

    /** Expose the fabric counters under `prefix` (owner "net"). */
    void register_metrics(obs::MetricsRegistry& registry,
                          const std::string& prefix = "net.") const;
    sim::Simulator& simulator() { return simulator_; }

  private:
    struct Edge
    {
        std::unique_ptr<Link> link;
        std::unique_ptr<FaultModel> faults;
    };

    Edge& edge(NodeId from, NodeId to);
    const Edge& edge(NodeId from, NodeId to) const;

    sim::Simulator& simulator_;
    std::vector<Node*> nodes_;
    std::map<std::pair<NodeId, NodeId>, Edge> edges_;
    NetworkStats stats_;
    std::uint64_t next_uid_ = 1;
};

}  // namespace ask::net

#endif  // ASK_NET_NETWORK_H
