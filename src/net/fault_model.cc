#include "net/fault_model.h"

namespace ask::net {

FaultModel::FaultModel(FaultSpec spec, std::uint64_t seed)
    : spec_(spec), rng_(seed)
{
}

Nanoseconds
FaultModel::extra_delay()
{
    const FaultSpec& s = active_spec();
    if (s.reorder_prob > 0.0 && rng_.chance(s.reorder_prob)) {
        ++delayed_;
        return static_cast<Nanoseconds>(
            rng_.next_exponential(static_cast<double>(s.reorder_delay_ns)));
    }
    return 0;
}

std::vector<Nanoseconds>
FaultModel::deliveries()
{
    const FaultSpec& s = active_spec();
    if (override_)
        ++overridden_tx_;
    std::vector<Nanoseconds> out;
    if (rng_.chance(s.loss_prob)) {
        ++dropped_;
        return out;
    }
    out.push_back(extra_delay());
    if (rng_.chance(s.dup_prob)) {
        ++duplicated_;
        out.push_back(extra_delay());
    }
    return out;
}

}  // namespace ask::net
