/**
 * @file
 * A directed point-to-point link with bandwidth and propagation delay.
 */
#ifndef ASK_NET_LINK_H
#define ASK_NET_LINK_H

#include <cstdint>

#include "common/units.h"
#include "sim/simulator.h"

namespace ask::net {

/**
 * Models one direction of a cable: serialization at a fixed rate plus a
 * fixed propagation delay. Transmissions queue behind each other
 * (store-and-forward with an unbounded buffer); congestive loss is
 * injected separately by the FaultModel.
 */
class Link
{
  public:
    /**
     * @param rate_gbps line rate in gigabits per second.
     * @param propagation_ns one-way propagation delay.
     */
    Link(double rate_gbps, Nanoseconds propagation_ns);

    /**
     * Reserve the wire for `wire_bytes` starting no earlier than `now`.
     * @return the absolute time the last bit arrives at the far end.
     */
    sim::SimTime transmit(sim::SimTime now, std::uint64_t wire_bytes);

    /** Time the transmitter becomes free again. */
    sim::SimTime busy_until() const { return busy_until_; }

    double rate_gbps() const { return rate_gbps_; }
    Nanoseconds propagation_ns() const { return propagation_ns_; }

    /** Total bytes ever accepted onto the wire. */
    std::uint64_t bytes_carried() const { return bytes_carried_; }

  private:
    double rate_gbps_;
    Nanoseconds propagation_ns_;
    sim::SimTime busy_until_ = 0;
    std::uint64_t bytes_carried_ = 0;
};

}  // namespace ask::net

#endif  // ASK_NET_LINK_H
