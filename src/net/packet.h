/**
 * @file
 * The simulated packet and wire-level framing constants.
 *
 * A Packet's `data` holds everything above the Ethernet payload boundary,
 * i.e. the IP header plus upper-layer bytes (for ASK traffic: IP header +
 * ASK header + tuple slots). Physical-layer and Ethernet framing is
 * accounted analytically via kFramingOverheadBytes, matching the paper's
 * 78-byte per-packet overhead: 12 (inter-packet gap) + 7 (preamble) +
 * 1 (start frame delimiter) + 14 (Ethernet) + 4 (CRC) = 38 framing bytes,
 * plus the 20-byte IP and 20-byte ASK headers carried inside `data`.
 */
#ifndef ASK_NET_PACKET_H
#define ASK_NET_PACKET_H

#include <cstdint>
#include <vector>

namespace ask::net {

/** Identifies an attached node (host or switch). */
using NodeId = std::uint32_t;

/** Framing bytes outside Packet::data (IPG+preamble+SFD+Ethernet+CRC). */
constexpr std::uint32_t kFramingOverheadBytes = 12 + 7 + 1 + 14 + 4;

/** Size of the IPv4 header we model at the front of Packet::data. */
constexpr std::uint32_t kIpHeaderBytes = 20;

/** A simulated network packet. */
struct Packet
{
    /** Origin node. */
    NodeId src = 0;
    /** Final destination node (the switch may consume or redirect). */
    NodeId dst = 0;
    /** IP header + upper-layer bytes. */
    std::vector<std::uint8_t> data;
    /** Unique id assigned by the Network on first transmission; preserved
     *  across duplication so receivers can observe duplicates in tests. */
    std::uint64_t uid = 0;

    /** Bytes occupying the wire, including framing overhead. */
    std::uint64_t
    wire_bytes() const
    {
        return data.size() + kFramingOverheadBytes;
    }
};

}  // namespace ask::net

#endif  // ASK_NET_PACKET_H
