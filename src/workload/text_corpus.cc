#include "workload/text_corpus.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/hash.h"
#include "common/logging.h"

namespace ask::workload {

CorpusProfile
yelp_profile()
{
    // Restaurant reviews: very large vocabulary, strong skew toward a
    // small set of common words; the paper measures yelp as the most
    // skew-affected trace (lowest packing efficiency, Fig. 8b).
    CorpusProfile p;
    p.name = "yelp";
    p.vocabulary = 400000;
    p.zipf_alpha = 1.04;
    p.base_len = 2.2;
    p.len_per_decade = 1.45;
    p.len_sigma = 1.5;
    return p;
}

CorpusProfile
newsgroups_profile()
{
    // 20 Newsgroups: smaller vocabulary, flatter distribution (technical
    // vocabulary spreads mass over more words).
    CorpusProfile p;
    p.name = "NG";
    p.vocabulary = 130000;
    p.zipf_alpha = 0.92;
    p.base_len = 2.5;
    p.len_per_decade = 1.30;
    p.len_sigma = 1.3;
    return p;
}

CorpusProfile
blog_authorship_profile()
{
    CorpusProfile p;
    p.name = "BAC";
    p.vocabulary = 280000;
    p.zipf_alpha = 0.96;
    p.base_len = 2.3;
    p.len_per_decade = 1.30;
    p.len_sigma = 1.3;
    return p;
}

CorpusProfile
movie_reviews_profile()
{
    CorpusProfile p;
    p.name = "LMDB";
    p.vocabulary = 160000;
    p.zipf_alpha = 1.00;
    p.base_len = 2.4;
    p.len_per_decade = 1.35;
    p.len_sigma = 1.4;
    return p;
}

std::vector<CorpusProfile>
all_corpus_profiles()
{
    return {yelp_profile(), newsgroups_profile(), blog_authorship_profile(),
            movie_reviews_profile()};
}

TextCorpus::TextCorpus(const CorpusProfile& profile, std::uint64_t seed)
    : profile_(profile), rng_(seed)
{
    ASK_ASSERT(profile_.vocabulary > 0, "empty vocabulary");

    // Frequency CDF (Zipf over ranks).
    cdf_.resize(profile_.vocabulary);
    double acc = 0.0;
    for (std::uint64_t r = 0; r < profile_.vocabulary; ++r) {
        acc += 1.0 / std::pow(static_cast<double>(r + 1), profile_.zipf_alpha);
        cdf_[r] = acc;
    }
    for (auto& c : cdf_)
        c /= acc;

    // Materialize deterministic spellings in rank order; collisions are
    // resolved by extending the word, so spellings are unique.
    words_.reserve(profile_.vocabulary);
    std::unordered_set<core::Key> used;
    used.reserve(profile_.vocabulary * 2);
    std::uint64_t spell_state = mix64(seed ^ fnv1a64(profile_.name));
    for (std::uint64_t r = 0; r < profile_.vocabulary; ++r) {
        // Rank-dependent mean length (Zipf's law of abbreviation).
        double mu = profile_.base_len +
                    profile_.len_per_decade * std::log10(1.0 + static_cast<double>(r));
        // Box-Muller normal draw.
        double u1 = std::max(1e-12, static_cast<double>(split_mix64(spell_state)) /
                                        18446744073709551616.0);
        double u2 = static_cast<double>(split_mix64(spell_state)) /
                    18446744073709551616.0;
        double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
        auto len = static_cast<std::int64_t>(std::lround(mu + profile_.len_sigma * z));
        len = std::clamp<std::int64_t>(len, 1, 18);

        core::Key w;
        w.reserve(static_cast<std::size_t>(len));
        for (std::int64_t i = 0; i < len; ++i)
            w.push_back(static_cast<char>('a' + split_mix64(spell_state) % 26));
        while (!used.insert(w).second)
            w.push_back(static_cast<char>('a' + split_mix64(spell_state) % 26));
        words_.push_back(std::move(w));
    }
}

const core::Key&
TextCorpus::word(std::uint64_t rank)
{
    ASK_ASSERT(rank < words_.size(), "rank beyond vocabulary");
    return words_[rank];
}

core::KvStream
TextCorpus::generate(std::uint64_t n)
{
    core::KvStream out;
    out.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        double u = rng_.next_double();
        auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
        out.push_back({words_[static_cast<std::size_t>(it - cdf_.begin())], 1});
    }
    return out;
}

}  // namespace ask::workload
