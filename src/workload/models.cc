#include "workload/models.h"

namespace ask::workload {

namespace {

ModelSpec
make(const char* name, std::uint64_t params, double images_per_second)
{
    ModelSpec m;
    m.name = name;
    m.parameters = params;
    m.batch_size = 32;
    m.compute_ns = static_cast<Nanoseconds>(
        m.batch_size / images_per_second * 1e9);
    return m;
}

}  // namespace

// Parameter counts are the standard ImageNet-classification figures;
// single-GPU throughputs are RTX 2080Ti fp32 training rates (batch 32).

ModelSpec resnet50() { return make("ResNet50", 25557032, 220.0); }
ModelSpec resnet101() { return make("ResNet101", 44549160, 132.0); }
ModelSpec resnet152() { return make("ResNet152", 60192808, 94.0); }
ModelSpec vgg11() { return make("VGG11", 132863336, 158.0); }
ModelSpec vgg16() { return make("VGG16", 138357544, 110.0); }
ModelSpec vgg19() { return make("VGG19", 143667240, 96.0); }

std::vector<ModelSpec>
figure12_models()
{
    return {resnet50(), resnet101(), resnet152(), vgg11(), vgg16(), vgg19()};
}

}  // namespace ask::workload
