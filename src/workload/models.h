/**
 * @file
 * The model zoo for the distributed-training experiments (paper §5.6):
 * parameter counts and single-GPU step times for the six models the
 * paper trains (ResNet50/101/152, VGG11/16/19) on an RTX 2080Ti-class
 * accelerator with ImageNet-shaped inputs.
 */
#ifndef ASK_WORKLOAD_MODELS_H
#define ASK_WORKLOAD_MODELS_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"

namespace ask::workload {

/** One trainable model. */
struct ModelSpec
{
    std::string name;
    /** Trainable parameters == gradient elements per step. */
    std::uint64_t parameters = 0;
    /** Per-GPU minibatch size. */
    std::uint32_t batch_size = 32;
    /** Forward+backward compute time for one minibatch on one GPU. */
    Nanoseconds compute_ns = 0;

    /** Gradient bytes per step (fp32). */
    std::uint64_t gradient_bytes() const { return parameters * 4; }

    /** Single-GPU throughput in images/second. */
    double
    single_gpu_ips() const
    {
        return static_cast<double>(batch_size) /
               ask::units::to_seconds(compute_ns);
    }
};

/** The six models of Figure 12. */
ModelSpec resnet50();
ModelSpec resnet101();
ModelSpec resnet152();
ModelSpec vgg11();
ModelSpec vgg16();
ModelSpec vgg19();
std::vector<ModelSpec> figure12_models();

}  // namespace ask::workload

#endif  // ASK_WORKLOAD_MODELS_H
