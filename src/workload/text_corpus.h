/**
 * @file
 * Synthetic text-corpus generators standing in for the paper's
 * production traces (yelp, 20 Newsgroups, Blog Authorship Corpus, Large
 * Movie Review Database).
 *
 * We cannot ship the datasets, but the ASK behaviors they drive —
 * Table 1's traffic reduction and Fig. 8b's packing efficiency — depend
 * only on (a) the key-frequency skew and (b) the word-length
 * distribution (which decides short/medium/long classification). Each
 * profile parameterizes both: a Zipf exponent and vocabulary size for
 * skew, and a rank-dependent word-length model honoring Zipf's law of
 * abbreviation (frequent words are short). Absolute percentages differ
 * a few points from the paper; orderings and ranges are preserved.
 */
#ifndef ASK_WORKLOAD_TEXT_CORPUS_H
#define ASK_WORKLOAD_TEXT_CORPUS_H

#include <cstdint>
#include <string>
#include <vector>

#include "ask/types.h"
#include "common/random.h"

namespace ask::workload {

/** Statistical profile of one corpus. */
struct CorpusProfile
{
    std::string name;
    /** Vocabulary size (distinct words). */
    std::uint64_t vocabulary = 100000;
    /** Zipf exponent of word frequency. */
    double zipf_alpha = 1.0;
    /** Base word length for the most frequent words. */
    double base_len = 2.4;
    /** Word-length growth per decade of rank (law of abbreviation). */
    double len_per_decade = 1.35;
    /** Std deviation of word length around its rank mean. */
    double len_sigma = 1.4;
};

/** Built-in profiles mirroring the paper's four datasets. */
CorpusProfile yelp_profile();
CorpusProfile newsgroups_profile();
CorpusProfile blog_authorship_profile();
CorpusProfile movie_reviews_profile();
std::vector<CorpusProfile> all_corpus_profiles();

/**
 * Generates word-count streams from a CorpusProfile. Each word of the
 * vocabulary has a deterministic spelling (lowercase letters, length
 * drawn from the rank-dependent model), so the same profile+seed always
 * yields the same trace.
 */
class TextCorpus
{
  public:
    TextCorpus(const CorpusProfile& profile, std::uint64_t seed);

    /** Generate a WordCount-style stream of `n` (word, 1) tuples. */
    core::KvStream generate(std::uint64_t n);

    /** The spelling of the rank-r word. */
    const core::Key& word(std::uint64_t rank);

    const CorpusProfile& profile() const { return profile_; }

  private:
    CorpusProfile profile_;
    Rng rng_;
    std::vector<double> cdf_;
    std::vector<core::Key> words_;  ///< lazily materialized spellings
};

}  // namespace ask::workload

#endif  // ASK_WORKLOAD_TEXT_CORPUS_H
