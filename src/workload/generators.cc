#include "workload/generators.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace ask::workload {

UniformGenerator::UniformGenerator(std::uint64_t distinct_keys,
                                   std::uint64_t seed, std::string key_prefix,
                                   std::uint64_t id_offset)
    : distinct_(distinct_keys),
      rng_(seed),
      prefix_(std::move(key_prefix)),
      offset_(id_offset)
{
    ASK_ASSERT(distinct_keys > 0, "vocabulary must be non-empty");
}

core::Key
UniformGenerator::key_of(std::uint64_t id) const
{
    return prefix_ + u64_key(offset_ + id);
}

core::KvStream
UniformGenerator::generate(std::uint64_t n, core::Value value)
{
    core::KvStream out;
    out.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i)
        out.push_back({key_of(rng_.next_below(distinct_)), value});
    return out;
}

ZipfGenerator::ZipfGenerator(std::uint64_t distinct_keys, double alpha,
                             std::uint64_t seed, std::string key_prefix)
    : distinct_(distinct_keys),
      alpha_(alpha),
      rng_(seed),
      prefix_(std::move(key_prefix))
{
    ASK_ASSERT(distinct_keys > 0, "vocabulary must be non-empty");
    ASK_ASSERT(alpha >= 0.0, "zipf exponent must be non-negative");
    cdf_.resize(distinct_);
    double acc = 0.0;
    for (std::uint64_t r = 0; r < distinct_; ++r) {
        acc += 1.0 / std::pow(static_cast<double>(r + 1), alpha_);
        cdf_[r] = acc;
    }
    for (auto& c : cdf_)
        c /= acc;
}

std::uint64_t
ZipfGenerator::sample_rank()
{
    double u = rng_.next_double();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::uint64_t>(it - cdf_.begin());
}

core::Key
ZipfGenerator::key_of(std::uint64_t rank) const
{
    return prefix_ + u64_key(rank);
}

core::KvStream
ZipfGenerator::generate(std::uint64_t n, KeyOrder order, core::Value value)
{
    std::vector<std::uint64_t> ranks(n);
    for (auto& r : ranks)
        r = sample_rank();
    switch (order) {
      case KeyOrder::kShuffled:
        break;  // draws are already i.i.d.
      case KeyOrder::kHotFirst:
        std::sort(ranks.begin(), ranks.end());
        break;
      case KeyOrder::kColdFirst:
        std::sort(ranks.begin(), ranks.end(), std::greater<>());
        break;
    }
    core::KvStream out;
    out.reserve(n);
    for (auto r : ranks)
        out.push_back({key_of(r), value});
    return out;
}

core::KvStream
value_stream(std::uint64_t length, core::Value value, std::uint64_t seed,
             std::uint64_t index_offset)
{
    Rng rng(seed);
    core::KvStream out;
    out.reserve(length);
    for (std::uint64_t i = 0; i < length; ++i) {
        core::Value v = value != 0
                            ? value
                            : static_cast<core::Value>(rng.next_below(1000));
        out.push_back({u64_key(index_offset + i), v});
    }
    return out;
}

}  // namespace ask::workload
