/**
 * @file
 * Synthetic key-value stream generators: uniform and Zipf-distributed
 * keys with controllable arrival order (paper §5.4's Zipf / Zipf-reverse
 * / Uniform datasets), plus value-stream (tensor) generation for the
 * distributed-training experiments.
 */
#ifndef ASK_WORKLOAD_GENERATORS_H
#define ASK_WORKLOAD_GENERATORS_H

#include <cstdint>
#include <string>
#include <vector>

#include "ask/types.h"
#include "common/random.h"

namespace ask::workload {

/** Arrival order of keys in a generated stream. */
enum class KeyOrder : std::uint8_t
{
    kShuffled,   ///< random interleaving (the realistic default)
    kHotFirst,   ///< hot keys appear early (paper's "Zipf" dataset)
    kColdFirst,  ///< cold keys appear early (paper's "Zipf (reverse)")
};

/** Uniformly-distributed keys over a fixed vocabulary. */
class UniformGenerator
{
  public:
    /**
     * @param distinct_keys vocabulary size.
     * @param seed RNG seed (streams are reproducible).
     * @param key_prefix prepended to every key (distinct per sender if
     *        cross-sender overlap is not wanted). Note: prefixes grow
     *        the key length and may change its class; to isolate key
     *        spaces while keeping keys short, use `id_offset` instead.
     * @param id_offset added to every vocabulary id before encoding.
     */
    UniformGenerator(std::uint64_t distinct_keys, std::uint64_t seed,
                     std::string key_prefix = "",
                     std::uint64_t id_offset = 0);

    /** Generate `n` tuples with the given value. */
    core::KvStream generate(std::uint64_t n, core::Value value = 1);

    /** The key for vocabulary id `id` (stable). */
    core::Key key_of(std::uint64_t id) const;

  private:
    std::uint64_t distinct_;
    Rng rng_;
    std::string prefix_;
    std::uint64_t offset_;
};

/**
 * Zipf-distributed keys: frequency of the rank-r key is proportional to
 * 1/(r+1)^alpha. Sampling uses an inverted CDF table (exact, O(log D)
 * per draw).
 */
class ZipfGenerator
{
  public:
    ZipfGenerator(std::uint64_t distinct_keys, double alpha,
                  std::uint64_t seed, std::string key_prefix = "");

    /**
     * Generate `n` tuples in the requested arrival order. kHotFirst and
     * kColdFirst draw the same multiset of keys as kShuffled (given the
     * same seed) but sort appearances by rank.
     */
    core::KvStream generate(std::uint64_t n, KeyOrder order = KeyOrder::kShuffled,
                            core::Value value = 1);

    /** Rank of one random draw. */
    std::uint64_t sample_rank();

    /** The key for rank `r` (stable). */
    core::Key key_of(std::uint64_t rank) const;

    double alpha() const { return alpha_; }

  private:
    std::uint64_t distinct_;
    double alpha_;
    Rng rng_;
    std::string prefix_;
    std::vector<double> cdf_;
};

/**
 * A value stream (paper §2.1.2): a dense vector of `length` values whose
 * index (plus `index_offset`) is the key. Used by the distributed-
 * training integration; offsets carve one gradient into PS shards.
 */
core::KvStream value_stream(std::uint64_t length, core::Value value,
                            std::uint64_t seed,
                            std::uint64_t index_offset = 0);

}  // namespace ask::workload

#endif  // ASK_WORKLOAD_GENERATORS_H
