/**
 * @file
 * Runtime knobs of the simulation engine.
 *
 * The only knob today is the worker-thread count of the parallel
 * engine (see sim/engine.h). It defaults to 1 — fully sequential, the
 * behavior every test and bench was written against — and is raised
 * either programmatically or with the ASK_SIM_THREADS environment
 * variable. Raising it never changes results: the engine's merge is
 * deterministic, so a run is bit-for-bit identical at any thread
 * count (docs/CONCURRENCY.md gives the argument).
 */
#ifndef ASK_SIM_OPTIONS_H
#define ASK_SIM_OPTIONS_H

#include <cstdlib>

namespace ask::sim {

/** Engine configuration, env-overridable. */
struct SimOptions
{
    /** Worker threads the engine may use (>= 1). 1 means run inline on
     *  the calling thread — no pool is created at all. */
    unsigned num_threads = 1;

    /**
     * The defaults with ASK_SIM_THREADS applied (clamped to [1, 64];
     * unparsable values fall back to 1). Every engine entry point —
     * the fuzz campaign driver, the parallel benches — constructs its
     * options through here, so the env var is the one knob that turns
     * on multi-core execution everywhere.
     */
    static SimOptions
    from_env()
    {
        SimOptions options;
        if (const char* env = std::getenv("ASK_SIM_THREADS")) {
            long v = std::strtol(env, nullptr, 10);
            if (v < 1)
                v = 1;
            if (v > 64)
                v = 64;
            options.num_threads = static_cast<unsigned>(v);
        }
        return options;
    }
};

}  // namespace ask::sim

#endif  // ASK_SIM_OPTIONS_H
