#include "sim/engine.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

#include "common/logging.h"

namespace ask::sim {

/**
 * The persistent worker pool behind parallel windows.
 *
 * `workers` threads are spawned once (the calling thread participates
 * too, so an engine with num_threads == N creates N - 1 of them). Work
 * is a (count, body) pair; indices are claimed with an atomic counter,
 * so distribution across threads is racy BY DESIGN — nothing the
 * engine computes may depend on which worker ran which index, and the
 * determinism tests run every campaign at several thread counts to
 * prove nothing does.
 */
class ParallelEngine::Pool
{
  public:
    explicit Pool(unsigned workers)
    {
        threads_.reserve(workers);
        for (unsigned w = 0; w < workers; ++w)
            threads_.emplace_back([this] { worker_loop(); });
    }

    ~Pool()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            stop_ = true;
        }
        work_ready_.notify_all();
        for (auto& t : threads_)
            t.join();
    }

    /** Run body(i) for i in [0, n); returns when every index is done. */
    void
    run(std::size_t n, const std::function<void(std::size_t)>& body)
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            n_ = n;
            body_ = &body;
            next_.store(0, std::memory_order_relaxed);
            busy_ = threads_.size();
            ++generation_;
        }
        work_ready_.notify_all();
        claim_loop();
        std::unique_lock<std::mutex> lock(mu_);
        round_done_.wait(lock, [this] { return busy_ == 0; });
        body_ = nullptr;
    }

  private:
    void
    claim_loop()
    {
        for (;;) {
            std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
            if (i >= n_)
                return;
            (*body_)(i);
        }
    }

    void
    worker_loop()
    {
        std::uint64_t seen = 0;
        for (;;) {
            std::unique_lock<std::mutex> lock(mu_);
            work_ready_.wait(lock, [&] {
                return stop_ || generation_ != seen;
            });
            if (stop_)
                return;
            seen = generation_;
            lock.unlock();

            claim_loop();

            lock.lock();
            if (--busy_ == 0)
                round_done_.notify_one();
        }
    }

    std::vector<std::thread> threads_;
    std::mutex mu_;
    std::condition_variable work_ready_;
    std::condition_variable round_done_;
    std::uint64_t generation_ = 0;
    std::size_t n_ = 0;
    const std::function<void(std::size_t)>* body_ = nullptr;
    std::atomic<std::size_t> next_{0};
    std::size_t busy_ = 0;
    bool stop_ = false;
};

ParallelEngine::ParallelEngine(SimOptions options) : options_(options)
{
    ASK_ASSERT(options_.num_threads >= 1, "engine needs at least 1 thread");
}

ParallelEngine::~ParallelEngine() = default;

IslandId
ParallelEngine::add_island(std::string name)
{
    ASK_ASSERT(!in_window_, "cannot add islands mid-run");
    islands_.push_back(
        Island{std::move(name), std::make_unique<Simulator>(), {}});
    return static_cast<IslandId>(islands_.size() - 1);
}

void
ParallelEngine::set_lookahead(SimTime lookahead)
{
    ASK_ASSERT(!in_window_, "cannot change lookahead mid-run");
    ASK_ASSERT(lookahead >= 0, "negative lookahead");
    lookahead_ = lookahead;
}

void
ParallelEngine::post(IslandId from, IslandId to, SimTime delay,
                     std::function<void()> fn)
{
    ASK_ASSERT(in_window_, "post() is only legal inside a running window");
    ASK_ASSERT(lookahead_ > 0, "posting islands need a positive lookahead");
    ASK_ASSERT(delay >= lookahead_,
               "cross-island delay below the lookahead bound");
    ASK_ASSERT(to < islands_.size(), "post to unknown island");
    Island& src = islands_.at(from);
    // Timestamp now, at the source's clock: by the lookahead bound it
    // lands at or beyond the current window's end, so buffering it to
    // the barrier cannot reorder it before anything already executed.
    src.outbox.push_back(Post{to, src.sim->now() + delay, std::move(fn)});
}

void
ParallelEngine::parallel_for(std::size_t n,
                             const std::function<void(std::size_t)>& body)
{
    if (options_.num_threads <= 1 || n <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }
    if (!pool_)
        pool_ = std::make_unique<Pool>(options_.num_threads - 1);
    pool_->run(n, body);
}

void
ParallelEngine::flush_outboxes()
{
    // The merge order — islands by id, each outbox in emission order —
    // is a pure function of simulation content, never of the thread
    // schedule, so the EventIds the target simulators hand out (and
    // with them same-timestamp FIFO order) are reproducible.
    for (Island& island : islands_) {
        for (Post& p : island.outbox)
            islands_.at(p.to).sim->schedule_at(p.time, std::move(p.fn));
        island.outbox.clear();
    }
}

bool
ParallelEngine::global_floor(SimTime* t)
{
    bool any = false;
    for (Island& island : islands_) {
        SimTime next = 0;
        if (island.sim->next_event_time(&next) && (!any || next < *t)) {
            any = true;
            *t = next;
        }
    }
    return any;
}

SimTime
ParallelEngine::drive(bool bounded, SimTime deadline)
{
    ASK_ASSERT(!in_window_, "engine re-entered");
    for (;;) {
        SimTime floor = 0;
        if (!global_floor(&floor))
            break;
        if (bounded && floor > deadline)
            break;

        // The window [floor, end): with no lookahead the islands are
        // independent by contract, so the window is unbounded and each
        // island simply runs out (or up to the deadline).
        bool windowed = lookahead_ > 0;
        SimTime end = floor + lookahead_;
        if (bounded && (!windowed || end > deadline + 1))
            end = deadline + 1;  // run_before is strict: fires == deadline

        in_window_ = true;
        parallel_for(islands_.size(), [&](std::size_t i) {
            if (windowed || bounded)
                islands_[i].sim->run_before(end);
            else
                islands_[i].sim->run();
        });
        in_window_ = false;
        flush_outboxes();

        if (!windowed && !bounded)
            break;  // every island drained completely
    }

    SimTime reached = bounded ? deadline : 0;
    for (Island& island : islands_) {
        if (bounded && island.sim->now() < deadline)
            island.sim->run_until(deadline);  // advance idle clocks
        reached = std::max(reached, island.sim->now());
    }
    return reached;
}

SimTime
ParallelEngine::run()
{
    return drive(/*bounded=*/false, 0);
}

SimTime
ParallelEngine::run_until(SimTime deadline)
{
    return drive(/*bounded=*/true, deadline);
}

void
ParallelEngine::run_isolated(const std::vector<std::function<void()>>& jobs)
{
    parallel_for(jobs.size(), [&](std::size_t i) { jobs[i](); });
}

}  // namespace ask::sim
