#include "sim/chaos.h"

#include "common/logging.h"
#include "common/random.h"

namespace ask::sim {

const char*
chaos_kind_name(ChaosKind kind)
{
    switch (kind) {
      case ChaosKind::kLinkBlackout:
        return "link-blackout";
      case ChaosKind::kBurstLoss:
        return "burst-loss";
      case ChaosKind::kSwitchReboot:
        return "switch-reboot";
      case ChaosKind::kMgmtOutage:
        return "mgmt-outage";
      case ChaosKind::kMgmtDelay:
        return "mgmt-delay";
      case ChaosKind::kDataBlackhole:
        return "data-blackhole";
      case ChaosKind::kHostCrash:
        return "host-crash";
      case ChaosKind::kHostRestart:
        return "host-restart";
    }
    return "unknown";
}

ChaosPlan&
ChaosPlan::link_blackout(SimTime at, SimTime duration, std::uint32_t host)
{
    return add({ChaosKind::kLinkBlackout, at, duration, host, 1.0});
}

ChaosPlan&
ChaosPlan::burst_loss(SimTime at, SimTime duration, std::uint32_t host,
                      double loss)
{
    return add({ChaosKind::kBurstLoss, at, duration, host, loss});
}

ChaosPlan&
ChaosPlan::switch_reboot(SimTime at, SimTime outage)
{
    return add({ChaosKind::kSwitchReboot, at, outage, 0, 0.0});
}

ChaosPlan&
ChaosPlan::mgmt_outage(SimTime at, SimTime duration)
{
    return add({ChaosKind::kMgmtOutage, at, duration, 0, 0.0});
}

ChaosPlan&
ChaosPlan::mgmt_delay(SimTime at, SimTime duration, Nanoseconds extra)
{
    return add({ChaosKind::kMgmtDelay, at, duration, 0,
                static_cast<double>(extra)});
}

ChaosPlan&
ChaosPlan::data_blackhole(SimTime at, SimTime duration)
{
    return add({ChaosKind::kDataBlackhole, at, duration, 0, 0.0});
}

ChaosPlan&
ChaosPlan::host_crash(SimTime at, SimTime outage, std::uint32_t host)
{
    return add({ChaosKind::kHostCrash, at, outage, host, 0.0});
}

ChaosPlan&
ChaosPlan::host_restart(SimTime at, std::uint32_t host)
{
    return add({ChaosKind::kHostRestart, at, 0, host, 0.0});
}

ChaosPlan&
ChaosPlan::controller_crash(SimTime at, SimTime outage)
{
    return add({ChaosKind::kHostCrash, at, outage, kControllerSubject, 0.0});
}

ChaosPlan
ChaosPlan::randomized(std::uint64_t seed, SimTime horizon,
                      std::uint32_t episodes, std::uint32_t num_hosts,
                      SimTime mean_duration, double intensity,
                      bool allow_reboot)
{
    ASK_ASSERT(horizon > 0 && num_hosts > 0, "degenerate chaos horizon");
    Rng rng(seed);
    ChaosPlan plan;
    for (std::uint32_t i = 0; i < episodes; ++i) {
        ChaosEvent e;
        // Weighted kinds: link faults dominate, control-plane episodes
        // are occasional, reboots rare (and opt-in).
        std::uint64_t roll = rng.next_below(allow_reboot ? 10 : 9);
        if (roll < 3)
            e.kind = ChaosKind::kLinkBlackout;
        else if (roll < 6)
            e.kind = ChaosKind::kBurstLoss;
        else if (roll < 7)
            e.kind = ChaosKind::kMgmtOutage;
        else if (roll < 8)
            e.kind = ChaosKind::kMgmtDelay;
        else if (roll < 9)
            e.kind = ChaosKind::kDataBlackhole;
        else
            e.kind = ChaosKind::kSwitchReboot;
        e.at = static_cast<SimTime>(rng.next_below(
            static_cast<std::uint64_t>(horizon)));
        e.duration = 1 + static_cast<SimTime>(rng.next_exponential(
                             static_cast<double>(mean_duration)));
        e.subject = static_cast<std::uint32_t>(rng.next_below(num_hosts));
        switch (e.kind) {
          case ChaosKind::kLinkBlackout:
            e.intensity = 1.0;
            break;
          case ChaosKind::kBurstLoss:
            e.intensity = 0.2 + 0.7 * intensity * rng.next_double();
            break;
          case ChaosKind::kMgmtDelay:
            e.intensity = static_cast<double>(e.duration) / 4.0;
            break;
          default:
            e.intensity = 0.0;
            break;
        }
        plan.add(e);
    }
    return plan;
}

void
FaultScheduler::set_handler(ChaosKind kind, Handler on_start, Handler on_end)
{
    handlers_[kind] = Handlers{std::move(on_start), std::move(on_end)};
}

std::uint64_t
FaultScheduler::events_fired(ChaosKind kind) const
{
    auto it = fired_by_kind_.find(kind);
    return it == fired_by_kind_.end() ? 0 : it->second;
}

std::uint64_t
FaultScheduler::unhandled_events(ChaosKind kind) const
{
    auto it = unhandled_by_kind_.find(kind);
    return it == unhandled_by_kind_.end() ? 0 : it->second;
}

void
FaultScheduler::arm(const ChaosPlan& plan)
{
    for (const ChaosEvent& e : plan.events) {
        simulator_.schedule_at(e.at, [this, e] {
            ++events_fired_;
            ++fired_by_kind_[e.kind];
            auto it = handlers_.find(e.kind);
            if (it == handlers_.end()) {
                ++unhandled_events_;
                ++unhandled_by_kind_[e.kind];
                warn("chaos: ", chaos_kind_name(e.kind), " episode at ",
                     e.at, " fired with no handler registered");
                if (unhandled_hook_)
                    unhandled_hook_(e);
                return;
            }
            if (it->second.on_start)
                it->second.on_start(e);
            if (e.duration > 0 && it->second.on_end) {
                // Capture the handler, not the map iterator: handlers
                // may be re-registered while an episode is open.
                simulator_.schedule_at(e.at + e.duration, [this, e] {
                    auto jt = handlers_.find(e.kind);
                    if (jt != handlers_.end() && jt->second.on_end)
                        jt->second.on_end(e);
                });
            }
        });
    }
}

}  // namespace ask::sim
