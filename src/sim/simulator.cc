#include "sim/simulator.h"

#include <utility>

#include "common/logging.h"

namespace ask::sim {

EventId
Simulator::schedule_at(SimTime t, std::function<void()> fn)
{
    ASK_ASSERT(t >= now_, "cannot schedule an event in the past");
    EventId id = next_id_++;
    queue_.push(Entry{t, id, std::move(fn)});
    return id;
}

EventId
Simulator::schedule_after(SimTime delay, std::function<void()> fn)
{
    ASK_ASSERT(delay >= 0, "negative delay");
    return schedule_at(now_ + delay, std::move(fn));
}

bool
Simulator::cancel(EventId id)
{
    if (id == kInvalidEvent || id >= next_id_)
        return false;
    bool inserted = cancelled_.insert(id).second;
    if (inserted)
        ++cancelled_live_;
    // The entry might have already fired; that is indistinguishable here,
    // but firing purges the id from cancelled_, so a stale insert only
    // happens for ids the caller misuses. Treat insert success as success.
    return inserted;
}

bool
Simulator::pop_and_run()
{
    while (!queue_.empty()) {
        Entry e = std::move(const_cast<Entry&>(queue_.top()));
        queue_.pop();
        auto it = cancelled_.find(e.id);
        if (it != cancelled_.end()) {
            cancelled_.erase(it);
            --cancelled_live_;
            continue;
        }
        ASK_ASSERT(e.time >= now_, "event queue went backwards");
        now_ = e.time;
        ++executed_;
        e.fn();
        if (after_event_)
            after_event_(now_);
        return true;
    }
    return false;
}

SimTime
Simulator::run()
{
    while (pop_and_run()) {
    }
    return now_;
}

SimTime
Simulator::run_until(SimTime deadline)
{
    while (!queue_.empty()) {
        // Skip cancelled heads without advancing time.
        if (cancelled_.count(queue_.top().id)) {
            cancelled_.erase(queue_.top().id);
            --cancelled_live_;
            queue_.pop();
            continue;
        }
        if (queue_.top().time > deadline)
            break;
        pop_and_run();
    }
    if (now_ < deadline)
        now_ = deadline;
    return now_;
}

SimTime
Simulator::run_before(SimTime end)
{
    SimTime next = 0;
    while (next_event_time(&next) && next < end)
        pop_and_run();
    return now_;
}

bool
Simulator::next_event_time(SimTime* t)
{
    while (!queue_.empty()) {
        auto it = cancelled_.find(queue_.top().id);
        if (it == cancelled_.end()) {
            *t = queue_.top().time;
            return true;
        }
        cancelled_.erase(it);
        --cancelled_live_;
        queue_.pop();
    }
    return false;
}

bool
Simulator::step()
{
    return pop_and_run();
}

}  // namespace ask::sim
