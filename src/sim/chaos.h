/**
 * @file
 * Chaos injection: scheduled, reproducible fault events for the
 * simulation.
 *
 * The per-link FaultModel injects *steady-state* randomness (loss,
 * duplication, reordering). Production failures are different animals:
 * they are *episodes* — a cable goes dark for 50 ms, a switch reboots
 * and loses every register, the management network partitions for a
 * second. A ChaosPlan is a list of such episodes with absolute start
 * times and durations; the FaultScheduler arms them against the
 * simulator and invokes whatever handlers the deployment registered
 * (the network layer flips link overrides, the cluster layer wipes the
 * switch and runs recovery).
 *
 * The sim layer knows nothing about links or switches — it only keeps
 * the vocabulary of event kinds and the clockwork. Everything is
 * deterministic: the same plan against the same deployment yields the
 * same run, and randomized plans are derived from a seed.
 */
#ifndef ASK_SIM_CHAOS_H
#define ASK_SIM_CHAOS_H

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/units.h"
#include "sim/simulator.h"

namespace ask::sim {

/** The failure domains a chaos plan can exercise. */
enum class ChaosKind : std::uint8_t
{
    /** A link drops every packet for the duration. subject = host. */
    kLinkBlackout = 0,
    /** A link suffers elevated loss (`intensity` = loss probability)
     *  for the duration. subject = host. */
    kBurstLoss = 1,
    /** The switch crashes at `at`, loses all register state, and is
     *  offline for the duration. */
    kSwitchReboot = 2,
    /** The management network is unreachable for the duration. */
    kMgmtOutage = 3,
    /** Management RPCs suffer `intensity` ns of extra latency for the
     *  duration. */
    kMgmtDelay = 4,
    /** The switch data plane blackholes ASK aggregation traffic (DATA
     *  and SWAP packets) for the duration, while plain forwarding still
     *  works — the classic "sick ASIC program" failure. */
    kDataBlackhole = 5,
    /** A host-side process crashes at `at`, losing all in-memory state
     *  (partial aggregates, seen windows, send queues — or, for
     *  subject == kControllerSubject, the allocation journal), and
     *  restarts after `duration` by replaying its write-ahead log.
     *  subject = host index, or kControllerSubject for the controller.
     *  duration == 0 means the restart must be scheduled separately
     *  with a kHostRestart event. */
    kHostCrash = 6,
    /** Explicitly restart a previously crashed host (recover from its
     *  WAL). Only needed when the matching kHostCrash had duration 0;
     *  a crash with a duration restarts itself. subject as above. */
    kHostRestart = 7,
};

/** ChaosEvent::subject value addressing the controller process rather
 *  than a numbered host daemon (host indices are small; this sentinel
 *  can never collide with one). */
constexpr std::uint32_t kControllerSubject = 0xFFFFFFFFu;

/** Human-readable name of a kind (logs, bench tables). */
const char* chaos_kind_name(ChaosKind kind);

/** One scheduled fault episode. */
struct ChaosEvent
{
    ChaosKind kind = ChaosKind::kLinkBlackout;
    /** Absolute simulated start time. */
    SimTime at = 0;
    /** Episode length; 0 means instantaneous (no end callback). */
    SimTime duration = 0;
    /** Kind-specific target (e.g. host index of the affected link). */
    std::uint32_t subject = 0;
    /** Kind-specific magnitude (loss probability, extra delay ns). */
    double intensity = 0.0;
};

/** A reproducible schedule of fault episodes. */
struct ChaosPlan
{
    std::vector<ChaosEvent> events;

    bool empty() const { return events.empty(); }

    ChaosPlan&
    add(ChaosEvent e)
    {
        events.push_back(e);
        return *this;
    }

    /** Shorthands for the common single-event plans. */
    ChaosPlan& link_blackout(SimTime at, SimTime duration,
                             std::uint32_t host);
    ChaosPlan& burst_loss(SimTime at, SimTime duration, std::uint32_t host,
                          double loss);
    ChaosPlan& switch_reboot(SimTime at, SimTime outage);
    ChaosPlan& mgmt_outage(SimTime at, SimTime duration);
    ChaosPlan& mgmt_delay(SimTime at, SimTime duration, Nanoseconds extra);
    ChaosPlan& data_blackhole(SimTime at, SimTime duration);
    ChaosPlan& host_crash(SimTime at, SimTime outage, std::uint32_t host);
    ChaosPlan& host_restart(SimTime at, std::uint32_t host);
    ChaosPlan& controller_crash(SimTime at, SimTime outage);

    /**
     * Derive a randomized but reproducible plan: `episodes` episodes
     * drawn uniformly over [0, horizon), kinds weighted toward link
     * faults, episode lengths exponential around `mean_duration`,
     * targets below `num_hosts`. `intensity` scales burst-loss
     * probability. Reboots are excluded unless `allow_reboot` (they
     * restart tasks, which a goodput sweep may not want).
     */
    static ChaosPlan randomized(std::uint64_t seed, SimTime horizon,
                                std::uint32_t episodes,
                                std::uint32_t num_hosts,
                                SimTime mean_duration,
                                double intensity = 0.5,
                                bool allow_reboot = false);
};

/**
 * Arms a ChaosPlan against a Simulator and dispatches each episode's
 * start/end to the handlers the deployment registered per kind.
 */
class FaultScheduler
{
  public:
    using Handler = std::function<void(const ChaosEvent&)>;

    explicit FaultScheduler(Simulator& simulator) : simulator_(simulator) {}

    FaultScheduler(const FaultScheduler&) = delete;
    FaultScheduler& operator=(const FaultScheduler&) = delete;

    /**
     * Register the start (and optional end) handler for one kind.
     * Events of a kind with no handler are counted but otherwise
     * ignored, so a plan can be armed against a deployment that only
     * models some failure domains.
     */
    void set_handler(ChaosKind kind, Handler on_start,
                     Handler on_end = nullptr);

    /** Schedule every event of `plan`. May be called more than once. */
    void arm(const ChaosPlan& plan);

    /** Episodes whose start fired so far. */
    std::uint64_t events_fired() const { return events_fired_; }

    /** Episodes of `kind` whose start fired so far. */
    std::uint64_t events_fired(ChaosKind kind) const;

    /** Episodes that fired with no handler registered for their kind.
     *  A nonzero count means the deployment armed a plan it only
     *  partially models — fine for a bare network sim, a wiring bug in
     *  a full cluster. */
    std::uint64_t unhandled_events() const { return unhandled_events_; }

    /** Unhandled episodes of one kind. */
    std::uint64_t unhandled_events(ChaosKind kind) const;

    /** Invoked (if set) whenever an episode fires unhandled, so the
     *  deployment can surface the gap in its own stats. */
    void
    set_unhandled_hook(Handler hook)
    {
        unhandled_hook_ = std::move(hook);
    }

  private:
    struct Handlers
    {
        Handler on_start;
        Handler on_end;
    };

    Simulator& simulator_;
    std::map<ChaosKind, Handlers> handlers_;
    Handler unhandled_hook_;
    std::uint64_t events_fired_ = 0;
    std::uint64_t unhandled_events_ = 0;
    std::map<ChaosKind, std::uint64_t> fired_by_kind_;
    std::map<ChaosKind, std::uint64_t> unhandled_by_kind_;
};

}  // namespace ask::sim

#endif  // ASK_SIM_CHAOS_H
