/**
 * @file
 * The sharded discrete-event engine: islands + deterministic merge.
 *
 * A ParallelEngine partitions the event space into *islands* — units
 * of shared mutable state, each owning its own Simulator. Within an
 * island, event handlers may touch anything the island owns (an
 * AskCluster's daemons, switches, links, and chaos scheduler all
 * interact synchronously inside one event, so a whole cluster is one
 * island). Across islands, the ONLY interaction channel is post(),
 * whose delay must be at least the engine's lookahead.
 *
 * Execution is level-synchronous, conservative PDES: each round picks
 * the globally earliest pending event time T and runs every island
 * through the window [T, T + lookahead) in parallel, one island per
 * worker at most. A post() issued at source time s carries timestamp
 * s + delay >= T + lookahead, i.e. it always lands at or beyond the
 * window end — no event inside the current window can be affected by
 * another island, so running the windows island-parallel is sound. At
 * the window barrier, buffered posts are merged into their target
 * islands in (source island id, emission order) — a total order that
 * does not depend on thread scheduling — so EventId assignment, and
 * with it FIFO tie-breaking among equal timestamps, is identical at
 * any thread count. That is the whole bit-for-bit determinism
 * argument; docs/CONCURRENCY.md spells it out with the invariants.
 *
 * Lookahead 0 (the default) declares the islands fully independent:
 * post() is forbidden and every island runs to completion in parallel.
 * That degenerate mode — "replica islands" — is what the fuzz
 * campaign driver and the sweep benches use: each scenario or sweep
 * point is a self-contained simulation, trivially sound to run on any
 * worker. run_isolated() is the same mode for plain closures.
 */
#ifndef ASK_SIM_ENGINE_H
#define ASK_SIM_ENGINE_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/options.h"
#include "sim/simulator.h"

namespace ask::sim {

/** Index of an island within its engine. */
using IslandId = std::uint32_t;

/** The engine. Not itself thread-safe: one driver thread constructs
 *  it, registers islands, and calls run(); only event handlers running
 *  *inside* a window may call post(), and only on their own island. */
class ParallelEngine
{
  public:
    explicit ParallelEngine(SimOptions options = SimOptions::from_env());
    ~ParallelEngine();

    ParallelEngine(const ParallelEngine&) = delete;
    ParallelEngine& operator=(const ParallelEngine&) = delete;

    /** Register a new island (its Simulator starts empty at time 0).
     *  The id is dense: the i-th call returns i. */
    IslandId add_island(std::string name);

    /** The island's simulator: schedule initial events here, or hand it
     *  to an AskCluster (the external-simulator constructor). */
    Simulator& island(IslandId id) { return *islands_.at(id).sim; }

    const std::string& island_name(IslandId id) const
    {
        return islands_.at(id).name;
    }
    std::uint32_t num_islands() const
    {
        return static_cast<std::uint32_t>(islands_.size());
    }
    unsigned num_threads() const { return options_.num_threads; }

    /**
     * Set the conservative lookahead (ns of simulated time). Must be
     * called before run() when islands exchange posts; every post's
     * delay must be >= this bound. In the intended deployment the
     * bound is the minimum cross-island link latency — a message
     * physically cannot arrive sooner. 0 (the default) means the
     * islands never interact.
     */
    void set_lookahead(SimTime lookahead);
    SimTime lookahead() const { return lookahead_; }

    /**
     * Cross-island message: run `fn` on island `to`, `delay` ns after
     * the current event on island `from`. Must be called from inside an
     * event executing on `from` during run(), with delay >= lookahead.
     * The callback is merged into `to`'s queue at the next window
     * barrier, in deterministic (source island, emission order) order.
     */
    void post(IslandId from, IslandId to, SimTime delay,
              std::function<void()> fn);

    /** Run windows until every island drains. Returns the maximum
     *  island time reached. */
    SimTime run();

    /**
     * Run windows until simulated time reaches `deadline`: events at
     * exactly `deadline` fire, and islands that drained early are
     * advanced to `deadline` (mirrors Simulator::run_until).
     */
    SimTime run_until(SimTime deadline);

    /**
     * Deterministic parallel-for over fully independent jobs, on the
     * engine's worker pool. Each job must touch only its own state
     * (plus read-only shared state); the caller folds results in index
     * order afterwards, which is what makes any downstream report
     * independent of the thread count. With num_threads == 1 the jobs
     * run inline, in index order, on the calling thread.
     */
    void run_isolated(const std::vector<std::function<void()>>& jobs);

  private:
    /** One buffered cross-island message. */
    struct Post
    {
        IslandId to = 0;
        SimTime time = 0;
        std::function<void()> fn;
    };

    struct Island
    {
        std::string name;
        std::unique_ptr<Simulator> sim;
        /** Posts emitted by this island during the current window, in
         *  emission order. Only the worker running the island touches
         *  it, so it needs no lock. */
        std::vector<Post> outbox;
    };

    class Pool;

    /** body(i) for i in [0, n), on the pool (inline when 1 thread). */
    void parallel_for(std::size_t n,
                      const std::function<void(std::size_t)>& body);

    /** Merge every outbox into its target islands, deterministically. */
    void flush_outboxes();

    /** Earliest live event time over all islands; false when drained. */
    bool global_floor(SimTime* t);

    /** The window loop shared by run()/run_until(). */
    SimTime drive(bool bounded, SimTime deadline);

    SimOptions options_;
    SimTime lookahead_ = 0;
    bool in_window_ = false;
    std::vector<Island> islands_;
    std::unique_ptr<Pool> pool_;
};

}  // namespace ask::sim

#endif  // ASK_SIM_ENGINE_H
