/**
 * @file
 * Discrete-event simulation kernel.
 *
 * The whole ASK reproduction runs inside this kernel: hosts, NICs, links,
 * and the PISA switch schedule callbacks at future simulated times, and
 * throughput/latency figures are computed from simulated time. The kernel
 * is single-threaded and fully deterministic: events at the same timestamp
 * fire in scheduling order.
 */
#ifndef ASK_SIM_SIMULATOR_H
#define ASK_SIM_SIMULATOR_H

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/units.h"

namespace ask::sim {

/** Simulated time in nanoseconds since simulation start. */
using SimTime = Nanoseconds;

/** Handle to a scheduled event, usable for cancellation. */
using EventId = std::uint64_t;

/** Sentinel meaning "no event". */
constexpr EventId kInvalidEvent = 0;

/**
 * The event-driven simulator.
 *
 * Typical use:
 * @code
 *   Simulator s;
 *   s.schedule_after(10, [&] { ... });
 *   s.run();
 * @endcode
 */
class Simulator
{
  public:
    Simulator() = default;

    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    /** Current simulated time. */
    SimTime now() const { return now_; }

    /** Schedule `fn` to run at absolute time `t` (>= now). */
    EventId schedule_at(SimTime t, std::function<void()> fn);

    /** Schedule `fn` to run `delay` ns from now (delay >= 0). */
    EventId schedule_after(SimTime delay, std::function<void()> fn);

    /**
     * Cancel a pending event. Returns true if the event was still pending
     * (it will not fire); false if it already fired or was cancelled.
     */
    bool cancel(EventId id);

    /** Run until the event queue drains. Returns the final time. */
    SimTime run();

    /**
     * Run until simulated time reaches `deadline` (events at exactly
     * `deadline` fire) or the queue drains, whichever is first.
     */
    SimTime run_until(SimTime deadline);

    /**
     * Run every event with time strictly before `end`, including events
     * those events schedule into [now, end). Unlike run_until, now() is
     * NOT advanced to `end` when the queue drains early — the parallel
     * engine runs one lookahead window [T, T+L) per island with this,
     * and an island that sat idle must still accept merged cross-island
     * work stamped anywhere >= its last executed event.
     */
    SimTime run_before(SimTime end);

    /**
     * Time of the earliest live (non-cancelled) pending event, written
     * to `*t`. Returns false when the queue is drained. Cancelled heads
     * are purged on the way, so the answer is exact, not a bound.
     */
    bool next_event_time(SimTime* t);

    /** Execute at most one event. Returns false if the queue was empty. */
    bool step();

    /** Number of events currently pending (including cancelled stubs). */
    std::size_t pending() const { return queue_.size() - cancelled_live_; }

    /** Total events executed since construction. */
    std::uint64_t executed() const { return executed_; }

    /**
     * Install a hook invoked after every executed event with the current
     * time. Used by obs::Sampler to take periodic samples without ever
     * scheduling events of its own (a self-rescheduling sampler event
     * would keep run() from draining). One hook; pass nullptr to clear.
     */
    void set_after_event_hook(std::function<void(SimTime)> hook)
    {
        after_event_ = std::move(hook);
    }

  private:
    struct Entry
    {
        SimTime time;
        EventId id;
        std::function<void()> fn;

        bool
        operator>(const Entry& o) const
        {
            // Earlier time first; FIFO among equal times via id order.
            if (time != o.time)
                return time > o.time;
            return id > o.id;
        }
    };

    bool pop_and_run();

    SimTime now_ = 0;
    EventId next_id_ = 1;
    std::function<void(SimTime)> after_event_;
    std::uint64_t executed_ = 0;
    std::size_t cancelled_live_ = 0;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
    // Cancellation is implemented by remembering cancelled ids; entries
    // are skipped when popped. The set stays small because ids are purged
    // as their entries surface.
    std::unordered_set<EventId> cancelled_;
};

}  // namespace ask::sim

#endif  // ASK_SIM_SIMULATOR_H
