/**
 * @file
 * Logging and error-reporting primitives.
 *
 * Semantics follow the gem5 convention:
 *  - inform(): status messages with no connotation of incorrect behavior.
 *  - warn():   something may not be handled ideally but execution continues.
 *  - fatal():  the run cannot continue due to a *user* error (bad config,
 *              invalid arguments); exits with code 1.
 *  - panic():  an internal invariant was violated (a bug in this library);
 *              aborts so a core dump / debugger can capture state.
 *  - fail_config(): an install-time configuration reject (a program or
 *              layout a pipeline cannot legally host); throws ConfigError
 *              so embedders — the controller, the verifier sweep, tests —
 *              can catch it and report or recover instead of dying.
 */
#ifndef ASK_COMMON_LOGGING_H
#define ASK_COMMON_LOGGING_H

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace ask {

namespace detail {

/** Stream a pack of arguments into a string. */
template <typename... Args>
std::string
concat_args(Args&&... args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

/** Emit one log line with a severity tag. */
void log_line(const char* tag, const std::string& msg);

/** Controls whether inform()/warn() produce output (tests may silence). */
bool& log_enabled();

}  // namespace detail

/** Print an informational status message. */
template <typename... Args>
void
inform(Args&&... args)
{
    if (detail::log_enabled())
        detail::log_line("info", detail::concat_args(std::forward<Args>(args)...));
}

/** Print a warning; execution continues. */
template <typename... Args>
void
warn(Args&&... args)
{
    if (detail::log_enabled())
        detail::log_line("warn", detail::concat_args(std::forward<Args>(args)...));
}

/**
 * Terminate the process due to a user-facing error (bad configuration or
 * arguments). Exits with status 1; never returns.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args&&... args)
{
    detail::log_line("fatal", detail::concat_args(std::forward<Args>(args)...));
    std::exit(1);
}

/**
 * Terminate the process because an internal invariant was violated.
 * Aborts; never returns.
 */
template <typename... Args>
[[noreturn]] void
panic(Args&&... args)
{
    detail::log_line("panic", detail::concat_args(std::forward<Args>(args)...));
    std::abort();
}

/**
 * An install-time configuration reject: the requested program, layout,
 * or tunable cannot be hosted by the target pipeline. Catchable — a
 * rejected install must leave the process alive (the verifier sweep
 * and the controller rely on comparing/reporting rejects).
 */
class ConfigError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Reject an install-time configuration: throws ConfigError. Unlike
 * fatal(), the caller survives; unlike panic(), this is a *user* error
 * (over-provisioned SRAM, illegal access plan, bad tunables), not a
 * library bug.
 */
template <typename... Args>
[[noreturn]] void
fail_config(Args&&... args)
{
    throw ConfigError(detail::concat_args(std::forward<Args>(args)...));
}

/**
 * A runtime state reject: an operation that is illegal against the
 * *current* state of a live component (releasing an unknown task,
 * starting a duplicate receive, replaying a corrupt WAL). Catchable —
 * a simulated host crash must never take down the whole process; the
 * recovery paths catch this, fail the affected task with a typed
 * TaskStatus, and keep running.
 */
class StateError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Reject an operation against current runtime state: throws StateError.
 * The runtime sibling of fail_config() — same catchability contract,
 * but for faults that only exist once the system is running (crash
 * artifacts, stale task handles), not for install-time configuration.
 */
template <typename... Args>
[[noreturn]] void
fail_state(Args&&... args)
{
    throw StateError(detail::concat_args(std::forward<Args>(args)...));
}

/** panic() when a condition that must hold does not. */
#define ASK_ASSERT(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::ask::panic("assertion failed: ", #cond, " at ", __FILE__,     \
                         ":", __LINE__, " ", ##__VA_ARGS__);                \
        }                                                                   \
    } while (0)

/** RAII guard that silences inform()/warn() within a scope (for tests). */
class ScopedLogSilencer
{
  public:
    ScopedLogSilencer();
    ~ScopedLogSilencer();

    ScopedLogSilencer(const ScopedLogSilencer&) = delete;
    ScopedLogSilencer& operator=(const ScopedLogSilencer&) = delete;

  private:
    bool saved_;
};

}  // namespace ask

#endif  // ASK_COMMON_LOGGING_H
