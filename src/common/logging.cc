#include "common/logging.h"

namespace ask {
namespace detail {

void
log_line(const char* tag, const std::string& msg)
{
    std::cerr << "[" << tag << "] " << msg << "\n";
}

bool&
log_enabled()
{
    static bool enabled = true;
    return enabled;
}

}  // namespace detail

ScopedLogSilencer::ScopedLogSilencer()
    : saved_(detail::log_enabled())
{
    detail::log_enabled() = false;
}

ScopedLogSilencer::~ScopedLogSilencer()
{
    detail::log_enabled() = saved_;
}

}  // namespace ask
