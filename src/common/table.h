/**
 * @file
 * Plain-text table printer used by the benchmark harnesses to render
 * paper-style rows/series.
 */
#ifndef ASK_COMMON_TABLE_H
#define ASK_COMMON_TABLE_H

#include <iosfwd>
#include <string>
#include <vector>

namespace ask {

/**
 * A column-aligned text table. Add a header and rows of strings; print()
 * aligns each column to its widest cell.
 */
class TextTable
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append one data row. */
    void row(std::vector<std::string> cells);

    /** Render to a stream with a rule under the header. */
    void print(std::ostream& os) const;

    /** Render to a string. */
    std::string to_string() const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Print a section banner for bench output. */
void print_banner(std::ostream& os, const std::string& title);

}  // namespace ask

#endif  // ASK_COMMON_TABLE_H
