/**
 * @file
 * Small string helpers used by benches and examples.
 */
#ifndef ASK_COMMON_STRING_UTIL_H
#define ASK_COMMON_STRING_UTIL_H

#include <cstdint>
#include <string>
#include <vector>

namespace ask {

/** printf-style formatting into a std::string. */
std::string strf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/** Format a double with the given number of decimals. */
std::string fmt_double(double v, int decimals = 2);

/** Human-readable byte count ("1.50 GiB"). */
std::string fmt_bytes(std::uint64_t bytes);

/** Human-readable count with SI suffix ("1.2M"). */
std::string fmt_count(double count);

/** Split on a delimiter, dropping empty pieces. */
std::vector<std::string> split(const std::string& s, char delim);

/**
 * Encode a u64 as a short, NUL-free byte string (base-255 digits offset
 * by 1). Used to derive wire keys for numeric workloads: the ASK data
 * plane treats an all-zero key segment as "blank", so keys must not
 * contain NUL bytes (see ask/key_space.h).
 */
std::string u64_key(std::uint64_t x);

}  // namespace ask

#endif  // ASK_COMMON_STRING_UTIL_H
