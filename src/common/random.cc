#include "common/random.h"

#include <cmath>
#include <cstdlib>
#include <mutex>

#include "common/logging.h"

namespace ask {

std::uint64_t
split_mix64(std::uint64_t& state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed)
{
    // Seed the full 256-bit state from SplitMix64 so that nearby seeds
    // still produce decorrelated streams.
    for (auto& s : s_)
        s = split_mix64(seed);
}

std::uint64_t
Rng::next_u64()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

std::uint64_t
Rng::next_below(std::uint64_t bound)
{
    ASK_ASSERT(bound > 0, "next_below requires a positive bound");
    // Lemire-style rejection to avoid modulo bias.
    std::uint64_t threshold = (-bound) % bound;
    for (;;) {
        std::uint64_t r = next_u64();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Rng::next_in(std::uint64_t lo, std::uint64_t hi)
{
    ASK_ASSERT(lo <= hi, "next_in requires lo <= hi");
    return lo + next_below(hi - lo + 1);
}

double
Rng::next_double()
{
    // 53 high-quality mantissa bits.
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return next_double() < p;
}

double
Rng::next_exponential(double mean)
{
    ASK_ASSERT(mean > 0.0, "exponential mean must be positive");
    double u;
    do {
        u = next_double();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

Rng
Rng::fork()
{
    return Rng(next_u64());
}

namespace {

// The registry may be fed from parallel-engine workers (a bench sweep
// point seeding an Rng while another runs), so it is mutex-guarded.
// Entries then arrive in thread-schedule order — replay still works
// because ASK_SEED overrides every entry at once, and nothing folds
// the registry into deterministic output.
std::mutex&
seed_registry_mu()
{
    static std::mutex mu;
    return mu;
}

std::vector<SeedRecord>&
seed_registry()
{
    static std::vector<SeedRecord> records;
    return records;
}

}  // namespace

void
note_seed(const std::string& label, std::uint64_t seed)
{
    std::lock_guard<std::mutex> lock(seed_registry_mu());
    seed_registry().push_back({label, seed});
}

const std::vector<SeedRecord>&
noted_seeds()
{
    // Read from the sequential test harness only (after workers quiesce).
    return seed_registry();
}

void
clear_noted_seeds()
{
    std::lock_guard<std::mutex> lock(seed_registry_mu());
    seed_registry().clear();
}

std::uint64_t
effective_seed(std::uint64_t requested)
{
    if (const char* env = std::getenv("ASK_SEED"))
        return std::strtoull(env, nullptr, 0);
    return requested;
}

Rng
seeded_rng(const std::string& label, std::uint64_t seed)
{
    std::uint64_t s = effective_seed(seed);
    note_seed(label, s);
    return Rng(s);
}

}  // namespace ask
