#include "common/hash.h"

namespace ask {

std::uint64_t
fnv1a64(std::string_view bytes)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : bytes) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

std::uint64_t
hash64(std::string_view bytes, std::uint64_t seed)
{
    return mix64(fnv1a64(bytes) ^ mix64(seed));
}

}  // namespace ask
