#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace ask {

void
RunningStat::add(double x)
{
    ++n_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
Samples::add(double x)
{
    data_.push_back(x);
    sorted_valid_ = false;
}

double
Samples::mean() const
{
    if (data_.empty())
        return 0.0;
    double s = 0.0;
    for (double x : data_)
        s += x;
    return s / static_cast<double>(data_.size());
}

void
Samples::ensure_sorted() const
{
    if (!sorted_valid_) {
        sorted_ = data_;
        std::sort(sorted_.begin(), sorted_.end());
        sorted_valid_ = true;
    }
}

double
Samples::quantile(double q) const
{
    if (data_.empty())
        return 0.0;
    ensure_sorted();
    q = std::clamp(q, 0.0, 1.0);
    // Nearest-rank with linear interpolation between adjacent order stats.
    double pos = q * static_cast<double>(sorted_.size() - 1);
    std::size_t i = static_cast<std::size_t>(pos);
    double frac = pos - static_cast<double>(i);
    if (i + 1 >= sorted_.size())
        return sorted_.back();
    return sorted_[i] * (1.0 - frac) + sorted_[i + 1] * frac;
}

double
Samples::cdf_at(double x) const
{
    if (data_.empty())
        return 0.0;
    ensure_sorted();
    auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
    return static_cast<double>(it - sorted_.begin()) /
           static_cast<double>(sorted_.size());
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0)
{
    ASK_ASSERT(hi > lo && buckets > 0, "malformed histogram bounds");
}

void
Histogram::add(double x)
{
    double t = (x - lo_) / (hi_ - lo_);
    auto n = static_cast<double>(counts_.size());
    auto i = static_cast<long>(t * n);
    i = std::clamp<long>(i, 0, static_cast<long>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(i)];
    ++total_;
}

double
Histogram::bucket_lo(std::size_t i) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(counts_.size());
}

}  // namespace ask
