/**
 * @file
 * Lightweight statistics accumulators used by tests and benchmarks.
 */
#ifndef ASK_COMMON_STATS_H
#define ASK_COMMON_STATS_H

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace ask {

/** Streaming mean/variance/min/max accumulator (Welford's algorithm). */
class RunningStat
{
  public:
    /** Add one observation. */
    void add(double x);

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    /** Sample variance (n-1 denominator); 0 for fewer than 2 samples. */
    double variance() const;
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return sum_; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Sample reservoir with exact quantiles.
 *
 * Stores every sample; adequate for the volumes our benches produce
 * (millions of doubles). quantile() sorts lazily.
 */
class Samples
{
  public:
    void add(double x);
    std::size_t count() const { return data_.size(); }
    double mean() const;
    /** q in [0,1]; 0.5 = median. Returns 0 when empty. */
    double quantile(double q) const;
    /** Empirical CDF value: fraction of samples <= x. */
    double cdf_at(double x) const;
    const std::vector<double>& raw() const { return data_; }

  private:
    void ensure_sorted() const;

    std::vector<double> data_;
    mutable std::vector<double> sorted_;
    mutable bool sorted_valid_ = false;
};

/** Fixed-width histogram over [lo, hi); out-of-range values clamp to the
 *  end buckets. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets);

    void add(double x);
    std::size_t bucket_count() const { return counts_.size(); }
    std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
    /** Inclusive lower edge of bucket i. */
    double bucket_lo(std::size_t i) const;
    std::uint64_t total() const { return total_; }

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

}  // namespace ask

#endif  // ASK_COMMON_STATS_H
