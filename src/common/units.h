/**
 * @file
 * Unit helpers: time (nanosecond-granularity), data sizes, and rates.
 *
 * Simulated time is a plain int64 nanosecond count (SimTime lives in
 * sim/; these helpers are pure arithmetic shared by every layer).
 */
#ifndef ASK_COMMON_UNITS_H
#define ASK_COMMON_UNITS_H

#include <cstdint>

namespace ask {

/** Nanoseconds, the base time unit of the simulator. */
using Nanoseconds = std::int64_t;

namespace units {

constexpr Nanoseconds kNanosecond = 1;
constexpr Nanoseconds kMicrosecond = 1000;
constexpr Nanoseconds kMillisecond = 1000 * kMicrosecond;
constexpr Nanoseconds kSecond = 1000 * kMillisecond;

constexpr std::uint64_t kKiB = 1024;
constexpr std::uint64_t kMiB = 1024 * kKiB;
constexpr std::uint64_t kGiB = 1024 * kMiB;

constexpr double kKilo = 1e3;
constexpr double kMega = 1e6;
constexpr double kGiga = 1e9;

/** Convert a byte count and a duration to gigabits per second. */
constexpr double
gbps(double bytes, Nanoseconds elapsed)
{
    if (elapsed <= 0)
        return 0.0;
    return bytes * 8.0 / static_cast<double>(elapsed);
    // bytes*8 bits over ns == Gbit/s exactly (1e9 ns/s over 1e9 b/Gb).
}

/** Time to serialize `bytes` at `rate_gbps` gigabits per second. */
constexpr Nanoseconds
serialize_ns(std::uint64_t bytes, double rate_gbps)
{
    return static_cast<Nanoseconds>(
        static_cast<double>(bytes) * 8.0 / rate_gbps + 0.5);
}

/** Duration in seconds as a double. */
constexpr double
to_seconds(Nanoseconds t)
{
    return static_cast<double>(t) / static_cast<double>(kSecond);
}

}  // namespace units
}  // namespace ask

#endif  // ASK_COMMON_UNITS_H
