/**
 * @file
 * Hash functions used throughout ASK.
 *
 * ASK needs *two independent* hash families (paper §3.2.2): one to
 * partition the key space into per-slot subspaces at the sender, and one
 * to address a key to an aggregator index inside an aggregator array (AA)
 * on the switch. Independence matters: if the same function served both
 * roles, every key landing in subspace i would also cluster within AA i,
 * inflating collisions. We provide a seeded 64-bit string hash so callers
 * can draw as many independent functions as needed.
 */
#ifndef ASK_COMMON_HASH_H
#define ASK_COMMON_HASH_H

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace ask {

/** FNV-1a 64-bit hash of a byte string. Inline: the data plane hashes
 *  one 2-8 byte segment per tuple, so the call itself would dominate. */
inline std::uint64_t
fnv1a64(std::string_view bytes)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : bytes) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

/** Strong 64-bit finalizer (Murmur3 fmix64). */
inline std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

/**
 * hash64 with the seed already finalized (pre_mixed == mix64(seed)):
 * callers hashing many strings under one seed hoist the constant seed
 * mix out of the per-tuple path. hash64(b, s) ==
 * hash64_premixed(b, mix64(s)) for all inputs.
 */
inline std::uint64_t
hash64_premixed(std::string_view bytes, std::uint64_t pre_mixed)
{
    return mix64(fnv1a64(bytes) ^ pre_mixed);
}

/** Seeded 64-bit hash of a byte string; distinct seeds give independent
 *  functions for practical purposes. */
inline std::uint64_t
hash64(std::string_view bytes, std::uint64_t seed)
{
    return hash64_premixed(bytes, mix64(seed));
}

/**
 * A member of a seeded hash family, usable as a function object.
 *
 * Used for the sender-side key-space partition (one seed) and the
 * switch-side aggregator addressing (another seed).
 */
class HashFn
{
  public:
    explicit HashFn(std::uint64_t seed) : seed_(seed) {}

    std::uint64_t
    operator()(std::string_view bytes) const
    {
        return hash64(bytes, seed_);
    }

    std::uint64_t seed() const { return seed_; }

  private:
    std::uint64_t seed_;
};

/** Well-known seeds used by the ASK data plane and hosts. The sender
 *  partition and switch addressing functions must differ (see file
 *  comment); both sides must agree on each. */
namespace hash_seeds {
constexpr std::uint64_t kKeyPartition = 0x5bd1e9955bd1e995ULL;
constexpr std::uint64_t kAggregatorAddress = 0xc2b2ae3d27d4eb4fULL;
constexpr std::uint64_t kChannelLoadBalance = 0x165667b19e3779f9ULL;
}  // namespace hash_seeds

}  // namespace ask

#endif  // ASK_COMMON_HASH_H
