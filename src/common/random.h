/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behavior in the library (workload generation, fault
 * injection, hashing salts) flows through Rng so that every experiment is
 * reproducible from a seed. The engine is xoshiro256**, seeded via
 * SplitMix64 per the reference recommendation.
 */
#ifndef ASK_COMMON_RANDOM_H
#define ASK_COMMON_RANDOM_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace ask {

/** One step of the SplitMix64 sequence; also a good 64-bit mixer. */
std::uint64_t split_mix64(std::uint64_t& state);

/**
 * A small, fast, deterministic PRNG (xoshiro256**).
 *
 * Not cryptographically secure; statistically strong enough for workload
 * synthesis and fault injection.
 */
class Rng
{
  public:
    /** Construct from a seed; equal seeds yield equal sequences. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit draw. */
    std::uint64_t next_u64();

    /** Uniform integer in [0, bound); bound must be > 0. */
    std::uint64_t next_below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive; requires lo <= hi. */
    std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double next_double();

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p);

    /** Exponentially distributed double with the given mean. */
    double next_exponential(double mean);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T>& v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(next_below(i));
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Derive an independent child generator (stable given call order). */
    Rng fork();

  private:
    std::uint64_t s_[4];
};

// ---------------------------------------------------------------------------
// Seed registry (reproducibility of tests and benchmarks)
// ---------------------------------------------------------------------------
//
// Every test/bench RNG is supposed to be constructed through
// seeded_rng(), which records (label, seed) in a process-wide registry.
// On a test failure the harness dumps the registry (see
// tests/seed_support.cc), so any ctest failure log names the exact
// seeds needed to replay it. ASK_SEED=<n> in the environment overrides
// every registered seed at once — the replay knob.

/** One recorded seeding event. */
struct SeedRecord
{
    std::string label;
    std::uint64_t seed = 0;
};

/** Record a seed under a human-readable label (kept in call order). */
void note_seed(const std::string& label, std::uint64_t seed);

/** Every seed noted since the last clear_noted_seeds(). */
const std::vector<SeedRecord>& noted_seeds();

/** Reset the registry (test fixtures call this between tests). */
void clear_noted_seeds();

/**
 * The seed tests/benches should actually run with: `requested` unless
 * the ASK_SEED environment variable is set, which overrides every
 * seeded_rng() in the process (the one-knob replay for a logged seed).
 */
std::uint64_t effective_seed(std::uint64_t requested);

/**
 * Construct an Rng through the registry: applies the ASK_SEED override
 * and records the effective seed under `label` so a failing test can
 * print it. All test and bench RNG seeding flows through here.
 */
Rng seeded_rng(const std::string& label, std::uint64_t seed);

}  // namespace ask

#endif  // ASK_COMMON_RANDOM_H
