/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behavior in the library (workload generation, fault
 * injection, hashing salts) flows through Rng so that every experiment is
 * reproducible from a seed. The engine is xoshiro256**, seeded via
 * SplitMix64 per the reference recommendation.
 */
#ifndef ASK_COMMON_RANDOM_H
#define ASK_COMMON_RANDOM_H

#include <cstdint>
#include <vector>

namespace ask {

/** One step of the SplitMix64 sequence; also a good 64-bit mixer. */
std::uint64_t split_mix64(std::uint64_t& state);

/**
 * A small, fast, deterministic PRNG (xoshiro256**).
 *
 * Not cryptographically secure; statistically strong enough for workload
 * synthesis and fault injection.
 */
class Rng
{
  public:
    /** Construct from a seed; equal seeds yield equal sequences. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit draw. */
    std::uint64_t next_u64();

    /** Uniform integer in [0, bound); bound must be > 0. */
    std::uint64_t next_below(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive; requires lo <= hi. */
    std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double next_double();

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p);

    /** Exponentially distributed double with the given mean. */
    double next_exponential(double mean);

    /** Fisher-Yates shuffle of a vector. */
    template <typename T>
    void
    shuffle(std::vector<T>& v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(next_below(i));
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Derive an independent child generator (stable given call order). */
    Rng fork();

  private:
    std::uint64_t s_[4];
};

}  // namespace ask

#endif  // ASK_COMMON_RANDOM_H
