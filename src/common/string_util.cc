#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace ask {

std::string
strf(const char* fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::string out;
    if (len > 0) {
        out.resize(static_cast<std::size_t>(len));
        std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    }
    va_end(args);
    return out;
}

std::string
fmt_double(double v, int decimals)
{
    return strf("%.*f", decimals, v);
}

std::string
fmt_bytes(std::uint64_t bytes)
{
    const char* suffix[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    double v = static_cast<double>(bytes);
    int i = 0;
    while (v >= 1024.0 && i < 4) {
        v /= 1024.0;
        ++i;
    }
    return strf("%.2f %s", v, suffix[i]);
}

std::string
fmt_count(double count)
{
    const char* suffix[] = {"", "K", "M", "G", "T"};
    double v = count;
    int i = 0;
    while (v >= 1000.0 && i < 4) {
        v /= 1000.0;
        ++i;
    }
    return strf("%.2f%s", v, suffix[i]);
}

std::vector<std::string>
split(const std::string& s, char delim)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == delim) {
            if (!cur.empty())
                out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

std::string
u64_key(std::uint64_t x)
{
    // Base-255 digits, each stored as digit+1 so no byte is ever 0.
    std::string out;
    do {
        out.push_back(static_cast<char>(static_cast<unsigned char>(x % 255 + 1)));
        x /= 255;
    } while (x != 0);
    return out;
}

}  // namespace ask
