#include "common/table.h"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace ask {

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
TextTable::print(std::ostream& os) const
{
    std::size_t cols = header_.size();
    for (const auto& r : rows_)
        cols = std::max(cols, r.size());

    std::vector<std::size_t> width(cols, 0);
    auto widen = [&](const std::vector<std::string>& r) {
        for (std::size_t i = 0; i < r.size(); ++i)
            width[i] = std::max(width[i], r[i].size());
    };
    widen(header_);
    for (const auto& r : rows_)
        widen(r);

    auto emit = [&](const std::vector<std::string>& r) {
        for (std::size_t i = 0; i < cols; ++i) {
            const std::string& cell = i < r.size() ? r[i] : std::string();
            os << cell << std::string(width[i] - cell.size(), ' ');
            if (i + 1 < cols)
                os << "  ";
        }
        os << "\n";
    };

    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t w : width)
            total += w;
        total += 2 * (cols - 1);
        os << std::string(total, '-') << "\n";
    }
    for (const auto& r : rows_)
        emit(r);
}

std::string
TextTable::to_string() const
{
    std::ostringstream oss;
    print(oss);
    return oss.str();
}

void
print_banner(std::ostream& os, const std::string& title)
{
    os << "\n=== " << title << " ===\n";
}

}  // namespace ask
