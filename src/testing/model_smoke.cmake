# Bounded model-check campaign for CI, invoked by the `model_smoke`
# ctest target:
#
#   cmake -DVERIFY_BIN=<build>/testing/ask_verify -DOUT_DIR=<scratch> -P model_smoke.cmake
#
# Runs the full semantic model check twice — clean exploration of the
# channel and routing automata plus the mutation harness — and requires
# (a) a passing campaign (clean models verify, every mutant caught) and
# (b) byte-identical ask-model/v1 reports: exploration is deterministic
# by construction, and this is where that contract is enforced.

if(NOT DEFINED VERIFY_BIN OR NOT DEFINED OUT_DIR)
    message(FATAL_ERROR "usage: cmake -DVERIFY_BIN=... -DOUT_DIR=... -P model_smoke.cmake")
endif()

file(REMOVE_RECURSE "${OUT_DIR}")
file(MAKE_DIRECTORY "${OUT_DIR}")

foreach(run a b)
    message(STATUS "model_smoke: campaign ${run}")
    execute_process(
        COMMAND "${VERIFY_BIN}" --model
                --model-json "${OUT_DIR}/report_${run}.json"
        WORKING_DIRECTORY "${OUT_DIR}"
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "model_smoke: campaign ${run} exited ${rc}\n${out}\n${err}")
    endif()
endforeach()

file(READ "${OUT_DIR}/report_a.json" report_a)
file(READ "${OUT_DIR}/report_b.json" report_b)
if(NOT report_a STREQUAL report_b)
    message(FATAL_ERROR "model_smoke: reports differ between identical campaigns")
endif()

message(STATUS "model_smoke: campaign passed, byte-identical reports")
