#include "testing/shrink.h"

#include <cstddef>
#include <utility>
#include <vector>

#include "testing/differential.h"

namespace ask::testing {

namespace {

class Shrinker
{
  public:
    Shrinker(ScenarioSpec spec, std::uint32_t max_attempts,
             ShrinkStats* stats)
        : best_(std::move(spec)), max_attempts_(max_attempts), stats_(stats)
    {
    }

    ScenarioSpec
    run()
    {
        // Confirm the input actually fails before spending the budget.
        if (!fails(best_))
            return best_;

        bool progress = true;
        while (progress && attempts_ < max_attempts_) {
            progress = false;
            progress |= drop_chaos_events();
            progress |= drop_tasks();
            progress |= drop_streams();
            progress |= halve_streams();
            progress |= drop_tuples();
        }
        return best_;
    }

  private:
    bool
    fails(const ScenarioSpec& spec)
    {
        ++attempts_;
        if (stats_ != nullptr)
            stats_->attempts = attempts_;
        return !run_differential(spec).ok();
    }

    /** Keep `candidate` if it still fails. */
    bool
    accept_if_failing(ScenarioSpec candidate)
    {
        if (attempts_ >= max_attempts_ || !fails(candidate))
            return false;
        best_ = std::move(candidate);
        if (stats_ != nullptr)
            ++stats_->accepted;
        return true;
    }

    bool
    drop_chaos_events()
    {
        bool progress = false;
        for (std::size_t i = 0; i < best_.chaos.events.size();) {
            ScenarioSpec candidate = best_;
            candidate.chaos.events.erase(candidate.chaos.events.begin() +
                                         static_cast<std::ptrdiff_t>(i));
            if (accept_if_failing(std::move(candidate)))
                progress = true;  // same index now names the next event
            else
                ++i;
        }
        return progress;
    }

    bool
    drop_tasks()
    {
        bool progress = false;
        for (std::size_t i = 0; best_.tasks.size() > 1 &&
                                i < best_.tasks.size();) {
            ScenarioSpec candidate = best_;
            candidate.tasks.erase(candidate.tasks.begin() +
                                  static_cast<std::ptrdiff_t>(i));
            if (accept_if_failing(std::move(candidate)))
                progress = true;
            else
                ++i;
        }
        return progress;
    }

    bool
    drop_streams()
    {
        bool progress = false;
        for (std::size_t t = 0; t < best_.tasks.size(); ++t) {
            for (std::size_t s = 0;
                 best_.tasks[t].streams.size() > 1 &&
                 s < best_.tasks[t].streams.size();) {
                ScenarioSpec candidate = best_;
                auto& streams = candidate.tasks[t].streams;
                streams.erase(streams.begin() +
                              static_cast<std::ptrdiff_t>(s));
                if (accept_if_failing(std::move(candidate)))
                    progress = true;
                else
                    ++s;
            }
        }
        return progress;
    }

    bool
    halve_streams()
    {
        bool progress = false;
        for (std::size_t t = 0; t < best_.tasks.size(); ++t) {
            for (std::size_t s = 0; s < best_.tasks[t].streams.size(); ++s) {
                // Try keeping either half while the stream is big enough
                // for halving to beat tuple-by-tuple removal.
                while (best_.tasks[t].streams[s].stream.size() >= 8) {
                    const auto& stream = best_.tasks[t].streams[s].stream;
                    std::size_t half = stream.size() / 2;

                    ScenarioSpec front = best_;
                    auto& fs = front.tasks[t].streams[s].stream;
                    fs.assign(stream.begin(),
                              stream.begin() +
                                  static_cast<std::ptrdiff_t>(half));
                    if (accept_if_failing(std::move(front))) {
                        progress = true;
                        continue;
                    }

                    ScenarioSpec back = best_;
                    auto& bs = back.tasks[t].streams[s].stream;
                    bs.assign(stream.begin() +
                                  static_cast<std::ptrdiff_t>(half),
                              stream.end());
                    if (accept_if_failing(std::move(back))) {
                        progress = true;
                        continue;
                    }
                    break;
                }
            }
        }
        return progress;
    }

    bool
    drop_tuples()
    {
        bool progress = false;
        for (std::size_t t = 0; t < best_.tasks.size(); ++t) {
            for (std::size_t s = 0; s < best_.tasks[t].streams.size(); ++s) {
                for (std::size_t i = 0;
                     best_.tasks[t].streams[s].stream.size() > 1 &&
                     i < best_.tasks[t].streams[s].stream.size();) {
                    if (attempts_ >= max_attempts_)
                        return progress;
                    ScenarioSpec candidate = best_;
                    auto& stream = candidate.tasks[t].streams[s].stream;
                    stream.erase(stream.begin() +
                                 static_cast<std::ptrdiff_t>(i));
                    if (accept_if_failing(std::move(candidate)))
                        progress = true;
                    else
                        ++i;
                }
            }
        }
        return progress;
    }

    ScenarioSpec best_;
    std::uint32_t max_attempts_;
    std::uint32_t attempts_ = 0;
    ShrinkStats* stats_;
};

}  // namespace

ScenarioSpec
shrink_scenario(const ScenarioSpec& failing, std::uint32_t max_attempts,
                ShrinkStats* stats)
{
    return Shrinker(failing, max_attempts, stats).run();
}

}  // namespace ask::testing
