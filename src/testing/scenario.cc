#include "testing/scenario.h"

#include <string>
#include <utility>

#include "common/hash.h"
#include "common/random.h"
#include "workload/generators.h"

namespace ask::testing {

namespace {

using core::KvStream;
using units::kMicrosecond;
using units::kMillisecond;

/** Keys spanning all three classes (<=4 B short, 5-8 B medium, longer
 *  bypasses the switch), like the chaos tests' mixed streams. */
KvStream
mixed_stream(Rng& rng, std::uint64_t n, std::uint64_t distinct)
{
    KvStream s;
    s.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t id = rng.next_below(distinct);
        std::size_t len = 1 + id % 12;
        std::string key;
        std::uint64_t x = mix64(id + 1);
        for (std::size_t j = 0; j < len; ++j)
            key.push_back(static_cast<char>('a' + (x >> (5 * (j % 12))) % 26));
        s.push_back({key, static_cast<core::Value>(1 + rng.next_below(9))});
    }
    return s;
}

/** Short numeric-ish keys: maximal switch offload, heavy collisions. */
KvStream
short_stream(Rng& rng, std::uint64_t n, std::uint64_t distinct)
{
    KvStream s;
    s.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        s.push_back({"k" + std::to_string(rng.next_below(distinct)),
                     static_cast<core::Value>(1 + rng.next_below(9))});
    }
    return s;
}

/** Zipf-skewed keys (hot-key pressure on single aggregator slots). */
KvStream
zipf_stream(Rng& rng, std::uint64_t n, std::uint64_t distinct)
{
    workload::ZipfGenerator gen(distinct, /*alpha=*/1.1, rng.next_u64());
    KvStream s;
    s.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        s.push_back({gen.key_of(gen.sample_rank()),
                     static_cast<core::Value>(1 + rng.next_below(9))});
    }
    return s;
}

KvStream
sample_stream(Rng& rng)
{
    std::uint64_t n = rng.next_in(50, 400);
    std::uint64_t distinct = rng.next_in(10, 80);
    switch (rng.next_below(3)) {
      case 0: return short_stream(rng, n, distinct);
      case 1: return zipf_stream(rng, n, distinct);
      default: return mixed_stream(rng, n, distinct);
    }
}

/** Rough upper estimate of the undisturbed active period, so chaos
 *  events land where the tasks actually run. */
sim::SimTime
estimate_active_ns(std::uint64_t total_tuples)
{
    return 300 * kMicrosecond + total_tuples * 3000;
}

sim::ChaosPlan
sample_chaos(Rng& rng, const core::ClusterConfig& cluster,
             std::uint64_t total_tuples)
{
    sim::ChaosPlan plan;
    std::uint32_t episodes = static_cast<std::uint32_t>(rng.next_in(1, 6));
    bool allow_reboot = rng.chance(0.5);
    sim::SimTime horizon = estimate_active_ns(total_tuples);
    for (std::uint32_t i = 0; i < episodes; ++i) {
        sim::ChaosEvent e;
        // Weighted kinds: link faults dominate, control-plane episodes
        // occasional, reboots opt-in per plan.
        std::uint64_t roll = rng.next_below(allow_reboot ? 11 : 9);
        sim::SimTime dur =
            1 + static_cast<sim::SimTime>(rng.next_exponential(150.0)) *
                    kMicrosecond;
        e.at = 50 * kMicrosecond +
               static_cast<sim::SimTime>(
                   rng.next_below(static_cast<std::uint64_t>(horizon)));
        e.subject = static_cast<std::uint32_t>(
            rng.next_below(cluster.num_hosts));
        if (roll < 3) {
            e.kind = sim::ChaosKind::kLinkBlackout;
            e.duration = std::min<sim::SimTime>(dur, 1 * kMillisecond);
            e.intensity = 1.0;
        } else if (roll < 6) {
            e.kind = sim::ChaosKind::kBurstLoss;
            e.duration = std::min<sim::SimTime>(dur, 2 * kMillisecond);
            e.intensity = 0.2 + 0.6 * rng.next_double();
        } else if (roll < 7) {
            // Bounded well below the management retry budget (~11 ms
            // of backoff), so setup always survives the outage.
            e.kind = sim::ChaosKind::kMgmtOutage;
            e.duration = std::min<sim::SimTime>(dur, 800 * kMicrosecond);
        } else if (roll < 8) {
            e.kind = sim::ChaosKind::kMgmtDelay;
            e.duration = std::min<sim::SimTime>(dur * 4, 2 * kMillisecond);
            e.intensity = 50.0 * kMicrosecond;
        } else if (roll < 9) {
            e.kind = sim::ChaosKind::kDataBlackhole;
            if (rng.chance(0.3)) {
                // Permanent sick program: forces the retransmission
                // budget to trip and the degraded bypass path to carry
                // the rest of the run.
                e.at = static_cast<sim::SimTime>(
                    rng.next_below(50 * kMicrosecond));
                e.duration = 3600 * units::kSecond;
            } else {
                e.duration = std::min<sim::SimTime>(dur, 500 * kMicrosecond);
            }
        } else {
            e.kind = sim::ChaosKind::kSwitchReboot;
            e.duration = (100 + rng.next_below(200)) * kMicrosecond;
        }
        plan.add(e);
    }
    return plan;
}

/**
 * Host/controller crash episodes. Drawn from a dedicated Rng chain so
 * adding crash pressure never perturbs the deployment/task/chaos draws
 * of pre-existing seeds. A serial time cursor keeps crash windows
 * disjoint: every crash hits a live process and every restart finds
 * its subject crashed. Downtimes stay well below the management retry
 * budget (~11 ms of backoff) so in-flight setup RPCs survive a
 * controller outage, like the kMgmtOutage bound above.
 */
void
sample_crashes(Rng& rng, const core::ClusterConfig& cluster,
               std::uint64_t total_tuples, bool crash_heavy,
               sim::ChaosPlan& plan)
{
    if (!crash_heavy && !rng.chance(0.25))
        return;
    std::uint32_t episodes = static_cast<std::uint32_t>(
        crash_heavy ? rng.next_in(1, 4) : 1);
    sim::SimTime horizon = estimate_active_ns(total_tuples);
    sim::SimTime cursor = 30 * kMicrosecond;
    for (std::uint32_t i = 0; i < episodes; ++i) {
        sim::ChaosEvent e;
        e.kind = sim::ChaosKind::kHostCrash;
        if (rng.chance(0.3)) {
            e.subject = sim::kControllerSubject;
            e.duration = (100 + rng.next_below(500)) * kMicrosecond;
        } else {
            e.subject = static_cast<std::uint32_t>(
                rng.next_below(cluster.num_hosts));
            e.duration = (50 + rng.next_below(450)) * kMicrosecond;
        }
        cursor += rng.next_below(1 + static_cast<std::uint64_t>(
                                         horizon / episodes));
        e.at = cursor;
        cursor = e.at + e.duration + 20 * kMicrosecond;
        plan.add(e);
    }
}

}  // namespace

std::uint64_t
ScenarioSpec::total_tuples() const
{
    std::uint64_t n = 0;
    for (const auto& t : tasks)
        for (const auto& s : t.streams)
            n += s.stream.size();
    return n;
}

obs::Json
ScenarioSpec::describe() const
{
    obs::Json d = obs::Json::object();
    // Seeds are uint64; render as a string so the document round-trips
    // the exact value (Json integers are int64).
    d.set("seed", std::to_string(seed));
    d.set("hosts", cluster.num_hosts);
    d.set("racks", cluster.topology.has_value() ? cluster.topology->num_racks()
                                                : 1u);
    d.set("switches", cluster.topology.has_value()
                          ? cluster.topology->num_switches()
                          : 1u);
    d.set("num_aas", cluster.ask.num_aas);
    d.set("aggregators_per_aa", cluster.ask.aggregators_per_aa);
    d.set("window", cluster.ask.window);
    d.set("channels_per_host", cluster.ask.channels_per_host);
    d.set("compact_seen", cluster.ask.compact_seen);
    d.set("shadow_copies", cluster.ask.shadow_copies);
    d.set("swap_threshold", cluster.ask.swap_threshold_packets);
    d.set("op", static_cast<std::uint32_t>(cluster.ask.op));
    d.set("lossy_fabric", cluster.faults.loss_prob > 0.0);

    obs::Json tasks_json = obs::Json::array();
    for (const auto& t : tasks) {
        obs::Json tj = obs::Json::object();
        tj.set("id", t.id);
        tj.set("receiver", t.receiver_host);
        tj.set("region_len", t.options.region_len);
        tj.set("op", core::reduce_op_name(
                         t.options.op.value_or(cluster.ask.op)));
        tj.set("swaps_disabled",
               t.options.swap_policy ==
                   core::TaskOptions::SwapPolicy::kDisabled);
        obs::Json streams_json = obs::Json::array();
        for (const auto& s : t.streams) {
            obs::Json sj = obs::Json::object();
            sj.set("host", s.host.value());
            sj.set("tuples", static_cast<std::uint64_t>(s.stream.size()));
            streams_json.push_back(std::move(sj));
        }
        tj.set("streams", std::move(streams_json));
        tasks_json.push_back(std::move(tj));
    }
    d.set("tasks", std::move(tasks_json));

    obs::Json chaos_json = obs::Json::array();
    for (const auto& e : chaos.events) {
        obs::Json ej = obs::Json::object();
        ej.set("kind", sim::chaos_kind_name(e.kind));
        ej.set("at_ns", e.at);
        ej.set("duration_ns", e.duration);
        ej.set("subject", e.subject);
        chaos_json.push_back(std::move(ej));
    }
    d.set("chaos", std::move(chaos_json));
    return d;
}

ScenarioSpec
generate_scenario(std::uint64_t seed)
{
    return generate_scenario(seed, ScenarioTuning{});
}

ScenarioSpec
generate_scenario(std::uint64_t seed, const ScenarioTuning& tuning)
{
    Rng rng(seed);
    ScenarioSpec spec;
    spec.seed = seed;

    // ---- deployment ------------------------------------------------------
    core::ClusterConfig& cc = spec.cluster;
    cc.num_hosts = static_cast<std::uint32_t>(rng.next_in(2, 4));
    cc.ask.max_hosts = cc.num_hosts;
    cc.ask.num_aas = rng.chance(0.5) ? 8 : 4;
    cc.ask.medium_segments = 2;
    cc.ask.medium_groups = cc.ask.num_aas == 8 ? 2 : 1;
    cc.ask.aggregators_per_aa =
        static_cast<std::uint32_t>(64u << rng.next_below(3));  // 64..256
    cc.ask.window = static_cast<std::uint32_t>(8u << rng.next_below(3));
    cc.ask.compact_seen = rng.chance(0.5);
    cc.ask.shadow_copies = rng.chance(0.8);
    cc.ask.channels_per_host = static_cast<std::uint32_t>(1u
                                                          << rng.next_below(3));
    cc.ask.swap_threshold_packets =
        rng.chance(0.4) ? 0 : rng.next_in(24, 96);
    // Trip the dead-path detector quickly enough for permanent
    // blackhole scenarios to degrade within the simulated horizon.
    cc.ask.max_data_tries = static_cast<std::uint32_t>(rng.next_in(6, 12));
    switch (rng.next_below(4)) {
      case 0: cc.ask.op = core::AggOp::kMax; break;
      case 1: cc.ask.op = core::AggOp::kMin; break;
      default: cc.ask.op = core::AggOp::kAdd; break;
    }
    cc.seed = rng.next_u64();
    if (rng.chance(0.5)) {
        cc.faults = net::FaultSpec::lossy(
            /*loss=*/0.01 + 0.07 * rng.next_double(),
            /*dup=*/0.04 * rng.next_double(),
            /*reorder=*/0.1 * rng.next_double());
    }

    // ---- tasks -----------------------------------------------------------
    std::uint32_t num_tasks = static_cast<std::uint32_t>(rng.next_in(1, 3));
    std::uint32_t copy = cc.ask.copy_size();
    for (std::uint32_t i = 0; i < num_tasks; ++i) {
        TaskSpec task;
        task.id = i + 1;
        task.receiver_host =
            static_cast<std::uint32_t>(rng.next_below(cc.num_hosts));
        // Every task's region must fit the pool alongside its peers'.
        std::uint32_t max_len = std::max(4u, copy / num_tasks);
        if (num_tasks == 1 && rng.chance(0.3))
            task.options.region_len = 0;  // claim the whole free pool
        else
            task.options.region_len =
                static_cast<std::uint32_t>(rng.next_in(4, max_len));
        if (rng.chance(0.25))
            task.options.swap_policy =
                core::TaskOptions::SwapPolicy::kDisabled;

        // Senders: a non-empty subset of the other hosts.
        for (std::uint32_t h = 0; h < cc.num_hosts; ++h) {
            if (h == task.receiver_host)
                continue;
            if (task.streams.empty() || rng.chance(0.7))
                task.streams.push_back({h, sample_stream(rng)});
        }
        spec.tasks.push_back(std::move(task));
    }

    // Per-task reduction operators ride a dedicated chain so arming
    // them never perturbed the deployment/stream draws of pre-existing
    // seeds. Roughly a third of tasks inherit the cluster default (op
    // stays nullopt — exercising the fallback), the rest override with
    // a uniform draw over the full menu, kCount and kFloat included
    // (part_bits is 32 in every sampled deployment, so kFloat is
    // always declared by the access plan).
    Rng op_rng(mix64(seed ^ 0x5edc0b5a11ULL));
    for (TaskSpec& task : spec.tasks) {
        if (op_rng.chance(0.35))
            continue;
        task.options.op = static_cast<core::ReduceOp>(
            op_rng.next_below(core::kNumReduceOps));
    }

    // ---- chaos -----------------------------------------------------------
    if (rng.chance(0.5))
        spec.chaos = sample_chaos(rng, cc, spec.total_tuples());

    // Crash episodes ride a separate chain (draw-order stability).
    Rng crash_rng(mix64(seed ^ 0xc7a54c4a5eULL));
    sample_crashes(crash_rng, cc, spec.total_tuples(), tuning.crash_heavy,
                   spec.chaos);

    // ---- topology --------------------------------------------------------
    // Multi-rack layouts ride a dedicated chain as well: every draw
    // above (deployment, streams, chaos) is byte-identical to the
    // pre-fabric generator, and the topology choice only re-shapes the
    // wiring into racks plus an aggregation tier. About half the
    // scenarios exercise the hierarchical merge path — including under
    // the ToR/tier reboot and crash chaos sampled above (reboot
    // subjects map onto fabric switches modulo num_switches).
    Rng topo_rng(mix64(seed ^ 0x7090a11fabULL));
    if (cc.num_hosts >= 2 && topo_rng.chance(0.5)) {
        auto racks = static_cast<std::uint32_t>(
            2 + topo_rng.next_below(std::min(cc.num_hosts, 3u) - 1));
        std::vector<std::uint32_t> per_rack(racks, 0);
        for (std::uint32_t h = 0; h < cc.num_hosts; ++h)
            ++per_rack[h % racks];
        core::TopologyBuilder builder;
        for (std::uint32_t r = 0; r < racks; ++r)
            builder.add_rack(per_rack[r]);
        if (topo_rng.chance(0.3)) {
            // Occasionally squeeze the tier uplinks so the cross-rack
            // path, not the access links, is the bottleneck.
            builder.tier_link(/*gbps=*/40.0, /*propagation_ns=*/1500);
        }
        cc.topology = builder.build();
    }

    return spec;
}

}  // namespace ask::testing
