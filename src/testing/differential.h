/**
 * @file
 * The differential checker: run one ScenarioSpec on a full AskCluster
 * and diff every task's delivered aggregate against the sequential
 * oracle, key by key.
 *
 * Beyond the value diff, the checker runs invariant probes:
 *
 *  - task status: every generated scenario stays inside the service
 *    contract (regions fit, chaos episodes are survivable), so any
 *    non-kOk TaskStatus is a failure, chaos or not;
 *  - controller journal: after the last task completes, every journaled
 *    region must have been released — the controller's free pool is back
 *    to the full copy size and the data plane maps no task;
 *  - register hygiene: the final fetch clears switch state, so every
 *    aggregator-array register must read zero through the control-plane
 *    port once the run drains;
 *  - seen-window model equivalence: a seed-derived trace of observes,
 *    wipes, and fence repairs must classify identically under the plain
 *    2W-bit and the compact W-bit designs (§3.3, Eqs. 6-8);
 *  - PISA discipline: register-access and pass-legality violations
 *    panic() inside the switch model, so a run that completes has also
 *    passed the hardware-feasibility probes;
 *  - model reachability: the dynamically observed component states —
 *    every provisioned seen window extracted off the switch registers,
 *    every channel cursor, every WAL resume promise — must satisfy the
 *    state invariants the semantic model checker (src/pisa/model/)
 *    proves over all reachable automaton states; a live state outside
 *    the model's reachable envelope means the extraction abstracted
 *    away a real behavior.
 *
 * The result is plain data with a deterministic describe() — same spec,
 * same bytes — so fuzz reports diff cleanly across runs and machines.
 */
#ifndef ASK_TESTING_DIFFERENTIAL_H
#define ASK_TESTING_DIFFERENTIAL_H

#include <optional>
#include <string>
#include <vector>

#include "testing/scenario.h"

namespace ask::testing {

/** One key whose delivered aggregate differs from the oracle's. */
struct Divergence
{
    core::TaskId task = 0;
    core::Key key;
    /** Oracle value; nullopt when the cluster invented the key. */
    std::optional<std::uint64_t> expected;
    /** Delivered value; nullopt when the cluster dropped the key. */
    std::optional<std::uint64_t> actual;
};

/** One violated invariant probe. */
struct ProbeFailure
{
    std::string probe;
    std::string detail;
};

/** Outcome of one task inside a differential run. */
struct TaskOutcome
{
    core::TaskId task = 0;
    std::string status;
    bool done = false;
    std::uint64_t divergent_keys = 0;
};

/** Everything a differential run observed. */
struct DiffResult
{
    std::vector<TaskOutcome> tasks;
    /** Sorted by (task, key); capped at kMaxRecordedDivergences with the
     *  full count in `divergent_keys` of the task outcomes. */
    std::vector<Divergence> divergences;
    std::vector<ProbeFailure> probe_failures;
    sim::SimTime finish_time = 0;

    static constexpr std::size_t kMaxRecordedDivergences = 20;

    bool ok() const;

    /** Deterministic JSON rendering (fuzz report / replay log). */
    obs::Json describe() const;
};

/** Execute `spec` on a fresh cluster and diff against the oracle. */
DiffResult run_differential(const ScenarioSpec& spec);

}  // namespace ask::testing

#endif  // ASK_TESTING_DIFFERENTIAL_H
