# Crash-recovery fuzz campaign for CI, invoked by the `recovery_smoke`
# ctest target:
#
#   cmake -DFUZZ_BIN=<build>/testing/ask_fuzz -DOUT_DIR=<scratch> -P recovery_smoke.cmake
#
# Runs the crash-heavy smoke campaign twice — every scenario crashes
# host daemons or the controller mid-task, with the register-access
# cross-check armed (ASK_VERIFY_ACCESSES=1) — and requires (a) zero
# failures and (b) byte-identical ask-fuzz/v1 reports. Recovery is thus
# proven both *exact* (no oracle diffs, no probe failures) and
# *deterministic* (crash timing, WAL replay, and re-fencing reproduce
# bit-for-bit).

if(NOT DEFINED FUZZ_BIN OR NOT DEFINED OUT_DIR)
    message(FATAL_ERROR "usage: cmake -DFUZZ_BIN=... -DOUT_DIR=... -P recovery_smoke.cmake")
endif()

file(REMOVE_RECURSE "${OUT_DIR}")
file(MAKE_DIRECTORY "${OUT_DIR}")

foreach(run a b)
    message(STATUS "recovery_smoke: crash-heavy campaign ${run}")
    execute_process(
        COMMAND "${CMAKE_COMMAND}" -E env ASK_VERIFY_ACCESSES=1
            "${FUZZ_BIN}" --smoke --crash-heavy
            --json "${OUT_DIR}/report_${run}.json"
        WORKING_DIRECTORY "${OUT_DIR}"
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "recovery_smoke: campaign ${run} exited ${rc}\n${out}\n${err}")
    endif()
endforeach()

file(READ "${OUT_DIR}/report_a.json" report_a)
file(READ "${OUT_DIR}/report_b.json" report_b)
if(NOT report_a STREQUAL report_b)
    message(FATAL_ERROR "recovery_smoke: reports differ between identical campaigns")
endif()

message(STATUS "recovery_smoke: zero failures, byte-identical reports")
