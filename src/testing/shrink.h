/**
 * @file
 * Greedy scenario shrinking for fuzz failures.
 *
 * Given a failing ScenarioSpec, the shrinker repeatedly tries
 * structurally smaller candidates — chaos events dropped, whole tasks
 * dropped, sender streams dropped, streams halved, then individual
 * tuples removed — keeping a candidate only when the differential still
 * fails on it, until a fixpoint or the attempt budget is reached. Every
 * accepted candidate is strictly smaller, so termination is guaranteed;
 * greediness means the result is a local minimum, not the global one,
 * which is exactly the delta-debugging trade-off (cf. ddmin).
 *
 * The shrinker re-runs the full differential per candidate, so its cost
 * is `attempts` cluster runs; scenarios are small by construction
 * (hundreds of tuples) and shrink in well under a second.
 */
#ifndef ASK_TESTING_SHRINK_H
#define ASK_TESTING_SHRINK_H

#include <cstdint>

#include "testing/scenario.h"

namespace ask::testing {

/** Bookkeeping of one shrink session. */
struct ShrinkStats
{
    /** Differential runs attempted. */
    std::uint32_t attempts = 0;
    /** Candidates accepted (still failing, strictly smaller). */
    std::uint32_t accepted = 0;
};

/**
 * Shrink `failing` (a spec on which run_differential reported a
 * failure) to a smaller spec that still fails. Runs at most
 * `max_attempts` differentials. Returns `failing` unchanged when it
 * does not actually fail.
 */
ScenarioSpec shrink_scenario(const ScenarioSpec& failing,
                             std::uint32_t max_attempts = 200,
                             ShrinkStats* stats = nullptr);

}  // namespace ask::testing

#endif  // ASK_TESTING_SHRINK_H
