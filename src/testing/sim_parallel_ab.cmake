# Cross-thread-count determinism A/B, invoked by the `sim_parallel_ab`
# ctest target:
#
#   cmake -DFUZZ_BIN=<build>/testing/ask_fuzz
#         -DFIG08A_BIN=<build>/bench/fig08a_goodput
#         -DOUT_DIR=<scratch> -P sim_parallel_ab.cmake
#
# The engine's contract (docs/CONCURRENCY.md) is bit-for-bit identical
# output at ANY thread count, including 1. This script enforces it on
# the two production consumers of the engine:
#
#   1. a bounded fuzz campaign at ASK_SIM_THREADS 1, 2 and 4 — the
#      ask-fuzz/v1 reports must be byte-identical;
#   2. a fig08a --smoke bench at ASK_SIM_THREADS 1 and 4 — the
#      BENCH_fig08a_goodput.json reports must be byte-identical.

if(NOT DEFINED FUZZ_BIN OR NOT DEFINED FIG08A_BIN OR NOT DEFINED OUT_DIR)
    message(FATAL_ERROR "usage: cmake -DFUZZ_BIN=... -DFIG08A_BIN=... -DOUT_DIR=... -P sim_parallel_ab.cmake")
endif()

file(REMOVE_RECURSE "${OUT_DIR}")
file(MAKE_DIRECTORY "${OUT_DIR}")

# ---- fuzz campaign at three thread counts ---------------------------------

foreach(threads 1 2 4)
    message(STATUS "sim_parallel_ab: fuzz campaign at ${threads} thread(s)")
    execute_process(
        COMMAND "${CMAKE_COMMAND}" -E env "ASK_SIM_THREADS=${threads}"
            "${FUZZ_BIN}" --count 30
            --json "${OUT_DIR}/fuzz_t${threads}.json"
        WORKING_DIRECTORY "${OUT_DIR}"
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "sim_parallel_ab: fuzz at ${threads} thread(s) exited ${rc}\n${out}\n${err}")
    endif()
endforeach()

file(READ "${OUT_DIR}/fuzz_t1.json" fuzz_t1)
foreach(threads 2 4)
    file(READ "${OUT_DIR}/fuzz_t${threads}.json" fuzz_tn)
    if(NOT fuzz_t1 STREQUAL fuzz_tn)
        message(FATAL_ERROR "sim_parallel_ab: fuzz report at ${threads} threads differs from the 1-thread report — the engine merge is nondeterministic (see the runbook in docs/CONCURRENCY.md)")
    endif()
endforeach()

# ---- fig08a smoke bench at two thread counts ------------------------------

foreach(threads 1 4)
    message(STATUS "sim_parallel_ab: fig08a --smoke at ${threads} thread(s)")
    set(bench_dir "${OUT_DIR}/fig08a_t${threads}")
    file(MAKE_DIRECTORY "${bench_dir}")
    execute_process(
        COMMAND "${CMAKE_COMMAND}" -E env "ASK_SIM_THREADS=${threads}"
            "ASK_BENCH_OUT_DIR=${bench_dir}" "${FIG08A_BIN}" --smoke
        WORKING_DIRECTORY "${bench_dir}"
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "sim_parallel_ab: fig08a at ${threads} thread(s) exited ${rc}\n${out}\n${err}")
    endif()
    # The human-readable stdout must match too, not just the report.
    # Only the trailing "wrote <path>" line may differ (the two runs
    # write into different scratch directories by construction).
    string(REGEX REPLACE "wrote [^\n]*\n" "wrote <report>\n" out "${out}")
    file(WRITE "${bench_dir}/stdout.txt" "${out}")
endforeach()

foreach(artifact "BENCH_fig08a_goodput.json" "stdout.txt")
    file(READ "${OUT_DIR}/fig08a_t1/${artifact}" bench_t1)
    file(READ "${OUT_DIR}/fig08a_t4/${artifact}" bench_t4)
    if(NOT bench_t1 STREQUAL bench_t4)
        message(FATAL_ERROR "sim_parallel_ab: fig08a ${artifact} differs between 1 and 4 threads")
    endif()
endforeach()

message(STATUS "sim_parallel_ab: byte-identical at every thread count")
