#include "testing/oracle.h"

#include "common/logging.h"

namespace ask::testing {

core::AggregateMap
ground_truth(const TaskSpec& task, core::ReduceOp default_op)
{
    // Resolve the operator exactly like the service does: a per-task
    // override beats the cluster default.
    core::ReduceOp op = task.options.op.value_or(default_op);

    // Direct fold: every tuple of every stream, in order.
    core::AggregateMap direct;
    for (const auto& s : task.streams)
        core::aggregate_into(direct, s.stream, op);

    // Independent fold: per-sender partials merged afterwards. Both must
    // agree for commutative/associative ops — a mismatch is a bug in the
    // reference itself (or a non-mergeable op leaking in), and the
    // differential result would be meaningless.
    core::AggregateMap merged;
    for (const auto& s : task.streams) {
        core::AggregateMap partial;
        core::aggregate_into(partial, s.stream, op);
        core::merge_into(merged, partial, op);
    }
    ASK_ASSERT(maps_equal(direct, merged),
               "oracle self-check failed for task ", task.id);
    return direct;
}

bool
maps_equal(const core::AggregateMap& a, const core::AggregateMap& b)
{
    if (a.size() != b.size())
        return false;
    for (const auto& [key, value] : a) {
        auto it = b.find(key);
        if (it == b.end() || it->second != value)
            return false;
    }
    return true;
}

}  // namespace ask::testing
