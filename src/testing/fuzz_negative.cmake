# Negative CLI test, invoked by the `fuzz_negative` ctest target:
#
#   cmake -DFUZZ_BIN=<build>/testing/ask_fuzz -DOUT_DIR=<scratch> -P fuzz_negative.cmake
#
# An unwritable --json path is an operator error, not a bug: ask_fuzz
# must diagnose it on stderr and exit 1 cleanly — no abort(), no stack
# trace, and the campaign itself still runs.

if(NOT DEFINED FUZZ_BIN OR NOT DEFINED OUT_DIR)
    message(FATAL_ERROR "usage: cmake -DFUZZ_BIN=... -DOUT_DIR=... -P fuzz_negative.cmake")
endif()

file(REMOVE_RECURSE "${OUT_DIR}")
file(MAKE_DIRECTORY "${OUT_DIR}")

execute_process(
    COMMAND "${FUZZ_BIN}" --count 1
            --json "${OUT_DIR}/no-such-dir/report.json"
    WORKING_DIRECTORY "${OUT_DIR}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)

# A clean diagnosis is exit code exactly 1; a crash (abort, signal)
# surfaces as a non-numeric or negative result.
if(NOT rc STREQUAL "1")
    message(FATAL_ERROR "fuzz_negative: expected clean exit 1, got '${rc}'\n${out}\n${err}")
endif()
if(NOT err MATCHES "ask_fuzz: cannot write")
    message(FATAL_ERROR "fuzz_negative: missing stderr diagnosis\nstdout: ${out}\nstderr: ${err}")
endif()

message(STATUS "fuzz_negative: unwritable --json path diagnosed cleanly")
