# Bounded fuzz campaign for CI, invoked by the `fuzz_smoke` ctest
# target:
#
#   cmake -DFUZZ_BIN=<build>/testing/ask_fuzz -DOUT_DIR=<scratch> -P fuzz_smoke.cmake
#
# Runs the smoke campaign twice with the same base seed and requires
# (a) zero failures and (b) byte-identical ask-fuzz/v1 reports — the
# determinism contract the replay workflow depends on.

if(NOT DEFINED FUZZ_BIN OR NOT DEFINED OUT_DIR)
    message(FATAL_ERROR "usage: cmake -DFUZZ_BIN=... -DOUT_DIR=... -P fuzz_smoke.cmake")
endif()

file(REMOVE_RECURSE "${OUT_DIR}")
file(MAKE_DIRECTORY "${OUT_DIR}")

foreach(run a b)
    message(STATUS "fuzz_smoke: campaign ${run}")
    execute_process(
        COMMAND "${FUZZ_BIN}" --smoke --json "${OUT_DIR}/report_${run}.json"
        WORKING_DIRECTORY "${OUT_DIR}"
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "fuzz_smoke: campaign ${run} exited ${rc}\n${out}\n${err}")
    endif()
endforeach()

file(READ "${OUT_DIR}/report_a.json" report_a)
file(READ "${OUT_DIR}/report_b.json" report_b)
if(NOT report_a STREQUAL report_b)
    message(FATAL_ERROR "fuzz_smoke: reports differ between identical campaigns")
endif()

message(STATUS "fuzz_smoke: zero failures, byte-identical reports")
