/**
 * @file
 * The fuzz campaign driver behind the `ask_fuzz` CLI.
 *
 * A campaign derives one scenario seed per iteration from the base seed
 * (a SplitMix64 chain — iteration i's seed depends only on base and i),
 * materializes the scenario, runs the differential checker, and — on
 * failure — greedily shrinks the reproducer. The outcome is a
 * deterministic "ask-fuzz/v1" JSON report: same base seed and count,
 * byte-identical bytes, no timestamps and no floats, so CI can diff two
 * runs to prove the whole campaign is reproducible.
 */
#ifndef ASK_TESTING_FUZZER_H
#define ASK_TESTING_FUZZER_H

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "testing/differential.h"
#include "testing/shrink.h"

namespace ask::testing {

/** Campaign parameters. */
struct FuzzOptions
{
    /** Base of the per-scenario seed chain. */
    std::uint64_t base_seed = 1;
    /** Scenarios to run. */
    std::uint32_t count = 500;
    /** Shrink failing scenarios before reporting them. */
    bool shrink = true;
    /** Crash-heavy campaign: every scenario carries host/controller
     *  crash episodes (the `recovery_smoke` ctest target). */
    bool crash_heavy = false;
    /** Differential-run budget per shrink session. */
    std::uint32_t shrink_attempts = 200;
    /** Stop the campaign after this many failures (0 = never). */
    std::uint32_t max_failures = 5;
    /**
     * Worker threads for the campaign (0 = read ASK_SIM_THREADS via
     * sim::SimOptions::from_env()). Every scenario is an independent
     * replica island — its own AskCluster, simulator, and oracle — so
     * the campaign runs them in fixed-size waves on the parallel
     * engine and folds outcomes in scenario order. The report (and its
     * bytes) is identical at any thread count; the sim_parallel_ab
     * ctest diffs 1 vs 2 vs 4 to keep that true.
     */
    unsigned num_threads = 0;
    /** Called after every scenario (progress lines). May be empty. */
    std::function<void(std::uint32_t done, std::uint32_t count,
                       std::uint32_t failures)>
        progress;
};

/** One failing scenario, with its shrunk reproducer. */
struct FuzzFailure
{
    std::uint64_t seed = 0;
    obs::Json scenario;
    obs::Json diff;
    obs::Json shrunk_scenario;
    obs::Json shrunk_diff;
    ShrinkStats shrink_stats;
};

/** Campaign outcome. */
struct FuzzReport
{
    std::uint64_t base_seed = 0;
    std::uint32_t scenarios_run = 0;
    std::uint32_t chaos_scenarios = 0;
    /** Scenarios whose chaos plan crashed a host or the controller. */
    std::uint32_t crash_scenarios = 0;
    std::uint64_t total_tuples = 0;
    /** Tasks run per ReduceOp (index = op id): proves every operator —
     *  sum, max, min, count, and fixed-point float — actually had its
     *  oracle armed during the campaign. */
    std::array<std::uint64_t, core::kNumReduceOps> op_tasks{};
    std::vector<FuzzFailure> failures;

    bool ok() const { return failures.empty(); }

    /** Deterministic "ask-fuzz/v1" document. */
    obs::Json to_json() const;
};

/** The scenario seed of iteration `index` under `base_seed`. */
std::uint64_t scenario_seed(std::uint64_t base_seed, std::uint32_t index);

/** Run a campaign. */
FuzzReport run_fuzz(const FuzzOptions& options);

/**
 * Re-run one scenario by seed (the `--replay` path): generate, diff,
 * and — when `shrink` and it fails — shrink. Returns the single-failure
 * report (empty failure list when the scenario passes). `tuning` must
 * match the campaign that found the seed — (seed, tuning) is the
 * replay key.
 */
FuzzReport replay_seed(std::uint64_t seed, bool shrink,
                       std::uint32_t shrink_attempts = 200,
                       const ScenarioTuning& tuning = {});

}  // namespace ask::testing

#endif  // ASK_TESTING_FUZZER_H
