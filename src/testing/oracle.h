/**
 * @file
 * Sequential reference oracle for the differential checker.
 *
 * The oracle computes, per task, the exact aggregate a correct run must
 * deliver: a single-threaded fold of every sender stream with 64-bit
 * accumulators (AggregateMap semantics). It shares no code with the
 * data path it checks — no switch model, no windows, no packets — so a
 * divergence between cluster and oracle localizes the bug to the
 * service, not the reference.
 *
 * A second, independently-structured reference (aggregate each sender's
 * stream alone, then merge the partials) cross-checks the oracle
 * itself: for the supported commutative/associative ops both folds must
 * agree, and `ground_truth` asserts that they do before the result is
 * ever compared against a cluster run.
 */
#ifndef ASK_TESTING_ORACLE_H
#define ASK_TESTING_ORACLE_H

#include "testing/scenario.h"

namespace ask::testing {

/** The exact per-key aggregate `task` must produce. `default_op` is
 *  the cluster-wide operator; a per-task TaskOptions::op override wins,
 *  mirroring exactly how the service resolves it. */
core::AggregateMap ground_truth(const TaskSpec& task,
                                core::ReduceOp default_op);

/** True when the two maps hold exactly the same key set and values. */
bool maps_equal(const core::AggregateMap& a, const core::AggregateMap& b);

}  // namespace ask::testing

#endif  // ASK_TESTING_ORACLE_H
