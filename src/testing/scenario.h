/**
 * @file
 * Seed-driven scenario generation for the model-based fuzzer.
 *
 * A ScenarioSpec is everything a differential run needs: a cluster
 * deployment (topology, ASK tunables, steady-state fault spec), a set
 * of aggregation tasks with their sender streams and TaskOptions, and a
 * chaos plan. One 64-bit seed materializes one spec, deterministically
 * — the seed is the only thing a failure report has to name for the
 * whole scenario to be replayable (`ask_fuzz --replay <seed>`).
 *
 * The sampled space deliberately stays inside the service's contract:
 * region lengths always fit the switch memory, chaos episode durations
 * stay below the management retry budget, and per-key value totals stay
 * far from the 32-bit register wrap — so the oracle's ground truth is
 * exactly what a correct deployment must produce, with or without
 * chaos. Anything else the checker observes is a bug.
 */
#ifndef ASK_TESTING_SCENARIO_H
#define ASK_TESTING_SCENARIO_H

#include <cstdint>
#include <vector>

#include "ask/cluster.h"
#include "obs/json.h"
#include "sim/chaos.h"

namespace ask::testing {

/** One aggregation task of a scenario. */
struct TaskSpec
{
    core::TaskId id = 1;
    std::uint32_t receiver_host = 0;
    std::vector<core::StreamSpec> streams;
    core::TaskOptions options;
};

/** A complete generated scenario. */
struct ScenarioSpec
{
    /** The seed that materialized this spec (provenance; replay key). */
    std::uint64_t seed = 0;
    core::ClusterConfig cluster;
    std::vector<TaskSpec> tasks;
    sim::ChaosPlan chaos;

    /** Tuples across every task and stream. */
    std::uint64_t total_tuples() const;

    /** Compact, deterministic description (fuzz report / replay log). */
    obs::Json describe() const;
};

/** Knobs that bias the sampled space without breaking replayability:
 *  (seed, tuning) together name a scenario. */
struct ScenarioTuning
{
    /**
     * Host-durability pressure: every scenario carries at least one
     * host or controller crash episode (several likely), timed inside
     * the active window. The default generator samples crashes too,
     * just rarely.
     */
    bool crash_heavy = false;
};

/**
 * Materialize the scenario for `seed`. Equal seeds yield equal specs,
 * byte for byte — the generator draws every choice from one Rng chain
 * and touches no global state.
 */
ScenarioSpec generate_scenario(std::uint64_t seed);

/** Same, with sampling-bias knobs ((seed, tuning) is the replay key). */
ScenarioSpec generate_scenario(std::uint64_t seed,
                               const ScenarioTuning& tuning);

}  // namespace ask::testing

#endif  // ASK_TESTING_SCENARIO_H
