#include "testing/fuzzer.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "common/random.h"
#include "sim/engine.h"

namespace ask::testing {

namespace {

FuzzFailure
make_failure(const ScenarioSpec& spec, const DiffResult& diff, bool shrink,
             std::uint32_t shrink_attempts)
{
    FuzzFailure f;
    f.seed = spec.seed;
    f.scenario = spec.describe();
    f.diff = diff.describe();
    if (shrink) {
        ScenarioSpec reduced =
            shrink_scenario(spec, shrink_attempts, &f.shrink_stats);
        f.shrunk_scenario = reduced.describe();
        f.shrunk_diff = run_differential(reduced).describe();
    }
    return f;
}

void
tally_ops(const ScenarioSpec& spec, FuzzReport& report)
{
    for (const auto& t : spec.tasks) {
        core::ReduceOp op = t.options.op.value_or(spec.cluster.ask.op);
        ++report.op_tasks[static_cast<std::size_t>(op)];
    }
}

bool
has_crash_event(const ScenarioSpec& spec)
{
    for (const auto& e : spec.chaos.events) {
        if (e.kind == sim::ChaosKind::kHostCrash ||
            e.kind == sim::ChaosKind::kHostRestart)
            return true;
    }
    return false;
}

}  // namespace

std::uint64_t
scenario_seed(std::uint64_t base_seed, std::uint32_t index)
{
    // SplitMix64 chain: cheap, and seed i is independent of whether
    // earlier iterations passed or failed.
    std::uint64_t state = base_seed;
    std::uint64_t seed = 0;
    for (std::uint32_t i = 0; i <= index; ++i)
        seed = split_mix64(state);
    return seed;
}

obs::Json
FuzzReport::to_json() const
{
    obs::Json d = obs::Json::object();
    d.set("schema", "ask-fuzz/v1");
    d.set("base_seed", std::to_string(base_seed));
    d.set("scenarios_run", scenarios_run);
    d.set("chaos_scenarios", chaos_scenarios);
    d.set("crash_scenarios", crash_scenarios);
    d.set("total_tuples", total_tuples);
    obs::Json ops = obs::Json::object();
    for (std::size_t i = 0; i < op_tasks.size(); ++i)
        ops.set(core::reduce_op_name(static_cast<core::ReduceOp>(i)),
                op_tasks[i]);
    d.set("op_coverage", std::move(ops));
    d.set("ok", ok());

    obs::Json fails = obs::Json::array();
    for (const auto& f : failures) {
        obs::Json fj = obs::Json::object();
        fj.set("seed", std::to_string(f.seed));
        fj.set("scenario", f.scenario);
        fj.set("diff", f.diff);
        if (!f.shrunk_scenario.is_null()) {
            fj.set("shrunk_scenario", f.shrunk_scenario);
            fj.set("shrunk_diff", f.shrunk_diff);
            fj.set("shrink_attempts", f.shrink_stats.attempts);
            fj.set("shrink_accepted", f.shrink_stats.accepted);
        }
        fails.push_back(std::move(fj));
    }
    d.set("failures", std::move(fails));
    return d;
}

namespace {

/** Everything one scenario contributes to the campaign report. */
struct ScenarioOutcome
{
    std::uint64_t total_tuples = 0;
    std::array<std::uint64_t, core::kNumReduceOps> op_tasks{};
    bool chaos = false;
    bool crash = false;
    std::optional<FuzzFailure> failure;
};

/** Generate + diff (+ shrink) one seed. Touches nothing shared, so it
 *  is safe to run on any engine worker. */
ScenarioOutcome
run_scenario(std::uint64_t seed, const ScenarioTuning& tuning, bool shrink,
             std::uint32_t shrink_attempts)
{
    ScenarioOutcome out;
    ScenarioSpec spec = generate_scenario(seed, tuning);
    out.total_tuples = spec.total_tuples();
    for (const auto& t : spec.tasks) {
        core::ReduceOp op = t.options.op.value_or(spec.cluster.ask.op);
        ++out.op_tasks[static_cast<std::size_t>(op)];
    }
    out.chaos = !spec.chaos.empty();
    out.crash = has_crash_event(spec);

    DiffResult diff = run_differential(spec);
    if (!diff.ok())
        out.failure = make_failure(spec, diff, shrink, shrink_attempts);
    return out;
}

}  // namespace

FuzzReport
run_fuzz(const FuzzOptions& options)
{
    FuzzReport report;
    report.base_seed = options.base_seed;

    ScenarioTuning tuning;
    tuning.crash_heavy = options.crash_heavy;

    // The whole seed chain up front: seed i depends only on (base, i),
    // never on what earlier scenarios did, so the campaign can fan out.
    std::vector<std::uint64_t> seeds(options.count);
    std::uint64_t chain = options.base_seed;
    for (std::uint32_t i = 0; i < options.count; ++i)
        seeds[i] = split_mix64(chain);

    sim::SimOptions sim_options = sim::SimOptions::from_env();
    if (options.num_threads != 0)
        sim_options.num_threads = options.num_threads;
    sim::ParallelEngine engine(sim_options);

    // Scenarios run in fixed-size waves (replica islands on the engine
    // pool), then fold into the report strictly in scenario order. The
    // wave size is a constant, NOT the thread count: the fold — and so
    // the report bytes, including where a max_failures campaign stops —
    // must be a pure function of (base_seed, count). A wave may compute
    // scenarios beyond the stop point; they are discarded unfolded,
    // exactly as if the sequential loop had never reached them.
    constexpr std::uint32_t kWave = 16;
    for (std::uint32_t start = 0; start < options.count; start += kWave) {
        std::uint32_t wave =
            std::min(kWave, options.count - start);
        std::vector<ScenarioOutcome> outcomes(wave);
        std::vector<std::function<void()>> jobs;
        jobs.reserve(wave);
        for (std::uint32_t j = 0; j < wave; ++j) {
            jobs.push_back([&outcomes, &seeds, &tuning, &options, start, j] {
                outcomes[j] =
                    run_scenario(seeds[start + j], tuning, options.shrink,
                                 options.shrink_attempts);
            });
        }
        engine.run_isolated(jobs);

        for (std::uint32_t j = 0; j < wave; ++j) {
            ScenarioOutcome& out = outcomes[j];
            report.total_tuples += out.total_tuples;
            for (std::size_t op = 0; op < out.op_tasks.size(); ++op)
                report.op_tasks[op] += out.op_tasks[op];
            if (out.chaos)
                ++report.chaos_scenarios;
            if (out.crash)
                ++report.crash_scenarios;
            ++report.scenarios_run;
            if (out.failure)
                report.failures.push_back(std::move(*out.failure));
            if (options.progress)
                options.progress(start + j + 1, options.count,
                                 static_cast<std::uint32_t>(
                                     report.failures.size()));
            if (options.max_failures != 0 &&
                report.failures.size() >= options.max_failures)
                return report;
        }
    }
    return report;
}

FuzzReport
replay_seed(std::uint64_t seed, bool shrink, std::uint32_t shrink_attempts,
            const ScenarioTuning& tuning)
{
    FuzzReport report;
    report.base_seed = seed;
    report.scenarios_run = 1;

    ScenarioSpec spec = generate_scenario(seed, tuning);
    report.total_tuples = spec.total_tuples();
    tally_ops(spec, report);
    if (!spec.chaos.empty())
        report.chaos_scenarios = 1;
    if (has_crash_event(spec))
        report.crash_scenarios = 1;

    DiffResult diff = run_differential(spec);
    if (!diff.ok())
        report.failures.push_back(
            make_failure(spec, diff, shrink, shrink_attempts));
    return report;
}

}  // namespace ask::testing
