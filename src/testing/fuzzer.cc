#include "testing/fuzzer.h"

#include <utility>

#include "common/random.h"

namespace ask::testing {

namespace {

FuzzFailure
make_failure(const ScenarioSpec& spec, const DiffResult& diff, bool shrink,
             std::uint32_t shrink_attempts)
{
    FuzzFailure f;
    f.seed = spec.seed;
    f.scenario = spec.describe();
    f.diff = diff.describe();
    if (shrink) {
        ScenarioSpec reduced =
            shrink_scenario(spec, shrink_attempts, &f.shrink_stats);
        f.shrunk_scenario = reduced.describe();
        f.shrunk_diff = run_differential(reduced).describe();
    }
    return f;
}

void
tally_ops(const ScenarioSpec& spec, FuzzReport& report)
{
    for (const auto& t : spec.tasks) {
        core::ReduceOp op = t.options.op.value_or(spec.cluster.ask.op);
        ++report.op_tasks[static_cast<std::size_t>(op)];
    }
}

bool
has_crash_event(const ScenarioSpec& spec)
{
    for (const auto& e : spec.chaos.events) {
        if (e.kind == sim::ChaosKind::kHostCrash ||
            e.kind == sim::ChaosKind::kHostRestart)
            return true;
    }
    return false;
}

}  // namespace

std::uint64_t
scenario_seed(std::uint64_t base_seed, std::uint32_t index)
{
    // SplitMix64 chain: cheap, and seed i is independent of whether
    // earlier iterations passed or failed.
    std::uint64_t state = base_seed;
    std::uint64_t seed = 0;
    for (std::uint32_t i = 0; i <= index; ++i)
        seed = split_mix64(state);
    return seed;
}

obs::Json
FuzzReport::to_json() const
{
    obs::Json d = obs::Json::object();
    d.set("schema", "ask-fuzz/v1");
    d.set("base_seed", std::to_string(base_seed));
    d.set("scenarios_run", scenarios_run);
    d.set("chaos_scenarios", chaos_scenarios);
    d.set("crash_scenarios", crash_scenarios);
    d.set("total_tuples", total_tuples);
    obs::Json ops = obs::Json::object();
    for (std::size_t i = 0; i < op_tasks.size(); ++i)
        ops.set(core::reduce_op_name(static_cast<core::ReduceOp>(i)),
                op_tasks[i]);
    d.set("op_coverage", std::move(ops));
    d.set("ok", ok());

    obs::Json fails = obs::Json::array();
    for (const auto& f : failures) {
        obs::Json fj = obs::Json::object();
        fj.set("seed", std::to_string(f.seed));
        fj.set("scenario", f.scenario);
        fj.set("diff", f.diff);
        if (!f.shrunk_scenario.is_null()) {
            fj.set("shrunk_scenario", f.shrunk_scenario);
            fj.set("shrunk_diff", f.shrunk_diff);
            fj.set("shrink_attempts", f.shrink_stats.attempts);
            fj.set("shrink_accepted", f.shrink_stats.accepted);
        }
        fails.push_back(std::move(fj));
    }
    d.set("failures", std::move(fails));
    return d;
}

FuzzReport
run_fuzz(const FuzzOptions& options)
{
    FuzzReport report;
    report.base_seed = options.base_seed;

    ScenarioTuning tuning;
    tuning.crash_heavy = options.crash_heavy;
    std::uint64_t chain = options.base_seed;
    for (std::uint32_t i = 0; i < options.count; ++i) {
        std::uint64_t seed = split_mix64(chain);
        ScenarioSpec spec = generate_scenario(seed, tuning);
        report.total_tuples += spec.total_tuples();
        tally_ops(spec, report);
        if (!spec.chaos.empty())
            ++report.chaos_scenarios;
        if (has_crash_event(spec))
            ++report.crash_scenarios;

        DiffResult diff = run_differential(spec);
        ++report.scenarios_run;
        if (!diff.ok()) {
            report.failures.push_back(make_failure(
                spec, diff, options.shrink, options.shrink_attempts));
        }
        if (options.progress)
            options.progress(i + 1, options.count,
                             static_cast<std::uint32_t>(
                                 report.failures.size()));
        if (options.max_failures != 0 &&
            report.failures.size() >= options.max_failures)
            break;
    }
    return report;
}

FuzzReport
replay_seed(std::uint64_t seed, bool shrink, std::uint32_t shrink_attempts,
            const ScenarioTuning& tuning)
{
    FuzzReport report;
    report.base_seed = seed;
    report.scenarios_run = 1;

    ScenarioSpec spec = generate_scenario(seed, tuning);
    report.total_tuples = spec.total_tuples();
    tally_ops(spec, report);
    if (!spec.chaos.empty())
        report.chaos_scenarios = 1;
    if (has_crash_event(spec))
        report.crash_scenarios = 1;

    DiffResult diff = run_differential(spec);
    if (!diff.ok())
        report.failures.push_back(
            make_failure(spec, diff, shrink, shrink_attempts));
    return report;
}

}  // namespace ask::testing
