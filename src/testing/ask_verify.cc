/**
 * ask_verify — the static PISA-legality report and sweep tool.
 *
 * Report mode (default) builds the ASK switch program's AccessPlan for
 * one configuration and prints the placement report: the stage map with
 * per-stage SRAM use, then every root-to-leaf access path of every
 * packet-kind pass, then the verifier's verdict.
 *
 *     ask_verify                           # paper-default configuration
 *     ask_verify --num-aas 8 --window 16   # a smaller deployment
 *     ask_verify --plain-seen --no-shadow  # the reference variants
 *     ask_verify --stages 4                # watch the verifier reject
 *
 * Sweep mode cross-checks the verifier against the actual install path
 * over a grid of configurations: for each point, the static verdict
 * must agree with whether AskSwitchProgram construction succeeds. Any
 * disagreement (verifier accepts but install throws, or vice versa) is
 * a bug in one of them and fails the run — this is the verify_smoke
 * ctest target.
 *
 *     ask_verify --sweep
 *
 * Model mode runs the semantic model checker (src/pisa/model/): bounded
 * explicit-state exploration of the channel and fabric-routing automata
 * extracted from the real components, plus the mutation harness that
 * proves every seeded protocol defect is caught. The report is the
 * byte-stable `ask-model/v1` schema.
 *
 *     ask_verify --model
 *     ask_verify --model --model-json report.json
 *     ask_verify --model --model-payloads 2 --model-no-mutants
 */
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ask/config.h"
#include "ask/switch_program.h"
#include "common/logging.h"
#include "net/network.h"
#include "pisa/model/checker.h"
#include "pisa/pipeline.h"
#include "pisa/pisa_switch.h"
#include "pisa/verify/verifier.h"
#include "sim/simulator.h"

namespace {

using namespace ask;

[[noreturn]] void
usage(const char* argv0)
{
    std::cerr
        << "usage: " << argv0
        << " [--num-aas N] [--aggregators N] [--window N] [--hosts N]\n"
           "       [--medium-groups N] [--medium-segments N] [--tasks N]\n"
           "       [--plain-seen] [--no-shadow] [--stages N] [--sram BYTES]\n"
           "       [--paths] [--sweep]\n"
           "       [--model] [--model-json PATH] [--model-payloads N]\n"
           "       [--model-window N] [--model-racks N]\n"
           "       [--model-max-states N] [--model-no-mutants]\n";
    std::exit(2);
}

std::uint64_t
parse_u64(const char* argv0, const char* text)
{
    char* end = nullptr;
    std::uint64_t v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0')
        usage(argv0);
    return v;
}

/** One line describing a configuration (sweep diagnostics). */
std::string
describe_config(const core::AskConfig& config)
{
    std::ostringstream oss;
    oss << "num_aas=" << config.num_aas
        << " aggregators=" << config.aggregators_per_aa
        << " window=" << config.window
        << " medium_groups=" << config.medium_groups
        << " compact_seen=" << (config.compact_seen ? 1 : 0)
        << " shadow=" << (config.shadow_copies ? 1 : 0)
        << " hosts=" << config.max_hosts;
    return oss.str();
}

pisa::verify::PipelineBudget
make_budget(std::size_t stages, std::size_t sram)
{
    pisa::verify::PipelineBudget budget;
    budget.num_stages = stages;
    budget.sram_per_stage = sram;
    budget.max_arrays_per_stage = pisa::kMaxRegisterArraysPerStage;
    return budget;
}

/**
 * The report: stage map, per-stage SRAM accounting against the budget,
 * per-pass path listing, and the verdict. Returns the process exit
 * code (0 = legal, 1 = rejected).
 */
int
report(const core::AskConfig& config, std::size_t stages, std::size_t sram,
       bool show_paths)
{
    try {
        config.validate();
    } catch (const ConfigError& e) {
        std::cout << "configuration invalid: " << e.what() << "\n";
        return 1;
    }
    pisa::verify::AccessPlan plan =
        core::AskSwitchProgram::make_access_plan(config);

    std::cout << "program: " << plan.program << "\n";
    std::cout << "configuration: " << describe_config(config) << "\n\n";

    // ---- stage map -------------------------------------------------------
    std::cout << "stage map (" << stages << " stages, "
              << sram / 1024 << " KiB SRAM each):\n";
    std::size_t max_stage = 0;
    for (const auto& d : plan.arrays)
        max_stage = std::max(max_stage, d.stage);
    for (std::size_t s = 0; s <= max_stage; ++s) {
        std::size_t used = 0;
        std::vector<std::string> names;
        for (const auto& d : plan.arrays) {
            if (d.stage != s)
                continue;
            used += d.sram_bytes();
            std::ostringstream oss;
            oss << d.name << " (" << d.entries << " x " << d.width_bits
                << "b)";
            names.push_back(oss.str());
        }
        std::cout << "  stage " << std::setw(2) << s << ": " << std::setw(8)
                  << used << " B";
        if (sram > 0)
            std::cout << " (" << std::fixed << std::setprecision(1)
                      << 100.0 * static_cast<double>(used) /
                             static_cast<double>(sram)
                      << "%)";
        for (std::size_t i = 0; i < names.size(); ++i)
            std::cout << (i == 0 ? "  " : ", ") << names[i];
        std::cout << "\n";
    }

    // ---- path listing ----------------------------------------------------
    auto paths = pisa::verify::enumerate_paths(plan);
    std::cout << "\naccess paths (" << paths.size() << "):\n";
    for (const auto& p : paths) {
        if (!show_paths && paths.size() > 32)
            break;  // large plans: summary only unless --paths
        std::cout << "  " << p.trace << "\n";
        for (const auto& a : p.accesses) {
            std::cout << "    stage " << a.stage << " "
                      << pisa::verify::access_kind_name(a.kind) << " "
                      << a.array << (a.optional ? " (predicated)" : "")
                      << "\n";
        }
    }
    if (!show_paths && paths.size() > 32)
        std::cout << "  ... (" << paths.size()
                  << " paths; pass --paths to list them)\n";

    // ---- verdict ---------------------------------------------------------
    pisa::verify::VerifyResult result =
        pisa::verify::verify(plan, make_budget(stages, sram));
    std::cout << "\nverdict: " << result.describe() << "\n";
    return result.ok() ? 0 : 1;
}

/** Does AskSwitchProgram construction succeed on a fresh switch? */
bool
install_succeeds(const core::AskConfig& config, std::size_t stages,
                 std::size_t sram, std::string* error)
{
    sim::Simulator simulator;
    net::Network network(simulator);
    pisa::PisaSwitch sw(network, stages, sram);
    network.attach(&sw);
    try {
        core::AskSwitchProgram program(config, sw);
        return true;
    } catch (const ConfigError& e) {
        *error = e.what();
        return false;
    }
}

/**
 * The sweep: every grid point must see the static verdict agree with
 * the install outcome. Returns the number of disagreements.
 */
int
sweep()
{
    const std::uint32_t aa_counts[] = {4, 8, 16, 32, 64};
    const std::uint32_t windows[] = {16, 256};
    const std::uint32_t aggregators[] = {1024, 32768, 1u << 20};
    const std::size_t stage_counts[] = {4, 16, 24};

    int points = 0;
    int rejects = 0;
    int disagreements = 0;
    for (std::uint32_t aas : aa_counts) {
        for (std::uint32_t window : windows) {
            for (std::uint32_t aggs : aggregators) {
                for (std::size_t stages : stage_counts) {
                    for (int compact = 0; compact < 2; ++compact) {
                        for (int shadow = 0; shadow < 2; ++shadow) {
                            core::AskConfig config;
                            config.num_aas = aas;
                            config.window = window;
                            config.aggregators_per_aa = aggs;
                            config.compact_seen = compact == 1;
                            config.shadow_copies = shadow == 1;
                            config.max_hosts = 4;
                            // Keep medium groups feasible on tiny AA
                            // counts; the point is layout, not keys.
                            if (config.medium_aas() >= aas)
                                config.medium_groups = aas / 4;
                            ++points;

                            // The static verdict (configuration errors
                            // count as rejects: validate() runs before
                            // the verifier on the install path too).
                            bool static_ok = false;
                            try {
                                config.validate();
                                auto plan = core::AskSwitchProgram::
                                    make_access_plan(config);
                                static_ok =
                                    pisa::verify::verify(
                                        plan,
                                        make_budget(
                                            stages,
                                            pisa::kDefaultStageSramBytes))
                                        .ok();
                            } catch (const ConfigError&) {
                                static_ok = false;
                            }

                            std::string error;
                            bool install_ok = install_succeeds(
                                config, stages,
                                pisa::kDefaultStageSramBytes, &error);
                            if (!install_ok)
                                ++rejects;
                            if (static_ok != install_ok) {
                                ++disagreements;
                                std::cout
                                    << "DISAGREEMENT: " << describe_config(config)
                                    << " stages=" << stages << ": verifier says "
                                    << (static_ok ? "legal" : "illegal")
                                    << " but install "
                                    << (install_ok
                                            ? "succeeded"
                                            : "threw: " + error)
                                    << "\n";
                            }
                        }
                    }
                }
            }
        }
    }
    std::cout << "ask_verify: swept " << points << " configurations ("
              << rejects << " rejected), " << disagreements
              << " verifier/install disagreement(s)\n";
    return disagreements;
}

/**
 * Model mode: run the full model-check campaign, print a per-run
 * summary (with the counterexample trace whenever a run fails its
 * expectation), optionally dump the `ask-model/v1` JSON report.
 * Returns the process exit code (0 = campaign passed).
 */
int
run_model(const pisa::model::ModelCheckOptions& options,
          const std::string& json_path)
{
    pisa::model::ModelReport report = pisa::model::run_model_check(options);

    for (const auto& run : report.runs) {
        std::cout << (run.ok() ? "  ok   " : " FAIL  ") << run.automaton
                  << "  " << run.config
                  << "  mutation=" << pisa::model::mutation_name(run.mutation)
                  << "  states=" << run.states
                  << " transitions=" << run.transitions
                  << " depth=" << run.depth
                  << (run.truncated ? " (truncated)" : "") << "\n";
        if (run.counterexample.has_value()) {
            const auto& cex = *run.counterexample;
            std::cout << "         " << cex.violation.property << ": "
                      << cex.violation.message << "\n";
            // Mutants are supposed to violate — only spell the trace
            // out when a run failed its expectation.
            if (!run.ok())
                for (const std::string& line : cex.rendered)
                    std::cout << "           " << line << "\n";
            else
                std::cout << "         counterexample: "
                          << cex.trace.size() << " event(s)\n";
        } else if (!run.ok()) {
            std::cout << "         expected a counterexample, "
                         "exploration found none\n";
        }
    }

    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out) {
            std::cerr << "ask_verify: cannot write " << json_path << "\n";
            return 1;
        }
        out << report.to_json().dump(2) << "\n";
    }

    std::size_t mutants = 0, caught = 0;
    for (const auto& run : report.runs)
        if (run.mutation != pisa::model::Mutation::kNone) {
            ++mutants;
            if (run.counterexample.has_value())
                ++caught;
        }
    std::cout << "ask_verify: model check " << report.runs.size()
              << " run(s), " << caught << "/" << mutants
              << " mutant(s) caught: "
              << (report.ok() ? "passed" : "FAILED") << "\n";
    return report.ok() ? 0 : 1;
}

}  // namespace

int
main(int argc, char** argv)
{
    core::AskConfig config;
    std::size_t stages = pisa::kDefaultStagesPerPipeline;
    std::size_t sram = pisa::kDefaultStageSramBytes;
    bool show_paths = false;
    bool run_sweep = false;
    bool model_mode = false;
    pisa::model::ModelCheckOptions model_options;
    std::string model_json;

    for (int i = 1; i < argc; ++i) {
        auto value = [&]() -> const char* {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--num-aas") == 0)
            config.num_aas =
                static_cast<std::uint32_t>(parse_u64(argv[0], value()));
        else if (std::strcmp(argv[i], "--aggregators") == 0)
            config.aggregators_per_aa =
                static_cast<std::uint32_t>(parse_u64(argv[0], value()));
        else if (std::strcmp(argv[i], "--window") == 0)
            config.window =
                static_cast<std::uint32_t>(parse_u64(argv[0], value()));
        else if (std::strcmp(argv[i], "--hosts") == 0)
            config.max_hosts =
                static_cast<std::uint32_t>(parse_u64(argv[0], value()));
        else if (std::strcmp(argv[i], "--medium-groups") == 0)
            config.medium_groups =
                static_cast<std::uint32_t>(parse_u64(argv[0], value()));
        else if (std::strcmp(argv[i], "--medium-segments") == 0)
            config.medium_segments =
                static_cast<std::uint32_t>(parse_u64(argv[0], value()));
        else if (std::strcmp(argv[i], "--tasks") == 0)
            config.max_tasks =
                static_cast<std::uint32_t>(parse_u64(argv[0], value()));
        else if (std::strcmp(argv[i], "--plain-seen") == 0)
            config.compact_seen = false;
        else if (std::strcmp(argv[i], "--no-shadow") == 0)
            config.shadow_copies = false;
        else if (std::strcmp(argv[i], "--stages") == 0)
            stages = parse_u64(argv[0], value());
        else if (std::strcmp(argv[i], "--sram") == 0)
            sram = parse_u64(argv[0], value());
        else if (std::strcmp(argv[i], "--paths") == 0)
            show_paths = true;
        else if (std::strcmp(argv[i], "--sweep") == 0)
            run_sweep = true;
        else if (std::strcmp(argv[i], "--model") == 0)
            model_mode = true;
        else if (std::strcmp(argv[i], "--model-json") == 0)
            model_json = value();
        else if (std::strcmp(argv[i], "--model-payloads") == 0)
            model_options.payloads =
                static_cast<std::uint32_t>(parse_u64(argv[0], value()));
        else if (std::strcmp(argv[i], "--model-window") == 0)
            model_options.window =
                static_cast<std::uint32_t>(parse_u64(argv[0], value()));
        else if (std::strcmp(argv[i], "--model-racks") == 0)
            model_options.racks =
                static_cast<std::uint32_t>(parse_u64(argv[0], value()));
        else if (std::strcmp(argv[i], "--model-max-states") == 0)
            model_options.max_states = parse_u64(argv[0], value());
        else if (std::strcmp(argv[i], "--model-no-mutants") == 0)
            model_options.mutants = false;
        else
            usage(argv[0]);
    }

    if (model_mode)
        return run_model(model_options, model_json);
    if (run_sweep)
        return sweep() == 0 ? 0 : 1;
    return report(config, stages, sram, show_paths);
}
