#include "testing/differential.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "ask/fabric.h"
#include "ask/seen_window.h"
#include "common/hash.h"
#include "common/random.h"
#include "pisa/model/invariants.h"
#include "pisa/verify/oracle.h"
#include "testing/oracle.h"

namespace ask::testing {

namespace {

const char*
seen_outcome_name(core::SeenOutcome o)
{
    switch (o) {
      case core::SeenOutcome::kFresh: return "fresh";
      case core::SeenOutcome::kDuplicate: return "duplicate";
      case core::SeenOutcome::kStale: return "stale";
    }
    return "?";
}

/**
 * Model-equivalence probe: the compact W-bit window must classify every
 * in-contract delivery trace exactly like the plain 2W-bit design —
 * including across a register wipe healed by the fence repair.
 */
void
probe_seen_models(const ScenarioSpec& spec, DiffResult& out)
{
    std::uint32_t window = spec.cluster.ask.window;
    Rng rng(mix64(spec.seed ^ 0x5ee2ULL));
    core::PlainSeen plain(window);
    core::CompactSeen compact(window);

    core::Seq issued = 0;  // highest sequence number handed out so far
    bool started = false;
    for (int step = 0; step < 2000; ++step) {
        core::Seq s;
        double roll = rng.next_double();
        if (!started || roll < 0.7) {
            s = started ? ++issued : issued;
            started = true;
        } else if (roll < 0.95) {
            // Re-deliver (duplicate / reordered) something recent.
            std::uint32_t back = static_cast<std::uint32_t>(
                rng.next_below(window));
            s = issued > back ? issued - back : 0;
        } else {
            // Crash-and-fence: wipe both models, repair at the next
            // fresh sequence, exactly like fence_channel after a
            // switch reboot — then deliver that fence sequence. (The
            // compact design requires every admitted sequence to be
            // observed before its window passes; the sender's
            // retransmission loop guarantees that in the real system,
            // so the trace must not leave gaps either.)
            plain.wipe();
            compact.wipe();
            issued += 1;
            plain.repair(issued);
            compact.repair(issued);
            s = issued;
        }
        auto po = plain.observe(s);
        auto co = compact.observe(s);
        if (po != co) {
            out.probe_failures.push_back(
                {"seen_model_equivalence",
                 "seq " + std::to_string(s) + " window " +
                     std::to_string(window) + ": plain=" +
                     seen_outcome_name(po) + " compact=" +
                     seen_outcome_name(co)});
            return;  // one witness is enough; traces diverge after it
        }
    }
}

void
probe_journal(const ScenarioSpec& spec, core::AskCluster& cluster,
              DiffResult& out)
{
    std::uint32_t free_now = cluster.controller().free_aggregators();
    std::uint32_t copy = spec.cluster.ask.copy_size();
    if (free_now != copy) {
        out.probe_failures.push_back(
            {"controller_journal",
             "free pool after drain: " + std::to_string(free_now) + " of " +
                 std::to_string(copy) + " aggregators per AA"});
    }
    for (const auto& t : spec.tasks) {
        for (std::uint32_t s = 0; s < cluster.num_switches(); ++s) {
            if (cluster.program(core::SwitchId{s}).find_task(t.id) !=
                nullptr) {
                out.probe_failures.push_back(
                    {"controller_journal",
                     "task " + std::to_string(t.id) +
                         " still mapped on switch " + std::to_string(s) +
                         "'s data plane after completion"});
            }
        }
    }
}

void
probe_register_hygiene(const ScenarioSpec& spec, core::AskCluster& cluster,
                       DiffResult& out)
{
    for (std::uint32_t s = 0; s < cluster.num_switches(); ++s) {
        pisa::Pipeline& pipe =
            cluster.pisa_switch(core::SwitchId{s}).pipeline();
        for (std::uint32_t i = 0; i < spec.cluster.ask.num_aas; ++i) {
            std::string label =
                "switch " + std::to_string(s) + " aa_" + std::to_string(i);
            auto* arr = pipe.find_array("aa_" + std::to_string(i));
            if (arr == nullptr) {
                out.probe_failures.push_back(
                    {"register_hygiene", label + " missing"});
                continue;
            }
            for (std::size_t slot = 0; slot < arr->size(); ++slot) {
                if (arr->cp_read(slot) != 0) {
                    out.probe_failures.push_back(
                        {"register_hygiene",
                         label + "[" + std::to_string(slot) +
                             "] nonzero after final fetch"});
                    break;  // one witness per array keeps reports short
                }
            }
        }
    }
}

/**
 * Durability probe (post-recovery equivalence): after the run drains,
 * every process's WAL must still verify against its merkle digest, the
 * daemon-state fold must be idempotent and show no live obligations
 * (every journaled task start reached its done record, every archived
 * send was forgotten), the controller journal must balance, and every
 * crash the chaos plan injected must have been matched by a recovery
 * that trusted the log.
 */
void
probe_recovery(const ScenarioSpec& spec, core::AskCluster& cluster,
               DiffResult& out)
{
    auto fail = [&out](const std::string& detail) {
        out.probe_failures.push_back({"post_recovery_equivalence", detail});
    };

    for (std::uint32_t h = 0; h < spec.cluster.num_hosts; ++h) {
        core::Wal& wal = cluster.wal_store().host_wal(h);
        if (!wal.verify()) {
            fail(wal.name() + ": log fails its digest check");
            continue;
        }
        std::vector<core::WalRecord> records = wal.replay();
        core::WalDaemonState once =
            core::rebuild_daemon_state(records, spec.cluster.ask.op);
        core::WalDaemonState twice =
            core::rebuild_daemon_state(records, spec.cluster.ask.op);
        if (!(once == twice))
            fail(wal.name() + ": state fold is not idempotent");
        if (!once.rx_tasks.empty())
            fail(wal.name() + ": " + std::to_string(once.rx_tasks.size()) +
                 " receive task(s) never reached a done record");
        if (!once.sends.empty())
            fail(wal.name() + ": " + std::to_string(once.sends.size()) +
                 " archived send(s) never forgotten");
    }

    // One region journal per switch in the fabric (switch 0 keeps the
    // classic "controller" name); each must verify and balance alone.
    for (std::uint32_t s = 0; s < cluster.num_switches(); ++s) {
        core::Wal& cwal = cluster.wal_store().wal(
            core::controller_wal_name(core::SwitchId{s}));
        if (!cwal.verify()) {
            fail(cwal.name() + ": log fails its digest check");
            continue;
        }
        std::uint64_t allocs = 0;
        std::uint64_t releases = 0;
        for (const core::WalRecord& r : cwal.replay()) {
            if (r.kind == core::WalRecordKind::kAlloc)
                ++allocs;
            else if (r.kind == core::WalRecordKind::kRelease)
                ++releases;
        }
        if (allocs != releases)
            fail(cwal.name() + ": journal unbalanced: " +
                 std::to_string(allocs) + " alloc(s) vs " +
                 std::to_string(releases) + " release(s)");
    }

    core::ChaosStats cs = cluster.chaos_stats();
    if (cs.host_crashes != cs.host_recoveries)
        fail(std::to_string(cs.host_crashes) + " host crash(es) but " +
             std::to_string(cs.host_recoveries) + " recover(ies)");
    if (cs.controller_crashes != cs.controller_recoveries)
        fail(std::to_string(cs.controller_crashes) +
             " controller crash(es) but " +
             std::to_string(cs.controller_recoveries) + " recover(ies)");
    if (cs.wal_rejected != 0)
        fail(std::to_string(cs.wal_rejected) +
             " WAL(s) rejected (nothing corrupts logs in-contract)");
    if (cs.unhandled_events != 0)
        fail(std::to_string(cs.unhandled_events) +
             " chaos event(s) reached no handler");
}

/**
 * Model-reachability probe: cross-check the dynamically observed
 * component states against the semantic model's reachable-state
 * envelope. The model checker (src/pisa/model/) proves a set of state
 * invariants over ALL reachable states of the extracted automata —
 * window shape, plain clear-ahead, switch max_seq <= cursor + W - 1,
 * cursor <= journaled WAL promise, in-flight seq < cursor. Here the
 * same predicates (the very functions the checker uses) run against
 * the live system after the run drains: every seen window extracted
 * off the switch registers of every provisioned channel, every channel
 * cursor, and every WAL fold's resume promise. A failure means the
 * real components reached a state the model calls unreachable — i.e.
 * the extraction in src/pisa/model/ abstracted away a real behavior
 * and its proofs are about the wrong automaton.
 */
void
probe_model_reachability(const ScenarioSpec& spec, core::AskCluster& cluster,
                         DiffResult& out)
{
    auto fail = [&out](const std::string& detail) {
        out.probe_failures.push_back({"model_reachability", detail});
    };

    // Host side: channel cursors, in-flight seqs, and WAL promises.
    std::uint32_t cph = spec.cluster.ask.channels_per_host;
    std::vector<core::Seq> cursor(
        static_cast<std::size_t>(spec.cluster.num_hosts) * cph, 0);
    std::vector<std::optional<std::uint64_t>> promise(cursor.size());
    for (std::uint32_t h = 0; h < spec.cluster.num_hosts; ++h) {
        core::AskDaemon& daemon = cluster.daemon(core::HostId{h});
        core::Wal& wal = cluster.wal_store().host_wal(h);
        core::WalDaemonState folded;
        if (wal.verify())  // digest failures are probe_recovery's story
            folded = core::rebuild_daemon_state(wal.replay(),
                                                spec.cluster.ask.op);
        for (std::uint32_t c = 0; c < daemon.num_channels(); ++c) {
            core::DataChannel& chan = daemon.channel(c);
            core::ChannelId id = chan.global_id();
            cursor.at(id) = chan.next_seq();
            auto it = folded.resume_seq.find(c);
            if (it != folded.resume_seq.end())
                promise.at(id) = it->second;
            for (core::Seq s : chan.in_flight_seqs()) {
                if (s >= chan.next_seq())
                    fail("channel " + std::to_string(id) +
                         ": in-flight seq " + std::to_string(s) +
                         " not below cursor " +
                         std::to_string(chan.next_seq()));
            }
        }
    }

    // Switch side: every provisioned window against the model's state
    // invariants, then the cross-component relation per (switch,
    // channel) pair.
    for (std::uint32_t s = 0; s < cluster.num_switches(); ++s) {
        const core::AskSwitchProgram& program =
            cluster.program(core::SwitchId{s});
        for (core::ChannelId ch = 0; ch < cursor.size(); ++ch) {
            if (!program.provisions(ch))
                continue;
            core::SeenSnapshot snap = program.extract_seen(ch);
            std::string label = "switch " + std::to_string(s) +
                                " channel " + std::to_string(ch) + ": ";
            if (auto err = pisa::model::check_seen_snapshot(snap))
                fail(label + *err);
            pisa::model::ChannelRelation rel;
            rel.switch_max_seq = snap.max_seq;
            rel.daemon_next_seq = cursor.at(ch);
            rel.wal_resume = promise.at(ch);
            rel.window = snap.window;
            if (auto err = pisa::model::check_channel_relation(rel))
                fail(label + *err);
        }
    }
}

/**
 * Access-plan probe: with the runtime cross-check armed, every dynamic
 * register access was already matched against the static plan (an
 * unpredicted access panics mid-run); afterwards the oracle's counters
 * must agree exactly with the pipeline's own — no access slipped past
 * the cross-check, no pass went unchecked.
 */
void
probe_access_plan(core::AskCluster& cluster, DiffResult& out)
{
    for (std::uint32_t s = 0; s < cluster.num_switches(); ++s) {
        std::string label = "switch " + std::to_string(s) + ": ";
        const pisa::verify::AccessOracle* oracle =
            cluster.program(core::SwitchId{s}).access_oracle();
        if (oracle == nullptr) {
            out.probe_failures.push_back(
                {"access_plan",
                 label + "runtime cross-check was not armed"});
            continue;
        }
        pisa::Pipeline& pipe =
            cluster.pisa_switch(core::SwitchId{s}).pipeline();
        std::uint64_t dynamic = 0;
        for (std::size_t st = 0; st < pipe.num_stages(); ++st)
            for (std::size_t i = 0; i < pipe.stage(st)->array_count(); ++i)
                dynamic += pipe.stage(st)->array(i)->access_count();
        if (oracle->accesses() != dynamic) {
            out.probe_failures.push_back(
                {"access_plan",
                 label + "oracle checked " +
                     std::to_string(oracle->accesses()) +
                     " accesses but the arrays record " +
                     std::to_string(dynamic)});
        }
        if (oracle->passes() != pipe.pass_epoch()) {
            out.probe_failures.push_back(
                {"access_plan",
                 label + "oracle saw " + std::to_string(oracle->passes()) +
                     " passes but the pipeline ran " +
                     std::to_string(pipe.pass_epoch())});
        }
    }
}

/**
 * Exactly-once probe for the reduction algebra: fold every stream TWICE
 * (the worst-case "every packet was retransmitted and replayed after a
 * reboot" trace) and compare against the single-application truth.
 * Idempotent ops (min/max) must absorb the replay — doubled == truth —
 * which is why they never needed the seen window for correctness. For
 * non-idempotent ops (sum/count/float) the doubled fold MUST differ on
 * any non-trivial stream; the cluster's delivered result is then
 * checked against it, so a seen-window regression that double-applies
 * retransmissions across ToR/tier reboots produces a named witness
 * here, not just a generic key divergence.
 */
void
probe_exactly_once(const ScenarioSpec& spec, const TaskSpec& task,
                   const core::AggregateMap& delivered, DiffResult& out)
{
    core::ReduceOp op = task.options.op.value_or(spec.cluster.ask.op);
    core::AggregateMap truth = ground_truth(task, spec.cluster.ask.op);
    core::AggregateMap doubled;
    for (int pass = 0; pass < 2; ++pass)
        for (const auto& s : task.streams)
            core::aggregate_into(doubled, s.stream, op);

    std::string label = "task " + std::to_string(task.id) + " (" +
                        core::reduce_op_name(op) + "): ";
    if (core::reduce_op_idempotent(op)) {
        if (!maps_equal(truth, doubled)) {
            out.probe_failures.push_back(
                {"exactly_once",
                 label + "idempotent op changed under full replay"});
        }
        return;
    }
    if (truth.empty())
        return;  // no mass to conserve
    if (maps_equal(truth, doubled))
        return;  // degenerate (all-zero values): no distinguishing power
    if (maps_equal(delivered, doubled)) {
        out.probe_failures.push_back(
            {"exactly_once",
             label + "delivered aggregate matches the DOUBLE-application "
                     "fold — retransmission replay was applied twice"});
    }
}

}  // namespace

bool
DiffResult::ok() const
{
    if (!divergences.empty() || !probe_failures.empty())
        return false;
    for (const auto& t : tasks)
        if (!t.done || t.status != "ok" || t.divergent_keys != 0)
            return false;
    return true;
}

obs::Json
DiffResult::describe() const
{
    obs::Json d = obs::Json::object();
    d.set("ok", ok());
    d.set("finish_time_ns", finish_time);

    obs::Json tasks_json = obs::Json::array();
    for (const auto& t : tasks) {
        obs::Json tj = obs::Json::object();
        tj.set("task", t.task);
        tj.set("done", t.done);
        tj.set("status", t.status);
        tj.set("divergent_keys", t.divergent_keys);
        tasks_json.push_back(std::move(tj));
    }
    d.set("tasks", std::move(tasks_json));

    obs::Json div_json = obs::Json::array();
    for (const auto& v : divergences) {
        obs::Json vj = obs::Json::object();
        vj.set("task", v.task);
        vj.set("key", v.key);
        vj.set("expected", v.expected ? obs::Json(*v.expected) : obs::Json());
        vj.set("actual", v.actual ? obs::Json(*v.actual) : obs::Json());
        div_json.push_back(std::move(vj));
    }
    d.set("divergences", std::move(div_json));

    obs::Json probe_json = obs::Json::array();
    for (const auto& p : probe_failures) {
        obs::Json pj = obs::Json::object();
        pj.set("probe", p.probe);
        pj.set("detail", p.detail);
        probe_json.push_back(std::move(pj));
    }
    d.set("probe_failures", std::move(probe_json));
    return d;
}

DiffResult
run_differential(const ScenarioSpec& spec)
{
    DiffResult out;

    core::AskCluster cluster(spec.cluster);
    // Differential campaigns always run the access-plan cross-check:
    // every register access of the run — on every switch of the fabric
    // — is replayed against that switch's static proof
    // (ASK_VERIFY_ACCESSES semantics, unconditionally).
    for (std::uint32_t s = 0; s < cluster.num_switches(); ++s)
        cluster.program(core::SwitchId{s}).enable_access_verification();
    if (!spec.chaos.empty())
        cluster.arm_chaos(spec.chaos);

    struct Completion
    {
        bool done = false;
        core::AggregateMap result;
        core::TaskReport report;
    };
    std::unordered_map<core::TaskId, Completion> completions;
    for (const auto& t : spec.tasks)
        completions[t.id];  // stable addresses: all slots exist pre-run

    for (const auto& t : spec.tasks) {
        Completion* slot = &completions[t.id];
        cluster.submit_task(
            t.id, t.receiver_host, t.streams, t.options,
            [slot](core::AggregateMap result, core::TaskReport report) {
                slot->done = true;
                slot->result = std::move(result);
                slot->report = report;
            });
    }
    out.finish_time = cluster.run();

    // ---- key-by-key diff against the oracle ------------------------------
    for (const auto& t : spec.tasks) {
        const Completion& c = completions[t.id];
        TaskOutcome outcome;
        outcome.task = t.id;
        outcome.done = c.done;
        outcome.status =
            c.done ? core::task_status_name(c.report.status) : "unfinished";

        if (c.done) {
            core::AggregateMap truth =
                ground_truth(t, spec.cluster.ask.op);
            for (const auto& [key, expected] : truth) {
                auto it = c.result.find(key);
                if (it == c.result.end()) {
                    out.divergences.push_back(
                        {t.id, key, expected, std::nullopt});
                } else if (it->second != expected) {
                    out.divergences.push_back(
                        {t.id, key, expected, it->second});
                }
            }
            for (const auto& [key, actual] : c.result) {
                if (truth.find(key) == truth.end())
                    out.divergences.push_back(
                        {t.id, key, std::nullopt, actual});
            }
            probe_exactly_once(spec, t, c.result, out);
        }
        out.tasks.push_back(std::move(outcome));
    }

    // Deterministic order (AggregateMap iteration is not), then count
    // per task and cap what the report carries.
    std::sort(out.divergences.begin(), out.divergences.end(),
              [](const Divergence& a, const Divergence& b) {
                  return a.task != b.task ? a.task < b.task : a.key < b.key;
              });
    for (const auto& v : out.divergences)
        for (auto& t : out.tasks)
            if (t.task == v.task)
                ++t.divergent_keys;
    if (out.divergences.size() > DiffResult::kMaxRecordedDivergences)
        out.divergences.resize(DiffResult::kMaxRecordedDivergences);

    // ---- invariant probes ------------------------------------------------
    probe_journal(spec, cluster, out);
    probe_register_hygiene(spec, cluster, out);
    probe_seen_models(spec, out);
    probe_access_plan(cluster, out);
    probe_recovery(spec, cluster, out);
    probe_model_reachability(spec, cluster, out);

    return out;
}

}  // namespace ask::testing
