/**
 * ask_fuzz — the model-based differential fuzzer for the ASK service.
 *
 * Runs seed-derived scenarios (random deployments, task mixes, sender
 * streams, fault specs, and chaos plans) through a full AskCluster and
 * checks every delivered aggregate against the sequential oracle, plus
 * the invariant probes (controller journal, register hygiene, seen-
 * window model equivalence). Failures are shrunk to a minimal
 * reproducer and named by their scenario seed:
 *
 *     ask_fuzz                      # 500 scenarios from base seed 1
 *     ask_fuzz --seed 7 --count 64  # a different, equally replayable run
 *     ask_fuzz --smoke              # CI-sized campaign (ctest fuzz_smoke)
 *     ask_fuzz --crash-heavy        # every scenario crashes hosts or the
 *                                   # controller (ctest recovery_smoke)
 *     ask_fuzz --replay 1234        # re-run one scenario by seed
 *     ask_fuzz --json out.json      # write the ask-fuzz/v1 report
 *
 * The report is byte-deterministic for a given (--seed, --count,
 * --crash-heavy): CI runs the smoke campaigns twice and diffs the
 * bytes. A --crash-heavy failure replays with
 * `--crash-heavy --replay SEED` — the flag is part of the replay key.
 */
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "common/random.h"
#include "testing/fuzzer.h"

namespace {

using namespace ask;

[[noreturn]] void
usage(const char* argv0)
{
    std::cerr << "usage: " << argv0
              << " [--seed N] [--count N] [--smoke] [--crash-heavy]\n"
                 "       [--replay SEED] [--no-shrink] [--max-failures N]\n"
                 "       [--json PATH] [--threads N]\n"
                 "--threads N (or ASK_SIM_THREADS=N) runs the campaign's\n"
                 "scenarios on N worker threads; the report bytes are\n"
                 "identical at any thread count.\n";
    std::exit(2);
}

std::uint64_t
parse_u64(const char* argv0, const char* text)
{
    char* end = nullptr;
    std::uint64_t v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0')
        usage(argv0);
    return v;
}

}  // namespace

int
main(int argc, char** argv)
{
    testing::FuzzOptions options;
    bool replay = false;
    std::uint64_t replay_target = 0;
    std::string json_path;

    for (int i = 1; i < argc; ++i) {
        auto value = [&]() -> const char* {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--seed") == 0)
            options.base_seed = parse_u64(argv[0], value());
        else if (std::strcmp(argv[i], "--count") == 0)
            options.count =
                static_cast<std::uint32_t>(parse_u64(argv[0], value()));
        else if (std::strcmp(argv[i], "--smoke") == 0)
            options.count = 60;
        else if (std::strcmp(argv[i], "--crash-heavy") == 0)
            options.crash_heavy = true;
        else if (std::strcmp(argv[i], "--replay") == 0) {
            replay = true;
            replay_target = parse_u64(argv[0], value());
        } else if (std::strcmp(argv[i], "--no-shrink") == 0)
            options.shrink = false;
        else if (std::strcmp(argv[i], "--max-failures") == 0)
            options.max_failures =
                static_cast<std::uint32_t>(parse_u64(argv[0], value()));
        else if (std::strcmp(argv[i], "--json") == 0)
            json_path = value();
        else if (std::strcmp(argv[i], "--threads") == 0)
            options.num_threads =
                static_cast<unsigned>(parse_u64(argv[0], value()));
        else
            usage(argv[0]);
    }

    // ASK_SEED overrides the base seed, like every other seeded run.
    options.base_seed = effective_seed(options.base_seed);

    testing::FuzzReport report;
    if (replay) {
        std::cout << "ask_fuzz: replaying scenario seed " << replay_target
                  << "\n";
        testing::ScenarioTuning tuning;
        tuning.crash_heavy = options.crash_heavy;
        report =
            testing::replay_seed(replay_target, options.shrink,
                                 options.shrink_attempts, tuning);
    } else {
        std::cout << "ask_fuzz: " << options.count
                  << " scenarios from base seed " << options.base_seed
                  << "\n";
        options.progress = [](std::uint32_t done, std::uint32_t count,
                              std::uint32_t failures) {
            if (done % 50 == 0 || done == count)
                std::cout << "  " << done << "/" << count << " scenarios, "
                          << failures << " failure(s)\n";
        };
        report = testing::run_fuzz(options);
    }

    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out) {
            // An unwritable report path is an operator error, not a
            // bug: diagnose and exit cleanly instead of abort()ing.
            std::cerr << "ask_fuzz: cannot write " << json_path << "\n";
            return 1;
        }
        out << report.to_json().dump(2) << "\n";
        std::cout << "ask_fuzz: report written to " << json_path << "\n";
    }

    std::cout << "ask_fuzz: " << report.scenarios_run << " scenarios ("
              << report.chaos_scenarios << " with chaos, "
              << report.crash_scenarios << " with host crashes, "
              << report.total_tuples << " tuples), "
              << report.failures.size() << " failure(s)\n";
    std::cout << "ask_fuzz: op coverage:";
    for (std::size_t i = 0; i < report.op_tasks.size(); ++i)
        std::cout << " "
                  << core::reduce_op_name(static_cast<core::ReduceOp>(i))
                  << "=" << report.op_tasks[i];
    std::cout << "\n";

    if (!report.ok()) {
        for (const auto& f : report.failures) {
            std::cout << "\nFAILURE seed " << f.seed << " (replay: ask_fuzz"
                      << " --replay " << f.seed << ")\n";
            std::cout << "  diff: " << f.diff.dump() << "\n";
            if (!f.shrunk_scenario.is_null()) {
                std::cout << "  shrunk (" << f.shrink_stats.attempts
                          << " attempts, " << f.shrink_stats.accepted
                          << " reductions): " << f.shrunk_scenario.dump()
                          << "\n";
                std::cout << "  shrunk diff: " << f.shrunk_diff.dump()
                          << "\n";
            }
        }
        return 1;
    }
    std::cout << "ask_fuzz: OK\n";
    return 0;
}
