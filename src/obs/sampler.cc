#include "obs/sampler.h"

#include <utility>

#include "common/logging.h"

namespace ask::obs {

Sampler::Sampler(sim::Simulator& simulator, MetricsRegistry& registry,
                 Nanoseconds interval_ns)
    : simulator_(simulator), registry_(registry), interval_ns_(interval_ns)
{
    ASK_ASSERT(interval_ns > 0, "sampling interval must be positive");
    next_sample_ = simulator_.now() + interval_ns_;
    simulator_.set_after_event_hook(
        [this](sim::SimTime now) { maybe_sample(now); });
}

void
Sampler::add_probe(const std::string& name,
                   std::function<double(sim::SimTime)> fn)
{
    probes_.push_back(Probe{&registry_.series(name), std::move(fn)});
}

void
Sampler::maybe_sample(sim::SimTime now)
{
    if (now < next_sample_)
        return;
    // Catch up in whole periods: long event gaps produce one sample at
    // the first event past each boundary, stamped at the boundary so
    // series stay on the sampling grid.
    while (next_sample_ <= now) {
        sim::SimTime stamp = next_sample_;
        for (Probe& p : probes_)
            p.series->record(stamp, p.fn(stamp));
        ++samples_taken_;
        next_sample_ += interval_ns_;
    }
}

}  // namespace ask::obs
