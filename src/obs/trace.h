/**
 * @file
 * Packet-lifecycle tracing: a fixed-size ring of spans that can
 * reconstruct any sequence number's end-to-end path through the system
 * — submit, packetize, transmit, switch pass (ack / forward / stale /
 * blackhole), host aggregate, finalize — with retransmit / replay /
 * bypass annotations. Built for debugging chaos runs: "which hop ate
 * seq 4182?" becomes one chain() call.
 *
 * Cost model: recording is a branch plus a ring-slot write; when the
 * tracer is disabled (the default) it is a single predictable branch,
 * and when the build compiles tracing out (`ASK_ENABLE_TRACE=OFF` /
 * `ASK_TRACE_ENABLED == 0`) the ASK_TRACE() macro vanishes entirely, so
 * instrumented hot paths carry no code at all.
 */
#ifndef ASK_OBS_TRACE_H
#define ASK_OBS_TRACE_H

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "obs/json.h"

// Builds define ASK_TRACE_ENABLED=1 (CMake option ASK_ENABLE_TRACE,
// default ON). Without it the macro below compiles to nothing.
#ifndef ASK_TRACE_ENABLED
#define ASK_TRACE_ENABLED 0
#endif

namespace ask::obs {

/** Lifecycle stages a packet (or task-level action) can pass through. */
enum class TraceStage : std::uint8_t
{
    kSubmit,           ///< stream handed to a channel (seq unused)
    kPacketize,        ///< tuples sealed into a frame; seq assigned
    kTx,               ///< frame handed to the wire (aux = tries so far)
    kSwitchAck,        ///< switch consumed the frame and ACKed
    kSwitchForward,    ///< switch forwarded (aux = residual bitmap)
    kSwitchStale,      ///< switch stale-dropped (outside the window)
    kSwitchBlackhole,  ///< sick program ate the frame
    kHostAggregate,    ///< receiver deduped fresh and aggregated
    kHostDuplicate,    ///< receiver saw a duplicate (re-ACKed)
    kDrainDrop,        ///< receiver dropped during a recovery drain
    kSenderAcked,      ///< sender retired the frame on ACK
    kBypassConvert,    ///< in-flight DATA re-issued as bypass LONG_DATA
    kAbort,            ///< sender-side abort (pre-replay silence)
    kReplay,           ///< archived stream re-submitted (seq unused)
    kFinalize,         ///< task finalized at the receiver (seq unused)
};

const char* trace_stage_name(TraceStage stage);

/** Span annotation flags (OR-able). */
constexpr std::uint8_t kTraceFlagRetransmit = 1u << 0;
constexpr std::uint8_t kTraceFlagReplay = 1u << 1;
constexpr std::uint8_t kTraceFlagBypass = 1u << 2;

/** One recorded lifecycle event. */
struct TraceSpan
{
    std::int64_t t_ns = 0;
    std::uint32_t task = 0;
    std::uint32_t channel = 0;
    std::uint32_t seq = 0;
    TraceStage stage = TraceStage::kSubmit;
    std::uint64_t aux = 0;  ///< stage-specific (tries, bitmap, count)
    std::uint8_t flags = 0;
};

/**
 * The ring-buffered tracer. Spans are recorded for a task when the
 * tracer is globally enabled or the task was opted in (TaskOptions
 * trace = true); the ring overwrites the oldest spans once full, so a
 * long run keeps the most recent `capacity` events.
 */
class PacketTracer
{
  public:
    explicit PacketTracer(std::size_t capacity = 1u << 16);

    /** Record every task's spans (chaos-run debugging). */
    void set_enabled(bool enabled) { enabled_ = enabled; }
    bool enabled() const { return enabled_; }

    /** Opt one task in (TaskOptions::trace). */
    void trace_task(std::uint32_t task);
    bool tracing(std::uint32_t task) const
    {
        return enabled_ || (!traced_tasks_.empty() &&
                            traced_tasks_.count(task) != 0);
    }

    void
    record(std::int64_t t_ns, std::uint32_t task, std::uint32_t channel,
           std::uint32_t seq, TraceStage stage, std::uint64_t aux = 0,
           std::uint8_t flags = 0)
    {
        if (!tracing(task))
            return;
        TraceSpan& s = ring_[head_];
        s = TraceSpan{t_ns, task, channel, seq, stage, aux, flags};
        head_ = (head_ + 1) % ring_.size();
        if (size_ < ring_.size())
            ++size_;
    }

    std::size_t size() const { return size_; }
    std::size_t capacity() const { return ring_.size(); }
    void clear();

    /** All retained spans, oldest first. */
    std::vector<TraceSpan> spans() const;

    /**
     * Reconstruct the lifecycle of one (channel, seq): every retained
     * span of that pair in time order. Task-level spans (kSubmit,
     * kReplay, kFinalize) are excluded — they carry no seq.
     */
    std::vector<TraceSpan> chain(std::uint32_t channel,
                                 std::uint32_t seq) const;

    /** Spans as a JSON array (schema: one object per span). */
    Json to_json() const;

  private:
    bool enabled_ = false;
    std::unordered_set<std::uint32_t> traced_tasks_;
    std::vector<TraceSpan> ring_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

}  // namespace ask::obs

/**
 * Record a span through a `PacketTracer*` that may be null. Compiled
 * out entirely when ASK_TRACE_ENABLED is 0.
 */
#if ASK_TRACE_ENABLED
#define ASK_TRACE(tracer, ...)                   \
    do {                                         \
        if ((tracer) != nullptr)                 \
            (tracer)->record(__VA_ARGS__);       \
    } while (0)
#else
#define ASK_TRACE(tracer, ...) \
    do {                       \
    } while (0)
#endif

#endif  // ASK_OBS_TRACE_H
