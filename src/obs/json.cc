#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/logging.h"

namespace ask::obs {

Json
Json::array()
{
    Json j;
    j.type_ = Type::kArray;
    return j;
}

Json
Json::object()
{
    Json j;
    j.type_ = Type::kObject;
    return j;
}

std::size_t
Json::size() const
{
    if (is_array())
        return array_.size();
    if (is_object())
        return object_.size();
    return 0;
}

const Json&
Json::at(std::size_t i) const
{
    ASK_ASSERT(is_array(), "Json::at on a non-array");
    return array_.at(i);
}

void
Json::push_back(Json v)
{
    ASK_ASSERT(is_array() || is_null(), "Json::push_back on a non-array");
    type_ = Type::kArray;
    array_.push_back(std::move(v));
}

const Json*
Json::find(const std::string& key) const
{
    if (!is_object())
        return nullptr;
    for (const auto& [k, v] : object_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

Json*
Json::find(const std::string& key)
{
    return const_cast<Json*>(std::as_const(*this).find(key));
}

void
Json::set(const std::string& key, Json v)
{
    ASK_ASSERT(is_object() || is_null(), "Json::set on a non-object");
    type_ = Type::kObject;
    for (auto& [k, existing] : object_) {
        if (k == key) {
            existing = std::move(v);
            return;
        }
    }
    object_.emplace_back(key, std::move(v));
}

namespace {

void
append_escaped(std::string& out, const std::string& s)
{
    out.push_back('"');
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
}

void
append_double(std::string& out, double v)
{
    if (!std::isfinite(v)) {
        // JSON has no inf/nan; emit null so documents always parse.
        out += "null";
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    // Trim to the shortest representation that round-trips.
    for (int prec = 1; prec < 17; ++prec) {
        char trial[32];
        std::snprintf(trial, sizeof trial, "%.*g", prec, v);
        double back = 0.0;
        std::sscanf(trial, "%lf", &back);
        if (back == v) {
            std::memcpy(buf, trial, sizeof trial);
            break;
        }
    }
    out += buf;
    // Keep doubles visually distinct from integers ("1" -> "1.0").
    if (out.find_last_of(".eE") == std::string::npos ||
        out.find_last_of(".eE") < out.size() - std::strlen(buf)) {
        if (std::strchr(buf, '.') == nullptr &&
            std::strchr(buf, 'e') == nullptr &&
            std::strchr(buf, 'E') == nullptr)
            out += ".0";
    }
}

void
newline_indent(std::string& out, int indent, int depth)
{
    if (indent <= 0)
        return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void
Json::dump_to(std::string& out, int indent, int depth) const
{
    switch (type_) {
      case Type::kNull:
        out += "null";
        return;
      case Type::kBool:
        out += bool_ ? "true" : "false";
        return;
      case Type::kInt:
        out += std::to_string(int_);
        return;
      case Type::kDouble:
        append_double(out, double_);
        return;
      case Type::kString:
        append_escaped(out, string_);
        return;
      case Type::kArray: {
        if (array_.empty()) {
            out += "[]";
            return;
        }
        out.push_back('[');
        for (std::size_t i = 0; i < array_.size(); ++i) {
            if (i > 0)
                out.push_back(',');
            newline_indent(out, indent, depth + 1);
            array_[i].dump_to(out, indent, depth + 1);
        }
        newline_indent(out, indent, depth);
        out.push_back(']');
        return;
      }
      case Type::kObject: {
        if (object_.empty()) {
            out += "{}";
            return;
        }
        out.push_back('{');
        for (std::size_t i = 0; i < object_.size(); ++i) {
            if (i > 0)
                out.push_back(',');
            newline_indent(out, indent, depth + 1);
            append_escaped(out, object_[i].first);
            out.push_back(':');
            if (indent > 0)
                out.push_back(' ');
            object_[i].second.dump_to(out, indent, depth + 1);
        }
        newline_indent(out, indent, depth);
        out.push_back('}');
        return;
      }
    }
}

std::string
Json::dump(int indent) const
{
    std::string out;
    dump_to(out, indent, 0);
    return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

struct Parser
{
    const std::string& text;
    std::size_t pos = 0;
    std::string error;

    bool
    fail(const std::string& what)
    {
        if (error.empty())
            error = what + " at offset " + std::to_string(pos);
        return false;
    }

    void
    skip_ws()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
                text[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        skip_ws();
        if (pos >= text.size() || text[pos] != c)
            return false;
        ++pos;
        return true;
    }

    bool
    parse_string(std::string& out)
    {
        if (!consume('"'))
            return fail("expected string");
        out.clear();
        while (pos < text.size()) {
            char c = text[pos++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos >= text.size())
                    return fail("truncated escape");
                char e = text[pos++];
                switch (e) {
                  case '"':
                    out.push_back('"');
                    break;
                  case '\\':
                    out.push_back('\\');
                    break;
                  case '/':
                    out.push_back('/');
                    break;
                  case 'n':
                    out.push_back('\n');
                    break;
                  case 'r':
                    out.push_back('\r');
                    break;
                  case 't':
                    out.push_back('\t');
                    break;
                  case 'b':
                    out.push_back('\b');
                    break;
                  case 'f':
                    out.push_back('\f');
                    break;
                  case 'u': {
                    if (pos + 4 > text.size())
                        return fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = text[pos++];
                        code <<= 4;
                        if (h >= '0' && h <= '9')
                            code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f')
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F')
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        else
                            return fail("bad \\u escape");
                    }
                    // Our writer only emits \u00xx; decode BMP points as
                    // UTF-8 for completeness.
                    if (code < 0x80) {
                        out.push_back(static_cast<char>(code));
                    } else if (code < 0x800) {
                        out.push_back(static_cast<char>(0xc0 | (code >> 6)));
                        out.push_back(
                            static_cast<char>(0x80 | (code & 0x3f)));
                    } else {
                        out.push_back(static_cast<char>(0xe0 | (code >> 12)));
                        out.push_back(
                            static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
                        out.push_back(
                            static_cast<char>(0x80 | (code & 0x3f)));
                    }
                    break;
                  }
                  default:
                    return fail("unknown escape");
                }
            } else {
                out.push_back(c);
            }
        }
        return fail("unterminated string");
    }

    bool
    parse_value(Json& out)
    {
        skip_ws();
        if (pos >= text.size())
            return fail("unexpected end of input");
        char c = text[pos];
        if (c == '{') {
            ++pos;
            out = Json::object();
            skip_ws();
            if (consume('}'))
                return true;
            while (true) {
                std::string key;
                if (!parse_string(key))
                    return false;
                if (!consume(':'))
                    return fail("expected ':'");
                Json v;
                if (!parse_value(v))
                    return false;
                out.set(key, std::move(v));
                if (consume(','))
                    continue;
                if (consume('}'))
                    return true;
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos;
            out = Json::array();
            skip_ws();
            if (consume(']'))
                return true;
            while (true) {
                Json v;
                if (!parse_value(v))
                    return false;
                out.push_back(std::move(v));
                if (consume(','))
                    continue;
                if (consume(']'))
                    return true;
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            std::string s;
            if (!parse_string(s))
                return false;
            out = Json(std::move(s));
            return true;
        }
        if (text.compare(pos, 4, "true") == 0) {
            pos += 4;
            out = Json(true);
            return true;
        }
        if (text.compare(pos, 5, "false") == 0) {
            pos += 5;
            out = Json(false);
            return true;
        }
        if (text.compare(pos, 4, "null") == 0) {
            pos += 4;
            out = Json(nullptr);
            return true;
        }
        // Number.
        std::size_t start = pos;
        if (text[pos] == '-')
            ++pos;
        bool is_double = false;
        while (pos < text.size() &&
               (std::isdigit(static_cast<unsigned char>(text[pos])) ||
                text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
                text[pos] == '+' || text[pos] == '-')) {
            if (text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E')
                is_double = true;
            ++pos;
        }
        if (pos == start || (pos == start + 1 && text[start] == '-'))
            return fail("expected value");
        std::string num = text.substr(start, pos - start);
        if (is_double) {
            out = Json(std::stod(num));
        } else {
            try {
                out = Json(static_cast<std::int64_t>(std::stoll(num)));
            } catch (...) {
                out = Json(std::stod(num));
            }
        }
        return true;
    }
};

}  // namespace

std::optional<Json>
Json::parse(const std::string& text, std::string* error)
{
    Parser p{text, 0, {}};
    Json out;
    if (!p.parse_value(out)) {
        if (error)
            *error = p.error;
        return std::nullopt;
    }
    p.skip_ws();
    if (p.pos != text.size()) {
        if (error)
            *error = "trailing garbage at offset " + std::to_string(p.pos);
        return std::nullopt;
    }
    return out;
}

}  // namespace ask::obs
