/**
 * @file
 * The cluster-wide metrics registry.
 *
 * Design constraints, in order:
 *
 *  1. **Zero hot-path cost for counters.** Components keep incrementing
 *     their own plain `std::uint64_t` struct fields (SwitchAggStats,
 *     HostStats, ChaosStats, NetworkStats, ...); the registry holds
 *     *pointers* to those fields (`expose()`) and reads them only when
 *     a snapshot is taken. No string lookup, no atomic, no indirection
 *     on the increment path.
 *  2. **Multiple sources per name.** Every daemon exposes
 *     `host.retransmissions`; the snapshot sums all sources of a name,
 *     which replaces the hand-written per-struct merge boilerplate.
 *  3. **Ownership is declared, then checked.** Each source carries an
 *     owner tag ("cluster", "mgmt", "daemon"); `assert_disjoint_owners`
 *     verifies no metric name is claimed by two different owner kinds
 *     and no field pointer is registered twice — the structural form of
 *     "each component owns a disjoint slice of the chaos counters".
 *
 * Histograms are log-linear (HdrHistogram-style: 8 linear sub-buckets
 * per power of two), giving quantiles with <= 1/8 relative error over
 * the full uint64 range in 512 fixed buckets. Time series are plain
 * (SimTime, double) append-only vectors fed by obs::Sampler.
 */
#ifndef ASK_OBS_METRICS_H
#define ASK_OBS_METRICS_H

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/json.h"

namespace ask::obs {

/** An owned monotonic counter (for components without a stats struct). */
class Counter
{
  public:
    void add(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** A last-value-wins instantaneous measurement. */
class Gauge
{
  public:
    void set(double v) { value_ = v; }
    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/**
 * Log-linear histogram over non-negative integer values.
 *
 * Bucket layout: values < kSubBuckets land in exact unit buckets;
 * beyond that, each power-of-two range splits into kSubBuckets linear
 * sub-buckets, so the bucket width is always <= value / kSubBuckets
 * and quantile() is exact to a relative error of 1/kSubBuckets.
 */
class LogHistogram
{
  public:
    static constexpr std::uint32_t kSubBucketBits = 3;
    static constexpr std::uint32_t kSubBuckets = 1u << kSubBucketBits;
    /** 64-bit range: one linear region + one set of sub-buckets per
     *  remaining exponent. */
    static constexpr std::size_t kBuckets =
        kSubBuckets + (64 - kSubBucketBits) * kSubBuckets;

    void observe(std::uint64_t value);

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t max() const { return max_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    double mean() const
    {
        return count_ ? static_cast<double>(sum_) /
                            static_cast<double>(count_)
                      : 0.0;
    }

    /**
     * Value at quantile q in [0, 1] (0.5 = median): the representative
     * (upper edge) of the bucket containing the q-th observation,
     * clamped to the exact observed max. Relative error <= 1/8.
     */
    std::uint64_t quantile(double q) const;

    /** Bucket-wise merge (associative, commutative). */
    void merge(const LogHistogram& o);

    /** {count, sum, min, max, mean, p50, p95, p99} */
    Json summary_json() const;

    static std::size_t bucket_index(std::uint64_t value);
    /** Inclusive upper edge of bucket i (its representative value). */
    static std::uint64_t bucket_upper(std::size_t i);

  private:
    std::array<std::uint64_t, kBuckets> counts_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~0ULL;
    std::uint64_t max_ = 0;
};

/** One sampled time series in simulated time. */
struct TimeSeries
{
    std::vector<std::int64_t> times_ns;
    std::vector<double> values;

    void
    record(std::int64_t t_ns, double v)
    {
        times_ns.push_back(t_ns);
        values.push_back(v);
    }
};

/**
 * A point-in-time, self-contained copy of every metric: counter values
 * summed over their sources, gauges, histogram summaries (with raw
 * buckets kept so merge stays exact), and time series.
 *
 * Snapshots merge associatively: counters add, histograms merge
 * bucket-wise, gauges keep the last writer, series concatenate.
 */
class MetricsSnapshot
{
  public:
    MetricsSnapshot& merge(const MetricsSnapshot& o);

    /** {counters: {...}, gauges: {...}, histograms: {...},
     *   series: {...}} with keys sorted for schema stability. */
    Json to_json() const;

    std::uint64_t counter(const std::string& name) const;
    const LogHistogram* histogram(const std::string& name) const;

  private:
    friend class MetricsRegistry;

    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, double> gauges_;
    std::map<std::string, LogHistogram> histograms_;
    std::map<std::string, TimeSeries> series_;
};

/**
 * The registry. Components either `expose()` fields of their own stats
 * structs (preferred: free on the hot path) or create owned
 * counters/gauges/histograms by name.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    /**
     * Register `field` (a live counter the component keeps
     * incrementing) as one source of metric `name`. Multiple sources
     * per name are summed at snapshot time. `owner` tags the component
     * kind for the disjoint-ownership check.
     */
    void expose(const std::string& name, const std::uint64_t* field,
                const std::string& owner);

    /** Owned metrics, created on first use (one instance per name). */
    Counter& counter(const std::string& name);
    Gauge& gauge(const std::string& name);
    LogHistogram& histogram(const std::string& name);
    TimeSeries& series(const std::string& name);

    /** Read the current value of every metric. */
    MetricsSnapshot snapshot() const;

    /**
     * Verify that, among metric names starting with `prefix`, every
     * name's sources share one owner tag and no field pointer was
     * registered twice. panics (internal bug) on violation.
     */
    void assert_disjoint_owners(const std::string& prefix) const;

  private:
    struct Source
    {
        const std::uint64_t* field;
        std::string owner;
    };

    std::map<std::string, std::vector<Source>> exposed_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<LogHistogram>> histograms_;
    std::map<std::string, std::unique_ptr<TimeSeries>> series_;
};

}  // namespace ask::obs

#endif  // ASK_OBS_METRICS_H
