/**
 * @file
 * The observability bundle handed to instrumented components: one
 * metrics registry plus one packet tracer per cluster. Components take
 * an `Observability*` (may be null — observability is optional for
 * hand-built daemons) and pull out what they need.
 */
#ifndef ASK_OBS_OBSERVABILITY_H
#define ASK_OBS_OBSERVABILITY_H

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ask::obs {

/** Per-cluster observability state. */
struct Observability
{
    MetricsRegistry registry;
    PacketTracer tracer;
};

}  // namespace ask::obs

#endif  // ASK_OBS_OBSERVABILITY_H
