/**
 * @file
 * A minimal ordered JSON value type for the observability layer.
 *
 * Metric snapshots, trace dumps, and bench reports all serialize
 * through this one type so every emitted document has the same shape
 * rules: object keys keep insertion order (schema-stable diffs), and
 * numbers print either as integers or with enough digits to round-trip
 * a double. A small recursive-descent parser is included for the bench
 * JSON validator and the golden-schema tests; it accepts exactly the
 * documents dump() produces (strict JSON, no comments or trailing
 * commas).
 */
#ifndef ASK_OBS_JSON_H
#define ASK_OBS_JSON_H

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace ask::obs {

/** One JSON value: null, bool, integer, double, string, array, object. */
class Json
{
  public:
    enum class Type
    {
        kNull,
        kBool,
        kInt,
        kDouble,
        kString,
        kArray,
        kObject,
    };

    Json() = default;
    Json(std::nullptr_t) {}
    Json(bool b) : type_(Type::kBool), bool_(b) {}
    Json(int v) : type_(Type::kInt), int_(v) {}
    Json(std::int64_t v) : type_(Type::kInt), int_(v) {}
    Json(std::uint32_t v) : type_(Type::kInt), int_(v) {}
    Json(std::uint64_t v)
        : type_(Type::kInt), int_(static_cast<std::int64_t>(v))
    {
    }
    Json(double v) : type_(Type::kDouble), double_(v) {}
    Json(const char* s) : type_(Type::kString), string_(s) {}
    Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}

    /** An empty array / object (distinct from null). */
    static Json array();
    static Json object();

    Type type() const { return type_; }
    bool is_null() const { return type_ == Type::kNull; }
    bool is_bool() const { return type_ == Type::kBool; }
    bool is_int() const { return type_ == Type::kInt; }
    bool is_double() const { return type_ == Type::kDouble; }
    /** Either integer or double. */
    bool is_number() const { return is_int() || is_double(); }
    bool is_string() const { return type_ == Type::kString; }
    bool is_array() const { return type_ == Type::kArray; }
    bool is_object() const { return type_ == Type::kObject; }

    bool as_bool() const { return bool_; }
    std::int64_t as_int() const { return int_; }
    double as_double() const
    {
        return is_int() ? static_cast<double>(int_) : double_;
    }
    const std::string& as_string() const { return string_; }

    // ---- array access -----------------------------------------------------
    std::size_t size() const;
    const Json& at(std::size_t i) const;
    /** Append to an array (converts a null value into an array). */
    void push_back(Json v);

    // ---- object access ----------------------------------------------------
    /** Member lookup; nullptr when absent or not an object. */
    const Json* find(const std::string& key) const;
    Json* find(const std::string& key);
    /** Set a member, keeping first-insertion order (converts null into
     *  an object). */
    void set(const std::string& key, Json v);
    const std::vector<std::pair<std::string, Json>>& members() const
    {
        return object_;
    }

    /** Serialize. `indent` > 0 pretty-prints with that many spaces. */
    std::string dump(int indent = 0) const;

    /** Strict parse; std::nullopt (with *error set) on malformed input. */
    static std::optional<Json> parse(const std::string& text,
                                     std::string* error = nullptr);

  private:
    void dump_to(std::string& out, int indent, int depth) const;

    Type type_ = Type::kNull;
    bool bool_ = false;
    std::int64_t int_ = 0;
    double double_ = 0.0;
    std::string string_;
    std::vector<Json> array_;
    std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace ask::obs

#endif  // ASK_OBS_JSON_H
