#include "obs/trace.h"

#include <algorithm>

#include "common/logging.h"

namespace ask::obs {

const char*
trace_stage_name(TraceStage stage)
{
    switch (stage) {
      case TraceStage::kSubmit:
        return "submit";
      case TraceStage::kPacketize:
        return "packetize";
      case TraceStage::kTx:
        return "tx";
      case TraceStage::kSwitchAck:
        return "switch_ack";
      case TraceStage::kSwitchForward:
        return "switch_forward";
      case TraceStage::kSwitchStale:
        return "switch_stale";
      case TraceStage::kSwitchBlackhole:
        return "switch_blackhole";
      case TraceStage::kHostAggregate:
        return "host_aggregate";
      case TraceStage::kHostDuplicate:
        return "host_duplicate";
      case TraceStage::kDrainDrop:
        return "drain_drop";
      case TraceStage::kSenderAcked:
        return "sender_acked";
      case TraceStage::kBypassConvert:
        return "bypass_convert";
      case TraceStage::kAbort:
        return "abort";
      case TraceStage::kReplay:
        return "replay";
      case TraceStage::kFinalize:
        return "finalize";
    }
    return "?";
}

PacketTracer::PacketTracer(std::size_t capacity)
{
    ASK_ASSERT(capacity > 0, "tracer needs a non-empty ring");
    ring_.resize(capacity);
}

void
PacketTracer::trace_task(std::uint32_t task)
{
    traced_tasks_.insert(task);
}

void
PacketTracer::clear()
{
    head_ = 0;
    size_ = 0;
}

std::vector<TraceSpan>
PacketTracer::spans() const
{
    std::vector<TraceSpan> out;
    out.reserve(size_);
    std::size_t start = size_ < ring_.size() ? 0 : head_;
    for (std::size_t i = 0; i < size_; ++i)
        out.push_back(ring_[(start + i) % ring_.size()]);
    return out;
}

std::vector<TraceSpan>
PacketTracer::chain(std::uint32_t channel, std::uint32_t seq) const
{
    std::vector<TraceSpan> out;
    for (const TraceSpan& s : spans()) {
        switch (s.stage) {
          case TraceStage::kSubmit:
          case TraceStage::kReplay:
          case TraceStage::kFinalize:
            continue;  // task-level: no sequence number
          default:
            break;
        }
        if (s.channel == channel && s.seq == seq)
            out.push_back(s);
    }
    // spans() is already oldest-first; same-time spans keep record order.
    return out;
}

Json
PacketTracer::to_json() const
{
    Json arr = Json::array();
    for (const TraceSpan& s : spans()) {
        Json j = Json::object();
        j.set("t_ns", s.t_ns);
        j.set("task", s.task);
        j.set("channel", s.channel);
        j.set("seq", s.seq);
        j.set("stage", trace_stage_name(s.stage));
        j.set("aux", s.aux);
        if (s.flags != 0) {
            Json flags = Json::array();
            if (s.flags & kTraceFlagRetransmit)
                flags.push_back("retransmit");
            if (s.flags & kTraceFlagReplay)
                flags.push_back("replay");
            if (s.flags & kTraceFlagBypass)
                flags.push_back("bypass");
            j.set("flags", std::move(flags));
        }
        arr.push_back(std::move(j));
    }
    return arr;
}

}  // namespace ask::obs
