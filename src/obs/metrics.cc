#include "obs/metrics.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"

namespace ask::obs {

// ---------------------------------------------------------------------------
// LogHistogram
// ---------------------------------------------------------------------------

std::size_t
LogHistogram::bucket_index(std::uint64_t value)
{
    if (value < kSubBuckets)
        return static_cast<std::size_t>(value);
    // Exponent of the highest set bit; the kSubBucketBits bits below it
    // select the linear sub-bucket within the power-of-two range.
    std::uint32_t exp = 63u - static_cast<std::uint32_t>(
                                  std::countl_zero(value));
    std::uint64_t sub = (value >> (exp - kSubBucketBits)) & (kSubBuckets - 1);
    return kSubBuckets + static_cast<std::size_t>(exp - kSubBucketBits) *
                             kSubBuckets +
           static_cast<std::size_t>(sub);
}

std::uint64_t
LogHistogram::bucket_upper(std::size_t i)
{
    if (i < kSubBuckets)
        return i;
    std::size_t rel = i - kSubBuckets;
    std::uint32_t exp =
        static_cast<std::uint32_t>(rel / kSubBuckets) + kSubBucketBits;
    std::uint64_t sub = rel % kSubBuckets;
    // Upper edge of the sub-bucket [base + sub*width, base + (sub+1)*width).
    std::uint64_t base = 1ULL << exp;
    std::uint64_t width = base >> kSubBucketBits;
    return base + (sub + 1) * width - 1;
}

void
LogHistogram::observe(std::uint64_t value)
{
    ++counts_[bucket_index(value)];
    ++count_;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

std::uint64_t
LogHistogram::quantile(double q) const
{
    if (count_ == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the q-th observation (1-based, nearest-rank).
    std::uint64_t rank = static_cast<std::uint64_t>(
        q * static_cast<double>(count_ - 1) + 0.5);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
        seen += counts_[i];
        if (seen > rank)
            return std::min(bucket_upper(i), max_);
    }
    return max_;
}

void
LogHistogram::merge(const LogHistogram& o)
{
    for (std::size_t i = 0; i < kBuckets; ++i)
        counts_[i] += o.counts_[i];
    count_ += o.count_;
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
}

Json
LogHistogram::summary_json() const
{
    Json j = Json::object();
    j.set("count", count_);
    j.set("sum", sum_);
    j.set("min", min());
    j.set("max", max_);
    j.set("mean", mean());
    j.set("p50", quantile(0.50));
    j.set("p95", quantile(0.95));
    j.set("p99", quantile(0.99));
    return j;
}

// ---------------------------------------------------------------------------
// MetricsSnapshot
// ---------------------------------------------------------------------------

MetricsSnapshot&
MetricsSnapshot::merge(const MetricsSnapshot& o)
{
    for (const auto& [name, v] : o.counters_)
        counters_[name] += v;
    for (const auto& [name, v] : o.gauges_)
        gauges_[name] = v;
    for (const auto& [name, h] : o.histograms_)
        histograms_[name].merge(h);
    for (const auto& [name, s] : o.series_) {
        TimeSeries& mine = series_[name];
        mine.times_ns.insert(mine.times_ns.end(), s.times_ns.begin(),
                             s.times_ns.end());
        mine.values.insert(mine.values.end(), s.values.begin(),
                           s.values.end());
    }
    return *this;
}

std::uint64_t
MetricsSnapshot::counter(const std::string& name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

const LogHistogram*
MetricsSnapshot::histogram(const std::string& name) const
{
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

Json
MetricsSnapshot::to_json() const
{
    Json j = Json::object();
    Json counters = Json::object();
    for (const auto& [name, v] : counters_)
        counters.set(name, v);
    j.set("counters", std::move(counters));

    Json gauges = Json::object();
    for (const auto& [name, v] : gauges_)
        gauges.set(name, v);
    j.set("gauges", std::move(gauges));

    Json hists = Json::object();
    for (const auto& [name, h] : histograms_)
        hists.set(name, h.summary_json());
    j.set("histograms", std::move(hists));

    Json series = Json::object();
    for (const auto& [name, s] : series_) {
        Json one = Json::object();
        Json times = Json::array();
        for (std::int64_t t : s.times_ns)
            times.push_back(t);
        Json values = Json::array();
        for (double v : s.values)
            values.push_back(v);
        one.set("t_ns", std::move(times));
        one.set("v", std::move(values));
        series.set(name, std::move(one));
    }
    j.set("series", std::move(series));
    return j;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

void
MetricsRegistry::expose(const std::string& name, const std::uint64_t* field,
                        const std::string& owner)
{
    ASK_ASSERT(field != nullptr, "expose of a null field: ", name);
    exposed_[name].push_back(Source{field, owner});
}

Counter&
MetricsRegistry::counter(const std::string& name)
{
    auto& slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge&
MetricsRegistry::gauge(const std::string& name)
{
    auto& slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

LogHistogram&
MetricsRegistry::histogram(const std::string& name)
{
    auto& slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<LogHistogram>();
    return *slot;
}

TimeSeries&
MetricsRegistry::series(const std::string& name)
{
    auto& slot = series_[name];
    if (!slot)
        slot = std::make_unique<TimeSeries>();
    return *slot;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot snap;
    for (const auto& [name, sources] : exposed_) {
        std::uint64_t total = 0;
        for (const Source& s : sources)
            total += *s.field;
        snap.counters_[name] += total;
    }
    for (const auto& [name, c] : counters_)
        snap.counters_[name] += c->value();
    for (const auto& [name, g] : gauges_)
        snap.gauges_[name] = g->value();
    for (const auto& [name, h] : histograms_)
        snap.histograms_[name].merge(*h);
    for (const auto& [name, s] : series_)
        snap.series_[name] = *s;
    return snap;
}

void
MetricsRegistry::assert_disjoint_owners(const std::string& prefix) const
{
    std::map<const std::uint64_t*, std::string> seen_fields;
    for (const auto& [name, sources] : exposed_) {
        if (name.compare(0, prefix.size(), prefix) != 0)
            continue;
        const std::string* owner = nullptr;
        for (const Source& s : sources) {
            if (owner != nullptr && *owner != s.owner) {
                panic("metric ", name, " claimed by both '", *owner,
                      "' and '", s.owner,
                      "': counter slices must be owned by one component "
                      "kind");
            }
            owner = &s.owner;
            auto [it, inserted] = seen_fields.emplace(s.field, name);
            if (!inserted) {
                panic("field registered twice: once as ", it->second,
                      " and once as ", name,
                      " — it would be double-counted in every snapshot");
            }
        }
    }
}

}  // namespace ask::obs
