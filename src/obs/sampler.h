/**
 * @file
 * Periodic time-series sampling in *simulated* time.
 *
 * A self-rescheduling sampler event would keep Simulator::run() from
 * ever draining the queue, so the sampler instead piggybacks on the
 * simulator's after-event hook: after each executed event it checks
 * whether a sampling period has elapsed and, if so, evaluates every
 * probe into its TimeSeries. Sampling therefore happens at event
 * granularity — between events no state changes, so nothing is missed
 * — and the run still terminates exactly when the workload does.
 */
#ifndef ASK_OBS_SAMPLER_H
#define ASK_OBS_SAMPLER_H

#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sim/simulator.h"

namespace ask::obs {

/** Samples registered probes every `interval_ns` of simulated time. */
class Sampler
{
  public:
    /**
     * Installs itself as `simulator`'s after-event hook. One sampler
     * per simulator; the sampler must outlive the simulation run.
     */
    Sampler(sim::Simulator& simulator, MetricsRegistry& registry,
            Nanoseconds interval_ns);

    /** Register a probe: `fn` is evaluated at each sample tick with
     *  the tick's grid timestamp and its value appended to the
     *  registry series `name`. Rate probes (goodput) keep their own
     *  previous-value state and divide by the stamp delta. */
    void add_probe(const std::string& name,
                   std::function<double(sim::SimTime)> fn);

    Nanoseconds interval_ns() const { return interval_ns_; }
    std::uint64_t samples_taken() const { return samples_taken_; }

  private:
    void maybe_sample(sim::SimTime now);

    sim::Simulator& simulator_;
    MetricsRegistry& registry_;
    Nanoseconds interval_ns_;
    sim::SimTime next_sample_ = 0;
    std::uint64_t samples_taken_ = 0;

    struct Probe
    {
        TimeSeries* series;
        std::function<double(sim::SimTime)> fn;
    };
    std::vector<Probe> probes_;
};

}  // namespace ask::obs

#endif  // ASK_OBS_SAMPLER_H
