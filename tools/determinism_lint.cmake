# Determinism lint, invoked by the `determinism_lint` ctest target:
#
#   cmake -DREPO_DIR=<repo> -P tools/determinism_lint.cmake
#
# The simulator core, the ASK protocol layer, and the PISA switch model
# (src/sim, src/ask, src/pisa) are contractually deterministic: every
# result — fuzz reports, recovery replays, model-check reports — must be
# byte-reproducible from a seed. This lint fails on source constructs
# that smuggle in ambient nondeterminism:
#
#   rand               rand() / srand() (use common/random.h Rng)
#   random-device      std::random_device
#   raw-engine         direct std::mt19937 (engines live behind Rng)
#   wall-clock         system_clock / steady_clock / high_resolution_clock,
#                      gettimeofday, std::time(), std::clock()
#   unordered-iter     range-for over an unordered container: iteration
#                      order is implementation-defined, so anything it
#                      feeds into output or aggregation diverges across
#                      platforms (copy keys out and sort instead)
#
# Intentional exceptions go into tools/determinism_allowlist.txt, one
# per line, as exactly `<path relative to repo>:<ban name>` (e.g.
# `src/sim/foo.cc:wall-clock`), justified by a `#` comment line above
# the entry. Entries are matched verbatim — no trailing comments.

if(NOT DEFINED REPO_DIR)
    message(FATAL_ERROR "usage: cmake -DREPO_DIR=<repo> -P determinism_lint.cmake")
endif()

# ban name -> pattern (CMake regex; no lookarounds, so leading
# character classes exclude identifier continuations like sim_time()).
set(ban_names rand random-device raw-engine wall-clock unordered-iter)
set(ban_rand "[^a-zA-Z_]s?rand[ \t]*\\(")
set(ban_random-device "random_device")
set(ban_raw-engine "mt19937")
set(ban_wall-clock "system_clock|steady_clock|high_resolution_clock|gettimeofday|std::time[ \t]*\\(|std::clock[ \t]*\\(")
set(ban_unordered-iter "for[ \t]*\\(.*:.*unordered")

set(allowlist "")
if(EXISTS "${REPO_DIR}/tools/determinism_allowlist.txt")
    file(STRINGS "${REPO_DIR}/tools/determinism_allowlist.txt" allowlist)
endif()

file(GLOB_RECURSE sources
    "${REPO_DIR}/src/sim/*.h" "${REPO_DIR}/src/sim/*.cc"
    "${REPO_DIR}/src/ask/*.h" "${REPO_DIR}/src/ask/*.cc"
    "${REPO_DIR}/src/pisa/*.h" "${REPO_DIR}/src/pisa/*.cc")
list(SORT sources)

set(violations 0)
set(scanned 0)
foreach(path IN LISTS sources)
    math(EXPR scanned "${scanned} + 1")
    file(RELATIVE_PATH rel "${REPO_DIR}" "${path}")
    file(STRINGS "${path}" lines)
    set(lineno 0)
    foreach(line IN LISTS lines)
        math(EXPR lineno "${lineno} + 1")
        foreach(ban IN LISTS ban_names)
            if(line MATCHES "${ban_${ban}}")
                list(FIND allowlist "${rel}:${ban}" allowed)
                if(allowed EQUAL -1)
                    math(EXPR violations "${violations} + 1")
                    message(SEND_ERROR
                        "determinism_lint: ${rel}:${lineno}: banned "
                        "nondeterminism [${ban}]: ${line}")
                endif()
            endif()
        endforeach()
    endforeach()
endforeach()

if(violations GREATER 0)
    message(FATAL_ERROR "determinism_lint: ${violations} violation(s) in "
        "src/sim, src/ask, src/pisa — use common/random.h Rng for "
        "randomness, the simulator clock for time, and sorted copies "
        "for unordered-container output")
endif()
message(STATUS "determinism_lint: ${scanned} file(s) clean")
