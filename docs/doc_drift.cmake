# Guards the prose against drifting from the code it documents:
#
#   1. every --flag a doc line attributes to ask_fuzz, ask_verify,
#      fig12_training, or fig13b_scalability must appear in that
#      binary's --help output (a renamed or removed CLI flag fails the
#      docs, not a user following them);
#   2. every intra-repo markdown link target must exist on disk;
#   3. every `--preset <name>` a doc tells the reader to pass to cmake
#      or ctest must be a preset defined in CMakePresets.json (the
#      runbook's lane names cannot drift from the preset file);
#   4. every `ASK_SOMETHING=value` environment/cache assignment a doc
#      shows must name a variable the code actually consults — a
#      getenv("ASK_...") in src/ or bench/, or an ASK_* build knob in
#      the top-level CMakeLists.txt (a renamed env var would otherwise
#      leave readers exporting a no-op).
#
# Invoked by the `doc_drift` ctest target:
#
#   cmake -DREPO_DIR=<src> -DFUZZ_BIN=<build>/testing/ask_fuzz
#         -DVERIFY_BIN=<build>/testing/ask_verify
#         -DFIG12_BIN=<build>/bench/fig12_training
#         -DFIG13B_BIN=<build>/bench/fig13b_scalability
#         -DSIM_PARALLEL_BIN=<build>/bench/sim_parallel
#         -P docs/doc_drift.cmake

cmake_policy(SET CMP0057 NEW)  # if(... IN_LIST ...)
cmake_policy(SET CMP0012 NEW)  # while(TRUE) is the constant, not a var

foreach(var REPO_DIR FUZZ_BIN VERIFY_BIN FIG12_BIN FIG13B_BIN
            SIM_PARALLEL_BIN)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR
            "usage: cmake -DREPO_DIR=... -DFUZZ_BIN=... -DVERIFY_BIN=... "
            "-DFIG12_BIN=... -DFIG13B_BIN=... -DSIM_PARALLEL_BIN=... "
            "-P doc_drift.cmake")
    endif()
endforeach()

# ---- the ground truth: --help of the documented CLIs --------------------

function(help_flags bin out_var)
    execute_process(COMMAND "${bin}" --help
        OUTPUT_VARIABLE help ERROR_VARIABLE help_err)
    string(APPEND help "${help_err}")
    string(REGEX MATCHALL "--[a-z][a-z0-9-]*" flags "${help}")
    list(REMOVE_DUPLICATES flags)
    if(NOT flags)
        message(FATAL_ERROR "doc_drift: ${bin} --help advertised no flags")
    endif()
    set(${out_var} "${flags}" PARENT_SCOPE)
endfunction()

# The preset names docs may reference (rule 3). Harvested from the
# "name" keys of CMakePresets.json; the file is small enough that a
# regex over the raw text is exact (names are flat strings).
file(READ "${REPO_DIR}/CMakePresets.json" presets_json)
string(REGEX MATCHALL "\"name\"[ \t]*:[ \t]*\"[a-zA-Z0-9_-]+\""
    preset_name_pairs "${presets_json}")
set(preset_names "")
foreach(pair IN LISTS preset_name_pairs)
    string(REGEX REPLACE ".*\"([a-zA-Z0-9_-]+)\"$" "\\1" pname "${pair}")
    list(APPEND preset_names "${pname}")
endforeach()
list(REMOVE_DUPLICATES preset_names)
if(NOT preset_names)
    message(FATAL_ERROR "doc_drift: no preset names in CMakePresets.json")
endif()

help_flags("${FUZZ_BIN}" fuzz_flags)
help_flags("${VERIFY_BIN}" verify_flags)
help_flags("${FIG12_BIN}" fig12_flags)
help_flags("${FIG13B_BIN}" fig13b_flags)
help_flags("${SIM_PARALLEL_BIN}" sim_parallel_flags)
# --help itself is always accepted (it is how the ground truth is read).
list(APPEND fuzz_flags "--help")
list(APPEND verify_flags "--help")
list(APPEND fig12_flags "--help")
list(APPEND fig13b_flags "--help")
list(APPEND sim_parallel_flags "--help")

# The env/cache variable names docs may assign (rule 4): every
# getenv("ASK_...") in the sources and benches, plus the ASK_* build
# knobs declared in the top-level CMakeLists.txt.
set(known_env "")
file(GLOB_RECURSE env_sources
    "${REPO_DIR}/src/*.cc" "${REPO_DIR}/src/*.h"
    "${REPO_DIR}/bench/*.cc" "${REPO_DIR}/bench/*.h")
foreach(src IN LISTS env_sources)
    file(READ "${src}" src_text)
    string(REGEX MATCHALL "getenv\\(\"ASK_[A-Z_]+\"" uses "${src_text}")
    foreach(use IN LISTS uses)
        string(REGEX REPLACE ".*\"(ASK_[A-Z_]+)\"" "\\1" ename "${use}")
        list(APPEND known_env "${ename}")
    endforeach()
endforeach()
file(READ "${REPO_DIR}/CMakeLists.txt" top_cmake)
string(REGEX MATCHALL "ASK_[A-Z_]+" cmake_knobs "${top_cmake}")
list(APPEND known_env ${cmake_knobs})
list(REMOVE_DUPLICATES known_env)
if(NOT known_env)
    message(FATAL_ERROR "doc_drift: harvested no ASK_* variable names")
endif()

# ---- the docs under check -----------------------------------------------

file(GLOB doc_files
    "${REPO_DIR}/README.md" "${REPO_DIR}/DESIGN.md"
    "${REPO_DIR}/EXPERIMENTS.md" "${REPO_DIR}/ROADMAP.md"
    "${REPO_DIR}/docs/*.md")

set(errors 0)
set(checked_flags 0)
set(checked_links 0)
set(checked_presets 0)
set(checked_envs 0)

foreach(doc IN LISTS doc_files)
    # Iterate lines with FIND/SUBSTRING rather than file(STRINGS) or a
    # semicolon-joined list: markdown legitimately contains backslashes,
    # semicolons, and unbalanced square brackets, and CMake's list
    # machinery mis-splits on all three (an unmatched `[` swallows every
    # following separator until a `]`).
    file(READ "${doc}" content)
    get_filename_component(doc_dir "${doc}" DIRECTORY)
    file(RELATIVE_PATH doc_rel "${REPO_DIR}" "${doc}")

    while(NOT content STREQUAL "")
        string(FIND "${content}" "\n" nl)
        if(nl EQUAL -1)
            set(line "${content}")
            set(content "")
        else()
            string(SUBSTRING "${content}" 0 ${nl} line)
            math(EXPR next "${nl} + 1")
            string(SUBSTRING "${content}" ${next} -1 content)
        endif()
        # Rule 1: flags attributed to the fuzz / verify CLIs.
        set(allowed "")
        if(line MATCHES "ask_fuzz")
            list(APPEND allowed ${fuzz_flags})
        endif()
        if(line MATCHES "ask_verify")
            list(APPEND allowed ${verify_flags})
        endif()
        if(line MATCHES "fig12_training")
            list(APPEND allowed ${fig12_flags})
        endif()
        if(line MATCHES "fig13b_scalability")
            list(APPEND allowed ${fig13b_flags})
        endif()
        # sim_parallel_ab is the ctest target, not the bench binary —
        # its lines carry ctest flags, which rule 1 must not judge.
        if(line MATCHES "sim_parallel" AND NOT line MATCHES "sim_parallel_ab")
            list(APPEND allowed ${sim_parallel_flags})
        endif()
        if(allowed)
            string(REGEX MATCHALL "--[a-z][a-z0-9-]*" used "${line}")
            foreach(flag IN LISTS used)
                math(EXPR checked_flags "${checked_flags} + 1")
                if(NOT flag IN_LIST allowed)
                    message(SEND_ERROR
                        "doc_drift: ${doc_rel}: flag ${flag} is not in the "
                        "binary's --help:\n  ${line}")
                    math(EXPR errors "${errors} + 1")
                endif()
            endforeach()
        endif()

        # Rule 3: preset names handed to cmake/ctest must be defined.
        if(line MATCHES "(cmake|ctest)")
            string(REGEX MATCHALL "--preset[ \t=]+[a-zA-Z0-9_-]+"
                preset_uses "${line}")
            foreach(use IN LISTS preset_uses)
                string(REGEX REPLACE "^--preset[ \t=]+" "" used_preset
                    "${use}")
                math(EXPR checked_presets "${checked_presets} + 1")
                if(NOT used_preset IN_LIST preset_names)
                    message(SEND_ERROR
                        "doc_drift: ${doc_rel}: preset ${used_preset} is "
                        "not defined in CMakePresets.json:\n  ${line}")
                    math(EXPR errors "${errors} + 1")
                endif()
            endforeach()
        endif()

        # Rule 4: ASK_* assignments must name a variable the code reads.
        string(REGEX MATCHALL "ASK_[A-Z_]+=" env_uses "${line}")
        foreach(use IN LISTS env_uses)
            string(REGEX REPLACE "=$" "" used_env "${use}")
            math(EXPR checked_envs "${checked_envs} + 1")
            if(NOT used_env IN_LIST known_env)
                message(SEND_ERROR
                    "doc_drift: ${doc_rel}: ${used_env} is not consulted "
                    "anywhere in src/, bench/, or CMakeLists.txt:\n  ${line}")
                math(EXPR errors "${errors} + 1")
            endif()
        endforeach()

        # Rule 2: intra-repo markdown link targets must exist. Matches
        # are consumed one at a time (REGEX MATCH + advance) because a
        # MATCHALL result list whose elements contain brackets/parens
        # does not round-trip through foreach(IN LISTS) intact.
        set(rest "${line}")
        while(TRUE)
            string(REGEX MATCH "\\]\\(([^)]+)\\)" one "${rest}")
            if(one STREQUAL "")
                break()
            endif()
            set(target "${CMAKE_MATCH_1}")
            string(FIND "${rest}" "${one}" mpos)
            string(LENGTH "${one}" mlen)
            math(EXPR mnext "${mpos} + ${mlen}")
            string(SUBSTRING "${rest}" ${mnext} -1 rest)
            string(REGEX REPLACE "#.*$" "" target "${target}")
            if(target STREQUAL "" OR target MATCHES "^[a-z]+://" OR
               target MATCHES "^mailto:")
                continue()
            endif()
            math(EXPR checked_links "${checked_links} + 1")
            if(IS_ABSOLUTE "${target}")
                set(resolved "${target}")
            else()
                set(resolved "${doc_dir}/${target}")
            endif()
            if(NOT EXISTS "${resolved}")
                message(SEND_ERROR
                    "doc_drift: ${doc_rel}: broken link target ${target}")
                math(EXPR errors "${errors} + 1")
            endif()
        endwhile()
    endwhile()
endforeach()

if(errors GREATER 0)
    message(FATAL_ERROR "doc_drift: ${errors} problem(s) found")
endif()
list(LENGTH doc_files n_docs)
message(STATUS
    "doc_drift: ${n_docs} docs ok (${checked_flags} CLI flags, "
    "${checked_links} links, ${checked_presets} preset names, "
    "${checked_envs} env assignments verified)")
