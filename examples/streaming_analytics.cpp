/**
 * Streaming analytics — a real-time key-value stream with heavy skew,
 * unreliable networking, and concurrent tenants.
 *
 * Demonstrates the pieces §3.3 and §3.4 exist for:
 *  - exactly-once aggregation under injected loss/duplication/reorder
 *    (the result is compared against a ground-truth host aggregation);
 *  - hot-key-agnostic prioritization: shadow-copy swaps let hot keys
 *    reclaim aggregators that cold keys grabbed first;
 *  - multi-tenancy: two independent aggregation tasks multiplex the
 *    switch memory and the host daemons.
 *
 *   ./build/examples/streaming_analytics
 */
#include <algorithm>
#include <iostream>
#include <vector>

#include "ask/cluster.h"
#include "common/string_util.h"
#include "workload/generators.h"

int
main()
{
    using namespace ask;

    core::ClusterConfig cc;
    cc.num_hosts = 4;
    cc.ask.max_hosts = 4;
    cc.ask.medium_groups = 0;
    cc.ask.swap_threshold_packets = 128;       // aggressive hot-key swaps
    cc.faults = net::FaultSpec::lossy(0.05, 0.02, 0.10);  // a rough network
    core::AskCluster cluster(cc);

    // Two tenants: a clickstream (Zipf-skewed event ids, cold-first --
    // the worst case for FCFS aggregators) and a metrics feed.
    workload::ZipfGenerator clicks(4096, 1.1, 77, "c-");
    workload::UniformGenerator metrics(512, 78, "m-");
    std::vector<core::StreamSpec> click_streams{
        {1, clicks.generate(60000, workload::KeyOrder::kColdFirst)},
        {2, clicks.generate(60000, workload::KeyOrder::kColdFirst)},
    };
    std::vector<core::StreamSpec> metric_streams{
        {3, metrics.generate(30000)},
    };

    core::AggregateMap clicks_truth, metrics_truth;
    for (const auto& s : click_streams)
        core::aggregate_into(clicks_truth, s.stream, core::AggOp::kAdd);
    for (const auto& s : metric_streams)
        core::aggregate_into(metrics_truth, s.stream, core::AggOp::kAdd);

    core::TaskResult clicks_result;
    core::TaskResult metrics_result;
    cluster.submit_task(1, 0, click_streams, {.region_len = 512},
                        [&](core::AggregateMap m, core::TaskReport rep) {
                            clicks_result = {std::move(m), rep};
                        });
    cluster.submit_task(2, 3, metric_streams, {.region_len = 512},
                        [&](core::AggregateMap m, core::TaskReport rep) {
                            metrics_result = {std::move(m), rep};
                        });
    cluster.run();

    const core::SwitchAggStats& sw = cluster.switch_stats();
    core::HostStats hosts = cluster.total_host_stats();

    std::cout << "clickstream tenant: "
              << (clicks_result.result == clicks_truth ? "EXACT" : "WRONG")
              << " result (" << clicks_result.result.size()
              << " keys), " << clicks_result.report.swaps
              << " shadow-copy swaps\n";
    std::cout << "metrics tenant:     "
              << (metrics_result.result == metrics_truth ? "EXACT" : "WRONG")
              << " result (" << metrics_result.result.size() << " keys)\n\n";

    std::cout << "network dropped/duplicated packets; reliability layer "
                 "retransmitted " << hosts.retransmissions
              << " times and the switch deduplicated " << sw.duplicates
              << " retransmissions -- every tuple aggregated exactly once.\n";

    // Top-5 hot keys of the clickstream.
    std::vector<std::pair<core::Key, std::uint64_t>> top(
        clicks_result.result.begin(), clicks_result.result.end());
    std::sort(top.begin(), top.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    std::cout << "\nhottest click keys:\n";
    for (std::size_t i = 0; i < 5 && i < top.size(); ++i) {
        // Keys are binary-encoded ids; render them as hex for display.
        std::string hex;
        for (unsigned char c : top[i].first)
            hex += strf("%02x", c);
        std::cout << "  0x" << hex << " -> " << top[i].second << "\n";
    }
    return 0;
}
