/**
 * Quickstart — the smallest complete ASK program.
 *
 * Builds a two-server cluster attached to a simulated programmable
 * switch, runs one key-value aggregation task (server 1 streams word
 * counts, server 0 receives the aggregate), and prints the result along
 * with how much work the switch absorbed.
 *
 *   ./build/examples/quickstart
 */
#include <iostream>
#include <vector>

#include "ask/cluster.h"

int
main()
{
    using namespace ask;

    // 1. Describe the deployment: 2 servers on a 100 Gbps switch. The
    //    default AskConfig is the paper's: 32 aggregator arrays of
    //    32768 aggregators, window W=256, 4 data channels per host.
    core::ClusterConfig config;
    config.num_hosts = 2;
    config.ask.max_hosts = 2;

    core::AskCluster cluster(config);

    // 2. Prepare a key-value stream (WordCount-style tuples).
    core::KvStream stream = {
        {"in", 1},   {"network", 1}, {"aggregation", 1}, {"for", 1},
        {"key", 1},  {"value", 1},   {"streams", 1},     {"in", 1},
        {"the", 1},  {"network", 1}, {"for", 1},         {"the", 1},
        {"win", 1},  {"in", 1},
    };

    // 3. Run the aggregation task: host 1 sends, host 0 receives. Task
    //    knobs travel in TaskOptions; everything defaults sensibly, so
    //    name only what you change.
    core::TaskResult result =
        cluster.run_task(/*task=*/1, /*receiver_host=*/0,
                         {{/*host=*/1, stream}}, {.region_len = 64});
    if (!result.report.ok()) {
        std::cerr << "task failed: " << result.report.detail << "\n";
        return 1;
    }

    // 4. Use the aggregate.
    std::cout << "aggregated " << result.result.size() << " distinct keys in "
              << units::to_seconds(result.report.finish_time) * 1e3
              << " ms (simulated):\n";
    for (const auto& [key, value] : result.result)
        std::cout << "  " << key << " -> " << value << "\n";

    const core::SwitchAggStats& sw = cluster.switch_stats();
    std::cout << "switch aggregated " << sw.tuples_aggregated
              << " tuples and fully absorbed " << sw.packets_acked
              << " packets\n";

    // 5. Every component also publishes counters to the cluster's
    //    metrics registry; snapshot it for a machine-readable view.
    obs::MetricsSnapshot snap = cluster.metrics_snapshot();
    std::cout << "\nmetrics snapshot:\n"
              << "  net.packets_delivered  = "
              << snap.counter("net.packets_delivered") << "\n"
              << "  switch.tuples_aggregated = "
              << snap.counter("switch.tuples_aggregated") << "\n"
              << "  host.data_packets_sent = "
              << snap.counter("host.data_packets_sent") << "\n";
    return 0;
}
