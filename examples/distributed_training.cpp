/**
 * Distributed training — the paper's §5.6 scenario: a BytePS-style
 * parameter-server job whose gradient aggregation runs through ASK's
 * value-stream mode, compared against the ATP-like and SwitchML-like
 * synchronous INA baselines (both also implemented on the PISA switch
 * model in this repository).
 *
 *   ./build/examples/distributed_training
 */
#include <iostream>

#include "apps/trainsim.h"
#include "baselines/sync_ina.h"
#include "common/string_util.h"
#include "common/table.h"

int
main()
{
    using namespace ask;

    // --- Part 1: a real (simulated) allreduce with verified sums. -------
    baselines::SyncInaSpec allreduce;
    allreduce.variant = baselines::SyncVariant::kAtp;
    allreduce.workers = 4;
    allreduce.grad_elements = 1 << 16;
    allreduce.values_per_packet = 64;
    allreduce.slots = 256;
    baselines::SyncInaResult ar = baselines::run_sync_allreduce(allreduce);
    std::cout << "ATP-like allreduce of " << allreduce.grad_elements
              << " gradients across " << allreduce.workers << " workers: "
              << (ar.correct ? "sums verified" : "WRONG SUMS") << ", "
              << fmt_double(ar.per_worker_goodput_gbps, 1)
              << " Gbps/worker, " << ar.ps_fallback_chunks
              << " chunks fell back to the PS\n\n";

    // --- Part 2: end-to-end training throughput (Figure 12's story). ----
    TextTable t;
    t.header({"model", "backend", "img/s (8 workers)", "comm (ms/step)"});
    for (const auto& model : {workload::resnet50(), workload::vgg16()}) {
        for (auto backend : {apps::TrainBackend::kAsk,
                             apps::TrainBackend::kAtp,
                             apps::TrainBackend::kSwitchMl}) {
            apps::TrainSpec spec;
            spec.model = model;
            spec.workers = 8;
            spec.backend = backend;
            spec.probe_elements = 1 << 18;  // keep the example fast
            apps::TrainResult r = apps::run_training(spec);
            t.row({model.name, apps::train_backend_name(backend),
                   fmt_double(r.images_per_second, 0),
                   fmt_double(r.comm_s * 1e3, 1)});
        }
    }
    t.print(std::cout);
    std::cout << "\nResNet-class models are compute-bound: every in-network "
                 "backend lands close together (the paper's Figure 12).\n";
    return 0;
}
