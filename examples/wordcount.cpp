/**
 * WordCount — the paper's motivating big-data scenario (§5.5).
 *
 * Runs a MapReduce-style WordCount over a synthetic text corpus on a
 * three-server cluster, once with host-only aggregation economics
 * (vanilla Spark model) and once with the aggregation offloaded to the
 * ASK service, then compares job completion time and CPU use. Also
 * demonstrates the variable-length-key machinery: real words span the
 * short / medium (coalesced) / long key classes.
 *
 *   ./build/examples/wordcount
 */
#include <iostream>

#include "apps/minimr.h"
#include "ask/cluster.h"
#include "common/string_util.h"
#include "common/table.h"
#include "workload/text_corpus.h"

int
main()
{
    using namespace ask;

    // --- Part 1: word-level view on a small corpus. --------------------
    workload::CorpusProfile profile = workload::movie_reviews_profile();
    profile.vocabulary = 20000;
    workload::TextCorpus corpus(profile, 2026);

    core::ClusterConfig cc;
    cc.num_hosts = 3;
    cc.ask.max_hosts = 3;
    core::AskCluster cluster(cc);

    std::vector<core::StreamSpec> streams{
        {1, corpus.generate(40000)},
        {2, corpus.generate(40000)},
    };
    core::TaskResult r = cluster.run_task(1, 0, streams);

    std::cout << "WordCount over " << 2 * 40000 << " words, "
              << r.result.size() << " distinct\n";
    const core::SwitchAggStats& sw = cluster.switch_stats();
    std::cout << "switch absorbed "
              << 100.0 * sw.tuples_aggregated /
                     std::max<std::uint64_t>(1, sw.tuples_in)
              << "% of short/medium-key tuples; " << sw.long_packets
              << " long-key packets bypassed to the host\n\n";

    // --- Part 2: job-level economics (Figure 10's story). ---------------
    TextTable t;
    t.header({"backend", "JCT (s)", "mapper TCT (s)", "CPU (%)"});
    for (auto backend : {apps::MrBackend::kSpark, apps::MrBackend::kAsk}) {
        apps::MrJobSpec spec;
        spec.backend = backend;
        spec.tuples_per_mapper = 50000000;
        spec.sim_scale = 2000;
        apps::MrJobResult jr = apps::run_mr_job(spec);
        t.row({apps::mr_backend_name(backend), fmt_double(jr.jct_s, 2),
               fmt_double(jr.mapper_tct_s, 2),
               fmt_double(jr.cpu_fraction * 100, 1)});
    }
    t.print(std::cout);
    std::cout << "\nASK removes the aggregation from the mappers' CPUs: the "
                 "switch does it at line rate.\n";
    return 0;
}
