/**
 * Validator for the machine-readable bench output (schema
 * "ask-bench/v1"). Takes one or more BENCH_*.json paths, parses each
 * with the strict obs::Json parser, and checks the document shape that
 * BenchReport promises:
 *
 *   schema       == "ask-bench/v1"
 *   experiment   non-empty string
 *   description  string
 *   mode         one of "smoke" | "default" | "full"
 *   params       object
 *   rows         array of objects
 *   notes        array of strings
 *   metrics      object (optional)
 *
 * Exits non-zero naming the first violated rule, so the bench_smoke
 * ctest target fails loudly when a bench drifts from the schema.
 *
 *   ./build/bench/bench_json_check BENCH_fig03_akvs.json ...
 */
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/json.h"

namespace {

using ask::obs::Json;

bool
fail(const std::string& path, const std::string& what)
{
    std::cerr << "bench_json_check: " << path << ": " << what << "\n";
    return false;
}

bool
check_file(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        return fail(path, "cannot open");
    std::ostringstream buf;
    buf << in.rdbuf();

    std::string error;
    std::optional<Json> doc = Json::parse(buf.str(), &error);
    if (!doc)
        return fail(path, "parse error: " + error);
    if (!doc->is_object())
        return fail(path, "top-level value is not an object");

    const Json* schema = doc->find("schema");
    if (!schema || !schema->is_string() ||
        schema->as_string() != "ask-bench/v1")
        return fail(path, "schema must be the string \"ask-bench/v1\"");

    const Json* experiment = doc->find("experiment");
    if (!experiment || !experiment->is_string() ||
        experiment->as_string().empty())
        return fail(path, "experiment must be a non-empty string");

    const Json* description = doc->find("description");
    if (!description || !description->is_string())
        return fail(path, "description must be a string");

    const Json* mode = doc->find("mode");
    if (!mode || !mode->is_string() ||
        (mode->as_string() != "smoke" && mode->as_string() != "default" &&
         mode->as_string() != "full"))
        return fail(path, "mode must be \"smoke\", \"default\" or \"full\"");

    const Json* params = doc->find("params");
    if (!params || !params->is_object())
        return fail(path, "params must be an object");

    const Json* rows = doc->find("rows");
    if (!rows || !rows->is_array())
        return fail(path, "rows must be an array");
    for (std::size_t i = 0; i < rows->size(); ++i) {
        if (!rows->at(i).is_object())
            return fail(path,
                        "rows[" + std::to_string(i) + "] is not an object");
    }

    const Json* notes = doc->find("notes");
    if (!notes || !notes->is_array())
        return fail(path, "notes must be an array");
    for (std::size_t i = 0; i < notes->size(); ++i) {
        if (!notes->at(i).is_string())
            return fail(path,
                        "notes[" + std::to_string(i) + "] is not a string");
    }

    if (const Json* metrics = doc->find("metrics")) {
        if (!metrics->is_object())
            return fail(path, "metrics, when present, must be an object");
    }

    std::cout << "ok " << path << " (experiment="
              << experiment->as_string() << ", rows=" << rows->size()
              << ")\n";
    return true;
}

}  // namespace

int
main(int argc, char** argv)
{
    if (argc < 2) {
        std::cerr << "usage: bench_json_check BENCH_*.json...\n";
        return 2;
    }
    bool ok = true;
    for (int i = 1; i < argc; ++i)
        ok = check_file(argv[i]) && ok;
    return ok ? 0 : 1;
}
