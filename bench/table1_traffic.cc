/**
 * Table 1 — Traffic reduction on the four production-trace stand-ins
 * (yelp, NG, BAC, LMDB): percentage of key-value tuples aggregated by
 * the switch and percentage of data packets fully absorbed (ACKed) by
 * the switch. Paper: 85.73-94.32 % tuples, 72.01-90.36 % packets.
 */
#include <cstdint>
#include <iostream>

#include "ask/cluster.h"
#include "bench_util.h"
#include "workload/text_corpus.h"

namespace {

using namespace ask;

struct Measured
{
    double tuple_pct;
    double packet_pct;
};

Measured
measure(const workload::CorpusProfile& profile, std::uint64_t tuples,
        std::uint64_t vocab_scale)
{
    workload::CorpusProfile p = profile;
    p.vocabulary /= vocab_scale;  // scaled with the stream volume

    core::ClusterConfig cc;
    cc.num_hosts = 2;
    cc.ask.max_hosts = 2;
    core::AskCluster cluster(cc);

    workload::TextCorpus corpus(p, 11);
    core::TaskResult r =
        cluster.run_task(1, 0, {{1, corpus.generate(tuples)}});
    (void)r;

    // Denominators include the long-key traffic that bypasses the
    // switch (the paper counts all incoming tuples/packets).
    const core::SwitchAggStats& sw = cluster.switch_stats();
    std::uint64_t all_tuples = cluster.total_host_stats().tuples_sent;
    Measured m;
    m.tuple_pct = 100.0 * static_cast<double>(sw.tuples_aggregated) /
                  static_cast<double>(all_tuples);
    m.packet_pct = 100.0 * static_cast<double>(sw.packets_acked) /
                   static_cast<double>(sw.packets_acked +
                                       sw.packets_forwarded + sw.long_packets);
    return m;
}

}  // namespace

int
main(int argc, char** argv)
{
    bench::BenchReport report("table1_traffic",
                              "traffic reduction on text-corpus traces",
                              argc, argv);
    bool full = report.full();
    std::uint64_t tuples = report.smoke() ? 150000 : (full ? 4000000 : 600000);
    std::uint64_t vocab_scale = report.smoke() ? 32 : (full ? 4 : 16);
    report.param("tuples", tuples);
    report.param("vocab_scale", vocab_scale);

    bench::banner("Table 1", "traffic reduction on text-corpus traces");

    struct Ref { const char* tuple; const char* packet; };
    const Ref refs[] = {{"92.18", "72.01"},
                        {"85.73", "84.35"},
                        {"94.32", "90.36"},
                        {"91.49", "88.59"}};

    TextTable t;
    t.header({"dataset", "tuples agg (%)", "paper", "pkts ACKed (%)", "paper"});
    int i = 0;
    for (const auto& profile : workload::all_corpus_profiles()) {
        Measured m = measure(profile, tuples, vocab_scale);
        t.row({profile.name, fmt_double(m.tuple_pct, 2), refs[i].tuple,
               fmt_double(m.packet_pct, 2), refs[i].packet});
        report.row({{"dataset", profile.name},
                    {"tuples_aggregated_pct", m.tuple_pct},
                    {"paper_tuples_pct", refs[i].tuple},
                    {"packets_acked_pct", m.packet_pct},
                    {"paper_packets_pct", refs[i].packet}});
        ++i;
    }
    t.print(std::cout);
    report.note("synthetic corpora calibrated to each dataset's skew and "
                "word-length statistics; vocabulary scaled 1/" +
                std::to_string(vocab_scale) + " with the stream volume");
    return 0;
}
