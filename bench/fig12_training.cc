/**
 * Figure 12 — Distributed-training throughput (images/second) for
 * ResNet50/101/152 and VGG11/16/19 with the gradient aggregation done
 * by ASK (BytePS integration), ATP-like, and SwitchML-like backends.
 * Paper: the three land close together (all offload aggregation to the
 * switch); ASK and ATP slightly outperform SwitchML on some models
 * because SwitchML's small packets underuse the network.
 *
 * Our reproduction measures each backend's gradient goodput with a real
 * simulated allreduce/push; see EXPERIMENTS.md for the documented
 * deviation on communication-bound (VGG-class) models, where ASK's
 * asynchronous drain cost shows.
 */
#include <algorithm>
#include <cstring>
#include <iostream>

#include "apps/trainsim.h"
#include "bench_util.h"

namespace {

void
print_usage()
{
    std::cout
        << "usage: fig12_training [--smoke|--full] [--reduce-op NAME]\n"
           "  --smoke           CI-scale volumes (seconds), same shape\n"
           "  --full            paper-scale volumes (slower)\n"
           "  --reduce-op NAME  operator the ASK push tasks bind: sum\n"
           "                    (default), max, min, count, or float;\n"
           "                    float adds the fixed-point gradient\n"
           "                    accuracy section (vs exact fp64 sums)\n"
           "  --help            this text\n";
}

}  // namespace

int
main(int argc, char** argv)
{
    using namespace ask;
    core::ReduceOp reduce_op = core::ReduceOp::kAdd;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--help") == 0) {
            print_usage();
            return 0;
        }
        if (std::strcmp(argv[i], "--reduce-op") == 0 && i + 1 < argc) {
            if (!core::parse_reduce_op(argv[++i], reduce_op)) {
                std::cerr << "fig12_training: unknown reduce op '"
                          << argv[i] << "' (sum, max, min, count, float)\n";
                return 2;
            }
        }
    }

    bench::BenchReport report("fig12_training",
                              "training throughput (images/s), 8 workers",
                              argc, argv);
    bool full = report.full();
    std::uint32_t probe_elements =
        report.smoke() ? (1u << 16) : (full ? (1u << 21) : (1u << 19));
    report.param("workers", 8);
    report.param("probe_elements", probe_elements);
    report.param("reduce_op", core::reduce_op_name(reduce_op));

    bench::banner("Figure 12", "training throughput (images/s), 8 workers");

    // Goodput probes are per backend (independent of the model). The
    // ASK push binds --reduce-op; the sync-INA baselines always sum.
    apps::TrainBackend backends[] = {apps::TrainBackend::kAsk,
                                     apps::TrainBackend::kAtp,
                                     apps::TrainBackend::kSwitchMl};
    double goodput[3];
    for (int b = 0; b < 3; ++b) {
        apps::TrainSpec spec;
        spec.model = workload::resnet50();
        spec.workers = 8;
        spec.backend = backends[b];
        spec.probe_elements = probe_elements;
        spec.reduce_op = reduce_op;
        goodput[b] = apps::measure_gradient_goodput_gbps(spec);
    }
    std::cout << "measured gradient goodput (Gbps/worker): ASK "
              << fmt_double(goodput[0], 2) << ", ATP "
              << fmt_double(goodput[1], 2) << ", SwitchML "
              << fmt_double(goodput[2], 2) << "\n\n";
    // The ASK push goodput is the perf_gate-tracked metric of this
    // figure; the baselines' goodputs ride along under their own keys.
    report.row({{"metric", "ask_push"},
                {"goodput_gbps", goodput[0]},
                {"atp_goodput_gbps", goodput[1]},
                {"switchml_goodput_gbps", goodput[2]}});

    if (reduce_op == core::ReduceOp::kFloat) {
        // Fixed-point gradient accuracy: in-network sums of Q-format
        // encodings vs exact fp64 sums of the raw gradients, and vs the
        // quantized ideal (a host fold of the same encodings — any gap
        // there would be an aggregation bug, not quantization).
        std::uint64_t acc_elements = report.smoke() ? 2048 : 16384;
        apps::TrainSpec spec;
        spec.model = workload::resnet50();
        spec.workers = 8;
        spec.reduce_op = reduce_op;
        apps::FloatAccuracy acc =
            apps::measure_float_gradient_accuracy(spec, acc_elements);
        std::cout << "fixed-point gradient accuracy (Q" << (32 - acc.frac_bits)
                  << "." << acc.frac_bits << ", " << acc.elements
                  << " elements x 8 workers):\n"
                  << "  max |error| vs exact fp64 sum: "
                  << fmt_double(acc.max_abs_error * 1e6, 3) << "e-6 (bound "
                  << fmt_double(acc.error_bound * 1e6, 3) << "e-6)\n"
                  << "  mean |error|: "
                  << fmt_double(acc.mean_abs_error * 1e6, 3) << "e-6\n"
                  << "  bit-identical to quantized ideal: "
                  << (acc.matches_quantized_ideal ? "yes" : "NO") << "\n\n";
        report.row({{"metric", "float_accuracy"},
                    {"elements", acc.elements},
                    {"frac_bits", acc.frac_bits},
                    {"max_abs_error", acc.max_abs_error},
                    {"mean_abs_error", acc.mean_abs_error},
                    {"error_bound", acc.error_bound},
                    {"matches_quantized_ideal",
                     acc.matches_quantized_ideal}});
        if (!acc.matches_quantized_ideal ||
            acc.max_abs_error > acc.error_bound) {
            std::cerr << "fig12_training: float-gradient accuracy outside "
                         "the quantization bound\n";
            return 1;
        }
    }

    TextTable t;
    t.header({"model", "ASK (img/s)", "ATP (img/s)", "SwitchML (img/s)",
              "1-GPU x8"});
    for (const auto& model : workload::figure12_models()) {
        double ips[3];
        for (int b = 0; b < 3; ++b) {
            apps::TrainSpec spec;
            spec.model = model;
            spec.workers = 8;
            spec.backend = backends[b];
            // Reuse the measured goodput: replicate run_training's math.
            apps::TrainResult r;
            r.goodput_gbps = goodput[b];
            double grad_bits = static_cast<double>(model.gradient_bytes()) * 8;
            double compute_s = units::to_seconds(model.compute_ns);
            double push_s = grad_bits / (r.goodput_gbps * 1e9);
            double comm_s =
                backends[b] == apps::TrainBackend::kAsk
                    ? push_s + grad_bits / (0.9 * spec.link_gbps * 1e9)
                    : push_s;
            double step = std::max(compute_s, comm_s) +
                          spec.non_overlap * std::min(compute_s, comm_s);
            ips[b] = spec.workers * model.batch_size / step;
        }
        t.row({model.name, fmt_double(ips[0], 0), fmt_double(ips[1], 0),
               fmt_double(ips[2], 0),
               fmt_double(8 * model.single_gpu_ips(), 0)});
        report.row({{"model", model.name},
                    {"ask_ips", ips[0]},
                    {"atp_ips", ips[1]},
                    {"switchml_ips", ips[2]},
                    {"one_gpu_x8_ips", 8 * model.single_gpu_ips()}});
    }
    t.print(std::cout);
    report.note("paper: ASK ~= ATP >= SwitchML across all six models; see "
                "EXPERIMENTS.md for our VGG-class deviation analysis");
    return 0;
}
