/**
 * Figure 12 — Distributed-training throughput (images/second) for
 * ResNet50/101/152 and VGG11/16/19 with the gradient aggregation done
 * by ASK (BytePS integration), ATP-like, and SwitchML-like backends.
 * Paper: the three land close together (all offload aggregation to the
 * switch); ASK and ATP slightly outperform SwitchML on some models
 * because SwitchML's small packets underuse the network.
 *
 * Our reproduction measures each backend's gradient goodput with a real
 * simulated allreduce/push; see EXPERIMENTS.md for the documented
 * deviation on communication-bound (VGG-class) models, where ASK's
 * asynchronous drain cost shows.
 */
#include <algorithm>
#include <iostream>

#include "apps/trainsim.h"
#include "bench_util.h"

int
main(int argc, char** argv)
{
    using namespace ask;
    bench::BenchReport report("fig12_training",
                              "training throughput (images/s), 8 workers",
                              argc, argv);
    bool full = report.full();
    std::uint32_t probe_elements =
        report.smoke() ? (1u << 16) : (full ? (1u << 21) : (1u << 19));
    report.param("workers", 8);
    report.param("probe_elements", probe_elements);

    bench::banner("Figure 12", "training throughput (images/s), 8 workers");

    // Goodput probes are per backend (independent of the model).
    apps::TrainBackend backends[] = {apps::TrainBackend::kAsk,
                                     apps::TrainBackend::kAtp,
                                     apps::TrainBackend::kSwitchMl};
    double goodput[3];
    for (int b = 0; b < 3; ++b) {
        apps::TrainSpec spec;
        spec.model = workload::resnet50();
        spec.workers = 8;
        spec.backend = backends[b];
        spec.probe_elements = probe_elements;
        goodput[b] = apps::measure_gradient_goodput_gbps(spec);
    }
    std::cout << "measured gradient goodput (Gbps/worker): ASK "
              << fmt_double(goodput[0], 2) << ", ATP "
              << fmt_double(goodput[1], 2) << ", SwitchML "
              << fmt_double(goodput[2], 2) << "\n\n";

    TextTable t;
    t.header({"model", "ASK (img/s)", "ATP (img/s)", "SwitchML (img/s)",
              "1-GPU x8"});
    for (const auto& model : workload::figure12_models()) {
        double ips[3];
        for (int b = 0; b < 3; ++b) {
            apps::TrainSpec spec;
            spec.model = model;
            spec.workers = 8;
            spec.backend = backends[b];
            // Reuse the measured goodput: replicate run_training's math.
            apps::TrainResult r;
            r.goodput_gbps = goodput[b];
            double grad_bits = static_cast<double>(model.gradient_bytes()) * 8;
            double compute_s = units::to_seconds(model.compute_ns);
            double push_s = grad_bits / (r.goodput_gbps * 1e9);
            double comm_s =
                backends[b] == apps::TrainBackend::kAsk
                    ? push_s + grad_bits / (0.9 * spec.link_gbps * 1e9)
                    : push_s;
            double step = std::max(compute_s, comm_s) +
                          spec.non_overlap * std::min(compute_s, comm_s);
            ips[b] = spec.workers * model.batch_size / step;
        }
        t.row({model.name, fmt_double(ips[0], 0), fmt_double(ips[1], 0),
               fmt_double(ips[2], 0),
               fmt_double(8 * model.single_gpu_ips(), 0)});
        report.row({{"model", model.name},
                    {"ask_ips", ips[0]},
                    {"atp_ips", ips[1]},
                    {"switchml_ips", ips[2]},
                    {"one_gpu_x8_ips", 8 * model.single_gpu_ips()}});
    }
    t.print(std::cout);
    report.note("paper: ASK ~= ATP >= SwitchML across all six models; see "
                "EXPERIMENTS.md for our VGG-class deviation analysis");
    return 0;
}
