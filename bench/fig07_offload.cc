/**
 * Figure 7 — Computation offload: job completion time and CPU use of
 * ASK (1/2/4 data channels) vs the host-only PreAggr baseline
 * (8..56 threads) on a 51.2 GB (6.4e9-tuple) uniform MapReduce job.
 * Paper: PreAggr 111.20 s @ 8 thr / 33.22 s @ 32 thr; ASK ~16 s with
 * 1 dCh and ~6 s with 4 dCh at 1.78/3.57/7.14 % CPU.
 */
#include <cstdint>
#include <iostream>

#include "ask/cluster.h"
#include "baselines/preaggr.h"
#include "bench_util.h"
#include "workload/generators.h"

namespace {

using namespace ask;

constexpr std::uint64_t kPaperTuples = 6400000000ULL;  // 51.2 GB / 8 B
constexpr std::uint64_t kPaperDistinct = 33554432;     // 256 MB combined

/** ASK JCT for the Figure 7 job, DES-scaled. The job splits into one
 *  aggregation task per data channel, as the map tasks of a real job
 *  would. */
double
ask_jct_seconds(std::uint32_t channels, std::uint64_t sim_scale)
{
    core::ClusterConfig cc;
    cc.num_hosts = 2;
    cc.ask.max_hosts = 2;
    cc.ask.channels_per_host = channels;
    cc.ask.medium_groups = 0;
    core::AskCluster cluster(cc);

    std::uint64_t tuples = kPaperTuples / sim_scale;
    std::uint64_t distinct = kPaperDistinct / sim_scale;
    std::uint32_t parts = 2 * channels;
    auto ids = bench::balanced_task_ids(1, channels, parts);
    std::uint32_t keys_per_slot = static_cast<std::uint32_t>(
        std::max<std::uint64_t>(1,
                                distinct / parts / cc.ask.short_aas()));
    const core::KeySpace& ks = cluster.daemon(1).key_space();
    std::vector<bench::StreamingTask> tasks;
    for (std::uint32_t p = 0; p < parts; ++p) {
        tasks.push_back({ids[p], 0,
                         {{1, bench::balanced_uniform_stream(
                                  ks, keys_per_slot, tuples / parts,
                                  static_cast<std::uint64_t>(p) << 24)}},
                         {.region_len = cc.ask.copy_size() / parts}});
    }
    bench::StreamingResult sr =
        bench::run_streaming_tasks(cluster, std::move(tasks));

    Nanoseconds fixed = cc.mgmt_latency_ns + cc.notify_latency_ns;
    Nanoseconds stream = std::max<Nanoseconds>(sr.senders_done - fixed, 1);
    // Streaming rescales with volume; add the (unscaled) final fetch.
    double fetch_s = units::to_seconds(
        static_cast<Nanoseconds>(2.0 * cc.ask.copy_size() * cc.ask.num_aas * 2));
    return units::to_seconds(stream) * static_cast<double>(sim_scale) +
           units::to_seconds(fixed) + fetch_s;
}

}  // namespace

int
main(int argc, char** argv)
{
    bench::BenchReport report(
        "fig07_offload", "JCT and CPU: ASK data channels vs PreAggr threads",
        argc, argv);
    bool full = report.full();
    std::uint64_t sim_scale = report.smoke() ? 16000 : (full ? 1000 : 4000);
    report.param("sim_scale", sim_scale);
    report.param("paper_tuples", kPaperTuples);

    bench::banner("Figure 7",
                  "JCT and CPU: ASK data channels vs PreAggr threads");

    TextTable t;
    t.header({"solution", "JCT (s)", "CPU (%)", "paper JCT (s)"});

    baselines::PreAggrSpec ps;
    ps.tuples = kPaperTuples;
    ps.distinct_keys = kPaperDistinct;
    struct Ref { std::uint32_t threads; const char* paper; };
    for (Ref ref : {Ref{8, "111.20"}, Ref{16, "-"}, Ref{32, "33.22"},
                    Ref{56, "-"}}) {
        ps.threads = ref.threads;
        auto r = baselines::run_preaggr(ps);
        t.row({"PreAggr " + std::to_string(ref.threads) + " thr",
               fmt_double(r.jct_s, 2), fmt_double(r.cpu_fraction * 100, 2),
               ref.paper});
        report.row({{"solution", "preaggr"},
                    {"threads", ref.threads},
                    {"jct_s", r.jct_s},
                    {"cpu_pct", r.cpu_fraction * 100},
                    {"paper_jct_s", ref.paper}});
    }

    struct AskRef { std::uint32_t ch; const char* paper; };
    for (AskRef ref : {AskRef{1, "~16"}, AskRef{2, "-"}, AskRef{4, "~6"}}) {
        double jct = ask_jct_seconds(ref.ch, sim_scale);
        double cpu = 100.0 * ref.ch / 56.0;
        t.row({"ASK " + std::to_string(ref.ch) + " dCh", fmt_double(jct, 2),
               fmt_double(cpu, 2), ref.paper});
        report.row({{"solution", "ask"},
                    {"channels", ref.ch},
                    {"jct_s", jct},
                    {"cpu_pct", cpu},
                    {"paper_jct_s", ref.paper}});
    }
    t.print(std::cout);
    report.note("ASK rows are DES runs at 1/" + std::to_string(sim_scale) +
                " volume, streaming time rescaled (fixed costs not scaled)");
    report.note("paper CPU: 1.78/3.57/7.14 % for 1/2/4 dCh; PreAggr "
                "14.3 % @ 8 thr to 100 % @ 56 thr");
    return 0;
}
