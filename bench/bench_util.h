/**
 * @file
 * Shared helpers for the per-figure benchmark harnesses.
 *
 * Every bench binary reproduces one table or figure of the ASPLOS'23
 * ASK paper: it runs the workload (on the discrete-event simulator or
 * the calibrated cost models), prints the same rows/series the paper
 * reports, and where the paper gives concrete numbers, prints them
 * alongside as "paper" columns. Pass --full to run closer to paper
 * scale (slower); the default is a scaled run with identical shape.
 */
#ifndef ASK_BENCH_BENCH_UTIL_H
#define ASK_BENCH_BENCH_UTIL_H

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <initializer_list>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "ask/cluster.h"
#include "ask/key_space.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/table.h"
#include "obs/json.h"

namespace ask::bench {

/**
 * Scale a bench binary runs at. Every binary accepts --smoke (CI:
 * seconds-scale volumes, same shape) and --full (paper-scale volumes);
 * the default sits in between.
 */
enum class Mode
{
    kSmoke,
    kDefault,
    kFull,
};

inline Mode
parse_mode(int argc, char** argv)
{
    Mode mode = Mode::kDefault;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            mode = Mode::kSmoke;
        else if (std::strcmp(argv[i], "--full") == 0)
            mode = Mode::kFull;
    }
    return mode;
}

inline const char*
mode_name(Mode mode)
{
    switch (mode) {
        case Mode::kSmoke: return "smoke";
        case Mode::kDefault: return "default";
        case Mode::kFull: return "full";
    }
    return "?";
}

/**
 * Machine-readable counterpart of a bench binary's stdout tables.
 *
 * Every bench constructs one of these, records its parameters and
 * result rows while printing the human tables as before, and — at
 * destruction or an explicit write() — emits `BENCH_<experiment>.json`
 * (schema "ask-bench/v1") into the working directory, or into
 * $ASK_BENCH_OUT_DIR when set. The document shape is validated by
 * bench_json_check and pinned by the golden-schema test in
 * tests/obs_test.cc:
 *
 *   { "schema": "ask-bench/v1", "experiment": ..., "description": ...,
 *     "mode": "smoke|default|full", "params": {...},
 *     "rows": [{...}, ...], "notes": [...], "metrics": {...}? }
 */
class BenchReport
{
  public:
    BenchReport(std::string experiment, std::string description, int argc,
                char** argv)
        : experiment_(std::move(experiment)), mode_(parse_mode(argc, argv))
    {
        doc_ = obs::Json::object();
        doc_.set("schema", "ask-bench/v1");
        doc_.set("experiment", experiment_);
        doc_.set("description", std::move(description));
        doc_.set("mode", mode_name(mode_));
        doc_.set("params", obs::Json::object());
        doc_.set("rows", obs::Json::array());
        doc_.set("notes", obs::Json::array());
    }

    BenchReport(const BenchReport&) = delete;
    BenchReport& operator=(const BenchReport&) = delete;

    ~BenchReport() { write(); }

    Mode mode() const { return mode_; }
    bool smoke() const { return mode_ == Mode::kSmoke; }
    bool full() const { return mode_ == Mode::kFull; }

    /** Record one experiment parameter (workload size, host count...). */
    void param(const std::string& name, obs::Json value)
    {
        member("params").set(name, std::move(value));
    }

    /** Record one result row; keys should match the printed columns. */
    void row(std::initializer_list<std::pair<std::string, obs::Json>> cells)
    {
        obs::Json r = obs::Json::object();
        for (const auto& [k, v] : cells)
            r.set(k, v);
        member("rows").push_back(std::move(r));
    }

    /** Record a pre-built row object (for programmatic producers). */
    void row_json(obs::Json r) { member("rows").push_back(std::move(r)); }

    /** Print a footnote line and record it in the report. */
    void note(const std::string& text)
    {
        std::cout << "note: " << text << "\n";
        member("notes").push_back(text);
    }

    /** Attach a cluster metrics snapshot (obs::MetricsSnapshot::to_json). */
    void metrics(obs::Json snapshot)
    {
        doc_.set("metrics", std::move(snapshot));
    }

    /** Emit the JSON file now (idempotent; also runs at destruction). */
    void write()
    {
        if (written_)
            return;
        written_ = true;
        std::string dir;
        if (const char* env = std::getenv("ASK_BENCH_OUT_DIR"))
            dir = std::string(env) + "/";
        std::string path = dir + "BENCH_" + experiment_ + ".json";
        std::ofstream out(path);
        if (!out) {
            warn("bench: cannot write ", path);
            return;
        }
        out << doc_.dump(2) << "\n";
        std::cout << "\nwrote " << path << "\n";
    }

  private:
    obs::Json& member(const char* key)
    {
        obs::Json* v = doc_.find(key);
        ASK_ASSERT(v != nullptr, "bench report member ", key, " missing");
        return *v;
    }

    std::string experiment_;
    Mode mode_;
    obs::Json doc_;
    bool written_ = false;
};

/**
 * Pick `count` task ids whose hash-based channel assignment on
 * `sender_host` is perfectly balanced over `channels` data channels
 * (replicates AskDaemon::channel_for_task). Benches splitting one
 * logical job into per-channel tasks use this so a small task count
 * doesn't skew per-core utilization.
 */
inline std::vector<std::uint32_t>
balanced_task_ids(std::uint32_t sender_host, std::uint32_t channels,
                  std::uint32_t count)
{
    std::vector<std::uint32_t> ids;
    std::vector<std::uint32_t> load(channels, 0);
    std::uint32_t per_channel = (count + channels - 1) / channels;
    for (std::uint32_t candidate = 1; ids.size() < count; ++candidate) {
        std::uint32_t ch = static_cast<std::uint32_t>(
            mix64(candidate ^ mix64(sender_host + 1)) % channels);
        if (load[ch] < per_channel) {
            ++load[ch];
            ids.push_back(candidate);
        }
    }
    return ids;
}

/**
 * Like balanced_task_ids, but balanced for *several* sender hosts at
 * once (each host hashes tasks with its own salt, so an id set that is
 * even on one host can be skewed on another). Greedy search over
 * candidate ids; balance is within +-ceil(count/channels) per host.
 * `slack` loosens the per-channel cap by that many extra tasks: exact
 * simultaneous balance becomes infeasible as the host set grows (every
 * candidate must land on an under-full channel of *every* host at
 * once), so large fabrics trade a little skew for a solution.
 */
inline std::vector<std::uint32_t>
balanced_task_ids_multi(const std::vector<std::uint32_t>& hosts,
                        std::uint32_t channels, std::uint32_t count,
                        std::uint32_t slack = 0)
{
    std::vector<std::uint32_t> ids;
    std::vector<std::vector<std::uint32_t>> load(
        hosts.size(), std::vector<std::uint32_t>(channels, 0));
    std::uint32_t cap = (count + channels - 1) / channels + slack;
    for (std::uint32_t candidate = 1;
         ids.size() < count && candidate < 20000000; ++candidate) {
        bool ok = true;
        for (std::size_t h = 0; h < hosts.size() && ok; ++h) {
            std::uint32_t ch = static_cast<std::uint32_t>(
                mix64(candidate ^ mix64(hosts[h] + 1)) % channels);
            ok = load[h][ch] < cap;
        }
        if (!ok)
            continue;
        for (std::size_t h = 0; h < hosts.size(); ++h) {
            std::uint32_t ch = static_cast<std::uint32_t>(
                mix64(candidate ^ mix64(hosts[h] + 1)) % channels);
            ++load[h][ch];
        }
        ids.push_back(candidate);
    }
    return ids;
}

/**
 * Build a key-value stream whose keys are spread *exactly evenly* over
 * the short-key payload slots (keys_per_slot keys in each of the
 * config's short AAs) and whose arrivals cycle the slots round-robin,
 * so every DATA packet is full. This reproduces the paper's
 * microbenchmark conditions: uniform small keys with maximal packing.
 * `offset_base` isolates key spaces across tasks.
 */
inline core::KvStream
balanced_uniform_stream(const core::KeySpace& ks, std::uint32_t keys_per_slot,
                        std::uint64_t n, std::uint64_t offset_base)
{
    std::uint32_t slots = ks.config().short_aas();
    std::vector<std::vector<core::Key>> by_slot(slots);
    std::uint32_t filled = 0;
    for (std::uint64_t id = offset_base; filled < slots; ++id) {
        core::Key key = u64_key(id);
        if (ks.classify(key) != core::KeyClass::kShort)
            continue;
        auto& bucket = by_slot[ks.short_slot(key)];
        if (bucket.size() < keys_per_slot) {
            bucket.push_back(key);
            if (bucket.size() == keys_per_slot)
                ++filled;
        }
    }
    core::KvStream out;
    out.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        const auto& bucket = by_slot[i % slots];
        out.push_back({bucket[(i / slots) % keys_per_slot], 1});
    }
    return out;
}

/** True when --full was passed (paper-scale volumes). */
inline bool
full_scale(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--full") == 0)
            return true;
    }
    return false;
}

/** One aggregation task for run_streaming_tasks. */
struct StreamingTask
{
    core::TaskId id;
    std::uint32_t receiver_host;
    std::vector<core::StreamSpec> streams;
    core::TaskOptions options;
};

/** Outcome of a streaming measurement. */
struct StreamingResult
{
    /** Time the last sender finished (all its data ACKed + FIN_ACKed):
     *  the paper's sender-side aggregation-throughput endpoint. */
    sim::SimTime senders_done = 0;
    /** Time the last task fully finalized (fetch + merge). */
    sim::SimTime all_done = 0;
};

/**
 * Run tasks with per-stream completion tracking: unlike
 * AskCluster::run_task, this reports when the *senders* finished, which
 * excludes teardown fetches from throughput measurements.
 */
inline StreamingResult
run_streaming_tasks(core::AskCluster& cluster,
                    std::vector<StreamingTask> tasks)
{
    StreamingResult result;
    std::size_t tasks_left = tasks.size();
    std::size_t streams_left = 0;
    for (const auto& t : tasks)
        streams_left += t.streams.size();

    for (auto& t : tasks) {
        core::AskDaemon& receiver = cluster.daemon(t.receiver_host);
        net::NodeId receiver_node = receiver.node_id();
        auto n_senders = static_cast<std::uint32_t>(t.streams.size());
        receiver.start_receive(
            t.id, n_senders, t.options,
            [&result, &tasks_left, &cluster](core::AggregateMap,
                                             core::TaskReport) {
                if (--tasks_left == 0)
                    result.all_done = cluster.simulator().now();
            },
            [&cluster, &result, &streams_left, receiver_node, id = t.id,
             op = t.options.op, streams = std::move(t.streams)]() mutable {
                cluster.simulator().schedule_after(
                    cluster.config().notify_latency_ns,
                    [&cluster, &result, &streams_left, receiver_node, id, op,
                     streams = std::move(streams)]() mutable {
                        for (auto& s : streams) {
                            // Senders must bind the same op the receiver
                            // resolved, or the switch drops their frames
                            // as op mismatches.
                            cluster.daemon(s.host).submit_send(
                                id, receiver_node, std::move(s.stream),
                                [&result, &streams_left, &cluster] {
                                    if (--streams_left == 0) {
                                        result.senders_done =
                                            cluster.simulator().now();
                                    }
                                },
                                op);
                        }
                    });
            });
    }
    cluster.run();
    return result;
}

/** Print the bench banner with experiment id and description. */
inline void
banner(const std::string& experiment, const std::string& what)
{
    std::cout << "\n==========================================================\n"
              << experiment << " — " << what << "\n"
              << "==========================================================\n";
}

/** Print a footnote line. */
inline void
note(const std::string& text)
{
    std::cout << "note: " << text << "\n";
}

}  // namespace ask::bench

#endif  // ASK_BENCH_BENCH_UTIL_H
