/**
 * Figure 11 — Task completion times of the Figure 10 job at 1.5e8
 * tuples per mapper: mean mapper TCT and mean reducer TCT per backend.
 * Paper: ASK mappers average 1.67 s (they only hand tuples to the
 * daemon) vs 15.89-17.67 s for the Spark variants; ASK reducers run
 * longer than its mappers because co-located mapper data is aggregated
 * by the local reducers.
 */
#include <iostream>

#include "apps/minimr.h"
#include "bench_util.h"

int
main(int argc, char** argv)
{
    using namespace ask;
    using apps::MrBackend;
    bench::BenchReport report("fig11_tct",
                              "mapper/reducer TCT at 1.5e8 tuples/mapper",
                              argc, argv);
    bool full = report.full();
    std::uint64_t sim_scale = report.smoke() ? 8000 : (full ? 500 : 2000);
    report.param("sim_scale", sim_scale);
    report.param("tuples_per_mapper", std::uint64_t{150000000});

    bench::banner("Figure 11", "mapper/reducer TCT at 1.5e8 tuples/mapper");

    struct Ref { MrBackend backend; const char* paper_mapper; };
    const Ref refs[] = {
        {MrBackend::kSpark, "~17.7"},
        {MrBackend::kSparkShm, "~15.9"},
        {MrBackend::kSparkRdma, "~16.8"},
        {MrBackend::kAsk, "1.67"},
    };

    TextTable t;
    t.header({"backend", "mapper TCT (s)", "paper", "reducer TCT (s)"});
    for (const Ref& ref : refs) {
        apps::MrJobSpec spec;
        spec.backend = ref.backend;
        spec.tuples_per_mapper = 150000000;
        spec.sim_scale = sim_scale;
        apps::MrJobResult r = apps::run_mr_job(spec);
        t.row({apps::mr_backend_name(ref.backend),
               fmt_double(r.mapper_tct_s, 2), ref.paper_mapper,
               fmt_double(r.reducer_tct_s, 2)});
        report.row({{"backend", apps::mr_backend_name(ref.backend)},
                    {"mapper_tct_s", r.mapper_tct_s},
                    {"paper_mapper_tct_s", ref.paper_mapper},
                    {"reducer_tct_s", r.reducer_tct_s}});
    }
    t.print(std::cout);
    report.note("paper: ASK mapper mean 1.67 s vs 15.89-17.67 s; the mapper "
                "saving outweighs the longer ASK reducer phase");
    return 0;
}
