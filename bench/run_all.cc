/**
 * Parallel driver for the per-figure bench binaries.
 *
 * Discovers every bench executable next to itself (build/bench/), then
 * runs them across worker threads, one *subprocess* per bench. Process
 * isolation is what makes the parallelism safe: each bench owns its
 * whole address space, so the per-bench seeded RNGs (ASK_SEED) and the
 * simulator singletons cannot interleave across figures, and a crash in
 * one figure cannot corrupt another's report. Each bench writes its
 * BENCH_<experiment>.json and log into its own subdirectory of
 * --out-dir, and the driver finishes by schema-checking every report
 * with bench_json_check.
 *
 *   ./build/bench/run_all --smoke --jobs 4 --out-dir /tmp/bench_out
 *   ./build/bench/run_all fig03_akvs fig08a_goodput   # just these two
 *
 * Flags: --smoke | --full  scale forwarded to every bench
 *        --jobs N          worker threads (default: hardware concurrency)
 *        --out-dir DIR     report root (default: ./run_all_out)
 *        --seed S          ASK_SEED exported to every bench (default: 1)
 * Any non-flag argument selects a subset of benches by binary name.
 */
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <sys/wait.h>

namespace fs = std::filesystem;

namespace {

/** Binaries living in bench/ that are tools, not figure benches. */
bool
is_tool(const std::string& name)
{
    return name == "run_all" || name == "bench_json_check" ||
           name == "perf_gate";
}

struct BenchJob
{
    std::string name;
    fs::path binary;
    int exit_code = -1;
    /** Human-readable failure cause: "exit N" or "signal N" — decoded
     *  from the child's wait status so a red CI log names the failing
     *  bench with its actual exit code, not a raw wait(2) word. */
    std::string status = "not run";
    double seconds = 0.0;
};

/** Shell-quote a path (the only untrusted part of the command line). */
std::string
quoted(const std::string& s)
{
    std::string out = "'";
    for (char c : s) {
        if (c == '\'')
            out += "'\\''";
        else
            out += c;
    }
    out += "'";
    return out;
}

void
run_one(BenchJob& job, const fs::path& out_root, const std::string& mode_flag,
        const std::string& seed)
{
    fs::path dir = out_root / job.name;
    fs::create_directories(dir);
    // cd into the per-bench directory so BenchReport's cwd fallback and
    // ASK_BENCH_OUT_DIR agree; stdout+stderr land in log.txt for triage.
    std::string cmd = "cd " + quoted(dir.string()) +
                      " && ASK_BENCH_OUT_DIR=" + quoted(dir.string()) +
                      " ASK_SEED=" + seed + " " +
                      quoted(job.binary.string()) + " " + mode_flag +
                      " > log.txt 2>&1";
    auto start = std::chrono::steady_clock::now();
    int rc = std::system(cmd.c_str());
    auto end = std::chrono::steady_clock::now();
    if (rc == -1) {
        job.exit_code = 127;
        job.status = "could not spawn";
    } else if (WIFEXITED(rc)) {
        job.exit_code = WEXITSTATUS(rc);
        job.status = "exit " + std::to_string(job.exit_code);
    } else if (WIFSIGNALED(rc)) {
        job.exit_code = 128 + WTERMSIG(rc);
        job.status = "signal " + std::to_string(WTERMSIG(rc));
    } else {
        job.exit_code = rc;
        job.status = "wait status " + std::to_string(rc);
    }
    job.seconds = std::chrono::duration<double>(end - start).count();
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string mode_flag = "--smoke";
    fs::path out_root = "run_all_out";
    std::string seed = "1";
    unsigned jobs = std::max(1u, std::thread::hardware_concurrency());
    std::vector<std::string> selected;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--smoke" || arg == "--full" || arg == "--default") {
            mode_flag = arg == "--default" ? "" : arg;
        } else if (arg == "--jobs" && i + 1 < argc) {
            jobs = static_cast<unsigned>(std::atoi(argv[++i]));
            jobs = std::max(1u, jobs);
        } else if (arg == "--out-dir" && i + 1 < argc) {
            out_root = argv[++i];
        } else if (arg == "--seed" && i + 1 < argc) {
            seed = argv[++i];
        } else if (arg == "--help") {
            std::cout << "usage: run_all [--smoke|--default|--full] "
                         "[--jobs N] [--out-dir DIR] [--seed S] [bench...]\n";
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "run_all: unknown flag " << arg << "\n";
            return 2;
        } else {
            selected.push_back(arg);
        }
    }

    fs::path self = fs::path(argv[0]);
    fs::path bench_dir = self.has_parent_path() ? self.parent_path()
                                                : fs::current_path();
    // The run commands cd into per-bench directories, so every path
    // baked into them must survive the working-directory change.
    bench_dir = fs::absolute(bench_dir);
    out_root = fs::absolute(out_root);

    std::vector<BenchJob> todo;
    for (const auto& entry : fs::directory_iterator(bench_dir)) {
        if (!entry.is_regular_file())
            continue;
        std::string name = entry.path().filename().string();
        if (is_tool(name))
            continue;
        auto perms = entry.status().permissions();
        if ((perms & fs::perms::owner_exec) == fs::perms::none)
            continue;
        if (!selected.empty() &&
            std::find(selected.begin(), selected.end(), name) ==
                selected.end())
            continue;
        todo.push_back({name, entry.path()});
    }
    std::sort(todo.begin(), todo.end(),
              [](const BenchJob& a, const BenchJob& b) {
                  return a.name < b.name;
              });
    if (todo.empty()) {
        std::cerr << "run_all: no bench binaries found in " << bench_dir
                  << "\n";
        return 2;
    }
    for (const std::string& want : selected) {
        if (std::none_of(todo.begin(), todo.end(), [&](const BenchJob& j) {
                return j.name == want;
            })) {
            std::cerr << "run_all: no such bench: " << want << "\n";
            return 2;
        }
    }

    fs::create_directories(out_root);
    std::cout << "run_all: " << todo.size() << " benches, " << jobs
              << " workers, mode "
              << (mode_flag.empty() ? "--default" : mode_flag) << "\n";

    std::atomic<std::size_t> next{0};
    std::mutex print_mu;
    auto worker = [&] {
        for (;;) {
            std::size_t i = next.fetch_add(1);
            if (i >= todo.size())
                return;
            run_one(todo[i], out_root, mode_flag, seed);
            std::lock_guard<std::mutex> lock(print_mu);
            std::cout << (todo[i].exit_code == 0 ? "  ok   " : "  FAIL ")
                      << todo[i].name;
            if (todo[i].exit_code != 0)
                std::cout << "  [" << todo[i].status << "]";
            std::cout << "  (" << static_cast<int>(todo[i].seconds * 1000)
                      << " ms)" << std::endl;
        }
    };
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < jobs; ++t)
        pool.emplace_back(worker);
    for (auto& t : pool)
        t.join();

    bool all_ok = true;
    std::vector<std::string> reports;
    for (const auto& job : todo) {
        if (job.exit_code != 0) {
            all_ok = false;
            std::cerr << "run_all: " << job.name << " failed ("
                      << job.status << "); see "
                      << (out_root / job.name / "log.txt") << "\n";
            continue;
        }
        fs::path report = out_root / job.name / ("BENCH_" + job.name + ".json");
        if (!fs::exists(report)) {
            all_ok = false;
            std::cerr << "run_all: " << job.name
                      << " did not write BENCH_" << job.name << ".json\n";
            continue;
        }
        reports.push_back(report.string());
    }

    // Schema-check every report in one bench_json_check invocation.
    fs::path checker = bench_dir / "bench_json_check";
    if (!reports.empty() && fs::exists(checker)) {
        std::string cmd = quoted(checker.string());
        for (const auto& r : reports)
            cmd += " " + quoted(r);
        if (std::system(cmd.c_str()) != 0) {
            all_ok = false;
            std::cerr << "run_all: bench_json_check failed\n";
        }
    }

    std::cout << (all_ok ? "run_all: all benches passed\n"
                         : "run_all: FAILURES above\n");
    return all_ok ? 0 : 1;
}
