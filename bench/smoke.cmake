# Runs every bench binary with --smoke and validates the emitted
# BENCH_*.json against the ask-bench/v1 schema. Invoked by the
# `bench_smoke` ctest target:
#
#   cmake -DBENCH_DIR=<build>/bench -DOUT_DIR=<scratch> -P smoke.cmake
#
# Every binary must exit 0 and leave exactly one schema-valid
# BENCH_<experiment>.json in OUT_DIR.

if(NOT DEFINED BENCH_DIR OR NOT DEFINED OUT_DIR)
    message(FATAL_ERROR "usage: cmake -DBENCH_DIR=... -DOUT_DIR=... -P smoke.cmake")
endif()

file(REMOVE_RECURSE "${OUT_DIR}")
file(MAKE_DIRECTORY "${OUT_DIR}")

file(GLOB benches "${BENCH_DIR}/*")
list(SORT benches)

set(ran 0)
foreach(bench IN LISTS benches)
    get_filename_component(name "${bench}" NAME)
    if(name STREQUAL "bench_json_check" OR name STREQUAL "run_all"
       OR name STREQUAL "perf_gate" OR IS_DIRECTORY "${bench}")
        continue()
    endif()
    message(STATUS "smoke: ${name} --smoke")
    execute_process(
        COMMAND "${bench}" --smoke
        WORKING_DIRECTORY "${OUT_DIR}"
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "smoke: ${name} exited ${rc}\n${out}\n${err}")
    endif()
    if(NOT EXISTS "${OUT_DIR}/BENCH_${name}.json")
        message(FATAL_ERROR "smoke: ${name} did not write BENCH_${name}.json")
    endif()
    math(EXPR ran "${ran} + 1")
endforeach()

if(ran EQUAL 0)
    message(FATAL_ERROR "smoke: no bench binaries found in ${BENCH_DIR}")
endif()

file(GLOB reports "${OUT_DIR}/BENCH_*.json")
list(SORT reports)
execute_process(
    COMMAND "${BENCH_DIR}/bench_json_check" ${reports}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "smoke: bench_json_check failed")
endif()

message(STATUS "smoke: ${ran} benches ran, JSON schema valid")
