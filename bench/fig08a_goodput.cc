/**
 * Figure 8(a) — Single-server goodput vs key-value tuples per packet
 * (1..64), compared with the ideal 8x/(8x+78) * 100 Gbps curve. Below
 * 32 tuples the host PPS limit binds (goodput grows linearly with the
 * packet size); from 32 up the wire efficiency curve binds. The PCIe
 * TLP quantization produces the paper's glitches at x = 18 and 26.
 */
#include <cstdint>
#include <functional>
#include <iostream>
#include <vector>

#include "baselines/noaggr.h"
#include "bench_util.h"
#include "net/cost_model.h"
#include "sim/engine.h"

namespace {

using namespace ask;

double
ideal_goodput(std::uint32_t x)
{
    return 8.0 * x / (8.0 * x + 78.0) * 100.0;
}

}  // namespace

int
main(int argc, char** argv)
{
    bench::BenchReport report(
        "fig08a_goodput",
        "goodput vs tuples/packet, vs ideal 8x/(8x+78)*100 Gbps", argc, argv);
    bool full = report.full();
    std::uint64_t base_tuples =
        report.smoke() ? 120000 : (full ? 4000000 : 800000);
    report.param("base_tuples_per_sender", base_tuples);

    bench::banner("Figure 8(a)",
                  "goodput vs tuples/packet, vs ideal 8x/(8x+78)*100 Gbps");

    TextTable t;
    t.header({"tuples/pkt", "goodput (Gbps)", "ideal (Gbps)", "TLPs", ""});
    net::CostModel cm;
    std::vector<std::uint32_t> xs;
    for (std::uint32_t x = 1; x <= 64; x += (x < 32 || full) ? 1 : 4)
        xs.push_back(x);

    // Every sweep point is an independent replica simulation, so the
    // sweep fans out over ASK_SIM_THREADS workers; rows are emitted in
    // x order afterwards, so the table and the report bytes are
    // identical at any thread count (the sim_parallel_ab ctest holds
    // this binary to that).
    std::vector<baselines::BulkResult> results(xs.size());
    std::vector<std::function<void()>> jobs;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        jobs.push_back([&results, &xs, base_tuples, i] {
            baselines::BulkSpec spec;
            spec.payload_bytes = 8 * xs[i];
            spec.sender_channels = 4;
            // Fixed transfer duration across x: equal simulated work.
            spec.tuples_per_sender = static_cast<std::uint64_t>(
                static_cast<double>(base_tuples) * (xs[i] / 32.0 + 0.3));
            results[i] = baselines::run_noaggr(spec);
        });
    }
    sim::ParallelEngine engine;
    engine.run_isolated(jobs);

    for (std::size_t i = 0; i < xs.size(); ++i) {
        std::uint32_t x = xs[i];
        const baselines::BulkResult& r = results[i];
        std::uint32_t tlps = cm.tlp_count(40 + 8ull * x);
        bool glitch = x > 1 && tlps > cm.tlp_count(40 + 8ull * (x - 1));
        t.row({std::to_string(x), fmt_double(r.goodput_gbps, 2),
               fmt_double(ideal_goodput(x), 2), std::to_string(tlps),
               glitch ? "<- TLP step" : ""});
        report.row({{"tuples_per_packet", x},
                    {"goodput_gbps", r.goodput_gbps},
                    {"ideal_gbps", ideal_goodput(x)},
                    {"tlps", tlps},
                    {"tlp_step", glitch}});
    }
    t.print(std::cout);
    report.note("paper: linear PPS-bound growth below 32 tuples/packet, "
                "matches the ideal curve above; glitches at 18 and 26 from "
                "PCIe TLP quantization");
    return 0;
}
