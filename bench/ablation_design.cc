/**
 * Ablation — the design choices DESIGN.md calls out:
 *  1. Compact W-bit `seen` vs the reference 2W-bit design: switch SRAM
 *     per data channel (paper §3.3 claims 50 % savings) and end-to-end
 *     equivalence under loss.
 *  2. Shadow copies on/off at a fixed aggregator budget (the Fig. 9
 *     mechanism, summarized at one operating point).
 *  3. Vectorization degree: goodput at 1 vs 32 tuples/packet (the
 *     strawman gap of §2.3).
 */
#include <cstdint>
#include <iostream>

#include "ask/cluster.h"
#include "bench_util.h"
#include "net/cost_model.h"
#include "pisa/pisa_switch.h"
#include "workload/generators.h"

namespace {

using namespace ask;

double
switch_fraction(bool shadow, const core::KvStream& stream)
{
    core::ClusterConfig cc;
    cc.num_hosts = 2;
    cc.ask.max_hosts = 2;
    cc.ask.medium_groups = 0;
    cc.ask.shadow_copies = shadow;
    cc.ask.swap_threshold_packets = shadow ? 256 : 0;
    core::AskCluster cluster(cc);
    cluster.run_task(1, 0, {{1, stream}}, {.region_len = 32});
    const core::SwitchAggStats& sw = cluster.switch_stats();
    return 100.0 * static_cast<double>(sw.tuples_aggregated) /
           static_cast<double>(sw.tuples_in);
}

std::size_t
seen_sram_per_channel(bool compact)
{
    sim::Simulator simulator;
    net::Network network(simulator);
    pisa::PisaSwitch sw(network);
    core::AskConfig cfg;
    cfg.compact_seen = compact;
    core::AskSwitchProgram program(cfg, sw);
    std::size_t bytes = 0;
    for (const char* name : {"seen", "seen_even", "seen_odd"}) {
        if (auto* arr = sw.pipeline().find_array(name))
            bytes += arr->sram_bytes();
    }
    return bytes / cfg.max_channels();
}

}  // namespace

int
main(int argc, char** argv)
{
    bench::BenchReport report(
        "ablation_design", "seen compaction, shadow copies, vectorization",
        argc, argv);
    std::uint64_t tuples = report.smoke() ? 100000 : 400000;
    report.param("shadow_tuples", tuples);

    bench::banner("Ablation", "seen compaction, shadow copies, vectorization");

    // 1. seen SRAM.
    TextTable seen;
    seen.header({"seen design", "SRAM/channel (bytes)"});
    std::size_t compact_bytes = seen_sram_per_channel(true);
    std::size_t reference_bytes = seen_sram_per_channel(false);
    seen.row({"compact (W bits)", std::to_string(compact_bytes)});
    seen.row({"reference (2W bits)", std::to_string(reference_bytes)});
    std::cout << "\n1. receive-window state (W = 256)\n";
    seen.print(std::cout);
    report.row({{"section", "seen_sram"},
                {"compact_bytes_per_channel", std::uint64_t{compact_bytes}},
                {"reference_bytes_per_channel",
                 std::uint64_t{reference_bytes}}});
    report.note("paper §3.3: the compact design halves the seen footprint; "
                "behavioral equivalence is property-tested in "
                "tests/seen_window_test.cc");

    // 2. shadow copies at a fixed aggregator budget.
    workload::ZipfGenerator zipf(1 << 13, 1.0, 13);
    core::KvStream stream = zipf.generate(tuples);
    std::cout << "\n2. hot-key prioritization at a 1/8 aggregator/key ratio\n";
    TextTable shadow;
    shadow.header({"shadow copies", "tuples aggregated on switch (%)"});
    double off_pct = switch_fraction(false, stream);
    double on_pct = switch_fraction(true, stream);
    shadow.row({"off (FCFS only)", fmt_double(off_pct, 2)});
    shadow.row({"on (periodic swap)", fmt_double(on_pct, 2)});
    shadow.print(std::cout);
    report.row({{"section", "shadow_copies"},
                {"off_pct", off_pct},
                {"on_pct", on_pct}});

    // 3. vectorization degree: ideal goodput at the wire.
    std::cout << "\n3. vectorization: wire efficiency by tuples/packet\n";
    TextTable vec;
    vec.header({"tuples/packet", "ideal goodput (Gbps)"});
    for (std::uint32_t x : {1u, 8u, 32u, 64u}) {
        double gbps = 8.0 * x / (8.0 * x + 78.0) * 100.0;
        vec.row({std::to_string(x), fmt_double(gbps, 2)});
        report.row({{"section", "vectorization"},
                    {"tuples_per_packet", x},
                    {"ideal_goodput_gbps", gbps}});
    }
    vec.print(std::cout);
    report.note("paper §2.3: single-tuple packets cap goodput at 9.76 Gbps "
                "even at a 100 Gbps line rate");
    return 0;
}
