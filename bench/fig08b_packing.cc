/**
 * Figure 8(b) — CDF of non-blank (valid) key-value tuples per packet
 * for packets built from different datasets. Uniform short keys fill
 * nearly every packet; skewed corpora leave slots blank (the key-space
 * partition can only place one tuple per slot queue per packet). Paper:
 * the worst trace (yelp) still averages 16.91 valid tuples per packet.
 */
#include <cstdint>
#include <iostream>

#include "ask/packet_builder.h"
#include "bench_util.h"
#include "common/stats.h"
#include "workload/generators.h"
#include "workload/text_corpus.h"

namespace {

using namespace ask;

Samples
packing_distribution(const core::KeySpace& ks, const core::KvStream& stream)
{
    core::PacketBuilder builder(ks);
    builder.enqueue(stream);
    Samples s;
    while (auto built = builder.next_data())
        s.add(built->valid_tuples);
    return s;
}

}  // namespace

int
main(int argc, char** argv)
{
    bench::BenchReport report("fig08b_packing",
                              "CDF of valid tuples per packet, by dataset",
                              argc, argv);
    bool full = report.full();
    std::uint64_t tuples = report.smoke() ? 100000 : (full ? 3000000 : 400000);
    report.param("tuples", tuples);

    bench::banner("Figure 8(b)",
                  "CDF of valid tuples per packet, by dataset");

    TextTable t;
    t.header({"dataset", "mean", "p10", "p50", "p90", "packets"});

    // Uniform 4-byte keys: the all-short slot layout (32 short AAs).
    {
        core::AskConfig cfg;
        cfg.medium_groups = 0;
        core::KeySpace ks(cfg);
        workload::UniformGenerator gen(1 << 16, 3);
        Samples s = packing_distribution(ks, gen.generate(tuples));
        t.row({"Uniform", fmt_double(s.mean(), 2),
               fmt_double(s.quantile(0.1), 1), fmt_double(s.quantile(0.5), 1),
               fmt_double(s.quantile(0.9), 1), std::to_string(s.count())});
        report.row({{"dataset", "uniform"},
                    {"mean", s.mean()},
                    {"p10", s.quantile(0.1)},
                    {"p50", s.quantile(0.5)},
                    {"p90", s.quantile(0.9)},
                    {"packets", s.count()}});
    }

    // Corpora: the default layout (16 short AAs + 8 medium groups).
    core::AskConfig cfg;
    core::KeySpace ks(cfg);
    for (const auto& profile : workload::all_corpus_profiles()) {
        workload::CorpusProfile p = profile;
        p.vocabulary /= full ? 2 : 8;
        workload::TextCorpus corpus(p, 5);
        Samples s = packing_distribution(ks, corpus.generate(tuples));
        t.row({profile.name, fmt_double(s.mean(), 2),
               fmt_double(s.quantile(0.1), 1), fmt_double(s.quantile(0.5), 1),
               fmt_double(s.quantile(0.9), 1), std::to_string(s.count())});
        report.row({{"dataset", profile.name},
                    {"mean", s.mean()},
                    {"p10", s.quantile(0.1)},
                    {"p50", s.quantile(0.5)},
                    {"p90", s.quantile(0.9)},
                    {"packets", s.count()}});
    }
    t.print(std::cout);
    report.note("paper: Uniform has almost no blank slots (32 valid/packet); "
                "the worst trace (yelp) still averages 16.91 valid tuples");
    return 0;
}
