/**
 * Throughput regression gate over committed bench baselines.
 *
 * bench/baselines/ holds BENCH_<experiment>.json reports (schema
 * ask-bench/v1) captured from `--smoke` runs and committed with the
 * code. For each baseline, the gate re-runs the matching bench binary
 * with --smoke, extracts the throughput metrics both documents share,
 * and fails when the current value falls more than --threshold percent
 * below the committed one. Smoke runs compute throughput from
 * *simulated* time, so the comparison is deterministic — a red gate
 * means the code changed behavior, not that CI had a noisy neighbor
 * (wall-clock microbenchmarks are deliberately excluded from
 * baselines for the same reason).
 *
 *   ./build/bench/perf_gate --baseline-dir bench/baselines
 *   ./build/bench/perf_gate --baseline-dir bench/baselines --update
 *
 * Flags: --baseline-dir DIR  committed reports (required)
 *        --bench-dir DIR     bench binaries (default: next to perf_gate)
 *        --out-dir DIR       scratch for fresh runs (default: ./perf_gate_out)
 *        --threshold PCT     allowed regression, percent (default: 5)
 *        --update            overwrite baselines with the fresh reports
 */
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"

namespace fs = std::filesystem;
using ask::obs::Json;

namespace {

/**
 * Row keys that carry a throughput-class value (higher is better).
 * Keys carrying latencies, counts, or ratios are deliberately not
 * gated: the gate answers "did aggregation get slower", nothing else.
 */
const char* const kThroughputKeys[] = {
    "akvs",             // fig03: aggregation throughput (M tuples/s)
    "goodput_gbps",     // fig08a/fig13a: application goodput
    "throughput_gbps",  // fig13a: on-wire throughput
    "tlps",             // fig08a: tuple-level packets per second
    "determinism_ok",   // sim_parallel: 1 iff every thread count matched
                        // the 1-thread digest (machine-independent)
};

std::optional<Json>
load_json(const fs::path& path, std::string* why)
{
    std::ifstream in(path);
    if (!in) {
        *why = "cannot open " + path.string();
        return std::nullopt;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    std::optional<Json> doc = Json::parse(buf.str(), &error);
    if (!doc)
        *why = path.string() + ": " + error;
    return doc;
}

/** Max of `key` over all rows; nullopt when no row carries it. */
std::optional<double>
metric_max(const Json& doc, const std::string& key)
{
    const Json* rows = doc.find("rows");
    if (!rows || !rows->is_array())
        return std::nullopt;
    std::optional<double> best;
    for (std::size_t i = 0; i < rows->size(); ++i) {
        const Json* v = rows->at(i).find(key);
        if (v && v->is_number())
            best = std::max(best.value_or(v->as_double()), v->as_double());
    }
    return best;
}

std::string
quoted(const std::string& s)
{
    std::string out = "'";
    for (char c : s) {
        if (c == '\'')
            out += "'\\''";
        else
            out += c;
    }
    out += "'";
    return out;
}

struct GateResult
{
    bool ok = true;
    int compared = 0;
};

GateResult
gate_one(const std::string& experiment, const Json& baseline,
         const Json& current, double threshold_pct)
{
    GateResult res;
    for (const char* key : kThroughputKeys) {
        std::optional<double> base = metric_max(baseline, key);
        if (!base)
            continue;
        std::optional<double> cur = metric_max(current, key);
        if (!cur) {
            std::cerr << "perf_gate: " << experiment << ": metric '" << key
                      << "' present in baseline but missing from the "
                         "fresh run — schema drift; re-capture with "
                         "--update\n";
            res.ok = false;
            continue;
        }
        double floor = *base * (1.0 - threshold_pct / 100.0);
        double delta_pct = *base == 0.0 ? 0.0 : (*cur / *base - 1.0) * 100.0;
        bool pass = *cur >= floor;
        std::cout << "  " << (pass ? "ok   " : "FAIL ") << experiment << "."
                  << key << ": baseline " << *base << ", current " << *cur
                  << " (" << (delta_pct >= 0 ? "+" : "") << delta_pct
                  << "%)\n";
        if (!pass)
            res.ok = false;
        ++res.compared;
    }
    if (res.compared == 0) {
        std::cerr << "perf_gate: " << experiment
                  << ": baseline carries no gated throughput metric\n";
        res.ok = false;
    }
    return res;
}

/** params.<key> of `doc` as a double, when present and numeric. */
std::optional<double>
param_number(const Json& doc, const char* key)
{
    const Json* params = doc.find("params");
    if (!params)
        return std::nullopt;
    const Json* v = params->find(key);
    if (!v || !v->is_number())
        return std::nullopt;
    return v->as_double();
}

/**
 * The wall-clock speedup rule: a report whose params declare a
 * speedup_floor promises that `speedup` reaches that floor at
 * speedup_threads workers — but only on machines that can physically
 * show it. The fresh run records its own core count in params.cores;
 * with fewer cores than speedup_threads the floor is reported as
 * skipped, never faked, while the determinism_ok metric above stays
 * enforced everywhere (it does not depend on hardware).
 */
GateResult
gate_speedup_floor(const std::string& experiment, const Json& current)
{
    GateResult res;
    std::optional<double> floor = param_number(current, "speedup_floor");
    if (!floor)
        return res;
    double need_cores = param_number(current, "speedup_threads").value_or(0);
    double cores = param_number(current, "cores").value_or(0);
    if (cores < need_cores) {
        std::cout << "  skip " << experiment << ".speedup: floor " << *floor
                  << "x needs " << need_cores << " cores, machine has "
                  << cores << "\n";
        return res;
    }
    std::optional<double> best = metric_max(current, "speedup");
    if (!best) {
        std::cerr << "perf_gate: " << experiment
                  << ": params promise a speedup_floor but no row carries "
                     "a 'speedup' metric\n";
        res.ok = false;
        return res;
    }
    bool pass = *best >= *floor;
    std::cout << "  " << (pass ? "ok   " : "FAIL ") << experiment
              << ".speedup: floor " << *floor << "x, measured " << *best
              << "x at " << cores << " cores\n";
    res.ok = pass;
    ++res.compared;
    return res;
}

}  // namespace

int
main(int argc, char** argv)
{
    fs::path baseline_dir;
    fs::path bench_dir;
    fs::path out_root = "perf_gate_out";
    double threshold_pct = 5.0;
    bool update = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--baseline-dir" && i + 1 < argc) {
            baseline_dir = argv[++i];
        } else if (arg == "--bench-dir" && i + 1 < argc) {
            bench_dir = argv[++i];
        } else if (arg == "--out-dir" && i + 1 < argc) {
            out_root = argv[++i];
        } else if (arg == "--threshold" && i + 1 < argc) {
            threshold_pct = std::atof(argv[++i]);
        } else if (arg == "--update") {
            update = true;
        } else if (arg == "--help") {
            std::cout << "usage: perf_gate --baseline-dir DIR [--bench-dir "
                         "DIR] [--out-dir DIR] [--threshold PCT] "
                         "[--update]\n";
            return 0;
        } else {
            std::cerr << "perf_gate: unknown argument " << arg << "\n";
            return 2;
        }
    }
    if (baseline_dir.empty()) {
        std::cerr << "perf_gate: --baseline-dir is required\n";
        return 2;
    }
    if (bench_dir.empty()) {
        fs::path self = fs::path(argv[0]);
        bench_dir = self.has_parent_path() ? self.parent_path()
                                           : fs::current_path();
    }
    // The run commands cd into per-experiment directories, so every
    // path baked into them must survive the working-directory change.
    bench_dir = fs::absolute(bench_dir);
    baseline_dir = fs::absolute(baseline_dir);
    out_root = fs::absolute(out_root);

    std::vector<fs::path> baselines;
    for (const auto& entry : fs::directory_iterator(baseline_dir)) {
        std::string name = entry.path().filename().string();
        if (name.rfind("BENCH_", 0) == 0 &&
            entry.path().extension() == ".json")
            baselines.push_back(entry.path());
    }
    std::sort(baselines.begin(), baselines.end());
    if (baselines.empty()) {
        std::cerr << "perf_gate: no BENCH_*.json baselines in "
                  << baseline_dir << "\n";
        return 2;
    }

    bool all_ok = true;
    int total_compared = 0;
    for (const fs::path& base_path : baselines) {
        std::string stem = base_path.stem().string();  // BENCH_<experiment>
        std::string experiment = stem.substr(std::strlen("BENCH_"));
        fs::path binary = bench_dir / experiment;
        if (!fs::exists(binary)) {
            std::cerr << "perf_gate: baseline " << base_path.filename()
                      << " has no bench binary " << binary << "\n";
            all_ok = false;
            continue;
        }

        fs::path dir = out_root / experiment;
        fs::create_directories(dir);
        std::string cmd = "cd " + quoted(dir.string()) +
                          " && ASK_BENCH_OUT_DIR=" + quoted(dir.string()) +
                          " " + quoted(binary.string()) +
                          " --smoke > log.txt 2>&1";
        std::cout << "perf_gate: running " << experiment << " --smoke\n";
        if (std::system(cmd.c_str()) != 0) {
            std::cerr << "perf_gate: " << experiment << " failed; see "
                      << (dir / "log.txt") << "\n";
            all_ok = false;
            continue;
        }

        fs::path fresh_path = dir / base_path.filename();
        std::string why;
        std::optional<Json> baseline = load_json(base_path, &why);
        if (!baseline) {
            std::cerr << "perf_gate: " << why << "\n";
            all_ok = false;
            continue;
        }
        std::optional<Json> current = load_json(fresh_path, &why);
        if (!current) {
            std::cerr << "perf_gate: " << why << "\n";
            all_ok = false;
            continue;
        }

        GateResult res =
            gate_one(experiment, *baseline, *current, threshold_pct);
        all_ok = all_ok && res.ok;
        total_compared += res.compared;

        GateResult sres = gate_speedup_floor(experiment, *current);
        all_ok = all_ok && sres.ok;
        total_compared += sres.compared;

        if (update) {
            fs::copy_file(fresh_path, base_path,
                          fs::copy_options::overwrite_existing);
            std::cout << "  updated " << base_path << "\n";
        }
    }

    std::cout << "perf_gate: " << total_compared << " metrics compared, "
              << (all_ok ? "all within " : "REGRESSIONS beyond ")
              << threshold_pct << "%\n";
    return all_ok ? 0 : 1;
}
