/**
 * Figure 9 — Effectiveness of hot-key-agnostic prioritization: fraction
 * of key-value tuples aggregated by the switch as the aggregator pool
 * shrinks relative to the number of distinct keys, (a) without and
 * (b) with the shadow-copy mechanism, on Zipf / Zipf-reverse / Uniform
 * key streams. Paper: with prioritization, a 1/16 aggregator-to-key
 * ratio still aggregates 95.85 % of tuples on the Zipf stream.
 */
#include <cstdint>
#include <iostream>

#include "ask/cluster.h"
#include "bench_util.h"
#include "workload/generators.h"

namespace {

using namespace ask;

double
switch_fraction(bool prioritize, std::uint32_t region_per_aa,
                const core::KvStream& stream)
{
    core::ClusterConfig cc;
    cc.num_hosts = 2;
    cc.ask.max_hosts = 2;
    cc.ask.medium_groups = 0;  // numeric keys: all AAs short
    cc.ask.shadow_copies = prioritize;
    cc.ask.swap_threshold_packets = prioritize ? 256 : 0;
    core::AskCluster cluster(cc);

    core::TaskResult r = cluster.run_task(
        1, 0, {{1, stream}}, {.region_len = region_per_aa});
    (void)r;
    const core::SwitchAggStats& sw = cluster.switch_stats();
    return 100.0 * static_cast<double>(sw.tuples_aggregated) /
           static_cast<double>(sw.tuples_in);
}

}  // namespace

int
main(int argc, char** argv)
{
    bench::BenchReport report("fig09_hotkey",
                              "switch-aggregated tuple % vs aggregator/key "
                              "ratio, +/- hot-key prioritization",
                              argc, argv);
    bool full = report.full();
    // Paper: 2^16 distinct keys, ~1e8 tuples; scaled here with the same
    // aggregator-to-distinct-key ratios.
    std::uint64_t distinct =
        report.smoke() ? 1 << 11 : (full ? 1 << 15 : 1 << 13);
    std::uint64_t tuples = report.smoke() ? 150000 : (full ? 8000000 : 1000000);
    report.param("distinct_keys", distinct);
    report.param("tuples", tuples);

    bench::banner("Figure 9", "switch-aggregated tuple % vs aggregator/key "
                              "ratio, +/- hot-key prioritization");

    workload::ZipfGenerator zipf(distinct, 1.0, 31);
    workload::ZipfGenerator zipf_r(distinct, 1.0, 31);
    workload::UniformGenerator uni(distinct, 31);
    core::KvStream zipf_hot = zipf.generate(tuples, workload::KeyOrder::kHotFirst);
    core::KvStream zipf_cold =
        zipf_r.generate(tuples, workload::KeyOrder::kColdFirst);
    core::KvStream uniform = uni.generate(tuples);

    for (bool prioritize : {false, true}) {
        std::cout << "\n(" << (prioritize ? "b) with" : "a) without")
                  << " prioritization\n";
        TextTable t;
        t.header({"aggr/key ratio", "Zipf (%)", "Zipf-reverse (%)",
                  "Uniform (%)"});
        for (int shift = 8; shift >= 0; shift -= 2) {
            // total aggregators (across the short AAs, per active copy)
            // = distinct >> shift.
            std::uint64_t total = distinct >> shift;
            std::uint32_t per_aa = static_cast<std::uint32_t>(
                std::max<std::uint64_t>(1, total / 32));
            std::string ratio =
                shift == 0 ? "1" : "1/" + std::to_string(1u << shift);
            double zipf_pct = switch_fraction(prioritize, per_aa, zipf_hot);
            double zipf_r_pct = switch_fraction(prioritize, per_aa, zipf_cold);
            double uni_pct = switch_fraction(prioritize, per_aa, uniform);
            t.row({ratio, fmt_double(zipf_pct, 2), fmt_double(zipf_r_pct, 2),
                   fmt_double(uni_pct, 2)});
            report.row({{"prioritization", prioritize},
                        {"aggr_key_ratio", ratio},
                        {"zipf_pct", zipf_pct},
                        {"zipf_reverse_pct", zipf_r_pct},
                        {"uniform_pct", uni_pct}});
        }
        t.print(std::cout);
    }
    report.note("paper: without prioritization cold keys pin aggregators for "
                "the task lifetime; with it, ratio 1/16 reaches 95.85 % on Zipf");
    return 0;
}
