/**
 * Microbenchmarks (google-benchmark) of the ASK hot paths: hashing,
 * packet encode/decode, receive-window operations, packet building,
 * the full switch-program pass, and host-side aggregation.
 */
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "ask/controller.h"
#include "bench_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ask/packet_builder.h"
#include "ask/seen_window.h"
#include "ask/switch_program.h"
#include "ask/wire.h"
#include "common/hash.h"
#include "common/random.h"
#include "common/string_util.h"
#include "net/network.h"
#include "pisa/pisa_switch.h"
#include "sim/simulator.h"
#include "workload/generators.h"

namespace {

using namespace ask;

void
BM_Hash64(benchmark::State& state)
{
    std::string key = "benchmark-key-123";
    std::uint64_t acc = 0;
    for (auto _ : state)
        acc ^= hash64(key, hash_seeds::kAggregatorAddress);
    benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_Hash64);

void
BM_HeaderRoundTrip(benchmark::State& state)
{
    core::AskHeader hdr;
    hdr.channel_id = 3;
    hdr.task_id = 9;
    hdr.seq = 1234;
    hdr.bitmap = 0xffffffff;
    for (auto _ : state) {
        auto frame = core::make_frame(hdr, 256);
        auto parsed = core::parse_header(frame);
        benchmark::DoNotOptimize(parsed);
    }
}
BENCHMARK(BM_HeaderRoundTrip);

void
BM_CompactSeenObserve(benchmark::State& state)
{
    core::CompactSeen seen(256);
    core::Seq s = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(seen.observe(s++));
}
BENCHMARK(BM_CompactSeenObserve);

void
BM_PacketBuilderDrain(benchmark::State& state)
{
    core::AskConfig cfg;
    cfg.medium_groups = 0;
    core::KeySpace ks(cfg);
    Rng rng = seeded_rng("micro_hotpaths", 1);
    core::KvStream stream;
    for (int i = 0; i < 4096; ++i)
        stream.push_back({u64_key(rng.next_below(100000)), 1});
    for (auto _ : state) {
        core::PacketBuilder builder(ks);
        builder.enqueue(stream);
        std::uint64_t packets = 0;
        while (auto built = builder.next_data())
            ++packets;
        benchmark::DoNotOptimize(packets);
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_PacketBuilderDrain);

/** One full DATA packet pass through the ASK switch program, with the
 *  task region bound to `op`. */
void
switch_pass_bench(benchmark::State& state, core::ReduceOp op)
{
    sim::Simulator simulator;
    net::Network network(simulator);
    pisa::PisaSwitch sw(network);
    core::AskConfig cfg;
    cfg.medium_groups = 0;
    cfg.max_hosts = 2;
    cfg.channels_per_host = 1;
    core::AskSwitchProgram program(cfg, sw);
    core::AskSwitchController controller(program);
    controller.allocate(1, 1024, op);

    core::KeySpace ks(cfg);
    core::PacketBuilder builder(ks);
    Rng rng = seeded_rng("micro_hotpaths", 2);
    for (int i = 0; i < 32; ++i)
        builder.enqueue({u64_key(rng.next_below(4096)), 1});
    auto built = builder.next_data();

    core::AskHeader hdr;
    hdr.type = core::PacketType::kData;
    hdr.channel_id = 0;
    hdr.task_id = 1;
    hdr.op = op;
    hdr.bitmap = built->bitmap;
    auto frame = core::make_frame(hdr, cfg.payload_bytes());
    for (std::uint32_t i = 0; i < cfg.num_aas; ++i) {
        if (built->bitmap & (1ULL << i))
            core::write_slot(frame, i, built->slots[i]);
    }

    class NullEmitter : public pisa::Emitter
    {
      public:
        void emit(net::NodeId, net::Packet) override {}
    } emitter;

    core::Seq seq = 0;
    for (auto _ : state) {
        core::rewrite_bitmap(frame, built->bitmap);
        net::Packet pkt;
        pkt.data = frame;
        // Fresh seq each pass to stay on the aggregation path.
        pkt.data[20 + 8] = static_cast<std::uint8_t>(seq);
        pkt.data[20 + 9] = static_cast<std::uint8_t>(seq >> 8);
        pkt.data[20 + 10] = static_cast<std::uint8_t>(seq >> 16);
        ++seq;
        sw.pipeline().begin_pass();
        program.process(std::move(pkt), emitter);
    }
    state.SetItemsProcessed(state.iterations() * 32);
}

/** The gated name: the sum pass, now through the generalized per-op
 *  dispatch. Compare against BM_AluCombine* below for the isolated
 *  dispatch cost. */
void
BM_SwitchPass(benchmark::State& state)
{
    switch_pass_bench(state, core::ReduceOp::kAdd);
}
BENCHMARK(BM_SwitchPass);

void
BM_SwitchPassMax(benchmark::State& state)
{
    switch_pass_bench(state, core::ReduceOp::kMax);
}
BENCHMARK(BM_SwitchPassMax);

/**
 * A/B for the cost the generalized reduction added to the switch merge:
 * the exact ALU combine the AA rmw lambda runs, hardwired `+` (the old
 * sum-only code) vs apply_op on a runtime ReduceOp (the new dispatch).
 * The per-value delta here, times 32 values, is the dispatch overhead
 * per BM_SwitchPass iteration — observed ~1.7%, under the 2% budget.
 */
void
BM_AluCombineFixedAdd(benchmark::State& state)
{
    Rng rng = seeded_rng("micro_hotpaths", 4);
    std::vector<core::Value> vals(4096);
    for (auto& v : vals)
        v = static_cast<core::Value>(rng.next_below(1u << 20));
    core::Value acc = 0;
    for (auto _ : state) {
        // Per-value DoNotOptimize on both sides of the A/B: the real
        // combine runs inside an AA rmw (load-modify-store), so neither
        // variant may vectorize or batch across values.
        for (core::Value v : vals) {
            acc += v;
            benchmark::DoNotOptimize(acc);
        }
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_AluCombineFixedAdd);

void
BM_AluCombineDispatch(benchmark::State& state)
{
    Rng rng = seeded_rng("micro_hotpaths", 4);
    std::vector<core::Value> vals(4096);
    for (auto& v : vals)
        v = static_cast<core::Value>(rng.next_below(1u << 20));
    // Opaque to the optimizer, as region.op is to the switch program.
    core::ReduceOp op = core::ReduceOp::kAdd;
    benchmark::DoNotOptimize(op);
    core::Value acc = 0;
    for (auto _ : state) {
        for (core::Value v : vals) {
            acc = core::apply_op(op, acc, v);
            benchmark::DoNotOptimize(acc);
        }
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_AluCombineDispatch);

void
BM_HostAggregate(benchmark::State& state)
{
    Rng rng = seeded_rng("micro_hotpaths", 3);
    core::KvStream stream;
    for (int i = 0; i < 4096; ++i)
        stream.push_back({u64_key(rng.next_below(1024)), 1});
    for (auto _ : state) {
        core::AggregateMap acc;
        core::aggregate_into(acc, stream, core::AggOp::kAdd);
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_HostAggregate);

void
BM_ZipfSample(benchmark::State& state)
{
    workload::ZipfGenerator z(1 << 16, 1.0, 4);
    for (auto _ : state)
        benchmark::DoNotOptimize(z.sample_rank());
}

BENCHMARK(BM_ZipfSample);

void
BM_LogHistogramObserve(benchmark::State& state)
{
    obs::LogHistogram h;
    std::uint64_t v = 1;
    for (auto _ : state) {
        h.observe(v);
        v = v * 6364136223846793005ULL + 1442695040888963407ULL;
    }
    benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_LogHistogramObserve);

/** One enabled-path trace record (ring write). In builds configured
 *  with -DASK_ENABLE_TRACE=OFF this measures the compiled-out macro. */
void
BM_TraceRecord(benchmark::State& state)
{
    obs::PacketTracer tracer;
    tracer.set_enabled(true);
    obs::PacketTracer* t = &tracer;
    std::int64_t now = 0;
    std::uint32_t seq = 0;
    for (auto _ : state) {
        ASK_TRACE(t, now++, 1, 0, seq++, obs::TraceStage::kTx, 1, 0);
        benchmark::DoNotOptimize(t);
    }
}
BENCHMARK(BM_TraceRecord);

/** Console reporter that also captures every run into the JSON report. */
class JsonCaptureReporter : public benchmark::ConsoleReporter
{
  public:
    explicit JsonCaptureReporter(bench::BenchReport& report) : report_(report)
    {
    }

    void ReportRuns(const std::vector<Run>& runs) override
    {
        for (const Run& run : runs) {
            if (run.error_occurred || run.run_type != Run::RT_Iteration)
                continue;
            obs::Json row = obs::Json::object();
            row.set("benchmark", run.benchmark_name());
            row.set("real_time_per_iter", run.GetAdjustedRealTime());
            row.set("cpu_time_per_iter", run.GetAdjustedCPUTime());
            row.set("time_unit",
                    benchmark::GetTimeUnitString(run.time_unit));
            row.set("iterations",
                    static_cast<std::uint64_t>(run.iterations));
            auto items = run.counters.find("items_per_second");
            if (items != run.counters.end())
                row.set("items_per_second", items->second.value);
            report_.row_json(std::move(row));
        }
        ConsoleReporter::ReportRuns(runs);
    }

  private:
    bench::BenchReport& report_;
};

}  // namespace

int
main(int argc, char** argv)
{
    ask::bench::BenchReport report(
        "micro_hotpaths", "hot-path microbenchmarks (google-benchmark)", argc,
        argv);

    // google-benchmark rejects flags it does not know: scrub --smoke and
    // --full from argv before Initialize, and in smoke mode cap the
    // per-benchmark measuring time so the whole binary runs in seconds.
    std::vector<char*> args;
    args.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") != 0 &&
            std::strcmp(argv[i], "--full") != 0)
            args.push_back(argv[i]);
    }
    std::string min_time = "--benchmark_min_time=0.01s";
    if (report.smoke())
        args.push_back(min_time.data());
    int bench_argc = static_cast<int>(args.size());
    benchmark::Initialize(&bench_argc, args.data());

    JsonCaptureReporter reporter(report);
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    return 0;
}
