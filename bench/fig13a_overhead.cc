/**
 * Figure 13(a) — Bandwidth overhead: aggregation throughput (goodput +
 * header overhead) of ASK vs pure network transmission (NoAggr, MTU
 * packets) as the number of data channels grows. Paper: both saturate
 * the 100 Gbps NIC, with goodputs 73.96 (ASK) vs 91.75 Gbps (NoAggr);
 * NoAggr needs 2 cores, ASK 4.
 */
#include <cstdint>
#include <iostream>

#include "ask/cluster.h"
#include "baselines/noaggr.h"
#include "bench_util.h"
#include "common/logging.h"
#include "workload/generators.h"

namespace {

using namespace ask;

struct Rates
{
    double goodput;
    double throughput;
};

Rates
ask_rates(std::uint32_t channels, std::uint64_t tuples)
{
    core::ClusterConfig cc;
    cc.num_hosts = 2;
    cc.ask.max_hosts = 2;
    cc.ask.channels_per_host = channels;
    cc.ask.medium_groups = 0;
    core::AskCluster cluster(cc);

    // One task per channel (balanced ids) so the sender saturates all
    // its cores, as the paper's bulk-transfer job does.
    std::uint32_t parts = channels;
    auto ids = bench::balanced_task_ids(1, channels, parts);
    std::uint64_t per_part = tuples / parts;
    std::vector<bench::StreamingTask> tasks;
    const core::KeySpace& ks = cluster.daemon(1).key_space();
    for (std::uint32_t p = 0; p < parts; ++p) {
        tasks.push_back({ids[p], 0,
                         {{1, bench::balanced_uniform_stream(
                                  ks, 32, per_part,
                                  static_cast<std::uint64_t>(p) << 20)}},
                         {.region_len = cc.ask.copy_size() / parts}});
    }
    bench::StreamingResult sr =
        bench::run_streaming_tasks(cluster, std::move(tasks));

    net::NodeId sender = cluster.daemon(1).node_id();
    std::uint64_t wire =
        cluster.network().link_bytes(sender, cluster.switch_node());
    Nanoseconds fixed = cc.mgmt_latency_ns + cc.notify_latency_ns;
    Nanoseconds elapsed = std::max<Nanoseconds>(sr.senders_done - fixed, 1);
    Rates out;
    out.goodput =
        units::gbps(static_cast<double>(per_part * parts) * 8.0, elapsed);
    out.throughput = units::gbps(static_cast<double>(wire), elapsed);
    return out;
}

}  // namespace

int
main(int argc, char** argv)
{
    bench::BenchReport report(
        "fig13a_overhead", "throughput/goodput vs data channels: ASK vs NoAggr",
        argc, argv);
    bool full = report.full();
    std::uint64_t ask_tuples =
        report.smoke() ? 600000 : (full ? 16000000 : 3000000);
    std::uint64_t noaggr_tuples =
        report.smoke() ? 300000 : (full ? 4000000 : 1500000);
    report.param("ask_tuples", ask_tuples);
    report.param("noaggr_tuples_per_sender", noaggr_tuples);

    bench::banner("Figure 13(a)",
                  "throughput/goodput vs data channels: ASK vs NoAggr");

    TextTable t;
    t.header({"solution", "channels", "goodput (Gbps)", "throughput (Gbps)"});
    for (std::uint32_t ch : {1u, 2u, 4u}) {
        baselines::BulkSpec spec;
        spec.sender_channels = ch;
        spec.tuples_per_sender = noaggr_tuples;
        baselines::BulkResult r = baselines::run_noaggr(spec);
        t.row({"NoAggr", std::to_string(ch), fmt_double(r.goodput_gbps, 2),
               fmt_double(r.throughput_gbps, 2)});
        report.row({{"solution", "noaggr"},
                    {"channels", ch},
                    {"goodput_gbps", r.goodput_gbps},
                    {"throughput_gbps", r.throughput_gbps}});
    }
    for (std::uint32_t ch : {1u, 2u, 4u}) {
        Rates r = ask_rates(ch, ask_tuples);
        t.row({"ASK", std::to_string(ch), fmt_double(r.goodput, 2),
               fmt_double(r.throughput, 2)});
        report.row({{"solution", "ask"},
                    {"channels", ch},
                    {"goodput_gbps", r.goodput},
                    {"throughput_gbps", r.throughput}});
    }
    t.print(std::cout);
    report.note("paper: NoAggr 91.75 Gbps goodput (saturates with 2 cores); "
                "ASK 73.96 Gbps (saturates with 4) — overhead is the ASK "
                "header and per-slot key segments");
    return 0;
}
