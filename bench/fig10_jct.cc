/**
 * Figure 10 — WordCount job completion time: Spark / SparkSHM /
 * SparkRDMA / Spark-with-ASK on 3 machines x 32 mappers x 32 reducers,
 * 2^18 distinct keys per mapper, sweeping {5,10,15,20}e7 tuples per
 * mapper. Paper: ASK cuts JCT by 67.3-75.1 % vs all baselines; the
 * SHM/RDMA variants give no significant gain over vanilla Spark.
 */
#include <algorithm>
#include <cstdint>
#include <iostream>

#include "apps/minimr.h"
#include "bench_util.h"

int
main(int argc, char** argv)
{
    using namespace ask;
    using apps::MrBackend;
    bench::BenchReport report("fig10_jct",
                              "WordCount JCT vs tuples per mapper", argc,
                              argv);
    bool full = report.full();
    std::uint64_t sim_scale = report.smoke() ? 8000 : (full ? 500 : 2000);
    report.param("sim_scale", sim_scale);

    bench::banner("Figure 10", "WordCount JCT vs tuples per mapper");

    TextTable t;
    t.header({"tuples/mapper", "Spark (s)", "SparkSHM (s)", "SparkRDMA (s)",
              "ASK (s)", "ASK reduction"});
    for (std::uint64_t volume : {50000000ULL, 100000000ULL, 150000000ULL,
                                 200000000ULL}) {
        apps::MrJobSpec spec;
        spec.tuples_per_mapper = volume;
        spec.sim_scale = sim_scale;

        double jct[4];
        MrBackend backends[] = {MrBackend::kSpark, MrBackend::kSparkShm,
                                MrBackend::kSparkRdma, MrBackend::kAsk};
        for (int i = 0; i < 4; ++i) {
            spec.backend = backends[i];
            jct[i] = apps::run_mr_job(spec).jct_s;
        }
        double best_baseline = std::min({jct[0], jct[1], jct[2]});
        t.row({std::to_string(volume / 10000000) + "e7",
               fmt_double(jct[0], 2), fmt_double(jct[1], 2),
               fmt_double(jct[2], 2), fmt_double(jct[3], 2),
               fmt_double(100.0 * (1.0 - jct[3] / best_baseline), 1) + "%"});
        report.row({{"tuples_per_mapper", volume},
                    {"spark_s", jct[0]},
                    {"spark_shm_s", jct[1]},
                    {"spark_rdma_s", jct[2]},
                    {"ask_s", jct[3]},
                    {"ask_reduction_pct",
                     100.0 * (1.0 - jct[3] / best_baseline)}});
    }
    t.print(std::cout);
    report.note("paper: ASK reduces JCT by 67.3-75.1 % in all settings");
    return 0;
}
