/**
 * sim_parallel — wall-clock speedup and determinism of the sharded
 * discrete-event engine (docs/CONCURRENCY.md).
 *
 * Runs a fixed set of independent fig13b-shaped fabric replicas — each
 * replica is a full AskCluster on its own engine island streaming
 * every host to a receiver across racks — once per thread count in
 * {1, 2, 4}, and reports for each thread count the wall-clock time,
 * the speedup against the 1-thread run, and a determinism bit: a
 * digest of every replica's simulated results (goodput bit patterns
 * and completion times, in replica order) must be identical to the
 * 1-thread digest. The digest row is what perf_gate pins — it is
 * machine-independent, unlike the wall clock. The measured speedup is
 * gated only on machines with enough cores (params.speedup_floor /
 * params.speedup_threads; perf_gate skips the floor when
 * params.cores of the fresh run is smaller).
 *
 * This binary deliberately ignores ASK_SIM_THREADS: it *is* the
 * thread-count sweep.
 *
 * Flags: --smoke | --full   replica size (2-rack CI shape vs the full
 *                           8-rack fig13b shape), plus --help.
 */
#include <chrono>
#include <cstdint>
#include <cstring>
#include <functional>
#include <iostream>
#include <thread>
#include <vector>

#include "ask/cluster.h"
#include "bench_util.h"
#include "common/logging.h"
#include "common/table.h"
#include "sim/engine.h"

namespace {

using namespace ask;

/** What one replica's simulation produced (simulated time only). */
struct ReplicaResult
{
    double goodput_gbps = 0.0;
    sim::SimTime senders_done = 0;
    sim::SimTime all_done = 0;
};

/** One full fabric run: every host of `racks` racks streams to host 0
 *  through the ToR/tier fabric. A clone of fig13b's fabric sweep
 *  point, scaled by `tuples_per_sender`. */
ReplicaResult
run_replica(std::uint32_t racks, std::uint64_t tuples_per_sender,
            std::uint32_t replica_index)
{
    constexpr std::uint32_t kHostsPerRack = 2;
    core::ClusterConfig cc;
    cc.topology =
        core::TopologyBuilder().racks(racks, kHostsPerRack).build();
    cc.ask.max_hosts = cc.topology->num_hosts();
    cc.ask.medium_groups = 0;
    core::AskCluster cluster(cc);

    std::uint32_t senders = cc.topology->num_hosts() - 1;
    std::uint32_t parts = 2 * cc.ask.channels_per_host;
    std::vector<std::uint32_t> sender_hosts;
    for (std::uint32_t s = 1; s <= senders; ++s)
        sender_hosts.push_back(s);
    std::vector<std::uint32_t> ids;
    for (std::uint32_t slack = 0; ids.size() != parts && slack <= 3; ++slack)
        ids = bench::balanced_task_ids_multi(
            sender_hosts, cc.ask.channels_per_host, parts, slack);
    ASK_ASSERT(ids.size() == parts, "could not balance task ids");

    std::uint64_t per_part = tuples_per_sender / parts;
    std::vector<bench::StreamingTask> tasks;
    for (std::uint32_t p = 0; p < parts; ++p) {
        std::vector<core::StreamSpec> streams;
        for (std::uint32_t s : sender_hosts) {
            const core::KeySpace& ks = cluster.daemon(s).key_space();
            // Distinct key offsets per replica: replicas must be
            // independent simulations, not bit-copies of one another.
            streams.push_back(
                {s, bench::balanced_uniform_stream(
                        ks, 2, per_part,
                        (static_cast<std::uint64_t>(replica_index) << 24) +
                            (static_cast<std::uint64_t>(p) << 16))});
        }
        tasks.push_back({ids[p], 0, std::move(streams),
                         {.region_len = cc.ask.copy_size() / parts}});
    }
    bench::StreamingResult sr =
        bench::run_streaming_tasks(cluster, std::move(tasks));

    ReplicaResult r;
    Nanoseconds fixed = cc.mgmt_latency_ns + cc.notify_latency_ns;
    Nanoseconds elapsed = std::max<Nanoseconds>(sr.senders_done - fixed, 1);
    double total_tuple_bytes =
        static_cast<double>(per_part) * parts * senders * 8.0;
    r.goodput_gbps = units::gbps(total_tuple_bytes, elapsed);
    r.senders_done = sr.senders_done;
    r.all_done = sr.all_done;
    return r;
}

/** FNV-1a over every replica's result bits, in replica order. Equal
 *  digests mean bit-for-bit equal simulated outcomes. */
std::uint64_t
digest(const std::vector<ReplicaResult>& results)
{
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](std::uint64_t v) {
        for (int b = 0; b < 64; b += 8) {
            h ^= (v >> b) & 0xff;
            h *= 1099511628211ULL;
        }
    };
    for (const ReplicaResult& r : results) {
        std::uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(r.goodput_gbps));
        std::memcpy(&bits, &r.goodput_gbps, sizeof(bits));
        mix(bits);
        mix(static_cast<std::uint64_t>(r.senders_done));
        mix(static_cast<std::uint64_t>(r.all_done));
    }
    return h;
}

void
print_usage()
{
    std::cout << "usage: sim_parallel [--smoke|--full]\n"
                 "  --smoke   CI-scale replicas (2 racks, small streams)\n"
                 "  --full    paper-scale replicas (the full 8-rack fig13b "
                 "shape)\n"
                 "  --help    this text\n"
                 "Thread counts 1, 2, 4 are swept internally; "
                 "ASK_SIM_THREADS is ignored.\n";
}

}  // namespace

int
main(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--help") == 0) {
            print_usage();
            return 0;
        }
    }

    bench::BenchReport report(
        "sim_parallel",
        "parallel-engine wall-clock speedup and cross-thread determinism",
        argc, argv);
    bool full = report.full();
    std::uint32_t racks = report.smoke() ? 2 : (full ? 8 : 4);
    std::uint32_t replicas = 4;
    std::uint64_t tuples =
        report.smoke() ? 60000 : (full ? 2000000 : 300000);
    unsigned cores = std::max(1u, std::thread::hardware_concurrency());
    constexpr double kSpeedupFloor = 1.5;
    constexpr unsigned kSpeedupThreads = 4;

    report.param("racks", racks);
    report.param("replicas", replicas);
    report.param("tuples_per_sender", tuples);
    report.param("cores", cores);
    report.param("speedup_floor", kSpeedupFloor);
    report.param("speedup_threads", kSpeedupThreads);

    bench::banner("sim_parallel",
                  "engine speedup and determinism across thread counts");
    std::cout << "machine: " << cores << " core(s); " << replicas
              << " replicas of a " << racks << "-rack fabric, " << tuples
              << " tuples/sender\n";

    TextTable t;
    t.header({"threads", "wall (ms)", "speedup", "deterministic"});
    double wall_ms_1 = 0.0;
    std::uint64_t digest_1 = 0;
    bool all_deterministic = true;
    for (unsigned threads : {1u, 2u, 4u}) {
        sim::SimOptions options;
        options.num_threads = threads;
        sim::ParallelEngine engine(options);

        std::vector<ReplicaResult> results(replicas);
        std::vector<std::function<void()>> jobs;
        for (std::uint32_t r = 0; r < replicas; ++r)
            jobs.push_back([&results, racks, tuples, r] {
                results[r] = run_replica(racks, tuples, r);
            });

        auto start = std::chrono::steady_clock::now();
        engine.run_isolated(jobs);
        auto end = std::chrono::steady_clock::now();
        double wall_ms =
            std::chrono::duration<double, std::milli>(end - start).count();

        std::uint64_t d = digest(results);
        if (threads == 1) {
            wall_ms_1 = wall_ms;
            digest_1 = d;
        }
        bool deterministic = d == digest_1;
        all_deterministic = all_deterministic && deterministic;
        double speedup = wall_ms > 0.0 ? wall_ms_1 / wall_ms : 0.0;
        t.row({std::to_string(threads), fmt_double(wall_ms, 1),
               fmt_double(speedup, 2), deterministic ? "yes" : "NO"});
        report.row({{"threads", threads},
                    {"wall_ms", wall_ms},
                    {"speedup", speedup},
                    {"determinism_ok", deterministic ? 1 : 0}});
    }
    t.print(std::cout);

    report.note("determinism_ok compares a digest of every replica's "
                "simulated results against the 1-thread run: the engine's "
                "merge is deterministic, so it must be 1 at every thread "
                "count on every machine");
    report.note("speedup is wall-clock and machine-dependent; perf_gate "
                "enforces the speedup_floor only when the machine has at "
                "least speedup_threads cores");

    if (!all_deterministic) {
        std::cerr << "sim_parallel: NONDETERMINISM across thread counts\n";
        return 1;
    }
    return 0;
}
